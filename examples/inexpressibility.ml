(* A tour of the paper's negative results, made executable:

   1. the blow-up of the VC-based approximate volume operators (Section 3);
   2. Ehrenfeucht-Fraisse games defeating separating sentences (Prop. 1);
   3. circuits from FO sentences failing to count (Theorem 2 / Lemma 3);
   4. the best a closed language can do: the trivial 1/2-approximation
      (Proposition 4).

   Run with: dune exec examples/inexpressibility.exe *)

open Cqa_arith
open Cqa_logic
open Cqa_vc
open Cqa_core

let q = Q.of_int
let qq = Q.of_ints

let () =
  (* 1. Section 3 example: what would the Karpinski-Macintyre formula cost? *)
  Format.printf "1. blow-up of the derandomized approximation formula@.";
  List.iter
    (fun eps ->
      let s = Bounds.km_formula_size ~eps ~delta:0.25 ~vc_dim:4 ~m:2 ~atoms_in_phi:20 in
      Format.printf
        "   eps = %-5g  sample = %-6d  quantified reals = %.1e  atoms = %.1e@."
        eps s.Bounds.sample_size s.Bounds.quantifiers s.Bounds.atoms)
    [ 0.5; 0.1; 0.01 ];
  Format.printf
    "   (each quantifier must then be eliminated: hopeless in practice)@.";

  (* 2. EF games: no rank-k sentence separates 3x cardinality gaps *)
  Format.printf "@.2. Ehrenfeucht-Fraisse games (Proposition 1)@.";
  List.iter
    (fun k ->
      match Ef_game.separating_counterexample ~rounds:k ~c1:(q 3) ~c2:(q 3) with
      | Some (a, b) ->
          let verified = if k <= 2 then Ef_game.duplicator_wins k a b else true in
          Format.printf
            "   rank %d: structures of sizes %d and %d with opposite 3x \
             majorities are %d-round equivalent (checked: %b)@."
            k a.Ef_game.size b.Ef_game.size k verified
      | None -> ())
    [ 1; 2 ];

  (* 3. circuits can't count (Lemma 3) *)
  Format.printf "@.3. AC0 circuits from FO sentences cannot separate cardinalities@.";
  let x = Var.of_string "x" and y = Var.of_string "y" in
  let sentence =
    Formula.Exists
      ( x,
        Formula.Exists
          ( y,
            Formula.conj
              [ Formula.Atom (Circuit.Lt (x, y));
                Formula.Atom (Circuit.Pred (0, x));
                Formula.Atom (Circuit.Pred (0, y)) ] ) )
  in
  List.iter
    (fun n ->
      let c = Circuit.of_sentence ~preds:1 ~n sentence in
      Format.printf
        "   n = %-3d gates = %-4d depth = %d  (1/3,2/3)-separates: %b@." n
        (Circuit.gate_count c) (Circuit.depth c)
        (Circuit.separates_cardinalities ~c1:(qq 1 3) ~c2:(qq 2 3) ~n c))
    [ 6; 9; 12; 15 ];

  (* 4. the trivial approximation is the ceiling *)
  Format.printf "@.4. Proposition 4: the 1/2-approximation FO + LIN can define@.";
  let prng = Prng.create 77 in
  for i = 1 to 5 do
    let s = Cqa_workload.Generators.semilinear prng ~dim:2 ~disjuncts:2 in
    let t = Trivial_approx.trivial_approx s in
    let v = Volume_exact.volume_clamped s in
    Format.printf "   set %d: VOL_I = %-8s trivial answer = %-4s |error| = %s <= 1/2@."
      i (Q.to_string v) (Q.to_string t)
      (Q.to_string (Q.abs (Q.sub t v)))
  done;
  Format.printf
    "   Theorem 2: no eps < 1/2 is achievable by any FO + Omega language.@."
