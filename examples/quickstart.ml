(* Quickstart: build a constraint database, query it with FO + LIN, compute
   exact volumes (Theorem 3) and classical aggregates (Lemma 4).

   Run with: dune exec examples/quickstart.exe *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core

let q = Q.of_int
let qq = Q.of_ints

let () =
  (* A schema with a binary spatial relation [Region] and a finite unary
     relation [Reading] of sensor measurements. *)
  let schema = Schema.of_list [ ("Region", 2); ("Reading", 1) ] in

  (* Region = the triangle x >= 0, y >= 0, x + y <= 3/2 -- a finitely
     representable (semi-linear) instance, stored as constraints. *)
  let vars = Semilinear.default_vars 2 in
  let x = Linexpr.var vars.(0) and y = Linexpr.var vars.(1) in
  let region =
    Semilinear.of_conjunction vars
      [ Linconstr.ge x Linexpr.zero;
        Linconstr.ge y Linexpr.zero;
        Linconstr.le (Linexpr.add x y) (Linexpr.const (qq 3 2)) ]
  in
  let db =
    Db.of_list schema
      [ ("Region", Db.Semilin region);
        ("Reading", Db.Finite [ [| qq 1 2 |]; [| qq 3 4 |]; [| q 2 |] ]) ]
  in

  (* 1. A first-order query: the part of the region right of x = 1/2.
        FO + LIN is closed: the answer is again semi-linear. *)
  let phi =
    Ast.(And (Rel ("Region", [ vars.(0); vars.(1) ]), TVar vars.(0) >=! q Q.half))
  in
  let answer = Eval.eval_set db vars phi in
  Format.printf "query answer is semi-linear with %d disjunct(s)@."
    (Semilinear.disjunct_count answer);
  Format.printf "contains (1, 1/4)? %b@."
    (Semilinear.mem answer [| q 1; qq 1 4 |]);

  (* 2. Exact volumes (Theorem 3): of the region and of the query answer. *)
  Format.printf "VOL(Region)      = %a@." Q.pp (Volume_exact.volume region);
  Format.printf "VOL(answer)      = %a@." Q.pp (Volume_exact.volume answer);
  Format.printf "VOL_I(Region)    = %a   (clamped to the unit square)@." Q.pp
    (Volume_exact.volume_clamped region);

  (* 3. Classical aggregation over a safe (finite-output) query. *)
  let r = Var.of_string "r" in
  let small = Ast.(And (Rel ("Reading", [ r ]), TVar r <=! int 1)) in
  Format.printf "COUNT(readings <= 1) = %s@."
    (match Aggregates.count db [| r |] small with
    | Some n -> string_of_int n
    | None -> "not finite");
  Format.printf "AVG(readings <= 1)   = %s@."
    (match Aggregates.avg_coord db r small with
    | Some v -> Q.to_string v
    | None -> "-");

  (* 4. A genuine FO + POLY + SUM term: total length of the intervals that
        compose a one-dimensional set, evaluated inside the language. *)
  let schema1 = Schema.of_list [ ("U", 1) ] in
  let x0 = (Semilinear.default_vars 1).(0) in
  let u =
    Semilinear.make [| x0 |]
      [ [ Linconstr.ge (Linexpr.var x0) Linexpr.zero;
          Linconstr.le (Linexpr.var x0) (Linexpr.const Q.one) ];
        [ Linconstr.ge (Linexpr.var x0) (Linexpr.const (q 2));
          Linconstr.le (Linexpr.var x0) (Linexpr.const (qq 5 2)) ] ]
  in
  let db1 = Db.of_list schema1 [ ("U", Db.Semilin u) ] in
  let term = Compile.interval_measure_term ~rel:"U" in
  Format.printf "SUM-term measure of U = [0,1] u [2,5/2]: %a@." Q.pp
    (Eval.eval_term db1 Var.Map.empty term)
