(* Sensor coverage: a semi-algebraic workload for Theorem 4.

   Sensors cover disks in the unit square; the covered region is
   semi-algebraic, so its area is NOT exactly computable in any of the
   paper's closed languages -- but FO + POLY + SUM + W approximates it with
   a single shared sample whose size comes from the VC-dimension bound, and
   the same sample answers the whole parameter sweep at once.

   Run with: dune exec examples/sensor_coverage.exe *)

open Cqa_arith
open Cqa_poly
open Cqa_vc
open Cqa_core

let qq = Q.of_ints

let sensors =
  [ ([| qq 1 4; qq 1 4 |], qq 1 5);
    ([| qq 3 4; qq 1 3 |], qq 1 4);
    ([| qq 1 2; qq 3 4 |], qq 1 5);
    ([| qq 1 5; qq 4 5 |], qq 3 20) ]

let coverage radius_scale =
  List.fold_left
    (fun acc (center, r) ->
      Semialg.union acc (Semialg.ball ~center ~radius:(Q.mul r radius_scale)))
    (Semialg.empty 2) sensors

let () =
  let eps = 0.03 and delta = 0.1 in
  (* VC dimension of unions of 4 disks in the plane is bounded by a small
     constant; 12 is a safe over-estimate and only costs sample size *)
  let m = Volume_approx.sample_size_for ~eps ~delta ~vc_dim:12 in
  Format.printf
    "Theorem 4 sampling: eps = %g, delta = %g, VC bound 12 -> M = %d points@."
    eps delta m;

  (* one shared sample, drawn once by the witness operator *)
  let prng = Prng.create 2026 in
  let sample = Approx_volume.random_sample ~prng ~dim:2 ~n:m in

  Format.printf "@.coverage as the sensor power (radius scale) varies:@.";
  Format.printf "| scale | estimated covered fraction |@.";
  List.iter
    (fun k ->
      let scale = qq k 4 in
      let c = coverage scale in
      let est = Approx_volume.fraction_in sample (Semialg.mem c) in
      Format.printf "| %s | %.4f |@." (Q.to_string scale) (Q.to_float est))
    [ 2; 3; 4; 5; 6 ];

  (* cross-check one configuration against a fresh, larger sample *)
  let c = coverage Q.one in
  let est = Approx_volume.fraction_in sample (Semialg.mem c) in
  let fresh = Prng.create 9999 in
  let big = Approx_volume.random_sample ~prng:fresh ~dim:2 ~n:(4 * m) in
  let est2 = Approx_volume.fraction_in big (Semialg.mem c) in
  Format.printf "@.scale 1: shared-sample %.4f vs independent 4M-sample %.4f (|diff| = %.4f < 2 eps)@."
    (Q.to_float est) (Q.to_float est2)
    (abs_float (Q.to_float est -. Q.to_float est2));

  (* the derandomized stand-in: a Halton sample, fully deterministic *)
  let h = Approx_volume.halton_sample ~dim:2 ~n:m in
  Format.printf "Halton (derandomized) estimate at scale 1: %.4f@."
    (Q.to_float (Approx_volume.fraction_in h (Semialg.mem c)));

  (* exact sections are still available in one dimension: the covered
     vertical line above x = 1/4 has algebraic endpoints *)
  let section = Semialg.last_axis_section c [| qq 1 4 |] in
  Format.printf "@.section at x = 1/4: %d component(s), measure ~ %s@."
    (Semialg.Section.component_count section)
    (match Semialg.Section.measure_approx ~eps:(qq 1 10000) section with
    | Some v -> Printf.sprintf "%.4f" (Q.to_float v)
    | None -> "infinite")
