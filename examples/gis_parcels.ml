(* GIS workload: land parcels as convex polygons, areas computed by the
   paper's Section 5 FO + POLY + SUM program, then classical SQL-style
   aggregation (SUM / AVG / MAX) over a finite ownership relation --
   exactly the two layers of aggregation the paper sets out to combine.

   Run with: dune exec examples/gis_parcels.exe *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core

let q = Q.of_int
let qq = Q.of_ints

(* Parcels as vertex lists (counterclockwise). *)
let parcels =
  [ (1, "riverside field", [ (0, 0); (4, 0); (4, 3); (0, 3) ]);
    (2, "orchard", [ (5, 0); (9, 0); (7, 3) ]);
    (3, "vineyard", [ (0, 4); (3, 4); (4, 6); (2, 8); (0, 7) ]);
    (4, "paddock", [ (5, 4); (8, 4); (8, 7); (5, 7) ]) ]

(* Ownership: owner id, parcel id. *)
let owns = [ (100, 1); (100, 3); (200, 2); (200, 4) ]

let polygon_of verts =
  Cqa_geom.Polygon.of_vertices
    (List.map (fun (a, b) -> [| q a; q b |]) verts)

let () =
  let area_term = Compile.polygon_area_term ~rel:"P" in
  Format.printf "per-parcel areas via the FO + POLY + SUM program:@.";
  let areas =
    List.map
      (fun (id, name, verts) ->
        let poly = polygon_of verts in
        let s = Cqa_workload.Generators.polygon_to_semilinear poly in
        let db =
          Db.of_list Cqa_workload.Paper_examples.polygon_schema
            [ ("P", Db.Semilin s) ]
        in
        let area = Eval.eval_term db Var.Map.empty area_term in
        assert (Q.equal area (Cqa_geom.Polygon.area poly));
        Format.printf "  parcel %d (%s): area %a@." id name Q.pp area;
        (id, area))
      parcels
  in

  (* Classical aggregation over the finite ownership table: the database
     holds Owns(owner, parcel) and Area(parcel, area) as finite relations,
     and the aggregates are Lemma 4 derived operators. *)
  let schema = Schema.of_list [ ("Owns", 2); ("Area", 2) ] in
  let db =
    Db.of_list schema
      [ ("Owns", Db.Finite (List.map (fun (o, p) -> [| q o; q p |]) owns));
        ("Area", Db.Finite (List.map (fun (p, a) -> [| q p; a |]) areas)) ]
  in
  let p = Var.of_string "p" and a = Var.of_string "a" in
  let holdings owner =
    (* { (p, a) | Owns(owner, p) /\ Area(p, a) } -- safe: finite output *)
    Ast.(
      Exists
        ( Var.of_string "o",
          conj
            [ TVar (Var.of_string "o") =! q (Q.of_int owner);
              Rel ("Owns", [ Var.of_string "o"; p ]);
              Rel ("Area", [ p; a ]) ] ))
  in
  List.iter
    (fun owner ->
      let query = holdings owner in
      let count = Option.get (Aggregates.count db [| p; a |] query) in
      (* total area: sum the second coordinate via a deterministic formula *)
      let out = Var.of_string "out" in
      let total =
        Option.get
          (Aggregates.sum_gamma db [| p; a |] query ~gamma_var:out
             ~gamma:Ast.(TVar out =! TVar a))
      in
      let avg = Q.div total (Q.of_int count) in
      Format.printf
        "owner %d: %d parcels, total area %a, average area %a@." owner count
        Q.pp total Q.pp avg)
    [ 100; 200 ];

  (* Spatial selection + volume: parcels intersecting the river corridor
     y <= 1 contribute flood-insurance area. *)
  let corridor_area (_, _, verts) =
    let poly = polygon_of verts in
    let s = Cqa_workload.Generators.polygon_to_semilinear poly in
    let vars = Semilinear.vars s in
    let strip =
      Semilinear.of_conjunction vars
        [ Linconstr.le (Linexpr.var vars.(1)) (Linexpr.const Q.one);
          Linconstr.ge (Linexpr.var vars.(1)) Linexpr.zero ]
    in
    Volume_exact.volume (Semilinear.inter s strip)
  in
  let flood = List.map corridor_area parcels in
  Format.printf "flood corridor (0 <= y <= 1) areas per parcel: %s@."
    (String.concat ", " (List.map Q.to_string flood));
  Format.printf "total flood-exposed area: %a@." Q.pp
    (List.fold_left Q.add Q.zero flood);
  ignore qq
