open Cqa_arith
open Cqa_vc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints

(* ------------------------------------------------------------------ *)
(* Prng / Halton                                                       *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check "same stream" true (Prng.int64 a = Prng.int64 b)
  done;
  let c = Prng.create 43 in
  check "different seed differs" false
    (List.init 10 (fun _ -> Prng.int64 a) = List.init 10 (fun _ -> Prng.int64 c))

let test_prng_ranges () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    check "int range" true (v >= 0 && v < 10);
    let f = Prng.float g in
    check "float range" true (f >= 0.0 && f < 1.0);
    let r = Prng.q_unit g in
    check "q range" true (Q.leq Q.zero r && Q.lt r Q.one);
    let s = Prng.q_in g (q 2) (q 5) in
    check "q_in range" true (Q.leq (q 2) s && Q.lt s (q 5))
  done

let test_halton () =
  check "rad inv 1 base 2" true (Q.equal (Halton.radical_inverse ~base:2 1) Q.half);
  check "rad inv 2 base 2" true (Q.equal (Halton.radical_inverse ~base:2 2) (qq 1 4));
  check "rad inv 3 base 2" true (Q.equal (Halton.radical_inverse ~base:2 3) (qq 3 4));
  check "rad inv 1 base 3" true (Q.equal (Halton.radical_inverse ~base:3 1) (qq 1 3));
  let pts = Halton.points ~dim:2 100 in
  check_int "count" 100 (List.length pts);
  List.iter
    (fun p ->
      check "in unit square" true
        (Array.for_all (fun c -> Q.leq Q.zero c && Q.lt c Q.one) p))
    pts;
  (* all distinct *)
  check_int "distinct" 100 (List.length (List.sort_uniq compare pts))

(* ------------------------------------------------------------------ *)
(* Setsystem                                                           *)
(* ------------------------------------------------------------------ *)

let powerset_system n =
  Setsystem.of_mem ~ground_size:n ~set_count:(1 lsl n) (fun j i ->
      (j lsr i) land 1 = 1)

let test_setsystem_shatters () =
  let s = powerset_system 3 in
  check "shatters all" true (Setsystem.shatters s [ 0; 1; 2 ]);
  check_int "vc powerset" 3 (Setsystem.vc_dimension s);
  (* family of singletons: VC dim 1 *)
  let singles = Setsystem.of_mem ~ground_size:4 ~set_count:4 (fun j i -> i = j) in
  check_int "vc singletons" 1 (Setsystem.vc_dimension singles);
  check "no pair shattered" false (Setsystem.shatters singles [ 0; 1 ])

let test_setsystem_thresholds () =
  (* thresholds {x <= t}: classic VC dimension 1 *)
  let s = Setsystem.of_mem ~ground_size:6 ~set_count:7 (fun j i -> i < j) in
  check_int "vc thresholds" 1 (Setsystem.vc_dimension s)

let test_setsystem_intervals () =
  (* intervals [a, b] on 6 points: VC dimension 2 *)
  let intervals =
    List.concat_map
      (fun a -> List.map (fun b -> (a, b)) (List.init 6 Fun.id))
      (List.init 6 Fun.id)
  in
  let arr = Array.of_list intervals in
  let s =
    Setsystem.of_mem ~ground_size:6 ~set_count:(Array.length arr) (fun j i ->
        let a, b = arr.(j) in
        a <= i && i <= b)
  in
  check_int "vc intervals" 2 (Setsystem.vc_dimension s);
  match Setsystem.shattered_witness s 2 with
  | Some pts -> check "witness shattered" true (Setsystem.shatters s pts)
  | None -> Alcotest.fail "witness expected"

let test_setsystem_edge () =
  let empty = Setsystem.create ~ground_size:3 [] in
  check_int "empty family" (-1) (Setsystem.vc_dimension empty);
  let one = Setsystem.create ~ground_size:3 [ Array.make 3 true ] in
  check_int "single set" 0 (Setsystem.vc_dimension one)

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let test_bounds_monotone () =
  let m e d v = Bounds.blumer_sample_size ~eps:e ~delta:d ~vc_dim:v in
  check "eps monotone" true (m 0.05 0.1 4 > m 0.1 0.1 4);
  check "delta monotone" true (m 0.1 0.01 4 >= m 0.1 0.1 4);
  check "vc monotone" true (m 0.1 0.1 8 > m 0.1 0.1 4);
  check "positive" true (m 0.4 0.4 1 > 0);
  Alcotest.check_raises "bad eps" (Invalid_argument "Bounds.blumer_sample_size: eps")
    (fun () -> ignore (m 0.0 0.1 1))

let test_bounds_gj () =
  let c = Bounds.goldberg_jerrum_c ~k:2 ~p:1 ~q:2 ~d:1 ~s:6 in
  check "positive" true (c > 0.0);
  check "grows with arity" true
    (Bounds.goldberg_jerrum_c ~k:4 ~p:1 ~q:2 ~d:1 ~s:6 > c);
  check "upper bound grows with db" true
    (Bounds.vc_upper_bound ~c ~db_size:1024 > Bounds.vc_upper_bound ~c ~db_size:4)

let test_km_blowup () =
  (* the Section 3 instantiation: eps = 1/10 must be utterly infeasible *)
  let s = Bounds.km_formula_size ~eps:0.1 ~delta:0.25 ~vc_dim:4 ~m:2 ~atoms_in_phi:20 in
  check "atoms explode" true (s.Bounds.atoms > 1e8);
  check "quantifiers explode" true (s.Bounds.quantifiers > 1e7);
  check "sample size grows" true (s.Bounds.sample_size > 1000);
  (* and it gets worse as eps shrinks *)
  let s2 = Bounds.km_formula_size ~eps:0.01 ~delta:0.25 ~vc_dim:4 ~m:2 ~atoms_in_phi:20 in
  check "smaller eps worse" true (s2.Bounds.atoms > s.Bounds.atoms)

(* ------------------------------------------------------------------ *)
(* Definable_family / Approx_volume                                    *)
(* ------------------------------------------------------------------ *)

let test_definable_family_halfline () =
  (* {y | y <= a} restricted to 5 ground points: VC dim 1 *)
  let ground = List.map (fun i -> [| q i |]) [ 0; 1; 2; 3; 4 ] in
  let params = List.map (fun i -> qq i 1) [ -1; 0; 1; 2; 3; 4; 5 ] in
  let dim =
    Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
        Q.leq pt.(0) a)
  in
  check_int "halflines vc 1" 1 dim

let test_fraction_in () =
  let sample = [ [| Q.zero |]; [| Q.half |]; [| Q.one |]; [| qq 3 4 |] ] in
  check "fraction" true
    (Q.equal (Approx_volume.fraction_in sample (fun p -> Q.lt p.(0) (qq 3 5))) Q.half)

let test_monte_carlo_box () =
  (* estimate the volume of [0, 1/2]^2 = 1/4 *)
  let prng = Prng.create 9 in
  let sample = Approx_volume.random_sample ~prng ~dim:2 ~n:4000 in
  let est =
    Approx_volume.estimate ~sample ~mem:(fun p ->
        Q.leq p.(0) Q.half && Q.leq p.(1) Q.half)
  in
  check "estimate close" true (abs_float (Q.to_float est -. 0.25) < 0.03);
  (* halton is deterministic and at least as accurate here *)
  let hsample = Approx_volume.halton_sample ~dim:2 ~n:2000 in
  let hest =
    Approx_volume.estimate ~sample:hsample ~mem:(fun p ->
        Q.leq p.(0) Q.half && Q.leq p.(1) Q.half)
  in
  check "halton close" true (abs_float (Q.to_float hest -. 0.25) < 0.01)

let test_estimate_family_shared_sample () =
  let prng = Prng.create 21 in
  let sample = Approx_volume.random_sample ~prng ~dim:1 ~n:3000 in
  let params = [ qq 1 4; Q.half; qq 3 4 ] in
  let results =
    Approx_volume.estimate_family ~sample
      ~mem:(fun a p -> Q.leq p.(0) a)
      params
  in
  List.iter
    (fun (a, est) ->
      check "uniform accuracy" true
        (abs_float (Q.to_float est -. Q.to_float a) < 0.03))
    results

(* ------------------------------------------------------------------ *)
(* Domain-parallel estimation                                          *)
(* ------------------------------------------------------------------ *)

let quarter_box p = Q.lt p.(0) Q.half && Q.lt p.(1) Q.half

let test_estimate_random_seq_matches_fraction_in () =
  (* domains:1 must be the exact sequential path: same PRNG stream, same
     rational *)
  let reference =
    let prng = Prng.create 42 in
    Approx_volume.fraction_in
      (Approx_volume.random_sample ~prng ~dim:2 ~n:1000)
      quarter_box
  in
  let seq =
    Approx_volume.estimate_random ~prng:(Prng.create 42) ~dim:2 ~n:1000
      quarter_box
  in
  check "seq = fraction_in of random_sample" true (Q.equal reference seq)

let test_estimate_random_parallel_deterministic () =
  let run () =
    Approx_volume.estimate_random ~domains:3 ~prng:(Prng.create 42) ~dim:2
      ~n:1000 quarter_box
  in
  let a = run () and b = run () in
  check "fixed seed+domains reproducible" true (Q.equal a b);
  check "estimate close" true (abs_float (Q.to_float a -. 0.25) < 0.05);
  (* chunk sizes must cover the sample exactly: denominator is n *)
  let other =
    Approx_volume.estimate_random ~domains:4 ~prng:(Prng.create 42) ~dim:2
      ~n:1000 quarter_box
  in
  check "other domain count also close" true
    (abs_float (Q.to_float other -. 0.25) < 0.05)

let test_estimate_halton_domain_invariant () =
  (* Halton indices are partitioned, so every domain count gives the same
     exact rational *)
  let e1 = Approx_volume.estimate_halton ~domains:1 ~dim:2 ~n:500 quarter_box in
  List.iter
    (fun d ->
      let ed = Approx_volume.estimate_halton ~domains:d ~dim:2 ~n:500 quarter_box in
      check (Printf.sprintf "halton dom%d = dom1" d) true (Q.equal e1 ed))
    [ 2; 3; 4; 7 ]

let test_estimate_family_random_parallel () =
  let params = [ qq 1 4; Q.half; qq 3 4 ] in
  let mem a p = Q.leq p.(0) a in
  (* sequential path equals estimate_family over the same drawn sample *)
  let reference =
    let prng = Prng.create 21 in
    Approx_volume.estimate_family
      ~sample:(Approx_volume.random_sample ~prng ~dim:1 ~n:3000)
      ~mem params
  in
  let seq =
    Approx_volume.estimate_family_random ~prng:(Prng.create 21) ~dim:1 ~n:3000
      ~mem params
  in
  check "family seq = shared-sample reference" true
    (List.for_all2
       (fun (a, e) (a', e') -> Q.equal a a' && Q.equal e e')
       reference seq);
  (* parallel: reproducible, uniformly accurate *)
  let par () =
    Approx_volume.estimate_family_random ~domains:3 ~prng:(Prng.create 21)
      ~dim:1 ~n:3000 ~mem params
  in
  let r1 = par () and r2 = par () in
  check "family parallel reproducible" true
    (List.for_all2 (fun (_, e) (_, e') -> Q.equal e e') r1 r2);
  List.iter
    (fun (a, est) ->
      check "family parallel uniform accuracy" true
        (abs_float (Q.to_float est -. Q.to_float a) < 0.04))
    r1

let () =
  Alcotest.run "cqa_vc"
    [ ( "prng-halton",
        [ Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
          Alcotest.test_case "halton" `Quick test_halton ] );
      ( "setsystem",
        [ Alcotest.test_case "shatters" `Quick test_setsystem_shatters;
          Alcotest.test_case "thresholds" `Quick test_setsystem_thresholds;
          Alcotest.test_case "intervals" `Quick test_setsystem_intervals;
          Alcotest.test_case "edge cases" `Quick test_setsystem_edge ] );
      ( "bounds",
        [ Alcotest.test_case "monotone" `Quick test_bounds_monotone;
          Alcotest.test_case "goldberg-jerrum" `Quick test_bounds_gj;
          Alcotest.test_case "km blowup" `Quick test_km_blowup ] );
      ( "sampling",
        [ Alcotest.test_case "definable family" `Quick test_definable_family_halfline;
          Alcotest.test_case "fraction" `Quick test_fraction_in;
          Alcotest.test_case "monte carlo box" `Quick test_monte_carlo_box;
          Alcotest.test_case "family shared sample" `Quick test_estimate_family_shared_sample ] );
      ( "parallel-sampling",
        [ Alcotest.test_case "seq path exact" `Quick
            test_estimate_random_seq_matches_fraction_in;
          Alcotest.test_case "parallel deterministic" `Quick
            test_estimate_random_parallel_deterministic;
          Alcotest.test_case "halton domain-invariant" `Quick
            test_estimate_halton_domain_invariant;
          Alcotest.test_case "family parallel" `Quick
            test_estimate_family_random_parallel ] ) ]
