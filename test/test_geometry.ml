open Cqa_arith
open Cqa_geom

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints
let rng = Random.State.make [| 777 |]

let pt a b = [| qq a 2; qq b 2 |]

(* ------------------------------------------------------------------ *)
(* Hpolytope                                                           *)
(* ------------------------------------------------------------------ *)

let test_hpolytope_basics () =
  let c = Hpolytope.cube 3 in
  check "contains center" true (Hpolytope.contains c [| Q.half; Q.half; Q.half |]);
  check "boundary" true (Hpolytope.contains c [| Q.zero; Q.one; Q.half |]);
  check "outside" false (Hpolytope.contains c [| Q.two; Q.zero; Q.zero |]);
  check "nonempty" false (Hpolytope.is_empty c);
  check "bounded" true (Hpolytope.is_bounded c);
  (match Hpolytope.bounding_box c with
  | Some bb ->
      check "bb" true
        (Array.for_all (fun (lo, hi) -> Q.is_zero lo && Q.equal hi Q.one) bb)
  | None -> Alcotest.fail "bounded");
  let empty =
    Hpolytope.make 1
      [ { Hpolytope.normal = [| Q.one |]; offset = Q.zero };
        { Hpolytope.normal = [| Q.minus_one |]; offset = Q.minus_one } ]
  in
  check "empty" true (Hpolytope.is_empty empty);
  let half = Hpolytope.make 2 [ { Hpolytope.normal = [| Q.one; Q.zero |]; offset = Q.zero } ] in
  check "halfspace unbounded" false (Hpolytope.is_bounded half)

let test_hpolytope_translate () =
  let c = Hpolytope.cube 2 in
  let t = Hpolytope.translate [| q 5; q (-1) |] c in
  check "translated in" true (Hpolytope.contains t [| qq 11 2; qq (-1) 2 |]);
  check "translated out" false (Hpolytope.contains t [| Q.half; Q.half |]);
  check "volume invariant" true (Q.equal (Lasserre.volume t) Q.one)

let test_feasible_point () =
  let p = Hpolytope.simplex_standard 4 in
  match Hpolytope.feasible_point p with
  | Some x -> check "feasible" true (Hpolytope.contains p x)
  | None -> Alcotest.fail "nonempty"

(* ------------------------------------------------------------------ *)
(* Vertex_enum                                                         *)
(* ------------------------------------------------------------------ *)

let test_vertex_enum () =
  check_int "cube 3" 8 (List.length (Vertex_enum.vertices (Hpolytope.cube 3)));
  check_int "cube 4" 16 (List.length (Vertex_enum.vertices (Hpolytope.cube 4)));
  check_int "simplex 3" 4 (List.length (Vertex_enum.vertices (Hpolytope.simplex_standard 3)));
  check_int "empty" 0
    (List.length
       (Vertex_enum.vertices
          (Hpolytope.make 1
             [ { Hpolytope.normal = [| Q.one |]; offset = Q.zero };
               { Hpolytope.normal = [| Q.minus_one |]; offset = Q.minus_one } ])));
  (match Vertex_enum.lex_min (Vertex_enum.vertices (Hpolytope.cube 2)) with
  | Some v -> check "lex min origin" true (Array.for_all Q.is_zero v)
  | None -> Alcotest.fail "vertices");
  Alcotest.check_raises "unbounded"
    (Invalid_argument "Vertex_enum.vertices: unbounded polytope") (fun () ->
      ignore
        (Vertex_enum.vertices
           (Hpolytope.make 1 [ { Hpolytope.normal = [| Q.one |]; offset = Q.zero } ])))

(* ------------------------------------------------------------------ *)
(* Hull2d / Polygon                                                    *)
(* ------------------------------------------------------------------ *)

let rand_points n =
  List.init n (fun _ -> pt (Random.State.int rng 33 - 16) (Random.State.int rng 33 - 16))

let test_hull_known () =
  let h = Hull2d.hull [ pt 0 0; pt 4 0; pt 4 4; pt 0 4; pt 2 2 ] in
  check_int "square hull" 4 (List.length h);
  check "starts at lex min" true (Hull2d.compare_pt (List.hd h) (pt 0 0) = 0);
  (* collinear input *)
  let col = Hull2d.hull [ pt 0 0; pt 2 2; pt 4 4 ] in
  check_int "collinear" 2 (List.length col)

let test_hull_properties () =
  for _ = 1 to 200 do
    let pts = rand_points (3 + Random.State.int rng 20) in
    let h = Hull2d.hull pts in
    if List.length h >= 3 then begin
      let poly = Polygon.of_vertices h in
      check "convex" true (Polygon.is_convex poly);
      check "ccw" true (Q.sign (Polygon.signed_area poly) > 0);
      List.iter (fun p -> check "contains input" true (Polygon.contains_convex poly p)) pts;
      (* idempotent *)
      check "idempotent" true (Hull2d.hull h = h)
    end
  done

let test_polygon_area () =
  let square = Polygon.of_vertices [ pt 0 0; pt 4 0; pt 4 4; pt 0 4 ] in
  check "area 4" true (Q.equal (Polygon.area square) (q 4));
  check "signed ccw positive" true (Q.sign (Polygon.signed_area square) > 0);
  let cw = Polygon.of_vertices [ pt 0 0; pt 0 4; pt 4 4; pt 4 0 ] in
  check "cw negative" true (Q.sign (Polygon.signed_area cw) < 0);
  check "perimeter sq" true (Q.equal (Polygon.perimeter_sq_sum square) (q 16));
  check "triangle area formula" true
    (Q.equal (Polygon.triangle_area (pt 0 0) (pt 4 0) (pt 0 4)) (q 2));
  check "degenerate zero" true
    (Q.is_zero (Polygon.triangle_area (pt 0 0) (pt 2 2) (pt 4 4)));
  let c = Polygon.centroid square in
  check "centroid" true (Q.equal c.(0) Q.one && Q.equal c.(1) Q.one)

(* ------------------------------------------------------------------ *)
(* Triangulate                                                         *)
(* ------------------------------------------------------------------ *)

let test_fan_vs_shoelace () =
  for _ = 1 to 150 do
    let pts = rand_points (3 + Random.State.int rng 12) in
    let h = Hull2d.hull pts in
    if List.length h >= 3 then begin
      let poly = Polygon.of_vertices h in
      check "fan = shoelace" true (Q.equal (Triangulate.area_by_fan h) (Polygon.area poly));
      check_int "triangle count" (List.length h - 2) (List.length (Triangulate.fan h))
    end
  done

let test_simplex_volume () =
  (* unit simplex in R^3: volume 1/6 *)
  let pts =
    [ [| Q.zero; Q.zero; Q.zero |]; [| Q.one; Q.zero; Q.zero |];
      [| Q.zero; Q.one; Q.zero |]; [| Q.zero; Q.zero; Q.one |] ]
  in
  check "1/6" true (Q.equal (Triangulate.simplex_volume pts) (qq 1 6));
  (* translation invariance *)
  let shift = List.map (fun v -> Array.map (Q.add (q 7)) v) pts in
  check "translation invariant" true (Q.equal (Triangulate.simplex_volume shift) (qq 1 6));
  Alcotest.check_raises "wrong count"
    (Invalid_argument "Triangulate.simplex_volume: need n+1 points in R^n")
    (fun () -> ignore (Triangulate.simplex_volume (List.tl pts)))

(* ------------------------------------------------------------------ *)
(* Lasserre                                                            *)
(* ------------------------------------------------------------------ *)

let test_lasserre_known () =
  for n = 1 to 5 do
    check "cube" true (Q.equal (Lasserre.volume (Hpolytope.cube n)) Q.one)
  done;
  let fact = [| 1; 1; 2; 6; 24; 120 |] in
  for n = 1 to 5 do
    check "simplex" true
      (Q.equal (Lasserre.volume (Hpolytope.simplex_standard n)) (qq 1 fact.(n)))
  done;
  check "box" true
    (Q.equal
       (Lasserre.volume (Hpolytope.box [| (q 0, q 2); (q (-1), q 2); (q 1, q 5) |]))
       (q 24));
  check "empty" true
    (Q.is_zero
       (Lasserre.volume
          (Hpolytope.make 1
             [ { Hpolytope.normal = [| Q.one |]; offset = Q.zero };
               { Hpolytope.normal = [| Q.minus_one |]; offset = Q.minus_one } ])))

let test_lasserre_degenerate_redundant () =
  (* a slab x = y inside a box has zero area *)
  let deg =
    Hpolytope.make 2
      [ { Hpolytope.normal = [| Q.one; Q.minus_one |]; offset = Q.zero };
        { Hpolytope.normal = [| Q.minus_one; Q.one |]; offset = Q.zero };
        { Hpolytope.normal = [| Q.one; Q.zero |]; offset = Q.one };
        { Hpolytope.normal = [| Q.minus_one; Q.zero |]; offset = Q.one } ]
  in
  check "degenerate" true (Q.is_zero (Lasserre.volume deg));
  (* redundant constraints leave the volume unchanged *)
  let c = Hpolytope.cube 3 in
  let r = Hpolytope.intersect c (Hpolytope.box (Array.make 3 (q (-9), q 9))) in
  check "redundant" true (Q.equal (Lasserre.volume r) Q.one);
  (* duplicated constraints too *)
  let dup = Hpolytope.intersect c c in
  check "duplicated" true (Q.equal (Lasserre.volume dup) Q.one)

let test_lasserre_vs_shoelace () =
  for _ = 1 to 80 do
    let pts = rand_points (3 + Random.State.int rng 8) in
    let h = Hull2d.hull pts in
    if List.length h >= 3 then begin
      let poly = Polygon.of_vertices h in
      let vs = Array.of_list h in
      let n = Array.length vs in
      let hs =
        List.init n (fun i ->
            let a = vs.(i) and b = vs.((i + 1) mod n) in
            let nx = Q.sub b.(1) a.(1) and ny = Q.sub a.(0) b.(0) in
            { Hpolytope.normal = [| nx; ny |];
              offset = Q.add (Q.mul nx a.(0)) (Q.mul ny a.(1)) })
      in
      let p = Hpolytope.make 2 hs in
      check "lasserre = shoelace" true (Q.equal (Lasserre.volume p) (Polygon.area poly));
      check_int "vertices recovered" n (List.length (Vertex_enum.vertices p))
    end
  done

let test_lasserre_scaling () =
  (* scaling a box by 2 in each axis multiplies volume by 2^n *)
  let b = Hpolytope.box [| (q 0, q 1); (q 0, q 2); (q 0, q 3) |] in
  let b2 = Hpolytope.box [| (q 0, q 2); (q 0, q 4); (q 0, q 6) |] in
  check "scaling" true
    (Q.equal (Lasserre.volume b2) (Q.mul (q 8) (Lasserre.volume b)))

let () =
  Alcotest.run "cqa_geom"
    [ ( "hpolytope",
        [ Alcotest.test_case "basics" `Quick test_hpolytope_basics;
          Alcotest.test_case "translate" `Quick test_hpolytope_translate;
          Alcotest.test_case "feasible point" `Quick test_feasible_point ] );
      ("vertex-enum", [ Alcotest.test_case "known counts" `Quick test_vertex_enum ]);
      ( "hull-polygon",
        [ Alcotest.test_case "hull known" `Quick test_hull_known;
          Alcotest.test_case "hull properties" `Quick test_hull_properties;
          Alcotest.test_case "polygon area" `Quick test_polygon_area ] );
      ( "triangulate",
        [ Alcotest.test_case "fan vs shoelace" `Quick test_fan_vs_shoelace;
          Alcotest.test_case "simplex volume" `Quick test_simplex_volume ] );
      ( "lasserre",
        [ Alcotest.test_case "known" `Quick test_lasserre_known;
          Alcotest.test_case "degenerate redundant" `Quick test_lasserre_degenerate_redundant;
          Alcotest.test_case "vs shoelace" `Quick test_lasserre_vs_shoelace;
          Alcotest.test_case "scaling" `Quick test_lasserre_scaling ] ) ]
