open Cqa_arith

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)
let check_int = Alcotest.(check int)

let bi = Bigint.of_int
let bs = Bigint.of_string

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)
(* ------------------------------------------------------------------ *)

let test_bigint_basics () =
  check_str "zero" "0" (Bigint.to_string Bigint.zero);
  check_str "neg" "-42" (Bigint.to_string (bi (-42)));
  check "is_zero" true (Bigint.is_zero Bigint.zero);
  check "is_one" true (Bigint.is_one Bigint.one);
  check "sign+" true (Bigint.sign (bi 5) = 1);
  check "sign-" true (Bigint.sign (bi (-5)) = -1);
  check_int "to_int" 123456 (Bigint.to_int_exn (bi 123456))

let test_bigint_string_roundtrip () =
  let cases =
    [ "0"; "1"; "-1"; "1073741824"; "-1073741823"; "999999999999999999999";
      "-123456789012345678901234567890"; "10000000000000000000000000000001" ]
  in
  List.iter (fun s -> check_str s s (Bigint.to_string (bs s))) cases

let test_bigint_int_edges () =
  check_str "max_int" (string_of_int max_int) (Bigint.to_string (bi max_int));
  check_str "min_int" (string_of_int min_int) (Bigint.to_string (bi min_int));
  check "min_int roundtrip" true (Bigint.to_int_opt (bi min_int) = Some min_int);
  check "overflow detected" true
    (Bigint.to_int_opt (Bigint.mul (bi max_int) (bi 2)) = None)

let test_bigint_arith () =
  let a = bs "123456789123456789123456789" in
  let b = bs "987654321987654321" in
  check_str "add" "123456790111111111111111110"
    (Bigint.to_string (Bigint.add a b));
  check_str "mul" "121932631356500531469135800347203169112635269"
    (Bigint.to_string (Bigint.mul a b));
  check "sub anti" true
    (Bigint.equal (Bigint.sub a b) (Bigint.neg (Bigint.sub b a)));
  check "double negation" true (Bigint.equal (Bigint.neg (Bigint.neg a)) a)

let test_bigint_divmod () =
  let a = bs "1000000000000000000000" and b = bs "7" in
  let q, r = Bigint.divmod a b in
  check "recompose" true (Bigint.equal a (Bigint.add (Bigint.mul q b) r));
  check_str "rem" "6" (Bigint.to_string r);
  (* sign conventions match Stdlib *)
  List.iter
    (fun (x, y) ->
      let q, r = Bigint.divmod (bi x) (bi y) in
      check_int (Printf.sprintf "%d/%d" x y) (x / y) (Bigint.to_int_exn q);
      check_int (Printf.sprintf "%d mod %d" x y) (x mod y) (Bigint.to_int_exn r))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (6, 3); (-6, 3) ];
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bigint.divmod a Bigint.zero))

let test_bigint_ediv () =
  List.iter
    (fun (x, y) ->
      let q, r = Bigint.ediv (bi x) (bi y) in
      check "euclid recompose" true
        (Bigint.equal (bi x) (Bigint.add (Bigint.mul q (bi y)) r));
      check "euclid nonneg" true (Bigint.sign r >= 0))
    [ (7, 2); (-7, 2); (7, -2); (-7, -2); (0, 5) ]

let test_bigint_gcd () =
  check_str "gcd" "12" (Bigint.to_string (Bigint.gcd (bi 48) (bi (-36))));
  check_str "gcd00" "0" (Bigint.to_string (Bigint.gcd Bigint.zero Bigint.zero));
  check_str "lcm" "36" (Bigint.to_string (Bigint.lcm (bi 12) (bi 18)));
  check_str "big gcd" "1"
    (Bigint.to_string (Bigint.gcd (bs "1000000007") (bs "998244353")))

let test_bigint_pow_shift () =
  check_str "2^100" "1267650600228229401496703205376"
    (Bigint.to_string (Bigint.pow (bi 2) 100));
  check "shift = pow" true
    (Bigint.equal (Bigint.shift_left Bigint.one 100) (Bigint.pow (bi 2) 100));
  check "shift right inverse" true
    (Bigint.equal
       (Bigint.shift_right (Bigint.shift_left (bi 12345) 37) 37)
       (bi 12345));
  check_int "numbits 2^100" 101 (Bigint.numbits (Bigint.pow (bi 2) 100));
  check_int "numbits 0" 0 (Bigint.numbits Bigint.zero)

let test_bigint_compare () =
  check "lt" true (Bigint.compare (bi (-5)) (bi 3) < 0);
  check "mixed magnitudes" true
    (Bigint.compare (bs "-100000000000000000000") (bi (-5)) < 0);
  check "min max" true
    (Bigint.equal (Bigint.min (bi 2) (bi 7)) (bi 2)
    && Bigint.equal (Bigint.max (bi 2) (bi 7)) (bi 7))

let test_bigint_to_float () =
  check "small" true (Bigint.to_float (bi 42) = 42.0);
  let big = Bigint.pow (bi 10) 30 in
  check "1e30" true (abs_float (Bigint.to_float big -. 1e30) /. 1e30 < 1e-9)

(* qcheck generators *)
let gen_bigint =
  QCheck2.Gen.(
    map
      (fun (digits, neg) ->
        let s = String.concat "" (List.map string_of_int digits) in
        let s = if s = "" then "0" else s in
        Bigint.of_string (if neg then "-" ^ s else s))
      (pair (list_size (int_range 1 30) (int_range 0 9)) bool))

let prop_ring =
  QCheck2.Test.make ~name:"bigint ring laws" ~count:300
    QCheck2.Gen.(triple gen_bigint gen_bigint gen_bigint)
    (fun (a, b, c) ->
      Bigint.equal (Bigint.add a b) (Bigint.add b a)
      && Bigint.equal (Bigint.mul a b) (Bigint.mul b a)
      && Bigint.equal
           (Bigint.mul a (Bigint.add b c))
           (Bigint.add (Bigint.mul a b) (Bigint.mul a c))
      && Bigint.equal (Bigint.add a (Bigint.neg a)) Bigint.zero)

let prop_divmod =
  QCheck2.Test.make ~name:"bigint divmod invariant" ~count:300
    QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) ->
      QCheck2.assume (not (Bigint.is_zero b));
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_string_roundtrip =
  QCheck2.Test.make ~name:"bigint string roundtrip" ~count:300 gen_bigint
    (fun a -> Bigint.equal (Bigint.of_string (Bigint.to_string a)) a)

let prop_gcd_divides =
  QCheck2.Test.make ~name:"gcd divides both" ~count:200
    QCheck2.Gen.(pair gen_bigint gen_bigint)
    (fun (a, b) ->
      QCheck2.assume (not (Bigint.is_zero a) || not (Bigint.is_zero b));
      let g = Bigint.gcd a b in
      Bigint.is_zero (Bigint.rem a g) && Bigint.is_zero (Bigint.rem b g))

(* ------------------------------------------------------------------ *)
(* Bigint small/big boundary                                           *)
(* ------------------------------------------------------------------ *)

(* The representation keeps every native-int value in the small tier, so
   the interesting inputs sit at the promotion boundary: min_int/max_int,
   the limb radix 2^30, and the 62-bit overflow edges. *)
let boundary_ints =
  [ 0; 1; -1; 2; -2;
    (1 lsl 30) - 1; 1 lsl 30; (1 lsl 30) + 1;
    -(1 lsl 30) + 1; -(1 lsl 30); -(1 lsl 30) - 1;
    (1 lsl 31) - 1; 1 lsl 31; -(1 lsl 31);
    1 lsl 62; -(1 lsl 62);
    max_int; max_int - 1; min_int; min_int + 1 ]

let test_bigint_boundary_roundtrip () =
  List.iter
    (fun v ->
      check "int roundtrip" true (Bigint.to_int_opt (bi v) = Some v);
      check_str "string agrees" (string_of_int v) (Bigint.to_string (bi v));
      check "of_string agrees" true
        (Bigint.equal (bs (string_of_int v)) (bi v)))
    boundary_ints

let test_bigint_promotion_demotion () =
  (* one past max_int must leave the native tier... *)
  let above = Bigint.succ (bi max_int) in
  check "max_int+1 overflows" true (Bigint.to_int_opt above = None);
  check_str "max_int+1 string" "4611686018427387904" (Bigint.to_string above);
  (* ...and coming back must demote to the canonical small form *)
  check "demotes back" true (Bigint.to_int_opt (Bigint.pred above) = Some max_int);
  check "equal across round trip" true
    (Bigint.equal (Bigint.pred above) (bi max_int));
  let below = Bigint.pred (bi min_int) in
  check "min_int-1 overflows" true (Bigint.to_int_opt below = None);
  check_str "min_int-1 string" "-4611686018427387905" (Bigint.to_string below);
  check "demotes back neg" true
    (Bigint.to_int_opt (Bigint.succ below) = Some min_int);
  (* neg min_int is not an int *)
  check "neg min_int big" true (Bigint.to_int_opt (Bigint.neg (bi min_int)) = None);
  check "neg neg min_int" true
    (Bigint.equal (Bigint.neg (Bigint.neg (bi min_int))) (bi min_int));
  (* min_int / -1 is the one divmod that overflows the native tier *)
  let q, r = Bigint.divmod (bi min_int) (bi (-1)) in
  check "min_int / -1" true (Bigint.equal q (Bigint.neg (bi min_int)));
  check "min_int mod -1" true (Bigint.is_zero r);
  check "abs min_int big" true (Bigint.to_int_opt (Bigint.abs (bi min_int)) = None)

let gen_boundary =
  QCheck2.Gen.(
    map (fun (i, d) -> bi (List.nth boundary_ints i + d))
      (pair (int_range 0 (List.length boundary_ints - 1)) (int_range (-2) 2)))

(* Scaling by 2^100 forces the same computation through the multi-limb
   path: agreement means the small tier and the promotion boundary are
   consistent with the big tier. *)
let big_scale = Bigint.pow (bi 2) 100

let prop_boundary_scaled_agreement =
  QCheck2.Test.make ~name:"small ops agree with scaled big ops" ~count:500
    QCheck2.Gen.(pair gen_boundary gen_boundary)
    (fun (a, b) ->
      let s = big_scale in
      Bigint.equal
        (Bigint.mul (Bigint.add a b) s)
        (Bigint.add (Bigint.mul a s) (Bigint.mul b s))
      && Bigint.equal
           (Bigint.mul (Bigint.sub a b) s)
           (Bigint.sub (Bigint.mul a s) (Bigint.mul b s))
      && Bigint.equal
           (Bigint.mul (Bigint.gcd a b) s)
           (Bigint.gcd (Bigint.mul a s) (Bigint.mul b s)))

(* Reference Euclid over the public divmod checks the binary/hybrid gcd. *)
let rec gcd_euclid a b =
  if Bigint.is_zero b then Bigint.abs a
  else gcd_euclid b (Bigint.rem a b)

let prop_boundary_gcd_reference =
  QCheck2.Test.make ~name:"boundary gcd matches euclid reference" ~count:500
    QCheck2.Gen.(pair gen_boundary gen_boundary)
    (fun (a, b) -> Bigint.equal (Bigint.gcd a b) (gcd_euclid a b))

let prop_boundary_divmod =
  QCheck2.Test.make ~name:"boundary divmod invariant" ~count:500
    QCheck2.Gen.(pair gen_boundary gen_boundary)
    (fun (a, b) ->
      QCheck2.assume (not (Bigint.is_zero b));
      let q, r = Bigint.divmod a b in
      Bigint.equal a (Bigint.add (Bigint.mul q b) r)
      && Bigint.compare (Bigint.abs r) (Bigint.abs b) < 0
      && (Bigint.is_zero r || Bigint.sign r = Bigint.sign a))

let prop_boundary_compare_hash =
  QCheck2.Test.make ~name:"boundary compare/equal/hash coherent" ~count:500
    QCheck2.Gen.(pair gen_boundary gen_boundary)
    (fun (a, b) ->
      (* equality must be representation-independent: route one side
         through the big tier and back *)
      let a' = Bigint.sub (Bigint.add a big_scale) big_scale in
      Bigint.equal a a'
      && Bigint.hash a = Bigint.hash a'
      && Bigint.compare a a' = 0
      && Bigint.compare a b = -Bigint.compare b a
      && (Bigint.compare a b = 0) = Bigint.equal a b)

(* ------------------------------------------------------------------ *)
(* Q                                                                   *)
(* ------------------------------------------------------------------ *)

let test_q_normalization () =
  check "6/4 = 3/2" true (Q.equal (Q.of_ints 6 4) (Q.of_ints 3 2));
  check "neg den" true (Q.equal (Q.of_ints 1 (-2)) (Q.of_ints (-1) 2));
  check_str "to_string" "3/2" (Q.to_string (Q.of_ints 6 4));
  check_str "integer" "5" (Q.to_string (Q.of_ints 10 2));
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let test_q_arith () =
  let a = Q.of_ints 1 3 and b = Q.of_ints 1 6 in
  check "1/3+1/6" true (Q.equal (Q.add a b) Q.half);
  check "1/3-1/6" true (Q.equal (Q.sub a b) b);
  check "1/3*1/6" true (Q.equal (Q.mul a b) (Q.of_ints 1 18));
  check "div" true (Q.equal (Q.div a b) Q.two);
  check "inv" true (Q.equal (Q.inv (Q.of_ints (-2) 3)) (Q.of_ints (-3) 2));
  check "pow neg" true (Q.equal (Q.pow (Q.of_ints 2 3) (-2)) (Q.of_ints 9 4))

let test_q_parse () =
  check "a/b" true (Q.equal (Q.of_string "-7/3") (Q.of_ints (-7) 3));
  check "decimal" true (Q.equal (Q.of_string "0.125") (Q.of_ints 1 8));
  check "neg decimal" true (Q.equal (Q.of_string "-0.5") (Q.of_ints (-1) 2));
  check "neg frac only" true (Q.equal (Q.of_string "-0.25") (Q.of_ints (-1) 4));
  check "int" true (Q.equal (Q.of_string "42") (Q.of_int 42))

let test_q_floor_ceil () =
  let cases = [ (7, 2, 3, 4); (-7, 2, -4, -3); (6, 3, 2, 2); (0, 5, 0, 0) ] in
  List.iter
    (fun (n, d, f, c) ->
      check_int "floor" f (Bigint.to_int_exn (Q.floor (Q.of_ints n d)));
      check_int "ceil" c (Bigint.to_int_exn (Q.ceil (Q.of_ints n d))))
    cases

let test_q_float () =
  check "to_float" true (Q.to_float (Q.of_ints 1 4) = 0.25);
  check "of_float_dyadic" true (Q.equal (Q.of_float_dyadic 0.375) (Q.of_ints 3 8));
  check "of_float big" true
    (Q.equal (Q.of_float_dyadic 1024.0) (Q.of_int 1024))

let gen_q =
  QCheck2.Gen.(
    map
      (fun (n, d) -> Q.of_ints n (1 + abs d))
      (pair (int_range (-10000) 10000) (int_range 0 999)))

let prop_q_field =
  QCheck2.Test.make ~name:"q field laws" ~count:300
    QCheck2.Gen.(triple gen_q gen_q gen_q)
    (fun (a, b, c) ->
      Q.equal (Q.add a b) (Q.add b a)
      && Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c))
      && (Q.is_zero a || Q.equal (Q.mul a (Q.inv a)) Q.one))

let prop_q_compare_consistent =
  QCheck2.Test.make ~name:"q compare vs sub sign" ~count:300
    QCheck2.Gen.(pair gen_q gen_q)
    (fun (a, b) -> Q.compare a b = Q.sign (Q.sub a b))

let prop_q_floor_bound =
  QCheck2.Test.make ~name:"floor <= q < floor+1" ~count:300 gen_q (fun a ->
      let f = Q.of_bigint (Q.floor a) in
      Q.leq f a && Q.lt a (Q.add f Q.one))

(* The coprime kernels must preserve the normalization invariant
   (gcd (num, den) = 1, den > 0) and agree with the naive cross-multiply
   route through Q.make, which renormalizes from scratch. *)
let normalized q =
  Bigint.sign (Q.den q) > 0
  && Bigint.is_one (Bigint.gcd (Q.num q) (Q.den q))

let naive_add a b =
  Q.make
    (Bigint.add (Bigint.mul (Q.num a) (Q.den b)) (Bigint.mul (Q.num b) (Q.den a)))
    (Bigint.mul (Q.den a) (Q.den b))

let naive_mul a b =
  Q.make (Bigint.mul (Q.num a) (Q.num b)) (Bigint.mul (Q.den a) (Q.den b))

(* exercises the same-denominator, coprime-denominator, and shared-factor
   branches: denominators drawn from a small set collide often *)
let gen_q_kernel =
  QCheck2.Gen.(
    map
      (fun (n, d) -> Q.of_ints n (List.nth [ 1; 2; 3; 4; 6; 12; 30; 997 ] d))
      (pair (int_range (-3000) 3000) (int_range 0 7)))

let prop_q_kernels_vs_naive =
  QCheck2.Test.make ~name:"q kernels agree with cross-multiply" ~count:500
    QCheck2.Gen.(pair gen_q_kernel gen_q_kernel)
    (fun (a, b) ->
      let sum = Q.add a b and diff = Q.sub a b and prod = Q.mul a b in
      normalized sum && normalized diff && normalized prod
      && Q.equal sum (naive_add a b)
      && Q.equal diff (naive_add a (Q.neg b))
      && Q.equal prod (naive_mul a b)
      && Q.compare a b = Q.sign (naive_add a (Q.neg b)))

let prop_q_mul_int_consistent =
  QCheck2.Test.make ~name:"mul_int = mul of_int" ~count:500
    QCheck2.Gen.(pair gen_q_kernel (int_range (-1000) 1000))
    (fun (a, k) ->
      let r = Q.mul_int a k in
      normalized r && Q.equal r (Q.mul a (Q.of_int k)))

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval () =
  let i = Interval.make (Q.of_int 1) (Q.of_int 3) in
  check "width" true (Q.equal (Interval.width i) Q.two);
  check "mid" true (Q.equal (Interval.mid i) Q.two);
  check "contains" true (Interval.contains i Q.two);
  check "not contains" false (Interval.contains i (Q.of_int 4));
  let l, r = Interval.bisect i in
  check "bisect" true
    (Q.equal (Interval.hi l) (Interval.lo r) && Q.equal (Interval.lo l) Q.one);
  check "intersect" true
    (Interval.intersect i (Interval.make Q.two (Q.of_int 5))
    = Some (Interval.make Q.two (Q.of_int 3)));
  check "disjoint" true
    (Interval.intersect i (Interval.make (Q.of_int 4) (Q.of_int 5)) = None);
  Alcotest.check_raises "inverted" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (Interval.make Q.one Q.zero))

(* The single outward rounding mode: endpoints only ever move apart, both
   sides by the same discipline, and the result always encloses the
   argument. *)
let test_interval_outward () =
  let qi = Q.of_int and qq = Q.of_ints in
  let i = Interval.make (qq 1 3) (qq 5 7) in
  let r = Interval.round_out ~den:4 i in
  check "lo rounds down" true (Q.equal (Interval.lo r) (qq 1 4));
  check "hi rounds up" true (Q.equal (Interval.hi r) (qq 3 4));
  check "encloses" true
    (Q.leq (Interval.lo r) (Interval.lo i) && Q.leq (Interval.hi i) (Interval.hi r));
  (* grid points are fixpoints *)
  let g = Interval.make (qq 1 4) (qq 3 4) in
  check "fixpoint" true (Interval.equal (Interval.round_out ~den:4 g) g);
  (* negative endpoints: lower still moves down, not toward zero *)
  let n = Interval.round_out ~den:4 (Interval.make (qq (-1) 3) (qq (-1) 7)) in
  check "neg lo down" true (Q.equal (Interval.lo n) (qq (-1) 2));
  check "neg hi up" true (Q.equal (Interval.hi n) Q.zero);
  let w = Interval.grow i (qq 1 10) in
  check "grow symmetric" true
    (Q.equal (Q.sub (Interval.lo i) (Interval.lo w)) (qq 1 10)
    && Q.equal (Q.sub (Interval.hi w) (Interval.hi i)) (qq 1 10));
  check "grow zero" true (Interval.equal (Interval.grow i Q.zero) i);
  Alcotest.check_raises "bad den"
    (Invalid_argument "Interval.round_out: den <= 0") (fun () ->
      ignore (Interval.round_out ~den:0 i));
  Alcotest.check_raises "negative margin"
    (Invalid_argument "Interval.grow: negative margin") (fun () ->
      ignore (Interval.grow i (qi (-1))))

(* ------------------------------------------------------------------ *)
(* Fdyadic: outward-rounded float enclosures                           *)
(* ------------------------------------------------------------------ *)

(* exact rational containment: lo <= v <= hi, endpoints read back as
   dyadic rationals (infinite endpoints are vacuously sound) *)
let encloses (e : Fdyadic.t) v =
  (Float.is_finite e.Fdyadic.lo = false
  || Q.leq (Q.of_float_dyadic e.Fdyadic.lo) v)
  && (Float.is_finite e.Fdyadic.hi = false
     || Q.leq v (Q.of_float_dyadic e.Fdyadic.hi))

let test_fdyadic_of_q_points () =
  (* exactly representable rationals become width-zero points *)
  List.iter
    (fun q ->
      let e = Fdyadic.of_q q in
      check (Q.to_string q ^ " is a point") true (Fdyadic.is_point e);
      check (Q.to_string q ^ " exact") true
        (Q.equal (Q.of_float_dyadic e.Fdyadic.lo) q))
    [ Q.zero; Q.one; Q.of_int (-7); Q.of_ints 1 2; Q.of_ints (-3) 4;
      Q.of_string "9007199254740992" (* 2^53 *); Q.of_string "-4503599627370496" ]

let test_fdyadic_of_q_ulp_boundary () =
  (* 2^53 + 1 is the first unrepresentable integer: the enclosure must be
     the adjacent pair [2^53, 2^53 + 2], not a punt and not a point *)
  let e = Fdyadic.of_q (Q.of_string "9007199254740993") in
  check "2^53+1 lo" true (e.Fdyadic.lo = 0x1p53);
  check "2^53+1 hi" true (e.Fdyadic.hi = 0x1p53 +. 2.);
  check "2^53+1 not a point" false (Fdyadic.is_point e);
  (* 1/3 gets the two adjacent doubles around it *)
  let t = Fdyadic.of_q (Q.of_ints 1 3) in
  check "1/3 tight" true (Fdyadic.next_up t.Fdyadic.lo = t.Fdyadic.hi);
  check "1/3 encloses" true (encloses t (Q.of_ints 1 3));
  check "1/3 positive" true (t.Fdyadic.lo > 0.)

let test_fdyadic_directed_add () =
  (* exact sums stay width-zero: TwoSum reports a zero error term *)
  check "1+2 exact" true
    (Fdyadic.add_down 1.0 2.0 = 3.0 && Fdyadic.add_up 1.0 2.0 = 3.0);
  (* 0.1 + 0.2 is inexact: directed bounds straddle by exactly one ulp *)
  let d = Fdyadic.add_down 0.1 0.2 and u = Fdyadic.add_up 0.1 0.2 in
  check "inexact add straddles" true (d < u && Fdyadic.next_up d = u);
  let exact = Q.add (Q.of_float_dyadic 0.1) (Q.of_float_dyadic 0.2) in
  check "add bounds sound" true
    (Q.leq (Q.of_float_dyadic d) exact && Q.leq exact (Q.of_float_dyadic u));
  (* 2^53 + 1 in float addition: round-to-even lands on 2^53, so the true
     sum sits strictly between the directed bounds *)
  check "2^53+1 add down" true (Fdyadic.add_down 0x1p53 1.0 = 0x1p53);
  check "2^53+1 add up" true (Fdyadic.add_up 0x1p53 1.0 = 0x1p53 +. 2.)

let test_fdyadic_directed_mul () =
  (* small integer products are exact in both directions *)
  check "3*7 exact" true
    (Fdyadic.mul_down 3.0 7.0 = 21.0 && Fdyadic.mul_up 3.0 7.0 = 21.0);
  (* a zero factor is exact regardless of the partner's magnitude *)
  check "0 * huge exact" true
    (Fdyadic.mul_down 0.0 1e308 = 0.0 && Fdyadic.mul_up 0.0 1e308 = 0.0);
  (* inexact product: without an FMA the rounding direction is unknown,
     so both sides nudge — a two-ulp straddle around the rounded value *)
  let d = Fdyadic.mul_down 0.1 0.1 and u = Fdyadic.mul_up 0.1 0.1 in
  let exact = Q.mul (Q.of_float_dyadic 0.1) (Q.of_float_dyadic 0.1) in
  check "inexact mul straddles" true
    (d < u && Fdyadic.next_up d = 0.1 *. 0.1 && Fdyadic.next_up (0.1 *. 0.1) = u);
  check "mul bounds sound" true
    (Q.leq (Q.of_float_dyadic d) exact && Q.leq exact (Q.of_float_dyadic u));
  (* overflow degrades to a sound finite bound on the inner side and the
     matching infinity on the outer side *)
  check "overflow down" true (Fdyadic.mul_down 1e308 10.0 = Float.max_float);
  check "overflow up" true (Fdyadic.mul_up 1e308 10.0 = Float.infinity);
  check "neg overflow up" true
    (Fdyadic.mul_up (-1e308) 10.0 = -.Float.max_float);
  check "neg overflow down" true
    (Fdyadic.mul_down (-1e308) 10.0 = Float.neg_infinity)

let test_fdyadic_compare () =
  let third = Fdyadic.of_q (Q.of_ints 1 3) in
  let p1 = Fdyadic.point 1.0 in
  check "third < 1 sure" true (Fdyadic.cmp third p1 = Fdyadic.Sure_lt);
  check "1 >= third sure" true (Fdyadic.cmp p1 third = Fdyadic.Sure_ge);
  check "third vs third unknown" true
    (Fdyadic.cmp third third = Fdyadic.Unknown);
  check "third > 0" true (Fdyadic.cmp0 third = Fdyadic.Sure_ge);
  check "-third < 0" true
    (Fdyadic.cmp0 (Fdyadic.of_q (Q.of_ints (-1) 3)) = Fdyadic.Sure_lt);
  check "point zero >= 0" true (Fdyadic.cmp0 Fdyadic.zero = Fdyadic.Sure_ge);
  (* compare_opt: Some 0 only for equal width-zero points *)
  check "points equal" true (Fdyadic.compare_opt p1 (Fdyadic.point 1.0) = Some 0);
  check "points ordered" true
    (Fdyadic.compare_opt (Fdyadic.point 2.0) p1 = Some 1);
  check "overlap undecided" true (Fdyadic.compare_opt third third = None)

(* of_q, of_q_fast, and interval add/mul/combine always enclose the exact
   rational result, on ulp-hostile inputs included *)
let gen_hostile_q =
  QCheck2.Gen.(
    frequency
      [
        (4, map2 Q.of_ints (int_range (-999) 999) (oneofl [ 1; 2; 3; 7; 64 ]));
        ( 1,
          map
            (fun n -> Q.mul (Q.of_int n) (Q.of_string "9007199254740993"))
            (int_range (-3) 3) );
        (1, map (fun n -> Q.of_ints n 1000000007) (int_range (-5) 5));
      ])

let prop_fdyadic_encloses =
  QCheck2.Test.make ~name:"of_q / of_q_fast enclose, ops preserve enclosure"
    ~count:500
    QCheck2.Gen.(pair gen_hostile_q gen_hostile_q)
    (fun (a, b) ->
      let ea = Fdyadic.of_q a and eb = Fdyadic.of_q b in
      encloses ea a && encloses (Fdyadic.of_q_fast a) a
      && encloses (Fdyadic.add ea eb) (Q.add a b)
      && encloses (Fdyadic.mul ea eb) (Q.mul a b)
      && encloses (Fdyadic.neg ea) (Q.neg a)
      && encloses
           (Fdyadic.combine ea eb eb ea)
           (Q.add (Q.mul a b) (Q.mul b a)))

let prop_fdyadic_cmp_sound =
  QCheck2.Test.make ~name:"sure comparisons agree with exact order" ~count:500
    QCheck2.Gen.(pair gen_hostile_q gen_hostile_q)
    (fun (a, b) ->
      match Fdyadic.cmp (Fdyadic.of_q a) (Fdyadic.of_q b) with
      | Fdyadic.Sure_lt -> Q.lt a b
      | Fdyadic.Sure_ge -> Q.geq a b
      | Fdyadic.Unknown -> true)

(* ------------------------------------------------------------------ *)
(* Qmat                                                                *)
(* ------------------------------------------------------------------ *)

let test_qmat_det () =
  check "det 2x2" true
    (Q.equal (Qmat.det (Qmat.mat_of_ints [ [ 2; 1 ]; [ 1; 3 ] ])) (Q.of_int 5));
  check "det singular" true
    (Q.equal (Qmat.det (Qmat.mat_of_ints [ [ 1; 2 ]; [ 2; 4 ] ])) Q.zero);
  check "det id" true (Q.equal (Qmat.det (Qmat.identity 4)) Q.one);
  check "det 3x3" true
    (Q.equal
       (Qmat.det (Qmat.mat_of_ints [ [ 1; 2; 3 ]; [ 4; 5; 6 ]; [ 7; 8; 10 ] ]))
       (Q.of_int (-3)))

let test_qmat_solve () =
  let a = Qmat.mat_of_ints [ [ 2; 1 ]; [ 1; 3 ] ] in
  (match Qmat.solve a [| Q.of_int 3; Q.of_int 5 |] with
  | Some x ->
      check "solution" true
        (Qmat.vec_equal x [| Q.of_ints 4 5; Q.of_ints 7 5 |])
  | None -> Alcotest.fail "expected solution");
  check "singular" true
    (Qmat.solve (Qmat.mat_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]) [| Q.one; Q.one |]
    = None)

let test_qmat_inverse_rank () =
  let a = Qmat.mat_of_ints [ [ 2; 1 ]; [ 1; 3 ] ] in
  (match Qmat.inverse a with
  | Some inv ->
      let prod = Qmat.mat_mul a inv in
      check "a*inv = id" true
        (Array.for_all2 Qmat.vec_equal prod (Qmat.identity 2))
  | None -> Alcotest.fail "invertible");
  check_int "rank full" 2 (Qmat.rank a);
  check_int "rank deficient" 1 (Qmat.rank (Qmat.mat_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]));
  check_int "rank zero" 0 (Qmat.rank (Qmat.mat_of_ints [ [ 0; 0 ] ]))

let gen_mat3 =
  QCheck2.Gen.(
    array_size (return 3)
      (array_size (return 3) (map Q.of_int (int_range (-5) 5))))

let prop_det_transpose =
  QCheck2.Test.make ~name:"det m = det m^T" ~count:200 gen_mat3 (fun m ->
      Q.equal (Qmat.det m) (Qmat.det (Qmat.transpose m)))

let prop_det_multiplicative =
  QCheck2.Test.make ~name:"det (a b) = det a * det b" ~count:200
    QCheck2.Gen.(pair gen_mat3 gen_mat3)
    (fun (a, b) ->
      Q.equal (Qmat.det (Qmat.mat_mul a b)) (Q.mul (Qmat.det a) (Qmat.det b)))

let prop_solve_correct =
  QCheck2.Test.make ~name:"solve gives a genuine solution" ~count:200
    QCheck2.Gen.(
      pair gen_mat3 (array_size (return 3) (map Q.of_int (int_range (-5) 5))))
    (fun (a, b) ->
      match Qmat.solve a b with
      | None -> Q.is_zero (Qmat.det a)
      | Some x -> Qmat.vec_equal (Qmat.mat_vec a x) b)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cqa_arith"
    [ ( "bigint",
        [ Alcotest.test_case "basics" `Quick test_bigint_basics;
          Alcotest.test_case "string roundtrip" `Quick test_bigint_string_roundtrip;
          Alcotest.test_case "int edges" `Quick test_bigint_int_edges;
          Alcotest.test_case "arith" `Quick test_bigint_arith;
          Alcotest.test_case "divmod" `Quick test_bigint_divmod;
          Alcotest.test_case "ediv" `Quick test_bigint_ediv;
          Alcotest.test_case "gcd lcm" `Quick test_bigint_gcd;
          Alcotest.test_case "pow shift" `Quick test_bigint_pow_shift;
          Alcotest.test_case "compare" `Quick test_bigint_compare;
          Alcotest.test_case "to_float" `Quick test_bigint_to_float ] );
      qsuite "bigint-props" [ prop_ring; prop_divmod; prop_string_roundtrip; prop_gcd_divides ];
      ( "bigint-boundary",
        [ Alcotest.test_case "roundtrip" `Quick test_bigint_boundary_roundtrip;
          Alcotest.test_case "promotion demotion" `Quick
            test_bigint_promotion_demotion ] );
      qsuite "bigint-boundary-props"
        [ prop_boundary_scaled_agreement; prop_boundary_gcd_reference;
          prop_boundary_divmod; prop_boundary_compare_hash ];
      ( "q",
        [ Alcotest.test_case "normalization" `Quick test_q_normalization;
          Alcotest.test_case "arith" `Quick test_q_arith;
          Alcotest.test_case "parse" `Quick test_q_parse;
          Alcotest.test_case "floor ceil" `Quick test_q_floor_ceil;
          Alcotest.test_case "float" `Quick test_q_float ] );
      qsuite "q-props"
        [ prop_q_field; prop_q_compare_consistent; prop_q_floor_bound;
          prop_q_kernels_vs_naive; prop_q_mul_int_consistent ];
      ( "interval",
        [ Alcotest.test_case "interval" `Quick test_interval;
          Alcotest.test_case "outward rounding" `Quick test_interval_outward ] );
      ( "fdyadic",
        [ Alcotest.test_case "of_q points" `Quick test_fdyadic_of_q_points;
          Alcotest.test_case "ulp boundary" `Quick test_fdyadic_of_q_ulp_boundary;
          Alcotest.test_case "directed add" `Quick test_fdyadic_directed_add;
          Alcotest.test_case "directed mul" `Quick test_fdyadic_directed_mul;
          Alcotest.test_case "comparisons" `Quick test_fdyadic_compare ] );
      qsuite "fdyadic-props" [ prop_fdyadic_encloses; prop_fdyadic_cmp_sound ];
      ( "qmat",
        [ Alcotest.test_case "det" `Quick test_qmat_det;
          Alcotest.test_case "solve" `Quick test_qmat_solve;
          Alcotest.test_case "inverse rank" `Quick test_qmat_inverse_rank ] );
      qsuite "qmat-props" [ prop_det_transpose; prop_det_multiplicative; prop_solve_correct ] ]
