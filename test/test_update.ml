(* Incremental aggregate maintenance: the Semilinear delta API, Db
   versioning and its bounded change log, byte-identity of incremental
   answers with cold recomputes at several domain counts, delta-local MRU
   invalidation (asserted through the exec.invalidate.* / exec.reuse.*
   counters), and retained-sample re-scoring in the guarded fallback. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core
module T = Cqa_telemetry.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints

let counter_value name =
  match List.assoc_opt name (T.snapshot ()).T.counters with
  | Some v -> v
  | None -> 0

let xx = Var.of_string "x"
let yy = Var.of_string "y"
let coords = [| xx; yy |]

let box2 (a, b) (c, d) = Semilinear.box [| (a, b); (c, d) |]

let unit_box = box2 (Q.zero, Q.one) (Q.zero, Q.one)

(* ------------------------------------------------------------------ *)
(* Semilinear deltas                                                   *)
(* ------------------------------------------------------------------ *)

let test_delta_api () =
  let r = box2 (Q.zero, qq 1 2) (Q.zero, qq 1 2) in
  let d = Semilinear.insert_region (Semilinear.empty 2) r in
  check "insert into empty yields the region" true
    (Semilinear.equal d.Semilinear.updated r);
  check "insert is flagged" true d.Semilinear.inserted;
  check "insert delta not empty" false d.Semilinear.delta_empty;
  (match d.Semilinear.delta_box with
  | Some bb ->
      check "delta box is the region's box" true
        (Q.equal (fst bb.(0)) Q.zero
        && Q.equal (snd bb.(0)) (qq 1 2)
        && Q.equal (fst bb.(1)) Q.zero
        && Q.equal (snd bb.(1)) (qq 1 2))
  | None -> Alcotest.fail "expected a delta box");
  let d2 = Semilinear.remove_region unit_box r in
  check "removed points gone" false
    (Semilinear.mem d2.Semilinear.updated [| qq 1 4; qq 1 4 |]);
  check "untouched points stay" true
    (Semilinear.mem d2.Semilinear.updated [| qq 3 4; qq 3 4 |]);
  check "remove is flagged" false d2.Semilinear.inserted;
  let d3 = Semilinear.insert_region unit_box (Semilinear.empty 2) in
  check "empty insert is a no-op" true d3.Semilinear.delta_empty;
  check "empty insert leaves the set" true
    (Semilinear.equal d3.Semilinear.updated unit_box);
  check "empty insert has no box" true (d3.Semilinear.delta_box = None)

(* ------------------------------------------------------------------ *)
(* Db versioning and the bounded log                                   *)
(* ------------------------------------------------------------------ *)

let schema_r1 = Schema.of_list [ ("R", 1) ]

let seg a b = Semilinear.box [| (a, b) |]

let test_db_versioning () =
  let db = Db.empty schema_r1 in
  check_int "fresh db at version 0" 0 (Db.version db);
  let ch1 = Db.apply_update db (Db.Insert ("R", seg Q.zero Q.one)) in
  check_int "first update is version 1" 1 ch1.Db.version;
  check_int "db version bumped" 1 (Db.version db);
  let ch2 = Db.apply_update db (Db.Remove ("R", seg Q.zero (qq 1 2))) in
  check_int "second update is version 2" 2 ch2.Db.version;
  (match Db.changes_since db 0 with
  | Some [ a; b ] ->
      check_int "chronological order" 1 a.Db.version;
      check_int "chronological order (2)" 2 b.Db.version;
      check "insert flag recorded" true a.Db.inserted;
      check "remove flag recorded" false b.Db.inserted
  | _ -> Alcotest.fail "expected exactly two changes since version 0");
  (match Db.changes_since db 2 with
  | Some [] -> ()
  | _ -> Alcotest.fail "up-to-date reader gets Some []");
  check "reader ahead of the db gets None" true (Db.changes_since db 5 = None);
  (* the updated relation reflects both edits *)
  check "membership after updates" true (Db.mem_tuple db "R" [| qq 3 4 |]);
  check "membership after updates (2)" false (Db.mem_tuple db "R" [| qq 1 4 |]);
  (* functional constructors restart the history *)
  let db' = Db.add "R" (Db.Semilin (seg Q.zero Q.one)) db in
  check_int "Db.add returns a fresh version-0 value" 0 (Db.version db');
  (* log truncation: push the log past its cap *)
  for i = 1 to Db.log_cap + 8 do
    ignore
      (Db.apply_update db (Db.Insert ("R", seg (q i) (Q.add (q i) (qq 1 2)))))
  done;
  check "too-old reader falls off the bounded log" true
    (Db.changes_since db 0 = None);
  (match Db.changes_since db (Db.version db - 1) with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "recent reader still replays from the log");
  (* invalid updates *)
  Alcotest.check_raises "unknown relation"
    (Invalid_argument "Db.apply_update: unknown relation S") (fun () ->
      ignore (Db.apply_update db (Db.Insert ("S", seg Q.zero Q.one))));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Db.apply_update: arity mismatch in R") (fun () ->
      ignore (Db.apply_update db (Db.Insert ("R", unit_box))))

(* ------------------------------------------------------------------ *)
(* Incremental answers = cold recompute, at domains 1 / 2 / 4          *)
(* ------------------------------------------------------------------ *)

let schema_r2 = Schema.of_list [ ("R", 2); ("S", 2) ]
let query_r = Ast.Rel ("R", [ xx; yy ])

let cold_clamped db f = Volume_exact.volume_clamped (Eval.eval_set db coords f)

(* a mixed script: growing inserts, an overlapping remove, a no-op empty
   edit, an unbounded halfspace region, and an edit to a relation the
   query never consults *)
let script =
  [
    ("R", true, box2 (Q.zero, qq 1 2) (Q.zero, qq 1 2));
    ("R", true, box2 (qq 1 4, qq 3 4) (qq 1 4, qq 3 4));
    ("R", false, box2 (Q.zero, qq 1 4) (Q.zero, qq 1 4));
    ("R", true, Semilinear.empty 2);
    ("S", true, box2 (Q.zero, Q.one) (Q.zero, Q.one));
    ( "R",
      true,
      Semilinear.halfspace (Semilinear.default_vars 2)
        (Linconstr.le (Linexpr.var (Semilinear.default_vars 2).(0))
           (Linexpr.const (qq (-1) 2))) );
    ("R", false, box2 (qq 3 8, qq 5 8) (qq 3 8, qq 5 8));
  ]

let test_incremental_matches_cold () =
  List.iter
    (fun domains ->
      let db = Db.empty schema_r2 in
      let p = Cqa_analysis.Planner.compile ~db ~coords query_r in
      let label i =
        Printf.sprintf "domains %d, update %d: incremental = cold" domains i
      in
      check (label 0) true
        (Q.equal (Exec.volume_clamped ~domains p db) (cold_clamped db query_r));
      List.iteri
        (fun i (rel, inserted, r) ->
          let u = if inserted then Db.Insert (rel, r) else Db.Remove (rel, r) in
          ignore (Db.apply_update db u);
          check (label (i + 1)) true
            (Q.equal
               (Exec.volume_clamped ~domains p db)
               (cold_clamped db query_r)))
        script)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Delta-local MRU invalidation, observed through the counters         *)
(* ------------------------------------------------------------------ *)

let test_mru_invalidation () =
  T.reset ();
  T.enable ();
  Fun.protect ~finally:T.disable @@ fun () ->
  let db = Db.empty schema_r2 in
  let p = Cqa_analysis.Planner.compile ~db ~coords query_r in
  (* two well-separated cells so the piece list has reusable intervals *)
  ignore
    (Db.apply_update db (Db.Insert ("R", box2 (Q.zero, qq 1 4) (Q.zero, qq 1 4))));
  ignore
    (Db.apply_update db (Db.Insert ("R", box2 (qq 3 4, Q.one) (qq 3 4, Q.one))));
  let warm = Exec.volume_clamped p db in
  check "warm answer" true (Q.equal warm (cold_clamped db query_r));
  (* a small edit inside the first cell: only its pieces recompute *)
  let inv0 = counter_value "exec.invalidate.cells" in
  let reuse0 = counter_value "exec.reuse.cells" in
  ignore
    (Db.apply_update db (Db.Insert ("R", box2 (Q.zero, qq 1 8) (Q.zero, qq 1 8))));
  let v = Exec.volume_clamped p db in
  check "incremental after local edit = cold" true
    (Q.equal v (cold_clamped db query_r));
  check "intersecting cells dropped their memo" true
    (counter_value "exec.invalidate.cells" - inv0 > 0);
  check "untouched cells kept their memo" true
    (counter_value "exec.reuse.cells" - reuse0 > 0);
  (* an edit to a relation the query never consults invalidates nothing *)
  let inv1 = counter_value "exec.invalidate.cells" in
  let full1 = counter_value "exec.invalidate.full" in
  ignore
    (Db.apply_update db (Db.Insert ("S", box2 (Q.zero, Q.one) (Q.zero, Q.one))));
  let v' = Exec.volume_clamped p db in
  check "unrelated edit leaves the answer" true (Q.equal v v');
  check_int "unrelated edit invalidates no cells" inv1
    (counter_value "exec.invalidate.cells");
  check_int "unrelated edit never goes nuclear" full1
    (counter_value "exec.invalidate.full");
  (* a reader that falls off the bounded log rebuilds from scratch *)
  for i = 1 to Db.log_cap + 4 do
    ignore
      (Db.apply_update db
         (Db.Insert
            ( "S",
              box2
                (q i, Q.add (q i) (qq 1 2))
                (q i, Q.add (q i) (qq 1 2)) )))
  done;
  let full2 = counter_value "exec.invalidate.full" in
  check "stale reader still answers correctly" true
    (Q.equal (Exec.volume_clamped p db) (cold_clamped db query_r));
  check "stale reader rebuilt from scratch" true
    (counter_value "exec.invalidate.full" - full2 > 0)

(* ------------------------------------------------------------------ *)
(* Retained-sample re-scoring in the guarded fallback                  *)
(* ------------------------------------------------------------------ *)

let test_sampler_rescore () =
  T.reset ();
  T.enable ();
  Fun.protect ~finally:T.disable @@ fun () ->
  let db = Db.empty schema_r2 in
  let p = Cqa_analysis.Planner.compile ~db ~coords query_r in
  ignore
    (Db.apply_update db (Db.Insert ("R", box2 (Q.zero, qq 1 2) (Q.zero, Q.one))));
  let knobs = (0.2, 0.2, 11) in
  let eps, delta, seed = knobs in
  let guarded () =
    (Exec.volume_guarded ~budget:0. ~eps ~delta ~seed p db).Volume_exact.value
  in
  let oneshot () =
    fst (Volume_exact.sampler_estimate ~eps ~delta ~seed db coords query_r)
  in
  check "cold retained sample = one-shot estimator" true
    (Q.equal (guarded ()) (oneshot ()));
  (* a localized edit: only the points inside the delta box re-test *)
  let reuse0 = counter_value "exec.reuse.samples" in
  let inv0 = counter_value "exec.invalidate.samples" in
  ignore
    (Db.apply_update db
       (Db.Insert ("R", box2 (qq 1 2, qq 5 8) (Q.zero, qq 1 8))));
  check "re-scored sample = one-shot on the updated db" true
    (Q.equal (guarded ()) (oneshot ()));
  check "dirty points re-tested" true
    (counter_value "exec.invalidate.samples" - inv0 > 0);
  check "clean points kept their bits" true
    (counter_value "exec.reuse.samples" - reuse0 > 0);
  (* warm repeat: the retained sample answers again, identically *)
  check "warm repeat is stable" true (Q.equal (guarded ()) (oneshot ()))

let () =
  Alcotest.run "cqa_update"
    [
      ( "deltas",
        [ Alcotest.test_case "semilinear delta summaries" `Quick test_delta_api ] );
      ( "db",
        [
          Alcotest.test_case "versioning and the bounded log" `Quick
            test_db_versioning;
        ] );
      ( "exec",
        [
          Alcotest.test_case "incremental = cold at domains 1/2/4" `Quick
            test_incremental_matches_cold;
          Alcotest.test_case "delta-local MRU invalidation" `Quick
            test_mru_invalidation;
          Alcotest.test_case "retained-sample re-scoring" `Quick
            test_sampler_rescore;
        ] );
    ]
