(* Compiled query plans: cache identity, plan-vs-direct agreement across
   domain counts, parameterized re-execution, eviction, and warm-vs-cold
   agreement of the guarded entry points. *)

open Cqa_arith
open Cqa_logic
open Cqa_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let qq = Q.of_ints

let parse s =
  match Parser.formula_of_string s with
  | f -> f
  | exception Parser.Parse_error m -> Alcotest.fail ("parse error: " ^ m)

let db0 = Db.empty Schema.empty
let sweep_src = "0 <= y1 /\\ y1 <= 1/2 /\\ 0 <= y2 /\\ y2 <= y1"
let param_src = "0 <= u /\\ u < y1 /\\ y1 < 1 /\\ 0 <= y2 /\\ y2 <= y1"

let blowup_src =
  "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . \
   (u < x1 /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < v \
   /\\ 0 <= x1 /\\ x5 <= 1)"

let yvars = [| Var.of_string "y1"; Var.of_string "y2" |]

(* ------------------------------------------------------------------ *)
(* Cache identity                                                      *)
(* ------------------------------------------------------------------ *)

let test_cache_identity () =
  Plan.clear_cache ();
  let f1 = parse "exists z . x < z /\\ z < 1 /\\ 0 <= x" in
  let f2 = parse "exists w . x < w /\\ w < 1 /\\ 0 <= x" in
  let f3 = parse "exists z . x < z /\\ z < 2 /\\ 0 <= x" in
  let p1 = Plan.cached f1 in
  let p2 = Plan.cached f2 in
  let p3 = Plan.cached f3 in
  check_int "alpha-equivalent spellings share a plan" (Plan.id p1) (Plan.id p2);
  check "distinct shape gets a distinct plan" true (Plan.id p3 <> Plan.id p1);
  check_int "hit counted" 1 (Plan.hit_count p1);
  check "equal shapes" true (Plan.equal_shape p1 p2);
  check "alpha-normal forms equal" true
    (Plan.equal_formula (Plan.normal p1) (Plan.normal p2));
  (* determinism: recompiling after a clear reproduces the shape hash *)
  let h = Plan.shape_hash p1 in
  Plan.clear_cache ();
  check_int "shape hash deterministic" h (Plan.shape_hash (Plan.cached f2))

let test_hint_of_called_once () =
  Plan.clear_cache ();
  let calls = ref 0 in
  let hint_of _ =
    incr calls;
    Some Dispatch.Exact_semilinear
  in
  let f = parse sweep_src in
  let p1 = Plan.cached ~hint_of f in
  let p2 = Plan.cached ~hint_of f in
  check_int "hint computed only on the miss" 1 !calls;
  check "hint attached" true (Plan.hint p1 = Some Dispatch.Exact_semilinear);
  check_int "hit returns the same plan" (Plan.id p1) (Plan.id p2)

(* ------------------------------------------------------------------ *)
(* Plan-vs-direct agreement across domain counts                       *)
(* ------------------------------------------------------------------ *)

let test_plan_vs_direct_domains () =
  let f = parse sweep_src in
  let direct1 = Volume_exact.volume_of_query ~domains:1 db0 yvars f in
  List.iter
    (fun domains ->
      Plan.clear_cache ();
      let p = Plan.cached ~coords:yvars f in
      let v = Exec.volume ~domains p db0 in
      check "plan = direct, same domain count" true
        (Q.equal v (Volume_exact.volume_of_query ~domains db0 yvars f));
      check "byte-identical across domain counts" true (Q.equal v direct1);
      check "clamped agrees too" true
        (Q.equal
           (Exec.volume_clamped ~domains p db0)
           (Volume_exact.volume_clamped ~domains (Eval.eval_set db0 yvars f))))
    [ 1; 2; 4 ]

let test_volume_of_query_cached () =
  Plan.clear_cache ();
  let f = parse sweep_src in
  let v1 = Exec.volume_of_query db0 yvars f in
  let probes = Eval.runtime_probes () in
  let v2 = Exec.volume_of_query db0 yvars f in
  check "warm value identical" true (Q.equal v1 v2);
  check_int "warm hit runs no runtime probe" probes (Eval.runtime_probes ());
  check "matches the unplanned entry" true
    (Q.equal v1 (Volume_exact.volume_of_query db0 yvars f))

(* ------------------------------------------------------------------ *)
(* Parameterized execution                                             *)
(* ------------------------------------------------------------------ *)

let test_param_exec () =
  Plan.clear_cache ();
  let f = parse param_src in
  let p = Plan.cached ~params:[| Var.of_string "u" |] ~coords:yvars f in
  (* section volume above u is (1 - u^2) / 2 on [0, 1] *)
  let expect u = Q.div (Q.sub Q.one (Q.mul u u)) Q.two in
  List.iter
    (fun u ->
      check "closed form at interior values" true
        (Q.equal (Exec.volume_at p db0 [| u |]) (expect u)))
    [ qq 1 3; qq 1 7; qq 2 5; qq 3 4 ];
  (* breakpoints and out-of-range values take the direct-section path and
     still agree *)
  check "breakpoint u = 0" true
    (Q.equal (Exec.volume_at p db0 [| Q.zero |]) (expect Q.zero));
  check "breakpoint u = 1" true
    (Q.is_zero (Exec.volume_at p db0 [| Q.one |]));
  check "outside the range" true
    (Q.is_zero (Exec.volume_at p db0 [| Q.of_int 2 |]));
  (* batch shares the warm state and agrees with one-shot execution *)
  let us = [ [| qq 1 3 |]; [| qq 3 4 |]; [| Q.zero |]; [| qq 9 10 |] ] in
  List.iter2
    (fun b u -> check "batch = one-shot" true (Q.equal b (Exec.volume_at p db0 u)))
    (Exec.batch p db0 us)
    us;
  (* domain counts agree on the parameterized path as well *)
  List.iter
    (fun domains ->
      Plan.clear_cache ();
      let p = Plan.cached ~params:[| Var.of_string "u" |] ~coords:yvars f in
      check "volume_at domain-count invariant" true
        (Q.equal (Exec.volume_at ~domains p db0 [| qq 1 3 |]) (expect (qq 1 3))))
    [ 1; 2; 4 ];
  Alcotest.check_raises "binding arity checked"
    (Invalid_argument "Exec.volume_at: expected 1 parameter values, got 2")
    (fun () -> ignore (Exec.volume_at p db0 [| Q.zero; Q.one |]))

let test_param_validation () =
  Plan.clear_cache ();
  let f = parse sweep_src in
  check "non-free parameter rejected" true
    (match Plan.cached ~params:[| Var.of_string "nope" |] f with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "coordinate/parameter overlap rejected" true
    (match
       Plan.cached ~params:[| Var.of_string "y1" |] ~coords:yvars f
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "uncovered free variable rejected" true
    (match Plan.cached ~coords:[| Var.of_string "y1" |] f with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Eviction under a tiny capacity                                      *)
(* ------------------------------------------------------------------ *)

let evicted_total () =
  (Array.fold_left Cqa_conc.Striped_tbl.add_stat Cqa_conc.Striped_tbl.zero_stat
     (Plan.cache_stats ()))
    .Cqa_conc.Striped_tbl.evicted

let test_eviction () =
  let cap0 = Plan.cache_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Plan.set_cache_capacity cap0;
      Plan.clear_cache ())
    (fun () ->
      Plan.clear_cache ();
      Plan.set_cache_capacity 4;
      let before = evicted_total () in
      let plans =
        List.init 100 (fun k ->
            let f = parse (Printf.sprintf "0 <= x /\\ x <= %d" (k + 1)) in
            (f, Plan.cached f))
      in
      check "cache stays within capacity" true (Plan.cache_length () <= 4);
      check "evictions happened and were counted" true
        (evicted_total () > before);
      (* evicted shapes recompile to plans with identical shape hashes *)
      List.iteri
        (fun i (f, p) ->
          if i mod 17 = 0 then
            check_int "recompile reproduces the shape"
              (Plan.shape_hash p)
              (Plan.shape_hash (Plan.cached f)))
        plans)

(* ------------------------------------------------------------------ *)
(* Warm-vs-cold agreement of the guarded entry points                  *)
(* ------------------------------------------------------------------ *)

let test_warm_cold_guarded () =
  Plan.clear_cache ();
  let f = parse sweep_src in
  let p = Plan.cached ~coords:yvars f in
  let cold = Exec.volume_guarded p db0 in
  let warm = Exec.volume_guarded (Plan.cached ~coords:yvars f) db0 in
  check "exact engine selected" true
    (cold.Volume_exact.engine = Volume_exact.Exact_engine);
  check "warm value = cold value" true
    (Q.equal cold.Volume_exact.value warm.Volume_exact.value);
  let direct = Volume_exact.volume_guarded db0 yvars f in
  check "matches the unplanned guarded entry" true
    (Q.equal cold.Volume_exact.value direct.Volume_exact.value);
  (* fallback path: the plan records the fallback verdict at compile time
     and the estimator agrees with the unplanned one for equal seeds *)
  let g = parse blowup_src in
  let gcoords = Array.of_list (Var.Set.elements (Ast.free_vars g)) in
  let gp = Plan.cached ~budget:1e6 ~coords:gcoords g in
  check "fallback decided at plan time" true
    (match Plan.decision gp with
    | Dispatch.Fallback_approx _ -> true
    | Dispatch.Run_exact -> false);
  let a = Exec.volume_guarded ~seed:7 gp db0 in
  let b =
    Exec.volume_guarded ~seed:7 (Plan.cached ~budget:1e6 ~coords:gcoords g) db0
  in
  let d = Volume_exact.volume_guarded ~budget:1e6 ~seed:7 db0 gcoords g in
  check "sampling engine selected" true
    (match a.Volume_exact.engine with
    | Volume_exact.Approx_engine _ -> true
    | Volume_exact.Exact_engine -> false);
  check "warm fallback = cold fallback" true
    (Q.equal a.Volume_exact.value b.Volume_exact.value);
  check "matches the unplanned fallback" true
    (Q.equal a.Volume_exact.value d.Volume_exact.value)

let test_planner_hint () =
  Plan.clear_cache ();
  let f = parse sweep_src in
  let p = Cqa_analysis.Planner.compile ~db:db0 f in
  check "analyzer hint attached on the miss" true
    (Plan.hint p = Some Dispatch.Exact_semilinear);
  let g = parse blowup_src in
  let gp = Cqa_analysis.Planner.compile ~db:db0 ~budget:1e6 g in
  check "blowup shape still classified exact-semilinear" true
    (Plan.hint gp = Some Dispatch.Exact_semilinear);
  check "but guarded out by the budget" true
    (match Plan.decision gp with
    | Dispatch.Fallback_approx _ -> true
    | Dispatch.Run_exact -> false)

let () =
  Alcotest.run "cqa_plan"
    [ ( "cache",
        [ Alcotest.test_case "identity" `Quick test_cache_identity;
          Alcotest.test_case "hint_of once" `Quick test_hint_of_called_once;
          Alcotest.test_case "eviction" `Quick test_eviction ] );
      ( "exec",
        [ Alcotest.test_case "plan vs direct, dom 1/2/4" `Quick
            test_plan_vs_direct_domains;
          Alcotest.test_case "volume_of_query cached" `Quick
            test_volume_of_query_cached;
          Alcotest.test_case "parameterized" `Quick test_param_exec;
          Alcotest.test_case "slot validation" `Quick test_param_validation;
          Alcotest.test_case "warm = cold (guarded)" `Quick
            test_warm_cold_guarded ] );
      ( "planner",
        [ Alcotest.test_case "analyzer in the loop" `Quick test_planner_hint ] )
    ]
