open Cqa_arith
open Cqa_logic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int

(* ------------------------------------------------------------------ *)
(* Var / Schema / Instance                                             *)
(* ------------------------------------------------------------------ *)

let test_var () =
  let a = Var.fresh () and b = Var.fresh () in
  check "fresh distinct" false (Var.equal a b);
  check "fresh avoids user names" true
    (String.contains (Var.name (Var.fresh ~hint:"x" ())) '#');
  check "roundtrip" true (Var.equal (Var.of_string "x") (Var.of_string "x"))

let test_schema () =
  let s = Schema.of_list [ ("R", 2); ("U", 1) ] in
  check "mem" true (Schema.mem s "R");
  check "arity" true (Schema.arity s "R" = Some 2);
  check "absent" true (Schema.arity s "X" = None);
  check_int "names" 2 (List.length (Schema.names s));
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.add: duplicate relation R")
    (fun () -> ignore (Schema.add "R" 1 s));
  Alcotest.check_raises "bad arity" (Invalid_argument "Schema.add: non-positive arity")
    (fun () -> ignore (Schema.add "Z" 0 s))

let test_instance () =
  let s = Schema.of_list [ ("R", 2); ("U", 1) ] in
  let d =
    Instance.of_list s
      [ ("R", [ [| q 1; q 2 |]; [| q 1; q 2 |]; [| q 3; q 1 |] ]);
        ("U", [ [| q 5 |] ]) ]
  in
  check_int "dedup" 2 (Instance.cardinality d "R");
  check "mem" true (Instance.mem d "R" [| q 3; q 1 |]);
  check "not mem" false (Instance.mem d "R" [| q 2; q 1 |]);
  check_int "adom" 4 (Instance.size d);
  check "adom sorted" true (Instance.active_domain d = [ q 1; q 2; q 3; q 5 ]);
  let d2 = Instance.map_constants (fun v -> Q.mul v Q.two) d in
  check "map" true (Instance.mem d2 "U" [| q 10 |]);
  Alcotest.check_raises "arity" (Invalid_argument "Instance.add: arity mismatch for U")
    (fun () -> ignore (Instance.add "U" [| q 1; q 2 |] d))

(* ------------------------------------------------------------------ *)
(* Formula (with simple integer-comparison atoms)                      *)
(* ------------------------------------------------------------------ *)

type atom = Lt of Var.t * int (* "x < k" over integer assignments *)

let atom_vars (Lt (v, _)) = [ v ]
let negate_atom (Lt (v, k)) = Formula.Not (Formula.Atom (Lt (v, k)))
let x = Var.of_string "x"
let y = Var.of_string "y"

let rec eval_formula env (f : atom Formula.t) =
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom (Lt (v, k)) -> Var.Map.find v env < k
  | Formula.Rel _ -> assert false
  | Formula.Not g -> not (eval_formula env g)
  | Formula.And (g, h) -> eval_formula env g && eval_formula env h
  | Formula.Or (g, h) -> eval_formula env g || eval_formula env h
  | Formula.Exists (v, g) | Formula.Exists_adom (v, g) ->
      List.exists (fun k -> eval_formula (Var.Map.add v k env) g) [ 0; 1; 2; 3 ]
  | Formula.Forall (v, g) | Formula.Forall_adom (v, g) ->
      List.for_all (fun k -> eval_formula (Var.Map.add v k env) g) [ 0; 1; 2; 3 ]

let test_formula_free_vars () =
  let f =
    Formula.Exists (x, Formula.And (Formula.Atom (Lt (x, 1)), Formula.Atom (Lt (y, 2))))
  in
  check "bound excluded" true
    (Var.Set.equal (Formula.free_vars ~atom_vars f) (Var.Set.singleton y));
  let g =
    Formula.And (Formula.Atom (Lt (x, 0)), Formula.Exists (x, Formula.Atom (Lt (x, 1))))
  in
  check "shadowing" true
    (Var.Set.equal (Formula.free_vars ~atom_vars g) (Var.Set.singleton x))

let test_formula_metrics () =
  let f =
    Formula.Exists
      ( x,
        Formula.Or
          (Formula.Forall (y, Formula.Atom (Lt (y, 1))), Formula.Atom (Lt (x, 2))) )
  in
  check_int "qcount" 2 (Formula.quantifier_count f);
  check_int "qrank" 2 (Formula.quantifier_rank f);
  check_int "atoms" 2 (Formula.atom_count f);
  check "not qf" false (Formula.is_quantifier_free f);
  check "active_only false" false (Formula.active_only f);
  check "active_only true" true
    (Formula.active_only (Formula.Exists_adom (x, Formula.Atom (Lt (x, 1)))))

let random_formula rng depth =
  let rec go depth =
    if depth = 0 then
      Formula.Atom (Lt ((if Random.State.bool rng then x else y), Random.State.int rng 4))
    else begin
      match Random.State.int rng 5 with
      | 0 -> Formula.Not (go (depth - 1))
      | 1 -> Formula.And (go (depth - 1), go (depth - 1))
      | 2 -> Formula.Or (go (depth - 1), go (depth - 1))
      | 3 -> Formula.Exists ((if Random.State.bool rng then x else y), go (depth - 1))
      | _ -> Formula.Forall ((if Random.State.bool rng then x else y), go (depth - 1))
    end
  in
  go depth

let test_nnf_preserves_semantics () =
  let rng = Random.State.make [| 17 |] in
  for _ = 1 to 200 do
    let f = random_formula rng 4 in
    let g = Formula.nnf ~negate_atom f in
    for xv = 0 to 3 do
      for yv = 0 to 3 do
        let env = Var.Map.add x xv (Var.Map.singleton y yv) in
        check "nnf equivalent" (eval_formula env f) (eval_formula env g)
      done
    done
  done

let test_relations () =
  let f =
    Formula.And
      ( Formula.Rel ("R", [ x; y ]),
        Formula.Or (Formula.Rel ("U", [ x ]), Formula.Rel ("R", [ y; x ])) )
  in
  check "relations" true (Formula.relations f = [ "R"; "U" ])

(* ------------------------------------------------------------------ *)
(* EF games                                                            *)
(* ------------------------------------------------------------------ *)

let test_ef_pure_orders () =
  for k = 1 to 3 do
    for m = 1 to 8 do
      for n = 1 to 8 do
        let theory = Ef_game.linear_orders_equivalent k m n in
        let game =
          Ef_game.duplicator_wins k (Ef_game.uncolored m) (Ef_game.uncolored n)
        in
        if theory <> game then
          Alcotest.failf "EF mismatch k=%d m=%d n=%d: theory %b game %b" k m n
            theory game
      done
    done
  done

let test_ef_colored () =
  let a = Ef_game.of_color_sets 2 [ [ 0 ] ] in
  let b = Ef_game.of_color_sets 2 [ [] ] in
  check "one round suffices" false (Ef_game.duplicator_wins 1 a b);
  check "identity" true (Ef_game.duplicator_wins 3 a a)

let test_ef_separating_counterexample () =
  match
    Ef_game.separating_counterexample ~rounds:2 ~c1:(Q.of_int 2) ~c2:(Q.of_int 2)
  with
  | None -> Alcotest.fail "expected a counterexample"
  | Some (a, b) ->
      let card s =
        Array.fold_left
          (fun acc v -> if v then acc + 1 else acc)
          0 s.Ef_game.colors.(0)
      in
      let ca = card a and cb = card b in
      check "a has U-majority" true (ca > 2 * (a.Ef_game.size - ca));
      check "b has complement majority" true (b.Ef_game.size - cb > 2 * cb);
      check "duplicator wins" true (Ef_game.duplicator_wins 2 a b)

(* ------------------------------------------------------------------ *)
(* Circuits                                                            *)
(* ------------------------------------------------------------------ *)

let exists_sentence = Formula.Exists (x, Formula.Atom (Circuit.Pred (0, x)))

let two_elements_sentence =
  Formula.Exists
    ( x,
      Formula.Exists
        ( y,
          Formula.conj
            [ Formula.Atom (Circuit.Lt (x, y));
              Formula.Atom (Circuit.Pred (0, x));
              Formula.Atom (Circuit.Pred (0, y)) ] ) )

let eval_direct n sentence input =
  let rec go env (f : Circuit.atom Formula.t) =
    match f with
    | Formula.True -> true
    | Formula.False -> false
    | Formula.Atom (Circuit.Lt (a, b)) -> Var.Map.find a env < Var.Map.find b env
    | Formula.Atom (Circuit.Eq (a, b)) -> Var.Map.find a env = Var.Map.find b env
    | Formula.Atom (Circuit.Pred (_, a)) -> input.(Var.Map.find a env)
    | Formula.Rel _ -> assert false
    | Formula.Not g -> not (go env g)
    | Formula.And (g, h) -> go env g && go env h
    | Formula.Or (g, h) -> go env g || go env h
    | Formula.Exists (v, g) | Formula.Exists_adom (v, g) ->
        List.exists (fun i -> go (Var.Map.add v i env) g) (List.init n Fun.id)
    | Formula.Forall (v, g) | Formula.Forall_adom (v, g) ->
        List.for_all (fun i -> go (Var.Map.add v i env) g) (List.init n Fun.id)
  in
  go Var.Map.empty sentence

let test_circuit_translation () =
  List.iter
    (fun sentence ->
      for n = 1 to 5 do
        let c = Circuit.of_sentence ~preds:1 ~n sentence in
        check_int "inputs" n (Circuit.input_count c);
        for mask = 0 to (1 lsl n) - 1 do
          let input = Array.init n (fun i -> (mask lsr i) land 1 = 1) in
          check "circuit = FO" (eval_direct n sentence input) (Circuit.eval c input)
        done
      done)
    [ exists_sentence; two_elements_sentence ]

let test_circuit_depth_size () =
  let c = Circuit.of_sentence ~preds:1 ~n:4 two_elements_sentence in
  check "positive size" true (Circuit.gate_count c > 0);
  check "constant depth" true (Circuit.depth c <= 5)

let test_circuit_separation_failure () =
  (* "at least two elements of U" accepts card 2 < 9/3: not (1/3,2/3)-good *)
  let n = 9 in
  let c = Circuit.of_sentence ~preds:1 ~n two_elements_sentence in
  check "fails to separate" false
    (Circuit.separates_cardinalities ~c1:(Q.of_ints 1 3) ~c2:(Q.of_ints 2 3) ~n c)

let test_circuit_free_var_rejected () =
  Alcotest.check_raises "free var"
    (Invalid_argument "Circuit.of_sentence: free variable x") (fun () ->
      ignore (Circuit.of_sentence ~preds:1 ~n:3 (Formula.Atom (Circuit.Pred (0, x)))))

let () =
  Alcotest.run "cqa_logic"
    [ ( "base",
        [ Alcotest.test_case "var" `Quick test_var;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "instance" `Quick test_instance ] );
      ( "formula",
        [ Alcotest.test_case "free vars" `Quick test_formula_free_vars;
          Alcotest.test_case "metrics" `Quick test_formula_metrics;
          Alcotest.test_case "nnf semantics" `Quick test_nnf_preserves_semantics;
          Alcotest.test_case "relations" `Quick test_relations ] );
      ( "ef-games",
        [ Alcotest.test_case "pure orders vs theory" `Slow test_ef_pure_orders;
          Alcotest.test_case "colored" `Quick test_ef_colored;
          Alcotest.test_case "separating counterexample" `Quick
            test_ef_separating_counterexample ] );
      ( "circuits",
        [ Alcotest.test_case "translation" `Quick test_circuit_translation;
          Alcotest.test_case "depth size" `Quick test_circuit_depth_size;
          Alcotest.test_case "separation failure" `Quick test_circuit_separation_failure;
          Alcotest.test_case "free var rejected" `Quick test_circuit_free_var_rejected ] ) ]
