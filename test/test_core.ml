open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints
let rng = Random.State.make [| 4242 |]
let dv2 = Semilinear.default_vars 2

let iv var a b =
  [ Linconstr.ge (Linexpr.var var) (Linexpr.const a);
    Linconstr.le (Linexpr.var var) (Linexpr.const b) ]

let x0 = (Semilinear.default_vars 1).(0)

let u_set =
  Semilinear.make [| x0 |] [ iv x0 Q.zero Q.one; iv x0 (q 2) (q 3) ]

let schema = Schema.of_list [ ("U", 1); ("P", 2) ]

let tri_conj =
  [ Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero;
    Linconstr.ge (Linexpr.var dv2.(1)) Linexpr.zero;
    Linconstr.le
      (Linexpr.add (Linexpr.var dv2.(0)) (Linexpr.var dv2.(1)))
      (Linexpr.const (q 2)) ]

let db =
  Db.of_list schema
    [ ("U", Db.Semilin u_set);
      ("P", Db.Semilin (Semilinear.of_conjunction dv2 tri_conj)) ]

let w = Var.of_string "w"
let xx = Var.of_string "x"
let yy = Var.of_string "y"

(* ------------------------------------------------------------------ *)
(* Ast                                                                 *)
(* ------------------------------------------------------------------ *)

let sum_endpoints guard =
  Ast.sum ~gamma_var:xx
    ~gamma:Ast.(TVar xx =! TVar w)
    ~w:[ w ] ~guard ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))

let test_ast_free_vars () =
  let t = sum_endpoints Ast.(TVar w <=! TVar (Var.of_string "param")) in
  check "param free" true
    (Var.Set.mem (Var.of_string "param") (Ast.term_free_vars t));
  check "w bound" false (Var.Set.mem w (Ast.term_free_vars t));
  check "gamma var bound" false (Var.Set.mem xx (Ast.term_free_vars t));
  let f = Ast.Exists (xx, Ast.(TVar xx <! TVar yy)) in
  check "exists binds" true
    (Var.Set.equal (Ast.free_vars f) (Var.Set.singleton yy))

let test_ast_subst () =
  let f = Ast.(And (TVar xx <! TVar yy, Exists (xx, TVar xx <! int 3))) in
  let g = Ast.subst (Var.Map.singleton xx (q 1)) f in
  check "outer substituted, inner shadowed" true
    (match g with
    | Ast.And (Ast.Cmp (Ast.Clt, Ast.Const c, _), Ast.Exists (_, Ast.Cmp (Ast.Clt, Ast.TVar v, _))) ->
        Q.equal c Q.one && Var.equal v xx
    | _ -> false)

let test_ast_subst_sum () =
  let param = Var.of_string "param" in
  let t = sum_endpoints Ast.(TVar w <=! TVar param) in
  (* only the genuinely free variable is substituted *)
  let t2 = Ast.subst_term (Var.Map.singleton param (q 9)) t in
  check "param substituted" true (Var.Set.is_empty (Ast.term_free_vars t2));
  (* every sum binder shadows the environment in its own section *)
  check "tuple binder shadows" true
    (Ast.subst_term (Var.Map.singleton w (q 9)) t = t);
  check "gamma binder shadows" true
    (Ast.subst_term (Var.Map.singleton xx (q 9)) t = t);
  check "END binder shadows" true
    (Ast.subst_term (Var.Map.singleton yy (q 9)) t = t);
  (* end_y is bound in end_body only: the same name free in the guard is a
     different variable and is substituted there *)
  let leaky = sum_endpoints Ast.(TVar w <=! TVar yy) in
  check "end_y free in guard" true
    (Var.Set.mem yy (Ast.term_free_vars leaky));
  let closed = Ast.subst_term (Var.Map.singleton yy (q 2)) leaky in
  check "guard occurrence substituted" true
    (Var.Set.is_empty (Ast.term_free_vars closed));
  (match closed with
  | Ast.Sum s ->
      check "end_body untouched" true (s.Ast.end_body = Ast.Rel ("U", [ yy ]))
  | _ -> Alcotest.fail "still a sum")

let test_ast_conversions () =
  let p =
    Cqa_poly.Mpoly.add
      (Cqa_poly.Mpoly.mul (Cqa_poly.Mpoly.var xx) (Cqa_poly.Mpoly.var yy))
      (Cqa_poly.Mpoly.constant (qq 1 2))
  in
  (match Ast.to_mpoly (Ast.of_mpoly p) with
  | Some p' -> check "mpoly roundtrip" true (Cqa_poly.Mpoly.equal p p')
  | None -> Alcotest.fail "sum-free");
  check "sum has no mpoly" true (Ast.to_mpoly (sum_endpoints Ast.True) = None);
  check_int "sum depth" 1 (Ast.sum_depth (sum_endpoints Ast.True));
  check "relations" true (Ast.relations (Ast.Rel ("U", [ xx ])) = [ "U" ])

(* ------------------------------------------------------------------ *)
(* Db                                                                  *)
(* ------------------------------------------------------------------ *)

let test_db () =
  check "mem semilin" true (Db.mem_tuple db "U" [| Q.half |]);
  check "not mem" false (Db.mem_tuple db "U" [| qq 3 2 |]);
  check "is_linear" true (Db.is_linear db);
  let fin = Db.of_list schema [ ("U", Db.Finite [ [| q 1 |]; [| q 4 |] ]) ] in
  (match Db.as_semilinear fin "U" with
  | Some s ->
      check "finite as semilinear" true
        (Semilinear.mem s [| q 4 |] && not (Semilinear.mem s [| q 2 |]))
  | None -> Alcotest.fail "convertible");
  let alg =
    Db.of_list schema
      [ ("P", Db.Semialgebraic (Cqa_poly.Semialg.ball ~center:[| Q.zero; Q.zero |] ~radius:Q.one)) ]
  in
  check "alg not linear" false (Db.is_linear alg);
  check "as_semilinear none" true (Db.as_semilinear alg "P" = None);
  Alcotest.check_raises "unknown relation" Not_found (fun () ->
      ignore (Db.find db "missing"))

(* ------------------------------------------------------------------ *)
(* Eval                                                                *)
(* ------------------------------------------------------------------ *)

let test_eval_sum_endpoints () =
  check "sum endpoints" true
    (Q.equal (Eval.eval_term db Var.Map.empty (sum_endpoints Ast.True)) (q 6));
  check "guard filter" true
    (Q.equal
       (Eval.eval_term db Var.Map.empty (sum_endpoints Ast.(TVar w >=! int 2)))
       (q 5));
  (* nonlinear gamma over bound w *)
  let t =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(TVar xx =! (TVar w *! TVar w))
      ~w:[ w ] ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "squares" true (Q.equal (Eval.eval_term db Var.Map.empty t) (q 14))

let test_eval_holds_quantifiers () =
  let z = Var.of_string "z" in
  check "exists sat" true
    (Eval.holds db Var.Map.empty
       (Ast.Exists (z, Ast.(And (Rel ("U", [ z ]), TVar z >! int 2)))));
  check "exists unsat" false
    (Eval.holds db Var.Map.empty
       (Ast.Exists (z, Ast.(And (Rel ("U", [ z ]), TVar z >! int 3)))));
  check "forall" true
    (Eval.holds db Var.Map.empty
       (Ast.Forall (z, Ast.(implies (Rel ("U", [ z ])) (TVar z <=! int 3)))))

let test_eval_set_closure () =
  let a = Var.of_string "a" and b = Var.of_string "b" in
  let s =
    Eval.eval_set db [| a; b |]
      Ast.(conj [ Rel ("U", [ a ]); Rel ("U", [ b ]); TVar a <! TVar b ])
  in
  check "pair in" true (Semilinear.mem s [| Q.half; q 2 |]);
  check "pair out" false (Semilinear.mem s [| q 2; Q.half |])

let test_eval_section () =
  let env = Var.Map.singleton xx Q.half in
  let c =
    Eval.section db env yy Ast.(And (Rel ("U", [ yy ]), TVar yy >! TVar xx))
  in
  check "section endpoints" true (Cell1.endpoints c = [ Q.half; q 1; q 2; q 3 ])

let test_eval_gamma_partial () =
  (* gamma undefined on some tuples: those contribute nothing *)
  let t =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(conj [ TVar xx =! TVar w; TVar w >=! int 2 ])
      ~w:[ w ] ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "partial gamma" true (Q.equal (Eval.eval_term db Var.Map.empty t) (q 5))

let test_eval_nondeterministic_gamma_rejected () =
  let t =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(conj [ TVar xx >=! TVar w; TVar xx <=! (TVar w +! int 1) ])
      ~w:[ w ] ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "runtime nondeterminism" true
    (try
       ignore (Eval.eval_term db Var.Map.empty t);
       false
     with Invalid_argument _ -> true)

let test_eval_unsupported () =
  (* summation with an unbound parameter cannot be folded into an atom *)
  let t = sum_endpoints Ast.(TVar w <=! TVar (Var.of_string "param")) in
  let f = Ast.(Cmp (Ast.Clt, t, Ast.int 100)) in
  check "open sum unsupported" true
    (try
       ignore (Eval.eval_set db [| Var.of_string "param" |] f);
       false
     with Eval.Unsupported _ -> true)

let test_eval_section_alg () =
  let alg_db =
    Db.of_list schema
      [ ("P", Db.Semialgebraic (Cqa_poly.Semialg.ball ~center:[| Q.zero; Q.zero |] ~radius:(q 2))) ]
  in
  let s = Eval.section_alg alg_db (Var.Map.singleton xx Q.zero) yy (Ast.Rel ("P", [ xx; yy ])) in
  match Cqa_poly.Semialg.Section.measure_approx ~eps:(qq 1 1000) s with
  | Some m -> check "disk chord" true (abs_float (Q.to_float m -. 4.0) < 0.002)
  | None -> Alcotest.fail "finite"

(* ------------------------------------------------------------------ *)
(* Deterministic                                                       *)
(* ------------------------------------------------------------------ *)

let test_deterministic () =
  let det = Ast.(TVar xx =! ((TVar w *! int 2) +! int 1)) in
  check "linear det" true
    (Deterministic.check db ~gamma_var:xx ~w:[ w ] det = Deterministic.Deterministic);
  let nondet = Ast.(conj [ TVar xx >=! TVar w; TVar xx <=! (TVar w +! int 1) ]) in
  (match Deterministic.check db ~gamma_var:xx ~w:[ w ] nondet with
  | Deterministic.Not_deterministic _ -> ()
  | _ -> Alcotest.fail "expected nondeterministic");
  (* nonlinear explicit graph is recognized syntactically *)
  let explicit = Ast.(TVar xx =! (TVar w *! TVar w)) in
  check "explicit graph" true
    (Deterministic.check db ~gamma_var:xx ~w:[ w ] explicit = Deterministic.Deterministic);
  (* nonlinear non-graph: unknown *)
  let unknown = Ast.(Cmp (Ast.Cle, Mul (TVar xx, TVar xx), TVar w)) in
  check "unknown" true
    (Deterministic.check db ~gamma_var:xx ~w:[ w ] unknown = Deterministic.Unknown)

let test_deterministic_spellings () =
  let t = Ast.((TVar w *! TVar w) +! int 1) in
  (* t = x: the flipped spelling of an explicit graph *)
  check "flipped graph" true
    (Deterministic.is_explicit_graph ~gamma_var:xx Ast.(t =! TVar xx));
  (* an even number of negations preserves the shape *)
  check "double negation" true
    (Deterministic.is_explicit_graph ~gamma_var:xx
       (Ast.Not (Ast.Not Ast.(TVar xx =! t))));
  check "single negation is not a graph" false
    (Deterministic.is_explicit_graph ~gamma_var:xx
       (Ast.Not Ast.(TVar xx =! t)));
  (* the parser's ~(x <> t) desugars to Not (Or (x < t, t < x)) *)
  let ne = Parser.formula_of_string "~(x <> w * w + 1)" in
  check "negated disequality" true
    (Deterministic.is_explicit_graph ~gamma_var:xx ne);
  (* x must not occur in t *)
  check "self-referential is not a graph" false
    (Deterministic.is_explicit_graph ~gamma_var:xx
       Ast.(TVar xx =! (TVar xx +! int 1)));
  check "spelling accepted by check" true
    (Deterministic.check db ~gamma_var:xx ~w:[ w ] ne
    = Deterministic.Deterministic);
  (* pp_verdict prints the two-output witness *)
  let nondet =
    Ast.(conj [ TVar xx >=! TVar w; TVar xx <=! (TVar w +! int 1) ])
  in
  let v = Deterministic.check db ~gamma_var:xx ~w:[ w ] nondet in
  let s = Format.asprintf "%a" Deterministic.pp_verdict v in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check "witness printed" true
    ((match v with Deterministic.Not_deterministic _ -> true | _ -> false)
    && contains s "not deterministic")

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let fin_db =
  Db.of_list schema
    [ ("U", Db.Finite [ [| q 1 |]; [| q 2 |]; [| q 6 |] ]) ]

let test_aggregates () =
  let a = Var.of_string "a" in
  let query = Ast.Rel ("U", [ a ]) in
  check "count" true (Aggregates.count fin_db [| a |] query = Some 3);
  check "sum" true (Aggregates.sum_coord fin_db a query = Some (q 9));
  check "avg" true (Aggregates.avg_coord fin_db a query = Some (q 3));
  check "min" true (Aggregates.min_coord fin_db a query = Some (q 1));
  check "max" true (Aggregates.max_coord fin_db a query = Some (q 6));
  (* filtered aggregation *)
  let filtered = Ast.(And (query, TVar a >! int 1)) in
  check "filtered avg" true (Aggregates.avg_coord fin_db a filtered = Some (q 4));
  (* infinite output *)
  check "infinite none" true (Aggregates.count db [| a |] (Ast.Rel ("U", [ a ])) = None);
  (* empty output *)
  check "empty avg none" true
    (Aggregates.avg_coord fin_db a Ast.(And (query, TVar a >! int 100)) = None);
  check "empty count zero" true
    (Aggregates.count fin_db [| a |] Ast.(And (query, TVar a >! int 100)) = Some 0)

let test_aggregates_gamma () =
  let a = Var.of_string "a" in
  let query = Ast.Rel ("U", [ a ]) in
  (* chi: x = 2a *)
  let vg = Var.of_string "vg" in
  check "sum gamma" true
    (Aggregates.sum_gamma fin_db [| a |] query ~gamma_var:vg
       ~gamma:Ast.(TVar vg =! (TVar a *! int 2))
    = Some (q 18));
  check "avg gamma" true
    (Aggregates.avg_gamma fin_db [| a |] query ~gamma_var:vg
       ~gamma:Ast.(TVar vg =! (TVar a *! TVar a))
    = Some (Q.div (q 41) (q 3)))

(* ------------------------------------------------------------------ *)
(* Volume (exact, approx, trivial, mu, variable independence)          *)
(* ------------------------------------------------------------------ *)

let rand_union () =
  let conj () =
    let atoms =
      List.concat_map
        (fun v ->
          let a = qq (Random.State.int rng 9 - 4) 2 in
          let wdt = qq (1 + Random.State.int rng 6) 2 in
          iv v a (Q.add a wdt))
        (Array.to_list dv2)
    in
    atoms
    @ List.init (Random.State.int rng 2) (fun _ ->
          Linconstr.make
            (Linexpr.of_list
               (q (Random.State.int rng 7 - 3))
               [ (q (Random.State.int rng 5 - 2), dv2.(0));
                 (q (Random.State.int rng 5 - 2), dv2.(1)) ])
            Linconstr.Le)
  in
  Semilinear.make dv2 (List.init (1 + Random.State.int rng 3) (fun _ -> conj ()))

let test_volume_known () =
  let tri = Semilinear.of_conjunction dv2 tri_conj in
  check "triangle 2" true (Q.equal (Volume_exact.volume tri) (q 2));
  check "clamped" true (Q.equal (Volume_exact.volume_clamped tri) Q.one);
  check "empty" true (Q.is_zero (Volume_exact.volume (Semilinear.empty 2)));
  check "unbounded raises" true
    (try
       ignore (Volume_exact.volume (Semilinear.full 2));
       false
     with Volume_exact.Unbounded -> true)

let test_volume_cross_check () =
  for _ = 1 to 30 do
    let s = rand_union () in
    check "sweep = incl-excl" true
      (Q.equal (Volume_exact.volume_sweep s) (Volume_exact.volume_incl_excl s))
  done

let test_volume_additivity () =
  for _ = 1 to 20 do
    let a = rand_union () and b = rand_union () in
    let vu = Volume_exact.volume (Semilinear.union a b) in
    let vi = Volume_exact.volume (Semilinear.inter a b) in
    check "inclusion-exclusion identity" true
      (Q.equal (Q.add vu vi)
         (Q.add (Volume_exact.volume a) (Volume_exact.volume b)))
  done

let test_volume_monotone () =
  for _ = 1 to 20 do
    let a = rand_union () and b = rand_union () in
    check "monotone" true
      (Q.leq (Volume_exact.volume (Semilinear.inter a b)) (Volume_exact.volume a))
  done

let test_volume_approx () =
  let prng = Cqa_vc.Prng.create 5 in
  let disk = Cqa_poly.Semialg.ball ~center:[| Q.half; Q.half |] ~radius:(qq 2 5) in
  let est = Volume_approx.approx_semialg ~prng ~m:4000 disk in
  let truth = Float.pi *. 0.16 in
  check "disk estimate" true (abs_float (Q.to_float est -. truth) < 0.03);
  let { Volume_approx.estimate; sample_size } =
    Volume_approx.approx_semialg_eps ~prng ~eps:0.05 ~delta:0.1 ~vc_dim:3 disk
  in
  check "eps variant close" true (abs_float (Q.to_float estimate -. truth) < 0.05);
  check "sample size sane" true (sample_size > 100)

let test_volume_approx_query () =
  let prng = Cqa_vc.Prng.create 11 in
  (* VOL_I of the triangle = 1 (its unit-cube part is the half square plus
     complement... actually the triangle x+y<=2 covers the whole unit square) *)
  let est =
    Volume_approx.approx_query ~prng ~m:800 db ~yvars:dv2 (Ast.Rel ("P", dv2 |> Array.to_list))
  in
  check "triangle covers cube" true (Q.equal est Q.one);
  (* family version: sections P(x, .) for several x *)
  let fam =
    Volume_approx.approx_query_family ~prng ~m:2000 db ~xvars:[| dv2.(0) |]
      ~yvars:[| dv2.(1) |]
      (Ast.Rel ("P", [ dv2.(0); dv2.(1) ]))
      ~params:[ [| Q.zero |]; [| Q.one |]; [| qq 3 2 |] ]
  in
  List.iter
    (fun (a, est) ->
      let truth = min 1.0 (2.0 -. Q.to_float a.(0)) in
      check "family accuracy" true (abs_float (Q.to_float est -. truth) < 0.05))
    fam

let test_volume_approx_domains () =
  (* the parallel sampler drives Eval.holds (and the QE memo behind it)
     from several domains at once: for a fixed seed and domain count the
     estimate must be reproducible, and the halton variant must not depend
     on the domain count at all *)
  let f = Ast.Rel ("P", dv2 |> Array.to_list) in
  let run domains =
    let prng = Cqa_vc.Prng.create 11 in
    Volume_approx.approx_query ~domains ~prng ~m:600 db ~yvars:dv2 f
  in
  check "seq covers cube" true (Q.equal (run 1) Q.one);
  let a = run 3 and b = run 3 in
  check "parallel deterministic" true (Q.equal a b);
  check "parallel covers cube" true (Q.equal a Q.one);
  let h d = Volume_approx.halton_approx_query ~domains:d ~m:400 db ~yvars:dv2 f in
  check "halton domain-invariant" true (Q.equal (h 1) (h 4));
  let fam d =
    let prng = Cqa_vc.Prng.create 23 in
    Volume_approx.approx_query_family ~domains:d ~prng ~m:900 db
      ~xvars:[| dv2.(0) |] ~yvars:[| dv2.(1) |]
      (Ast.Rel ("P", [ dv2.(0); dv2.(1) ]))
      ~params:[ [| Q.zero |]; [| Q.one |]; [| qq 3 2 |] ]
  in
  let fa = fam 3 and fb = fam 3 in
  check "family parallel deterministic" true
    (List.for_all2 (fun (_, u) (_, v) -> Q.equal u v) fa fb);
  List.iter
    (fun (p, est) ->
      let truth = Stdlib.min 1.0 (2.0 -. Q.to_float p.(0)) in
      check "family parallel accuracy" true
        (abs_float (Q.to_float est -. truth) < 0.06))
    fa


let test_volume_kernel_ablation () =
  (* the float-filtered kernel must be byte-identical to the exact one:
     same rationals, same printed form, at every domain count.  Caches are
     cleared around each switch so both kernels genuinely run. *)
  let was = Flatrow.enabled () in
  let vol kernel s domains =
    Flatrow.set_kernel kernel;
    Fourier_motzkin.clear_qe_cache ();
    Semilinear.clear_bbox_cache ();
    Volume_exact.volume_sweep ~domains s
  in
  Fun.protect
    ~finally:(fun () ->
      Flatrow.set_kernel was;
      Fourier_motzkin.clear_qe_cache ())
    (fun () ->
      for _ = 1 to 10 do
        let s = rand_union () in
        let reference = vol false s 1 in
        List.iter
          (fun domains ->
            let filtered = vol true s domains in
            check "kernel ablation Q.equal" true (Q.equal reference filtered);
            Alcotest.(check string)
              "kernel ablation bytes" (Q.to_string reference)
              (Q.to_string filtered))
          [ 1; 2; 4 ]
      done)

let test_volume_domains () =
  (* the parallel exact-volume engine must be value-identical to the
     sequential one for every domain count *)
  for _ = 1 to 12 do
    let s = rand_union () in
    let v1 = Volume_exact.volume_sweep ~domains:1 s in
    List.iter
      (fun k ->
        check "sweep domains" true
          (Q.equal v1 (Volume_exact.volume_sweep ~domains:k s)))
      [ 2; 4 ];
    let w1 = Volume_exact.volume_incl_excl ~domains:1 s in
    List.iter
      (fun k ->
        check "incl-excl domains" true
          (Q.equal w1 (Volume_exact.volume_incl_excl ~domains:k s)))
      [ 2; 4 ];
    check "sweep = incl-excl (parallel)" true (Q.equal v1 w1);
    let c1 = Volume_exact.volume_clamped ~domains:1 s in
    check "clamped domains" true
      (Q.equal c1 (Volume_exact.volume_clamped ~domains:4 s))
  done;
  (* parametric sections too *)
  for _ = 1 to 6 do
    let s = rand_union () in
    let f1 = Volume_param.section_volume_function ~domains:1 s in
    let f4 = Volume_param.section_volume_function ~domains:4 s in
    check_int "same piece count" (List.length f1) (List.length f4);
    check "same integral" true
      (Q.equal (Volume_param.integrate f1) (Volume_param.integrate f4));
    List.iter2
      (fun p1 p4 ->
        check "same piece bounds" true
          (Q.equal p1.Volume_param.lo p4.Volume_param.lo
          && Q.equal p1.Volume_param.hi p4.Volume_param.hi))
      f1 f4
  done

let test_arrangement_vertices () =
  let tri = Semilinear.of_conjunction dv2 tri_conj in
  let verts = Volume_exact.arrangement_vertices tri in
  (* 3 hyperplanes in dimension 2, all pairs independent: 3 vertices *)
  check_int "triangle vertex count" 3 (List.length verts);
  let expect = [ (Q.zero, Q.zero); (Q.zero, q 2); (q 2, Q.zero) ] in
  List.iter
    (fun (a, b) ->
      check "vertex present" true
        (List.exists (fun v -> Q.equal v.(0) a && Q.equal v.(1) b) verts))
    expect;
  (* the advisory subset limit only warns: results are unchanged *)
  let dflt = Volume_exact.get_max_arrangement_subsets () in
  Volume_exact.set_max_arrangement_subsets 1;
  let verts' = Volume_exact.arrangement_vertices tri in
  Volume_exact.set_max_arrangement_subsets dflt;
  check_int "guarded run identical" (List.length verts) (List.length verts');
  List.iter2
    (fun v w -> check "guarded vertices equal" true (Qmat.vec_equal v w))
    verts verts'

let test_trivial_approx () =
  let tri = Semilinear.of_conjunction dv2 tri_conj in
  check "nontrivial 1/2" true (Q.equal (Trivial_approx.trivial_approx tri) Q.one);
  (* the triangle covers the whole unit cube: volume 1 detected *)
  let small = Semilinear.of_conjunction dv2 (iv dv2.(0) (q 5) (q 6) @ iv dv2.(1) Q.zero Q.one) in
  check "outside cube: 0" true (Q.is_zero (Trivial_approx.trivial_approx small));
  let half_box =
    Semilinear.of_conjunction dv2 (iv dv2.(0) Q.zero Q.half @ iv dv2.(1) Q.zero Q.one)
  in
  check "genuinely 1/2" true (Q.equal (Trivial_approx.trivial_approx half_box) Q.half);
  (* always within 1/2 of the exact clamped volume *)
  for _ = 1 to 30 do
    let s = rand_union () in
    let t = Trivial_approx.trivial_approx s in
    let v = Volume_exact.volume_clamped s in
    check "within 1/2" true (Q.leq (Q.abs (Q.sub t v)) Q.half)
  done

let test_mu () =
  (* bounded sets have density zero *)
  let tri = Semilinear.of_conjunction dv2 tri_conj in
  check "bounded mu 0" true (Q.is_zero (Mu.mu tri));
  (* halfplane: 1/2 *)
  let half = Semilinear.halfspace dv2 (Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero) in
  check "halfplane 1/2" true (Q.equal (Mu.mu half) Q.half);
  (* quadrant: 1/4 *)
  let quad =
    Semilinear.of_conjunction dv2
      [ Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero;
        Linconstr.ge (Linexpr.var dv2.(1)) Linexpr.zero ]
  in
  check "quadrant 1/4" true (Q.equal (Mu.mu quad) (qq 1 4));
  check "full 1" true (Q.equal (Mu.mu (Semilinear.full 2)) Q.one);
  check "empty 0" true (Q.is_zero (Mu.mu (Semilinear.empty 2)));
  (* a bounded strip union quadrant still 1/4 *)
  let mixed = Semilinear.union quad tri in
  check "union with bounded" true (Q.equal (Mu.mu mixed) (qq 1 4))

let test_var_indep () =
  let box = Semilinear.of_conjunction dv2 (iv dv2.(0) Q.zero Q.one @ iv dv2.(1) Q.zero Q.two) in
  check "box is vi" true (Var_indep.is_variable_independent box);
  check "vi volume" true (Q.equal (Var_indep.grid_volume box) (q 2));
  let tri = Semilinear.of_conjunction dv2 tri_conj in
  check "triangle not vi" false (Var_indep.is_variable_independent tri);
  (* union of boxes: vi and grid volume agrees with the sweep *)
  for _ = 1 to 20 do
    let boxes =
      Semilinear.make dv2
        (List.init (1 + Random.State.int rng 3) (fun _ ->
             List.concat_map
               (fun v ->
                 let a = qq (Random.State.int rng 9 - 4) 2 in
                 iv v a (Q.add a (qq (1 + Random.State.int rng 4) 2)))
               (Array.to_list dv2)))
    in
    check "vi detected" true (Var_indep.is_variable_independent boxes);
    check "grid = sweep" true
      (Q.equal (Var_indep.grid_volume boxes) (Volume_exact.volume boxes))
  done

(* ------------------------------------------------------------------ *)
(* Witness / Separating                                                *)
(* ------------------------------------------------------------------ *)

let test_witness () =
  let prng = Cqa_vc.Prng.create 3 in
  let a = Var.of_string "a" in
  (match Witness.witness ~prng fin_db [| a |] (Ast.Rel ("U", [ a ])) with
  | Some pt -> check "witness in relation" true (Db.mem_tuple fin_db "U" pt)
  | None -> Alcotest.fail "nonempty");
  check "empty none" true
    (Witness.witness ~prng fin_db [| a |] Ast.(And (Rel ("U", [ a ]), TVar a >! int 50)) = None);
  (* infinite: representative point *)
  match Witness.witness ~prng db [| a |] (Ast.Rel ("U", [ a ])) with
  | Some pt -> check "sample point in set" true (Db.mem_tuple db "U" pt)
  | None -> Alcotest.fail "nonempty set"

let test_separating_avg () =
  let delta = qq 1 10 in
  for n1 = 1 to 6 do
    for n2 = 1 to 6 do
      let u1, u2 = Separating.translate_points ~n1 ~n2 ~delta in
      check_int "sizes" n1 (List.length u1);
      (* all in the right bands *)
      List.iter (fun v -> check "u1 band" true (Q.lt Q.zero v && Q.lt v delta)) u1;
      List.iter
        (fun v -> check "u2 band" true (Q.lt (Q.sub Q.one delta) v && Q.lt v Q.one))
        u2;
      (* closed form equals direct average *)
      let direct =
        Q.div
          (List.fold_left Q.add Q.zero (u1 @ u2))
          (Q.of_int (n1 + n2))
      in
      check "avg closed form" true (Q.equal direct (Separating.avg_translated ~n1 ~n2 ~delta));
      (* ratio recovery *)
      match Separating.ratio_from_avg ~avg:direct ~delta with
      | Some r -> check "ratio" true (Q.equal r (qq n1 n2))
      | None -> Alcotest.fail "ratio defined"
    done
  done

let test_separating_thresholds () =
  let c1, c2 = Separating.separating_thresholds ~eps:(qq 1 10) ~delta:(qq 1 10) in
  check "c1 > 1" true (Q.gt c1 Q.one);
  check "symmetric" true (Q.equal c1 c2);
  (* the promised decision property: if n1 > c1 n2 then avg < 1/2 - eps *)
  let delta = qq 1 10 and eps = qq 1 10 in
  let n2 = 5 in
  let n1 = 1 + Bigint.to_int_exn (Q.ceil (Q.mul c1 (q n2))) in
  let avg = Separating.avg_translated ~n1 ~n2 ~delta in
  check "below threshold" true (Q.lt avg (Q.sub Q.half eps));
  Alcotest.check_raises "eps too big"
    (Invalid_argument "Separating.separating_thresholds: eps >= 1/2") (fun () ->
      ignore (Separating.separating_thresholds ~eps:Q.half ~delta:(qq 1 10)))

let test_lemma2 () =
  let gi = Separating.good_instance ~a_card:6 ~b:[ 0; 2; 3 ] in
  let vx, vy = Separating.lemma2_volumes gi in
  check "volumes in [0,1]" true
    (Q.leq Q.zero vx && Q.leq vx Q.one && Q.leq Q.zero vy && Q.leq vy Q.one);
  (* monotonicity: a bigger B gives a bigger X volume *)
  let gi_small = Separating.good_instance ~a_card:8 ~b:[ 0 ] in
  let gi_large = Separating.good_instance ~a_card:8 ~b:[ 0; 1; 2; 3; 4; 5 ] in
  let vxs, _ = Separating.lemma2_volumes gi_small in
  let vxl, _ = Separating.lemma2_volumes gi_large in
  check "monotone in |B|" true (Q.lt vxs vxl);
  Alcotest.check_raises "B proper"
    (Invalid_argument "Separating.good_instance: B must be a proper subset")
    (fun () -> ignore (Separating.good_instance ~a_card:2 ~b:[ 0; 1 ]))

(* ------------------------------------------------------------------ *)
(* Volume_param: Lemma 5                                               *)
(* ------------------------------------------------------------------ *)

let test_volume_param_section3 () =
  (* the Section 3 example, one parameter fixed: with a = 1/10, the set
     { (y1, y2, t) | a < y1 < t, 0 <= y2 <= y1, a <= t <= 1 } has section
     volume V(t) = (t^2 - a^2) / 2 on (a, 1) *)
  let a = qq 1 10 in
  let dv3 = Semilinear.default_vars 3 in
  let y1 = Linexpr.var dv3.(0) and y2 = Linexpr.var dv3.(1) and t = Linexpr.var dv3.(2) in
  let s =
    Semilinear.of_conjunction dv3
      [ Linconstr.lt (Linexpr.const a) y1; Linconstr.lt y1 t;
        Linconstr.ge y2 Linexpr.zero; Linconstr.le y2 y1;
        Linconstr.ge t (Linexpr.const a); Linconstr.le t (Linexpr.const Q.one) ]
  in
  let f = Volume_param.section_volume_function s in
  (* V(t) = t^2/2 - a^2/2: degree 2, hence not semi-linear (Lemma 5's point) *)
  check_int "degree 2" 2 (Volume_param.degree f);
  check "not piecewise linear" false (Volume_param.is_piecewise_linear f);
  List.iter
    (fun k ->
      let tv = qq k 10 in
      let expected = Q.mul (Q.sub (Q.mul tv tv) (Q.mul a a)) Q.half in
      check "matches closed form" true (Q.equal (Volume_param.eval f tv) expected))
    [ 2; 5; 9 ];
  (* integrating the pieces reproduces the total volume *)
  check "integral = volume" true
    (Q.equal (Volume_param.integrate f) (Volume_exact.volume s));
  (* the graph is semi-algebraic and contains (t, V(t)) *)
  let g = Volume_param.to_semialgebraic_graph f in
  check "graph member" true
    (Cqa_poly.Semialg.mem g [| Q.half; Volume_param.eval f Q.half |]);
  check "graph non-member" false
    (Cqa_poly.Semialg.mem g [| Q.half; Q.add (Volume_param.eval f Q.half) Q.one |])

let test_volume_param_box () =
  (* a box has piecewise-constant (degree 0) section volume *)
  let s =
    Semilinear.of_conjunction dv2 (iv dv2.(0) Q.zero (q 3) @ iv dv2.(1) Q.one (q 2))
  in
  let f = Volume_param.section_volume_function s in
  check "piecewise linear" true (Volume_param.is_piecewise_linear f);
  check "constant 3 inside" true (Q.equal (Volume_param.eval f (qq 3 2)) (q 3));
  check "integral" true (Q.equal (Volume_param.integrate f) (q 3))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_formulas () =
  let cases =
    [ ("true", Ast.True);
      ("x < 3", Ast.(v "x" <! int 3));
      ("x + 2*y <= z - 1", Ast.(v "x" +! (int 2 *! v "y") <=! (v "z" -! int 1)));
      ("U(x)", Ast.Rel ("U", [ Var.of_string "x" ]));
      ("R(x, y)", Ast.Rel ("R", [ Var.of_string "x"; Var.of_string "y" ]));
      ("~(x = y)", Ast.(Not (v "x" =! v "y")));
      ("x < 1 /\\ y < 2", Ast.(And (v "x" <! int 1, v "y" <! int 2)));
      ("x < 1 \\/ y < 2 /\\ z < 3",
        Ast.(Or (v "x" <! int 1, And (v "y" <! int 2, v "z" <! int 3))));
      ("exists x y . x < y",
        Ast.(Exists (Var.of_string "x", Exists (Var.of_string "y", v "x" <! v "y"))));
      ("forall x . U(x) -> x <= 1",
        Ast.(Forall (Var.of_string "x",
          implies (Rel ("U", [ Var.of_string "x" ])) (v "x" <=! int 1))));
      ("(x + 1) * y = 3/4", Ast.(Mul (Add (v "x", int 1), v "y") =! Const (qq 3 4)));
      ("x = 0.25", Ast.(v "x" =! Const (qq 1 4))) ]
  in
  List.iter
    (fun (src, expected) ->
      let got = Parser.formula_of_string src in
      if got <> expected then
        Alcotest.failf "parse %S: got %s" src (Format.asprintf "%a" Ast.pp got))
    cases

let test_parser_sum () =
  let t =
    Parser.term_of_string
      "SUM { w | true | END(y . U(y)) } (x . x = w)"
  in
  (* parses and evaluates like the hand-built endpoint sum *)
  check "sum value" true (Q.equal (Eval.eval_term db Var.Map.empty t) (q 6))

let test_parser_roundtrip () =
  let formulas =
    [ "x < 3"; "x + 2*y <= z - 1"; "U(x)"; "~(x = y)";
      "x < 1 /\\ y < 2"; "exists x . x < y"; "forall x . U(x) -> x <= 1" ]
  in
  List.iter
    (fun src ->
      let f = Parser.formula_of_string src in
      let printed = Parser.formula_to_string f in
      let f' = Parser.formula_of_string printed in
      if f <> f' then Alcotest.failf "roundtrip failed for %S via %S" src printed)
    formulas;
  (* terms too, including SUM *)
  let srcs = [ "x + 2*y"; "SUM { w | w >= 2 | END(y . U(y)) } (x . x = w)" ] in
  List.iter
    (fun src ->
      let t = Parser.term_of_string src in
      let t' = Parser.term_of_string (Parser.term_to_string t) in
      if t <> t' then Alcotest.failf "term roundtrip failed for %S" src)
    srcs

let test_parser_errors () =
  List.iter
    (fun src ->
      check ("rejects " ^ src) true
        (try
           ignore (Parser.formula_of_string src);
           false
         with Parser.Parse_error _ -> true))
    [ ""; "x <"; "(x < 1"; "x ? y"; "exists . x < 1"; "U(x" ]

(* ------------------------------------------------------------------ *)
(* Safety                                                              *)
(* ------------------------------------------------------------------ *)

let test_safety () =
  let good = sum_endpoints Ast.True in
  check "good term safe" true (Safety.is_safe db good);
  (* unknown relation *)
  let bad_rel =
    Ast.sum ~gamma_var:xx ~gamma:Ast.(TVar xx =! TVar w) ~w:[ w ]
      ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("Missing", [ yy ]))
  in
  check "unknown relation flagged" true
    (List.exists
       (function Safety.Unknown_relation "Missing" -> true | _ -> false)
       (Safety.check_term db bad_rel));
  (* arity mismatch *)
  let bad_arity = Ast.Rel ("U", [ xx; yy ]) in
  check "arity flagged" true
    (List.exists
       (function Safety.Arity_mismatch _ -> true | _ -> false)
       (Safety.check_formula db bad_arity));
  (* nondeterministic gamma *)
  let nondet =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(conj [ TVar xx >=! TVar w; TVar xx <=! (TVar w +! int 1) ])
      ~w:[ w ] ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "nondet flagged" true
    (List.exists
       (function Safety.Nondeterministic_gamma _ -> true | _ -> false)
       (Safety.check_term db nondet));
  check "nondet unsafe" false (Safety.is_safe db nondet);
  (* nonlinear non-graph gamma: undecided, still "safe" (runtime enforced) *)
  let undecided =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(Cmp (Ast.Cle, Mul (TVar xx, TVar xx), TVar w))
      ~w:[ w ] ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "undecided flagged but safe" true (Safety.is_safe db undecided);
  check "undecided issue present" true
    (List.exists
       (function Safety.Undecided_gamma _ -> true | _ -> false)
       (Safety.check_term db undecided))

(* Regression: issues inside Sum terms nested under Cmp atoms of a guard or
   END body must be reported, and a gamma whose schema is broken must not
   crash the determinism decision (Deterministic.check used to escape with
   Not_found / Invalid_argument from the linear reducer). *)
let test_safety_nested_sum () =
  let has_missing issues =
    List.exists
      (function Safety.Unknown_relation "Missing" -> true | _ -> false)
      issues
  in
  (* gamma references an uninterpreted relation: no exception, issue kept *)
  let inner =
    Ast.sum ~gamma_var:xx
      ~gamma:(Ast.And (Ast.Rel ("Missing", [ xx ]), Ast.(TVar xx =! TVar w)))
      ~w:[ w ] ~guard:Ast.True ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "gamma schema issue reported" true
    (has_missing (Safety.check_term db inner));
  check "det check survives broken gamma" true
    (Deterministic.check db ~gamma_var:xx
       ~w:[ w ]
       (Ast.And (Ast.Rel ("Missing", [ xx ]), Ast.(TVar xx =! TVar w)))
    = Deterministic.Unknown);
  (* ill-arity gamma likewise *)
  check "det check survives ill arity" true
    (Deterministic.check db ~gamma_var:xx ~w:[ w ]
       (Ast.And (Ast.Rel ("U", [ xx; w ]), Ast.(TVar xx =! TVar w)))
    = Deterministic.Unknown);
  (* the bad sum nested under a Cmp atom inside another sum's guard *)
  let z = Var.of_string "z" in
  let nest_in_guard =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(TVar xx =! TVar z)
      ~w:[ z ]
      ~guard:(Ast.Cmp (Ast.Cle, inner, Ast.TVar z))
      ~end_y:yy ~end_body:(Ast.Rel ("U", [ yy ]))
  in
  check "issue surfaces from guard atom" true
    (has_missing (Safety.check_term db nest_in_guard));
  (* ... and inside the END body *)
  let nest_in_end =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(TVar xx =! TVar z)
      ~w:[ z ] ~guard:Ast.True ~end_y:yy
      ~end_body:(Ast.Cmp (Ast.Cle, inner, Ast.TVar yy))
  in
  check "issue surfaces from END atom" true
    (has_missing (Safety.check_term db nest_in_end));
  (* formula-level entry points *)
  check "is_safe_formula flags nested issue" false
    (Safety.is_safe_formula db (Ast.Cmp (Ast.Cle, inner, Ast.int 0)));
  check "is_safe_formula accepts clean query" true
    (Safety.is_safe_formula db
       (Ast.Cmp (Ast.Cle, sum_endpoints Ast.True, Ast.int 5)))

(* ------------------------------------------------------------------ *)
(* Grouping                                                            *)
(* ------------------------------------------------------------------ *)

let test_group_by () =
  let schema_g = Schema.of_list [ ("Sale", 2) ] in
  (* Sale(region, amount) *)
  let dbg =
    Db.of_list schema_g
      [ ( "Sale",
          Db.Finite
            [ [| q 1; q 10 |]; [| q 1; q 20 |]; [| q 2; q 5 |];
              [| q 2; q 7 |]; [| q 2; q 9 |] ] ) ]
  in
  let r = Var.of_string "r" and a = Var.of_string "a" in
  let query = Ast.Rel ("Sale", [ r; a ]) in
  (match Aggregates.group_count dbg [| r; a |] query ~key:[ 0 ] with
  | Some [ (k1, c1); (k2, c2) ] ->
      check "group keys" true (Q.equal k1.(0) (q 1) && Q.equal k2.(0) (q 2));
      check "group counts" true (c1 = 2 && c2 = 3)
  | _ -> Alcotest.fail "two groups expected");
  (match Aggregates.group_sum dbg [| r; a |] query ~key:[ 0 ] ~value:1 with
  | Some [ (_, s1); (_, s2) ] ->
      check "group sums" true (Q.equal s1 (q 30) && Q.equal s2 (q 21))
  | _ -> Alcotest.fail "sums");
  (match Aggregates.group_avg dbg [| r; a |] query ~key:[ 0 ] ~value:1 with
  | Some [ (_, a1); (_, a2) ] ->
      check "group avgs" true (Q.equal a1 (q 15) && Q.equal a2 (q 7))
  | _ -> Alcotest.fail "avgs");
  (* grouping an infinite output is refused *)
  check "infinite none" true
    (Aggregates.group_count db [| Var.of_string "u" |]
       (Ast.Rel ("U", [ Var.of_string "u" ]))
       ~key:[ 0 ]
    = None)

(* ------------------------------------------------------------------ *)
(* Compile                                                             *)
(* ------------------------------------------------------------------ *)

let test_compile_interval_measure () =
  let term = Compile.interval_measure_term ~rel:"U" in
  check "U measure 2" true (Q.equal (Eval.eval_term db Var.Map.empty term) (q 2));
  (* with an extra point component: points add nothing *)
  let u3 = Semilinear.union u_set (Semilinear.make [| x0 |] [ iv x0 (q 5) (q 5) ]) in
  let db3 = Db.of_list schema [ ("U", Db.Semilin u3) ] in
  check "point adds 0" true (Q.equal (Eval.eval_term db3 Var.Map.empty term) (q 2))

let test_compile_polygon_area () =
  let term = Compile.polygon_area_term ~rel:"P" in
  check "triangle" true (Q.equal (Eval.eval_term db Var.Map.empty term) (q 2));
  let sq =
    Semilinear.of_conjunction dv2 (iv dv2.(0) Q.zero (q 3) @ iv dv2.(1) Q.zero (q 2))
  in
  let db_sq = Db.of_list schema [ ("P", Db.Semilin sq) ] in
  check "rectangle" true (Q.equal (Eval.eval_term db_sq Var.Map.empty term) (q 6));
  let pent =
    Semilinear.of_conjunction dv2
      (iv dv2.(0) Q.zero (q 3) @ iv dv2.(1) Q.zero (q 2)
      @ [ Linconstr.le
            (Linexpr.add (Linexpr.var dv2.(0)) (Linexpr.var dv2.(1)))
            (Linexpr.const (q 4)) ])
  in
  let db_p = Db.of_list schema [ ("P", Db.Semilin pent) ] in
  check "pentagon" true (Q.equal (Eval.eval_term db_p Var.Map.empty term) (qq 11 2))

let () =
  Alcotest.run "cqa_core"
    [ ( "ast",
        [ Alcotest.test_case "free vars" `Quick test_ast_free_vars;
          Alcotest.test_case "subst" `Quick test_ast_subst;
          Alcotest.test_case "subst sum binders" `Quick test_ast_subst_sum;
          Alcotest.test_case "conversions" `Quick test_ast_conversions ] );
      ("db", [ Alcotest.test_case "db" `Quick test_db ]);
      ( "eval",
        [ Alcotest.test_case "sum endpoints" `Quick test_eval_sum_endpoints;
          Alcotest.test_case "holds quantifiers" `Quick test_eval_holds_quantifiers;
          Alcotest.test_case "set closure" `Quick test_eval_set_closure;
          Alcotest.test_case "section" `Quick test_eval_section;
          Alcotest.test_case "gamma partial" `Quick test_eval_gamma_partial;
          Alcotest.test_case "nondeterministic gamma" `Quick test_eval_nondeterministic_gamma_rejected;
          Alcotest.test_case "unsupported" `Quick test_eval_unsupported;
          Alcotest.test_case "section alg" `Quick test_eval_section_alg ] );
      ( "deterministic",
        [ Alcotest.test_case "verdicts" `Quick test_deterministic;
          Alcotest.test_case "spellings" `Quick test_deterministic_spellings ] );
      ( "aggregates",
        [ Alcotest.test_case "classical" `Quick test_aggregates;
          Alcotest.test_case "gamma" `Quick test_aggregates_gamma ] );
      ( "volume",
        [ Alcotest.test_case "known" `Quick test_volume_known;
          Alcotest.test_case "cross check" `Quick test_volume_cross_check;
          Alcotest.test_case "additivity" `Quick test_volume_additivity;
          Alcotest.test_case "monotone" `Quick test_volume_monotone;
          Alcotest.test_case "approx semialg" `Quick test_volume_approx;
          Alcotest.test_case "approx query" `Quick test_volume_approx_query;
          Alcotest.test_case "approx domains" `Quick test_volume_approx_domains;
          Alcotest.test_case "exact volume domains" `Quick test_volume_domains;
          Alcotest.test_case "kernel ablation byte-identical" `Quick
            test_volume_kernel_ablation;
          Alcotest.test_case "arrangement vertices" `Quick test_arrangement_vertices;
          Alcotest.test_case "trivial approx" `Quick test_trivial_approx;
          Alcotest.test_case "mu" `Quick test_mu;
          Alcotest.test_case "variable independence" `Quick test_var_indep ] );
      ( "witness-separating",
        [ Alcotest.test_case "witness" `Quick test_witness;
          Alcotest.test_case "separating avg" `Quick test_separating_avg;
          Alcotest.test_case "thresholds" `Quick test_separating_thresholds;
          Alcotest.test_case "lemma 2" `Quick test_lemma2 ] );
      ( "volume-param",
        [ Alcotest.test_case "section 3 closed form" `Quick test_volume_param_section3;
          Alcotest.test_case "box" `Quick test_volume_param_box ] );
      ( "parser",
        [ Alcotest.test_case "formulas" `Quick test_parser_formulas;
          Alcotest.test_case "sum" `Quick test_parser_sum;
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "errors" `Quick test_parser_errors ] );
      ( "safety-grouping",
        [ Alcotest.test_case "safety" `Quick test_safety;
          Alcotest.test_case "nested sums" `Quick test_safety_nested_sum;
          Alcotest.test_case "group by" `Quick test_group_by ] );
      ( "compile",
        [ Alcotest.test_case "interval measure" `Quick test_compile_interval_measure;
          Alcotest.test_case "polygon area" `Slow test_compile_polygon_area ] ) ]
