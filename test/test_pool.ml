(* Persistent domain pool (Cqa_core.Pool, re-exported from Cqa_conc):
   worker reuse, result determinism across pool sizes and on a warm pool,
   the exception-in-index-order contract, the nested-parallelism fallback,
   and the lock-striped memo tables' agreement with the single-mutex
   semantics they replaced. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_vc
open Cqa_core
module T = Cqa_telemetry.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Force the pool path: the adaptive cutoff (mode Auto) would run these
   small fixtures inline, especially on single-core hardware. *)
let with_forced f =
  Pool.set_mode Pool.Always;
  Fun.protect ~finally:(fun () -> Pool.set_mode Pool.Auto) f

(* CI exercises extra pool widths by exporting CQA_DOMAINS. *)
let pool_sizes =
  [ 1; 2; 4 ]
  @ (match Option.bind (Sys.getenv_opt "CQA_DOMAINS") int_of_string_opt with
    | Some d when d >= 1 && d <= 16 && not (List.mem d [ 1; 2; 4 ]) -> [ d ]
    | _ -> [])

let counter_value name =
  match List.assoc_opt name (T.snapshot ()).T.counters with
  | Some v -> v
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Worker reuse                                                        *)
(* ------------------------------------------------------------------ *)

(* Must run first in this binary: it relies on the pool starting cold so
   the spawn counters are non-vacuous. *)
let test_domain_reuse () =
  with_forced @@ fun () ->
  T.enable ();
  T.reset ();
  Fun.protect ~finally:T.disable @@ fun () ->
  check_int "pool starts cold" 0 (Pool.spawned ());
  let arr = Array.init 64 Fun.id in
  let run () = ignore (Par.map ~domains:4 (fun x -> x + 1) arr) in
  run ();
  let spawned_once = Pool.spawned () in
  check "first batch spawns the workers" true
    (spawned_once >= 1 && spawned_once <= 3);
  check_int "telemetry mirrors the spawn count" spawned_once
    (counter_value "pool.domains.spawned");
  for _ = 1 to 10 do run () done;
  check_int "no further spawns across repeated runs" spawned_once
    (Pool.spawned ());
  check_int "telemetry counter constant across repeated runs" spawned_once
    (counter_value "pool.domains.spawned");
  check_int "workers persist between batches" spawned_once (Pool.size ())

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_map_determinism () =
  with_forced @@ fun () ->
  let arr = Array.init 101 (fun i -> i - 50) in
  let f x = (x * x) + (3 * x) in
  let expect = Array.map f arr in
  List.iter
    (fun d ->
      (* three repetitions: the second and third hit a warm pool *)
      for _ = 1 to 3 do
        check
          (Printf.sprintf "map byte-identical at %d domains" d)
          true
          (Par.map ~domains:d f arr = expect)
      done)
    pool_sizes

let test_fold_determinism () =
  with_forced @@ fun () ->
  let term i = Q.of_ints ((i * i) + 1) 7 in
  let expect =
    Par.fold_ints ~domains:1 ~combine:Q.add ~init:Q.zero term 0 100
  in
  List.iter
    (fun d ->
      for _ = 1 to 3 do
        check
          (Printf.sprintf "fold byte-identical at %d domains" d)
          true
          (Q.equal expect
             (Par.fold_ints ~domains:d ~combine:Q.add ~init:Q.zero term 0 100))
      done)
    pool_sizes

let fixed_semilinear dim seed =
  let prng = Prng.create seed in
  Cqa_workload.Generators.semilinear prng ~dim ~disjuncts:2

(* The exact-volume engine end to end: pooled runs at every width must
   reproduce the sequential value, cold caches and warm. *)
let test_sweep_pool_vs_sequential () =
  let s3 = fixed_semilinear 3 102 in
  let cold () =
    Fourier_motzkin.clear_qe_cache ();
    Semilinear.clear_bbox_cache ()
  in
  Pool.set_mode Pool.Never;
  cold ();
  let seq = Volume_exact.volume_sweep ~domains:4 s3 in
  Pool.set_mode Pool.Always;
  Fun.protect ~finally:(fun () -> Pool.set_mode Pool.Auto) @@ fun () ->
  List.iter
    (fun d ->
      cold ();
      check
        (Printf.sprintf "pooled sweep (cold) equals sequential at %d domains" d)
        true
        (Q.equal seq (Volume_exact.volume_sweep ~domains:d s3));
      check
        (Printf.sprintf "pooled sweep (warm) equals sequential at %d domains" d)
        true
        (Q.equal seq (Volume_exact.volume_sweep ~domains:d s3)))
    pool_sizes

(* Sampler estimates are documented to depend only on (seed, domains):
   whether the chunks run pooled or inline must be unobservable. *)
let test_sampler_pool_invariance () =
  let mem pt =
    Q.leq (Array.fold_left Q.add Q.zero pt) (Q.of_ints 3 2)
  in
  let est d =
    let prng = Prng.create 11 in
    Cqa_vc.Approx_volume.estimate_random ~domains:d ~prng ~dim:3 ~n:500 mem
  in
  Fun.protect ~finally:(fun () -> Pool.set_mode Pool.Auto) @@ fun () ->
  List.iter
    (fun d ->
      Pool.set_mode Pool.Never;
      let inline = est d in
      Pool.set_mode Pool.Always;
      check
        (Printf.sprintf "pooled estimate equals inline at %d domains" d)
        true
        (Q.equal inline (est d));
      check
        (Printf.sprintf "warm-pool estimate repeats at %d domains" d)
        true
        (Q.equal inline (est d)))
    pool_sizes

(* ------------------------------------------------------------------ *)
(* Exception contract                                                  *)
(* ------------------------------------------------------------------ *)

exception Boom of int

let test_map_exception_index_order () =
  with_forced @@ fun () ->
  let arr = Array.init 10 Fun.id in
  let evaluated = Atomic.make 0 in
  let f i =
    Atomic.incr evaluated;
    if i = 3 || i = 7 then raise (Boom i) else i
  in
  List.iter
    (fun d ->
      Atomic.set evaluated 0;
      (match Par.map ~domains:d f arr with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          check_int
            (Printf.sprintf "lowest-index error surfaces at %d domains" d)
            3 i);
      (* multi-chunk runs evaluate every element before re-raising
         (domains = 1 is Array.map and stops at the first raise) *)
      if d > 1 then
        check_int
          (Printf.sprintf "all elements evaluated at %d domains" d)
          10 (Atomic.get evaluated))
    pool_sizes

let test_fold_exception_chunk_order () =
  with_forced @@ fun () ->
  let term i = if i = 2 || i = 8 then raise (Boom i) else Q.of_int i in
  List.iter
    (fun d ->
      match
        Par.fold_ints ~domains:d ~combine:Q.add ~init:Q.zero term 0 9
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          check_int
            (Printf.sprintf "lowest-chunk error surfaces at %d domains" d)
            2 i)
    pool_sizes

(* ------------------------------------------------------------------ *)
(* Nested parallelism                                                  *)
(* ------------------------------------------------------------------ *)

let test_nested_fallback () =
  with_forced @@ fun () ->
  let inner = Array.init 8 Fun.id in
  let outer = Array.init 6 Fun.id in
  let row i =
    Array.fold_left ( + ) 0 (Par.map ~domains:4 (fun j -> i + j) inner)
  in
  let expect = Array.map (fun i -> (8 * i) + 28) outer in
  let got = Par.map ~domains:4 row outer in
  check "nested Par.map completes with correct values" true (got = expect);
  (* the raw pool API, nested directly: inner batches run inline on the
     worker, so this terminates and covers every chunk *)
  let acc = Atomic.make 0 in
  Pool.run_chunks ~label:"test.nested" ~items:4 4 (fun _ ->
      Pool.run_chunks ~label:"test.nested.inner" ~items:4 4 (fun j ->
          ignore (Atomic.fetch_and_add acc j)));
  check_int "nested run_chunks ran every inner chunk" 24 (Atomic.get acc)

(* ------------------------------------------------------------------ *)
(* Striped memo tables                                                 *)
(* ------------------------------------------------------------------ *)

module Itbl = Cqa_conc.Striped_tbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = Hashtbl.hash x
end)

(* One stripe is literally the old single-mutex table; agreement with an
   8-stripe twin under the same operation stream is the sharding
   refactor's correctness statement. *)
let test_striped_agreement () =
  let mk shards name =
    Itbl.create ~shards ~name ~cap:4096 ~evict:Cqa_conc.Striped_tbl.Reset ()
  in
  let t1 = mk 1 "test.striped1" and t8 = mk 8 "test.striped8" in
  for i = 0 to 999 do
    let k = i * 7919 mod 512 in
    match (Itbl.find_opt t1 k, Itbl.find_opt t8 k) with
    | None, None ->
        Itbl.replace t1 k (k * k);
        Itbl.replace t8 k (k * k)
    | Some a, Some b ->
        if not (a = k * k && b = k * k) then
          Alcotest.fail "cached values diverge"
    | _ -> Alcotest.fail "presence diverges between 1 and 8 stripes"
  done;
  check_int "lengths agree" (Itbl.length t1) (Itbl.length t8);
  Itbl.reset t8;
  check_int "reset empties every stripe" 0 (Itbl.length t8)

let test_striped_eviction_bound () =
  let t =
    Itbl.create ~shards:4 ~name:"test.striped_evict" ~cap:16
      ~evict:Cqa_conc.Striped_tbl.Half ()
  in
  for k = 0 to 199 do
    Itbl.replace t k k
  done;
  check "global capacity bound holds" true (Itbl.length t <= Itbl.capacity t);
  let correct = ref true in
  for k = 0 to 199 do
    match Itbl.find_opt t k with
    | Some v -> if v <> k then correct := false
    | None -> ()
  done;
  check "surviving entries are correct" true !correct;
  (* capacity changes take effect on subsequent inserts *)
  Itbl.set_capacity t 2;
  Itbl.reset t;
  for k = 200 to 260 do
    Itbl.replace t k k
  done;
  check "tightened capacity respected" true
    (Itbl.length t <= 2 && Itbl.length t > 0)

(* The qe_vertex ablation workload (Section 5 vertex formula over the
   pentagon database) through the sharded QE/sat memos: warm results must
   reproduce cold ones, and the memoized satisfiability verdicts must
   agree with the unmemoized simplex oracle. *)
let test_qe_vertex_sharded_memo () =
  let v1 = Var.of_string "v1" and v2 = Var.of_string "v2" in
  let db = Cqa_workload.Paper_examples.pentagon_db () in
  let lf =
    Eval.reduce_linear db Var.Map.empty (Compile.vertex_formula ~rel:"P" v1 v2)
  in
  Fourier_motzkin.clear_qe_cache ();
  let cold = Fourier_motzkin.qe lf in
  check "qe_vertex produces disjuncts" true (cold <> []);
  check "cold run populated the sharded memo" true
    (Fourier_motzkin.qe_cache_size () > 0);
  let warm = Fourier_motzkin.qe lf in
  check "warm DNF identical to cold" true
    (List.equal (List.equal Linconstr.equal) cold warm);
  List.iter
    (fun conj ->
      check "memoized sat verdict agrees with the simplex oracle" true
        (Fourier_motzkin.satisfiable_conj conj
        = Fourier_motzkin.satisfiable_conj_simplex conj))
    cold

(* ------------------------------------------------------------------ *)
(* Explicit lifecycle: shutdown is a fence, not a one-way door          *)
(* ------------------------------------------------------------------ *)

let test_shutdown_idempotent_and_restart () =
  with_forced @@ fun () ->
  let arr = Array.init 128 Fun.id in
  let expect = Array.map (fun x -> (x * 7) + 1) arr in
  let run () = Par.map ~domains:4 (fun x -> (x * 7) + 1) arr in
  check "warm pool computes" true (run () = expect);
  check "workers running before shutdown" true (Pool.size () >= 1);
  Pool.shutdown ();
  check_int "no workers after shutdown" 0 (Pool.size ());
  Pool.shutdown ();
  Pool.shutdown ();
  check_int "repeated shutdown is a no-op" 0 (Pool.size ());
  (* a batch submitted after shutdown restarts the pool transparently *)
  check "pool restarts on the next batch" true (run () = expect);
  check "workers respawned" true (Pool.size () >= 1)

let test_ensure_explicit_restart () =
  with_forced @@ fun () ->
  Pool.shutdown ();
  check_int "fenced" 0 (Pool.size ());
  Pool.ensure 2;
  check_int "ensure respawns exactly the asked width" 2 (Pool.size ());
  Pool.ensure 2;
  check_int "ensure is idempotent at the same width" 2 (Pool.size ());
  Pool.ensure 1;
  check_int "ensure never shrinks" 2 (Pool.size ());
  let spawned_before = Pool.spawned () in
  let arr = Array.init 64 Fun.id in
  let out = Par.map ~domains:2 (fun x -> x * x) arr in
  check "work after explicit ensure" true
    (out = Array.map (fun x -> x * x) arr);
  check_int "batch at the ensured width spawns nothing" spawned_before
    (Pool.spawned ())

let () =
  Alcotest.run "cqa_pool"
    [
      ( "reuse",
        [ Alcotest.test_case "workers spawn once and persist" `Quick
            test_domain_reuse ] );
      ( "lifecycle",
        [ Alcotest.test_case "shutdown idempotent, restart transparent"
            `Quick test_shutdown_idempotent_and_restart;
          Alcotest.test_case "ensure respawns after shutdown" `Quick
            test_ensure_explicit_restart ] );
      ( "determinism",
        [ Alcotest.test_case "map across pool sizes" `Quick
            test_map_determinism;
          Alcotest.test_case "fold across pool sizes" `Quick
            test_fold_determinism;
          Alcotest.test_case "volume sweep pooled = sequential" `Quick
            test_sweep_pool_vs_sequential;
          Alcotest.test_case "sampler pooled = inline" `Quick
            test_sampler_pool_invariance ] );
      ( "exceptions",
        [ Alcotest.test_case "map: lowest index wins" `Quick
            test_map_exception_index_order;
          Alcotest.test_case "fold: lowest chunk wins" `Quick
            test_fold_exception_chunk_order ] );
      ( "nesting",
        [ Alcotest.test_case "nested calls run inline" `Quick
            test_nested_fallback ] );
      ( "striped tables",
        [ Alcotest.test_case "1-stripe vs 8-stripe agreement" `Quick
            test_striped_agreement;
          Alcotest.test_case "eviction keeps the global bound" `Quick
            test_striped_eviction_bound;
          Alcotest.test_case "qe_vertex through the sharded memos" `Quick
            test_qe_vertex_sharded_memo ] );
    ]
