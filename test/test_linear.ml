open Cqa_arith
open Cqa_logic
open Cqa_linear

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints
let x = Var.of_string "x"
let y = Var.of_string "y"
let z = Var.of_string "z"
let ex = Linexpr.var x
let ey = Linexpr.var y

(* seeded helpers *)
let rng = Random.State.make [| 2024 |]

let rand_expr vars =
  Linexpr.of_list
    (q (Random.State.int rng 11 - 5))
    (List.filter_map
       (fun v ->
         let c = Random.State.int rng 7 - 3 in
         if c = 0 then None else Some (q c, v))
       vars)

let rand_atom vars =
  let e = rand_expr vars in
  match Random.State.int rng 3 with
  | 0 -> Linconstr.make e Linconstr.Le
  | 1 -> Linconstr.make e Linconstr.Lt
  | _ -> Linconstr.make e Linconstr.Eq

let rand_conj vars n = List.init n (fun _ -> rand_atom vars)

let grid2 =
  List.concat_map
    (fun i -> List.map (fun j -> (qq i 2, qq j 2)) (List.init 13 (fun j -> j - 6)))
    (List.init 13 (fun i -> i - 6))

let env2 (a, b) = Var.Map.add x a (Var.Map.singleton y b)

(* ------------------------------------------------------------------ *)
(* Linexpr / Linconstr                                                 *)
(* ------------------------------------------------------------------ *)

let test_linexpr_ops () =
  let e = Linexpr.of_list (q 3) [ (q 2, x); (q (-1), y) ] in
  check "coeff x" true (Q.equal (Linexpr.coeff e x) Q.two);
  check "coeff absent" true (Q.is_zero (Linexpr.coeff e z));
  check "const" true (Q.equal (Linexpr.constant e) (q 3));
  check "eval" true
    (Q.equal (Linexpr.eval e (env2 (q 1, q 2))) (q 3));
  let e2 = Linexpr.add e (Linexpr.monomial (q (-2)) x) in
  check "cancel" true (Linexpr.vars e2 = [ y ]);
  check "subst" true
    (Q.equal
       (Linexpr.eval (Linexpr.subst e x (Linexpr.add ey (Linexpr.const Q.one)))
          (Var.Map.singleton y (q 2)))
       (Q.add (q 3) (Q.add (q 6) (q (-2)))));
  (match Linexpr.solve_for e x with
  | None -> Alcotest.fail "solvable"
  | Some sol ->
      (* x = (-3 + y) / 2 *)
      check "solve_for" true
        (Q.equal (Linexpr.eval sol (Var.Map.singleton y (q 5))) Q.one));
  check "solve_for absent" true (Linexpr.solve_for e z = None)

let test_linconstr_normalization () =
  let a = Linconstr.make (Linexpr.of_list (q 2) [ (q 4, x) ]) Linconstr.Le in
  let b = Linconstr.make (Linexpr.of_list (q 1) [ (q 2, x) ]) Linconstr.Le in
  check "scaling collapses" true (Linconstr.equal a b);
  let e1 = Linconstr.make (Linexpr.of_list Q.zero [ (q (-3), x) ]) Linconstr.Eq in
  let e2 = Linconstr.make (Linexpr.of_list Q.zero [ (q 3, x) ]) Linconstr.Eq in
  check "eq orientation" true (Linconstr.equal e1 e2)

let test_linconstr_negate () =
  for _ = 1 to 100 do
    let a = rand_atom [ x; y ] in
    let negs = Linconstr.negate a in
    List.iter
      (fun pt ->
        let env = env2 pt in
        check "negate pointwise"
          (not (Linconstr.holds a env))
          (List.exists (fun n -> Linconstr.holds n env) negs))
      grid2
  done

(* ------------------------------------------------------------------ *)
(* Linformula / DNF                                                    *)
(* ------------------------------------------------------------------ *)

let rand_qf_formula depth =
  let rec go depth =
    if depth = 0 then Formula.Atom (rand_atom [ x; y ])
    else begin
      match Random.State.int rng 4 with
      | 0 -> Formula.Not (go (depth - 1))
      | 1 -> Formula.And (go (depth - 1), go (depth - 1))
      | 2 -> Formula.Or (go (depth - 1), go (depth - 1))
      | _ -> go (depth - 1)
    end
  in
  go depth

let test_dnf_equivalence () =
  for _ = 1 to 120 do
    let f = rand_qf_formula 3 in
    let d = Linformula.dnf_of_qf f in
    List.iter
      (fun pt ->
        let env = env2 pt in
        check "dnf pointwise" (Linformula.holds_qf f env) (Linformula.dnf_holds d env))
      grid2
  done

let test_simplify_conjunction () =
  let t = Linconstr.make (Linexpr.const (q (-1))) Linconstr.Le in
  let f = Linconstr.make (Linexpr.const (q 1)) Linconstr.Le in
  let a = Linconstr.lt ex ey in
  check "trivial true dropped" true
    (Linformula.simplify_conjunction [ t; a; a ] = Some [ a ]);
  check "trivial false kills" true (Linformula.simplify_conjunction [ a; f ] = None)

(* ------------------------------------------------------------------ *)
(* Fourier-Motzkin                                                     *)
(* ------------------------------------------------------------------ *)

let test_fm_known () =
  (* exists y. x < y < 5  <=>  x < 5 *)
  let f =
    Formula.Exists
      ( y,
        Formula.And
          (Formula.Atom (Linconstr.lt ex ey), Formula.Atom (Linconstr.lt ey (Linexpr.const (q 5))))
      )
  in
  check "exists" true
    (Fourier_motzkin.equivalent f (Formula.Atom (Linconstr.lt ex (Linexpr.const (q 5)))));
  (* forall y. y > 0 -> y > x  <=>  x <= 0 *)
  let g =
    Formula.Forall
      ( y,
        Formula.implies
          (Formula.Atom (Linconstr.gt ey Linexpr.zero))
          (Formula.Atom (Linconstr.gt ey ex)) )
  in
  check "forall" true
    (Fourier_motzkin.equivalent g (Formula.Atom (Linconstr.le ex Linexpr.zero)));
  (* density: between any two reals there is a third *)
  let dense =
    Formula.forall_many [ x; y ]
      (Formula.implies
         (Formula.Atom (Linconstr.lt ex ey))
         (Formula.Exists
            ( z,
              Formula.And
                ( Formula.Atom (Linconstr.lt ex (Linexpr.var z)),
                  Formula.Atom (Linconstr.lt (Linexpr.var z) ey) ) )))
  in
  check "density valid" true (Fourier_motzkin.valid dense);
  (* discreteness is false over R *)
  let succ_exists =
    Formula.Exists
      ( y,
        Formula.And
          ( Formula.Atom (Linconstr.lt ex ey),
            Formula.Forall
              ( z,
                Formula.implies
                  (Formula.Atom (Linconstr.lt ex (Linexpr.var z)))
                  (Formula.Atom (Linconstr.le ey (Linexpr.var z))) ) ) )
  in
  check "no successor" false (Fourier_motzkin.sat succ_exists)

let test_fm_eliminate_sound () =
  for _ = 1 to 400 do
    let conj = rand_conj [ x; y ] (1 + Random.State.int rng 4) in
    let elim = Fourier_motzkin.eliminate_var y conj in
    List.iter
      (fun xv ->
        let env = Var.Map.singleton x xv in
        let lhs =
          match elim with None -> false | Some c -> Linformula.conj_holds c env
        in
        let rhs =
          Fourier_motzkin.satisfiable_conj
            (List.map (fun a -> Linconstr.eval_partial a env) conj)
        in
        check "eliminate sound" rhs lhs)
      [ q (-3); qq (-1) 2; Q.zero; qq 3 4; q 2; q 5 ]
  done

let test_fm_sat_kernels_agree () =
  for _ = 1 to 300 do
    let conj = rand_conj [ x; y; z ] (1 + Random.State.int rng 6) in
    let a = Fourier_motzkin.satisfiable_conj conj in
    check "fm = simplex" a (Fourier_motzkin.satisfiable_conj_simplex conj);
    check "fm = fm_explicit" a (Fourier_motzkin.satisfiable_conj_fm conj)
  done

let test_fm_sample_point () =
  for _ = 1 to 300 do
    let conj = rand_conj [ x; y; z ] (1 + Random.State.int rng 5) in
    match Fourier_motzkin.sample_point conj with
    | Some env -> check "model" true (Linformula.conj_holds conj env)
    | None -> check "unsat" false (Fourier_motzkin.satisfiable_conj conj)
  done

let test_fm_complement () =
  for _ = 1 to 60 do
    let f = rand_qf_formula 3 in
    let d = Linformula.dnf_of_qf f in
    let c = Fourier_motzkin.complement_dnf d in
    List.iter
      (fun pt ->
        let env = env2 pt in
        check "complement pointwise"
          (not (Linformula.dnf_holds d env))
          (Linformula.dnf_holds c env))
      grid2
  done

let test_fm_entails_prune () =
  let conj =
    [ Linconstr.le ex (Linexpr.const (q 1));
      Linconstr.le ex (Linexpr.const (q 2));
      Linconstr.ge ey Linexpr.zero ]
  in
  check "entails" true
    (Fourier_motzkin.entails_conj conj (Linconstr.le ex (Linexpr.const (q 3))));
  check "not entails" false
    (Fourier_motzkin.entails_conj conj (Linconstr.le ex Linexpr.zero));
  let pruned = Fourier_motzkin.prune_redundant conj in
  check_int "redundant dropped" 2 (List.length pruned)

let test_tighten_parallel () =
  for _ = 1 to 200 do
    let conj = rand_conj [ x; y ] (2 + Random.State.int rng 5) in
    let t = Fourier_motzkin.tighten_parallel conj in
    check "tighten shrinks" true (List.length t <= List.length conj);
    List.iter
      (fun pt ->
        let env = env2 pt in
        check "tighten equivalent" (Linformula.conj_holds conj env)
          (Linformula.conj_holds t env))
      grid2
  done

let test_qe_pointwise () =
  (* qe of quantified formulas agrees with finite-witness semantics on a
     grid: compare exists y. f  against grid search in y over a wide range
     only when f's y-section is grid-representable; instead check internal
     consistency: qe o qe = qe, and sat of f <=> dnf nonempty after full
     elimination *)
  for _ = 1 to 60 do
    let f = rand_qf_formula 2 in
    let qf = Formula.Exists (y, f) in
    let d = Fourier_motzkin.qe qf in
    List.iter
      (fun xv ->
        let env = Var.Map.singleton x xv in
        let lhs = Linformula.dnf_holds d env in
        (* direct: substitute x and decide satisfiability over y *)
        let rhs =
          Fourier_motzkin.sat
            (Linformula.of_dnf
               (List.filter_map
                  (fun conj ->
                    Linformula.simplify_conjunction
                      (List.map (fun a -> Linconstr.eval_partial a env) conj))
                  (Linformula.dnf_of_qf f)))
        in
        check "qe pointwise" rhs lhs)
      [ q (-2); Q.zero; qq 1 2; q 3 ]
  done

let test_qe_memo_agrees_with_cold () =
  (* elimination is deterministic, so a memo hit must return exactly what
     a cold run computes *)
  let formulas =
    List.init 25 (fun _ ->
        Formula.Exists (y, Formula.Exists (z, rand_qf_formula 2)))
  in
  Fourier_motzkin.clear_qe_cache ();
  let cold = List.map Fourier_motzkin.qe formulas in
  check "cache populated" true (Fourier_motzkin.qe_cache_size () > 0);
  let warm = List.map Fourier_motzkin.qe formulas in
  check "warm = cold" true (cold = warm);
  Fourier_motzkin.clear_qe_cache ();
  let recold = List.map Fourier_motzkin.qe formulas in
  check "recold = cold" true (cold = recold)

let test_qe_memo_eviction () =
  (* a tiny capacity forces evictions mid-stream; results must not change
     and the table must stay bounded *)
  Fourier_motzkin.clear_qe_cache ();
  Fourier_motzkin.set_qe_cache_capacity 8;
  Fun.protect
    ~finally:(fun () ->
      Fourier_motzkin.set_qe_cache_capacity 65536;
      Fourier_motzkin.clear_qe_cache ())
    (fun () ->
      let formulas =
        List.init 40 (fun _ -> Formula.Exists (y, rand_qf_formula 2))
      in
      let evicting = List.map Fourier_motzkin.qe formulas in
      check "table bounded" true (Fourier_motzkin.qe_cache_size () <= 8);
      Fourier_motzkin.clear_qe_cache ();
      Fourier_motzkin.set_qe_cache_capacity 65536;
      let roomy = List.map Fourier_motzkin.qe formulas in
      check "eviction preserves results" true (evicting = roomy))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)
(* ------------------------------------------------------------------ *)

let test_simplex_known () =
  let sys =
    [ Linconstr.le ex (Linexpr.const (q 3));
      Linconstr.le ey (Linexpr.const (q 2));
      Linconstr.le (Linexpr.add ex ey) (Linexpr.const (q 4));
      Linconstr.ge ex Linexpr.zero;
      Linconstr.ge ey Linexpr.zero ]
  in
  (match Simplex.maximize ~objective:(Linexpr.add ex ey) ~constraints:sys with
  | Simplex.Optimal (v, pt) ->
      check "max value" true (Q.equal v (q 4));
      check "max point feasible" true (Linformula.conj_holds sys pt)
  | _ -> Alcotest.fail "expected optimum");
  (match Simplex.minimize ~objective:(Linexpr.sub ex ey) ~constraints:sys with
  | Simplex.Optimal (v, _) -> check "min value" true (Q.equal v (q (-2)))
  | _ -> Alcotest.fail "expected optimum");
  check "unbounded" true
    (Simplex.maximize ~objective:ex ~constraints:[ Linconstr.ge ex Linexpr.zero ]
    = Simplex.Unbounded);
  check "infeasible" true
    (Simplex.maximize ~objective:ex
       ~constraints:
         [ Linconstr.le ex Linexpr.zero; Linconstr.ge ex (Linexpr.const Q.one) ]
    = Simplex.Infeasible);
  (match Simplex.range ex sys with
  | Some (Some lo, Some hi) ->
      check "range" true (Q.is_zero lo && Q.equal hi (q 3))
  | _ -> Alcotest.fail "expected bounded range")

(* Warm-basis reuse: [range] re-solves from the basis cached for the same
   constraint list; the optimum VALUES it returns must be byte-identical
   to a cold solve (values are unique even when optimal points are not),
   on handcrafted and random systems alike. *)
let test_simplex_warm_basis () =
  let sys =
    [ Linconstr.le ex (Linexpr.const (q 3));
      Linconstr.le ey (Linexpr.const (q 2));
      Linconstr.le (Linexpr.add ex ey) (Linexpr.const (q 4));
      Linconstr.ge ex Linexpr.zero;
      Linconstr.ge ey Linexpr.zero ]
  in
  Simplex.clear_basis_cache ();
  let cold_x = Simplex.range ex sys in
  let cold_y = Simplex.range ey sys in
  (* both ranges warm now: re-solve and cross-warm with a third objective *)
  let warm_x = Simplex.range ex sys in
  let warm_sum = Simplex.range (Linexpr.add ex ey) sys in
  check "warm x = cold x" true (cold_x = warm_x);
  check "warm y stable" true (cold_y = Simplex.range ey sys);
  (match warm_sum with
  | Some (Some lo, Some hi) ->
      check "warm sum" true (Q.is_zero lo && Q.equal hi (q 4))
  | _ -> Alcotest.fail "expected bounded range");
  Simplex.clear_basis_cache ();
  check "recold x = cold x" true (cold_x = Simplex.range ex sys);
  (* random systems: warm range values always equal the cold values *)
  for _ = 1 to 100 do
    let conj =
      List.map
        (fun a ->
          match Linconstr.op a with
          | Linconstr.Lt -> Linconstr.make (Linconstr.expr a) Linconstr.Le
          | _ -> a)
        (rand_conj [ x; y; z ] (1 + Random.State.int rng 5))
    in
    let e = rand_expr [ x; y; z ] in
    Simplex.clear_basis_cache ();
    let cold = Simplex.range e conj in
    let warm = Simplex.range e conj in
    check "random warm = cold" true (cold = warm)
  done

(* feasible_strict: same verdict as the witness-producing strict check on
   random systems, and a repeated identical query warm-starts from the
   cached basis (the [simplex.basis.reuse] counter ticks). *)
let test_feasible_strict_warm () =
  Simplex.clear_basis_cache ();
  for _ = 1 to 150 do
    let conj = rand_conj [ x; y; z ] (1 + Random.State.int rng 5) in
    check "feasible_strict = strictly_feasible"
      (Simplex.strictly_feasible conj <> None)
      (Simplex.feasible_strict conj)
  done;
  let module T = Cqa_telemetry.Telemetry in
  let reuse () =
    match List.assoc_opt "simplex.basis.reuse" (T.snapshot ()).T.counters with
    | Some v -> v
    | None -> 0
  in
  let sys =
    [ Linconstr.lt ex (Linexpr.const (q 3));
      Linconstr.lt (Linexpr.neg ex) Linexpr.zero;
      Linconstr.lt (Linexpr.sub ey ex) Linexpr.zero ]
  in
  T.enable ();
  Fun.protect ~finally:T.disable @@ fun () ->
  Simplex.clear_basis_cache ();
  check "strict sys feasible" true (Simplex.feasible_strict sys);
  let before = reuse () in
  check "still feasible warm" true (Simplex.feasible_strict sys);
  check "basis reuse ticked" true (reuse () > before)

let test_simplex_vs_fm_random () =
  for _ = 1 to 400 do
    let nonstrict =
      List.map
        (fun a ->
          match Linconstr.op a with
          | Linconstr.Lt -> Linconstr.make (Linconstr.expr a) Linconstr.Le
          | _ -> a)
        (rand_conj [ x; y; z ] (1 + Random.State.int rng 6))
    in
    (match Simplex.feasible nonstrict with
    | Some pt -> check "feasible point valid" true (Linformula.conj_holds nonstrict pt)
    | None -> check "fm agrees unsat" false (Fourier_motzkin.satisfiable_conj nonstrict));
    let mixed = rand_conj [ x; y; z ] (1 + Random.State.int rng 6) in
    match Simplex.strictly_feasible mixed with
    | Some pt -> check "strict point valid" true (Linformula.conj_holds mixed pt)
    | None -> check "fm agrees strict unsat" false (Fourier_motzkin.satisfiable_conj mixed)
  done

(* ------------------------------------------------------------------ *)
(* Cell1                                                               *)
(* ------------------------------------------------------------------ *)

let samples_q = List.init 101 (fun i -> qq (i - 50) 4)

let rand_cell () =
  let base = ref Cell1.empty in
  for _ = 1 to Random.State.int rng 4 do
    let a = qq (Random.State.int rng 21 - 10) 2
    and b = qq (Random.State.int rng 21 - 10) 2 in
    let lo = Q.min a b and hi = Q.max a b in
    let piece =
      match Random.State.int rng 5 with
      | 0 -> Cell1.point a
      | 1 -> Cell1.open_interval lo hi
      | 2 -> Cell1.closed_interval lo hi
      | 3 -> Cell1.half_open_right lo hi
      | _ -> if Random.State.bool rng then Cell1.ray_lt a else Cell1.ray_ge a
    in
    base := Cell1.union !base piece
  done;
  !base

let test_cell1_boolean_algebra () =
  for _ = 1 to 400 do
    let a = rand_cell () and b = rand_cell () in
    let u = Cell1.union a b
    and i = Cell1.inter a b
    and d = Cell1.diff a b
    and c = Cell1.compl a in
    List.iter
      (fun v ->
        check "union" (Cell1.mem a v || Cell1.mem b v) (Cell1.mem u v);
        check "inter" (Cell1.mem a v && Cell1.mem b v) (Cell1.mem i v);
        check "diff" (Cell1.mem a v && not (Cell1.mem b v)) (Cell1.mem d v);
        check "compl" (not (Cell1.mem a v)) (Cell1.mem c v))
      samples_q;
    check "canonical idempotent union" true (Cell1.equal (Cell1.union a a) a);
    check "excluded middle" true (Cell1.is_empty (Cell1.inter a (Cell1.compl a)));
    check "double complement" true (Cell1.equal (Cell1.compl (Cell1.compl a)) a)
  done

let test_cell1_measure_endpoints () =
  let s =
    Cell1.union
      (Cell1.closed_interval Q.zero Q.one)
      (Cell1.union (Cell1.open_interval (q 2) (q 4)) (Cell1.point (q 6)))
  in
  check "measure" true (Cell1.measure s = Some (q 3));
  check "measure ray" true (Cell1.measure (Cell1.ray_ge Q.zero) = None);
  check "clamped" true (Q.equal (Cell1.measure_clamped Q.zero (q 3) s) (q 2));
  check "endpoints" true (Cell1.endpoints s = [ Q.zero; Q.one; q 2; q 4; q 6 ]);
  check_int "components" 3 (Cell1.component_count s);
  check "bounded" true (Cell1.is_bounded s);
  check "unbounded" false (Cell1.is_bounded (Cell1.ray_lt Q.zero))

let test_cell1_adjacency_merge () =
  let m =
    Cell1.union
      (Cell1.half_open_right Q.zero Q.one)
      (Cell1.union (Cell1.point Q.one) (Cell1.half_open_left Q.one Q.two))
  in
  check_int "merged" 1 (Cell1.component_count m);
  check "merged endpoints" true (Cell1.endpoints m = [ Q.zero; Q.two ]);
  (* two open intervals sharing an excluded endpoint must NOT merge *)
  let n = Cell1.union (Cell1.open_interval Q.zero Q.one) (Cell1.open_interval Q.one Q.two) in
  check_int "not merged" 2 (Cell1.component_count n)

let test_cell1_constraints_roundtrip () =
  for _ = 1 to 200 do
    let conj = rand_conj [ x ] (1 + Random.State.int rng 3) in
    let cell = Cell1.of_constraints x conj in
    List.iter
      (fun v ->
        check "of_constraints pointwise"
          (Linformula.conj_holds conj (Var.Map.singleton x v))
          (Cell1.mem cell v))
      samples_q;
    (* roundtrip through to_dnf *)
    let back = Cell1.of_dnf x (Cell1.to_dnf x cell) in
    check "to_dnf roundtrip" true (Cell1.equal cell back)
  done

let test_cell1_sample_points () =
  for _ = 1 to 100 do
    let c = rand_cell () in
    List.iter (fun v -> check "sample in set" true (Cell1.mem c v)) (Cell1.sample_points c)
  done

(* ------------------------------------------------------------------ *)
(* Semilinear                                                          *)
(* ------------------------------------------------------------------ *)

let dv2 = Semilinear.default_vars 2

let rand_semilinear () =
  Semilinear.make dv2
    (List.init (1 + Random.State.int rng 3) (fun _ -> rand_conj (Array.to_list dv2) (2 + Random.State.int rng 4)))

let pts2 = List.map (fun (a, b) -> [| a; b |]) grid2

let test_semilinear_ops_pointwise () =
  for _ = 1 to 80 do
    let a = rand_semilinear () and b = rand_semilinear () in
    let u = Semilinear.union a b
    and i = Semilinear.inter a b
    and c = Semilinear.compl a
    and d = Semilinear.diff a b in
    List.iter
      (fun p ->
        check "union" (Semilinear.mem a p || Semilinear.mem b p) (Semilinear.mem u p);
        check "inter" (Semilinear.mem a p && Semilinear.mem b p) (Semilinear.mem i p);
        check "compl" (not (Semilinear.mem a p)) (Semilinear.mem c p);
        check "diff" (Semilinear.mem a p && not (Semilinear.mem b p)) (Semilinear.mem d p))
      pts2
  done

let test_semilinear_project_section () =
  for _ = 1 to 40 do
    let a = rand_semilinear () in
    let proj = Semilinear.project_last a in
    List.iter
      (fun xv ->
        let cell = Semilinear.last_axis_cell a [| xv |] in
        let in_proj = Semilinear.mem proj [| xv |] in
        check "projection = nonempty section" (not (Cell1.is_empty cell)) in_proj)
      (List.init 13 (fun i -> qq (i - 6) 2))
  done

let test_semilinear_enumerate_finite () =
  let point p =
    List.mapi (fun i c -> Linconstr.eq (Linexpr.var dv2.(i)) (Linexpr.const c)) p
  in
  let s = Semilinear.make dv2 [ point [ q 1; q 2 ]; point [ q 3; q 4 ]; point [ q 1; q 2 ] ] in
  (match Semilinear.enumerate_finite s with
  | Some pts -> check_int "two points" 2 (List.length pts)
  | None -> Alcotest.fail "finite");
  let tri =
    Semilinear.of_conjunction dv2
      [ Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero;
        Linconstr.ge (Linexpr.var dv2.(1)) Linexpr.zero;
        Linconstr.le (Linexpr.add (Linexpr.var dv2.(0)) (Linexpr.var dv2.(1))) (Linexpr.const Q.one) ]
  in
  check "triangle infinite" true (Semilinear.enumerate_finite tri = None);
  check "empty finite" true (Semilinear.enumerate_finite (Semilinear.empty 2) = Some [])

let test_semilinear_bounding () =
  let tri =
    Semilinear.of_conjunction dv2
      [ Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero;
        Linconstr.ge (Linexpr.var dv2.(1)) Linexpr.zero;
        Linconstr.le (Linexpr.add (Linexpr.var dv2.(0)) (Linexpr.var dv2.(1))) (Linexpr.const Q.one) ]
  in
  (match Semilinear.bounding_box tri with
  | Some bb ->
      check "bb x" true (Q.is_zero (fst bb.(0)) && Q.equal (snd bb.(0)) Q.one);
      check "bb y" true (Q.is_zero (fst bb.(1)) && Q.equal (snd bb.(1)) Q.one)
  | None -> Alcotest.fail "bounded");
  check "halfplane unbounded" false
    (Semilinear.is_bounded (Semilinear.halfspace dv2 (Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero)));
  check "clamped subset of cube" true
    (Semilinear.subset (Semilinear.clamp_unit tri) (Semilinear.unit_cube 2))

let test_semilinear_of_formula () =
  (* the shadow of the triangle under a quantifier *)
  let f =
    Formula.Exists
      ( dv2.(1),
        Formula.conj
          [ Formula.Atom (Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero);
            Formula.Atom (Linconstr.ge (Linexpr.var dv2.(1)) Linexpr.zero);
            Formula.Atom
              (Linconstr.le
                 (Linexpr.add (Linexpr.var dv2.(0)) (Linexpr.var dv2.(1)))
                 (Linexpr.const Q.one)) ] )
  in
  let s = Semilinear.of_formula [| dv2.(0) |] f in
  check "shadow" true
    (Semilinear.equal s
       (Semilinear.of_conjunction [| dv2.(0) |]
          [ Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero;
            Linconstr.le (Linexpr.var dv2.(0)) (Linexpr.const Q.one) ]))

(* ------------------------------------------------------------------ *)
(* DNF coalescing                                                      *)
(* ------------------------------------------------------------------ *)

let box01 v = [ Linconstr.ge (Linexpr.var v) Linexpr.zero;
                Linconstr.le (Linexpr.var v) (Linexpr.const Q.one) ]

let test_coalesce_dnf () =
  let split lop rop c =
    let e = Linexpr.sub ex (Linexpr.const c) in
    ( box01 x @ [ Linconstr.make e lop ],
      box01 x @ [ Linconstr.make (Linexpr.neg e) rop ] )
  in
  (* [0,1] split at 1/2: the non-strict halves glue back to the box *)
  let l, r = split Linconstr.Le Linconstr.Le (qq 1 2) in
  let merged = Semilinear.coalesce_dnf [ l; r ] in
  check_int "le/le merges" 1 (List.length merged);
  check "merged is the box" true
    (List.for_all
       (fun pt ->
         let env = env2 pt in
         Bool.equal
           (Linformula.dnf_holds merged env)
           (Linformula.dnf_holds [ l; r ] env))
       grid2);
  (* one strict side still covers the boundary from the other piece *)
  let l, r = split Linconstr.Le Linconstr.Lt (qq 1 2) in
  check_int "le/lt merges" 1 (List.length (Semilinear.coalesce_dnf [ l; r ]));
  (* both strict: the cut point itself would be lost — no merge *)
  let l, r = split Linconstr.Lt Linconstr.Lt (qq 1 2) in
  check_int "lt/lt refused" 2 (List.length (Semilinear.coalesce_dnf [ l; r ]));
  (* quadrant tiling of the unit square: the x-adjacent halves merge in
     the first pass, the resulting y-adjacent strips in the second — the
     fixpoint loop, ticking db.update.coalesced once per merge *)
  let module T = Cqa_telemetry.Telemetry in
  let cube = box01 x @ box01 y in
  let xle = Linconstr.le ex (Linexpr.const (qq 1 2)) in
  let xge = Linconstr.ge ex (Linexpr.const (qq 1 2)) in
  let yle = Linconstr.le ey (Linexpr.const (qq 1 2)) in
  let yge = Linconstr.ge ey (Linexpr.const (qq 1 2)) in
  let quadrants =
    [ cube @ [ xle; yle ]; cube @ [ xge; yle ];
      cube @ [ xle; yge ]; cube @ [ xge; yge ] ]
  in
  T.enable ();
  Fun.protect ~finally:T.disable (fun () ->
      let coalesced () =
        match List.assoc_opt "db.update.coalesced" (T.snapshot ()).T.counters
        with Some v -> v | None -> 0
      in
      let before = coalesced () in
      check_int "quadrants glue to the square" 1
        (List.length (Semilinear.coalesce_dnf quadrants));
      check "coalesced counter ticked" true (coalesced () >= before + 3));
  (* random splits: coalescing never changes the set pointwise *)
  for _ = 1 to 60 do
    let conj = rand_conj [ x; y ] (1 + Random.State.int rng 3) in
    let e = rand_expr [ x; y ] in
    let d =
      [ conj @ [ Linconstr.make e Linconstr.Le ];
        conj @ [ Linconstr.make (Linexpr.neg e) Linconstr.Le ] ]
    in
    let c = Semilinear.coalesce_dnf d in
    List.iter
      (fun pt ->
        let env = env2 pt in
        check "coalesce pointwise"
          (Linformula.dnf_holds d env)
          (Linformula.dnf_holds c env))
      grid2
  done

let test_remove_region_coalesces () =
  (* removing and re-inserting the same band must not grow the
     representation: remove_region's coalescing keeps the tiling flat *)
  let s = Semilinear.unit_cube 2 in
  let band = Semilinear.box [| (qq 1 4, qq 1 2); (Q.zero, Q.one) |] in
  let cur = ref s in
  for _ = 1 to 5 do
    cur := (Semilinear.remove_region !cur band).Semilinear.updated;
    check "remove = diff" true (Semilinear.equal !cur (Semilinear.diff s band));
    check "no blowup" true (Semilinear.disjunct_count !cur <= 4);
    cur := (Semilinear.insert_region !cur band).Semilinear.updated;
    check "reinsert restores" true (Semilinear.equal !cur s)
  done

(* ------------------------------------------------------------------ *)
(* Active-domain evaluation                                            *)
(* ------------------------------------------------------------------ *)

let test_active_eval () =
  let schema = Schema.of_list [ ("U", 1) ] in
  let inst =
    Instance.of_list schema
      [ ("U", [ [| q 1 |]; [| q 3 |]; [| q 5 |] ]) ]
  in
  (* active quantification ranges over {1, 3, 5} *)
  let f =
    Formula.Exists_adom
      (x, Formula.And (Formula.Rel ("U", [ x ]), Formula.Atom (Linconstr.gt ex (Linexpr.const (q 4)))))
  in
  check "adom exists" true (Active_eval.holds inst Var.Map.empty f);
  let g =
    Formula.Forall_adom
      (x, Formula.implies (Formula.Rel ("U", [ x ])) (Formula.Atom (Linconstr.gt ex Linexpr.zero)))
  in
  check "adom forall" true (Active_eval.holds inst Var.Map.empty g);
  (* natural quantification is decided symbolically: exists z between 1, 3 *)
  let h =
    Formula.Exists
      ( z,
        Formula.And
          ( Formula.Atom (Linconstr.gt (Linexpr.var z) (Linexpr.const (q 1))),
            Formula.Atom (Linconstr.lt (Linexpr.var z) (Linexpr.const (q 3))) ) )
  in
  check "natural exists" true (Active_eval.holds inst Var.Map.empty h);
  (* active-semantics output *)
  let big = Formula.And (Formula.Rel ("U", [ x ]), Formula.Atom (Linconstr.gt ex (Linexpr.const (q 2)))) in
  check_int "output" 2 (List.length (Active_eval.output inst [ x ] big));
  (* the Section 4.1 aggregate *)
  (match Active_eval.avg inst x (Formula.Rel ("U", [ x ])) with
  | Some v -> check "avg" true (Q.equal v (q 3))
  | None -> Alcotest.fail "nonempty");
  check "avg empty" true
    (Active_eval.avg inst x (Formula.And (Formula.Rel ("U", [ x ]), Formula.Atom (Linconstr.gt ex (Linexpr.const (q 9))))) = None)


(* ------------------------------------------------------------------ *)
(* Hash-consing and redundancy pruning                                  *)
(* ------------------------------------------------------------------ *)

let test_interning () =
  for _ = 1 to 200 do
    let c = q (Random.State.int rng 11 - 5) in
    let coefs =
      List.filter_map
        (fun v ->
          let k = Random.State.int rng 7 - 3 in
          if k = 0 then None else Some (q k, v))
        [ x; y; z ]
    in
    let e1 = Linexpr.of_list c coefs in
    let e2 = Linexpr.of_list c coefs in
    check "expr interned" true (e1 == e2);
    check "expr equal" true (Linexpr.equal e1 e2);
    check_int "expr compare" 0 (Linexpr.compare e1 e2);
    check_int "expr hash" (Linexpr.hash e1) (Linexpr.hash e2);
    check_int "expr tag" (Linexpr.tag e1) (Linexpr.tag e2);
    let a1 = Linconstr.make e1 Linconstr.Le in
    let a2 = Linconstr.make e2 Linconstr.Le in
    check "constr interned" true (a1 == a2);
    check "constr equal" true (Linconstr.equal a1 a2);
    check_int "constr compare" 0 (Linconstr.compare a1 a2);
    check_int "constr tag" (Linconstr.tag a1) (Linconstr.tag a2);
    (* interning respects the algebra: a rebuilt sum lands on the same node *)
    let sum = Linexpr.add e1 (Linexpr.var x) in
    let sum' = Linexpr.add (Linexpr.var x) e2 in
    check "add interned" true (sum == sum');
    (* distinct ops stay distinct *)
    let b = Linconstr.make e1 Linconstr.Lt in
    check "op distinguishes" false (Linconstr.equal a1 b)
  done;
  (* observational equality: fresh vs interned evaluate identically *)
  for _ = 1 to 100 do
    let a = rand_atom [ x; y ] in
    let a' = Linconstr.make (Linconstr.expr a) (Linconstr.op a) in
    check "renormalization is stable" true (a == a');
    List.iter
      (fun (vx, vy) ->
        let env = Var.Map.(add x vx (add y vy empty)) in
        check "holds agree" (Linconstr.holds a env) (Linconstr.holds a' env))
      (List.filteri (fun i _ -> i mod 13 = 0) grid2)
  done

let test_prune_simplex_agrees () =
  for _ = 1 to 60 do
    let conj = rand_conj [ x; y; z ] (2 + Random.State.int rng 6) in
    if Fourier_motzkin.satisfiable_conj conj then begin
      let p_fm = Fourier_motzkin.prune_redundant conj in
      let p_sx = Fourier_motzkin.prune_redundant_simplex conj in
      check_int "same length" (List.length p_fm) (List.length p_sx);
      List.iter2
        (fun a b -> check "same atoms kept" true (Linconstr.equal a b))
        p_fm p_sx;
      (* the pruned conjunction is still equivalent pointwise *)
      List.iter
        (fun (vx, vy) ->
          let env = Var.Map.(add x vx (add y vy (add z Q.zero empty))) in
          let holds c = List.for_all (fun a -> Linconstr.holds a env) c in
          check "pointwise preserved" (holds conj) (holds p_sx))
        (List.filteri (fun i _ -> i mod 7 = 0) grid2);
      check "satisfiability preserved" true
        (Fourier_motzkin.satisfiable_conj p_sx)
    end
  done

let test_sat_memo () =
  Fourier_motzkin.clear_qe_cache ();
  check_int "sat cache cleared" 0 (Fourier_motzkin.sat_cache_size ());
  let verdicts = ref [] in
  for _ = 1 to 30 do
    let conj = rand_conj [ x; y ] (1 + Random.State.int rng 4) in
    verdicts := (conj, Fourier_motzkin.satisfiable_conj conj) :: !verdicts
  done;
  check "sat cache populated" true (Fourier_motzkin.sat_cache_size () > 0);
  (* warm verdicts agree with the recorded cold ones, in any atom order *)
  List.iter
    (fun (conj, v) ->
      check "warm verdict" v (Fourier_motzkin.satisfiable_conj conj);
      check "order-independent" v
        (Fourier_motzkin.satisfiable_conj (List.rev conj)))
    !verdicts;
  Fourier_motzkin.clear_qe_cache ();
  check_int "clear drops sat memo" 0 (Fourier_motzkin.sat_cache_size ())

let () =
  Alcotest.run "cqa_linear"
    [ ( "linexpr",
        [ Alcotest.test_case "ops" `Quick test_linexpr_ops;
          Alcotest.test_case "normalization" `Quick test_linconstr_normalization;
          Alcotest.test_case "negate" `Quick test_linconstr_negate ] );
      ( "linformula",
        [ Alcotest.test_case "dnf equivalence" `Quick test_dnf_equivalence;
          Alcotest.test_case "simplify conjunction" `Quick test_simplify_conjunction ] );
      ( "fourier-motzkin",
        [ Alcotest.test_case "known eliminations" `Quick test_fm_known;
          Alcotest.test_case "eliminate sound" `Quick test_fm_eliminate_sound;
          Alcotest.test_case "sat kernels agree" `Quick test_fm_sat_kernels_agree;
          Alcotest.test_case "sample point" `Quick test_fm_sample_point;
          Alcotest.test_case "complement" `Quick test_fm_complement;
          Alcotest.test_case "entails prune" `Quick test_fm_entails_prune;
          Alcotest.test_case "tighten parallel" `Quick test_tighten_parallel;
          Alcotest.test_case "qe pointwise" `Quick test_qe_pointwise;
          Alcotest.test_case "qe memo agrees with cold" `Quick
            test_qe_memo_agrees_with_cold;
          Alcotest.test_case "qe memo eviction" `Quick test_qe_memo_eviction ] );
      ( "hash-consing",
        [ Alcotest.test_case "interning" `Quick test_interning;
          Alcotest.test_case "simplex prune agrees" `Quick test_prune_simplex_agrees;
          Alcotest.test_case "sat memo" `Quick test_sat_memo ] );
      ( "simplex",
        [ Alcotest.test_case "known LPs" `Quick test_simplex_known;
          Alcotest.test_case "warm basis reuse" `Quick test_simplex_warm_basis;
          Alcotest.test_case "feasible_strict warm" `Quick
            test_feasible_strict_warm;
          Alcotest.test_case "vs FM random" `Quick test_simplex_vs_fm_random ] );
      ( "cell1",
        [ Alcotest.test_case "boolean algebra" `Quick test_cell1_boolean_algebra;
          Alcotest.test_case "measure endpoints" `Quick test_cell1_measure_endpoints;
          Alcotest.test_case "adjacency merge" `Quick test_cell1_adjacency_merge;
          Alcotest.test_case "constraints roundtrip" `Quick test_cell1_constraints_roundtrip;
          Alcotest.test_case "sample points" `Quick test_cell1_sample_points ] );
      ( "semilinear",
        [ Alcotest.test_case "ops pointwise" `Quick test_semilinear_ops_pointwise;
          Alcotest.test_case "project section" `Quick test_semilinear_project_section;
          Alcotest.test_case "enumerate finite" `Quick test_semilinear_enumerate_finite;
          Alcotest.test_case "bounding" `Quick test_semilinear_bounding;
          Alcotest.test_case "of_formula" `Quick test_semilinear_of_formula;
          Alcotest.test_case "coalesce dnf" `Quick test_coalesce_dnf;
          Alcotest.test_case "remove coalesces" `Quick
            test_remove_region_coalesces ] );
      ("active-eval", [ Alcotest.test_case "fo_act" `Quick test_active_eval ]) ]
