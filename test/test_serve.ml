(* The cqa serve daemon end to end, over in-process background servers on
   Unix-domain sockets: protocol errors, admission control (reject and
   degrade-to-sampler), the byte-identity of micro-batched concurrent
   execution with single-client sequential execution, coalescing
   accounting, disconnect robustness, and the reset/stats/vol_batch ops. *)

open Cqa_serve
module T = Cqa_telemetry.Telemetry
module J = Cqa_telemetry.Tjson

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cqa-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(configure = fun c -> c) f =
  let addr = Server.Unix_path (fresh_sock ()) in
  let cfg = configure (Server.default_config addr) in
  let h = Server.start_background cfg in
  Fun.protect ~finally:(fun () -> Server.stop_background h) (fun () -> f addr)

let with_client addr f =
  let c = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let member name resp =
  match J.parse resp with
  | Ok obj -> J.member name obj
  | Error m -> Alcotest.failf "unparseable response %s: %s" resp m

let is_ok resp =
  match member "ok" resp with Some (J.Bool b) -> b | _ -> false

let error_code resp =
  match Option.bind (member "error" resp) (J.member "code") with
  | Some (J.Str c) -> c
  | _ -> Alcotest.failf "response has no error code: %s" resp

let str_field name resp =
  match member name resp with
  | Some (J.Str s) -> s
  | _ -> Alcotest.failf "response has no string %S: %s" name resp

let int_field name resp =
  match Option.bind (member name resp) J.to_float with
  | Some f -> int_of_float f
  | None -> Alcotest.failf "response has no number %S: %s" name resp

let counter_value name =
  match List.assoc_opt name (T.snapshot ()).T.counters with
  | Some v -> v
  | None -> 0

(* The workload shape the throughput benches also use: two parameter
   slots, VOL over (y1, y2) = (v^2 - u^2) / 2 for 0 <= u <= v. *)
let pq = "u < y1 /\\ y1 < v /\\ 0 <= y2 /\\ y2 <= y1 /\\ 0 <= y1"
let pq_json = Protocol.json_string pq

let pq_plan_req =
  Printf.sprintf {|{"op":"plan","query":%s,"params":["u","v"]}|} pq_json

(* ------------------------------------------------------------------ *)
(* Protocol errors                                                     *)
(* ------------------------------------------------------------------ *)

let test_protocol_errors () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let code line = error_code (Client.request c line) in
  check_str "malformed JSON" "parse-error" (code "{nope");
  check_str "non-object request" "bad-request" (code "[1,2]");
  check_str "missing op" "bad-request" (code {|{"query":"0 <= x"}|});
  check_str "unknown op" "unknown-op" (code {|{"op":"frobnicate"}|});
  check_str "vol without query or plan" "bad-request" (code {|{"op":"vol"}|});
  check_str "non-integer plan id" "bad-request"
    (code {|{"op":"vol","plan":"x"}|});
  check_str "unknown plan id" "unknown-plan"
    (code {|{"op":"vol","plan":424242}|});
  check_str "unparseable query" "parse-error"
    (code {|{"op":"vol","query":"<<<"}|});
  check_str "malformed binding" "bad-args"
    (code {|{"op":"vol","query":"0 <= x /\\ x <= 1","args":[true]}|});
  (* the connection survived every error above *)
  check "still serving after errors" true
    (is_ok (Client.request c {|{"op":"ping"}|}))

let test_ping_stats () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let pong = Client.request c {|{"op":"ping","id":"x-1"}|} in
  check "pong" true (is_ok pong);
  check_str "id echoed" "x-1" (str_field "id" pong);
  let stats = Client.request c {|{"op":"stats"}|} in
  check "stats ok" true (is_ok stats);
  check "stats carries plan_cache stripes" true
    (match member "plan_cache" stats with
    | Some (J.Arr (_ :: _)) -> true
    | _ -> false);
  check "stats counts this connection" true
    (match Option.bind (member "serve" stats) (J.member "conns") with
    | Some (J.Num n) -> n >= 1.
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Volumes: exact values, plan ids, vol_batch, reset                   *)
(* ------------------------------------------------------------------ *)

let test_vol_roundtrip () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let q = {|0 <= x /\\ x <= 1 /\\ 0 <= y /\\ y <= x|} in
  let resp =
    Client.request c (Printf.sprintf {|{"op":"vol","query":"%s"}|} q)
  in
  check "vol ok" true (is_ok resp);
  check_str "triangle volume" "1/2" (str_field "vol" resp);
  (* the same spelling resolves to the same plan; By_id agrees *)
  let plan_resp =
    Client.request c (Printf.sprintf {|{"op":"plan","query":"%s"}|} q)
  in
  let pid = int_field "plan" plan_resp in
  check_int "vol response names the same plan" pid (int_field "plan" resp);
  let by_id =
    Client.request c (Printf.sprintf {|{"op":"vol","plan":%d}|} pid)
  in
  check_str "By_id volume identical" "1/2" (str_field "vol" by_id)

(* The planner rewrites before keying the cache, so syntactically distinct
   but semantically equal spellings resolve to one server-side plan id. *)
let test_rewritten_plan_sharing () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let plan_of q =
    let resp =
      Client.request c (Printf.sprintf {|{"op":"plan","query":"%s"}|} q)
    in
    check "plan ok" true (is_ok resp);
    int_field "plan" resp
  in
  let a = plan_of {|0 <= x /\\ x <= 1 /\\ 0 <= y /\\ y <= x|} in
  (* reordered conjuncts, a scaled atom, and constant padding *)
  let b = plan_of {|y <= x /\\ 0 <= 2 * y /\\ 1 < 2 /\\ x <= 1 /\\ 0 <= x|} in
  check_int "spellings share one server-side plan" a b;
  let v = Client.request c (Printf.sprintf {|{"op":"vol","plan":%d}|} a) in
  check_str "shared plan answers for both" "1/2" (str_field "vol" v)

let test_parameterized_vol_batch_reset () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let plan_resp = Client.request c pq_plan_req in
  check "parameterized plan compiles" true (is_ok plan_resp);
  let pid = int_field "plan" plan_resp in
  let vol_at u v =
    Client.request c
      (Printf.sprintf {|{"op":"vol","plan":%d,"args":["%s","%s"]}|} pid u v)
  in
  check_str "vol(0,1) = 1/2" "1/2" (str_field "vol" (vol_at "0" "1"));
  check_str "vol(1/4,1) = 15/32" "15/32"
    (str_field "vol" (vol_at "1/4" "1"));
  check_str "arity enforced" "bad-args"
    (error_code
       (Client.request c
          (Printf.sprintf {|{"op":"vol","plan":%d,"args":["0"]}|} pid)));
  let batch =
    Client.request c
      (Printf.sprintf
         {|{"op":"vol_batch","plan":%d,"bindings":[["0","1"],["1/4","1"],["0","1"]]}|}
         pid)
  in
  check "vol_batch ok" true (is_ok batch);
  (match member "vols" batch with
  | Some (J.Arr [ J.Str a; J.Str b; J.Str a' ]) ->
      check_str "batch[0]" "1/2" a;
      check_str "batch[1]" "15/32" b;
      check_str "batch[2] repeats batch[0]" "1/2" a'
  | _ -> Alcotest.failf "bad vols array: %s" batch);
  (* reset forgets registered plan ids *)
  check "reset ok" true (is_ok (Client.request c {|{"op":"reset"}|}));
  check_str "plan id gone after reset" "unknown-plan"
    (error_code (vol_at "0" "1"))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let over_budget_q = {|exists y . 0 <= x /\\ x <= 1 /\\ 0 <= y /\\ y <= x|}

let test_admission_reject () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let resp =
    Client.request c
      (Printf.sprintf
         {|{"op":"vol","query":"%s","budget":1,"admission":"reject"}|}
         over_budget_q)
  in
  check_str "over-budget request rejected" "over-budget" (error_code resp);
  (* parameterized requests cannot degrade, whatever the admission mode *)
  let _ = Client.request c pq_plan_req in
  let presp =
    Client.request c
      (Printf.sprintf
         {|{"op":"vol","query":%s,"params":["u","v"],"args":["0","1"],"budget":1,"admission":"degrade"}|}
         pq_json)
  in
  check_str "parameterized over-budget never degrades" "over-budget"
    (error_code presp);
  (* within budget everything still runs exactly *)
  let ok_resp =
    Client.request c
      (Printf.sprintf {|{"op":"vol","query":"%s","budget":1e9}|} over_budget_q)
  in
  check_str "same query within budget is exact" "exact"
    (str_field "engine" ok_resp)

let test_admission_degrade () =
  T.enable ();
  T.reset ();
  Fun.protect ~finally:T.disable @@ fun () ->
  let fallbacks0 = counter_value "serve.fallback" in
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let resp =
    Client.request c
      (Printf.sprintf
         {|{"op":"vol","query":"%s","budget":1,"admission":"degrade","eps":0.2,"delta":0.2,"seed":7}|}
         over_budget_q)
  in
  check "degraded request still answers" true (is_ok resp);
  check_str "sampler engine" "approx" (str_field "engine" resp);
  check "sample size reported" true (int_field "sample_size" resp > 0);
  check "serve.fallback counted" true
    (counter_value "serve.fallback" > fallbacks0);
  check "serve.fallback event recorded" true
    (List.exists
       (fun (name, _) -> name = "serve.fallback")
       (T.snapshot ()).T.events)

(* ------------------------------------------------------------------ *)
(* Concurrent clients: byte-identity and coalescing                    *)
(* ------------------------------------------------------------------ *)

let bindings_of_cycle = [| ("0", "1"); ("1/4", "1"); ("1/8", "7/8") |]

let vol_req pid ~cycle ~id =
  let u, v = bindings_of_cycle.(cycle mod Array.length bindings_of_cycle) in
  Printf.sprintf {|{"op":"vol","id":%d,"plan":%d,"args":["%s","%s"]}|} id pid
    u v

let test_concurrent_byte_identical () =
  T.enable ();
  T.reset ();
  Fun.protect ~finally:T.disable @@ fun () ->
  with_server @@ fun addr ->
  let conns = 4 and cycles = 3 in
  let total = conns * cycles in
  (* reference: one client, strictly sequential round trips *)
  let pid, sequential =
    with_client addr @@ fun c ->
    let pid = int_field "plan" (Client.request c pq_plan_req) in
    ( pid,
      Array.init total (fun id ->
          Client.request c (vol_req pid ~cycle:(id / conns) ~id)) )
  in
  let batched0 = counter_value "serve.batched" in
  let coalesced0 = counter_value "serve.coalesced" in
  (* the same requests from a lockstep closed-loop population *)
  let cs = Array.init conns (fun _ -> Client.connect addr) in
  let concurrent =
    Fun.protect
      ~finally:(fun () -> Array.iter Client.close cs)
      (fun () ->
        Client.closed_loop ~conns:cs ~cycles (fun ~cycle ~conn ->
            vol_req pid ~cycle ~id:((cycle * conns) + conn)))
  in
  check_int "same cardinality" total (Array.length concurrent);
  Array.iteri
    (fun i seq ->
      check_str
        (Printf.sprintf "response %d byte-identical to sequential" i)
        seq concurrent.(i))
    sequential;
  (* every cycle's four identical requests ran as one computation *)
  check "requests were batched" true
    (counter_value "serve.batched" - batched0 > 0);
  check "duplicate in-window requests coalesced" true
    (counter_value "serve.coalesced" - coalesced0 > 0)

(* ------------------------------------------------------------------ *)
(* Database updates: insert / remove / db_version                      *)
(* ------------------------------------------------------------------ *)

let db_version_req sch = Printf.sprintf {|{"op":"db_version","schema":"%s"}|} sch

let test_update_roundtrip () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let sch = "R:2" in
  let v0 = Client.request c (db_version_req sch) in
  check "db_version ok" true (is_ok v0);
  check_int "fresh schema db at version 0" 0 (int_field "version" v0);
  (* one spelling, resolved once: every vol below hits the same plan and
     the same physical database, so answers move only through updates *)
  let vol () =
    str_field "vol"
      (Client.request c
         (Printf.sprintf {|{"op":"vol","query":"R(x, y)","schema":"%s"}|} sch))
  in
  check_str "empty relation has volume 0" "0" (vol ());
  let update op region =
    Client.request c
      (Printf.sprintf {|{"op":"%s","schema":"%s","rel":"R","region":"%s"}|} op
         sch region)
  in
  let ins =
    update "insert" {|0 <= x0 /\\ x0 <= 1/2 /\\ 0 <= x1 /\\ x1 <= 1/2|}
  in
  check "insert ok" true (is_ok ins);
  check_str "insert echoes op" "insert" (str_field "op" ins);
  check_int "insert bumps the version" 1 (int_field "version" ins);
  (match member "delta_box" ins with
  | Some (J.Arr [ J.Arr _; J.Arr _ ]) -> ()
  | _ -> Alcotest.failf "insert carries no 2-d delta box: %s" ins);
  check_str "insert reflected in queries" "1/4" (vol ());
  let rem =
    update "remove" {|1/4 <= x0 /\\ x0 <= 1/2 /\\ 0 <= x1 /\\ x1 <= 1/2|}
  in
  check_int "remove bumps the version" 2 (int_field "version" rem);
  check_str "removal reflected in queries" "1/8" (vol ());
  (* an empty-region edit is a flagged no-op but still versions *)
  let noop = update "remove" {|x0 <= -5 /\\ 5 <= x0|} in
  check "no-op delta flagged" true
    (match member "delta_empty" noop with Some (J.Bool b) -> b | _ -> false);
  check "no-op delta box is null" true (member "delta_box" noop = Some J.Null);
  check_str "no-op leaves the answer alone" "1/8" (vol ());
  check_int "db_version tracks every update" 3
    (int_field "version" (Client.request c (db_version_req sch)))

let test_update_errors () =
  with_server @@ fun addr ->
  with_client addr @@ fun c ->
  let code line = error_code (Client.request c line) in
  check_str "insert missing rel" "bad-request"
    (code {|{"op":"insert","schema":"R:2","region":"0 <= x0"}|});
  check_str "remove missing region" "bad-request"
    (code {|{"op":"remove","schema":"R:2","rel":"R"}|});
  check_str "db_version missing schema" "bad-request"
    (code {|{"op":"db_version"}|});
  check_str "malformed schema spec" "bad-request"
    (code {|{"op":"insert","schema":"R:zig","rel":"R","region":"0 <= x0"}|});
  check_str "unknown relation" "bad-request"
    (code {|{"op":"insert","schema":"R:2","rel":"S","region":"0 <= x0"}|});
  check_str "region must be relation-free" "bad-request"
    (code {|{"op":"insert","schema":"R:2","rel":"R","region":"R(x0, x1)"}|});
  check_str "unparseable region" "parse-error"
    (code {|{"op":"insert","schema":"R:2","rel":"R","region":"<<<"}|});
  check "still serving after update errors" true
    (is_ok (Client.request c {|{"op":"ping"}|}))

(* ------------------------------------------------------------------ *)
(* Disconnects                                                         *)
(* ------------------------------------------------------------------ *)

let test_disconnect_mid_request () =
  with_server @@ fun addr ->
  (* half a request then a clean close: the partial line is dropped *)
  (let c = Client.connect addr in
   Client.send_line c {|{"op":"ping"}|};
   ignore (Client.recv_line c);
   Client.send_raw c {|{"op":"vol","query":"0 <= |};
   Client.close c);
  (* a full request whose response the client never reads *)
  (let c = Client.connect addr in
   Client.send_line c {|{"op":"vol","query":"0 <= x /\\ x <= 1"}|};
   Client.close c);
  (* the server survived both and still answers *)
  with_client addr @@ fun c ->
  check "server alive after disconnects" true
    (is_ok (Client.request c {|{"op":"ping"}|}))

let () =
  Alcotest.run "cqa_serve"
    [
      ( "protocol",
        [ Alcotest.test_case "structured errors" `Quick test_protocol_errors;
          Alcotest.test_case "ping and stats" `Quick test_ping_stats ] );
      ( "volumes",
        [ Alcotest.test_case "vol by query and plan id" `Quick
            test_vol_roundtrip;
          Alcotest.test_case "rewritten spellings share a plan" `Quick
            test_rewritten_plan_sharing;
          Alcotest.test_case "parameterized vol, vol_batch, reset" `Quick
            test_parameterized_vol_batch_reset ] );
      ( "admission",
        [ Alcotest.test_case "over-budget rejection" `Quick
            test_admission_reject;
          Alcotest.test_case "degrade to sampler" `Quick
            test_admission_degrade ] );
      ( "concurrency",
        [ Alcotest.test_case "batched responses byte-identical" `Quick
            test_concurrent_byte_identical ] );
      ( "updates",
        [ Alcotest.test_case "insert, remove, db_version round trip" `Quick
            test_update_roundtrip;
          Alcotest.test_case "update error codes" `Quick test_update_errors ] );
      ( "disconnects",
        [ Alcotest.test_case "mid-request disconnects tolerated" `Quick
            test_disconnect_mid_request ] );
    ]
