(* Telemetry layer: probe mechanics, snapshot/diff, the determinism
   contract under domain parallelism, the Tjson reader, and the
   cost-guarded exact -> approximate dispatch. *)

open Cqa_arith
open Cqa_logic
open Cqa_vc
open Cqa_core
module T = Cqa_telemetry.Telemetry
module J = Cqa_telemetry.Tjson
module Pool = Cqa_core.Pool

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Telemetry state is process-global; every test starts from a clean,
   enabled slate and leaves the switch off. *)
let with_telemetry f =
  T.enable ();
  T.reset ();
  Fun.protect ~finally:T.disable f

let counter_value snap name =
  match List.assoc_opt name snap.T.counters with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)
(* Core probe mechanics                                                *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  with_telemetry @@ fun () ->
  let c = T.counter "test.counter" in
  T.incr c;
  T.add c 4;
  T.set_max c 3 (* below: no-op *);
  let s = T.snapshot () in
  check_int "incr + add" 5 (counter_value s "test.counter");
  T.set_max c 100;
  check_int "set_max raises" 100 (counter_value (T.snapshot ()) "test.counter");
  T.reset ();
  check_int "reset zeroes" 0 (counter_value (T.snapshot ()) "test.counter");
  check "same name, same counter" true (c == T.counter "test.counter")

let test_disabled_probes_are_inert () =
  T.disable ();
  T.reset ();
  let c = T.counter "test.disabled" in
  T.incr c;
  T.add c 10;
  let tm = T.timer "test.disabled_timer" in
  T.record_ns tm 5.0;
  check_int "counter untouched while disabled" 0
    (counter_value (T.snapshot ()) "test.disabled");
  let st = List.assoc "test.disabled_timer" (T.snapshot ()).T.timers in
  check_int "timer untouched while disabled" 0 st.T.count

let test_timers_and_spans () =
  with_telemetry @@ fun () ->
  let tm = T.timer "test.timer" in
  T.record_ns tm 10.0;
  T.record_ns tm 30.0;
  let v = T.time tm (fun () -> 42) in
  check_int "time returns the result" 42 v;
  let st = List.assoc "test.timer" (T.snapshot ()).T.timers in
  check_int "three samples" 3 st.T.count;
  check "total accumulates" true (st.T.total_ns >= 40.0);
  check "min <= max" true (st.T.min_ns <= st.T.max_ns);
  let r = T.with_span "unit" (fun () -> T.with_span "unit" (fun () -> 7)) in
  check_int "span returns the result" 7 r;
  let s = T.snapshot () in
  check_int "nested span depth high-water" 2
    (counter_value s "span.depth:unit");
  let sp = List.assoc "span:unit" s.T.timers in
  check_int "two span samples" 2 sp.T.count

let test_events_and_diff () =
  with_telemetry @@ fun () ->
  let c = T.counter "test.diffed" in
  T.incr c;
  T.event "e1" "first";
  let before = T.snapshot () in
  T.add c 2;
  T.event "e2" "second";
  let d = T.diff ~before ~after:(T.snapshot ()) in
  check_int "counter delta" 2 (counter_value d "test.diffed");
  check "only the new event" true (d.T.events = [ ("e2", "second") ])

(* ------------------------------------------------------------------ *)
(* Determinism contract under domain parallelism                       *)
(* ------------------------------------------------------------------ *)

let fixed_semilinear dim seed =
  let prng = Prng.create seed in
  Cqa_workload.Generators.semilinear prng ~dim ~disjuncts:2

(* Scheduling-dependent names the contract explicitly exempts: memo
   hit/miss splits (two domains can both miss a cold key), work performed
   inside memoized computations, which concurrent cold misses duplicate --
   the fm.* counters under the QE/satisfiability memos and the simplex.*
   LP-work counters under the memoized bounding boxes -- plus, since the
   persistent pool, the pool.* scheduler counters (batches taken
   parallel/sequential, jobs stolen: functions of the cutoff and the steal
   schedule), the *.contention and *.evict shard counters of the striped
   memo tables, the plan.* counters (cache traffic, per-database
   execution state and wall-clock compile time: all functions of execution
   history), the serve.* counters (pure traffic tallies of whatever
   clients sent), and the arena.* counters (scratch-arena reuse/grow is
   per-domain: how many workers first-touch an arena depends on the
   steal schedule). *)
let deterministic_counters snap =
  List.filter
    (fun (name, _) ->
      let has_suffix suf =
        let n = String.length name and k = String.length suf in
        n >= k && String.sub name (n - k) k = suf
      in
      let has_prefix pre =
        let n = String.length name and k = String.length pre in
        n >= k && String.sub name 0 k = pre
      in
      not
        (has_suffix ".hit" || has_suffix ".miss" || has_prefix "simplex."
        || has_prefix "fm." || has_prefix "pool." || has_prefix "plan."
        || has_prefix "serve." || has_prefix "arena."
        || has_suffix ".contention" || has_suffix ".evict"))
    snap.T.counters

let counters_for_run job =
  with_telemetry @@ fun () ->
  let before = T.snapshot () in
  job ();
  deterministic_counters (T.diff ~before ~after:(T.snapshot ()))

(* Force the pool path (mode Always) so the multi-domain runs really
   execute on pool workers even on single-core hardware where the adaptive
   cutoff would run them inline. *)
let test_counter_determinism_across_domains () =
  let s3 = fixed_semilinear 3 102 in
  let expected = ref [] in
  let cold () =
    Cqa_linear.Fourier_motzkin.clear_qe_cache ();
    Cqa_linear.Semilinear.clear_bbox_cache ()
  in
  Pool.set_mode Pool.Always;
  Fun.protect ~finally:(fun () -> Pool.set_mode Pool.Auto) @@ fun () ->
  List.iteri
    (fun i domains ->
      cold ();
      let sweep =
        counters_for_run (fun () ->
            ignore (Volume_exact.volume_sweep ~domains s3))
      in
      cold ();
      let ie =
        counters_for_run (fun () ->
            ignore (Volume_exact.volume_incl_excl ~domains s3))
      in
      if i = 0 then expected := [ sweep; ie ]
      else begin
        check
          (Printf.sprintf "sweep counters identical at %d domains" domains)
          true
          (List.nth !expected 0 = sweep);
        check
          (Printf.sprintf "incl-excl counters identical at %d domains" domains)
          true
          (List.nth !expected 1 = ie)
      end)
    [ 1; 2; 4 ];
  (* sanity: the runs actually moved the engine counters *)
  check "sweep recorded work" true
    (List.exists
       (fun (n, v) -> n = "volume.sweep.sections" && v > 0)
       (List.nth !expected 0))

let test_memo_hit_miss_expectations () =
  let x = Var.of_string "x" and y = Var.of_string "y" and z = Var.of_string "z" in
  let lt a b = Formula.Atom (Cqa_linear.Linconstr.lt a b) in
  let f =
    Formula.forall_many [ x; y ]
      (Formula.implies
         (lt (Cqa_linear.Linexpr.var x) (Cqa_linear.Linexpr.var y))
         (Formula.Exists
            ( z,
              Formula.And
                ( lt (Cqa_linear.Linexpr.var x) (Cqa_linear.Linexpr.var z),
                  lt (Cqa_linear.Linexpr.var z) (Cqa_linear.Linexpr.var y) ) )))
  in
  with_telemetry @@ fun () ->
  Cqa_linear.Fourier_motzkin.clear_qe_cache ();
  let before = T.snapshot () in
  ignore (Cqa_linear.Fourier_motzkin.qe f);
  let cold = T.diff ~before ~after:(T.snapshot ()) in
  check "cold run misses the QE memo" true
    (counter_value cold "fm.qe_memo.miss" > 0);
  check_int "cold run cannot hit the QE memo" 0
    (counter_value cold "fm.qe_memo.hit");
  let before = T.snapshot () in
  ignore (Cqa_linear.Fourier_motzkin.qe f);
  let warm = T.diff ~before ~after:(T.snapshot ()) in
  check "warm run hits the QE memo" true
    (counter_value warm "fm.qe_memo.hit" > 0);
  check_int "warm run does no projection" 0
    (counter_value warm "fm.qe.projections")

(* ------------------------------------------------------------------ *)
(* Tjson and the JSON snapshot schema                                  *)
(* ------------------------------------------------------------------ *)

let test_tjson_parser () =
  check "null" true (J.parse_exn "null" = J.Null);
  check "number" true (J.parse_exn "-12.5e1" = J.Num (-125.));
  check "string escapes" true
    (J.parse_exn {|"a\nbA"|} = J.Str "a\nbA");
  check "nested" true
    (J.parse_exn {|{"a":[1,true,{"b":""}]}|}
    = J.Obj [ ("a", J.Arr [ J.Num 1.; J.Bool true; J.Obj [ ("b", J.Str "") ] ]) ]);
  check "trailing garbage rejected" true
    (match J.parse "{} x" with Error _ -> true | Ok _ -> false);
  check "bad input rejected" true
    (match J.parse "{" with Error _ -> true | Ok _ -> false);
  let doc = J.parse_exn {|{"k1": 1.5, "k2": 2}|} in
  check "keys in order" true (J.keys doc = [ "k1"; "k2" ]);
  check "member" true
    (match J.member "k1" doc with
    | Some v -> J.to_float v = Some 1.5
    | None -> false)

let test_snapshot_json_round_trip () =
  with_telemetry @@ fun () ->
  let c = T.counter "test.json_counter" in
  T.add c 7;
  let tm = T.timer "test.json_timer" in
  T.record_ns tm 12.0;
  T.event "test.event" {|detail with "quotes" and \ backslash|};
  let snap = T.snapshot () in
  let doc = J.parse_exn (T.to_json snap) in
  let counters = Option.get (J.member "counters" doc) in
  check "counter survives the round trip" true
    (match J.member "test.json_counter" counters with
    | Some v -> J.to_float v = Some 7.
    | None -> false);
  let timers = Option.get (J.member "timers" doc) in
  (match J.member "test.json_timer" timers with
  | Some t ->
      check "timer count" true
        (Option.bind (J.member "count" t) J.to_float = Some 1.);
      check "timer total" true
        (match Option.bind (J.member "total_ns" t) J.to_float with
        | Some ns -> ns >= 12.0
        | None -> false)
  | None -> Alcotest.fail "timer missing from JSON");
  match J.member "events" doc with
  | Some (J.Arr [ ev ]) ->
      check "event name" true
        (Option.bind (J.member "name" ev) J.to_string = Some "test.event");
      check "event detail round-trips escapes" true
        (Option.bind (J.member "detail" ev) J.to_string
        = Some {|detail with "quotes" and \ backslash|})
  | _ -> Alcotest.fail "expected exactly one event"

(* ------------------------------------------------------------------ *)
(* Cost-guarded dispatch                                               *)
(* ------------------------------------------------------------------ *)

let blowup_formula () =
  Parser.formula_of_string
    "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . \
     (u < x1 /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < v \
     /\\ 0 <= x1 /\\ x5 <= 1)"

let test_cost_profile_matches_cost_pass () =
  let f = blowup_formula () in
  let p = Dispatch.profile_formula f in
  let e = Cqa_analysis.Cost.estimate_formula f in
  check_int "atoms agree" e.Cqa_analysis.Cost.atoms p.Dispatch.atoms;
  check_int "quantifiers agree" e.Cqa_analysis.Cost.quantifiers
    p.Dispatch.quantifiers;
  check "projection agrees" true
    (e.Cqa_analysis.Cost.projected_qe_atoms = Dispatch.projected_qe_atoms p);
  check "projection is the Section 3 blowup" true
    (Dispatch.projected_qe_atoms p > 1e9);
  check "default budget is unguarded" true
    (Dispatch.decide p = Dispatch.Run_exact);
  check "small budget trips the guard" true
    (match Dispatch.decide ~budget:1e6 p with
    | Dispatch.Fallback_approx { projected; budget } ->
        projected > 1e9 && budget = 1e6
    | Dispatch.Run_exact -> false)

let test_guarded_fallback_fires () =
  let f = blowup_formula () in
  let coords = Array.of_list (Var.Set.elements (Ast.free_vars f)) in
  let db = Db.empty Schema.empty in
  with_telemetry @@ fun () ->
  let before = T.snapshot () in
  let r = Volume_exact.volume_guarded ~budget:1e6 db coords f in
  let d = T.diff ~before ~after:(T.snapshot ()) in
  check "small budget selects the sampling engine" true
    (match r.Volume_exact.engine with
    | Volume_exact.Approx_engine { sample_size } -> sample_size > 0
    | Volume_exact.Exact_engine -> false);
  check_int "fallback counter fired" 1
    (counter_value d "dispatch.guard.fallback");
  check "fallback event recorded" true
    (List.exists (fun (name, _) -> name = "dispatch.fallback") d.T.events);
  check "estimate lands in [0, 1]" true
    (Q.sign r.Volume_exact.value >= 0 && Q.leq r.Volume_exact.value Q.one);
  (* eps = delta = 0.1 defaults: the exact VOL_I is 1/2, so the Blumer-sized
     estimate must land within eps with overwhelming margin for this seed *)
  check "estimate is eps-close to the exact 1/2" true
    (Q.to_float r.Volume_exact.value -. 0.5 < 0.1
    && 0.5 -. Q.to_float r.Volume_exact.value < 0.1)

let test_guarded_default_budget_is_exact () =
  let f = blowup_formula () in
  let coords = Array.of_list (Var.Set.elements (Ast.free_vars f)) in
  let db = Db.empty Schema.empty in
  with_telemetry @@ fun () ->
  let before = T.snapshot () in
  let r = Volume_exact.volume_guarded db coords f in
  let d = T.diff ~before ~after:(T.snapshot ()) in
  check "default budget keeps the exact engine" true
    (r.Volume_exact.engine = Volume_exact.Exact_engine);
  check_int "no fallback" 0 (counter_value d "dispatch.guard.fallback");
  check_int "exact-decision counter" 1 (counter_value d "dispatch.guard.exact");
  check "exact VOL_I is 1/2" true (r.Volume_exact.value = Q.of_ints 1 2)

let () =
  Alcotest.run "cqa_telemetry"
    [
      ( "probes",
        [ Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "disabled probes are inert" `Quick
            test_disabled_probes_are_inert;
          Alcotest.test_case "timers and spans" `Quick test_timers_and_spans;
          Alcotest.test_case "events and diff" `Quick test_events_and_diff ] );
      ( "determinism",
        [ Alcotest.test_case "counters across domain counts" `Quick
            test_counter_determinism_across_domains;
          Alcotest.test_case "memo hit/miss expectations" `Quick
            test_memo_hit_miss_expectations ] );
      ( "json",
        [ Alcotest.test_case "tjson parser" `Quick test_tjson_parser;
          Alcotest.test_case "snapshot round trip" `Quick
            test_snapshot_json_round_trip ] );
      ( "guarded dispatch",
        [ Alcotest.test_case "profile matches cost pass" `Quick
            test_cost_profile_matches_cost_pass;
          Alcotest.test_case "fallback fires under budget" `Quick
            test_guarded_fallback_fires;
          Alcotest.test_case "default budget stays exact" `Quick
            test_guarded_default_budget_is_exact ] );
    ]
