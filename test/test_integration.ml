(* End-to-end scenarios mirroring the experiment suite (DESIGN.md, E1-E12):
   each checks the *shape* the paper predicts on small instances. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_vc
open Cqa_core
open Cqa_workload

let check = Alcotest.(check bool)
let q = Q.of_int
let qq = Q.of_ints

(* E1: the VC-based approximation formula sizes explode *)
let test_e1_blowup_shape () =
  let sizes =
    List.map
      (fun eps ->
        (Bounds.km_formula_size ~eps ~delta:0.25 ~vc_dim:4 ~m:2 ~atoms_in_phi:20).Bounds.atoms)
      [ 0.5; 0.1; 0.02 ]
  in
  (match sizes with
  | [ a; b; c ] ->
      check "monotone blowup" true (a < b && b < c);
      check "infeasible at 1/10" true (b > 1e8)
  | _ -> assert false)

(* E2: EF-game argument: for every rank k there are instances with large
   cardinality gap that no rank-k sentence separates *)
let test_e2_ef () =
  for k = 1 to 2 do
    match Ef_game.separating_counterexample ~rounds:k ~c1:(q 3) ~c2:(q 3) with
    | Some (a, b) -> check "duplicator wins" true (Ef_game.duplicator_wins k a b)
    | None -> Alcotest.fail "counterexample expected"
  done

(* E3: the trivial approximation is always within 1/2, exact on 0/1 *)
let test_e3_trivial () =
  let prng = Prng.create 42 in
  for _ = 1 to 25 do
    let s = Generators.semilinear prng ~dim:2 ~disjuncts:2 in
    let t = Trivial_approx.trivial_approx s in
    let v = Volume_exact.volume_clamped s in
    check "within 1/2" true (Q.leq (Q.abs (Q.sub t v)) Q.half);
    if Q.is_zero v then check "exact zero" true (Q.is_zero t);
    if Q.equal v Q.one then check "exact one" true (Q.equal t Q.one)
  done

(* E4: translated circuits cannot separate cardinalities *)
let test_e4_circuits () =
  let x = Var.of_string "x" and y = Var.of_string "y" in
  let sentences =
    [ Formula.Exists (x, Formula.Atom (Circuit.Pred (0, x)));
      Formula.Forall (x, Formula.Atom (Circuit.Pred (0, x)));
      Formula.Exists
        ( x,
          Formula.Exists
            ( y,
              Formula.conj
                [ Formula.Atom (Circuit.Lt (x, y));
                  Formula.Atom (Circuit.Pred (0, x));
                  Formula.Atom (Circuit.Pred (0, y)) ] ) ) ]
  in
  let n = 10 in
  List.iter
    (fun s ->
      let c = Circuit.of_sentence ~preds:1 ~n s in
      check "no candidate separates" false
        (Circuit.separates_cardinalities ~c1:(qq 1 3) ~c2:(qq 2 3) ~n c))
    sentences

(* E5: Theorem 3 three ways: sweep = inclusion-exclusion = grid (when
   variable independent), and they integrate the paper's closed form *)
let test_e5_exact_volume_agreement () =
  let prng = Prng.create 7 in
  for _ = 1 to 15 do
    let s = Generators.semilinear prng ~dim:2 ~disjuncts:2 in
    let a = Volume_exact.volume_sweep s in
    let b = Volume_exact.volume_incl_excl s in
    check "sweep = ie" true (Q.equal a b)
  done;
  for _ = 1 to 6 do
    let s = Generators.semilinear prng ~dim:3 ~disjuncts:2 in
    check "3d" true
      (Q.equal (Volume_exact.volume_sweep s) (Volume_exact.volume_incl_excl s))
  done

(* E6: the FO+POLY+SUM polygon program against computational geometry *)
let test_e6_polygon_program () =
  let prng = Prng.create 13 in
  let term = Compile.polygon_area_term ~rel:"P" in
  let tried = ref 0 in
  while !tried < 3 do
    match Generators.convex_polygon prng ~points:4 with
    | Some poly when Cqa_geom.Polygon.vertex_count poly <= 4 ->
        incr tried;
        let s = Generators.polygon_to_semilinear poly in
        let db =
          Db.of_list Paper_examples.polygon_schema [ ("P", Db.Semilin s) ]
        in
        let got = Eval.eval_term db Var.Map.empty term in
        check "program = shoelace" true (Q.equal got (Cqa_geom.Polygon.area poly))
    | _ -> ()
  done

(* E7: Theorem 4 shape: one shared sample approximates a whole family *)
let test_e7_family () =
  let prng = Prng.create 3 in
  let db = Paper_examples.triangle_db () in
  let dv = Semilinear.default_vars 2 in
  let m = Volume_approx.sample_size_for ~eps:0.08 ~delta:0.2 ~vc_dim:2 in
  let fam =
    Volume_approx.approx_query_family ~prng ~m db ~xvars:[| dv.(0) |]
      ~yvars:[| dv.(1) |]
      (Ast.Rel ("P", [ dv.(0); dv.(1) ]))
      ~params:(List.init 9 (fun i -> [| qq i 4 |]))
  in
  let worst =
    List.fold_left
      (fun acc (a, est) ->
        let truth = min 1.0 (max 0.0 (2.0 -. Q.to_float a.(0))) in
        max acc (abs_float (Q.to_float est -. truth)))
      0.0 fam
  in
  check "sup error within eps" true (worst < 0.08)

(* E8/E9: VC dimension growth of definable families *)
let test_e8_e9_vc_growth () =
  let dims =
    List.map
      (fun bits ->
        let inst, rel = Paper_examples.prop5_instance ~bits in
        let ground = List.map (fun i -> [| q i |]) (List.init bits Fun.id) in
        let params = List.init (1 lsl bits) (fun a -> q a) in
        let d =
          Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
              Instance.mem inst rel [| a; pt.(0) |])
        in
        (bits, Instance.size inst, d))
      [ 2; 3; 4 ]
  in
  List.iter
    (fun (bits, size, d) ->
      check "lower bound log |D|" true
        (float_of_int d >= (log (float_of_int size) /. log 2.) -. 1.0);
      check "matches bits" true (d = bits))
    dims

(* E11: mu is closed but useless for volume *)
let test_e11_mu () =
  let prng = Prng.create 23 in
  for _ = 1 to 10 do
    let s = Generators.semilinear prng ~dim:2 ~disjuncts:2 in
    check "bounded implies mu zero" true (Q.is_zero (Mu.mu s))
  done

(* E12: variable independence is restrictive *)
let test_e12_varindep () =
  let prng = Prng.create 29 in
  let vi = ref 0 and total = 30 in
  for _ = 1 to total do
    let s = Generators.semilinear prng ~dim:2 ~disjuncts:2 in
    if Var_indep.is_variable_independent s then begin
      incr vi;
      check "vi volume agrees" true
        (Q.equal (Var_indep.grid_volume s) (Volume_exact.volume s))
    end
  done;
  (* random polytopes with slanted halfspaces are rarely variable
     independent *)
  check "restrictive" true (!vi < total)

let () =
  Alcotest.run "cqa_integration"
    [ ( "experiments",
        [ Alcotest.test_case "E1 blowup" `Quick test_e1_blowup_shape;
          Alcotest.test_case "E2 ef games" `Quick test_e2_ef;
          Alcotest.test_case "E3 trivial approx" `Quick test_e3_trivial;
          Alcotest.test_case "E4 circuits" `Quick test_e4_circuits;
          Alcotest.test_case "E5 exact volume" `Quick test_e5_exact_volume_agreement;
          Alcotest.test_case "E6 polygon program" `Slow test_e6_polygon_program;
          Alcotest.test_case "E7 family approx" `Quick test_e7_family;
          Alcotest.test_case "E8 E9 vc growth" `Quick test_e8_e9_vc_growth;
          Alcotest.test_case "E11 mu" `Quick test_e11_mu;
          Alcotest.test_case "E12 varindep" `Quick test_e12_varindep ] ) ]
