open Cqa_arith
open Cqa_logic
open Cqa_poly

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints
let rng = Random.State.make [| 31337 |]

let rand_upoly maxdeg =
  Upoly.of_coeffs
    (List.init (1 + Random.State.int rng (maxdeg + 1)) (fun _ ->
         q (Random.State.int rng 11 - 5)))

(* ------------------------------------------------------------------ *)
(* Upoly                                                               *)
(* ------------------------------------------------------------------ *)

let test_upoly_basics () =
  let p = Upoly.of_int_coeffs [ 1; 0; -3; 2 ] in
  check_int "degree" 3 (Upoly.degree p);
  check "leading" true (Q.equal (Upoly.leading p) Q.two);
  check "eval" true (Q.equal (Upoly.eval p Q.two) (q 5));
  check "trailing zeros stripped" true
    (Upoly.equal (Upoly.of_int_coeffs [ 1; 2; 0; 0 ]) (Upoly.of_int_coeffs [ 1; 2 ]));
  check_int "degree zero poly" (-1) (Upoly.degree Upoly.zero)

let test_upoly_arith () =
  let p = Upoly.of_int_coeffs [ 1; 1 ] in
  (* (x+1)^2 = x^2+2x+1 *)
  check "square" true (Upoly.equal (Upoly.mul p p) (Upoly.of_int_coeffs [ 1; 2; 1 ]));
  check "pow" true (Upoly.equal (Upoly.pow p 3) (Upoly.of_int_coeffs [ 1; 3; 3; 1 ]));
  check "compose" true
    (Upoly.equal
       (Upoly.compose (Upoly.of_int_coeffs [ 0; 0; 1 ]) p)
       (Upoly.of_int_coeffs [ 1; 2; 1 ]));
  check "derivative" true
    (Upoly.equal (Upoly.derivative (Upoly.of_int_coeffs [ 5; 0; 3 ])) (Upoly.of_int_coeffs [ 0; 6 ]))

let test_upoly_divmod () =
  for _ = 1 to 300 do
    let a = rand_upoly 6 and b = rand_upoly 4 in
    if not (Upoly.is_zero b) then begin
      let d, r = Upoly.divmod a b in
      check "recompose" true (Upoly.equal a (Upoly.add (Upoly.mul d b) r));
      check "degree drop" true (Upoly.degree r < Upoly.degree b || Upoly.is_zero r)
    end
  done

let test_upoly_gcd () =
  (* gcd ((x-1)(x-2), (x-1)(x-3)) = x - 1 monic *)
  let f = Upoly.mul (Upoly.of_int_coeffs [ -1; 1 ]) (Upoly.of_int_coeffs [ -2; 1 ]) in
  let g = Upoly.mul (Upoly.of_int_coeffs [ -1; 1 ]) (Upoly.of_int_coeffs [ -3; 1 ]) in
  check "gcd" true (Upoly.equal (Upoly.gcd f g) (Upoly.of_int_coeffs [ -1; 1 ]));
  check "square free" true
    (Upoly.equal
       (Upoly.square_free (Upoly.mul f f))
       (Upoly.monic f))

let test_sturm_counts () =
  (* (x^2-2)(x-3): 3 real roots *)
  let p = Upoly.of_int_coeffs [ 6; -2; -3; 1 ] in
  check_int "3 roots" 3 (Upoly.count_real_roots p);
  check_int "roots in (0,2]" 1 (Upoly.count_roots_in p Q.zero Q.two);
  check_int "roots in (-2,0]" 1 (Upoly.count_roots_in p (q (-2)) Q.zero);
  check_int "x^2+1 rootless" 0 (Upoly.count_real_roots (Upoly.of_int_coeffs [ 1; 0; 1 ]));
  (* multiplicities collapse *)
  check_int "(x-1)^4" 1 (Upoly.count_real_roots (Upoly.pow (Upoly.of_int_coeffs [ -1; 1 ]) 4))

let test_isolate_roots () =
  for _ = 1 to 150 do
    let p = rand_upoly 6 in
    if Upoly.degree p >= 1 then begin
      let ivs = Upoly.isolate_roots p in
      check_int "count matches sturm" (Upoly.count_real_roots p) (List.length ivs);
      let sf = Upoly.square_free p in
      List.iter
        (fun iv ->
          if Interval.is_point iv then
            check "point is root" true (Upoly.sign_at sf (Interval.lo iv) = 0)
          else begin
            check "endpoints nonroot" true
              (Upoly.sign_at sf (Interval.lo iv) <> 0
              && Upoly.sign_at sf (Interval.hi iv) <> 0);
            check_int "isolates one" 1
              (Upoly.count_roots_in sf (Interval.lo iv) (Interval.hi iv))
          end)
        ivs;
      (* disjoint and sorted *)
      let rec disjoint = function
        | a :: (b :: _ as rest) ->
            Q.lt (Interval.hi a) (Interval.lo b)
            || (Q.equal (Interval.hi a) (Interval.lo b) && disjoint rest)
            || (Q.leq (Interval.hi a) (Interval.lo b) && disjoint rest)
        | _ -> true
      in
      check "sorted disjoint" true (disjoint ivs)
    end
  done

let test_cauchy_bound () =
  for _ = 1 to 100 do
    let p = rand_upoly 5 in
    if Upoly.degree p >= 1 then begin
      let b = Upoly.cauchy_bound p in
      check_int "no roots outside"
        (Upoly.count_real_roots p)
        (Upoly.count_roots_in p (Q.neg b) b)
    end
  done

let test_interpolate_integrate () =
  (* interpolation through exact samples of x^3 - x recovers it *)
  let p = Upoly.of_int_coeffs [ 0; -1; 0; 1 ] in
  let pts = List.map (fun i -> (q i, Upoly.eval p (q i))) [ -2; -1; 0; 1; 2 ] in
  check "lagrange exact" true (Upoly.equal (Upoly.interpolate pts) p);
  (* integral of x^2 over [0,3] = 9 *)
  check "integrate" true
    (Q.equal (Upoly.integrate (Upoly.of_int_coeffs [ 0; 0; 1 ]) Q.zero (q 3)) (q 9));
  check "antiderivative derivative" true
    (Upoly.equal (Upoly.derivative (Upoly.antiderivative p)) p);
  Alcotest.check_raises "dup abscissa"
    (Invalid_argument "Upoly.interpolate: duplicate abscissa") (fun () ->
      ignore (Upoly.interpolate [ (Q.zero, Q.one); (Q.zero, Q.two) ]))

let test_resultant () =
  (* Res(x^2-2, x^2-3) <> 0: no common root *)
  let p2 = Upoly.of_int_coeffs [ -2; 0; 1 ] and p3 = Upoly.of_int_coeffs [ -3; 0; 1 ] in
  check "no common root" false (Resultant.have_common_root p2 p3);
  (* common factor (x-1) *)
  let f = Upoly.mul (Upoly.of_int_coeffs [ -1; 1 ]) p2 in
  let g = Upoly.mul (Upoly.of_int_coeffs [ -1; 1 ]) p3 in
  check "common root" true (Resultant.have_common_root f g);
  (* classic closed form: Res(x^2+bx+c, x-r) = r^2+br+c *)
  check "eval form" true
    (Q.equal
       (Resultant.resultant (Upoly.of_int_coeffs [ 3; 2; 1 ]) (Upoly.of_int_coeffs [ -2; 1 ]))
       (q 11));
  (* discriminant of x^2+bx+c is b^2-4c *)
  check "quadratic discriminant" true
    (Q.equal (Resultant.discriminant (Upoly.of_int_coeffs [ 3; 2; 1 ])) (q (-8)));
  check "square free" true (Resultant.is_square_free p2);
  check "not square free" false
    (Resultant.is_square_free (Upoly.mul p2 p2));
  (* random: resultant vanishes iff gcd is nonconstant (rational roots) *)
  for _ = 1 to 100 do
    let a = rand_upoly 4 and b = rand_upoly 4 in
    if Upoly.degree a >= 1 && Upoly.degree b >= 1 then begin
      let has_common = Upoly.degree (Upoly.gcd a b) >= 1 in
      if has_common then
        check "gcd implies res 0" true (Resultant.have_common_root a b)
    end
  done;
  (* multiplicativity: Res(p, q r) = Res(p, q) Res(p, r) *)
  for _ = 1 to 50 do
    let a = rand_upoly 3 and b = rand_upoly 3 and c = rand_upoly 3 in
    if Upoly.degree a >= 1 && Upoly.degree b >= 1 && Upoly.degree c >= 1 then
      check "multiplicative" true
        (Q.equal
           (Resultant.resultant a (Upoly.mul b c))
           (Q.mul (Resultant.resultant a b) (Resultant.resultant a c)))
  done

(* ------------------------------------------------------------------ *)
(* Mpoly                                                               *)
(* ------------------------------------------------------------------ *)

let vx = Var.of_string "x"
let vy = Var.of_string "y"

let rand_mpoly () =
  let term () =
    Mpoly.monomial
      (q (Random.State.int rng 7 - 3))
      [ (vx, Random.State.int rng 3); (vy, Random.State.int rng 3) ]
  in
  List.fold_left Mpoly.add Mpoly.zero (List.init (1 + Random.State.int rng 4) (fun _ -> term ()))

let envs =
  List.concat_map
    (fun a -> List.map (fun b -> Var.Map.add vx (qq a 2) (Var.Map.singleton vy (qq b 2))) [ -3; -1; 0; 2 ])
    [ -2; 0; 1; 3 ]

let test_mpoly_ring_pointwise () =
  for _ = 1 to 150 do
    let p = rand_mpoly () and r = rand_mpoly () in
    List.iter
      (fun env ->
        check "add hom" true
          (Q.equal (Mpoly.eval (Mpoly.add p r) env) (Q.add (Mpoly.eval p env) (Mpoly.eval r env)));
        check "mul hom" true
          (Q.equal (Mpoly.eval (Mpoly.mul p r) env) (Q.mul (Mpoly.eval p env) (Mpoly.eval r env))))
      envs
  done

let test_mpoly_subst () =
  (* substitute y := x + 1 into x*y: get x^2 + x *)
  let p = Mpoly.mul (Mpoly.var vx) (Mpoly.var vy) in
  let s = Mpoly.subst p vy (Mpoly.add (Mpoly.var vx) Mpoly.one) in
  List.iter
    (fun env ->
      let xv = Var.Map.find vx env in
      check "subst" true (Q.equal (Mpoly.eval s env) (Q.add (Q.mul xv xv) xv)))
    envs

let test_mpoly_partial_eval () =
  for _ = 1 to 100 do
    let p = rand_mpoly () in
    List.iter
      (fun env ->
        let partial = Mpoly.eval_partial p (Var.Map.singleton vx (Var.Map.find vx env)) in
        check "partial then full" true
          (Q.equal (Mpoly.eval partial env) (Mpoly.eval p env)))
      envs
  done

let test_mpoly_derivative () =
  (* d/dx (x^2 y) = 2 x y *)
  let p = Mpoly.mul (Mpoly.mul (Mpoly.var vx) (Mpoly.var vx)) (Mpoly.var vy) in
  let d = Mpoly.derivative p vx in
  check "derivative" true
    (Mpoly.equal d (Mpoly.scale Q.two (Mpoly.mul (Mpoly.var vx) (Mpoly.var vy))))

let test_mpoly_conversions () =
  let le = Cqa_linear.Linexpr.of_list (q 3) [ (Q.two, vx); (Q.minus_one, vy) ] in
  let p = Mpoly.of_linexpr le in
  check_int "degree 1" 1 (Mpoly.total_degree p);
  (match Mpoly.to_linexpr p with
  | Some le' -> check "roundtrip" true (Cqa_linear.Linexpr.equal le le')
  | None -> Alcotest.fail "linear");
  check "nonlinear no linexpr" true (Mpoly.to_linexpr (Mpoly.mul (Mpoly.var vx) (Mpoly.var vx)) = None);
  (match Mpoly.to_upoly (Mpoly.mul (Mpoly.var vx) (Mpoly.var vx)) vx with
  | Some u -> check "to_upoly" true (Upoly.equal u (Upoly.of_int_coeffs [ 0; 0; 1 ]))
  | None -> Alcotest.fail "univariate");
  check "bivariate no upoly" true (Mpoly.to_upoly (Mpoly.mul (Mpoly.var vx) (Mpoly.var vy)) vx = None)

(* ------------------------------------------------------------------ *)
(* Algnum                                                              *)
(* ------------------------------------------------------------------ *)

let sqrt2 = List.nth (Algnum.roots_of (Upoly.of_int_coeffs [ -2; 0; 1 ])) 1

let test_algnum_known () =
  let roots = Algnum.roots_of (Upoly.of_int_coeffs [ 6; -2; -3; 1 ]) in
  check_int "3 roots" 3 (List.length roots);
  let expected = [ -.sqrt 2.; sqrt 2.; 3.0 ] in
  List.iter2
    (fun a e -> check "approx" true (abs_float (Algnum.to_float a -. e) < 1e-6))
    roots expected;
  (* the rational root is recognized on comparison *)
  check "rational root" true (Algnum.compare_q (List.nth roots 2) (q 3) = 0)

let test_algnum_compare () =
  check "sqrt2 < 3/2" true (Algnum.compare_q sqrt2 (qq 3 2) < 0);
  check "sqrt2 > 7/5" true (Algnum.compare_q sqrt2 (qq 7 5) > 0);
  check "sign" true (Algnum.sign sqrt2 > 0);
  (* equality across different defining polynomials: (x^2-2)^2 has sqrt2 *)
  let sqrt2' = List.nth (Algnum.roots_of (Upoly.of_int_coeffs [ 4; 0; -4; 0; 1 ])) 1 in
  check "cross-poly equal" true (Algnum.equal sqrt2 sqrt2');
  check "order" true (Algnum.compare (Algnum.of_q Q.one) sqrt2 < 0);
  check "rat rat" true (Algnum.compare (Algnum.of_q Q.one) (Algnum.of_int 2) < 0)

let test_algnum_sign_of_upoly () =
  check_int "defining vanishes" 0
    (Algnum.sign_of_upoly_at (Upoly.of_int_coeffs [ -2; 0; 1 ]) sqrt2);
  check_int "x^2-3 negative at sqrt2" (-1)
    (Algnum.sign_of_upoly_at (Upoly.of_int_coeffs [ -3; 0; 1 ]) sqrt2);
  check_int "x^2-1 positive at sqrt2" 1
    (Algnum.sign_of_upoly_at (Upoly.of_int_coeffs [ -1; 0; 1 ]) sqrt2);
  check_int "zero poly" 0 (Algnum.sign_of_upoly_at Upoly.zero sqrt2)

let test_algnum_approx () =
  let a = Algnum.approx sqrt2 (qq 1 1000000) in
  check "tight" true
    (abs_float (Q.to_float a -. sqrt 2.) < 2e-6);
  (* refinement converges and keeps the root *)
  let r = ref sqrt2 in
  for _ = 1 to 20 do
    r := Algnum.refine !r
  done;
  check "refined equal" true (Algnum.equal !r sqrt2)

let test_algnum_total_order () =
  let polys =
    [ Upoly.of_int_coeffs [ -2; 0; 1 ]; Upoly.of_int_coeffs [ -3; 0; 1 ];
      Upoly.of_int_coeffs [ 1; -3; 1 ]; Upoly.of_int_coeffs [ -1; -1; 1 ] ]
  in
  let nums = List.concat_map Algnum.roots_of polys @ List.map Algnum.of_int [ -2; 0; 1 ] in
  let sorted = List.sort Algnum.compare nums in
  (* sorted floats must be nondecreasing *)
  let floats = List.map Algnum.to_float sorted in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
    | _ -> true
  in
  check "total order consistent with floats" true (mono floats)

let test_algnum_arithmetic () =
  let sqrt3 = List.nth (Algnum.roots_of (Upoly.of_int_coeffs [ -3; 0; 1 ])) 1 in
  (* sqrt2 + sqrt3 is the largest root of x^4 - 10x^2 + 1 *)
  let s23 = Algnum.add sqrt2 sqrt3 in
  check "sum value" true
    (abs_float (Algnum.to_float s23 -. (sqrt 2. +. sqrt 3.)) < 1e-9);
  check_int "sum vanishes on x^4-10x^2+1" 0
    (Algnum.sign_of_upoly_at (Upoly.of_int_coeffs [ 1; 0; -10; 0; 1 ]) s23);
  (* sqrt2 * sqrt3 = sqrt6 *)
  let p6 = Algnum.mul sqrt2 sqrt3 in
  check_int "product is sqrt6" 0
    (Algnum.sign_of_upoly_at (Upoly.of_int_coeffs [ -6; 0; 1 ]) p6);
  check "product positive" true (Algnum.sign p6 > 0);
  (* cancellation detects rationality: sqrt2 - sqrt2 = 0 *)
  check "cancel" true (Algnum.equal (Algnum.sub sqrt2 sqrt2) (Algnum.of_int 0));
  (* sqrt2 * sqrt2 = 2 exactly *)
  check "square" true (Algnum.equal (Algnum.mul sqrt2 sqrt2) (Algnum.of_int 2));
  (* rational shortcuts *)
  let shifted = Algnum.add sqrt2 (Algnum.of_q (qq 1 2)) in
  check "shift" true
    (abs_float (Algnum.to_float shifted -. (sqrt 2. +. 0.5)) < 1e-9);
  let scaled = Algnum.mul sqrt2 (Algnum.of_int (-3)) in
  check "scale" true
    (abs_float (Algnum.to_float scaled +. (3. *. sqrt 2.)) < 1e-9);
  (* inverse: 1/sqrt2 = sqrt2/2 *)
  let i2 = Algnum.inv sqrt2 in
  check "inverse" true
    (Algnum.equal (Algnum.mul i2 (Algnum.of_int 2)) sqrt2);
  check "inv zero raises" true
    (try ignore (Algnum.inv (Algnum.of_int 0)); false
     with Division_by_zero -> true);
  (* field laws on a random mix, checked in floating point *)
  let nums =
    sqrt2 :: sqrt3 :: Algnum.of_q (qq (-3) 2)
    :: Algnum.roots_of (Upoly.of_int_coeffs [ 1; -4; 1 ])
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let fa = Algnum.to_float a and fb = Algnum.to_float b in
          check "add float" true
            (abs_float (Algnum.to_float (Algnum.add a b) -. (fa +. fb)) < 1e-6);
          check "mul float" true
            (abs_float (Algnum.to_float (Algnum.mul a b) -. (fa *. fb)) < 1e-6);
          check "commutative" true
            (Algnum.equal (Algnum.add a b) (Algnum.add b a)))
        nums)
    nums

(* ------------------------------------------------------------------ *)
(* Cad1                                                                *)
(* ------------------------------------------------------------------ *)

let test_cad1_structure () =
  let polys = [ Upoly.of_int_coeffs [ -2; 0; 1 ]; Upoly.of_int_coeffs [ 0; 1 ] ] in
  let cells = Cad1.decompose polys in
  (* roots: -sqrt2, 0, sqrt2: 3 points + 4 gaps *)
  check_int "cells" 7 (Cad1.cell_count cells);
  (* signs are invariant: check at sample vs endpoints *)
  List.iter
    (fun cell ->
      List.iter
        (fun p ->
          match cell with
          | Cad1.Gap { sample; _ } ->
              check "gap sample sign consistent" true
                (Cad1.sign_on cell p = Upoly.sign_at p sample)
          | Cad1.Point a ->
              check "point sign" true
                (Cad1.sign_on cell p = Algnum.sign_of_upoly_at p a))
        polys)
    cells;
  check_int "no polys" 1 (Cad1.cell_count (Cad1.decompose []));
  check_int "constants ignored" 1 (Cad1.cell_count (Cad1.decompose [ Upoly.one ]))

let test_cad1_random_membership () =
  for _ = 1 to 60 do
    let polys = List.filter (fun p -> Upoly.degree p >= 1) [ rand_upoly 4; rand_upoly 4 ] in
    let cells = Cad1.decompose polys in
    (* each gap's sample indeed lies strictly between neighbouring roots *)
    List.iter
      (function
        | Cad1.Gap { left; right; sample } ->
            (match left with
            | Some a -> check "sample right of left" true (Algnum.compare_q a sample < 0)
            | None -> ());
            (match right with
            | Some b -> check "sample left of right" true (Algnum.compare_q b sample > 0)
            | None -> ())
        | Cad1.Point _ -> ())
      cells
  done

(* ------------------------------------------------------------------ *)
(* Semialg                                                             *)
(* ------------------------------------------------------------------ *)

let disk r =
  Semialg.ball ~center:[| Q.zero; Q.zero |] ~radius:r

let test_semialg_mem () =
  let d = disk Q.two in
  check "center" true (Semialg.mem d [| Q.zero; Q.zero |]);
  check "inside" true (Semialg.mem d [| Q.one; Q.one |]);
  check "boundary" true (Semialg.mem d [| Q.two; Q.zero |]);
  check "outside" false (Semialg.mem d [| Q.two; Q.one |])

let test_semialg_ops () =
  let d1 = disk Q.one and d2 = disk Q.two in
  let ring = Semialg.diff d2 d1 in
  check "in ring" true (Semialg.mem ring [| qq 3 2; Q.zero |]);
  check "hole" false (Semialg.mem ring [| Q.zero; Q.zero |]);
  check "union restores" true
    (Semialg.mem (Semialg.union ring d1) [| Q.zero; Q.zero |]);
  check "compl" true (Semialg.mem (Semialg.compl d1) [| q 5; q 5 |])

let test_semialg_section () =
  let d = disk Q.two in
  (* section at x = 0: y in [-2, 2] *)
  let s = Semialg.last_axis_section d [| Q.zero |] in
  check_int "one component" 1 (Semialg.Section.component_count s);
  check "mem 0" true (Semialg.Section.mem s Q.zero);
  check "mem 2" true (Semialg.Section.mem s Q.two);
  check "not mem 3" false (Semialg.Section.mem s (q 3));
  (match Semialg.Section.measure_approx ~eps:(qq 1 1000) s with
  | Some m -> check "measure 4" true (abs_float (Q.to_float m -. 4.0) < 0.002)
  | None -> Alcotest.fail "finite");
  (* sqrt-2-type endpoints: section of unit disk at x = 1/2 has endpoints
     +- sqrt(3)/2 *)
  let s2 = Semialg.last_axis_section (disk Q.one) [| Q.half |] in
  let eps = Semialg.Section.endpoints s2 in
  check_int "two endpoints" 2 (List.length eps);
  List.iter
    (fun a ->
      check "endpoint is sqrt(3)/2" true
        (abs_float (abs_float (Algnum.to_float a) -. (sqrt 3. /. 2.)) < 1e-6))
    eps;
  (* empty section *)
  check "empty" true
    (Semialg.Section.is_empty (Semialg.last_axis_section (disk Q.one) [| q 5 |]))

let test_semialg_section_vs_membership () =
  for _ = 1 to 10 do
    let c = qq (Random.State.int rng 5 - 2) 2 in
    let d = Semialg.ball ~center:[| c; Q.zero |] ~radius:(qq 3 2) in
    let xv = qq (Random.State.int rng 9 - 4) 2 in
    let s = Semialg.last_axis_section d [| xv |] in
    List.iter
      (fun yv ->
        check "section consistent" (Semialg.mem d [| xv; yv |]) (Semialg.Section.mem s yv))
      (List.init 17 (fun i -> qq (i - 8) 2))
  done

let test_semialg_measure_exact () =
  (* disk radius sqrt2 at x = 0: measure exactly 2*sqrt2, an algebraic
     number vanishing on x^2 - 8 *)
  let sec = Semialg.last_axis_section (disk Q.two) [| Q.zero |] in
  (match Semialg.Section.measure_exact sec with
  | Some m -> check "chord exact 4" true (Algnum.equal m (Algnum.of_int 4))
  | None -> Alcotest.fail "finite");
  (* more directly: section of the radius-sqrt2 disk *)
  let d2 =
    let coords = Semialg.vars (Semialg.empty 2) in
    let x = Mpoly.var coords.(0) and y = Mpoly.var coords.(1) in
    Semialg.make coords
      [ [ { Semialg.poly = Mpoly.(sub (add (mul x x) (mul y y)) (constant (q 2)));
            op = Semialg.Le } ] ]
  in
  let sec2 = Semialg.last_axis_section d2 [| Q.zero |] in
  (match Semialg.Section.measure_exact sec2 with
  | Some m ->
      (* m = 2 sqrt2: vanishes on x^2 - 8 *)
      check_int "2sqrt2" 0
        (Algnum.sign_of_upoly_at (Upoly.of_int_coeffs [ -8; 0; 1 ]) m)
  | None -> Alcotest.fail "finite");
  (* unbounded section has no exact measure *)
  let co = Semialg.compl d2 in
  check "unbounded none" true
    (Semialg.Section.measure_exact (Semialg.last_axis_section co [| Q.zero |]) = None)

let test_semialg_clamp () =
  let d = disk Q.two in
  let c = Semialg.clamp_unit d in
  check "clamped in" true (Semialg.mem c [| Q.half; Q.half |]);
  check "clamped out" false (Semialg.mem c [| qq 3 2; Q.zero |]);
  let s = Semialg.last_axis_section d [| Q.zero |] in
  let sc = Semialg.Section.clamp Q.zero Q.one s in
  match Semialg.Section.measure_approx ~eps:(qq 1 1000) sc with
  | Some m -> check "clamp measure" true (abs_float (Q.to_float m -. 1.0) < 0.002)
  | None -> Alcotest.fail "finite"

let () =
  Alcotest.run "cqa_poly"
    [ ( "upoly",
        [ Alcotest.test_case "basics" `Quick test_upoly_basics;
          Alcotest.test_case "arith" `Quick test_upoly_arith;
          Alcotest.test_case "divmod" `Quick test_upoly_divmod;
          Alcotest.test_case "gcd square-free" `Quick test_upoly_gcd;
          Alcotest.test_case "sturm counts" `Quick test_sturm_counts;
          Alcotest.test_case "isolate roots" `Quick test_isolate_roots;
          Alcotest.test_case "cauchy bound" `Quick test_cauchy_bound;
          Alcotest.test_case "interpolate integrate" `Quick test_interpolate_integrate;
          Alcotest.test_case "resultant" `Quick test_resultant ] );
      ( "mpoly",
        [ Alcotest.test_case "ring pointwise" `Quick test_mpoly_ring_pointwise;
          Alcotest.test_case "subst" `Quick test_mpoly_subst;
          Alcotest.test_case "partial eval" `Quick test_mpoly_partial_eval;
          Alcotest.test_case "derivative" `Quick test_mpoly_derivative;
          Alcotest.test_case "conversions" `Quick test_mpoly_conversions ] );
      ( "algnum",
        [ Alcotest.test_case "known roots" `Quick test_algnum_known;
          Alcotest.test_case "compare" `Quick test_algnum_compare;
          Alcotest.test_case "sign of poly" `Quick test_algnum_sign_of_upoly;
          Alcotest.test_case "approx refine" `Quick test_algnum_approx;
          Alcotest.test_case "total order" `Quick test_algnum_total_order;
          Alcotest.test_case "arithmetic" `Quick test_algnum_arithmetic ] );
      ( "cad1",
        [ Alcotest.test_case "structure" `Quick test_cad1_structure;
          Alcotest.test_case "random samples" `Quick test_cad1_random_membership ] );
      ( "semialg",
        [ Alcotest.test_case "mem" `Quick test_semialg_mem;
          Alcotest.test_case "ops" `Quick test_semialg_ops;
          Alcotest.test_case "section" `Quick test_semialg_section;
          Alcotest.test_case "section vs membership" `Quick test_semialg_section_vs_membership;
          Alcotest.test_case "measure exact" `Quick test_semialg_measure_exact;
          Alcotest.test_case "clamp" `Quick test_semialg_clamp ] ) ]
