open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_geom
open Cqa_vc
open Cqa_core
open Cqa_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int
let qq = Q.of_ints

let test_rational_grid () =
  let prng = Prng.create 1 in
  for _ = 1 to 500 do
    let v = Generators.rational prng ~den:4 ~lo:(-2) ~hi:3 in
    check "in range" true (Q.leq (q (-2)) v && Q.leq v (q 3));
    check "on grid" true (Bigint.to_int_opt (Q.den v) <> None)
  done

let test_finite_set () =
  let prng = Prng.create 2 in
  let s = Generators.finite_set prng ~size:20 ~lo:0 ~hi:5 in
  check_int "size" 20 (List.length s);
  check_int "distinct" 20 (List.length (List.sort_uniq Q.compare s));
  let rec sorted = function
    | a :: (b :: _ as rest) -> Q.lt a b && sorted rest
    | _ -> true
  in
  check "sorted" true (sorted s)

let test_semilinear_generator () =
  let prng = Prng.create 3 in
  for _ = 1 to 20 do
    let s = Generators.semilinear prng ~dim:2 ~disjuncts:3 in
    check "bounded" true (Semilinear.is_bounded s);
    let v = Volume_exact.volume s in
    check "volume nonneg" true (Q.sign v >= 0)
  done

let test_convex_polygon_generator () =
  let prng = Prng.create 4 in
  let produced = ref 0 in
  for _ = 1 to 30 do
    match Generators.convex_polygon prng ~points:10 with
    | Some poly ->
        incr produced;
        check "convex" true (Polygon.is_convex poly);
        let s = Generators.polygon_to_semilinear poly in
        List.iter
          (fun pt -> check "vertices inside" true (Semilinear.mem s pt))
          (Polygon.vertices poly);
        check "centroid inside" true (Semilinear.mem s (Polygon.centroid poly));
        check "area agrees" true
          (Q.equal (Volume_exact.volume s) (Polygon.area poly))
    | None -> ()
  done;
  check "mostly nondegenerate" true (!produced > 20)

let test_disk_generator () =
  let prng = Prng.create 5 in
  for _ = 1 to 20 do
    let d = Generators.random_disk prng in
    let s = Prng.create 99 in
    for _ = 1 to 100 do
      let pt = [| Prng.q_in s (q (-1)) (q 2); Prng.q_in s (q (-1)) (q 2) |] in
      if Cqa_poly.Semialg.mem d pt then
        check "inside unit square" true
          (Array.for_all (fun c -> Q.leq Q.zero c && Q.leq c Q.one) pt)
    done
  done

let test_section3_example () =
  let points = [ qq 1 10; qq 3 10; qq 7 10; qq 9 10 ] in
  let db = Paper_examples.section3_db points in
  let f, params, ys = Paper_examples.section3_query () in
  let a = qq 1 10 and b = qq 7 10 in
  let env =
    Var.Map.add (List.nth params 0) a (Var.Map.singleton (List.nth params 1) b)
  in
  let yarr = Array.of_list ys in
  let lin = Eval.reduce_linear db env f in
  let s = Semilinear.of_formula yarr lin in
  let vol = Volume_exact.volume_clamped s in
  check "paper closed form" true
    (Q.equal vol (Paper_examples.section3_exact_volume a b));
  let env' =
    Var.Map.add (List.nth params 0) Q.half (Var.Map.singleton (List.nth params 1) b)
  in
  let s' = Semilinear.of_formula yarr (Eval.reduce_linear db env' f) in
  check "empty off U" true (Q.is_zero (Volume_exact.volume_clamped s'))

let test_arctan_example () =
  let x = Q.one in
  let set = Paper_examples.arctan_epigraph x in
  let prng = Prng.create 17 in
  let est = Volume_approx.approx_semialg ~prng ~m:6000 set in
  check "atan 1" true
    (abs_float (Q.to_float est -. Paper_examples.arctan_volume_float x) < 0.03);
  let sec = Cqa_poly.Semialg.last_axis_section set [| Q.half |] in
  match Cqa_poly.Semialg.Section.measure_approx ~eps:(qq 1 10000) sec with
  | Some m ->
      check "section height" true
        (abs_float (Q.to_float m -. (1.0 /. 1.25)) < 0.001)
  | None -> Alcotest.fail "finite section"

let test_polygon_dbs () =
  let term = Compile.polygon_area_term ~rel:"P" in
  check "triangle db" true
    (Q.equal (Eval.eval_term (Paper_examples.triangle_db ()) Var.Map.empty term) (q 2));
  check "rectangle db" true
    (Q.equal (Eval.eval_term (Paper_examples.rectangle_db ()) Var.Map.empty term) (q 6));
  check "pentagon db" true
    (Q.equal (Eval.eval_term (Paper_examples.pentagon_db ()) Var.Map.empty term) (qq 11 2))

let test_prop5_instance () =
  let inst, rel = Paper_examples.prop5_instance ~bits:4 in
  let ground = List.map (fun i -> [| q i |]) [ 0; 1; 2; 3 ] in
  let params = List.init 16 (fun a -> q a) in
  let dim =
    Cqa_vc.Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
        Instance.mem inst rel [| a; pt.(0) |])
  in
  check_int "vc = bits" 4 dim;
  check "vc >= log2 |D|" true
    (float_of_int dim >= (log (float_of_int (Instance.size inst)) /. log 2.) -. 1.0)

let () =
  Alcotest.run "cqa_workload"
    [ ( "generators",
        [ Alcotest.test_case "rational grid" `Quick test_rational_grid;
          Alcotest.test_case "finite set" `Quick test_finite_set;
          Alcotest.test_case "semilinear" `Quick test_semilinear_generator;
          Alcotest.test_case "convex polygon" `Quick test_convex_polygon_generator;
          Alcotest.test_case "disk" `Quick test_disk_generator ] );
      ( "paper-examples",
        [ Alcotest.test_case "section 3" `Quick test_section3_example;
          Alcotest.test_case "arctan" `Quick test_arctan_example;
          Alcotest.test_case "polygon dbs" `Slow test_polygon_dbs;
          Alcotest.test_case "prop 5" `Quick test_prop5_instance ] ) ]
