open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core
open Cqa_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let q = Q.of_int

let x0 = (Semilinear.default_vars 1).(0)

let u_set =
  let iv a b =
    [ Linconstr.ge (Linexpr.var x0) (Linexpr.const a);
      Linconstr.le (Linexpr.var x0) (Linexpr.const b) ]
  in
  Semilinear.make [| x0 |] [ iv Q.zero Q.one; iv (q 2) (q 3) ]

let schema = Schema.of_list [ ("U", 1) ]
let db = Db.of_list schema [ ("U", Db.Semilin u_set) ]
let xx = Var.of_string "x"
let yy = Var.of_string "y"

let has_code code ds =
  List.exists (fun d -> d.Diagnostic.code = code) ds

let fof = Parser.formula_of_string
let tof = Parser.term_of_string

(* ------------------------------------------------------------------ *)
(* Diagnostic                                                          *)
(* ------------------------------------------------------------------ *)

let test_diagnostic () =
  let e = Diagnostic.error ~code:"c1" ~path:[ "a"; "b" ] "m%d" 1 in
  let w = Diagnostic.warning ~code:"c2" ~path:[] "m2" in
  let i = Diagnostic.info ~code:"c3" ~path:[ "z" ] "m3" in
  check "message formatted" true (e.Diagnostic.message = "m1");
  check "path rendered" true (Diagnostic.path_to_string e.Diagnostic.path = "/a/b");
  check "root path" true (Diagnostic.path_to_string [] = "/");
  (* sort: severity first *)
  (match Diagnostic.sort [ i; w; e ] with
  | [ a; b; c ] ->
      check "sorted" true
        (a.Diagnostic.code = "c1" && b.Diagnostic.code = "c2"
        && c.Diagnostic.code = "c3")
  | _ -> Alcotest.fail "three diagnostics");
  check_int "errors counted" 1 (Diagnostic.count Diagnostic.Error [ i; w; e ]);
  check "has_errors" true (Diagnostic.has_errors [ i; e ]);
  check "json escapes quotes" true
    (Diagnostic.json_escape {|a"b\c|} = {|a\"b\\c|});
  let j = Diagnostic.to_json e in
  check "json well formed" true
    (String.length j > 0 && j.[0] = '{' && j.[String.length j - 1] = '}')

(* ------------------------------------------------------------------ *)
(* Scope                                                               *)
(* ------------------------------------------------------------------ *)

let test_scope_report () =
  let f = fof "exists a . forall b . (a < b /\\ exists c . c < a)" in
  let r = Scope.report_formula f in
  check_int "rank" 3 r.Scope.quantifier_rank;
  check_int "count" 3 r.Scope.quantifier_count;
  check_int "no sums" 0 r.Scope.sum_count;
  let t = tof "SUM { w | 0 <= w | END(y . U(y)) } (x . x = w)" in
  let rt = Scope.report_term t in
  check_int "sum depth" 1 rt.Scope.sum_depth;
  check_int "sum binders" 3 rt.Scope.binder_count

let test_scope_diags () =
  let shadowed = fof "exists a . exists a . a < 1" in
  let ds = Scope.check_formula shadowed in
  check "shadowed binder" true (has_code "shadowed-binder" ds);
  check "outer unused" true (has_code "unused-binder" ds);
  (* tuple variable free in the END body: error (END is evaluated first) *)
  let leak =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(TVar xx =! TVar (Var.of_string "w"))
      ~w:[ Var.of_string "w" ]
      ~guard:Ast.True ~end_y:yy
      ~end_body:Ast.(TVar yy <=! TVar (Var.of_string "w"))
  in
  check "tuple var in END" true
    (has_code "tuple-var-in-end" (Scope.check_term leak));
  (* a tuple variable used in neither the guard nor gamma *)
  let unused = tof "SUM { w | 1 <= 2 | END(y . 0 <= y /\\ y <= 1) } (x . x = 3)" in
  check "unused tuple var" true (has_code "unused-binder" (Scope.check_term unused));
  (* clean query: no scope diagnostics *)
  check "clean" true
    (Scope.check_term (tof "SUM { w | U(w) | END(y . U(y)) } (x . x = w)") = [])

(* ------------------------------------------------------------------ *)
(* Fragment                                                            *)
(* ------------------------------------------------------------------ *)

let test_fragment () =
  (* spelled FO+POLY, normalizes to FO+LIN *)
  let f = fof "(x + 1) * (x + 1) - x * x <= 4 /\\ 0 <= x" in
  let c, ds = Fragment.classify_formula f in
  check "spelled poly" true (c.Fragment.syntactic = Fragment.Poly);
  check "normalized lin" true (c.Fragment.normalized = Fragment.Lin);
  check "hint exact" true (c.Fragment.hint = Dispatch.Exact_semilinear);
  check "info emitted" true (has_code "poly-spelled-linear" ds);
  (* genuinely nonlinear *)
  let g = fof "x * x <= 2" in
  let cg, dg = Fragment.classify_formula g in
  check "normalized poly" true (cg.Fragment.normalized = Fragment.Poly);
  check "hint pointwise" true (cg.Fragment.hint = Dispatch.Pointwise_poly);
  check "nonlinear atom info" true (has_code "nonlinear-atom" dg);
  (* closed, linear-reducible sum folds away *)
  let t = tof "SUM { w | U(w) | END(y . U(y)) } (x . x = w)" in
  let ct, dt = Fragment.classify_term ~db t in
  check "sum spelled" true (ct.Fragment.syntactic = Fragment.Sum);
  check "sum normalizes lin" true (ct.Fragment.normalized = Fragment.Lin);
  check_int "reducible" 1 ct.Fragment.reducible_sums;
  check "closed-sum info" true (has_code "closed-sum" dt);
  (* an open sum can never fold *)
  let open_t = tof "SUM { w | w <= param | END(y . U(y)) } (x . x = w)" in
  let co, d_open = Fragment.classify_term ~db open_t in
  check_int "open counted" 1 co.Fragment.open_sums;
  check "hint sum-eval" true (co.Fragment.hint = Dispatch.Sum_eval);
  check "open-sum info" true (has_code "open-sum" d_open);
  (* nonlinear gamma in its own binder blocks reduction *)
  let hard = tof "SUM { w | U(w) | END(y . U(y)) } (x . x * x = w)" in
  let ch, _ = Fragment.classify_term ~db hard in
  check_int "not reducible" 0 ch.Fragment.reducible_sums;
  check "stays sum" true (ch.Fragment.normalized = Fragment.Sum)

(* ------------------------------------------------------------------ *)
(* Range                                                               *)
(* ------------------------------------------------------------------ *)

let test_range_bounds () =
  let itv a b = Range.Itv (a, b) in
  let b f = fst (Range.bounds_of yy (fof f)) in
  check "two-sided" true (b "0 <= y /\\ y <= 1" = itv (Some Q.zero) (Some Q.one));
  check "one-sided" true (b "0 <= y" = itv (Some Q.zero) None);
  check "negation flips" true (b "~(y < 0)" = itv (Some Q.zero) None);
  check "contradiction" true (b "y < 0 /\\ 1 < y" = Range.Empty);
  check "disjunction joins" true
    (b "(0 <= y /\\ y <= 1) \\/ (2 <= y /\\ y <= 3)"
    = itv (Some Q.zero) (Some (q 3)));
  check "coefficient scaling" true (b "2 * y <= 6" = itv None (Some (q 3)));
  (* relation atoms bound through the database's bounding box *)
  let with_db, opaque = Range.bounds_of ~db yy (fof "U(y)") in
  check "relation bounded" true (with_db = itv (Some Q.zero) (Some (q 3)));
  check "not opaque with db" false opaque;
  let no_db, opaque' = Range.bounds_of yy (fof "U(y)") in
  check "opaque without db" true (no_db = Range.Itv (None, None) && opaque');
  check "truth fold" true (Range.truth (fof "1 < 2 /\\ ~(3 < 2)") = Some true)

(* Edge cases the certified rewriter leans on: enclosures stay outward
   (unbounded sides survive meets, joins never split), only a provable gap
   is Empty, and the verdicts are stable under rewriting. *)
let test_range_edges () =
  let itv a b = Range.Itv (a, b) in
  let b f = fst (Range.bounds_of yy (fof f)) in
  let q13 = Q.of_ints 1 3 and q17 = Q.of_ints 1 7 in
  (* meets with an unbounded side keep the exact rational endpoints and
     leave the unbounded side unbounded *)
  check "two one-sided meet" true
    (b "y <= 1/3 /\\ 1/7 <= y" = itv (Some q17) (Some q13));
  check "same-side meet tightens" true
    (b "y <= 1/3 /\\ y <= 1/2" = itv None (Some q13));
  check "unbounded side survives" true
    (b "1/7 <= y /\\ 1/3 <= y" = itv (Some q13) None);
  (* a join across a gap widens outward to one enclosure, never a union *)
  check "join of opposite rays is full" true (b "y <= 1/3 \\/ 2 <= y" = itv None None);
  (* bounds are closed over-approximations: a strict contradiction meeting
     at a single point is a point enclosure, not Empty — so Empty is always
     a sound unsat certificate for the rewriter *)
  check "point meet stays sound" true
    (b "y < 1 /\\ 1 <= y" = itv (Some Q.one) (Some Q.one));
  check "gap meet is empty" true (b "y < 1 /\\ 2 <= y" = Range.Empty);
  (* verdict stability: constant-folding verdicts agree with the rewriter *)
  let dead = fof "x < 1 /\\ 1 < 0" in
  check "dead verdict" true (Range.truth dead = Some false);
  let dead' = Rewrite.formula dead in
  check "dead verdict stable" true
    (Plan.equal_formula dead' Ast.False && Range.truth dead' = Some false);
  (* the empty-sum diagnostic and the rw-empty-sum rule agree *)
  let empty_guard =
    tof "SUM { w | w < 0 /\\ 1 < w | END(y . U(y)) } (x . x = w)"
  in
  check "empty-sum diagnosed" true
    (has_code "empty-sum" (Range.check_term ~db empty_guard));
  check "empty-sum rewritten away" true
    (Plan.equal_formula
       (Rewrite.formula ~db (Ast.Cmp (Ast.Ceq, empty_guard, Ast.Const Q.zero)))
       Ast.True);
  (* canonical atoms leave the enclosure unchanged *)
  List.iter
    (fun s ->
      let f = fof s in
      check ("bounds stable: " ^ s) true
        (fst (Range.bounds_of yy f)
        = fst (Range.bounds_of yy (Rewrite.formula f))))
    [
      "0 <= y /\\ y <= 1"; "~(y < 0)"; "2 * y <= 6";
      "(0 <= y /\\ y <= 1) \\/ (2 <= y /\\ y <= 3)";
    ]

let test_range_diags () =
  (* unbounded END: hard warning when the atoms are pure arithmetic *)
  let t = tof "SUM { w | U(w) | END(y . 0 <= y) } (x . x = w)" in
  check "unbounded flagged" true
    (has_code "unbounded-guard" (Range.check_term ~db t));
  (* bounded through the db: clean *)
  let ok = tof "SUM { w | U(w) | END(y . U(y)) } (x . x = w)" in
  check "bounded clean" false
    (has_code "unbounded-guard" (Range.check_term ~db ok));
  (* without the db the same query is only possibly-unbounded (info) *)
  let ds = Range.check_term ok in
  check "possibly unbounded info" true (has_code "possibly-unbounded" ds);
  check "no hard warning" false (has_code "unbounded-guard" ds);
  (* unsatisfiable END *)
  let empty_end = tof "SUM { w | U(w) | END(y . y < 0 /\\ 1 < y) } (x . x = w)" in
  check "empty END" true (has_code "empty-end" (Range.check_term ~db empty_end));
  (* trivially false guard *)
  let empty_guard = tof "SUM { w | 1 < 0 | END(y . U(y)) } (x . x = w)" in
  check "empty sum" true
    (has_code "empty-sum" (Range.check_term ~db empty_guard));
  (* interval-empty guard (not a constant fold) *)
  let empty_guard2 =
    tof "SUM { w | w < 0 /\\ 1 < w | END(y . U(y)) } (x . x = w)"
  in
  check "interval empty sum" true
    (has_code "empty-sum" (Range.check_term ~db empty_guard2));
  (* dead branches and trivial atoms *)
  let dead = fof "x < 1 /\\ 1 < 0" in
  let ds = Range.check_formula dead in
  check "trivial atom" true (has_code "trivial-atom" ds);
  check "dead branch" true (has_code "dead-branch" ds);
  check "clean formula" true (Range.check_formula ~db (fof "U(x) /\\ x < 1") = [])

(* ------------------------------------------------------------------ *)
(* Cost                                                                *)
(* ------------------------------------------------------------------ *)

let test_cost () =
  let small = Cost.estimate_formula (fof "x < 1 /\\ 0 < x") in
  check "small stays small" true (small.Cost.projected_qe_atoms < 10.);
  check "no blowup warning" false (has_code "qe-blowup" (Cost.check small));
  let blowup =
    Cost.estimate_formula
      (fof
         "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . (u < \
          x1 /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < v /\\ \
          0 <= x1 /\\ x5 <= 1)")
  in
  check "blowup projected" true (blowup.Cost.projected_qe_atoms > 1e6);
  check "blowup warned" true (has_code "qe-blowup" (Cost.check blowup));
  check "threshold respected" false
    (has_code "qe-blowup" (Cost.check ~threshold:1e300 blowup));
  (* summation grid *)
  let t = Cost.estimate_term ~endpoints:10 (tof "SUM { a, b, c | 0 <= a /\\ 0 <= b /\\ 0 <= c | END(y . U(y)) } (x . x = a)") in
  check_int "tuple width" 3 t.Cost.tuple_width;
  check "grid size" true (t.Cost.projected_sum_points = 1000.);
  check "km present iff free vars" true
    (t.Cost.km = None && blowup.Cost.km <> None)

(* ------------------------------------------------------------------ *)
(* Analyzer: seeded bad queries get distinct diagnostics               *)
(* ------------------------------------------------------------------ *)

let test_analyzer_seeded () =
  let codes r =
    List.map (fun d -> d.Diagnostic.code) r.Analyzer.diagnostics
  in
  (* 1. nondeterministic gamma: error *)
  let nondet =
    Analyzer.analyze_term ~db
      (tof "SUM { w | U(w) | END(y . U(y)) } (x . x = w \\/ x = w + 1)")
  in
  check "nondet is error" true (Analyzer.error_count nondet > 0);
  check "nondet code" true (List.mem "nondeterministic-gamma" (codes nondet));
  (* 2. unbounded END: warning, distinct code *)
  let unb =
    Analyzer.analyze_term ~db
      (tof "SUM { w | U(w) | END(y . 0 <= y) } (x . x = w)")
  in
  check "unbounded no errors" true (Analyzer.error_count unb = 0);
  check "unbounded code" true (List.mem "unbounded-guard" (codes unb));
  check "unbounded distinct" false
    (List.mem "nondeterministic-gamma" (codes unb));
  (* 3. Section 3 blowup: warning, distinct code *)
  let blow =
    Analyzer.analyze_formula ~db
      (fof
         "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . (u < \
          x1 /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < v /\\ \
          0 <= x1 /\\ x5 <= 1)")
  in
  check "blowup code" true (List.mem "qe-blowup" (codes blow));
  check "blowup distinct" false
    (List.mem "unbounded-guard" (codes blow)
    || List.mem "nondeterministic-gamma" (codes blow));
  (* exit-code policy *)
  check "nondet not ok" false (Analyzer.ok nondet);
  check "unbounded ok unless denied" true (Analyzer.ok unb);
  check "unbounded denied" false (Analyzer.ok ~deny_warnings:true unb);
  (* renderers don't raise and agree on counts *)
  let s = Format.asprintf "%a" (Analyzer.pp_result ~show_info:true) nondet in
  check "human output" true (String.length s > 0);
  let j = Analyzer.result_to_json nondet in
  check "json output" true (String.length j > 0 && j.[0] = '{')

(* ------------------------------------------------------------------ *)
(* Dispatch hint consumed by the exact engine, skipping the probe      *)
(* ------------------------------------------------------------------ *)

let test_dispatch_hint_no_probe () =
  (* FO+POLY-spelled but provably semi-linear: (x+1)^2 - x^2 <= 4 is 2x+1 <= 4 *)
  let f = fof "(x + 1) * (x + 1) - x * x <= 4 /\\ 0 <= x" in
  let r = Analyzer.analyze_formula f in
  check "statically exact" true (r.Analyzer.hint = Dispatch.Exact_semilinear);
  let db0 = Db.empty Schema.empty in
  let before = Eval.runtime_probes () in
  let v = Volume_exact.volume_of_query ~hint:r.Analyzer.hint db0 [| xx |] f in
  check "volume right" true (Q.equal v (Q.of_ints 3 2));
  check_int "hinted path skips the probe" before (Eval.runtime_probes ());
  (* without the hint the runtime probe runs *)
  let v' = Volume_exact.volume_of_query db0 [| xx |] f in
  check "same volume" true (Q.equal v v');
  check_int "probe counted" (before + 1) (Eval.runtime_probes ());
  (* a non-exact hint refuses the exact engine *)
  check "pointwise refused" true
    (match
       Volume_exact.volume_of_query ~hint:Dispatch.Pointwise_poly db0 [| xx |] f
     with
    | exception Volume_exact.Not_semilinear _ -> true
    | _ -> false)

let () =
  Alcotest.run "cqa_analysis"
    [
      ("diagnostic", [ Alcotest.test_case "basics" `Quick test_diagnostic ]);
      ( "scope",
        [ Alcotest.test_case "report" `Quick test_scope_report;
          Alcotest.test_case "diagnostics" `Quick test_scope_diags ] );
      ("fragment", [ Alcotest.test_case "classify" `Quick test_fragment ]);
      ( "range",
        [ Alcotest.test_case "bounds" `Quick test_range_bounds;
          Alcotest.test_case "edge cases" `Quick test_range_edges;
          Alcotest.test_case "diagnostics" `Quick test_range_diags ] );
      ("cost", [ Alcotest.test_case "projection" `Quick test_cost ]);
      ( "analyzer",
        [ Alcotest.test_case "seeded queries" `Quick test_analyzer_seeded;
          Alcotest.test_case "dispatch hint" `Quick test_dispatch_hint_no_probe ] );
    ]
