open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core
open Cqa_analysis
module T = Cqa_telemetry.Telemetry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let fof = Parser.formula_of_string
let db0 = Db.empty Schema.empty

(* the one-column semilinear relation U = [0,1] u [2,3] from test_analysis *)
let x0 = (Semilinear.default_vars 1).(0)

let u_set =
  let iv a b =
    [ Linconstr.ge (Linexpr.var x0) (Linexpr.const a);
      Linconstr.le (Linexpr.var x0) (Linexpr.const b) ]
  in
  Semilinear.make [| x0 |]
    [ iv Q.zero Q.one; iv (Q.of_int 2) (Q.of_int 3) ]

let schema = Schema.of_list [ ("U", 1) ]
let db = Db.of_list schema [ ("U", Db.Semilin u_set) ]
let xx = Var.of_string "x"
let norm s = Rewrite.formula (fof s)
let same a b = Plan.equal_formula (norm a) (norm b)

let fired_codes ?db f =
  let r = Rewrite.rewrite ?db ~trace:true f in
  List.map (fun s -> s.Rewrite.rule) r.Rewrite.steps

let has_rule code codes = List.mem code codes

(* term fixtures for the summation rules *)
let ww = Var.of_string "w"
let zz = Var.of_string "z"

let sum_term guard =
  Ast.sum ~gamma_var:xx
    ~gamma:Ast.(TVar xx =! TVar ww)
    ~w:[ ww ] ~guard ~end_y:(Var.of_string "y")
    ~end_body:(fof "0 <= y /\\ y <= 1")

(* ------------------------------------------------------------------ *)
(* Atom canonicalization: spellings meet in one normal form            *)
(* ------------------------------------------------------------------ *)

let test_canon () =
  check "commuted conjuncts" true (same "0 <= x /\\ x <= 1" "x <= 1 /\\ 0 <= x");
  check "scaled coefficients" true (same "0 <= 2 * x /\\ x <= 1" "0 <= x /\\ x <= 1");
  check "collected terms" true (same "x + x <= 2" "x <= 1");
  check "additive zero" true (same "x + 0 <= 1" "x <= 1");
  check "multiplicative one" true (same "1 * x <= 1" "x <= 1");
  check "canon traced" true
    (has_rule "rw-atom-canon" (fired_codes (fof "x + x <= 2")));
  (* canonicalization is idempotent: a second run is the identity *)
  let f = norm "x + x <= 2 /\\ 0 <= 3 * x" in
  check "idempotent normal form" true (Plan.equal_formula f (Rewrite.formula f));
  let r = Rewrite.rewrite f in
  check_int "no rules refire" 0 r.Rewrite.fired

(* ------------------------------------------------------------------ *)
(* Constant folding and connective units                               *)
(* ------------------------------------------------------------------ *)

let test_fold () =
  check "true conjunct dropped" true (same "1 < 2 /\\ 0 <= x" "0 <= x");
  check "false conjunct collapses" true
    (Plan.equal_formula (norm "1 < 0 /\\ 0 <= x") Ast.False);
  check "false disjunct dropped" true (same "(1 < 0) \\/ (0 <= x)" "0 <= x");
  check "true disjunct collapses" true
    (Plan.equal_formula (norm "1 < 2 \\/ x < 5") Ast.True);
  check "not true" true (Plan.equal_formula (norm "~(1 < 2)") Ast.False);
  let codes = fired_codes (fof "1 < 2 /\\ 0 <= x") in
  check "const-fold traced" true (has_rule "rw-const-fold" codes);
  check "and-unit traced" true (has_rule "rw-and-unit" codes)

(* ------------------------------------------------------------------ *)
(* Interval refutation: unsat conjunctions and dead branches           *)
(* ------------------------------------------------------------------ *)

let test_unsat_dead () =
  check "interval-unsat conjunction" true
    (Plan.equal_formula (norm "x < 0 /\\ 1 < x /\\ y <= 5") Ast.False);
  check "unsat-conj traced" true
    (has_rule "rw-unsat-conj" (fired_codes (fof "x < 0 /\\ 1 < x")));
  (* a negated tautology is only refutable through the interval pass *)
  let dead = "(x < 1) \\/ ~(y <= 5 \\/ 4 <= y)" in
  check "dead branch dropped" true (same dead "x < 1");
  check "dead-branch traced" true (has_rule "rw-dead-branch" (fired_codes (fof dead)));
  (* the database's bounding box feeds the refutation: U <= [0,3] *)
  check "db-backed unsat" true
    (Plan.equal_formula (Rewrite.formula ~db (fof "U(x) /\\ 5 < x")) Ast.False);
  (* without the box the same conjunction must survive *)
  check "opaque without db" false
    (Plan.equal_formula (norm "U(x) /\\ 5 < x") Ast.False)

(* ------------------------------------------------------------------ *)
(* Negation, idempotence, absorption                                   *)
(* ------------------------------------------------------------------ *)

let test_bool () =
  check "double negation" true (same "~(~(x < 1))" "x < 1");
  check "negated atom complements" true (same "~(x <= 1)" "1 < x");
  check "negated strict complements" true (same "~(x < 1)" "1 <= x");
  check "equality negation kept" true
    (match norm "~(x = 1)" with Ast.Not _ -> true | _ -> false);
  check "and idempotent" true (same "x < 1 /\\ x < 1" "x < 1");
  check "or idempotent" true (same "x < 1 \\/ x < 1" "x < 1");
  check "and absorption" true (same "x < 1 /\\ (x < 1 \\/ x < 5)" "x < 1");
  check "or absorption" true (same "x < 1 \\/ (x < 1 /\\ x < 5)" "x < 1");
  check "neg-atom traced" true (has_rule "rw-neg-atom" (fired_codes (fof "~(x <= 1)")));
  (* a doubly-negated atom is eliminated by two complement steps; rw-not
     itself needs a non-atomic operand *)
  check "not traced" true
    (has_rule "rw-not" (fired_codes (fof "~(~(x < 1 /\\ x < 5))")))

(* ------------------------------------------------------------------ *)
(* Quantifier rules                                                    *)
(* ------------------------------------------------------------------ *)

let test_quant () =
  check "unused binder dropped" true (same "exists z . 0 <= x" "0 <= x");
  check "unused forall dropped" true (same "forall z . 0 <= x" "0 <= x");
  let r = Rewrite.rewrite ~trace:true (fof "exists z . (0 <= x /\\ x < z)") in
  check "shrink traced" true
    (has_rule "rw-quant-shrink" (List.map (fun s -> s.Rewrite.rule) r.Rewrite.steps));
  check "quantifier pushed inside" true
    (match r.Rewrite.rewritten with
    | Ast.And (Ast.Cmp _, Ast.Exists _) -> true
    | _ -> false);
  (* forall over a disjunction shrinks the same way *)
  check "forall shrinks over or" true
    (match Rewrite.formula (fof "forall z . (x < 1 \\/ z < x)") with
    | Ast.Or (Ast.Cmp _, Ast.Forall _) -> true
    | _ -> false);
  (* the shrunk form is stable *)
  let f = Rewrite.formula (fof "exists z . (0 <= x /\\ x < z)") in
  check "shrink stable" true (Plan.equal_formula f (Rewrite.formula f))

(* ------------------------------------------------------------------ *)
(* Summation rules                                                     *)
(* ------------------------------------------------------------------ *)

let test_sum () =
  (* trivially-false guard: the whole summation folds to 0 *)
  let f = Ast.(Cmp (Ceq, sum_term (fof "1 < 0"), int 0)) in
  check "const-empty guard" true (Plan.equal_formula (Rewrite.formula f) Ast.True);
  (* interval-empty guard *)
  let f2 = Ast.(Cmp (Ceq, sum_term (fof "w < 0 /\\ 1 < w"), int 0)) in
  check "interval-empty guard" true (Plan.equal_formula (Rewrite.formula f2) Ast.True);
  (* empty END body *)
  let empty_end =
    Ast.sum ~gamma_var:xx
      ~gamma:Ast.(TVar xx =! TVar ww)
      ~w:[ ww ]
      ~guard:(fof "0 <= w /\\ w <= 1")
      ~end_y:(Var.of_string "y")
      ~end_body:(fof "y < 0 /\\ 1 < y")
  in
  let f3 = Ast.(Cmp (Ceq, empty_end, int 0)) in
  check "empty END folds" true (Plan.equal_formula (Rewrite.formula f3) Ast.True);
  check "empty-sum traced" true (has_rule "rw-empty-sum" (fired_codes f));
  (* guard hoist: the w-independent conjunct moves ahead of the dependent one *)
  let hoist = Ast.(Cmp (Cle, sum_term (fof "w <= 1 /\\ 0 <= z"), TVar zz)) in
  let r = Rewrite.rewrite ~trace:true hoist in
  check "hoist traced" true
    (has_rule "rw-guard-hoist" (List.map (fun s -> s.Rewrite.rule) r.Rewrite.steps));
  (match r.Rewrite.rewritten with
  | Ast.Cmp (_, Ast.Sum s, _) -> (
      match s.Ast.guard with
      | Ast.And (g1, _) ->
          check "independent conjunct first" false
            (Var.Set.mem ww (Ast.free_vars g1))
      | _ -> Alcotest.fail "guard no longer a conjunction")
  | _ -> Alcotest.fail "summation gone");
  (* the hoisted form is stable *)
  let h = Rewrite.formula hoist in
  check "hoist stable" true (Plan.equal_formula h (Rewrite.formula h))

(* ------------------------------------------------------------------ *)
(* Equiv: the decision procedure behind verification                   *)
(* ------------------------------------------------------------------ *)

let is_equal = function Equiv.Equal -> true | _ -> false
let is_distinct = function Equiv.Distinct _ -> true | _ -> false
let is_unknown = function Equiv.Unknown _ -> true | _ -> false

let test_equiv () =
  check "commuted equal" true
    (is_equal (Equiv.check (fof "0 <= x /\\ x <= 1") (fof "x <= 1 /\\ 0 <= x")));
  check "scaled equal" true (is_equal (Equiv.check (fof "0 <= 2 * x") (fof "0 <= x")));
  check "quantified equal" true
    (is_equal (Equiv.check (fof "exists z . (x < z /\\ z < 1)") (fof "x < 1")));
  (* distinct with a checkable witness: x <= 1 vs x < 1 differ exactly at 1 *)
  (match Equiv.check (fof "x <= 1") (fof "x < 1") with
  | Equiv.Distinct w ->
      let holds f = Range.truth (Ast.subst w f) = Some true in
      check "witness separates" true (holds (fof "x <= 1") <> holds (fof "x < 1"));
      check "witness is the boundary" true (Q.equal (Var.Map.find xx w) Q.one)
  | v -> Alcotest.failf "expected distinct, got %s" (Equiv.verdict_to_string v));
  (* schema atoms inline through the database *)
  check "relation equal its definition" true
    (is_equal
       (Equiv.check ~db (fof "U(x)")
          (fof "(0 <= x /\\ x <= 1) \\/ (2 <= x /\\ x <= 3)")));
  check "relation distinct from a piece" true
    (is_distinct (Equiv.check ~db (fof "U(x)") (fof "0 <= x /\\ x <= 1")));
  (* outside the fragment: never guesses *)
  check "nonlinear unknown" true
    (is_unknown (Equiv.check (fof "x * x <= 1") (fof "0 <= x")));
  check "unknown relation unknown" true
    (is_unknown (Equiv.check (fof "R(x)") (fof "0 <= x")));
  (* past the cost cap *)
  let blowup =
    fof
      "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . (u < x1 \
       /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < v /\\ 0 <= \
       x1 /\\ x5 <= 1)"
  in
  check "budget capped" true (is_unknown (Equiv.check ~budget:1e3 blowup blowup));
  check "equal collapses to bool" true (Equiv.equal (fof "x < 1") (fof "x < 1"));
  check "distinct is not equal" false (Equiv.equal (fof "x <= 1") (fof "x < 1"));
  check "verdict strings" true
    (Equiv.verdict_to_string Equiv.Equal = "equal"
    && Equiv.verdict_to_string (Equiv.Unknown "r") = "unknown")

(* ------------------------------------------------------------------ *)
(* Verification mode: every applied rewrite survives Equiv             *)
(* ------------------------------------------------------------------ *)

let battery () =
  [
    fof "x + x <= 2";
    fof "1 < 2 /\\ 0 <= x";
    fof "x < 1 /\\ x < 1";
    fof "x < 1 /\\ (x < 1 \\/ x < 5)";
    fof "x <= 1 /\\ 0 <= x";
    fof "0 <= x /\\ x <= 1";
    fof "y < 0 /\\ 1 < y";
    fof "(x < 1) \\/ ~(y <= 5 \\/ 4 <= y)";
    fof "1 < 0 \\/ x < 1";
    fof "~(~(x < 1 /\\ x < 5))";
    fof "~(x <= 1)";
    fof "exists z . x < 1";
    fof "exists z . (x < 1 /\\ x < z)";
    fof "x < 1 \\/ (x < 1 /\\ x < 5)";
    Ast.(Cmp (Ceq, sum_term (fof "1 < 0"), int 0));
    Ast.(Cmp (Cle, sum_term (fof "w <= 1 /\\ 0 <= z"), TVar zz));
  ]

let test_verify () =
  List.iter
    (fun f ->
      let r = Rewrite.rewrite ~verify:true f in
      check "no refutation" true (r.Rewrite.refuted = []);
      check "atoms never grow" true (r.Rewrite.atoms_after <= r.Rewrite.atoms_before))
    (battery ());
  (* with the database in the loop, too *)
  List.iter
    (fun s ->
      let r = Rewrite.rewrite ~db ~verify:true (fof s) in
      check "no refutation with db" true (r.Rewrite.refuted = []))
    [ "U(x) /\\ 5 < x"; "U(x) /\\ x <= 1"; "(U(x) /\\ 5 < x) \\/ 0 <= x" ]

(* ------------------------------------------------------------------ *)
(* Golden: the rule-code inventory is pinned, and the battery covers it *)
(* ------------------------------------------------------------------ *)

let test_golden_codes () =
  Alcotest.(check (list string))
    "rule codes pinned"
    [
      "rw-absorption"; "rw-and-unit"; "rw-atom-canon"; "rw-comm-sort";
      "rw-const-fold"; "rw-dead-branch"; "rw-empty-sum"; "rw-guard-hoist";
      "rw-idempotent"; "rw-neg-atom"; "rw-not"; "rw-or-unit";
      "rw-quant-shrink"; "rw-quant-unused"; "rw-unsat-conj";
    ]
    Rewrite.rule_codes;
  let exercised =
    List.concat_map (fun f -> fired_codes f) (battery ())
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun c -> check (Printf.sprintf "only known codes (%s)" c) true
        (List.mem c Rewrite.rule_codes))
    exercised;
  Alcotest.(check (list string)) "every rule exercised" Rewrite.rule_codes exercised;
  (* diagnostics render one info per step, no errors when sound *)
  let r = Rewrite.rewrite ~trace:true ~verify:true (fof "1 < 2 /\\ 0 <= x") in
  let ds = Rewrite.diagnostics r in
  check_int "one diagnostic per step" (List.length r.Rewrite.steps) (List.length ds);
  check "all info" true
    (List.for_all (fun d -> d.Diagnostic.severity = Diagnostic.Info) ds)

(* ------------------------------------------------------------------ *)
(* The plan cache keyed on the rewritten normal form                   *)
(* ------------------------------------------------------------------ *)

let test_plan_sharing () =
  Plan.clear_cache ();
  T.enable ();
  T.reset ();
  let before = T.snapshot () in
  let p1 = Planner.compile ~db:db0 (fof "0 <= x /\\ x <= 1") in
  (* three syntactically distinct spellings of the same set *)
  let p2 = Planner.compile ~db:db0 (fof "x <= 1 /\\ 0 <= 2 * x") in
  let p3 = Planner.compile ~db:db0 (fof "0 <= x /\\ x <= 1 /\\ 1 < 2") in
  let d = T.diff ~before ~after:(T.snapshot ()) in
  T.disable ();
  check_int "second spelling shares the plan" (Plan.id p1) (Plan.id p2);
  check_int "third spelling shares the plan" (Plan.id p1) (Plan.id p3);
  check "hits tallied on the plan" true (Plan.hit_count p1 >= 2);
  check "plan.cache.hit counted" true
    (match List.assoc_opt "plan.cache.hit" d.T.counters with
    | Some n -> n >= 2
    | None -> false);
  check "rewrite traffic counted" true
    (match List.assoc_opt "plan.rewrite.fired" d.T.counters with
    | Some n -> n > 0
    | None -> false);
  (* a genuinely different query gets its own plan *)
  let q = Planner.compile ~db:db0 (fof "0 <= x /\\ x <= 2") in
  check "distinct set distinct plan" true (Plan.id q <> Plan.id p1)

(* ------------------------------------------------------------------ *)
(* Dispatch decided on the post-rewrite cost profile                   *)
(* ------------------------------------------------------------------ *)

let test_dispatch_post_rewrite () =
  Plan.clear_cache ();
  (* 8 atoms under 5 quantifiers: projected QE cost far past the budget —
     but 6 atoms are constant padding and every binder is unused *)
  let padded =
    fof
      "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . (0 <= 1 \
       /\\ 1 <= 2 /\\ 2 <= 3 /\\ 3 <= 4 /\\ 4 <= 5 /\\ 5 <= 6 /\\ 0 <= y1 \
       /\\ y1 <= 1)"
  in
  let raw = Plan.compile ~budget:1e6 padded in
  check "over budget as spelled" true
    (match Plan.decision raw with
    | Dispatch.Fallback_approx _ -> true
    | Dispatch.Run_exact -> false);
  let planned = Planner.compile ~db:db0 ~budget:1e6 padded in
  check "exact after rewriting" true
    (match Plan.decision planned with
    | Dispatch.Run_exact -> true
    | Dispatch.Fallback_approx _ -> false);
  check "projected cost collapsed" true (Plan.projected planned < 10.);
  (* the plan still answers for the original spelling's geometry *)
  check "coords preserved" true
    (Array.to_list (Plan.coords planned) = [ Var.of_string "y1" ]);
  let v = Exec.volume planned db0 in
  check "volume right" true (Q.equal v Q.one)

let () =
  Alcotest.run "cqa_rewrite"
    [
      ( "rules",
        [
          Alcotest.test_case "atom canonicalization" `Quick test_canon;
          Alcotest.test_case "constant folding" `Quick test_fold;
          Alcotest.test_case "interval refutation" `Quick test_unsat_dead;
          Alcotest.test_case "boolean laws" `Quick test_bool;
          Alcotest.test_case "quantifiers" `Quick test_quant;
          Alcotest.test_case "summations" `Quick test_sum;
        ] );
      ( "equiv",
        [ Alcotest.test_case "decision procedure" `Quick test_equiv ] );
      ( "certified",
        [
          Alcotest.test_case "verify mode" `Quick test_verify;
          Alcotest.test_case "golden codes" `Quick test_golden_codes;
        ] );
      ( "planner",
        [
          Alcotest.test_case "spellings share a plan" `Quick test_plan_sharing;
          Alcotest.test_case "post-rewrite dispatch" `Quick test_dispatch_post_rewrite;
        ] );
    ]
