(* Metamorphic fuzz harness for the certified rewriter and the volume
   engines: random FO + LIN queries where (1) the rewritten form is
   semantically equivalent to the original under the Equiv decision
   procedure, (2) verification mode never collects a refutation, (3) the
   canonical form is a fixpoint and invariant under atom scaling, and
   (4) the exact engines (sweep, inclusion-exclusion, guarded dispatch)
   agree exactly on box-bounded queries — original and rewritten alike —
   with the Theorem 4 sampler within its epsilon.

   Iteration count: CQA_FUZZ_COUNT (default 60, so `dune runtest` stays
   fast; `make fuzz` raises it).  QCheck2 shrinking applies throughout. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_core
open Cqa_analysis

let count =
  match Sys.getenv_opt "CQA_FUZZ_COUNT" with
  | Some s -> ( try max 10 (int_of_string s) with Failure _ -> 60)
  | None -> 60

let db0 = Db.empty Schema.empty
let xx = Var.of_string "x"
let yy = Var.of_string "y"
let zz = Var.of_string "z"

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

open QCheck2

(* small rational: n/d with |n| <= 4, d in {1,2,3} *)
let gen_const =
  Gen.map2
    (fun n d -> Q.of_ints n d)
    (Gen.int_range (-4) 4) (Gen.oneofl [ 1; 2; 3 ])

let gen_cmp = Gen.frequencyl [ (4, Ast.Cle); (4, Ast.Clt); (1, Ast.Ceq) ]

(* linear atom  c1*v1 + c2*v2 OP c  over the given variable pool *)
let gen_atom vars =
  let open Gen in
  let* v1 = oneofl vars in
  let* v2 = oneofl vars in
  let* c1 = int_range (-3) 3 in
  let* c2 = int_range (-3) 3 in
  let* c = gen_const in
  let* op = gen_cmp in
  return
    (Ast.Cmp
       ( op,
         Ast.Add
           ( Ast.Mul (Ast.Const (Q.of_int c1), Ast.TVar v1),
             Ast.Mul (Ast.Const (Q.of_int c2), Ast.TVar v2) ),
         Ast.Const c ))

(* quantifier-free random formula over the pool *)
let gen_qf vars =
  let open Gen in
  sized_size (int_range 1 6) @@ fix (fun self n ->
      if n <= 1 then gen_atom vars
      else
        frequency
          [
            (2, gen_atom vars);
            (3, map2 (fun a b -> Ast.And (a, b)) (self (n / 2)) (self (n / 2)));
            (3, map2 (fun a b -> Ast.Or (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map (fun a -> Ast.Not a) (self (n - 1)));
          ])

(* possibly-quantified formula: a z-binder over a qf body now and then *)
let gen_formula =
  let open Gen in
  let* body = gen_qf [ xx; yy; zz ] in
  frequencyl
    [ (3, body); (2, Ast.Exists (zz, body)); (1, Ast.Forall (zz, body)) ]

let print_formula f = Format.asprintf "%a" Ast.pp f

(* box-bounded query over (x, y): the exact engines always terminate and
   the clamped guarded volume coincides with the plain one *)
let box =
  Ast.conj
    [
      Parser.formula_of_string "0 <= x /\\ x <= 1";
      Parser.formula_of_string "0 <= y /\\ y <= 1";
    ]

let gen_boxed = Gen.map (fun f -> Ast.And (box, f)) (gen_qf [ xx; yy ])

(* scale every atom  t OP c  to  k*t OP k*c :  a pure respelling *)
let rec scale_formula k (f : Ast.formula) =
  match f with
  | Ast.Cmp (op, a, b) ->
      Ast.Cmp (op, Ast.Mul (Ast.Const k, a), Ast.Mul (Ast.Const k, b))
  | Ast.Not g -> Ast.Not (scale_formula k g)
  | Ast.And (g, h) -> Ast.And (scale_formula k g, scale_formula k h)
  | Ast.Or (g, h) -> Ast.Or (scale_formula k g, scale_formula k h)
  | Ast.Exists (v, g) -> Ast.Exists (v, scale_formula k g)
  | Ast.Forall (v, g) -> Ast.Forall (v, scale_formula k g)
  | Ast.True | Ast.False | Ast.Rel _ -> f

(* ------------------------------------------------------------------ *)
(* Rewriter properties                                                 *)
(* ------------------------------------------------------------------ *)

(* the central metamorphic property: rewriting is semantics-preserving,
   and the decision procedure can never refute it *)
let prop_rewrite_equivalent =
  Test.make ~name:"rewritten formula equivalent under Equiv" ~count
    ~print:print_formula gen_formula (fun f ->
      match Equiv.check f (Rewrite.formula f) with
      | Equiv.Distinct w ->
          Test.fail_reportf "refuted at %s"
            (Var.Map.bindings w
            |> List.map (fun (v, q) -> Var.name v ^ "=" ^ Q.to_string q)
            |> String.concat " ")
      | Equiv.Equal | Equiv.Unknown _ -> true)

let prop_verify_mode =
  Test.make ~name:"verify mode collects no refutation" ~count
    ~print:print_formula gen_formula (fun f ->
      (Rewrite.rewrite ~verify:true f).Rewrite.refuted = [])

let prop_fixpoint =
  Test.make ~name:"normal form is a fixpoint and never grows" ~count
    ~print:print_formula gen_formula (fun f ->
      let r = Rewrite.rewrite f in
      let g = r.Rewrite.rewritten in
      Plan.equal_formula g (Rewrite.formula g)
      && r.Rewrite.atoms_after <= r.Rewrite.atoms_before)

let prop_scale_invariant =
  Test.make ~name:"canonical form invariant under atom scaling" ~count
    ~print:print_formula gen_formula (fun f ->
      Plan.equal_formula
        (Rewrite.formula f)
        (Rewrite.formula (scale_formula (Q.of_int 2) f))
      && Plan.equal_formula
           (Rewrite.formula f)
           (Rewrite.formula (scale_formula (Q.of_ints 1 3) f)))

(* ------------------------------------------------------------------ *)
(* Volume agreement on box-bounded queries                             *)
(* ------------------------------------------------------------------ *)

let coords = [| xx; yy |]

let prop_volume_agreement =
  Test.make ~name:"exact volumes agree: original, rewritten, both engines"
    ~count ~print:print_formula gen_boxed (fun f ->
      let v = Volume_exact.volume_of_query db0 coords f in
      let v' = Volume_exact.volume_of_query db0 coords (Rewrite.formula f) in
      if not (Q.equal v v') then
        Test.fail_reportf "rewrite changed the volume: %s vs %s"
          (Q.to_string v) (Q.to_string v')
      else
        let s = Eval.eval_set db0 coords f in
        let sweep = Volume_exact.volume_sweep s in
        let ie = Volume_exact.volume_incl_excl s in
        if not (Q.equal sweep ie) then
          Test.fail_reportf "sweep %s <> incl-excl %s" (Q.to_string sweep)
            (Q.to_string ie)
        else Q.equal v sweep)

let prop_guarded_agreement =
  Test.make ~name:"guarded dispatch exact path matches" ~count
    ~print:print_formula gen_boxed (fun f ->
      let v = Volume_exact.volume_of_query db0 coords f in
      let g = Volume_exact.volume_guarded db0 coords f in
      match g.Volume_exact.engine with
      | Volume_exact.Exact_engine -> Q.equal g.Volume_exact.value v
      | Volume_exact.Approx_engine _ -> true (* only past the budget *))

(* ------------------------------------------------------------------ *)
(* Incremental maintenance under random update sequences               *)
(* ------------------------------------------------------------------ *)

(* random ordered rational interval within [-1, 2] *)
let gen_interval =
  Gen.map2
    (fun a b -> if Q.leq a b then (a, b) else (b, a))
    gen_const gen_const

(* one update: insert or remove a random box region into R *)
let gen_update =
  let open Gen in
  let* inserted = bool in
  let* ix = gen_interval in
  let* iy = gen_interval in
  return (inserted, Semilinear.box [| ix; iy |])

let gen_update_seq = Gen.list_size (Gen.int_range 1 5) gen_update

let update_schema = Schema.of_list [ ("R", 2) ]

let print_updates us =
  us
  |> List.map (fun (ins, r) ->
         Format.asprintf "%s %a" (if ins then "insert" else "remove")
           Semilinear.pp r)
  |> String.concat "; "

(* the tentpole invariant: after every prefix of a random insert/remove
   sequence, the incrementally maintained answer is byte-identical to a
   cold recompute on the updated database *)
let prop_incremental_matches_recompute =
  Test.make ~name:"incremental update answers = cold recompute" ~count
    ~print:print_updates gen_update_seq (fun updates ->
      let f = Ast.Rel ("R", [ xx; yy ]) in
      let db = Db.empty update_schema in
      let p = Planner.compile ~db ~coords f in
      List.for_all
        (fun (inserted, r) ->
          let u = if inserted then Db.Insert ("R", r) else Db.Remove ("R", r) in
          ignore (Db.apply_update db u);
          let inc = Exec.volume_clamped p db in
          let cold = Volume_exact.volume_clamped (Eval.eval_set db coords f) in
          if Q.equal inc cold then true
          else
            Test.fail_reportf "at version %d: incremental %s <> cold %s"
              (Db.version db) (Q.to_string inc) (Q.to_string cold))
        updates)

let prop_sampler_within_eps =
  (* the sampler is probabilistic: eps 0.1 holds with probability
     1 - delta per query, so the gate uses a 3x slack — failures at that
     distance indicate a broken estimator, not sampling noise *)
  Test.make ~name:"sampler estimate within tolerance" ~count:(max 10 (count / 3))
    ~print:print_formula gen_boxed (fun f ->
      let v = Volume_exact.volume_of_query db0 coords f in
      let est, n =
        Volume_exact.sampler_estimate ~eps:0.1 ~delta:0.05 ~seed:7 db0 coords f
      in
      n > 0 && Float.abs (Q.to_float est -. Q.to_float v) <= 0.3)

(* ------------------------------------------------------------------ *)
(* Float-filter soundness against the exact oracle                     *)
(* ------------------------------------------------------------------ *)

(* ulp-hostile rationals: thirds / sevenths / elevenths (scaled to
   primitive integer rows by [Linconstr.make]), plus magnitudes around
   2^53 + 1 where float rounding actually bites *)
let gen_hostile =
  Gen.frequency
    [
      (4, gen_const);
      ( 2,
        Gen.map2
          (fun n d -> Q.of_ints n d)
          (Gen.int_range (-40) 40)
          (Gen.oneofl [ 3; 7; 11 ]) );
      ( 1,
        Gen.map
          (fun n -> Q.mul (Q.of_int n) (Q.of_string "9007199254740993"))
          (Gen.int_range (-2) 2) );
    ]

let gen_kernel_atom =
  let open Gen in
  let* c1 = gen_hostile in
  let* c2 = gen_hostile in
  let* c3 = gen_hostile in
  let* c = gen_hostile in
  let* op = oneofl [ Linconstr.Le; Linconstr.Lt; Linconstr.Eq ] in
  return (Linconstr.make (Linexpr.of_list c [ (c1, xx); (c2, yy); (c3, zz) ]) op)

let gen_kernel_conj = Gen.list_size (Gen.int_range 1 7) gen_kernel_atom

let print_conj conj =
  conj |> List.map (Format.asprintf "%a" Linconstr.pp) |> String.concat " /\\ "

(* the kernel's contract: a sure verdict is certified; Unknown is always
   allowed, a wrong sure answer is fatal *)
let prop_filter_sound =
  Test.make ~name:"float filter never contradicts exact FM" ~count:(2 * count)
    ~print:print_conj gen_kernel_conj (fun conj ->
      match Flatrow.sat_conj conj with
      | Flatrow.Unknown -> true
      | Flatrow.Sat ->
          Fourier_motzkin.satisfiable_conj_fm conj
          || Test.fail_reportf "filter said Sat, exact FM says unsat"
      | Flatrow.Unsat ->
          (not (Fourier_motzkin.satisfiable_conj_fm conj))
          || Test.fail_reportf "filter said Unsat, exact FM says sat")

(* both exact decision procedures agree with each other on the same
   hostile inputs (the simplex path also exercises the ratio-test
   filter's exact fallback) *)
let prop_exact_oracles_agree =
  Test.make ~name:"FM and simplex decisions agree" ~count ~print:print_conj
    gen_kernel_conj (fun conj ->
      Bool.equal
        (Fourier_motzkin.satisfiable_conj_fm conj)
        (Fourier_motzkin.satisfiable_conj_simplex conj))

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "cqa_fuzz"
    [
      qsuite "rewrite"
        [
          prop_rewrite_equivalent; prop_verify_mode; prop_fixpoint;
          prop_scale_invariant;
        ];
      qsuite "volume"
        [ prop_volume_agreement; prop_guarded_agreement; prop_sampler_within_eps ];
      qsuite "updates" [ prop_incremental_matches_recompute ];
      qsuite "kernel" [ prop_filter_sound; prop_exact_oracles_agree ];
    ]
