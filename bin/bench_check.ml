(* Bench-regression gate: compare the key set of a fresh benchmark run
   (BENCH_smoke.json from `make bench-smoke`) against the committed
   baseline (BENCH.json).

   A key present in the baseline but absent from the fresh run means a
   benchmark was dropped or renamed without regenerating the baseline --
   exactly the silent drift this gate exists to catch -- and fails the
   check.  Keys only in the fresh run are new benchmarks; they warn until
   the baseline is regenerated (`make bench`), so adding a benchmark never
   blocks CI.  Values are not compared: smoke-run timings are noise by
   design (fraction-of-a-second quotas), so only the key sets are held
   stable.

   Usage: bench_check BASELINE CANDIDATE   (defaults: BENCH.json
   BENCH_smoke.json) *)

module J = Cqa_telemetry.Tjson

let keys_of path =
  match J.of_file path with
  | Error msg ->
      Printf.eprintf "bench_check: %s: %s\n" path msg;
      exit 2
  | Ok (J.Obj _ as doc) -> J.keys doc
  | Ok _ ->
      Printf.eprintf "bench_check: %s: expected a top-level JSON object\n" path;
      exit 2

module S = Set.Make (String)

let () =
  let baseline, candidate =
    match Sys.argv with
    | [| _ |] -> ("BENCH.json", "BENCH_smoke.json")
    | [| _; b; c |] -> (b, c)
    | _ ->
        Printf.eprintf "usage: %s [BASELINE CANDIDATE]\n" Sys.argv.(0);
        exit 2
  in
  let base = S.of_list (keys_of baseline)
  and cand = S.of_list (keys_of candidate) in
  let missing = S.diff base cand and added = S.diff cand base in
  S.iter
    (fun k ->
      Printf.printf "NEW      %s (not in %s; regenerate with `make bench`)\n" k
        baseline)
    added;
  S.iter (fun k -> Printf.printf "MISSING  %s (in %s, absent from %s)\n" k baseline candidate) missing;
  Printf.printf "bench_check: %d baseline keys, %d candidate keys, %d missing, %d new\n"
    (S.cardinal base) (S.cardinal cand) (S.cardinal missing) (S.cardinal added);
  if not (S.is_empty missing) then begin
    Printf.printf
      "bench_check: FAIL -- benchmarks dropped or renamed without \
       regenerating %s\n"
      baseline;
    exit 1
  end;
  Printf.printf "bench_check: OK\n"
