(* Bench-regression gate: compare a fresh benchmark run
   (BENCH_smoke.json from `make bench-smoke`) against the committed
   baseline (BENCH.json) — both the key *sets* and the per-key values.

   Key-set drift: a key present in the baseline but absent from the fresh
   run means a benchmark was dropped or renamed without regenerating the
   baseline — exactly the silent drift this gate exists to catch — and
   fails the check.  Keys only in the fresh run are new benchmarks; they
   warn until the baseline is regenerated (`make bench`), so adding a
   benchmark never blocks CI.

   Value regressions: for every key in both files whose baseline value is
   at or above the noise floor (--min-base, default 1000 — monotone
   nanosecond estimates below that are measurement noise, and so are the
   small ctr: counter keys), the candidate/baseline ratio is checked:
   above --warn (default 1.5) it warns, above --fail (default 3.0) it
   fails, so regressions like the PR-5 dom4 parallel cliffs (7.5x and 18x
   against their dom1 counterparts) can no longer land silently.  Keys
   named with --allow (or built into the allowlist below) only ever warn:
   they are known-noisy under the smoke run's fraction-of-a-second quota.

   --report PATH writes one line per compared key (key, baseline,
   candidate, ratio, verdict) for CI artifact upload.

   Usage: bench_check [BASELINE CANDIDATE] [--report PATH] [--warn X]
          [--fail X] [--min-base X] [--allow KEY]... *)

module J = Cqa_telemetry.Tjson

let values_of path =
  match J.of_file path with
  | Error msg ->
      Printf.eprintf "bench_check: %s: %s\n" path msg;
      exit 2
  | Ok (J.Obj fields as doc) ->
      ignore doc;
      List.filter_map
        (fun (k, v) -> Option.map (fun x -> (k, x)) (J.to_float v))
        fields
  | Ok _ ->
      Printf.eprintf "bench_check: %s: expected a top-level JSON object\n" path;
      exit 2

module S = Set.Make (String)

(* Slow end-to-end benches get few iterations under the smoke quota, so
   their estimates swing well beyond the ordinary noise band.  The
   pentagon program is cold-start-dominated there: its holds-memo never
   warms in the fraction-of-a-second window, so the smoke estimate sits
   ~40x above the amortized full-run number by construction. *)
(* An allowlist entry ending in '*' is a prefix glob: "serve_qps_*"
   matches every key starting "serve_qps_". *)
let builtin_allow =
  [ "sturm_isolate_deg5"; "lasserre_cube_dim4"; "e6_polygon_program_pentagon";
    (* wall-clock compile time mirrored into a counter: a real quantity,
       but inherently noisy across runs *)
    "ctr:plan:plan.compile_ns"; "ctr:rewrite:plan.compile_ns";
    (* socket round trips under the smoke quota: dominated by scheduler
       wake-ups, not engine work, so the estimates swing with machine
       load; the serve counter deltas include wall-clock compile_ns too *)
    "serve_qps_*"; "ctr:serve:*";
    (* whole update sessions (seed + warm sweep + four maintained
       queries): end-to-end shapes that get few iterations under the
       smoke quota, like the pentagon program above *)
    "update_*"; "ctr:update:plan.compile_ns";
    (* cold multi-millisecond kernel-ablation rows: few iterations under
       the smoke quota (the microsecond-scale kernel_fm_sat_* /
       kernel_qe_density_* rows stay gated) *)
    "kernel_qe_vertex_*"; "kernel_polygon_cold_*"; "kernel_sweep_3d_*" ]

let allow_matches allow k =
  S.exists
    (fun entry ->
      let n = String.length entry in
      if n > 0 && entry.[n - 1] = '*' then
        let pre = String.sub entry 0 (n - 1) in
        String.length k >= n - 1 && String.sub k 0 (n - 1) = pre
      else entry = k)
    allow

let () =
  let baseline = ref None
  and candidate = ref None
  and report = ref None
  and warn_ratio = ref 1.5
  and fail_ratio = ref 3.0
  and min_base = ref 1000.0
  and allow = ref (S.of_list builtin_allow) in
  let usage () =
    Printf.eprintf
      "usage: %s [BASELINE CANDIDATE] [--report PATH] [--warn X] [--fail X] \
       [--min-base X] [--allow KEY]...\n"
      Sys.argv.(0);
    exit 2
  in
  let float_arg s = match float_of_string_opt s with Some v -> v | None -> usage () in
  let rec parse = function
    | [] -> ()
    | "--report" :: path :: rest ->
        report := Some path;
        parse rest
    | "--warn" :: x :: rest ->
        warn_ratio := float_arg x;
        parse rest
    | "--fail" :: x :: rest ->
        fail_ratio := float_arg x;
        parse rest
    | "--min-base" :: x :: rest ->
        min_base := float_arg x;
        parse rest
    | "--allow" :: key :: rest ->
        allow := S.add key !allow;
        parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        (match (!baseline, !candidate) with
        | None, _ -> baseline := Some arg
        | Some _, None -> candidate := Some arg
        | Some _, Some _ -> usage ());
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline = Option.value !baseline ~default:"BENCH.json"
  and candidate = Option.value !candidate ~default:"BENCH_smoke.json" in
  let base_vals = values_of baseline and cand_vals = values_of candidate in
  let base = S.of_list (List.map fst base_vals)
  and cand = S.of_list (List.map fst cand_vals) in
  let missing = S.diff base cand and added = S.diff cand base in
  S.iter
    (fun k ->
      Printf.printf "NEW      %s (not in %s; regenerate with `make bench`)\n" k
        baseline)
    added;
  S.iter
    (fun k ->
      Printf.printf "MISSING  %s (in %s, absent from %s)\n" k baseline
        candidate)
    missing;
  (* per-key ratio gate over the shared keys *)
  let warned = ref 0 and failed = ref 0 and compared = ref 0 in
  let report_lines = ref [] in
  (* dropped keys also go into the report file so the CI summary can grep
     one artifact for every gate-failing line *)
  S.iter
    (fun k ->
      report_lines :=
        Printf.sprintf "%-45s %14s %14s %9s  MISSING" k "-" "-" "-"
        :: !report_lines)
    missing;
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k cand_vals with
      | None -> ()
      | Some c ->
          if b >= !min_base then begin
            incr compared;
            let ratio = c /. b in
            let verdict =
              if ratio > !fail_ratio && not (allow_matches !allow k) then begin
                incr failed;
                Printf.printf "FAIL     %s: %.1f -> %.1f (%.2fx > %.1fx)\n" k b
                  c ratio !fail_ratio;
                "FAIL"
              end
              else if ratio > !warn_ratio then begin
                incr warned;
                Printf.printf "WARN     %s: %.1f -> %.1f (%.2fx > %.1fx)%s\n" k
                  b c ratio !warn_ratio
                  (if allow_matches !allow k then " [allowlisted]" else "");
                "WARN"
              end
              else "ok"
            in
            report_lines :=
              Printf.sprintf "%-45s %14.1f %14.1f %8.2fx  %s" k b c ratio
                verdict
              :: !report_lines
          end
          else
            report_lines :=
              Printf.sprintf "%-45s %14.1f %14.1f        -  skipped (below \
                              min-base)" k b c
              :: !report_lines)
    base_vals;
  (match !report with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc
        "# bench_check ratio report: %s vs %s (warn > %.2fx, fail > %.2fx, \
         min-base %.1f)\n%-45s %14s %14s %9s  verdict\n"
        baseline candidate !warn_ratio !fail_ratio !min_base "key" "baseline"
        "candidate" "ratio";
      List.iter (fun l -> Printf.fprintf oc "%s\n" l) (List.rev !report_lines);
      close_out oc;
      Printf.printf "bench_check: wrote %s\n" path);
  Printf.printf
    "bench_check: %d baseline keys, %d candidate keys, %d missing, %d new; %d \
     compared, %d warned, %d failed\n"
    (S.cardinal base) (S.cardinal cand) (S.cardinal missing) (S.cardinal added)
    !compared !warned !failed;
  if not (S.is_empty missing) then begin
    Printf.printf
      "bench_check: FAIL -- benchmarks dropped or renamed without \
       regenerating %s\n"
      baseline;
    exit 1
  end;
  if !failed > 0 then begin
    Printf.printf
      "bench_check: FAIL -- performance regression beyond %.1fx (regenerate \
       %s with `make bench` only if the slowdown is intended)\n"
      !fail_ratio baseline;
    exit 1
  end;
  Printf.printf "bench_check: OK\n"
