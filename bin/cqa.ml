(* Command-line interface: experiment suite and small demos. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_vc
open Cqa_core
open Cqa_workload
open Cmdliner

(* ------------------------------------------------------------------ *)
(* --stats: per-run pipeline telemetry                                 *)
(* ------------------------------------------------------------------ *)

module Telemetry = Cqa_telemetry.Telemetry

let stats_arg =
  Arg.(
    value
    & opt ~vopt:(Some `Human)
        (some (enum [ ("human", `Human); ("json", `Json) ]))
        None
    & info [ "stats" ] ~docv:"FMT"
        ~doc:
          "Print pipeline telemetry (counters, timers, dispatch events) \
           gathered during the run: $(b,--stats) for a human summary, \
           $(b,--stats=json) for the stable JSON schema.")

(* Shared --domains flag for every command with ?domains plumbing.  The
   default leaves one hardware thread to the submitting domain; the
   persistent pool's adaptive cutoff still runs batches sequentially when
   the fan-out cannot pay for itself, so a large default costs nothing on
   small workloads. *)
let default_domains = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let domains_arg =
  let env =
    Cmd.Env.info "CQA_DOMAINS"
      ~doc:"Default for $(b,--domains) on every command that takes it."
  in
  Arg.(
    value
    & opt int default_domains
    & info [ "domains" ] ~docv:"K" ~env
        ~doc:
          (Printf.sprintf
             "OCaml domains for the parallel engines (exact-volume section \
              chunks, sampling chunks); results are reproducible per \
              domain count.  Defaults to the machine's recommended domain \
              count minus one (here %d); $(b,CQA_DOMAINS) overrides the \
              default."
             default_domains))

(* [plan_cache] additionally reports the plan cache's per-stripe
   accounting: spliced into the JSON object as a "plan_cache" member (the
   telemetry schema is a flat object, so appending a sibling member keeps
   it valid), appended as a table in human mode. *)
let with_stats ?(plan_cache = false) stats run =
  match stats with
  | None -> run ()
  | Some fmt ->
      Telemetry.enable ();
      Telemetry.reset ();
      let before = Telemetry.snapshot () in
      let finish () =
        let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
        match fmt with
        | `Human ->
            Format.printf "@.-- telemetry (kernel: %s) --@.%a@."
              (Dispatch.kernel_name ()) Telemetry.pp d;
            if plan_cache then
              Format.printf "@.-- plan cache --@.%a@." Plan.pp_cache_stats ()
        | `Json ->
            let j = Telemetry.to_json d in
            if plan_cache then
              print_endline
                (String.sub j 0 (String.length j - 1)
                ^ ",\"plan_cache\":"
                ^ Cqa_serve.Server.plan_cache_json ()
                ^ "}")
            else print_endline j
      in
      Fun.protect ~finally:finish run

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let id =
    Arg.(value & opt (some int) None & info [ "only" ] ~docv:"N"
           ~doc:"Run only experiment number $(docv) (1-12).")
  in
  let run = function
    | None -> Experiments.run_all ()
    | Some i -> Experiments.run_one i
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Reproduce every paper claim as a measured table (E1-E12).")
    Term.(const run $ id)

(* ------------------------------------------------------------------ *)
(* volume                                                              *)
(* ------------------------------------------------------------------ *)

let volume_cmd =
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Dimension.") in
  let disjuncts =
    Arg.(value & opt int 2 & info [ "disjuncts" ] ~doc:"DNF disjunct count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run dim disjuncts seed domains stats =
    with_stats stats @@ fun () ->
    let prng = Prng.create seed in
    let s = Generators.semilinear prng ~dim ~disjuncts in
    Format.printf "set:@.%a@." Semilinear.pp s;
    let sweep = Volume_exact.volume_sweep ~domains s in
    let ie = Volume_exact.volume_incl_excl ~domains s in
    Format.printf "volume (Theorem 3 sweep):      %a@." Q.pp sweep;
    Format.printf "volume (inclusion-exclusion):  %a@." Q.pp ie;
    Format.printf "volume (float):                %g@." (Q.to_float sweep)
  in
  Cmd.v
    (Cmd.info "volume"
       ~doc:"Exact volume of a random semi-linear database, two ways.")
    Term.(const run $ dim $ disjuncts $ seed $ domains_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* approx                                                              *)
(* ------------------------------------------------------------------ *)

let approx_cmd =
  let eps = Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"Accuracy.") in
  let delta =
    Arg.(value & opt float 0.1 & info [ "delta" ] ~doc:"Failure probability.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run eps delta seed domains stats =
    with_stats stats @@ fun () ->
    let prng = Prng.create seed in
    let disk = Generators.random_disk prng in
    let { Volume_approx.estimate; sample_size } =
      Volume_approx.approx_semialg_eps ~domains ~prng ~eps ~delta ~vc_dim:3
        disk
    in
    Format.printf
      "random disk in I^2; eps = %g, delta = %g -> sample size M = %d@." eps
      delta sample_size;
    Format.printf "estimated VOL_I = %g (exact rational %a)@."
      (Q.to_float estimate) Q.pp estimate
  in
  Cmd.v
    (Cmd.info "approx"
       ~doc:"Theorem 4: sample-based volume approximation of a semi-algebraic set.")
    Term.(const run $ eps $ delta $ seed $ domains_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* vcdim                                                               *)
(* ------------------------------------------------------------------ *)

let vcdim_cmd =
  let bits =
    Arg.(value & opt int 4 & info [ "bits" ] ~doc:"Bit width of the Prop. 5 instance.")
  in
  let run bits =
    let inst, rel = Paper_examples.prop5_instance ~bits in
    let ground = List.map (fun i -> [| Q.of_int i |]) (List.init bits Fun.id) in
    let params = List.init (1 lsl bits) (fun a -> Q.of_int a) in
    let d =
      Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
          Instance.mem inst rel [| a; pt.(0) |])
    in
    Format.printf "|D| = %d, log2 |D| = %.2f, VCdim(F_phi(D)) = %d@."
      (Instance.size inst)
      (log (float_of_int (Instance.size inst)) /. log 2.)
      d
  in
  Cmd.v
    (Cmd.info "vcdim"
       ~doc:"Proposition 5: a definable family with VC dimension log |D|.")
    Term.(const run $ bits)

(* ------------------------------------------------------------------ *)
(* area                                                                *)
(* ------------------------------------------------------------------ *)

let area_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run seed stats =
    with_stats stats @@ fun () ->
    let prng = Prng.create seed in
    let rec poly () =
      match Generators.convex_polygon prng ~points:5 with
      | Some p -> p
      | None -> poly ()
    in
    let p = poly () in
    Format.printf "polygon vertices:";
    List.iter
      (fun v -> Format.printf " (%a, %a)" Q.pp v.(0) Q.pp v.(1))
      (Cqa_geom.Polygon.vertices p);
    Format.printf "@.";
    let s = Generators.polygon_to_semilinear p in
    let db = Db.of_list Paper_examples.polygon_schema [ ("P", Db.Semilin s) ] in
    let term = Compile.polygon_area_term ~rel:"P" in
    let area = Eval.eval_term db Var.Map.empty term in
    Format.printf "FO + POLY + SUM program: %a@." Q.pp area;
    Format.printf "shoelace ground truth:   %a@." Q.pp (Cqa_geom.Polygon.area p)
  in
  Cmd.v
    (Cmd.info "area"
       ~doc:"Section 5: polygon area computed by the FO + POLY + SUM program.")
    Term.(const run $ seed $ stats_arg)

(* ------------------------------------------------------------------ *)
(* qe                                                                  *)
(* ------------------------------------------------------------------ *)

let qe_cmd =
  let formula =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FORMULA"
          ~doc:
            "FO + LIN formula, e.g. 'exists y . x < y /\\\\ y < 5'. Lowercase \
             identifiers are variables.")
  in
  let run src stats =
    with_stats stats @@ fun () ->
    match Parser.formula_of_string src with
    | exception Parser.Parse_error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 1
    | f -> (
        let db = Db.empty Schema.empty in
        match Eval.reduce_linear db Var.Map.empty f with
        | exception Eval.Unsupported msg ->
            Format.eprintf "not linear-reducible: %s@." msg;
            exit 1
        | lin ->
            let d = Cqa_linear.Fourier_motzkin.qe lin in
            Format.printf "quantifier-free DNF:@.%a@."
              Cqa_linear.Linformula.pp_dnf d)
  in
  Cmd.v
    (Cmd.info "qe"
       ~doc:"Quantifier elimination of an FO + LIN formula (Fourier-Motzkin).")
    Term.(const run $ formula $ stats_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let schema_of_spec spec =
  let parts =
    String.split_on_char ',' spec
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> String.trim s <> "")
  in
  let parse_one part =
    match String.split_on_char ':' (String.trim part) with
    | [ name; arity ] -> (
        match int_of_string_opt (String.trim arity) with
        | Some a when a > 0 -> (String.trim name, a)
        | _ -> failwith (Printf.sprintf "bad arity in schema entry %S" part))
    | _ -> failwith (Printf.sprintf "bad schema entry %S (want Name:arity)" part)
  in
  Schema.of_list (List.map parse_one parts)

(* .cq files: '#' lines are comments, a '# schema: U:1 P:2' line declares
   relation arities, a '# params: u v' line names the parameter slots of a
   parameterized query, and the remaining lines joined are the query
   text. *)
let read_cq path =
  let ic = open_in path in
  let schema = ref None in
  let params = ref None in
  let buf = Buffer.create 256 in
  (try
     while true do
       let line = input_line ic in
       let trimmed = String.trim line in
       if String.length trimmed > 0 && trimmed.[0] = '#' then (
         let body = String.sub trimmed 1 (String.length trimmed - 1) in
         let body = String.trim body in
         let header key =
           let k = key ^ ":" in
           let n = String.length k in
           if String.length body >= n && String.sub body 0 n = k then
             Some (String.sub body n (String.length body - n) |> String.trim)
           else None
         in
         match header "schema" with
         | Some v -> schema := Some v
         | None -> (
             match header "params" with
             | Some v -> params := Some v
             | None -> ()))
       else (
         Buffer.add_string buf line;
         Buffer.add_char buf ' ')
     done
   with End_of_file -> close_in ic);
  (Buffer.contents buf, !schema, !params)

let vars_of_spec spec =
  String.split_on_char ',' spec
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun s ->
         let s = String.trim s in
         if s = "" then None else Some (Var.of_string s))
  |> Array.of_list

let parse_target src =
  match Parser.formula_of_string src with
  | f -> Ok (Cqa_analysis.Analyzer.Formula f)
  | exception Parser.Parse_error e1 -> (
      match Parser.term_of_string src with
      | t -> Ok (Cqa_analysis.Analyzer.Term t)
      | exception Parser.Parse_error e2 -> Error (e1, e2))

let analyze_cmd =
  let open Cqa_analysis in
  let query =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Query text: an FO + POLY + SUM formula or term (same syntax as \
             $(b,qe), plus 'SUM { w | guard | END(y . body) } (x . gamma)').")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Read the query from a .cq file: '#' lines are comments, a '# \
             schema: U:1 P:2' line declares relation arities.")
  in
  let corpus =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Analyze every built-in workload query instead of one query.")
  in
  let schema =
    Arg.(
      value
      & opt (some string) None
      & info [ "schema" ] ~docv:"SPEC"
          ~doc:"Relation arities, e.g. 'U:1,P:2' (overrides the file header).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~doc:"Output format: $(b,human) or $(b,json).")
  in
  let deny =
    Arg.(
      value & flag
      & info [ "deny-warnings" ] ~doc:"Exit nonzero on warnings too.")
  in
  let show_info =
    Arg.(
      value & flag
      & info [ "show-info" ]
          ~doc:"Include info-level diagnostics in human output.")
  in
  let endpoints =
    Arg.(
      value & opt int 8
      & info [ "endpoints" ] ~docv:"N"
          ~doc:"Assumed END endpoint-set size for the cost projection.")
  in
  let threshold =
    Arg.(
      value & opt float 1e6
      & info [ "threshold" ] ~docv:"X"
          ~doc:"Projected-blowup warning threshold.")
  in
  let explain_rewrites =
    Arg.(
      value & flag
      & info [ "explain-rewrites" ]
          ~doc:
            "Run the certified rewrite pass and print one diagnostic per \
             applied rule (code, AST path, before/after) plus the rewritten \
             normal form.")
  in
  let verify_rewrites =
    Arg.(
      value & flag
      & info [ "verify-rewrites" ]
          ~doc:
            "Re-check every applied rewrite with the $(b,equiv) decision \
             procedure; a refuted rule is an error and the exit status is \
             nonzero.  This is the $(b,make lint) mode.")
  in
  let run query file corpus schema format deny show_info endpoints threshold
      explain_rewrites verify_rewrites =
    let options = { Analyzer.endpoints; threshold } in
    (* the rewriter works on formulas; a term target is checked through the
       formula [t = 0], which exercises exactly the same subterm rules *)
    let rewrite_target = function
      | Analyzer.Formula f -> f
      | Analyzer.Term t -> Ast.Cmp (Ast.Ceq, t, Ast.Const Q.zero)
    in
    let rewrite_one ?db target =
      if not (explain_rewrites || verify_rewrites) then true
      else begin
        let r =
          Rewrite.rewrite ?db ~verify:verify_rewrites ~trace:true
            (rewrite_target target)
        in
        let ds = Rewrite.diagnostics r in
        let shown =
          if explain_rewrites then ds
          else List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds
        in
        (match format with
        | `Human ->
            List.iter (Format.printf "%a@." Diagnostic.pp) shown;
            if explain_rewrites then
              Format.printf
                "rewrite: %d rule(s) fired in %d pass(es); atoms %d -> %d@.rewritten: %a@."
                r.Rewrite.fired r.Rewrite.passes r.Rewrite.atoms_before
                r.Rewrite.atoms_after Ast.pp r.Rewrite.rewritten
        | `Json ->
            Printf.printf
              "{\"rewritten\":\"%s\",\"fired\":%d,\"passes\":%d,\"atoms_before\":%d,\"atoms_after\":%d,\"refuted\":%d,\"diagnostics\":%s}\n"
              (Diagnostic.json_escape
                 (Format.asprintf "%a" Ast.pp r.Rewrite.rewritten))
              r.Rewrite.fired r.Rewrite.passes r.Rewrite.atoms_before
              r.Rewrite.atoms_after
              (List.length r.Rewrite.refuted)
              (Diagnostic.list_to_json shown));
        r.Rewrite.refuted = []
      end
    in
    let analyze_one ?db name target =
      let r = Analyzer.analyze ?db ~options target in
      (match format with
      | `Human ->
          if name <> "" then Format.printf "== %s ==@." name;
          Format.printf "%a@." (fun fmt -> Analyzer.pp_result ~show_info fmt) r
      | `Json -> print_endline (Analyzer.result_to_json r));
      let rewrites_ok = rewrite_one ?db target in
      Analyzer.ok ~deny_warnings:deny r && rewrites_ok
    in
    if corpus then (
      let all_ok =
        List.fold_left
          (fun acc (name, tgt, db) ->
            let target =
              match tgt with
              | `F f -> Analyzer.Formula f
              | `T t -> Analyzer.Term t
            in
            analyze_one ?db name target && acc)
          true
          (Paper_examples.analysis_corpus ())
      in
      if not all_ok then exit 1)
    else
      let src, schema_spec =
        match (query, file) with
        | Some q, None -> (q, schema)
        | None, Some path ->
            let src, file_schema, _params = read_cq path in
            (src, if schema <> None then schema else file_schema)
        | Some _, Some _ ->
            Format.eprintf "give either QUERY or --file, not both@.";
            exit 2
        | None, None ->
            Format.eprintf "nothing to analyze: give QUERY or --file@.";
            exit 2
      in
      let db =
        match schema_spec with
        | None -> None
        | Some spec -> (
            match schema_of_spec spec with
            | s -> Some (Db.empty s)
            | exception Failure msg ->
                Format.eprintf "schema error: %s@." msg;
                exit 2)
      in
      match parse_target src with
      | Error (e1, e2) ->
          Format.eprintf "parse error (as formula): %s@." e1;
          Format.eprintf "parse error (as term):    %s@." e2;
          exit 2
      | Ok target -> if not (analyze_one ?db "" target) then exit 1
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis: fragment classification, scope and \
          range-restriction diagnostics, QE cost projection, dispatch hint.")
    Term.(
      const run $ query $ file $ corpus $ schema $ format $ deny $ show_info
      $ endpoints $ threshold $ explain_rewrites $ verify_rewrites)

(* ------------------------------------------------------------------ *)
(* equiv: semantic equivalence of two queries                          *)
(* ------------------------------------------------------------------ *)

let equiv_cmd =
  let open Cqa_analysis in
  let q1 =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY1" ~doc:"First query (an FO + POLY + SUM formula).")
  in
  let q2 =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY2" ~doc:"Second query.")
  in
  let budget =
    Arg.(
      value & opt float infinity
      & info [ "budget" ] ~docv:"X"
          ~doc:
            "Cost cap on the symmetric-difference elimination; past it the \
             verdict is $(b,unknown) rather than a potentially exponential \
             computation.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~doc:"Output format: $(b,human) or $(b,json).")
  in
  let run q1 q2 budget format =
    let parse which s =
      match Parser.formula_of_string s with
      | f -> f
      | exception Parser.Parse_error e ->
          Format.eprintf "parse error in %s: %s@." which e;
          exit 2
    in
    let f1 = parse "QUERY1" q1 and f2 = parse "QUERY2" q2 in
    let v = Equiv.check ~budget f1 f2 in
    (match format with
    | `Human -> Format.printf "%a@." Equiv.pp_verdict v
    | `Json ->
        print_endline
          (match v with
          | Equiv.Equal -> {|{"verdict":"equal"}|}
          | Equiv.Distinct w ->
              let pt =
                Var.Map.bindings w
                |> List.map (fun (x, c) ->
                       Printf.sprintf "\"%s\":\"%s\""
                         (Diagnostic.json_escape (Var.name x))
                         (Q.to_string c))
                |> String.concat ","
              in
              Printf.sprintf {|{"verdict":"distinct","witness":{%s}}|} pt
          | Equiv.Unknown r ->
              Printf.sprintf {|{"verdict":"unknown","reason":"%s"}|}
                (Diagnostic.json_escape r)));
    match v with
    | Equiv.Equal -> ()
    | Equiv.Distinct _ -> exit 1
    | Equiv.Unknown _ -> exit 3
  in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Decide whether two FO + LIN queries define the same set (exit 0: \
          equal, 1: distinct with a witness point, 3: unknown).")
    Term.(const run $ q1 $ q2 $ budget $ format)

(* ------------------------------------------------------------------ *)
(* vol: cost-guarded query volume                                      *)
(* ------------------------------------------------------------------ *)

let vol_cmd =
  let query =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "FO + POLY + SUM formula whose free variables span the \
             integration coordinates (same syntax as $(b,analyze)).")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Read the query from a .cq file (see $(b,analyze)).")
  in
  let schema =
    Arg.(
      value
      & opt (some string) None
      & info [ "schema" ] ~docv:"SPEC"
          ~doc:"Relation arities, e.g. 'U:1,P:2' (overrides the file header).")
  in
  let budget =
    Arg.(
      value
      & opt float Dispatch.default_budget
      & info [ "budget" ] ~docv:"X"
          ~doc:
            "Projected-cost budget: when the worst-case \
             quantifier-elimination projection (Section 3 model, m -> \
             m^2/4 per eliminated variable) exceeds $(docv), evaluation \
             degrades to the Theorem 4 sampling estimator instead of \
             running the exact engine.  Default: unguarded.")
  in
  let eps =
    Arg.(value & opt float 0.1 & info [ "eps" ] ~doc:"Fallback accuracy.")
  in
  let delta =
    Arg.(
      value & opt float 0.1
      & info [ "delta" ] ~doc:"Fallback failure probability.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fallback sampling seed.")
  in
  let run query file schema budget domains eps delta seed stats =
    with_stats ~plan_cache:true stats @@ fun () ->
    let src, schema_spec =
      match (query, file) with
      | Some q, None -> (q, schema)
      | None, Some path ->
          let src, file_schema, _params = read_cq path in
          (src, if schema <> None then schema else file_schema)
      | Some _, Some _ ->
          Format.eprintf "give either QUERY or --file, not both@.";
          exit 2
      | None, None ->
          Format.eprintf "nothing to evaluate: give QUERY or --file@.";
          exit 2
    in
    let db =
      match schema_spec with
      | None -> Db.empty Schema.empty
      | Some spec -> (
          match schema_of_spec spec with
          | s -> Db.empty s
          | exception Failure msg ->
              Format.eprintf "schema error: %s@." msg;
              exit 2)
    in
    match Parser.formula_of_string src with
    | exception Parser.Parse_error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 2
    | f -> (
        let coords = Array.of_list (Var.Set.elements (Ast.free_vars f)) in
        if Array.length coords = 0 then begin
          Format.eprintf "query has no free variables: VOL_I is 0-dimensional@.";
          exit 2
        end;
        (* compile (or fetch) the plan: on a cache miss the analyzer runs
           once; repeated invocations of the same shape in one process go
           straight to the compiled plan *)
        let plan = Cqa_analysis.Planner.compile ~db ~budget ~coords f in
        match Exec.volume_guarded ~domains ~budget ~eps ~delta ~seed plan db with
        | exception Volume_exact.Not_semilinear msg ->
            Format.eprintf "not evaluable exactly: %s@." msg;
            exit 1
        | { Volume_exact.value; engine; projected; budget } ->
            Format.printf "free variables:";
            Array.iter (fun v -> Format.printf " %a" Var.pp v) coords;
            Format.printf "@.";
            (match Plan.hint plan with
            | Some hint -> Format.printf "static hint: %a@." Dispatch.pp hint
            | None -> Format.printf "static hint: (runtime probe)@.");
            if budget = infinity then
              Format.printf "projected QE atoms: %.3g (unguarded)@." projected
            else
              Format.printf "projected QE atoms: %.3g (budget %.3g)@."
                projected budget;
            Format.printf "engine: %a@." Volume_exact.pp_engine engine;
            Format.printf "VOL_I = %a (~%g)@." Q.pp value (Q.to_float value))
  in
  Cmd.v
    (Cmd.info "vol"
       ~doc:
         "VOL_I of a query's section set, with cost-guarded dispatch: exact \
          (Theorem 3) within $(b,--budget), Theorem 4 sampling beyond it.")
    Term.(
      const run $ query $ file $ schema $ budget $ domains_arg $ eps $ delta
      $ seed $ stats_arg)

(* ------------------------------------------------------------------ *)
(* plan: compile a query to its plan IR and print it                   *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let plan_to_json plan =
  let vars vs =
    Array.to_list vs
    |> List.map (fun v -> Printf.sprintf "\"%s\"" (json_escape (Var.name v)))
    |> String.concat ","
  in
  let profile = Plan.profile plan in
  let decision =
    match Plan.decision plan with
    | Dispatch.Run_exact -> "\"decision\":\"run-exact\""
    | Dispatch.Fallback_approx { projected; budget } ->
        Printf.sprintf
          "\"decision\":\"fallback-approx\",\"decision_projected\":%.17g,\
           \"decision_budget\":%.17g"
          projected budget
  in
  Printf.sprintf
    "{\"id\":%d,\"shape_hash\":%d,\"coords\":[%s],\"params\":[%s],\
     \"hint\":%s,\"atoms\":%d,\"quantifiers\":%d,\"sums\":%d,\
     \"tuple_width\":%d,\"projected_qe_atoms\":%.17g,%s,\"compile_ns\":%.0f,\
     \"normal\":\"%s\"}"
    (Plan.id plan) (Plan.shape_hash plan)
    (vars (Plan.coords plan))
    (vars (Plan.params plan))
    (match Plan.hint plan with
    | Some h -> Printf.sprintf "\"%s\"" (Dispatch.to_string h)
    | None -> "null")
    profile.Dispatch.atoms profile.Dispatch.quantifiers
    profile.Dispatch.sum_count profile.Dispatch.tuple_width
    (Plan.projected plan) decision (Plan.compile_ns plan)
    (json_escape (Format.asprintf "%a" Ast.pp (Plan.normal plan)))

let plan_cmd =
  let query =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"FO + POLY + SUM formula to compile (same syntax as $(b,vol)).")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:
            "Read the query from a .cq file; a '# params: u v' header \
             declares parameter slots.")
  in
  let schema =
    Arg.(
      value
      & opt (some string) None
      & info [ "schema" ] ~docv:"SPEC"
          ~doc:"Relation arities, e.g. 'U:1,P:2' (overrides the file header).")
  in
  let params =
    Arg.(
      value
      & opt (some string) None
      & info [ "params" ] ~docv:"VARS"
          ~doc:
            "Free variables to treat as parameter slots, e.g. 'u v' \
             (overrides the file header).  The remaining free variables \
             are the plan's coordinates.")
  in
  let budget =
    Arg.(
      value
      & opt float Dispatch.default_budget
      & info [ "budget" ] ~docv:"X"
          ~doc:"Projected-cost budget the engine decision is made against.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
      & info [ "format" ] ~doc:"Output format: $(b,human) or $(b,json).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Also print the source query and its alpha-normal form (the \
             cache key's formula part).")
  in
  let cache_stats =
    Arg.(
      value & flag
      & info [ "cache-stats" ]
          ~doc:
            "Print the plan cache's per-stripe accounting (size, hits, \
             misses, evictions, lock contention).")
  in
  let run query file schema params budget format explain cache_stats stats =
    with_stats stats @@ fun () ->
    let src, schema_spec, params_spec =
      match (query, file) with
      | Some q, None -> (q, schema, params)
      | None, Some path ->
          let src, file_schema, file_params = read_cq path in
          ( src,
            (if schema <> None then schema else file_schema),
            if params <> None then params else file_params )
      | Some _, Some _ ->
          Format.eprintf "give either QUERY or --file, not both@.";
          exit 2
      | None, None ->
          Format.eprintf "nothing to compile: give QUERY or --file@.";
          exit 2
    in
    let db =
      match schema_spec with
      | None -> None
      | Some spec -> (
          match schema_of_spec spec with
          | s -> Some (Db.empty s)
          | exception Failure msg ->
              Format.eprintf "schema error: %s@." msg;
              exit 2)
    in
    match Parser.formula_of_string src with
    | exception Parser.Parse_error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 2
    | f -> (
        let params = Option.map vars_of_spec params_spec in
        match Cqa_analysis.Planner.compile ?db ~budget ?params f with
        | exception Invalid_argument msg ->
            Format.eprintf "plan error: %s@." msg;
            exit 2
        | plan ->
            (match format with
            | `Json -> print_endline (plan_to_json plan)
            | `Human ->
                Format.printf "%a@." Plan.pp plan;
                if explain then begin
                  Format.printf "source: %a@." Ast.pp (Plan.source plan);
                  Format.printf "normal: %a@." Ast.pp (Plan.normal plan)
                end);
            if cache_stats then Format.printf "%a@." Plan.pp_cache_stats ())
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Compile a query to its plan IR (alpha-normal form, cost profile, \
          engine decision) and print it; repeated shapes in one process hit \
          the striped plan cache ($(b,CQA_PLAN_CACHE_CAP) bounds it).")
    Term.(
      const run $ query $ file $ schema $ params $ budget $ format $ explain
      $ cache_stats $ stats_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the concurrent query service                        *)
(* ------------------------------------------------------------------ *)

module Server = Cqa_serve.Server
module Client = Cqa_serve.Client

(* ------------------------------------------------------------------ *)
(* update: incremental aggregate maintenance under database updates    *)
(* ------------------------------------------------------------------ *)

let update_cmd =
  let schema =
    Arg.(
      required
      & opt (some string) None
      & info [ "schema" ] ~docv:"SPEC"
          ~doc:"Relation arities, e.g. 'R:3' (required: updates edit relations).")
  in
  let query =
    Arg.(
      required
      & opt (some string) None
      & info [ "query" ] ~docv:"QUERY"
          ~doc:
            "FO + LIN formula whose $(b,VOL_I) is maintained across the \
             update sequence (free variables are the coordinates).")
  in
  let ops =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"OP"
          ~doc:
            "Update, e.g. 'insert R x0 >= 0 and x0 <= 1/2': a verb \
             ($(b,insert) or $(b,remove)), a relation name, and a \
             relation-free FO + LIN region over the relation's canonical \
             coordinates x0, x1, ...")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "file" ] ~docv:"FILE"
          ~doc:"Read updates from a script, one OP per line ('#' comments).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "After every update, recompute the volume cold on the updated \
             database and fail (exit 1) unless the incremental answer is \
             identical.")
  in
  let parse_op line =
    match
      String.split_on_char ' ' (String.trim line)
      |> List.filter (fun s -> s <> "")
    with
    | verb :: rel :: (_ :: _ as rest) when verb = "insert" || verb = "remove"
      ->
        Ok (verb = "insert", rel, String.concat " " rest)
    | _ -> Error "expected: insert|remove REL FORMULA"
  in
  let run schema query ops file domains check stats =
    with_stats ~plan_cache:true stats @@ fun () ->
    let sch =
      match schema_of_spec schema with
      | s -> s
      | exception Failure msg ->
          Format.eprintf "schema error: %s@." msg;
          exit 2
    in
    let db = Db.empty sch in
    let f =
      match Parser.formula_of_string query with
      | exception Parser.Parse_error msg ->
          Format.eprintf "parse error: %s@." msg;
          exit 2
      | f -> f
    in
    let coords = Array.of_list (Var.Set.elements (Ast.free_vars f)) in
    if Array.length coords = 0 then begin
      Format.eprintf "query has no free variables: VOL_I is 0-dimensional@.";
      exit 2
    end;
    let ops =
      ops
      @
      match file with
      | None -> []
      | Some path ->
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          List.rev !lines
          |> List.filter (fun l ->
                 let l = String.trim l in
                 l <> "" && l.[0] <> '#')
    in
    let plan = Cqa_analysis.Planner.compile ~db ~budget:infinity ~coords f in
    let failed = ref false in
    let report label =
      match Exec.volume_clamped ~domains plan db with
      | exception Volume_exact.Not_semilinear msg ->
          Format.eprintf "not evaluable exactly: %s@." msg;
          exit 1
      | v ->
          Format.printf "%s: VOL_I = %a (~%g)@." label Q.pp v (Q.to_float v);
          if check then begin
            let cold =
              Volume_exact.volume_clamped (Eval.eval_set db coords f)
            in
            if Q.equal v cold then Format.printf "  check: cold recompute agrees@."
            else begin
              failed := true;
              Format.printf "  check: MISMATCH, cold recompute = %a (~%g)@."
                Q.pp cold (Q.to_float cold)
            end
          end
    in
    report "initial";
    List.iteri
      (fun i op ->
        match parse_op op with
        | Error msg ->
            Format.eprintf "update %d: %s@." (i + 1) msg;
            exit 2
        | Ok (inserted, rel, region) -> (
            let arity =
              match Schema.arity sch rel with
              | Some a -> a
              | None ->
                  Format.eprintf "update %d: unknown relation %S@." (i + 1) rel;
                  exit 2
            in
            let r =
              match Parser.formula_of_string region with
              | exception Parser.Parse_error msg ->
                  Format.eprintf "update %d: parse error: %s@." (i + 1) msg;
                  exit 2
              | rf ->
                  if Ast.relations rf <> [] then begin
                    Format.eprintf
                      "update %d: region must be relation-free@." (i + 1);
                    exit 2
                  end;
                  (match
                     Eval.eval_set (Db.empty Schema.empty)
                       (Semilinear.default_vars arity) rf
                   with
                  | s -> s
                  | exception Invalid_argument msg ->
                      Format.eprintf "update %d: region: %s@." (i + 1) msg;
                      exit 2)
            in
            let u = if inserted then Db.Insert (rel, r) else Db.Remove (rel, r) in
            match Db.apply_update db u with
            | exception Invalid_argument msg ->
                Format.eprintf "update %d: %s@." (i + 1) msg;
                exit 2
            | ch ->
                Format.printf "update %d: %s %s -> version %d%s@." (i + 1)
                  (if inserted then "insert" else "remove")
                  rel ch.Db.version
                  (match ch.Db.delta_box with
                  | _ when ch.Db.delta_empty -> " (empty region: no-op)"
                  | None -> " (unbounded delta)"
                  | Some bb ->
                      ", delta box "
                      ^ String.concat " x "
                          (Array.to_list bb
                          |> List.map (fun (lo, hi) ->
                                 Format.asprintf "[%a, %a]" Q.pp lo Q.pp hi)));
                report (Printf.sprintf "after %d" (i + 1))))
      ops;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Maintain a query's VOL_I incrementally across database updates: \
          apply insert/remove region edits, re-answering after each one \
          from the delta-refreshed plan state ($(b,--check) verifies each \
          answer against a cold recompute).")
    Term.(
      const run $ schema $ query $ ops $ file $ domains_arg $ check $ stats_arg)

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on (or connect to) TCP 127.0.0.1:$(docv).")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on (or connect to) the Unix-domain socket $(docv).")

let addr_of_flags port socket =
  match (port, socket) with
  | Some p, None -> Server.Tcp ("127.0.0.1", p)
  | None, Some path -> Server.Unix_path path
  | Some _, Some _ ->
      Format.eprintf "give either --port or --socket, not both@.";
      exit 2
  | None, None ->
      Format.eprintf "give --port or --socket@.";
      exit 2

let serve_cmd =
  let budget =
    Arg.(
      value
      & opt float Dispatch.default_budget
      & info [ "budget" ] ~docv:"X"
          ~doc:
            "Default admission budget: requests whose plan projects over \
             $(docv) QE atoms are rejected or degraded per \
             $(b,--admission).  Default: unguarded.")
  in
  let max_clients =
    Arg.(
      value & opt int 64
      & info [ "max-clients" ] ~docv:"N"
          ~doc:"Turn connections away (with a server-busy error) beyond \
                $(docv) concurrent clients.")
  in
  let window_us =
    Arg.(
      value & opt float 500.
      & info [ "window-us" ] ~docv:"US"
          ~doc:
            "Micro-batching window in microseconds: a queued volume \
             request waits at most this long to be coalesced with \
             same-plan requests (a lone client is flushed immediately).")
  in
  let max_batch =
    Arg.(
      value & opt int 256
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Flush the request queue at $(docv) pending requests even \
                within the window.")
  in
  let admission =
    Arg.(
      value
      & opt (enum [ ("degrade", Cqa_serve.Protocol.Degrade);
                    ("reject", Cqa_serve.Protocol.Reject) ])
          Cqa_serve.Protocol.Degrade
      & info [ "admission" ] ~docv:"MODE"
          ~doc:
            "What to do with an over-budget request: $(b,degrade) to the \
             Theorem 4 sampler, or $(b,reject) with a structured error.")
  in
  let run port socket domains budget max_clients window_us max_batch admission
      stats =
    with_stats ~plan_cache:true stats @@ fun () ->
    let addr = addr_of_flags port socket in
    let cfg =
      {
        Server.addr;
        domains;
        budget;
        max_clients;
        window_us;
        max_batch;
        admission;
      }
    in
    let stop = Atomic.make false in
    let flip _ = Atomic.set stop true in
    (try Sys.set_signal Sys.sigterm (Sys.Signal_handle flip)
     with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint (Sys.Signal_handle flip)
     with Invalid_argument _ -> ());
    (match addr with
    | Server.Tcp (h, p) -> Format.eprintf "cqa serve: listening on %s:%d@." h p
    | Server.Unix_path path ->
        Format.eprintf "cqa serve: listening on %s@." path);
    Server.serve ~stop cfg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Concurrent query service: newline-delimited JSON over TCP or a \
          Unix socket, with per-request admission control and micro-batched \
          execution through the compiled-plan cache.  Stops on a \
          $(b,shutdown) request, SIGINT or SIGTERM.")
    Term.(
      const run $ port_arg $ socket_arg $ domains_arg $ budget $ max_clients
      $ window_us $ max_batch $ admission $ stats_arg)

let client_cmd =
  let requests =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Request lines (JSON objects) to send, one round trip each; \
             with none, request lines are read from stdin.")
  in
  let wait =
    Arg.(
      value & opt int 0
      & info [ "wait" ] ~docv:"MS"
          ~doc:
            "Retry the initial connection (and a ping) for up to $(docv) \
             milliseconds before giving up — for scripts racing a server \
             start.")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Closed-loop throughput mode: drive $(b,--conns) lockstep \
             connections for $(b,--cycles) rounds, each sending the (one) \
             REQUEST line, and report wall-clock requests/second instead \
             of response bodies.")
  in
  let conns =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"K" ~doc:"Bench mode: concurrent connections.")
  in
  let cycles =
    Arg.(
      value & opt int 100
      & info [ "cycles" ] ~docv:"N"
          ~doc:"Bench mode: lockstep rounds per connection.")
  in
  let connect_retry addr wait_ms =
    let deadline = Unix.gettimeofday () +. (float_of_int wait_ms /. 1e3) in
    let rec go () =
      match Client.connect addr with
      | c -> c
      | exception Unix.Unix_error _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.02;
          go ()
    in
    go ()
  in
  let run port socket requests wait bench conns cycles =
    let addr = addr_of_flags port socket in
    if bench then begin
      let line =
        match requests with
        | [ l ] -> l
        | _ ->
            Format.eprintf "--bench takes exactly one REQUEST line@.";
            exit 2
      in
      let cs =
        Array.init conns (fun _ -> connect_retry addr wait)
      in
      let t0 = Unix.gettimeofday () in
      let out = Client.closed_loop ~conns:cs ~cycles (fun ~cycle:_ ~conn:_ -> line) in
      let dt = Unix.gettimeofday () -. t0 in
      Array.iter Client.close cs;
      let n = Array.length out in
      let failed =
        Array.fold_left
          (fun acc r ->
            if String.length r >= 11 && String.sub r 0 11 = {|{"ok":false|}
            then acc + 1
            else acc)
          0 out
      in
      Format.printf "requests: %d (conns %d x cycles %d), errors: %d@." n
        conns cycles failed;
      Format.printf "elapsed: %.3f s, throughput: %.0f req/s@." dt
        (float_of_int n /. dt);
      if failed > 0 then exit 1
    end
    else begin
      let c = connect_retry addr wait in
      let ok = ref true in
      let round_trip line =
        let resp = Client.request c line in
        print_endline resp;
        if String.length resp >= 11 && String.sub resp 0 11 = {|{"ok":false|}
        then ok := false
      in
      (match requests with
      | [] -> (
          try
            while true do
              let line = input_line stdin in
              if String.trim line <> "" then round_trip line
            done
          with End_of_file -> ())
      | rs -> List.iter round_trip rs);
      Client.close c;
      if not !ok then exit 1
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send wire-protocol requests to a running $(b,cqa serve) and print \
          the responses; $(b,--bench) turns it into a closed-loop \
          throughput driver.")
    Term.(
      const run $ port_arg $ socket_arg $ requests $ wait $ bench $ conns
      $ cycles)

let main =
  Cmd.group
    (Cmd.info "cqa" ~version:"1.0"
       ~doc:"Exact and approximate aggregation in constraint query languages.")
    [
      experiments_cmd; volume_cmd; approx_cmd; vcdim_cmd; area_cmd; qe_cmd;
      analyze_cmd; equiv_cmd; vol_cmd; plan_cmd; update_cmd; serve_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval main)
