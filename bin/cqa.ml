(* Command-line interface: experiment suite and small demos. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_vc
open Cqa_core
open Cqa_workload
open Cmdliner

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  let id =
    Arg.(value & opt (some int) None & info [ "only" ] ~docv:"N"
           ~doc:"Run only experiment number $(docv) (1-12).")
  in
  let run = function
    | None -> Experiments.run_all ()
    | Some i -> Experiments.run_one i
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Reproduce every paper claim as a measured table (E1-E12).")
    Term.(const run $ id)

(* ------------------------------------------------------------------ *)
(* volume                                                              *)
(* ------------------------------------------------------------------ *)

let volume_cmd =
  let dim = Arg.(value & opt int 2 & info [ "dim" ] ~doc:"Dimension.") in
  let disjuncts =
    Arg.(value & opt int 2 & info [ "disjuncts" ] ~doc:"DNF disjunct count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run dim disjuncts seed =
    let prng = Prng.create seed in
    let s = Generators.semilinear prng ~dim ~disjuncts in
    Format.printf "set:@.%a@." Semilinear.pp s;
    let sweep = Volume_exact.volume_sweep s in
    let ie = Volume_exact.volume_incl_excl s in
    Format.printf "volume (Theorem 3 sweep):      %a@." Q.pp sweep;
    Format.printf "volume (inclusion-exclusion):  %a@." Q.pp ie;
    Format.printf "volume (float):                %g@." (Q.to_float sweep)
  in
  Cmd.v
    (Cmd.info "volume"
       ~doc:"Exact volume of a random semi-linear database, two ways.")
    Term.(const run $ dim $ disjuncts $ seed)

(* ------------------------------------------------------------------ *)
(* approx                                                              *)
(* ------------------------------------------------------------------ *)

let approx_cmd =
  let eps = Arg.(value & opt float 0.05 & info [ "eps" ] ~doc:"Accuracy.") in
  let delta =
    Arg.(value & opt float 0.1 & info [ "delta" ] ~doc:"Failure probability.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run eps delta seed =
    let prng = Prng.create seed in
    let disk = Generators.random_disk prng in
    let { Volume_approx.estimate; sample_size } =
      Volume_approx.approx_semialg_eps ~prng ~eps ~delta ~vc_dim:3 disk
    in
    Format.printf
      "random disk in I^2; eps = %g, delta = %g -> sample size M = %d@." eps
      delta sample_size;
    Format.printf "estimated VOL_I = %g (exact rational %a)@."
      (Q.to_float estimate) Q.pp estimate
  in
  Cmd.v
    (Cmd.info "approx"
       ~doc:"Theorem 4: sample-based volume approximation of a semi-algebraic set.")
    Term.(const run $ eps $ delta $ seed)

(* ------------------------------------------------------------------ *)
(* vcdim                                                               *)
(* ------------------------------------------------------------------ *)

let vcdim_cmd =
  let bits =
    Arg.(value & opt int 4 & info [ "bits" ] ~doc:"Bit width of the Prop. 5 instance.")
  in
  let run bits =
    let inst, rel = Paper_examples.prop5_instance ~bits in
    let ground = List.map (fun i -> [| Q.of_int i |]) (List.init bits Fun.id) in
    let params = List.init (1 lsl bits) (fun a -> Q.of_int a) in
    let d =
      Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
          Instance.mem inst rel [| a; pt.(0) |])
    in
    Format.printf "|D| = %d, log2 |D| = %.2f, VCdim(F_phi(D)) = %d@."
      (Instance.size inst)
      (log (float_of_int (Instance.size inst)) /. log 2.)
      d
  in
  Cmd.v
    (Cmd.info "vcdim"
       ~doc:"Proposition 5: a definable family with VC dimension log |D|.")
    Term.(const run $ bits)

(* ------------------------------------------------------------------ *)
(* area                                                                *)
(* ------------------------------------------------------------------ *)

let area_cmd =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let run seed =
    let prng = Prng.create seed in
    let rec poly () =
      match Generators.convex_polygon prng ~points:5 with
      | Some p -> p
      | None -> poly ()
    in
    let p = poly () in
    Format.printf "polygon vertices:";
    List.iter
      (fun v -> Format.printf " (%a, %a)" Q.pp v.(0) Q.pp v.(1))
      (Cqa_geom.Polygon.vertices p);
    Format.printf "@.";
    let s = Generators.polygon_to_semilinear p in
    let db = Db.of_list Paper_examples.polygon_schema [ ("P", Db.Semilin s) ] in
    let term = Compile.polygon_area_term ~rel:"P" in
    let area = Eval.eval_term db Var.Map.empty term in
    Format.printf "FO + POLY + SUM program: %a@." Q.pp area;
    Format.printf "shoelace ground truth:   %a@." Q.pp (Cqa_geom.Polygon.area p)
  in
  Cmd.v
    (Cmd.info "area"
       ~doc:"Section 5: polygon area computed by the FO + POLY + SUM program.")
    Term.(const run $ seed)

(* ------------------------------------------------------------------ *)
(* qe                                                                  *)
(* ------------------------------------------------------------------ *)

let qe_cmd =
  let formula =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FORMULA"
          ~doc:
            "FO + LIN formula, e.g. 'exists y . x < y /\\\\ y < 5'. Lowercase \
             identifiers are variables.")
  in
  let run src =
    match Parser.formula_of_string src with
    | exception Parser.Parse_error msg ->
        Format.eprintf "parse error: %s@." msg;
        exit 1
    | f -> (
        let db = Db.empty Schema.empty in
        match Eval.reduce_linear db Var.Map.empty f with
        | exception Eval.Unsupported msg ->
            Format.eprintf "not linear-reducible: %s@." msg;
            exit 1
        | lin ->
            let d = Cqa_linear.Fourier_motzkin.qe lin in
            Format.printf "quantifier-free DNF:@.%a@."
              Cqa_linear.Linformula.pp_dnf d)
  in
  Cmd.v
    (Cmd.info "qe"
       ~doc:"Quantifier elimination of an FO + LIN formula (Fourier-Motzkin).")
    Term.(const run $ formula)

let main =
  Cmd.group
    (Cmd.info "cqa" ~version:"1.0"
       ~doc:"Exact and approximate aggregation in constraint query languages.")
    [ experiments_cmd; volume_cmd; approx_cmd; vcdim_cmd; area_cmd; qe_cmd ]

let () = exit (Cmd.eval main)
