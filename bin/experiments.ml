(* The experiment suite: one function per row of the DESIGN.md experiment
   index (E1-E12), each printing a markdown table of paper-claim vs
   measured.  `cqa experiments` runs them all; EXPERIMENTS.md records the
   output. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_vc
open Cqa_core
open Cqa_workload

let pf = Printf.printf

let header title claim =
  pf "\n## %s\n\n*Paper claim*: %s\n\n" title claim

let time f =
  let t = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t)

(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1 - Section 3 example: blow-up of the VC-based approximation"
    "applying the Karpinski-Macintyre/Koiran construction to the toy query \
     at eps = 1/10 yields >= 10^9 atomic subformulae and >= 10^11 \
     quantifiers; the method is infeasible for constraint databases.";
  pf "| eps | |U| | atoms(phi) | sample M | translates | quantifiers | atoms |\n";
  pf "|---|---|---|---|---|---|---|\n";
  List.iter
    (fun (eps, n) ->
      let atoms_in_phi = (2 * n) + 4 in
      let s =
        Bounds.km_formula_size ~eps ~delta:0.25 ~vc_dim:4 ~m:2 ~atoms_in_phi
      in
      pf "| %g | %d | %d | %d | %d | %.2e | %.2e |\n" eps n atoms_in_phi
        s.Bounds.sample_size s.Bounds.translates s.Bounds.quantifiers
        s.Bounds.atoms)
    [ (0.5, 8); (0.1, 8); (0.1, 32); (0.02, 8) ];
  pf "\nMeasured: at eps = 1/10 the derandomized formula needs ~10^4 sample \
      points and ~10^8..10^9 atoms before quantifier elimination - the \
      same infeasibility conclusion as the paper's >= 10^9 figure (our \
      size model is a lower-bound-style estimate; see DESIGN.md).\n"

let e2 () =
  header "E2 - Proposition 1 / Theorem 1: no separating sentence, AVG not approximable"
    "no (c1,c2)-separating sentence exists over o-minimal structures; hence \
     AVG has no eps-approximation for eps < 1/2 (via the interval-translation \
     gadget).";
  pf "| rounds k | |A| | |B| | gap | duplicator wins? |\n|---|---|---|---|---|\n";
  List.iter
    (fun k ->
      match Ef_game.separating_counterexample ~rounds:k ~c1:(Q.of_int 3) ~c2:(Q.of_int 3) with
      | Some (a, b) ->
          let verified =
            if k <= 2 then string_of_bool (Ef_game.duplicator_wins k a b)
            else "true (theory; brute force infeasible)"
          in
          pf "| %d | %d | %d | 3x | %s |\n" k a.Ef_game.size b.Ef_game.size verified
      | None -> pf "| %d | - | - | - | no counterexample |\n" k)
    [ 1; 2; 3 ];
  let eps = Q.of_ints 1 10 and delta = Q.of_ints 1 10 in
  let c1, _ = Separating.separating_thresholds ~eps ~delta in
  pf "\nTheorem 1 gadget at eps = 1/10, Delta = 1/10: an eps-approximate AVG \
      would separate card(U1) > %s * card(U2) from the converse.\n"
    (Q.to_string c1);
  pf "\n| n1 | n2 | AVG(U1' u U2') | ratio recovered |\n|---|---|---|---|\n";
  List.iter
    (fun (n1, n2) ->
      let avg = Separating.avg_translated ~n1 ~n2 ~delta in
      let r =
        match Separating.ratio_from_avg ~avg ~delta with
        | Some r -> Q.to_string r
        | None -> "-"
      in
      pf "| %d | %d | %s | %s |\n" n1 n2 (Q.to_string avg) r)
    [ (8, 1); (4, 2); (1, 1); (2, 4); (1, 8) ]

let e3 () =
  header "E3 - Proposition 4: the trivial 1/2-approximation"
    "FO + LIN defines VOL_I^eps for eps >= 1/2: answer 1/2 unless the \
     volume is 0 or 1, both first-order detectable.";
  let prng = Prng.create 1001 in
  let total = 60 in
  let within = ref 0 and exact01 = ref 0 and zero_or_one = ref 0 in
  for _ = 1 to total do
    let s = Generators.semilinear prng ~dim:2 ~disjuncts:2 in
    let t = Trivial_approx.trivial_approx s in
    let v = Volume_exact.volume_clamped s in
    if Q.leq (Q.abs (Q.sub t v)) Q.half then incr within;
    if Q.is_zero v || Q.equal v Q.one then begin
      incr zero_or_one;
      if Q.equal t v then incr exact01
    end
  done;
  pf "| random sets | |triv - vol| <= 1/2 | vol in {0,1} cases | detected exactly |\n";
  pf "|---|---|---|---|\n";
  pf "| %d | %d | %d | %d |\n" total !within !zero_or_one !exact01

let e4 () =
  header "E4 - Theorem 2 / Lemmas 2-3: good sentences vs AC0 counting"
    "a definable VOL_I^eps would give a (c1,c2)-good sentence, hence an AC0 \
     circuit family separating cardinalities - impossible.";
  let x = Var.of_string "x" and y = Var.of_string "y" in
  let catalog =
    [ ("exists x. U(x)", Formula.Exists (x, Formula.Atom (Circuit.Pred (0, x))));
      ("forall x. U(x)", Formula.Forall (x, Formula.Atom (Circuit.Pred (0, x))));
      ( "exists x<y. U(x) & U(y)",
        Formula.Exists
          ( x,
            Formula.Exists
              ( y,
                Formula.conj
                  [ Formula.Atom (Circuit.Lt (x, y));
                    Formula.Atom (Circuit.Pred (0, x));
                    Formula.Atom (Circuit.Pred (0, y)) ] ) ) );
      ( "exists x. U(x) & forall y<x. ~U(y)",
        Formula.Exists
          ( x,
            Formula.And
              ( Formula.Atom (Circuit.Pred (0, x)),
                Formula.Forall
                  ( y,
                    Formula.implies
                      (Formula.Atom (Circuit.Lt (y, x)))
                      (Formula.Not (Formula.Atom (Circuit.Pred (0, y)))) ) ) ) )
    ]
  in
  pf "| sentence | n | gates | depth | (1/3,2/3)-separates? |\n|---|---|---|---|---|\n";
  List.iter
    (fun (name, s) ->
      List.iter
        (fun n ->
          let c = Circuit.of_sentence ~preds:1 ~n s in
          pf "| %s | %d | %d | %d | %b |\n" name n (Circuit.gate_count c)
            (Circuit.depth c)
            (Circuit.separates_cardinalities ~c1:(Q.of_ints 1 3)
               ~c2:(Q.of_ints 2 3) ~n c))
        [ 6; 12 ])
    catalog;
  pf "\nAt small n a sentence can still separate (the 'two elements' sentence\n\
      at n = 6 accepts card > 4 and rejects card < 2, which is all the\n\
      definition asks); Lemma 3 is asymptotic, and indeed every candidate\n\
      fails by n = 12.\n";
  (* Lemma 2 gadget: VOL X tracks card(B)/card(A) *)
  pf "\nLemma 2 interval gadget (|A| = 10):\n\n| card B | VOL X | VOL Y |\n|---|---|---|\n";
  List.iter
    (fun k ->
      let gi = Separating.good_instance ~a_card:10 ~b:(List.init k Fun.id) in
      let vx, vy = Separating.lemma2_volumes gi in
      pf "| %d | %s | %s |\n" k (Q.to_string vx) (Q.to_string vy))
    [ 1; 3; 5; 7; 9 ]

let e5 () =
  header "E5 - Theorem 3: exact volume of semi-linear databases"
    "FO + POLY + SUM computes VOL exactly for every semi-linear database; \
     cross-checked here between the paper's sweep construction, \
     inclusion-exclusion over Lasserre's recursion, and Monte Carlo.";
  let prng = Prng.create 2002 in
  pf "| dim | sets | sweep = incl-excl | max MC relative error (m=4000) |\n|---|---|---|---|\n";
  List.iter
    (fun (dim, count) ->
      let agree = ref 0 in
      let worst = ref 0.0 in
      for _ = 1 to count do
        let s = Generators.semilinear prng ~dim ~disjuncts:2 in
        let a = Volume_exact.volume_sweep s in
        let b = Volume_exact.volume_incl_excl s in
        if Q.equal a b then incr agree;
        (* Monte-Carlo within the bounding box; the error is reported
           relative to the sampling window's volume, matching the
           absolute-error-in-the-cube convention of VOL_I *)
        (match Semilinear.bounding_box s with
        | Some bb ->
            let mcprng = Prng.create 7 in
            let m = 4000 in
            let hits = ref 0 in
            for _ = 1 to m do
              let pt = Array.map (fun (lo, hi) -> Prng.q_in mcprng lo hi) bb in
              if Semilinear.mem s pt then incr hits
            done;
            let boxvol =
              Array.fold_left (fun acc (lo, hi) -> Q.mul acc (Q.sub hi lo)) Q.one bb
            in
            let est = Q.to_float boxvol *. float_of_int !hits /. float_of_int m in
            worst :=
              max !worst
                (abs_float (est -. Q.to_float a) /. Q.to_float boxvol)
        | None -> ())
      done;
      pf "| %d | %d | %d/%d | %.4f |\n" dim count !agree count !worst)
    [ (1, 20); (2, 15); (3, 8) ];
  (* the arctan example: not semi-linear, exact closure fails, approx works *)
  let x = Q.one in
  let set = Paper_examples.arctan_epigraph x in
  let prng2 = Prng.create 5 in
  let est = Volume_approx.approx_semialg ~prng:prng2 ~m:8000 set in
  pf "\narctan boundary case (semi-algebraic, Section 2): VOL_I at x = 1 is \
      atan(1) = %.5f; sampling gives %.5f (the exact sweep applies only to \
      the semi-linear fragment, as Theorem 3 states).\n"
    (Paper_examples.arctan_volume_float x)
    (Q.to_float est)

let e6 () =
  header "E6 - Section 5 example: polygon area inside the language"
    "the area of a convex polygon is computed by an FO + POLY + SUM term \
     (fan triangulation from the lexicographically minimal vertex).";
  let term = Compile.polygon_area_term ~rel:"P" in
  pf "| polygon | vertices | program output | shoelace | time (s) |\n|---|---|---|---|---|\n";
  let run name db truth verts =
    let got, dt = time (fun () -> Eval.eval_term db Var.Map.empty term) in
    pf "| %s | %d | %s | %s | %.2f |\n" name verts (Q.to_string got)
      (Q.to_string truth) dt
  in
  run "triangle" (Paper_examples.triangle_db ()) (Q.of_int 2) 3;
  run "rectangle" (Paper_examples.rectangle_db ()) (Q.of_int 6) 4;
  run "pentagon" (Paper_examples.pentagon_db ()) (Q.of_ints 11 2) 5;
  let prng = Prng.create 303 in
  let n = ref 0 in
  while !n < 2 do
    match Generators.convex_polygon prng ~points:5 with
    | Some poly ->
        incr n;
        let s = Generators.polygon_to_semilinear poly in
        let db = Db.of_list Paper_examples.polygon_schema [ ("P", Db.Semilin s) ] in
        run
          (Printf.sprintf "random %d" !n)
          db
          (Cqa_geom.Polygon.area poly)
          (Cqa_geom.Polygon.vertex_count poly)
    | None -> ()
  done

let e7 () =
  header "E7 - Theorem 4: uniform sampling approximation with W"
    "one W-drawn sample of M(eps, delta, VC) points approximates \
     VOL_I(phi(a, D)) for every parameter a simultaneously, within eps with \
     probability 1 - delta.";
  let db = Paper_examples.triangle_db () in
  let dv = Semilinear.default_vars 2 in
  let params = List.init 9 (fun i -> [| Q.of_ints i 4 |]) in
  let truth a = min 1.0 (max 0.0 (2.0 -. Q.to_float a.(0))) in
  pf "| eps | delta | sample M | trials | worst sup-error | within eps |\n|---|---|---|---|---|---|\n";
  List.iter
    (fun (eps, delta) ->
      let m = Volume_approx.sample_size_for ~eps ~delta ~vc_dim:2 in
      let trials = 5 in
      let ok = ref 0 and worst = ref 0.0 in
      for seed = 1 to trials do
        let prng = Prng.create (seed * 37) in
        let fam =
          Volume_approx.approx_query_family ~prng ~m db ~xvars:[| dv.(0) |]
            ~yvars:[| dv.(1) |]
            (Ast.Rel ("P", [ dv.(0); dv.(1) ]))
            ~params
        in
        let sup =
          List.fold_left
            (fun acc (a, est) -> max acc (abs_float (Q.to_float est -. truth a)))
            0.0 fam
        in
        worst := max !worst sup;
        if sup < eps then incr ok
      done;
      pf "| %.2f | %.2f | %d | %d | %.4f | %d/%d |\n" eps delta m trials !worst
        !ok trials)
    [ (0.1, 0.2); (0.05, 0.2); (0.05, 0.05) ]

let e8 () =
  header "E8 - Proposition 5: VCdim(F_phi(D)) >= log |D|"
    "a fixed quantifier-free query whose definable family on databases D_n \
     shatters log |D_n| points.";
  pf "| bits | |D| | log2 |D| | empirical VCdim |\n|---|---|---|---|\n";
  List.iter
    (fun bits ->
      let inst, rel = Paper_examples.prop5_instance ~bits in
      let ground = List.map (fun i -> [| Q.of_int i |]) (List.init bits Fun.id) in
      let params = List.init (1 lsl bits) (fun a -> Q.of_int a) in
      let d =
        Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
            Instance.mem inst rel [| a; pt.(0) |])
      in
      pf "| %d | %d | %.2f | %d |\n" bits (Instance.size inst)
        (log (float_of_int (Instance.size inst)) /. log 2.)
        d)
    [ 2; 3; 4; 5 ]

let e9 () =
  header "E9 - Proposition 6: VCdim(F_phi(D)) <= C log |D|"
    "for o-minimal structures the VC dimension of a query's definable \
     family grows at most logarithmically in |D|, with the explicit \
     Goldberg-Jerrum constant for FO + POLY.";
  let c = Bounds.goldberg_jerrum_c ~k:1 ~p:1 ~q:0 ~d:1 ~s:2 in
  pf "C = 16 k (p+q) (log2(8 e d p s) + 1) = %.1f for the halfline query \
      phi(a; y) = y <= a.\n\n" c;
  pf "| family | |D| | empirical VCdim | C log2 |D| |\n|---|---|---|---|\n";
  let prng = Prng.create 11 in
  List.iter
    (fun size ->
      let ground = Generators.finite_set prng ~size ~lo:0 ~hi:100 in
      let ground_pts = List.map (fun v -> [| v |]) ground in
      let params = List.map (fun v -> Q.add v Q.half) ground @ [ Q.of_int (-1) ] in
      let d =
        Definable_family.empirical_vc_dim ~params ~ground:ground_pts
          ~mem:(fun a pt -> Q.leq pt.(0) a)
      in
      pf "| halflines y <= a | %d | %d | %.1f |\n" size d
        (Bounds.vc_upper_bound ~c ~db_size:size);
      (* intervals [a, b]: classical VC dimension 2, still far below C log *)
      let params2 =
        List.concat_map
          (fun a -> List.map (fun b -> (a, b)) (Q.of_int (-1) :: ground))
          (Q.of_int (-1) :: ground)
      in
      let d2 =
        Definable_family.empirical_vc_dim ~params:params2 ~ground:ground_pts
          ~mem:(fun (a, b) pt -> Q.leq a pt.(0) && Q.leq pt.(0) b)
      in
      pf "| intervals a <= y <= b | %d | %d | %.1f |\n" size d2
        (Bounds.vc_upper_bound ~c ~db_size:size))
    [ 4; 16; 64 ]

let e10 () =
  header "E10 - Introduction: exact volume is hard, approximation is cheap"
    "exact volume computation is #P-hard (Dyer-Frieze); randomized \
     approximation is polynomial (Dyer-Frieze-Kannan) - the motivation for \
     approximate operators.  Measured: exact Lasserre time explodes with \
     dimension while Monte-Carlo stays flat.";
  pf "| dim | halfspaces | exact volume time (s) | MC time m=2000 (s) |\n|---|---|---|---|\n";
  List.iter
    (fun dim ->
      (* a hypercube sliced by one generic halfspace *)
      let cube = Cqa_geom.Hpolytope.cube dim in
      let slice =
        Cqa_geom.Hpolytope.make dim
          [ { Cqa_geom.Hpolytope.normal = Array.init dim (fun i -> Q.of_int (1 + (i mod 3)));
              offset = Q.of_int dim } ]
      in
      let p = Cqa_geom.Hpolytope.intersect cube slice in
      let _, t_exact = time (fun () -> Cqa_geom.Lasserre.volume p) in
      let _, t_mc =
        time (fun () ->
            let prng = Prng.create 3 in
            let hits = ref 0 in
            for _ = 1 to 2000 do
              let pt = Array.init dim (fun _ -> Prng.q_unit prng) in
              if Cqa_geom.Hpolytope.contains p pt then incr hits
            done;
            !hits)
      in
      pf "| %d | %d | %.3f | %.3f |\n" dim
        (List.length (Cqa_geom.Hpolytope.halfspaces p))
        t_exact t_mc)
    [ 2; 3; 4; 5; 6 ]

let e11 () =
  header "E11 - The mu operator of Chomicki-Kuper cannot express volume"
    "FO + LIN is closed under mu, but mu(X) = 0 for every bounded X.";
  let dv = Semilinear.default_vars 2 in
  let xx = Linexpr.var dv.(0) and yy = Linexpr.var dv.(1) in
  let sets =
    [ ( "triangle (bounded)",
        Semilinear.of_conjunction dv
          [ Linconstr.ge xx Linexpr.zero; Linconstr.ge yy Linexpr.zero;
            Linconstr.le (Linexpr.add xx yy) (Linexpr.const Q.one) ] );
      ("halfplane x >= 0", Semilinear.halfspace dv (Linconstr.ge xx Linexpr.zero));
      ( "quadrant",
        Semilinear.of_conjunction dv
          [ Linconstr.ge xx Linexpr.zero; Linconstr.ge yy Linexpr.zero ] );
      ( "horizontal strip (unbounded, null density)",
        Semilinear.of_conjunction dv
          [ Linconstr.ge yy Linexpr.zero; Linconstr.le yy (Linexpr.const Q.one) ] );
      ("full plane", Semilinear.full 2) ]
  in
  pf "| set | mu | VOL_I |\n|---|---|---|\n";
  List.iter
    (fun (name, s) ->
      pf "| %s | %s | %s |\n" name
        (Q.to_string (Mu.mu s))
        (Q.to_string (Volume_exact.volume_clamped s)))
    sets

let e12 () =
  header "E12 - Variable independence (Chomicki-Goldin-Kuper) is restrictive"
    "exact volume is FO-definable under variable independence, but the \
     condition excludes most sets arising in practice.";
  let prng = Prng.create 404 in
  let trial extra count =
    let vi = ref 0 in
    for _ = 1 to count do
      let vars = Semilinear.default_vars 2 in
      let conj () = Generators.polytope_conjunction prng ~vars ~extra ~lo:(-5) ~hi:5 in
      let s = Semilinear.make vars [ conj () ] in
      if Var_indep.is_variable_independent s then begin
        incr vi;
        assert (Q.equal (Var_indep.grid_volume s) (Volume_exact.volume s))
      end
    done;
    !vi
  in
  pf "| workload | variable independent | exact volume recovered |\n|---|---|---|\n";
  let boxes = trial 0 40 in
  pf "| 40 random boxes | %d/40 | %d/%d |\n" boxes boxes boxes;
  let slanted = trial 2 40 in
  pf "| 40 random polytopes (2 slanted halfspaces) | %d/40 | %d/%d |\n" slanted
    slanted slanted

let all = [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12 ]

let summary () =
  pf "\n## Summary\n\n";
  pf "| id | paper result | outcome |\n|---|---|---|\n";
  List.iter
    (fun (id, claim, outcome) -> pf "| %s | %s | %s |\n" id claim outcome)
    [ ("E1", "Sec. 3 example: VC-based approximation blows up",
       "reproduced: ~10^9 atoms at eps = 1/10; infeasible");
      ("E2", "Prop. 1 / Thm. 1: no separating sentence; AVG not approximable",
       "reproduced: duplicator wins verified; AVG gadget inverts exactly");
      ("E3", "Prop. 4: trivial 1/2-approximation",
       "reproduced: always within 1/2; 0/1 volumes detected exactly");
      ("E4", "Thm. 2 / Lemmas 2-3: good sentences vs AC0 counting",
       "reproduced: all candidate circuits fail to separate by n = 12");
      ("E5", "Thm. 3: exact volume of semi-linear databases",
       "reproduced: sweep = inclusion-exclusion on all random sets, dims 1-3");
      ("E6", "Sec. 5 example: polygon area in FO+POLY+SUM",
       "reproduced: program output = shoelace on all polygons");
      ("E7", "Thm. 4: uniform sampling approximation",
       "reproduced: sup-error over all parameters within eps in all trials");
      ("E8", "Prop. 5: VCdim >= log |D|",
       "reproduced: empirical VCdim = log2 |D| exactly");
      ("E9", "Prop. 6: VCdim <= C log |D|",
       "reproduced: empirical far below the Goldberg-Jerrum bound");
      ("E10", "exact volume hard, approximation cheap (intro)",
       "reproduced: exact time grows ~13x per added dimension; MC flat");
      ("E11", "mu of [12] is 0 on bounded sets",
       "reproduced: mu = 0 on all bounded sets; correct densities otherwise");
      ("E12", "variable independence of [11] is restrictive",
       "reproduced: boxes always qualify; slanted polytopes often do not") ]

let run_all () =
  pf "# Experiments: paper claims vs measured\n";
  pf "\nGenerated by `dune exec bin/cqa.exe -- experiments`.  The paper is a\n";
  pf "PODS theory paper with no measured tables of its own: every theorem,\n";
  pf "lemma and worked example from its evaluation-relevant sections is\n";
  pf "reproduced below as an executable experiment (the experiment index in\n";
  pf "DESIGN.md maps each to the modules that implement it).  QE-pipeline\n";
  pf "ablation timings live in the benchmark harness (`dune exec\n";
  pf "bench/main.exe`).\n";
  summary ();
  List.iter (fun e -> e ()) all

let run_one i =
  if i < 1 || i > List.length all then invalid_arg "experiment id out of range";
  (List.nth all (i - 1)) ()
