(* Benchmark harness: one Bechamel test per experiment (E1-E12 of DESIGN.md)
   plus the substrate operations they rely on.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_vc
open Cqa_core
open Cqa_workload

let q = Q.of_int
let qq = Q.of_ints

(* ------------------------------------------------------------------ *)
(* Fixtures (built once, outside the timed region)                     *)
(* ------------------------------------------------------------------ *)

let dv2 = Semilinear.default_vars 2

let fixed_semilinear dim seed =
  let prng = Prng.create seed in
  Generators.semilinear prng ~dim ~disjuncts:2

let s2 = fixed_semilinear 2 101
let s3 = fixed_semilinear 3 102

let pentagon_db = Paper_examples.pentagon_db ()
let polygon_term = Compile.polygon_area_term ~rel:"P"

let ef_pair =
  match Ef_game.separating_counterexample ~rounds:2 ~c1:(q 3) ~c2:(q 3) with
  | Some p -> p
  | None -> assert false

let circuit_12 =
  let x = Var.of_string "x" and y = Var.of_string "y" in
  Circuit.of_sentence ~preds:1 ~n:12
    (Formula.Exists
       ( x,
         Formula.Exists
           ( y,
             Formula.conj
               [ Formula.Atom (Circuit.Lt (x, y));
                 Formula.Atom (Circuit.Pred (0, x));
                 Formula.Atom (Circuit.Pred (0, y)) ] ) ))

let tri_db = Paper_examples.triangle_db ()

let sample_1k =
  let prng = Prng.create 55 in
  Approx_volume.random_sample ~prng ~dim:2 ~n:1000

let prop5_inst, prop5_rel = Paper_examples.prop5_instance ~bits:4

let e10_poly dim =
  let cube = Cqa_geom.Hpolytope.cube dim in
  let slice =
    Cqa_geom.Hpolytope.make dim
      [ { Cqa_geom.Hpolytope.normal = Array.init dim (fun i -> q (1 + (i mod 3)));
          offset = q dim } ]
  in
  Cqa_geom.Hpolytope.intersect cube slice

let p4 = e10_poly 4

let quadrant =
  Semilinear.of_conjunction dv2
    [ Linconstr.ge (Linexpr.var dv2.(0)) Linexpr.zero;
      Linconstr.ge (Linexpr.var dv2.(1)) Linexpr.zero ]

let boxes_union =
  let prng = Prng.create 33 in
  Semilinear.make dv2
    (List.init 3 (fun _ -> Generators.box_conjunction prng ~vars:dv2 ~lo:(-4) ~hi:4))

let density_formula =
  (* forall x y. x < y -> exists z. x < z < y *)
  let x = Var.of_string "x" and y = Var.of_string "y" and z = Var.of_string "z" in
  Formula.forall_many [ x; y ]
    (Formula.implies
       (Formula.Atom (Linconstr.lt (Linexpr.var x) (Linexpr.var y)))
       (Formula.Exists
          ( z,
            Formula.And
              ( Formula.Atom (Linconstr.lt (Linexpr.var x) (Linexpr.var z)),
                Formula.Atom (Linconstr.lt (Linexpr.var z) (Linexpr.var y)) ) )))

let lp_system =
  let x = Linexpr.var (Var.of_string "x") and y = Linexpr.var (Var.of_string "y") in
  let z = Linexpr.var (Var.of_string "z") in
  [ Linconstr.le (Linexpr.add (Linexpr.add x y) z) (Linexpr.const (q 10));
    Linconstr.le x (Linexpr.const (q 4));
    Linconstr.le y (Linexpr.const (q 5));
    Linconstr.ge x Linexpr.zero; Linconstr.ge y Linexpr.zero;
    Linconstr.ge z Linexpr.zero;
    Linconstr.le (Linexpr.sub y x) (Linexpr.const (q 2)) ]

let lp_objective =
  Linexpr.of_list Q.zero
    [ (q 3, Var.of_string "x"); (q 2, Var.of_string "y"); (Q.one, Var.of_string "z") ]

let big_a = Bigint.of_string (String.concat "" (List.init 8 (fun _ -> "123456789")))
let big_b = Bigint.of_string (String.concat "" (List.init 8 (fun _ -> "987654321")))

(* Arithmetic micro-bench pools: small operands fit the native fast path,
   big operands force the limb tier, mixed interleaves both. *)
let q_small_pool =
  Array.init 64 (fun i -> Q.of_ints ((i * 7) - 224) (1 + (i mod 9)))

let q_big_pool =
  Array.init 16 (fun i ->
      Q.make
        (Bigint.mul big_a (Bigint.of_int (2 * i + 1)))
        (Bigint.mul big_b (Bigint.of_int (i + 3))))

let q_mixed_pool =
  Array.init 64 (fun i ->
      if i mod 8 = 0 then q_big_pool.(i / 8 mod 16) else q_small_pool.(i))

let int_pool =
  Array.init 64 (fun i -> Bigint.of_int (((i * 92821) + 1) * ((i mod 11) + 1)))

let sturm_poly =
  (* (x^2-2)(x^2-3)(x-1) *)
  Cqa_poly.Upoly.mul
    (Cqa_poly.Upoly.mul
       (Cqa_poly.Upoly.of_int_coeffs [ -2; 0; 1 ])
       (Cqa_poly.Upoly.of_int_coeffs [ -3; 0; 1 ]))
    (Cqa_poly.Upoly.of_int_coeffs [ -1; 1 ])

let sqrt2 =
  List.nth (Cqa_poly.Algnum.roots_of (Cqa_poly.Upoly.of_int_coeffs [ -2; 0; 1 ])) 1

let sqrt3 =
  List.nth (Cqa_poly.Algnum.roots_of (Cqa_poly.Upoly.of_int_coeffs [ -3; 0; 1 ])) 1

let cells_a =
  Cell1.union (Cell1.closed_interval Q.zero Q.one) (Cell1.open_interval (q 2) (q 4))

let cells_b =
  Cell1.union (Cell1.point Q.half) (Cell1.closed_interval (q 3) (q 5))

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let stage = Staged.stage

let experiment_tests =
  [ Test.make ~name:"e1_blowup_bounds"
      (stage (fun () ->
           Bounds.km_formula_size ~eps:0.1 ~delta:0.25 ~vc_dim:4 ~m:2
             ~atoms_in_phi:20));
    Test.make ~name:"e2_ef_game_rank2"
      (stage (fun () ->
           let a, b = ef_pair in
           Ef_game.duplicator_wins 2 a b));
    Test.make ~name:"e3_trivial_approx"
      (stage (fun () -> Trivial_approx.trivial_approx s2));
    Test.make ~name:"e4_circuit_separation_n12"
      (stage (fun () ->
           Circuit.separates_cardinalities ~c1:(qq 1 3) ~c2:(qq 2 3) ~n:12
             circuit_12));
    Test.make ~name:"e5_volume_sweep_2d"
      (stage (fun () -> Volume_exact.volume_sweep s2));
    Test.make ~name:"e5_volume_incl_excl_2d"
      (stage (fun () -> Volume_exact.volume_incl_excl s2));
    Test.make ~name:"e5_volume_sweep_3d"
      (stage (fun () -> Volume_exact.volume_sweep s3));
    Test.make ~name:"e6_polygon_program_pentagon"
      (stage (fun () -> Eval.eval_term pentagon_db Var.Map.empty polygon_term));
    Test.make ~name:"e7_sample_estimate_1k"
      (stage (fun () ->
           Approx_volume.fraction_in sample_1k (fun pt ->
               Db.mem_tuple tri_db "P" pt)));
    Test.make ~name:"e8_vc_lower_bits4"
      (stage (fun () ->
           let ground = List.map (fun i -> [| q i |]) [ 0; 1; 2; 3 ] in
           let params = List.init 16 (fun a -> q a) in
           Definable_family.empirical_vc_dim ~params ~ground ~mem:(fun a pt ->
               Instance.mem prop5_inst prop5_rel [| a; pt.(0) |])));
    Test.make ~name:"e9_vc_upper_halflines_64"
      (stage (fun () ->
           let prng = Prng.create 11 in
           let ground = Generators.finite_set prng ~size:64 ~lo:0 ~hi:100 in
           let pts = List.map (fun v -> [| v |]) ground in
           Definable_family.empirical_vc_dim
             ~params:(List.map (fun v -> Q.add v Q.half) ground)
             ~ground:pts
             ~mem:(fun a pt -> Q.leq pt.(0) a)));
    Test.make ~name:"e10_exact_lasserre_dim4"
      (stage (fun () -> Cqa_geom.Lasserre.volume p4));
    Test.make ~name:"e10_monte_carlo_dim4_m500"
      (stage (fun () ->
           let prng = Prng.create 3 in
           let hits = ref 0 in
           for _ = 1 to 500 do
             let pt = Array.init 4 (fun _ -> Prng.q_unit prng) in
             if Cqa_geom.Hpolytope.contains p4 pt then incr hits
           done;
           !hits));
    Test.make ~name:"e11_mu_quadrant" (stage (fun () -> Mu.mu quadrant));
    Test.make ~name:"e12_varindep_grid_volume"
      (stage (fun () ->
           if Var_indep.is_variable_independent boxes_union then
             Var_indep.grid_volume boxes_union
           else Q.zero)) ]

(* Each micro test folds its whole pool so one "run" is a batch of pool-size
   operations; pool contents are opaque to the optimizer via the fold. *)
let fold_pairs pool f init =
  let n = Array.length pool in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc pool.(i) pool.((i + 1) mod n)
  done;
  !acc

let arith_micro_tests =
  [ Test.make ~name:"q_add_small_64"
      (stage (fun () -> fold_pairs q_small_pool (fun acc a b -> Q.add acc (Q.add a b)) Q.zero));
    Test.make ~name:"q_sub_small_64"
      (stage (fun () -> fold_pairs q_small_pool (fun acc a b -> Q.add acc (Q.sub a b)) Q.zero));
    Test.make ~name:"q_mul_small_64"
      (stage (fun () -> fold_pairs q_small_pool (fun acc a b -> Q.add acc (Q.mul a b)) Q.zero));
    Test.make ~name:"q_compare_small_64"
      (stage (fun () ->
           fold_pairs q_small_pool
             (fun acc a b -> if Q.compare a b < 0 then acc + 1 else acc)
             0));
    Test.make ~name:"q_add_mixed_64"
      (stage (fun () -> fold_pairs q_mixed_pool (fun acc a b -> Q.add acc (Q.add a b)) Q.zero));
    Test.make ~name:"q_mul_big_16"
      (stage (fun () ->
           fold_pairs q_big_pool (fun acc a b -> Q.add acc (Q.mul a b)) Q.zero));
    Test.make ~name:"bigint_add_small_64"
      (stage (fun () ->
           fold_pairs int_pool (fun acc a b -> Bigint.add acc (Bigint.add a b)) Bigint.zero));
    Test.make ~name:"bigint_mul_small_64"
      (stage (fun () ->
           fold_pairs int_pool (fun acc a b -> Bigint.add acc (Bigint.mul a b)) Bigint.zero));
    Test.make ~name:"bigint_gcd_small_64"
      (stage (fun () ->
           fold_pairs int_pool
             (fun acc a b -> Bigint.add acc (Bigint.gcd a b))
             Bigint.zero));
    Test.make ~name:"bigint_gcd_72digits"
      (stage (fun () -> Bigint.gcd (Bigint.mul big_a big_b) (Bigint.mul big_b big_b))) ]

(* Domain-parallel sampling estimator: same membership oracle and sample
   size across domain counts, so the ns/run ratios are the scaling curve. *)
let sampler_mem = Cqa_geom.Hpolytope.contains p4

let sampler_test domains =
  Test.make ~name:(Printf.sprintf "sampler_random_2k_dom%d" domains)
    (stage (fun () ->
         let prng = Prng.create 7 in
         Approx_volume.estimate_random ~domains ~prng ~dim:4 ~n:2000 sampler_mem))

let sampler_tests =
  [ sampler_test 1; sampler_test 2; sampler_test 4;
    Test.make ~name:"sampler_halton_1k_dom1"
      (stage (fun () -> Approx_volume.estimate_halton ~domains:1 ~dim:4 ~n:1000 sampler_mem));
    Test.make ~name:"sampler_halton_1k_dom4"
      (stage (fun () -> Approx_volume.estimate_halton ~domains:4 ~dim:4 ~n:1000 sampler_mem)) ]

let substrate_tests =
  [ Test.make ~name:"bigint_mul_72digits" (stage (fun () -> Bigint.mul big_a big_b));
    Test.make ~name:"fm_qe_density" (stage (fun () -> Fourier_motzkin.qe density_formula));
    Test.make ~name:"fm_sat_7atoms"
      (stage (fun () -> Fourier_motzkin.satisfiable_conj lp_system));
    Test.make ~name:"simplex_maximize_7x3"
      (stage (fun () -> Simplex.maximize ~objective:lp_objective ~constraints:lp_system));
    Test.make ~name:"cell1_union" (stage (fun () -> Cell1.union cells_a cells_b));
    Test.make ~name:"sturm_isolate_deg5"
      (stage (fun () -> Cqa_poly.Upoly.isolate_roots sturm_poly));
    Test.make ~name:"algnum_compare_sqrt2_sqrt3"
      (stage (fun () -> Cqa_poly.Algnum.compare sqrt2 sqrt3));
    Test.make ~name:"lasserre_cube_dim4"
      (stage (fun () -> Cqa_geom.Lasserre.volume (Cqa_geom.Hpolytope.cube 4)));
    Test.make ~name:"semilinear_membership"
      (stage (fun () -> Semilinear.mem s2 [| Q.half; Q.half |])) ]

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Collected (name, ns/run) pairs, emitted as JSON at exit so BENCH_*.json
   snapshots can be diffed across PRs. *)
let json_results : (string * float) list ref = ref []

(* BENCH_SMOKE=1 shrinks the per-test quota to a fraction of a second: the
   `make verify` smoke run only checks that every benchmark still executes
   and emits JSON, not that the numbers are stable. *)
let smoke =
  match Sys.getenv_opt "BENCH_SMOKE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let run_group ?(stabilize = true) name tests =
  Printf.printf "\n== %s ==\n%!" name;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  (* The full run stabilizes the GC before each test: without it a test
     inherits the heap the previous tests grew, which biased e.g. the
     thm3_*_dom4 estimates a few percent above their dom1 counterparts
     purely by run order.  The smoke run skips it to stay fast.
     ~stabilize:false opts a group out even in the full run: the serve
     benches keep a server domain alive in the background, so the live
     word count never settles and stabilization aborts the whole run. *)
  let cfg =
    if smoke then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.02) ~stabilize:false ()
    else
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize ()
  in
  let estimate test =
    let results = Benchmark.all cfg instances test in
    let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
    let out = ref [] in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> out := (name, Some est) :: !out
        | _ -> out := (name, None) :: !out)
      analyzed;
    !out
  in
  let emit (name, est) =
    match est with
    | Some est ->
        json_results := (name, est) :: !json_results;
        if est > 1e9 then Printf.printf "%-36s %10.3f s/run\n%!" name (est /. 1e9)
        else if est > 1e6 then
          Printf.printf "%-36s %10.3f ms/run\n%!" name (est /. 1e6)
        else if est > 1e3 then
          Printf.printf "%-36s %10.3f us/run\n%!" name (est /. 1e3)
        else Printf.printf "%-36s %10.1f ns/run\n%!" name est
    | None -> Printf.printf "%-36s (no estimate)\n%!" name
  in
  if smoke then List.iter (fun t -> List.iter emit (estimate t)) tests
  else begin
    (* ABBA: measure the group forward, then reversed, and average the two
       estimates per test.  Slow drift across the group (frequency scaling,
       allocator state) hits opposite ends of the two passes, so it cancels
       instead of systematically taxing whichever test runs last — the
       dom1/dom4 pairs of a group become directly comparable. *)
    let fwd = List.concat_map estimate tests in
    let rev = List.concat_map estimate (List.rev tests) in
    List.iter
      (fun (name, e1) ->
        let avg =
          match (e1, List.assoc_opt name rev) with
          | Some a, Some (Some b) -> Some ((a +. b) /. 2.)
          | _ -> e1
        in
        emit (name, avg))
      fwd
  end

let emit_json () =
  let path = try Sys.getenv "BENCH_JSON" with Not_found -> "BENCH.json" in
  let oc = open_out path in
  let entries = List.rev !json_results in
  output_string oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %.1f%s\n" name ns
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d entries)\n%!" path (List.length entries)

(* Ablations of the quantifier-elimination pipeline (cold cache each run):
   the DESIGN.md design-choice knobs, measured on the Section 5 vertex
   formula over the pentagon database. *)
let ablation_formula =
  let v1 = Var.of_string "v1" and v2 = Var.of_string "v2" in
  let f = Compile.vertex_formula ~rel:"P" v1 v2 in
  Eval.reduce_linear pentagon_db Var.Map.empty f

let with_knobs ~tightening ~elim_pruning ~absorption ~simplex_redundancy f =
  let o = Fourier_motzkin.optimizations in
  let saved =
    ( o.Fourier_motzkin.tightening,
      o.Fourier_motzkin.elim_pruning,
      o.Fourier_motzkin.absorption,
      o.Fourier_motzkin.simplex_redundancy )
  in
  o.Fourier_motzkin.tightening <- tightening;
  o.Fourier_motzkin.elim_pruning <- elim_pruning;
  o.Fourier_motzkin.absorption <- absorption;
  o.Fourier_motzkin.simplex_redundancy <- simplex_redundancy;
  Fun.protect
    ~finally:(fun () ->
      let t, p, a, r = saved in
      o.Fourier_motzkin.tightening <- t;
      o.Fourier_motzkin.elim_pruning <- p;
      o.Fourier_motzkin.absorption <- a;
      o.Fourier_motzkin.simplex_redundancy <- r)
    f

let ablation_tests =
  let run ~simplex_redundancy ~tightening ~elim_pruning ~absorption () =
    with_knobs ~tightening ~elim_pruning ~absorption ~simplex_redundancy (fun () ->
        Fourier_motzkin.clear_qe_cache ();
        Fourier_motzkin.qe ablation_formula)
  in
  let std = run ~simplex_redundancy:false in
  [ Test.make ~name:"qe_vertex_all_optimizations"
      (stage (std ~tightening:true ~elim_pruning:true ~absorption:true));
    Test.make ~name:"qe_vertex_no_tightening"
      (stage (std ~tightening:false ~elim_pruning:true ~absorption:true));
    Test.make ~name:"qe_vertex_no_elim_pruning"
      (stage (std ~tightening:true ~elim_pruning:false ~absorption:true));
    Test.make ~name:"qe_vertex_no_absorption"
      (stage (std ~tightening:true ~elim_pruning:true ~absorption:false));
    Test.make ~name:"qe_vertex_simplex_redundancy"
      (stage
         (run ~simplex_redundancy:true ~tightening:true ~elim_pruning:true
            ~absorption:true)) ]

(* Theorem 3 exact-volume engine: the domain-scaling curve of the sweep, the
   incremental vertex enumeration, and the cold-cache end-to-end pipeline
   (QE memo + satisfiability memo cleared each run). *)
let volume_domain_test domains =
  Test.make ~name:(Printf.sprintf "thm3_volume_sweep_3d_dom%d" domains)
    (stage (fun () -> Volume_exact.volume_sweep ~domains s3))

let exact_volume_tests =
  [ volume_domain_test 1; volume_domain_test 2; volume_domain_test 4;
    Test.make ~name:"thm3_vertex_enum_3d"
      (stage (fun () -> Volume_exact.arrangement_vertices s3));
    Test.make ~name:"thm3_incl_excl_2d_dom1"
      (stage (fun () -> Volume_exact.volume_incl_excl ~domains:1 s2));
    Test.make ~name:"thm3_incl_excl_2d_dom4"
      (stage (fun () -> Volume_exact.volume_incl_excl ~domains:4 s2));
    Test.make ~name:"thm3_end_to_end_cold_3d"
      (stage (fun () ->
           Fourier_motzkin.clear_qe_cache ();
           Volume_exact.volume_sweep s3));
    Test.make ~name:"thm3_section_function_3d"
      (stage (fun () -> Volume_param.section_volume_function s3)) ]

(* Persistent-pool fan-out with the adaptive cutoff bypassed (mode
   Always): the cost of actually dispatching chunks to pool workers, to
   compare against the dom4 rows above, which the cutoff now runs
   sequentially whenever the fan-out cannot pay.  The pool is warmed
   outside the timed region, so iterations measure reuse, not spawning —
   pool.domains.spawned stays constant across them. *)
let with_pool_always f =
  Pool.set_mode Pool.Always;
  Fun.protect ~finally:(fun () -> Pool.set_mode Pool.Auto) f

let pool_tests =
  [ Test.make ~name:"pool_sweep_3d_dom4"
      (stage (fun () ->
           with_pool_always (fun () -> Volume_exact.volume_sweep ~domains:4 s3)));
    Test.make ~name:"pool_sampler_random_2k_dom4"
      (stage (fun () ->
           with_pool_always (fun () ->
               let prng = Prng.create 7 in
               Approx_volume.estimate_random ~domains:4 ~prng ~dim:4 ~n:2000
                 sampler_mem))) ]

(* ------------------------------------------------------------------ *)
(* Telemetry counter deltas                                            *)
(* ------------------------------------------------------------------ *)

module Telemetry = Cqa_telemetry.Telemetry

(* The Section 3 blowup query (examples/queries/bad_qe_blowup.cq), inlined
   so the harness does not depend on the working directory. *)
let blowup_src =
  "exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . \
   (u < x1 /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < v \
   /\\ 0 <= x1 /\\ x5 <= 1)"

(* One untimed single-shot run per representative workload, with telemetry
   enabled: the counter deltas land in BENCH.json next to the timings as
   "ctr:<workload>:<counter>" keys (nonzero counters only).  Telemetry stays
   disabled during the bechamel timed runs above so the instrumentation
   never skews a timing; caches are cleared up front so the deltas are
   independent of whatever the benchmark groups did before; only
   single-domain workloads are used, so every delta is deterministic
   (including the memo hit/miss splits). *)
let cold_caches () =
  Fourier_motzkin.clear_qe_cache ();
  Flatrow.clear_cache ();
  Semilinear.clear_bbox_cache ();
  Simplex.clear_basis_cache ();
  Plan.clear_cache ();
  Cqa_analysis.Rewrite.clear_memo ()

(* ------------------------------------------------------------------ *)
(* Numeric kernel ablation: float filter on vs off                     *)
(* ------------------------------------------------------------------ *)

(* The float-filtered kernel is certified byte-identical to the exact
   one, so its only observable is speed: these rows measure the same
   cold workloads under both kernels.  The bench binary pins the kernel
   itself (see the driver) rather than inheriting CQA_KERNEL, so the
   committed BENCH.json baseline means the same thing on every CI leg;
   the ablation rows flip the switch inside the timed closure. *)
let kernel_test name kernel job =
  Test.make ~name
    (stage (fun () ->
         Flatrow.set_kernel kernel;
         Fun.protect ~finally:(fun () -> Flatrow.set_kernel true) job))

let kernel_tests =
  let qe_cold () =
    cold_caches ();
    ignore (Fourier_motzkin.qe ablation_formula)
  in
  let fm_sat_cold () =
    cold_caches ();
    ignore (Fourier_motzkin.satisfiable_conj lp_system)
  in
  let sweep_cold () =
    cold_caches ();
    ignore (Volume_exact.volume_sweep s3)
  in
  let qe_density_cold () =
    cold_caches ();
    ignore (Fourier_motzkin.qe density_formula)
  in
  let polygon_cold () =
    cold_caches ();
    ignore (Eval.eval_term pentagon_db Var.Map.empty polygon_term)
  in
  [ kernel_test "kernel_qe_vertex_filtered" true qe_cold;
    kernel_test "kernel_qe_vertex_exact" false qe_cold;
    kernel_test "kernel_polygon_cold_filtered" true polygon_cold;
    kernel_test "kernel_polygon_cold_exact" false polygon_cold;
    kernel_test "kernel_qe_density_filtered" true qe_density_cold;
    kernel_test "kernel_qe_density_exact" false qe_density_cold;
    kernel_test "kernel_fm_sat_cold_filtered" true fm_sat_cold;
    kernel_test "kernel_fm_sat_cold_exact" false fm_sat_cold;
    kernel_test "kernel_sweep_3d_filtered" true sweep_cold;
    kernel_test "kernel_sweep_3d_exact" false sweep_cold ]

(* ------------------------------------------------------------------ *)
(* Compiled plans: compile cost, cold vs warm re-execution             *)
(* ------------------------------------------------------------------ *)

(* The param_sweep.cq shape (inlined, like blowup_src): one parameter slot
   u over coordinates (y1, y2); the section volume is the Lemma 5
   piecewise polynomial (1 - u^2) / 2 on [0, 1]. *)
let param_sweep_src = "0 <= u /\\ u < y1 /\\ y1 < 1 /\\ 0 <= y2 /\\ y2 <= y1"
let plan_formula = Parser.formula_of_string param_sweep_src
let plan_coords = [| Var.of_string "y1"; Var.of_string "y2" |]
let plan_params = [| Var.of_string "u" |]
let plan_db = Db.empty Schema.empty

let plan_compile () =
  Cqa_analysis.Planner.compile ~db:plan_db ~params:plan_params
    ~coords:plan_coords plan_formula

(* Interior, non-breakpoint parameter values (odd multiples of 1/37, all
   strictly inside (0, 1)): the warm path stays on the compiled
   piecewise-polynomial evaluation, never the breakpoint slow path. *)
let plan_param_values = Array.init 16 (fun i -> [| qq ((2 * i) + 1) 37 |])

let plan_warm_idx = ref 0

let plan_tests =
  (* warm fixture: plan compiled and first-executed outside the timed
     region, so iterations measure cache-hit compile + memoized execution *)
  let warm_plan = plan_compile () in
  ignore (Exec.volume_at warm_plan plan_db plan_param_values.(0));
  [ Test.make ~name:"plan_compile_sweep_cold"
      (stage (fun () ->
           Plan.clear_cache ();
           Cqa_analysis.Rewrite.clear_memo ();
           plan_compile ()));
    Test.make ~name:"plan_compile_sweep_hit"
      (stage (fun () -> plan_compile ()));
    Test.make ~name:"plan_exec_cold_sweep"
      (stage (fun () ->
           cold_caches ();
           let p = plan_compile () in
           Exec.volume_at p plan_db plan_param_values.(0)));
    Test.make ~name:"plan_exec_warm_sweep"
      (stage (fun () ->
           let p = plan_compile () in
           let i = !plan_warm_idx in
           plan_warm_idx := (i + 1) mod Array.length plan_param_values;
           Exec.volume_at p plan_db plan_param_values.(i))) ]

(* ------------------------------------------------------------------ *)
(* Incremental maintenance: small-delta updates vs full recompute      *)
(* ------------------------------------------------------------------ *)

(* One "update session" per iteration, always from the same initial
   state: a fresh database seeded with a fixed 3-d semilinear relation
   (three generated polytopes in [-5, 5]^3), one warming query, then four
   small corner-box inserts each followed by a query.  The incremental
   rows answer the post-update queries through the executor's delta-slab
   refresh (only pieces meeting the delta's last-axis slab recompute —
   each box dirties a 1/16-wide slab of a 10-wide parameter range); the
   recompute row resets the plan's execution states before each query,
   forcing the full Theorem 3 sweep the maintenance machinery exists to
   avoid.  The unclamped volume is queried so the maintained piece list
   is the base set's own (clamping to the unit cube would empty the
   generated base and leave nothing to maintain).  Fresh-database
   sessions keep iterations identical — repeated in-place edits on one
   database would grow its DNF across iterations and skew the
   estimates. *)
let update_schema = Schema.of_list [ ("R", 3) ]

let update_base =
  let prng = Prng.create 103 in
  Generators.semilinear prng ~dim:3 ~disjuncts:3

let update_boxes =
  Array.init 4 (fun k ->
      let lo = qq k 16 and hi = qq (k + 1) 16 in
      Semilinear.box [| (lo, hi); (lo, hi); (lo, hi) |])

let update_plan =
  let vx = Var.of_string "x" and vy = Var.of_string "y" in
  let vz = Var.of_string "z" in
  Cqa_analysis.Planner.compile
    ~db:(Db.empty update_schema)
    ~coords:[| vx; vy; vz |]
    (Ast.Rel ("R", [ vx; vy; vz ]))

let update_session ~domains ~recompute =
  let db = Db.empty update_schema in
  ignore (Db.apply_update db (Db.Insert ("R", update_base)));
  let v = ref (Exec.volume ~domains update_plan db) in
  Array.iter
    (fun b ->
      ignore (Db.apply_update db (Db.Insert ("R", b)));
      if recompute then Plan.reset_states update_plan;
      v := Exec.volume ~domains update_plan db)
    update_boxes;
  !v

let update_tests () =
  (* fixture sanity: the incremental session and the recompute session
     must end on the same exact answer, or the ratio below is vacuous *)
  let vi = update_session ~domains:1 ~recompute:false in
  let vr = update_session ~domains:1 ~recompute:true in
  if not (Q.equal vi vr) then
    failwith "update bench fixture: incremental and recompute answers differ";
  [ Test.make ~name:"update_small_delta_dom1"
      (stage (fun () -> update_session ~domains:1 ~recompute:false));
    Test.make ~name:"update_small_delta_dom4"
      (stage (fun () -> update_session ~domains:4 ~recompute:false));
    Test.make ~name:"update_vs_recompute"
      (stage (fun () -> update_session ~domains:1 ~recompute:true)) ]

(* ------------------------------------------------------------------ *)
(* Certified rewriting: rule fixpoint, memo, equivalence, cache wins   *)
(* ------------------------------------------------------------------ *)

module Rw = Cqa_analysis.Rewrite
module Eqv = Cqa_analysis.Equiv

(* A respelled param_sweep_src: conjuncts reordered, one atom scaled, a
   tautological conjunct appended.  The rewriter must send it to the same
   normal form as param_sweep_src — asserted at fixture time below — so
   compiling it against a warm plan cache is a pure cache hit. *)
let spelled_src =
  "y2 <= y1 /\\ 0 <= 2 * y2 /\\ u < y1 /\\ 0 <= u /\\ y1 < 1 /\\ 1 < 2"

let spelled_formula = Parser.formula_of_string spelled_src

(* A padded unit square: a tautological disjunct ([1 < 2] folds to true)
   shields a quantified order chain that is pure dead weight — but a raw
   compile cannot know that, so the engine pays three Fourier-Motzkin
   eliminations and a doubled sweep for it.  Rewriting strips the query to
   the bare square, so the raw-vs-rewritten execution pair below isolates
   what dead structure costs the exact engine. *)
let padded_src =
  "0 <= y1 /\\ y1 <= 1 /\\ 0 <= y2 /\\ y2 <= 1 /\\ \
   (1 < 2 \\/ exists x1 . exists x2 . exists x3 . exists x4 . exists x5 . \
   exists x6 . exists x7 . exists x8 . exists x9 . \
   (y1 < x1 /\\ x1 < x2 /\\ x2 < x3 /\\ x3 < x4 /\\ x4 < x5 /\\ x5 < x6 \
   /\\ x6 < x7 /\\ x7 < x8 /\\ x8 < x9 /\\ x9 < y2 /\\ 0 <= x1 \
   /\\ x9 <= 1))"

let padded_formula = Parser.formula_of_string padded_src

(* A perturbed sweep (upper bound moved): semantically distinct from
   param_sweep_src, so Equiv must produce a separating witness. *)
let perturbed_src = "0 <= u /\\ u < y1 /\\ y1 < 2 /\\ 0 <= y2 /\\ y2 <= y1"
let perturbed_formula = Parser.formula_of_string perturbed_src

let plan_compile_spelled () =
  Cqa_analysis.Planner.compile ~db:plan_db ~params:plan_params
    ~coords:plan_coords spelled_formula

let rewrite_tests () =
  (* fixture sanity: the spelling really does share the sweep's plan, and
     the padded square really does collapse — otherwise the "hit" and
     "win" rows below would silently measure something else *)
  cold_caches ();
  let p1 = plan_compile () in
  let p2 = plan_compile_spelled () in
  if Plan.id p1 <> Plan.id p2 then
    failwith "rewrite bench fixture: spellings do not share a plan";
  (let r = Rw.rewrite padded_formula in
   if r.Rw.atoms_after >= r.Rw.atoms_before then
     failwith "rewrite bench fixture: padded query did not shrink");
  ignore (Rw.formula plan_formula);
  [ (* the full rule fixpoint, no memo: the price of one cache-miss
       normalization *)
    Test.make ~name:"rewrite_fixpoint_sweep"
      (stage (fun () -> Rw.rewrite plan_formula));
    Test.make ~name:"rewrite_fixpoint_padded"
      (stage (fun () -> Rw.rewrite padded_formula));
    (* the certified mode: every fired rule re-checked by Equiv *)
    Test.make ~name:"rewrite_verified_sweep"
      (stage (fun () ->
           Fourier_motzkin.clear_qe_cache ();
           Rw.rewrite ~verify:true plan_formula));
    (* the per-lookup price a warm plan-cache hit actually pays *)
    Test.make ~name:"rewrite_memo_hit"
      (stage (fun () -> Rw.formula plan_formula));
    (* equivalence decision, cold QE cache each round *)
    Test.make ~name:"equiv_spellings_equal"
      (stage (fun () ->
           Fourier_motzkin.clear_qe_cache ();
           match Eqv.check plan_formula spelled_formula with
           | Eqv.Equal -> ()
           | _ -> failwith "equiv bench: spellings not Equal"));
    Test.make ~name:"equiv_perturbed_distinct"
      (stage (fun () ->
           Fourier_motzkin.clear_qe_cache ();
           match Eqv.check plan_formula perturbed_formula with
           | Eqv.Distinct _ -> ()
           | _ -> failwith "equiv bench: perturbation not Distinct"));
    (* win #1: a respelled query against a warm cache is a hit (compare
       plan_compile_sweep_cold — without the rewrite pass this spelling
       would miss and recompile) *)
    Test.make ~name:"plan_compile_spelled_hit"
      (stage (fun () -> plan_compile_spelled ()));
    (* win #2: executing the padded square raw (plan compiled without the
       rewrite pass, quantifiers and dead atoms reach the engine) vs
       through the planner's rewritten plan *)
    Test.make ~name:"plan_exec_padded_raw_cold"
      (stage (fun () ->
           cold_caches ();
           let p = Plan.compile padded_formula in
           Exec.volume p plan_db));
    Test.make ~name:"plan_exec_padded_rw_cold"
      (stage (fun () ->
           cold_caches ();
           let p = Cqa_analysis.Planner.compile ~db:plan_db padded_formula in
           Exec.volume p plan_db)) ]

(* ------------------------------------------------------------------ *)
(* Query service: sustained throughput, closed-loop clients            *)
(* ------------------------------------------------------------------ *)

module Server = Cqa_serve.Server
module Sclient = Cqa_serve.Client
module Sproto = Cqa_serve.Protocol
module Tj = Cqa_telemetry.Tjson

(* The repeated-shape serving workload: one plan with two parameter
   slots, per-binding work on the sectioning slow path (VOL over (y1, y2)
   is (v^2 - u^2)/2), fresh bindings per flush cycle so every cycle does
   real engine work instead of replaying a memo. *)
let serve_q = "u < y1 /\\ y1 < v /\\ 0 <= y2 /\\ y2 <= y1 /\\ 0 <= y1"

let serve_plan_req =
  Printf.sprintf {|{"op":"plan","query":%s,"params":["u","v"]}|}
    (Sproto.json_string serve_q)

let serve_binding_ctr = ref 0

let serve_binding () =
  let k = 1 + (!serve_binding_ctr mod 499) in
  incr serve_binding_ctr;
  (Printf.sprintf "%d/1009" k, Printf.sprintf "%d/1009" (k + 500))

let serve_sock_ctr = ref 0

let serve_sock () =
  incr serve_sock_ctr;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "cqa-bench-serve-%d-%d.sock" (Unix.getpid ())
       !serve_sock_ctr)

let serve_handles : Server.handle list ref = ref []

let stop_serve_fixtures () =
  List.iter Server.stop_background !serve_handles;
  serve_handles := []

let serve_plan_id_of resp =
  match
    Result.to_option (Tj.parse resp)
    |> Fun.flip Option.bind (Tj.member "plan")
    |> Fun.flip Option.bind Tj.to_float
  with
  | Some f -> int_of_float f
  | None -> failwith ("serve bench: plan registration failed: " ^ resp)

(* One server + a lockstep client population, started outside the timed
   region.  Every bench run serves the same TOTAL number of requests (8),
   split as [conns] concurrent clients x [cycles] rounds, so the ns/run
   numbers of dom1/dom2/dom4 are directly comparable per-request
   throughputs.  Within a cycle all clients request the same binding —
   the thundering-herd shape — so the batcher coalesces each cycle to one
   engine computation; across cycles bindings advance. *)
let serve_total_requests = 8

let serve_fixture ~domains ~conns =
  let cfg =
    {
      (Server.default_config (Server.Unix_path (serve_sock ()))) with
      Server.domains;
      window_us = 2000.;
    }
  in
  let h = Server.start_background cfg in
  serve_handles := h :: !serve_handles;
  let c0 = Sclient.connect (Server.addr_of h) in
  let pid = serve_plan_id_of (Sclient.request c0 serve_plan_req) in
  Sclient.close c0;
  let cs = Array.init conns (fun _ -> Sclient.connect (Server.addr_of h)) in
  (cs, pid)

let serve_closed_loop cs pid =
  let conns = Array.length cs in
  let cycles = serve_total_requests / conns in
  let bindings = Array.init cycles (fun _ -> serve_binding ()) in
  let out =
    Sclient.closed_loop ~conns:cs ~cycles (fun ~cycle ~conn:_ ->
        let u, v = bindings.(cycle) in
        Printf.sprintf {|{"op":"vol","plan":%d,"args":["%s","%s"]}|} pid u v)
  in
  (* a failed response would silently turn the bench into an error loop *)
  Array.iter
    (fun r ->
      if not (String.length r >= 10 && String.sub r 0 10 = {|{"ok":true|})
      then failwith ("serve bench: request failed: " ^ r))
    out

let serve_warm_test ~domains ~conns =
  let cs, pid = serve_fixture ~domains ~conns in
  Test.make ~name:(Printf.sprintf "serve_qps_warm_dom%d" domains)
    (stage (fun () -> serve_closed_loop cs pid))

let serve_tests () =
  let warm1 = serve_warm_test ~domains:1 ~conns:1 in
  let warm2 = serve_warm_test ~domains:2 ~conns:2 in
  let warm4 = serve_warm_test ~domains:4 ~conns:4 in
  (* cold: one client, plan cache and engine memos dropped server-side
     before each run, requests by query text — the first request of every
     run recompiles the plan, the remaining seven hit the refilled
     cache. *)
  let cold_cs, _ = serve_fixture ~domains:1 ~conns:1 in
  let cold_req () =
    let u, v = serve_binding () in
    Printf.sprintf
      {|{"op":"vol","query":%s,"params":["u","v"],"args":["%s","%s"]}|}
      (Sproto.json_string serve_q) u v
  in
  let cold =
    Test.make ~name:"serve_qps_cold_dom1"
      (stage (fun () ->
           let c = cold_cs.(0) in
           ignore (Sclient.request c {|{"op":"reset"}|});
           for _ = 1 to serve_total_requests do
             let r = Sclient.request c (cold_req ()) in
             if not (String.length r >= 10 && String.sub r 0 10 = {|{"ok":true|})
             then failwith ("serve bench: request failed: " ^ r)
           done))
  in
  (* protocol floor: ping round trips, no engine work *)
  let ping_cs, _ = serve_fixture ~domains:1 ~conns:1 in
  let ping =
    Test.make ~name:"serve_ping_dom1"
      (stage (fun () ->
           for _ = 1 to serve_total_requests do
             ignore (Sclient.request ping_cs.(0) {|{"op":"ping"}|})
           done))
  in
  [ warm1; warm2; warm4; cold; ping ]

let counter_workloads =
  [ ("thm3_sweep_3d",
     fun () ->
       cold_caches ();
       ignore (Volume_exact.volume_sweep s3));
    ("qe_vertex",
     fun () ->
       cold_caches ();
       ignore (Fourier_motzkin.qe ablation_formula));
    ("kernel",
     fun () ->
       (* one cold QE + one cold satisfiability under the filtered
          kernel, plus a probe past the filter's 16-variable cap: the
          fm.filter.sure / fm.filter.fallback deltas pin the filter's
          hit rate (and a non-zero fallback count) in BENCH.json
          alongside the timing rows *)
       cold_caches ();
       ignore (Fourier_motzkin.qe ablation_formula);
       ignore (Fourier_motzkin.satisfiable_conj lp_system);
       let wide =
         List.init 17 (fun i ->
             Linconstr.ge
               (Linexpr.var (Var.of_string (Printf.sprintf "w%d" i)))
               Linexpr.zero)
       in
       ignore (Fourier_motzkin.satisfiable_conj wide));
    ("e7_sample_1k",
     fun () ->
       ignore
         (Approx_volume.fraction_in sample_1k (fun pt ->
              Db.mem_tuple tri_db "P" pt)));
    ("guarded_fallback",
     fun () ->
       cold_caches ();
       let f = Parser.formula_of_string blowup_src in
       let coords = Array.of_list (Var.Set.elements (Ast.free_vars f)) in
       let db = Db.empty Schema.empty in
       ignore (Volume_exact.volume_guarded ~budget:1e6 db coords f));
    ("serve",
     fun () ->
       (* one deterministic single-client session against a fresh server:
          plan registration, cold and warm parameterized volumes, a
          vol_batch, a ping, then shutdown — every serve.* delta is a pure
          function of this scripted traffic *)
       cold_caches ();
       let cfg = Server.default_config (Server.Unix_path (serve_sock ())) in
       let h = Server.start_background cfg in
       Fun.protect ~finally:(fun () -> Server.stop_background h) @@ fun () ->
       let c = Sclient.connect (Server.addr_of h) in
       Fun.protect ~finally:(fun () -> Sclient.close c) @@ fun () ->
       let pid = serve_plan_id_of (Sclient.request c serve_plan_req) in
       let vol u v =
         ignore
           (Sclient.request c
              (Printf.sprintf
                 {|{"op":"vol","plan":%d,"args":["%s","%s"]}|} pid u v))
       in
       vol "1/8" "7/8";
       vol "1/8" "7/8";
       vol "1/4" "3/4";
       ignore
         (Sclient.request c
            (Printf.sprintf
               {|{"op":"vol_batch","plan":%d,"bindings":[["0","1"],["1/8","1"]]}|}
               pid));
       ignore (Sclient.request c {|{"op":"ping"}|}));
    ("rewrite",
     fun () ->
       (* deterministic rewrite traffic: a cold padded compile (rules fire,
          atoms eliminated), the sweep and its respelling sharing one plan
          (one miss + one hit), and a certified run whose Equiv checks tick
          the plan.equiv.* counters *)
       cold_caches ();
       ignore (Cqa_analysis.Planner.compile ~db:plan_db padded_formula);
       ignore (plan_compile ());
       ignore (plan_compile_spelled ());
       ignore (Rw.rewrite ~verify:true ~db:plan_db spelled_formula));
    ("update",
     fun () ->
       (* deterministic update traffic against a fresh database: seed
          insert, warm query, a localized insert and a localized remove
          each followed by a query, an untouched-region no-op, and a
          stale-free requery — ticks db.update.* and the executor's
          exec.invalidate.* / exec.reuse.* maintenance counters *)
       cold_caches ();
       let db = Db.empty update_schema in
       ignore (Db.apply_update db (Db.Insert ("R", update_base)));
       ignore (Exec.volume update_plan db);
       ignore (Db.apply_update db (Db.Insert ("R", update_boxes.(0))));
       ignore (Exec.volume update_plan db);
       ignore (Db.apply_update db (Db.Remove ("R", update_boxes.(1))));
       ignore (Exec.volume update_plan db);
       ignore
         (Db.apply_update db
            (Db.Remove ("R", Semilinear.empty 3)));
       ignore (Exec.volume update_plan db));
    ("plan",
     fun () ->
       cold_caches ();
       (* one cold compile + execution, one warm re-execution: exercises
          plan.cache.miss/hit, plan.state.*, plan.param.fast and the
          compile probes in a single deterministic-shape run (the
          plan.compile_ns value itself is wall-clock, hence allowlisted
          in bench_check) *)
       let p = plan_compile () in
       ignore (Exec.volume_at p plan_db plan_param_values.(0));
       let p' = plan_compile () in
       ignore (Exec.volume_at p' plan_db plan_param_values.(1))) ]

let run_counter_deltas () =
  Printf.printf "\n== telemetry counter deltas ==\n%!";
  Telemetry.enable ();
  List.iter
    (fun (wname, job) ->
      Telemetry.reset ();
      let before = Telemetry.snapshot () in
      job ();
      let d = Telemetry.diff ~before ~after:(Telemetry.snapshot ()) in
      List.iter
        (fun (cname, v) ->
          if v <> 0 then begin
            json_results :=
              (Printf.sprintf "ctr:%s:%s" wname cname, float_of_int v)
              :: !json_results;
            Printf.printf "%-52s %10d\n%!" (wname ^ ":" ^ cname) v
          end)
        d.Telemetry.counters)
    counter_workloads;
  Telemetry.disable ()

let () =
  Printf.printf "cqa benchmark harness (bechamel)\n";
  (* Pin the numeric kernel: baseline numbers are recorded filtered, and
     the kernel_* ablation rows flip the switch per run — inheriting
     CQA_KERNEL here would silently change what every other key
     measures (the CI leg that exports CQA_KERNEL=exact still bench-gates
     against the same filtered baseline). *)
  Flatrow.set_kernel true;
  run_group "arithmetic kernels" arith_micro_tests;
  run_group "parallel sampler" sampler_tests;
  run_group "experiments (one per table/figure)" experiment_tests;
  run_group "substrates" substrate_tests;
  run_group "exact volume engine (Theorem 3)" exact_volume_tests;
  Pool.ensure_workers 3;
  run_group "persistent pool (cutoff bypassed)" pool_tests;
  run_group "ablations (QE design choices, cold cache)" ablation_tests;
  run_group "numeric kernel (float filter on/off, cold cache)" kernel_tests;
  run_group "compiled plans (cache + batched re-execution)" plan_tests;
  run_group "incremental maintenance (small-delta updates)" (update_tests ());
  run_group "certified rewriting (rules, equivalence, cache wins)"
    (rewrite_tests ());
  run_group ~stabilize:false "query service (closed-loop clients)"
    (serve_tests ());
  stop_serve_fixtures ();
  run_counter_deltas ();
  emit_json ()
