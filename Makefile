.PHONY: all build test bench bench-smoke bench-check serve-smoke verify lint fuzz fmt fmt-check clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting: the style is pinned by .ocamlformat; `fmt` rewrites the
# tree in place, `fmt-check` only diffs (the advisory CI job).  Both need
# the pinned ocamlformat binary on PATH.
fmt:
	dune build @fmt --auto-promote

fmt-check:
	dune build @fmt

# Long metamorphic fuzz run (the nightly CI job): random FO+LIN queries
# cross-checking the certified rewriter against the Equiv decision
# procedure and the volume engines against each other.  `dune runtest`
# runs the same properties at the fast default count.
FUZZ_COUNT ?= 2000

fuzz:
	dune build test/test_fuzz.exe
	CQA_FUZZ_COUNT=$(FUZZ_COUNT) ./_build/default/test/test_fuzz.exe

# Full benchmark sweep; rewrites BENCH.json (slow).  BENCH_JSON is pinned
# so an inherited environment value can never make bench and bench-smoke
# race each other onto the same output file.
bench:
	BENCH_SMOKE= BENCH_JSON=BENCH.json dune exec bench/main.exe

# Fraction-of-a-second quota per benchmark: checks every benchmark still
# runs and emits JSON, without disturbing the committed BENCH.json.
bench-smoke:
	BENCH_SMOKE=1 BENCH_JSON=BENCH_smoke.json dune exec bench/main.exe

# Bench-regression gate: the fresh smoke run must cover every benchmark
# key of the committed BENCH.json (fails on dropped/renamed benchmarks,
# warns on new ones until `make bench` regenerates the baseline) and the
# per-key candidate/baseline ratio must stay under the fail threshold.
# BENCH_ratio.txt holds the full per-key table for CI artifact upload.
bench-check: bench-smoke
	dune build bin/bench_check.exe
	./_build/default/bin/bench_check.exe BENCH.json BENCH_smoke.json \
	  --report BENCH_ratio.txt

# Static-analysis gate: the built-in workload corpus and every good_*.cq
# example must analyze without errors; every bad_*.cq example must trip a
# diagnostic under --deny-warnings (each seeds a distinct failure).  The
# binary is built once and invoked directly: `dune exec` per query file
# re-entered the build system a dozen times for no work.
CQA := ./_build/default/bin/cqa.exe

lint:
	dune build bin/cqa.exe
	$(CQA) analyze --corpus --verify-rewrites > /dev/null
	@set -e; for f in examples/queries/good_*.cq; do \
	  echo "lint $$f"; \
	  $(CQA) analyze --file $$f --verify-rewrites > /dev/null; \
	done
	@set -e; for f in examples/queries/bad_*.cq; do \
	  echo "lint $$f (expect diagnostics)"; \
	  if $(CQA) analyze --deny-warnings --file $$f > /dev/null 2>&1; \
	  then echo "FAIL: expected diagnostics in $$f"; exit 1; fi; \
	done
	@set -e; for f in examples/queries/param_*.cq; do \
	  echo "lint $$f"; \
	  $(CQA) analyze --file $$f --verify-rewrites > /dev/null; \
	  $(CQA) plan --file $$f > /dev/null; \
	done
	@echo "lint OK"

# End-to-end service smoke: boot the daemon on a throwaway Unix socket,
# drive a scripted client workload through it (ping, parameterized plan
# compilation, text / parameterized / batched volumes, stats), stop it
# with a shutdown request, then assert the server exited cleanly and its
# --stats=json report actually counted the traffic (serve.req > 0).
# The server's --stats=json report goes to serve_smoke.log, which is
# kept on failure (CI uploads it as an artifact and tails it into the
# job summary) and removed on success.
serve-smoke:
	dune build bin/cqa.exe
	@set -e; \
	sock=/tmp/cqa-serve-smoke.$$$$.sock; out=serve_smoke.log; \
	rm -f $$sock $$out; \
	$(CQA) serve --socket $$sock --stats=json > $$out & srv=$$!; \
	$(CQA) client --socket $$sock --wait 5000 \
	  '{"op":"ping","id":1}' \
	  '{"op":"plan","id":2,"query":"u < y1 /\\ y1 < v /\\ 0 <= y2 /\\ y2 <= y1 /\\ 0 <= y1","params":["u","v"]}' \
	  '{"op":"vol","id":3,"query":"0 <= y1 /\\ y1 <= 1 /\\ 0 <= y2 /\\ y2 <= y1"}' \
	  '{"op":"vol","id":4,"query":"u < y1 /\\ y1 < v /\\ 0 <= y2 /\\ y2 <= y1 /\\ 0 <= y1","params":["u","v"],"args":["0","1"]}' \
	  '{"op":"vol_batch","id":5,"query":"u < y1 /\\ y1 < v /\\ 0 <= y2 /\\ y2 <= y1 /\\ 0 <= y1","params":["u","v"],"bindings":[["0","1"],["1/8","1"]]}' \
	  '{"op":"stats","id":6}' \
	  '{"op":"shutdown","id":7}' \
	  > /dev/null; \
	status=0; wait $$srv || status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "serve-smoke: server exited with status $$status"; cat $$out; exit 1; \
	fi; \
	reqs=$$(grep -o '"serve.req":[0-9]*' $$out | head -1 | cut -d: -f2); \
	if [ -z "$$reqs" ] || [ "$$reqs" -eq 0 ]; then \
	  echo "serve-smoke: serve.req missing or zero in server stats"; \
	  cat $$out; exit 1; \
	fi; \
	echo "serve-smoke OK ($$reqs requests served)"; \
	rm -f $$out $$sock

# The tier-1 gate: build, test suite, benchmark smoke run + key-set
# gate, and the end-to-end query-service smoke.
verify: build test bench-check serve-smoke

clean:
	dune clean
	rm -f BENCH_smoke.json BENCH_ratio.txt serve_smoke.log
