.PHONY: all build test bench bench-smoke verify lint clean

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark sweep; rewrites BENCH.json (slow).
bench:
	dune exec bench/main.exe

# Fraction-of-a-second quota per benchmark: checks every benchmark still
# runs and emits JSON, without disturbing the committed BENCH.json.
bench-smoke:
	BENCH_SMOKE=1 BENCH_JSON=BENCH_smoke.json dune exec bench/main.exe

# Static-analysis gate: the built-in workload corpus and every good_*.cq
# example must analyze without errors; every bad_*.cq example must trip a
# diagnostic under --deny-warnings (each seeds a distinct failure).
lint: build
	dune exec bin/cqa.exe -- analyze --corpus > /dev/null
	@set -e; for f in examples/queries/good_*.cq; do \
	  echo "lint $$f"; \
	  dune exec bin/cqa.exe -- analyze --file $$f > /dev/null; \
	done
	@set -e; for f in examples/queries/bad_*.cq; do \
	  echo "lint $$f (expect diagnostics)"; \
	  if dune exec bin/cqa.exe -- analyze --deny-warnings --file $$f > /dev/null 2>&1; \
	  then echo "FAIL: expected diagnostics in $$f"; exit 1; fi; \
	done
	@echo "lint OK"

# The tier-1 gate: build, test suite, benchmark smoke run.
verify: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_smoke.json
