.PHONY: all build test bench bench-smoke verify clean

all: build

build:
	dune build

test:
	dune runtest

# Full benchmark sweep; rewrites BENCH.json (slow).
bench:
	dune exec bench/main.exe

# Fraction-of-a-second quota per benchmark: checks every benchmark still
# runs and emits JSON, without disturbing the committed BENCH.json.
bench-smoke:
	BENCH_SMOKE=1 BENCH_JSON=BENCH_smoke.json dune exec bench/main.exe

# The tier-1 gate: build, test suite, benchmark smoke run.
verify: build test bench-smoke

clean:
	dune clean
	rm -f BENCH_smoke.json
