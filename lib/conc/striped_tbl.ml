(* Lock-striped hash tables: shard = hash mod N, one mutex per shard.
   Replaces the single global mutex in front of the FM sat/QE memos, the
   Eval holds-memo and the Semilinear bounding-box cache. *)

module T = Cqa_telemetry.Telemetry

type evict = Reset | Half

type stat = {
  size : int;
  hits : int;
  misses : int;
  evicted : int;
  contention : int;
}

let zero_stat = { size = 0; hits = 0; misses = 0; evicted = 0; contention = 0 }

let add_stat a b =
  {
    size = a.size + b.size;
    hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    evicted = a.evicted + b.evicted;
    contention = a.contention + b.contention;
  }

module type S = sig
  type key
  type 'v t

  val create : ?shards:int -> name:string -> cap:int -> evict:evict -> unit -> 'v t
  val find_opt : 'v t -> key -> 'v option
  val replace : 'v t -> key -> 'v -> unit
  val length : 'v t -> int
  val reset : 'v t -> unit
  val set_capacity : 'v t -> int -> unit
  val capacity : 'v t -> int
  val shards : 'v t -> int
  val stats : 'v t -> stat array
end

module Make (H : Hashtbl.HashedType) : S with type key = H.t = struct
  module Tbl = Hashtbl.Make (H)

  type key = H.t

  type 'v shard = {
    lock : Mutex.t;
    tbl : 'v Tbl.t;
    (* per-stripe accounting, written under [lock] *)
    mutable hits : int;
    mutable misses : int;
    mutable evicted : int;
    mutable contention : int;
  }

  type 'v t = {
    stripes : 'v shard array;
    contention_ctr : T.counter;
    evict_ctr : T.counter;
    evict : evict;
    mutable cap_total : int;  (* written under stripe 0's lock *)
  }

  let create ?(shards = 16) ~name ~cap ~evict () =
    if cap < 2 then invalid_arg "Striped_tbl.create: cap < 2";
    let shards = Stdlib.min (Stdlib.max shards 1) 256 in
    {
      stripes =
        Array.init shards (fun _ ->
            {
              lock = Mutex.create ();
              tbl = Tbl.create 64;
              hits = 0;
              misses = 0;
              evicted = 0;
              contention = 0;
            });
      contention_ctr = T.counter (name ^ ".contention");
      evict_ctr = T.counter (name ^ ".evict");
      evict;
      cap_total = cap;
    }

  let shards t = Array.length t.stripes

  (* The global capacity is split exactly across the stripes (the first
     [cap mod shards] get the extra slot), so the table as a whole never
     exceeds [cap] — the bound the single-mutex tables promised.  A stripe
     with a zero allotment simply never caches. *)
  let shard_cap t i =
    let k = Array.length t.stripes in
    let q = t.cap_total / k and r = t.cap_total mod k in
    if i < r then q + 1 else q

  let stripe_index t k = (H.hash k land max_int) mod Array.length t.stripes
  let stripe t k = t.stripes.(stripe_index t k)

  (* The only blocking point: every failed try_lock — read paths included —
     is counted into the stripe's own tally (and mirrored to the
     [<name>.contention] telemetry counter when enabled), so --stats sees
     shard contention without perturbing the uncontended path. *)
  let lock_shard t s =
    if not (Mutex.try_lock s.lock) then begin
      Mutex.lock s.lock;
      s.contention <- s.contention + 1;
      if T.enabled () then T.incr t.contention_ctr
    end

  let find_opt t k =
    let s = stripe t k in
    lock_shard t s;
    let r = Tbl.find_opt s.tbl k in
    (match r with
    | Some _ -> s.hits <- s.hits + 1
    | None -> s.misses <- s.misses + 1);
    Mutex.unlock s.lock;
    r

  (* Parity shed: keep every other binding, like the QE memo's evict_half. *)
  let shed_half tbl =
    let parity = ref false in
    let doomed =
      Tbl.fold
        (fun k _ acc ->
          parity := not !parity;
          if !parity then k :: acc else acc)
        tbl []
    in
    List.iter (Tbl.remove tbl) doomed

  let replace t k v =
    let i = stripe_index t k in
    let s = t.stripes.(i) in
    lock_shard t s;
    let cap = shard_cap t i in
    if Tbl.mem s.tbl k then Tbl.replace s.tbl k v
    else if cap > 0 then begin
      (* loop: after a capacity tightening a stale stripe may need more
         than one half-shed to get back under its allotment *)
      while Tbl.length s.tbl >= cap do
        let before = Tbl.length s.tbl in
        (match t.evict with Reset -> Tbl.reset s.tbl | Half -> shed_half s.tbl);
        let shed = before - Tbl.length s.tbl in
        s.evicted <- s.evicted + shed;
        if T.enabled () then T.add t.evict_ctr shed
      done;
      Tbl.replace s.tbl k v
    end;
    Mutex.unlock s.lock

  let length t =
    Array.fold_left
      (fun acc s ->
        lock_shard t s;
        let n = Tbl.length s.tbl in
        Mutex.unlock s.lock;
        acc + n)
      0 t.stripes

  let reset t =
    Array.iter
      (fun s ->
        lock_shard t s;
        Tbl.reset s.tbl;
        Mutex.unlock s.lock)
      t.stripes

  let set_capacity t cap =
    if cap < 2 then invalid_arg "Striped_tbl.set_capacity: cap < 2";
    let s0 = t.stripes.(0) in
    lock_shard t s0;
    t.cap_total <- cap;
    Mutex.unlock s0.lock

  let capacity t = t.cap_total

  let stats t =
    Array.map
      (fun s ->
        lock_shard t s;
        let st =
          {
            size = Tbl.length s.tbl;
            hits = s.hits;
            misses = s.misses;
            evicted = s.evicted;
            contention = s.contention;
          }
        in
        Mutex.unlock s.lock;
        st)
      t.stripes
end
