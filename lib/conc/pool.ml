(* Persistent work-stealing domain pool: one process-wide set of worker
   domains behind a global mutex/condvar, per-worker deques, chunks dealt
   round-robin to the lanes at submit time.  Coarse chunks (a handful per
   batch, each microseconds-to-milliseconds of work) make a single global
   lock the right trade: the lock is taken once per chunk transfer, not per
   work item, and the simplicity buys an airtight shutdown and re-entrancy
   story. *)

module T = Cqa_telemetry.Telemetry

let tm_spawned = T.counter "pool.domains.spawned"
let tm_batches_parallel = T.counter "pool.batches.parallel"
let tm_batches_sequential = T.counter "pool.batches.sequential"
let tm_jobs_run = T.counter "pool.jobs.run"
let tm_jobs_stolen = T.counter "pool.jobs.stolen"

(* Two-list deque; owner takes the front, thieves take the back.  Always
   accessed under the global pool lock. *)
module Dq = struct
  type 'a t = { mutable front : 'a list; mutable back : 'a list }

  let create () = { front = []; back = [] }

  let push_back d x = d.back <- x :: d.back

  let pop_front d =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | [] -> None
        | x :: rest ->
            d.back <- [];
            d.front <- rest;
            Some x)

  let pop_back d =
    match d.back with
    | x :: rest ->
        d.back <- rest;
        Some x
    | [] -> (
        match List.rev d.front with
        | [] -> None
        | x :: rest ->
            d.front <- [];
            d.back <- rest;
            Some x)
end

type job = { run : unit -> unit }

let max_workers = 64
let lock = Mutex.create ()
let cond = Condition.create ()
let deques : job Dq.t array ref = ref [||]
let handles : unit Domain.t list ref = ref []
let shutting_down = ref false
let spawned_count = ref 0

let worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let is_worker () = Domain.DLS.get worker_key

(* Per-domain scratch slots: each domain (the main one and every pool
   worker) lazily builds its own value and reuses it across jobs with no
   synchronization.  The kernel layers hang their scratch arenas
   (flat-row tableaus, reusable Qmat elimination states) off these; the
   values must therefore be self-resetting — safe to reuse after any
   previous job on the same domain, including one that raised. *)
let dls_slot ~init =
  let key = Domain.DLS.new_key init in
  fun () -> Domain.DLS.get key

(* Take a job while holding [lock]: worker [w] drains its own lane from the
   front, then steals from the back of the others ([w = -1] marks a helping
   submitter, which only steals).  Returns [None] when every lane is
   empty. *)
let take w =
  let ds = !deques in
  let k = Array.length ds in
  if k = 0 then None
  else begin
    let own =
      if w >= 0 && w < k then Dq.pop_front ds.(w) else None
    in
    match own with
    | Some j ->
        T.incr tm_jobs_run;
        Some j
    | None ->
        let rec steal i =
          if i >= k then None
          else
            let v = (w + 1 + i + k) mod k in
            match Dq.pop_back ds.(v) with
            | Some j ->
                if w >= 0 && v <> w then T.incr tm_jobs_stolen;
                T.incr tm_jobs_run;
                Some j
            | None -> steal (i + 1)
        in
        steal 0
  end

let rec worker_loop w =
  Mutex.lock lock;
  let rec next () =
    match take w with
    | Some j -> Some j
    | None ->
        if !shutting_down then None
        else begin
          Condition.wait cond lock;
          next ()
        end
  in
  let j = next () in
  Mutex.unlock lock;
  match j with
  | None -> ()
  | Some j ->
      (* Batch jobs capture their own exceptions; this is a belt against a
         raise escaping and silently killing the worker. *)
      (try j.run () with _ -> ());
      worker_loop w

(* OCaml waits for every spawned domain at process exit, so idle workers
   blocked in [Condition.wait] would hang the process: tear the pool down
   from [at_exit] — and let a long-lived server do the same explicitly to
   resize.  Workers drain every queued job before exiting ([take] keeps
   returning jobs while lanes are non-empty even under [shutting_down]),
   then the state is reset so a later [ensure_workers] restarts cleanly:
   shutdown is a fence, not a one-way door. *)
let shutdown () =
  Mutex.lock lock;
  shutting_down := true;
  Condition.broadcast cond;
  let hs = !handles in
  handles := [];
  Mutex.unlock lock;
  List.iter Domain.join hs;
  Mutex.lock lock;
  deques := [||];
  shutting_down := false;
  Mutex.unlock lock

let at_exit_registered = ref false

let ensure_workers n =
  let n = Stdlib.min (Stdlib.max n 0) max_workers in
  Mutex.lock lock;
  let cur = Array.length !deques in
  if n > cur && not !shutting_down then begin
    if not !at_exit_registered then begin
      at_exit_registered := true;
      Stdlib.at_exit shutdown
    end;
    let grown =
      Array.init n (fun i -> if i < cur then !deques.(i) else Dq.create ())
    in
    deques := grown;
    for w = cur to n - 1 do
      incr spawned_count;
      T.incr tm_spawned;
      let h =
        Domain.spawn (fun () ->
            Domain.DLS.set worker_key true;
            worker_loop w)
      in
      handles := h :: !handles
    done
  end;
  Mutex.unlock lock

let ensure = ensure_workers

let size () =
  Mutex.lock lock;
  let n = Array.length !deques in
  Mutex.unlock lock;
  n

let spawned () = !spawned_count
let hw_parallelism () = Domain.recommended_domain_count ()

(* --- adaptive cutoff ------------------------------------------------- *)

type mode = Auto | Always | Never

let mode_ref = ref Auto
let set_mode m = mode_ref := m
let mode () = !mode_ref
let threshold_ns = ref 1e6

let set_cutoff_threshold_ns v =
  if not (v > 0.) then invalid_arg "Pool.set_cutoff_threshold_ns";
  threshold_ns := v

let cutoff_threshold_ns () = !threshold_ns

(* Per-label EWMA of nanoseconds per work item, fed by the pool's own
   timing of every batch (two clock reads per batch — noise next to the
   fan-out it is calibrating). *)
let cutoff_lock = Mutex.create ()
let estimates : (string, float) Hashtbl.t = Hashtbl.create 32

let observe ~label ~items ~ns =
  if items > 0 && ns >= 0. then begin
    let per = ns /. float_of_int items in
    Mutex.lock cutoff_lock;
    (match Hashtbl.find_opt estimates label with
    | None -> Hashtbl.replace estimates label per
    | Some e -> Hashtbl.replace estimates label ((0.7 *. e) +. (0.3 *. per)));
    Mutex.unlock cutoff_lock
  end

let estimate_ns_per_item label =
  Mutex.lock cutoff_lock;
  let r = Hashtbl.find_opt estimates label in
  Mutex.unlock cutoff_lock;
  r

(* A label never seen parallelises optimistically and gets calibrated by
   its own first run. *)
let should_parallelize ~label ~items =
  (not (is_worker ()))
  &&
  match !mode_ref with
  | Always -> true
  | Never -> false
  | Auto ->
      hw_parallelism () > 1
      && (match estimate_ns_per_item label with
         | None -> true
         | Some per -> per *. float_of_int items >= !threshold_ns)

let would_parallelize = should_parallelize

(* --- batches --------------------------------------------------------- *)

let now_ns () = Unix.gettimeofday () *. 1e9

(* Sequential execution with the parallel path's error contract: every
   chunk runs, the lowest-indexed failure is re-raised. *)
let run_seq n chunk =
  let first_err = ref None in
  for i = 0 to n - 1 do
    try chunk i
    with e -> if !first_err = None then first_err := Some e
  done;
  match !first_err with Some e -> raise e | None -> ()

let run_parallel ~label ~items n chunk =
  T.incr tm_batches_parallel;
  ensure_workers (n - 1);
  let remaining = Atomic.make n in
  let errs = Array.make n None in
  let times = Array.make n 0. in
  let wrap i =
    {
      run =
        (fun () ->
          let t0 = now_ns () in
          (try chunk i with e -> errs.(i) <- Some e);
          times.(i) <- now_ns () -. t0;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            (* Last chunk of the batch: wake the submitter. *)
            Mutex.lock lock;
            Condition.broadcast cond;
            Mutex.unlock lock
          end);
    }
  in
  Mutex.lock lock;
  let lanes = Stdlib.max 1 (Array.length !deques) in
  if Array.length !deques = 0 then
    (* Shutdown raced us (or the cap is 0): run inline below via help. *)
    deques := [| Dq.create () |];
  (* chunk -> lane fixed here, before any worker can observe the batch *)
  for i = 0 to n - 1 do
    Dq.push_back !deques.(i mod lanes) (wrap i)
  done;
  Condition.broadcast cond;
  (* The submitter helps drain the queues until its batch completes. *)
  let rec help () =
    if Atomic.get remaining > 0 then
      match take (-1) with
      | Some j ->
          Mutex.unlock lock;
          j.run ();
          Mutex.lock lock;
          help ()
      | None ->
          if Atomic.get remaining > 0 then begin
            Condition.wait cond lock;
            help ()
          end
  in
  help ();
  Mutex.unlock lock;
  observe ~label ~items ~ns:(Array.fold_left ( +. ) 0. times);
  Array.iter (function Some e -> raise e | None -> ()) errs

let run_chunks ?(label = "pool") ~items n chunk =
  if n > 0 then
    if n > 1 && should_parallelize ~label ~items then
      run_parallel ~label ~items n chunk
    else begin
      T.incr tm_batches_sequential;
      (* Calibrating a sequential batch only matters where [Auto] could
         ever pick the pool; on a single-core machine (and in the forced
         modes) the estimate is never consulted, so skip the clock reads —
         they are the last measurable per-batch cost of [~domains > 1]
         there. *)
      if !mode_ref = Auto && hw_parallelism () > 1 then begin
        let t0 = now_ns () in
        run_seq n chunk;
        observe ~label ~items ~ns:(now_ns () -. t0)
      end
      else run_seq n chunk
    end
