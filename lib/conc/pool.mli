(** Persistent work-stealing domain pool.

    One process-wide pool of worker domains, started lazily on the first
    parallel batch and reused for every subsequent one, so callers such as
    {!Cqa_core.Par} and [Cqa_vc.Approx_volume] never pay a [Domain.spawn]
    per invocation (the telemetry counter [pool.domains.spawned] stays
    constant once the pool is warm).  Each worker owns a deque; a batch's
    chunks are dealt round-robin to the worker lanes {e at submit time}, so
    which chunk computes which slot is fixed before any stealing happens —
    work stealing redistributes {e when} a chunk runs, never {e what} it
    computes, which is why results are byte-identical whatever the pool
    size or the steal schedule.  The submitting domain helps drain the
    queues while it waits, so a batch makes progress even with zero
    workers.

    Determinism contract: for a fixed chunk decomposition, [run_chunks]
    produces exactly the effects of [chunk 0; ...; chunk (n-1)] up to
    ordering, every chunk runs exactly once, and an exception raised by a
    chunk is re-raised with the lowest chunk index (after all chunks have
    completed).  Callers that need value-determinism must (and do) derive
    the decomposition from their [~domains] argument alone, never from the
    pool state or the cutoff decision.

    Nested parallelism: a [run_chunks] issued from inside a pool worker
    runs its chunks inline, sequentially, on that worker — no deadlock, no
    pool growth. *)

(** {1 Scheduling mode and adaptive cutoff} *)

type mode =
  | Auto
      (** Parallelise only when it can pay: requires hardware parallelism
          ([Domain.recommended_domain_count () > 1]) and an estimated batch
          cost — per-item nanoseconds learned per label, times the item
          count — at or above the spawn-amortisation threshold.  A label
          with no estimate yet runs parallel once and is calibrated by its
          own timing. *)
  | Always  (** Always take the pool path (tests, pool benches). *)
  | Never  (** Always run sequentially on the calling domain. *)

val set_mode : mode -> unit
val mode : unit -> mode

val set_cutoff_threshold_ns : float -> unit
(** Batch-cost threshold (estimated total nanoseconds) below which [Auto]
    runs sequentially.  Default [1e6] — roughly the cost of a cross-domain
    fan-out with cold caches.  Raises [Invalid_argument] when
    non-positive. *)

val cutoff_threshold_ns : unit -> float

val estimate_ns_per_item : string -> float option
(** Current per-item cost estimate (EWMA, nanoseconds) for a label, if the
    label has run at least once.  Exposed for tests and diagnostics. *)

val would_parallelize : label:string -> items:int -> bool
(** The cutoff decision {!run_chunks} would make right now for a batch of
    [items] work items under [label] (false inside a pool worker and in
    [Never] mode, the {!mode}-dependent prediction otherwise).  Callers
    whose value is chunking-invariant use it to skip building the chunk
    structures entirely when the batch would run inline anyway; such
    callers should still route the collapsed batch through [run_chunks]
    (as a single chunk) so the label keeps being calibrated. *)

(** {1 Running batches} *)

val run_chunks : ?label:string -> items:int -> int -> (int -> unit) -> unit
(** [run_chunks ~label ~items n chunk] runs [chunk 0 .. chunk (n-1)], each
    exactly once, and returns when all have completed.  [items] is the
    total number of underlying work items the [n] chunks cover; it feeds
    the per-[label] cost model.  Whether the chunks run on pool workers or
    inline on the caller is decided by {!mode} — the caller must not be
    able to observe the difference except in timing.  Every chunk runs even
    if an earlier one raises; afterwards the exception of the
    lowest-indexed failing chunk is re-raised. *)

(** {1 Pool introspection} *)

val ensure_workers : int -> unit
(** Grow the pool to at least [n] workers (capped at {!max_workers}).
    Normally implicit in [run_chunks]; exposed so benchmarks can warm the
    pool outside the timed region, and so a long-lived server can re-grow
    the pool after a {!shutdown}. *)

val ensure : int -> unit
(** Alias for {!ensure_workers}: the [shutdown]/[ensure] pair is the
    explicit lifecycle a long-lived process drives. *)

val shutdown : unit -> unit
(** Join every worker domain and reset the pool to its cold state.  Queued
    jobs are drained before the workers exit, so a batch already submitted
    completes; the caller must not have a batch {e in flight on another
    domain} during the call.  Idempotent — a second call (or a call on a
    never-started pool) is a no-op — and not final: a later
    {!ensure_workers} (or any parallel batch) restarts the pool with fresh
    workers.  Registered [at_exit] on first spawn, so plain process exit
    needs no explicit call. *)

val size : unit -> int
(** Number of worker domains currently alive. *)

val spawned : unit -> int
(** Total worker domains ever spawned by this process (monotone; also
    mirrored in the telemetry counter [pool.domains.spawned] when
    telemetry is enabled at spawn time). *)

val max_workers : int
(** Hard cap on pool size (64): requests beyond it queue on the existing
    lanes rather than spawning more domains. *)

val hw_parallelism : unit -> int
(** [Domain.recommended_domain_count ()] — the [Auto] gate. *)

val is_worker : unit -> bool
(** True when called from inside a pool worker (the re-entrancy flag). *)

val dls_slot : init:(unit -> 'a) -> unit -> 'a
(** [dls_slot ~init] allocates a domain-local scratch slot and returns its
    accessor: every domain (main or pool worker) lazily builds its own
    value with [init] and then reuses it across calls on that domain, with
    no synchronization.  The kernel layers hang scratch arenas off these
    slots (flat-row tableaus, reusable {!Cqa_arith.Qmat.elim} states).
    Values must be self-resetting: a slot may be observed again after a
    job that raised.  The [arena.reuse]/[arena.grow] counters such arenas
    tick depend on which domain work lands on, and are exempt from the
    cross-domain determinism contract. *)
