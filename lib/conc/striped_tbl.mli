(** N-way lock-striped hash tables for the memo caches.

    A striped table is [shards] independent [Hashtbl]s, each behind its own
    mutex; a key lives in the shard selected by its hash, so lookups from
    different domains contend only when they hash to the same stripe.  The
    single-mutex tables these replace are the semantic model: for any
    interleaving, [find_opt]/[replace] behave exactly as on one
    [Hashtbl.t] with per-key atomicity (the memo pattern — compute outside
    the lock, [replace] under it — tolerates the benign double-compute race
    exactly as before).

    The global capacity [cap] is distributed exactly across the shards, so
    [length t <= cap] always holds — the same bound the single-mutex
    tables enforced (a shard whose allotment is zero simply never caches).
    A shard that fills evicts by its table's policy: with [Reset] the
    shard is cleared outright (the old tables' behaviour); with [Half]
    every other binding is shed, keeping the working set warm (the QE
    memo's behaviour).

    When telemetry is enabled, each failed [Mutex.try_lock] on a shard
    bumps the table's [<name>.contention] counter.  Contention counts are
    scheduling-dependent by nature and are exempt from the counter
    determinism contract (see {!Cqa_telemetry.Telemetry}). *)

type evict = Reset  (** drop the whole shard *) | Half  (** shed every other binding *)

module type S = sig
  type key
  type 'v t

  val create : ?shards:int -> name:string -> cap:int -> evict:evict -> unit -> 'v t
  (** [shards] defaults to 16 and is clamped to [1 .. 256]; [name] labels
      the [<name>.contention] telemetry counter; [cap] is the total
      capacity, a hard bound on {!length} (raises [Invalid_argument] when
      [< 2]). *)

  val find_opt : 'v t -> key -> 'v option
  val replace : 'v t -> key -> 'v -> unit
  val length : 'v t -> int
  (** Sum of the shard sizes (each read under its lock; the total is a
      snapshot, exact whenever no writer is concurrent). *)

  val reset : 'v t -> unit
  val set_capacity : 'v t -> int -> unit
  (** Raises [Invalid_argument] when [< 2].  Takes effect on subsequent
      inserts; nothing is evicted eagerly. *)

  val capacity : 'v t -> int
  val shards : 'v t -> int
end

module Make (H : Hashtbl.HashedType) : S with type key = H.t
