(** N-way lock-striped hash tables for the memo caches.

    A striped table is [shards] independent [Hashtbl]s, each behind its own
    mutex; a key lives in the shard selected by its hash, so lookups from
    different domains contend only when they hash to the same stripe.  The
    single-mutex tables these replace are the semantic model: for any
    interleaving, [find_opt]/[replace] behave exactly as on one
    [Hashtbl.t] with per-key atomicity (the memo pattern — compute outside
    the lock, [replace] under it — tolerates the benign double-compute race
    exactly as before).

    The global capacity [cap] is distributed exactly across the shards, so
    [length t <= cap] always holds — the same bound the single-mutex
    tables enforced (a shard whose allotment is zero simply never caches).
    A shard that fills evicts by its table's policy: with [Reset] the
    shard is cleared outright (the old tables' behaviour); with [Half]
    every other binding is shed, keeping the working set warm (the QE
    memo's behaviour).

    Every stripe keeps its own running tallies — size, lookup hits and
    misses, evicted bindings, and failed [Mutex.try_lock]s on any path,
    reads included — surfaced by {!S.stats}.  When telemetry is enabled
    the same quantities are mirrored to the [<name>.contention] and
    [<name>.evict] counters.  Contention and eviction counts are
    scheduling- and cache-state-dependent by nature and are exempt from
    the counter determinism contract (see {!Cqa_telemetry.Telemetry}). *)

type evict = Reset  (** drop the whole shard *) | Half  (** shed every other binding *)

type stat = {
  size : int;  (** bindings currently in the stripe *)
  hits : int;  (** [find_opt] calls that found their key *)
  misses : int;  (** [find_opt] calls that did not *)
  evicted : int;  (** bindings shed by capacity eviction *)
  contention : int;  (** failed [try_lock]s, on read and write paths alike *)
}
(** One stripe's accounting.  Tallies are cumulative since [create] (they
    survive {!S.reset}); [size] is a snapshot. *)

val zero_stat : stat

val add_stat : stat -> stat -> stat
(** Componentwise sum — fold it over {!S.stats} for whole-table totals. *)

module type S = sig
  type key
  type 'v t

  val create : ?shards:int -> name:string -> cap:int -> evict:evict -> unit -> 'v t
  (** [shards] defaults to 16 and is clamped to [1 .. 256]; [name] labels
      the [<name>.contention] and [<name>.evict] telemetry counters; [cap]
      is the total capacity, a hard bound on {!length} (raises
      [Invalid_argument] when [< 2]). *)

  val find_opt : 'v t -> key -> 'v option
  val replace : 'v t -> key -> 'v -> unit
  val length : 'v t -> int
  (** Sum of the shard sizes (each read under its lock; the total is a
      snapshot, exact whenever no writer is concurrent). *)

  val reset : 'v t -> unit
  val set_capacity : 'v t -> int -> unit
  (** Raises [Invalid_argument] when [< 2].  Takes effect on subsequent
      inserts; nothing is evicted eagerly. *)

  val capacity : 'v t -> int
  val shards : 'v t -> int

  val stats : 'v t -> stat array
  (** Per-stripe accounting, one {!stat} per shard in shard order (each
      read under its lock). *)
end

module Make (H : Hashtbl.HashedType) : S with type key = H.t
