(** Canonical subsets of the real line definable with linear (indeed,
    dense-order) constraints: finite unions of points and open intervals, in
    a normalized maximal-interval representation.

    By o-minimality of the ordered real field, every one-dimensional section
    of a definable set has this shape with a uniformly bounded number of
    components -- the fact underlying the closure of the paper's END operator
    (Section 5), which extracts the finitely many interval endpoints. *)

open Cqa_arith
open Cqa_logic

type bound =
  | Ninf
  | Pinf
  | Incl of Q.t
  | Excl of Q.t

type component = private { lo : bound; hi : bound }
(** A nonempty generalized interval; a point is [{lo = Incl a; hi = Incl a}]. *)

type t = private component list
(** Sorted, pairwise disjoint, non-adjacent (hence canonical: two equal sets
    have equal representations). *)

val empty : t
val full : t
val point : Q.t -> t
val open_interval : Q.t -> Q.t -> t
val closed_interval : Q.t -> Q.t -> t
val half_open_right : Q.t -> Q.t -> t
(** [[a, b)]. *)

val half_open_left : Q.t -> Q.t -> t
(** [(a, b]]. *)

val ray_lt : Q.t -> t
(** [(-inf, a)]. *)

val ray_le : Q.t -> t
val ray_gt : Q.t -> t
val ray_ge : Q.t -> t

val of_component : bound -> bound -> t
(** Empty when the bounds describe an empty interval. *)

val components : t -> component list
val mem : t -> Q.t -> bool
val is_empty : t -> bool
val equal : t -> t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val compl : t -> t

val endpoints : t -> Q.t list
(** Finite endpoints of the canonical maximal components, sorted and
    duplicate-free: exactly the paper's [END] set. *)

val measure : t -> Q.t option
(** Lebesgue measure; [None] when infinite. *)

val measure_clamped : Q.t -> Q.t -> t -> Q.t
(** Measure of the intersection with [[lo, hi]]. *)

val clamp : Q.t -> Q.t -> t -> t
val is_bounded : t -> bool
val min_elt : t -> bound option
(** Infimum-side bound of the leftmost component ([None] on empty). *)

val max_elt : t -> bound option

val of_constraints : Var.t -> Linconstr.t list -> t
(** Solution set of a conjunction of univariate constraints in the given
    variable.  @raise Invalid_argument if another variable occurs. *)

val of_dnf : Var.t -> Linformula.dnf -> t
val to_dnf : Var.t -> t -> Linformula.dnf

val sample_points : t -> Q.t list
(** One rational point from each component. Empty components impossible. *)

val component_count : t -> int
val pp : Format.formatter -> t -> unit
