open Cqa_arith
open Cqa_logic

type bound =
  | Ninf
  | Pinf
  | Incl of Q.t
  | Excl of Q.t

type component = { lo : bound; hi : bound }

type t = component list

let empty = []
let full = [ { lo = Ninf; hi = Pinf } ]

(* Is the generalized interval (lo, hi) nonempty? *)
let nonempty lo hi =
  match (lo, hi) with
  | Pinf, _ | _, Ninf -> false
  | Ninf, _ | _, Pinf -> true
  | Incl a, Incl b -> Q.leq a b
  | (Incl a | Excl a), (Incl b | Excl b) -> Q.lt a b

let of_component lo hi = if nonempty lo hi then [ { lo; hi } ] else []

let point a = of_component (Incl a) (Incl a)
let open_interval a b = of_component (Excl a) (Excl b)
let closed_interval a b = of_component (Incl a) (Incl b)
let half_open_right a b = of_component (Incl a) (Excl b)
let half_open_left a b = of_component (Excl a) (Incl b)
let ray_lt a = of_component Ninf (Excl a)
let ray_le a = of_component Ninf (Incl a)
let ray_gt a = of_component (Excl a) Pinf
let ray_ge a = of_component (Incl a) Pinf

let components t = t

let mem_component c x =
  (match c.lo with
  | Ninf -> true
  | Pinf -> false
  | Incl a -> Q.leq a x
  | Excl a -> Q.lt a x)
  && (match c.hi with
     | Pinf -> true
     | Ninf -> false
     | Incl b -> Q.leq x b
     | Excl b -> Q.lt x b)

let mem t x = List.exists (fun c -> mem_component c x) t
let is_empty t = t = []

(* All finite values appearing as bounds, sorted, deduplicated. *)
let critical t =
  let vals =
    List.concat_map
      (fun c ->
        let f = function Incl a | Excl a -> [ a ] | Ninf | Pinf -> [] in
        f c.lo @ f c.hi)
      t
  in
  List.sort_uniq Q.compare vals

(* Rebuild a canonical set from a membership predicate sampled on the
   refinement induced by the given critical points. *)
let rebuild pts holds =
  (* pieces: (-inf, p0), {p0}, (p0, p1), {p1}, ..., {pk}, (pk, +inf) *)
  let pieces =
    match pts with
    | [] -> [ (Ninf, Pinf, Q.zero) ]
    | p0 :: _ ->
        let rec walk = function
          | [ a ] -> [ (Incl a, Incl a, a); (Excl a, Pinf, Q.add a Q.one) ]
          | a :: (b :: _ as rest) ->
              (Incl a, Incl a, a) :: (Excl a, Excl b, Q.mid a b) :: walk rest
          | [] -> []
        in
        (Ninf, Excl p0, Q.sub p0 Q.one) :: walk pts
  in
  let kept = List.filter (fun (_, _, sample) -> holds sample) pieces in
  (* merge adjacent pieces *)
  let adjacent hi lo =
    match (hi, lo) with
    | Excl a, Incl b | Incl a, Excl b -> Q.equal a b
    | _ -> false
  in
  let rec merge = function
    | (l1, h1, _) :: (l2, h2, s2) :: rest when adjacent h1 l2 ->
        merge ((l1, h2, s2) :: rest)
    | p :: rest -> p :: merge rest
    | [] -> []
  in
  List.map (fun (lo, hi, _) -> { lo; hi }) (merge kept)

let combine f a b =
  let pts = List.sort_uniq Q.compare (critical a @ critical b) in
  rebuild pts (fun x -> f (mem a x) (mem b x))

let union = combine ( || )
let inter = combine ( && )
let diff = combine (fun x y -> x && not y)
let compl t = combine (fun x _ -> not x) t empty
let equal a b = is_empty (diff a b) && is_empty (diff b a)

let endpoints t =
  List.sort_uniq Q.compare
    (List.concat_map
       (fun c ->
         let f = function Incl a | Excl a -> [ a ] | Ninf | Pinf -> [] in
         f c.lo @ f c.hi)
       t)

let measure t =
  let rec go acc = function
    | [] -> Some acc
    | { lo = Ninf; _ } :: _ | { hi = Pinf; _ } :: _ -> None
    | { lo = Incl a | Excl a; hi = Incl b | Excl b } :: rest ->
        go (Q.add acc (Q.sub b a)) rest
    | { lo = Pinf; _ } :: _ | { hi = Ninf; _ } :: _ ->
        (* excluded by the nonemptiness invariant *)
        assert false
  in
  go Q.zero t

let clamp lo hi t = inter t (closed_interval lo hi)

let measure_clamped lo hi t =
  match measure (clamp lo hi t) with
  | Some m -> m
  | None -> assert false

let is_bounded t =
  List.for_all
    (fun c ->
      (match c.lo with Ninf -> false | _ -> true)
      && match c.hi with Pinf -> false | _ -> true)
    t

let min_elt = function [] -> None | c :: _ -> Some c.lo

let max_elt t =
  match List.rev t with [] -> None | c :: _ -> Some c.hi

let atom_cell x a =
  let e = Linconstr.expr a in
  (match Linexpr.vars e with
  | [] -> ()
  | [ v ] when Var.equal v x -> ()
  | _ -> invalid_arg "Cell1.of_constraints: foreign variable");
  let c = Linexpr.coeff e x and r = Linexpr.constant e in
  if Q.is_zero c then begin
    (* ground atom *)
    match Linconstr.is_trivial a with
    | Some true -> full
    | Some false | None -> empty
  end
  else begin
    let b = Q.neg (Q.div r c) in
    (* c*x + r op 0 *)
    match (Linconstr.op a, Q.sign c > 0) with
    | Linconstr.Eq, _ -> point b
    | Linconstr.Le, true -> ray_le b
    | Linconstr.Lt, true -> ray_lt b
    | Linconstr.Le, false -> ray_ge b
    | Linconstr.Lt, false -> ray_gt b
  end

let of_constraints x atoms =
  List.fold_left (fun acc a -> inter acc (atom_cell x a)) full atoms

let of_dnf x d =
  List.fold_left (fun acc conj -> union acc (of_constraints x conj)) empty d

let to_dnf x t =
  let ex = Linexpr.var x in
  let bound_atoms c =
    let lo =
      match c.lo with
      | Ninf -> []
      | Pinf -> assert false
      | Incl a -> [ Linconstr.ge ex (Linexpr.const a) ]
      | Excl a -> [ Linconstr.gt ex (Linexpr.const a) ]
    in
    let hi =
      match c.hi with
      | Pinf -> []
      | Ninf -> assert false
      | Incl b -> [ Linconstr.le ex (Linexpr.const b) ]
      | Excl b -> [ Linconstr.lt ex (Linexpr.const b) ]
    in
    match (c.lo, c.hi) with
    | Incl a, Incl b when Q.equal a b -> [ Linconstr.eq ex (Linexpr.const a) ]
    | _ -> lo @ hi
  in
  List.map bound_atoms t

let sample_points t =
  List.map
    (fun c ->
      match (c.lo, c.hi) with
      | (Incl a | Excl a), (Incl b | Excl b) ->
          if Q.equal a b then a else Q.mid a b
      | Ninf, (Incl b | Excl b) -> Q.sub b Q.one
      | (Incl a | Excl a), Pinf -> Q.add a Q.one
      | Ninf, Pinf -> Q.zero
      | Pinf, _ | _, Ninf -> assert false)
    t

let component_count = List.length

let pp_bound_lo fmt = function
  | Ninf -> Format.pp_print_string fmt "(-inf"
  | Incl a -> Format.fprintf fmt "[%a" Q.pp a
  | Excl a -> Format.fprintf fmt "(%a" Q.pp a
  | Pinf -> Format.pp_print_string fmt "(+inf"

let pp_bound_hi fmt = function
  | Pinf -> Format.pp_print_string fmt "+inf)"
  | Incl a -> Format.fprintf fmt "%a]" Q.pp a
  | Excl a -> Format.fprintf fmt "%a)" Q.pp a
  | Ninf -> Format.pp_print_string fmt "-inf)"

let pp fmt t =
  if t = [] then Format.pp_print_string fmt "{}"
  else
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f " u ")
      (fun f c -> Format.fprintf f "%a, %a" pp_bound_lo c.lo pp_bound_hi c.hi)
      fmt t
