open Cqa_arith
open Cqa_logic

(* Inline a finite relation applied to argument variables under an
   environment, as a ground boolean. *)
let rel_holds inst env r args =
  let tup =
    Array.of_list
      (List.map
         (fun x ->
           match Var.Map.find_opt x env with
           | Some c -> c
           | None -> invalid_arg ("Active_eval: unbound variable " ^ Var.name x))
         args)
  in
  Instance.mem inst r tup

(* Replace schema atoms by their truth value and environment constants into
   constraint atoms; the result is a pure linear formula over the natural
   quantifiers' variables. *)
let rec reduce inst env (f : Linconstr.t Formula.t) : Linformula.t =
  match f with
  | Formula.True -> Formula.True
  | Formula.False -> Formula.False
  | Formula.Atom a -> Formula.Atom (Linconstr.eval_partial a env)
  | Formula.Rel (r, args) ->
      if rel_holds inst env r args then Formula.True else Formula.False
  | Formula.Not g -> Formula.Not (reduce inst env g)
  | Formula.And (g, h) -> Formula.And (reduce inst env g, reduce inst env h)
  | Formula.Or (g, h) -> Formula.Or (reduce inst env g, reduce inst env h)
  | Formula.Exists (x, g) -> Formula.Exists (x, reduce inst (Var.Map.remove x env) g)
  | Formula.Forall (x, g) -> Formula.Forall (x, reduce inst (Var.Map.remove x env) g)
  | Formula.Exists_adom (x, g) ->
      Formula.disj
        (List.map
           (fun c -> reduce inst (Var.Map.add x c env) g)
           (Instance.active_domain inst))
  | Formula.Forall_adom (x, g) ->
      Formula.conj
        (List.map
           (fun c -> reduce inst (Var.Map.add x c env) g)
           (Instance.active_domain inst))

let holds inst env f = Fourier_motzkin.sat (reduce inst env f)

let output inst vars f =
  let adom = Instance.active_domain inst in
  let rec go env = function
    | [] -> if holds inst env f then [ Array.of_list (List.map (fun v -> Var.Map.find v env) vars) ] else []
    | v :: rest -> List.concat_map (fun c -> go (Var.Map.add v c env) rest) adom
  in
  List.sort_uniq Stdlib.compare (go Var.Map.empty vars)

let avg inst var f =
  match output inst [ var ] f with
  | [] -> None
  | pts ->
      let s = List.fold_left (fun acc p -> Q.add acc p.(0)) Q.zero pts in
      Some (Q.div s (Q.of_int (List.length pts)))
