(** Atomic linear constraints in the normal form [e <= 0], [e < 0] or
    [e = 0], kept with primitive integer coefficients so that syntactically
    equal constraints are structurally equal.

    Values are hash-consed (like {!Linexpr}): equal constraints are
    physically equal while alive, [equal]/[compare]/[hash] have O(1) fast
    paths, and [tag] identifies the interned node for memo keys. *)

open Cqa_arith
open Cqa_logic

type op = Le | Lt | Eq

type t

val make : Linexpr.t -> op -> t
(** Normalizes: scales to primitive integer coefficients; [Eq] additionally
    gets a positive leading coefficient.  Memoized on the interned input
    expression, so repeated normalization of the same expression is a table
    lookup. *)

val le : Linexpr.t -> Linexpr.t -> t
(** [le a b] is [a <= b]. *)

val lt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t
val ge : Linexpr.t -> Linexpr.t -> t
val gt : Linexpr.t -> Linexpr.t -> t

val expr : t -> Linexpr.t
val op : t -> op
val vars : t -> Var.t list

val holds : t -> Q.t Var.Map.t -> bool
val eval_partial : t -> Q.t Var.Map.t -> t
val subst : t -> Var.t -> Linexpr.t -> t
val rename : (Var.t -> Var.t) -> t -> t

val negate : t -> t list
(** Complement as a disjunction of atoms: one atom for [Le]/[Lt], two for
    [Eq]. *)

val is_trivial : t -> bool option
(** [Some b] when the constraint has no variables and truth value [b]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, precomputed at construction: O(1). *)

val tag : t -> int
(** Unique id of the interned node (two live constraints share a tag iff
    they are equal); the key the QE satisfiability memo is built on. *)

val pool_size : unit -> int
(** Number of live interned constraints. *)

val pp : Format.formatter -> t -> unit
