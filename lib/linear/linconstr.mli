(** Atomic linear constraints in the normal form [e <= 0], [e < 0] or
    [e = 0], kept with primitive integer coefficients so that syntactically
    equal constraints are structurally equal. *)

open Cqa_arith
open Cqa_logic

type op = Le | Lt | Eq

type t = private { expr : Linexpr.t; op : op }

val make : Linexpr.t -> op -> t
(** Normalizes: scales to primitive integer coefficients; [Eq] additionally
    gets a positive leading coefficient. *)

val le : Linexpr.t -> Linexpr.t -> t
(** [le a b] is [a <= b]. *)

val lt : Linexpr.t -> Linexpr.t -> t
val eq : Linexpr.t -> Linexpr.t -> t
val ge : Linexpr.t -> Linexpr.t -> t
val gt : Linexpr.t -> Linexpr.t -> t

val expr : t -> Linexpr.t
val op : t -> op
val vars : t -> Var.t list

val holds : t -> Q.t Var.Map.t -> bool
val eval_partial : t -> Q.t Var.Map.t -> t
val subst : t -> Var.t -> Linexpr.t -> t
val rename : (Var.t -> Var.t) -> t -> t

val negate : t -> t list
(** Complement as a disjunction of atoms: one atom for [Le]/[Lt], two for
    [Eq]. *)

val is_trivial : t -> bool option
(** [Some b] when the constraint has no variables and truth value [b]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
