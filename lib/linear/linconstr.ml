open Cqa_arith

type op = Le | Lt | Eq

(* Hash-consed constraints over hash-consed expressions.  [make] both
   normalizes (primitive integer coefficients, oriented equalities) and
   memoizes the normalization on the interned input expression, so the QE
   and volume layers stop re-scaling expressions they have already seen;
   the resulting constraint is itself interned, making [equal] a pointer
   comparison and [tag] a memo key for downstream tables. *)
type t = { expr : Linexpr.t; op : op; hkey : int; tag : int }

let op_code = function Le -> 3 | Lt -> 5 | Eq -> 7

module Node = struct
  type nonrec t = t

  let equal a b = a.op = b.op && Linexpr.equal a.expr b.expr
  let hash a = a.hkey
end

module Pool = Weak.Make (Node)

let pool = Pool.create 4096
let pool_lock = Mutex.create ()
let tag_counter = ref 0

let intern expr op =
  let hkey = (Linexpr.hash expr * 65599) lxor op_code op land max_int in
  Mutex.lock pool_lock;
  let node = { expr; op; hkey; tag = !tag_counter + 1 } in
  let r = Pool.merge pool node in
  if r == node then incr tag_counter;
  Mutex.unlock pool_lock;
  r

let pool_size () =
  Mutex.lock pool_lock;
  let n = Pool.count pool in
  Mutex.unlock pool_lock;
  n

(* Scale an expression to primitive integer coefficients, preserving sign.
   Returns the scaled expression (multiplied by a positive rational). *)
let primitive e =
  let entries = (Q.zero, Linexpr.constant e) :: List.map (fun (_, c) -> (Q.zero, c)) (Linexpr.coeffs e) in
  let dens = List.map (fun (_, c) -> Q.den c) entries in
  let l = List.fold_left Bigint.lcm Bigint.one dens in
  let scaled = Linexpr.smul (Q.of_bigint l) e in
  let nums =
    Q.num (Linexpr.constant scaled)
    :: List.map (fun (_, c) -> Q.num c) (Linexpr.coeffs scaled)
  in
  let g = List.fold_left Bigint.gcd Bigint.zero nums in
  if Bigint.is_zero g || Bigint.is_one g then scaled
  else Linexpr.smul (Q.inv (Q.of_bigint g)) scaled

let make_raw e op =
  let e = primitive e in
  let e =
    if op = Eq then begin
      (* positive leading coefficient for canonicity *)
      match Linexpr.coeffs e with
      | (_, c) :: _ when Q.sign c < 0 -> Linexpr.neg e
      | [] when Q.sign (Linexpr.constant e) < 0 -> Linexpr.neg e
      | _ -> e
    end
    else e
  in
  intern e op

(* Normalization memo: input expressions are interned, so (tag, op) keys the
   full [primitive]-and-orient pipeline.  Mutex-guarded for the parallel
   volume engine; reset (cheap, it only caches work) when it outgrows the
   capacity. *)
let make_memo : (int * op, t) Hashtbl.t = Hashtbl.create 1024
let make_lock = Mutex.create ()
let make_memo_cap = 65536

let make e op =
  let key = (Linexpr.tag e, op) in
  Mutex.lock make_lock;
  let cached = Hashtbl.find_opt make_memo key in
  Mutex.unlock make_lock;
  match cached with
  | Some t -> t
  | None ->
      let t = make_raw e op in
      Mutex.lock make_lock;
      if Hashtbl.length make_memo >= make_memo_cap then Hashtbl.reset make_memo;
      Hashtbl.replace make_memo key t;
      Mutex.unlock make_lock;
      t

let le a b = make (Linexpr.sub a b) Le
let lt a b = make (Linexpr.sub a b) Lt
let eq a b = make (Linexpr.sub a b) Eq
let ge a b = le b a
let gt a b = lt b a

let expr t = t.expr
let op t = t.op
let vars t = Linexpr.vars t.expr
let hash t = t.hkey
let tag t = t.tag

let holds t env =
  let v = Linexpr.eval t.expr env in
  match t.op with
  | Le -> Q.leq v Q.zero
  | Lt -> Q.lt v Q.zero
  | Eq -> Q.is_zero v

let eval_partial t env = make (Linexpr.eval_partial t.expr env) t.op
let subst t x e = make (Linexpr.subst t.expr x e) t.op
let rename rn t = make (Linexpr.rename rn t.expr) t.op

let negate t =
  match t.op with
  | Le -> [ make (Linexpr.neg t.expr) Lt ] (* not (e <= 0)  <=>  -e < 0 *)
  | Lt -> [ make (Linexpr.neg t.expr) Le ]
  | Eq -> [ make t.expr Lt; make (Linexpr.neg t.expr) Lt ]

let is_trivial t =
  if Linexpr.is_const t.expr then begin
    let c = Linexpr.constant t.expr in
    Some
      (match t.op with
      | Le -> Q.leq c Q.zero
      | Lt -> Q.lt c Q.zero
      | Eq -> Q.is_zero c)
  end
  else None

let compare a b =
  if a == b then 0
  else begin
    let c = Stdlib.compare a.op b.op in
    if c <> 0 then c else Linexpr.compare a.expr b.expr
  end

let equal a b = a == b || (a.hkey = b.hkey && a.op = b.op && Linexpr.equal a.expr b.expr)

let pp fmt t =
  let opstr = match t.op with Le -> "<=" | Lt -> "<" | Eq -> "=" in
  Format.fprintf fmt "%a %s 0" Linexpr.pp t.expr opstr
