open Cqa_arith

type op = Le | Lt | Eq

type t = { expr : Linexpr.t; op : op }

(* Scale an expression to primitive integer coefficients, preserving sign.
   Returns the scaled expression (multiplied by a positive rational). *)
let primitive e =
  let entries = (Q.zero, Linexpr.constant e) :: List.map (fun (_, c) -> (Q.zero, c)) (Linexpr.coeffs e) in
  let dens = List.map (fun (_, c) -> Q.den c) entries in
  let l = List.fold_left Bigint.lcm Bigint.one dens in
  let scaled = Linexpr.smul (Q.of_bigint l) e in
  let nums =
    Q.num (Linexpr.constant scaled)
    :: List.map (fun (_, c) -> Q.num c) (Linexpr.coeffs scaled)
  in
  let g = List.fold_left Bigint.gcd Bigint.zero nums in
  if Bigint.is_zero g || Bigint.is_one g then scaled
  else Linexpr.smul (Q.inv (Q.of_bigint g)) scaled

let make e op =
  let e = primitive e in
  let e =
    if op = Eq then begin
      (* positive leading coefficient for canonicity *)
      match Linexpr.coeffs e with
      | (_, c) :: _ when Q.sign c < 0 -> Linexpr.neg e
      | [] when Q.sign (Linexpr.constant e) < 0 -> Linexpr.neg e
      | _ -> e
    end
    else e
  in
  { expr = e; op }

let le a b = make (Linexpr.sub a b) Le
let lt a b = make (Linexpr.sub a b) Lt
let eq a b = make (Linexpr.sub a b) Eq
let ge a b = le b a
let gt a b = lt b a

let expr t = t.expr
let op t = t.op
let vars t = Linexpr.vars t.expr

let holds t env =
  let v = Linexpr.eval t.expr env in
  match t.op with
  | Le -> Q.leq v Q.zero
  | Lt -> Q.lt v Q.zero
  | Eq -> Q.is_zero v

let eval_partial t env = make (Linexpr.eval_partial t.expr env) t.op
let subst t x e = make (Linexpr.subst t.expr x e) t.op
let rename rn t = make (Linexpr.rename rn t.expr) t.op

let negate t =
  match t.op with
  | Le -> [ make (Linexpr.neg t.expr) Lt ] (* not (e <= 0)  <=>  -e < 0 *)
  | Lt -> [ make (Linexpr.neg t.expr) Le ]
  | Eq -> [ make t.expr Lt; make (Linexpr.neg t.expr) Lt ]

let is_trivial t =
  if Linexpr.is_const t.expr then begin
    let c = Linexpr.constant t.expr in
    Some
      (match t.op with
      | Le -> Q.leq c Q.zero
      | Lt -> Q.lt c Q.zero
      | Eq -> Q.is_zero c)
  end
  else None

let compare a b =
  let c = Stdlib.compare a.op b.op in
  if c <> 0 then c else Linexpr.compare a.expr b.expr

let equal a b = compare a b = 0

let pp fmt t =
  let opstr = match t.op with Le -> "<=" | Lt -> "<" | Eq -> "=" in
  Format.fprintf fmt "%a %s 0" Linexpr.pp t.expr opstr
