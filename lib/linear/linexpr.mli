(** Linear expressions [c0 + sum ci * xi] with exact rational coefficients:
    the terms of the R_lin signature [(+, -, 0, 1, <)].

    Values are hash-consed: structurally equal expressions are physically
    equal while alive, [equal] and [compare] have O(1) physical fast paths,
    and [hash] returns a structural hash precomputed at construction. *)

open Cqa_arith
open Cqa_logic

type t

val zero : t
val const : Q.t -> t
val of_int : int -> t
val var : Var.t -> t
val monomial : Q.t -> Var.t -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val smul : Q.t -> t -> t

val coeff : t -> Var.t -> Q.t
val constant : t -> Q.t
val coeffs : t -> (Var.t * Q.t) list
(** Nonzero coefficients sorted by variable. *)

val vars : t -> Var.t list
val is_const : t -> bool

val eval : t -> Q.t Var.Map.t -> Q.t
(** @raise Invalid_argument on unbound variables. *)

val eval_partial : t -> Q.t Var.Map.t -> t
(** Substitute the given variables by constants, keep the rest. *)

val subst : t -> Var.t -> t -> t
(** [subst e x e'] replaces [x] by the expression [e']. *)

val rename : (Var.t -> Var.t) -> t -> t

val solve_for : t -> Var.t -> t option
(** If [x] occurs in [e], return [e'] with [e = 0 <=> x = e'] ([x] not in
    [e']). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, precomputed at construction: O(1). *)

val tag : t -> int
(** Unique id of the interned node, stable for its lifetime; usable as a
    memoization key (two live expressions share a tag iff they are equal). *)

val pool_size : unit -> int
(** Number of live interned expressions (the weak pool's population). *)

val pp : Format.formatter -> t -> unit

val of_list : Q.t -> (Q.t * Var.t) list -> t
