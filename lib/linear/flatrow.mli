(** Flat, unboxed constraint rows and the float Fourier-Motzkin filter.

    Each interned {!Linconstr} gets a flat row — its primitive integer
    coefficients as [float] enclosure pairs — cached on the hash-cons tag.
    {!sat_conj} runs complete Fourier-Motzkin eliminations over these rows
    on domain-local unboxed scratch tableaus and answers [Sat]/[Unsat]
    only when every comparison along the way was decided by
    non-overlapping enclosures; otherwise [Unknown], and the caller runs
    the exact rational path.  A sure verdict always equals the exact one
    (soundness argument in DESIGN.md, "The float-filtered numeric
    kernel"). *)

(** {1 Kernel toggle}

    [CQA_KERNEL=exact] in the environment starts the process with the
    filter off; anything else (or nothing) leaves it on.  This module is
    the single source of truth for the flag: both the Fourier-Motzkin and
    simplex filters consult it. *)

val enabled : unit -> bool
val set_kernel : bool -> unit
(** [set_kernel true] turns the filtered kernel on; [false] routes every
    consult to the exact path.  For benchmarks and tests (the ablation
    rows); results are identical either way, only speed changes. *)

val kernel_name : unit -> string
(** ["filtered"] or ["exact"] — the ablation label. *)

(** {1 The satisfiability filter} *)

type verdict = Sat | Unsat | Unknown

val sat_conj : Linconstr.t list -> verdict
(** Float-filtered feasibility over the reals.  [Sat]/[Unsat] are
    certified (they equal the exact verdict); [Unknown] means a
    comparison was undecidable at double precision or the conjunction
    exceeded the kernel's row/variable caps — fall back to exact
    elimination or simplex.  Ticks [fm.filter.sure]/[fm.filter.fallback].
    Callable regardless of {!enabled} (callers gate on it). *)

val compare_constants : Linconstr.t -> Linconstr.t -> int option
(** Three-way comparison of two constraints' constant terms from the
    cached enclosures; [None] when exact arithmetic is needed.  Backs the
    tighten_parallel fast path. *)

val cache_size : unit -> int
(** Cached flat rows (diagnostic). *)

val clear_cache : unit -> unit
