(** Fourier-Motzkin quantifier elimination over the ordered group of the
    rationals/reals: the effective form of Tarski QE for R_lin, and the
    engine behind the closure property of FO + LIN (outputs of FO + LIN
    queries on semi-linear databases are again semi-linear). *)

open Cqa_arith
open Cqa_logic

type optimizations = {
  mutable tightening : bool;
  mutable elim_pruning : bool;
  mutable absorption : bool;
  mutable simplex_redundancy : bool;
}

val optimizations : optimizations
(** Toggles for the elimination-pipeline optimizations (parallel-atom
    tightening, satisfiability-based pruning of large conjunctions, and
    disjunct absorption); the first three are on by default, and turning
    them off restores textbook Fourier-Motzkin.  [simplex_redundancy]
    switches the per-atom redundancy oracle from the default hybrid
    (elimination below the dispatch threshold, simplex above) to pure
    simplex; both oracles are exact, so the toggle changes speed, never
    results.  It defaults to off because the hybrid is faster on the small
    conjunctions that dominate.  Exposed for the ablation benchmarks. *)

val eliminate_var : Var.t -> Linformula.conjunction -> Linformula.conjunction option
(** [eliminate_var x conj] is a conjunction equivalent to [exists x. conj];
    [None] when the result is unsatisfiable (trivially false).  Equalities
    involving [x] are substituted away first; otherwise lower and upper
    bounds are combined pairwise. *)

val eliminate_var_dnf : Var.t -> Linformula.dnf -> Linformula.dnf

val eliminate_all : Var.t list -> Linformula.dnf -> Linformula.dnf
(** Eliminates each variable in a greedy order minimizing the pairing
    blow-up. *)

val satisfiable_conj : Linformula.conjunction -> bool
(** Feasibility over the reals, decided by the exact simplex. *)

val satisfiable_conj_fm : Linformula.conjunction -> bool
(** The elimination-based decision ([satisfiable_conj] is an alias). *)

val satisfiable_conj_simplex : Linformula.conjunction -> bool
(** The same decision by the exact simplex: an independent oracle for
    cross-checking. *)

val tighten_parallel : Linformula.conjunction -> Linformula.conjunction
(** Keep only the tightest atom among parallel inequalities (same primitive
    linear part); syntactic, no satisfiability calls. *)

val satisfiable_dnf : Linformula.dnf -> bool

val complement_dnf : Linformula.dnf -> Linformula.dnf
(** DNF of the complement (exponential in the worst case). *)

val clear_qe_cache : unit -> unit
(** Drop the internal quantifier-elimination memo table and the
    conjunction-satisfiability memo (used by benchmarks to measure
    cold-cache behaviour). *)

val qe_cache_size : unit -> int
(** Number of memoized quantifier-elimination entries. *)

val set_qe_cache_capacity : int -> unit
(** Capacity above which the memo sheds half of its entries (default
    65536); exposed for tests.  @raise Invalid_argument below 2. *)

val qe : Linformula.t -> Linformula.dnf
(** Full quantifier elimination of a schema-free FO + LIN formula; the
    result is an equivalent quantifier-free DNF over the formula's free
    variables.  @raise Invalid_argument on schema atoms or active-domain
    quantifiers. *)

val sat : Linformula.t -> bool
(** Satisfiability of the existential closure. *)

val valid : Linformula.t -> bool
val equivalent : Linformula.t -> Linformula.t -> bool

val entails_conj : Linformula.conjunction -> Linconstr.t -> bool
(** Does the conjunction imply the atom? *)

val prune_redundant : Linformula.conjunction -> Linformula.conjunction
(** Remove atoms implied by the remaining ones (quadratic in FM-sat calls). *)

val prune_redundant_simplex : Linformula.conjunction -> Linformula.conjunction
(** The same sweep with {!Simplex.implied} as the oracle: one LP per negated
    disjunct instead of a re-elimination.  Both oracles are exact, so the
    result is identical to {!prune_redundant}'s. *)

val sat_cache_size : unit -> int
(** Number of memoized conjunction-satisfiability verdicts (keyed on sorted
    interned-constraint tags; cleared by {!clear_qe_cache}). *)

val sample_point : Linformula.conjunction -> Q.t Var.Map.t option
(** A rational point satisfying the conjunction, when one exists.  Found by
    eliminating variables back to front and propagating midpoints. *)

val sample_point_dnf : Linformula.dnf -> Q.t Var.Map.t option

val witness : Linformula.t -> Q.t Var.Map.t option
(** Emptiness oracle with evidence: a rational point over the free
    variables satisfying the (schema-free FO + LIN) formula, [None] when
    the defined set is empty.  Free variables a sampled disjunct leaves
    unconstrained are pinned to zero, so the point is total.
    @raise Invalid_argument like {!qe}. *)

val difference_witness : Linformula.t -> Linformula.t -> Q.t Var.Map.t option
(** A point in [f] but not in [g] ([f /\ not g]), when one exists. *)

val equivalence_witness : Linformula.t -> Linformula.t -> Q.t Var.Map.t option
(** [None] iff the two formulas define the same set over their free
    variables; otherwise a point of the symmetric difference — the
    refutation evidence behind [Cqa_analysis.Equiv]. *)
