open Cqa_logic

type t = Linconstr.t Formula.t
type conjunction = Linconstr.t list
type dnf = conjunction list

let free_vars f = Formula.free_vars ~atom_vars:Linconstr.vars f

let negate_atom a = Formula.disj (List.map (fun c -> Formula.Atom c) (Linconstr.negate a))

let nnf f = Formula.nnf ~negate_atom f

let rename rn f = Formula.rename rn ~rename_atom:Linconstr.rename f

(* Cross product of DNFs for conjunction. *)
let dnf_and (a : dnf) (b : dnf) : dnf =
  List.concat_map (fun ca -> List.map (fun cb -> ca @ cb) b) a

let dnf_or (a : dnf) (b : dnf) : dnf = a @ b

let rec dnf_of_nnf : t -> dnf = function
  | Formula.True -> [ [] ]
  | Formula.False -> []
  | Formula.Atom a -> [ [ a ] ]
  | Formula.Not (Formula.Atom a) -> List.map (fun c -> [ c ]) (Linconstr.negate a)
  | Formula.Not _ -> invalid_arg "Linformula.dnf_of_qf: not in NNF"
  | Formula.And (f, g) -> dnf_and (dnf_of_nnf f) (dnf_of_nnf g)
  | Formula.Or (f, g) -> dnf_or (dnf_of_nnf f) (dnf_of_nnf g)
  | Formula.Rel _ -> invalid_arg "Linformula.dnf_of_qf: schema atom"
  | Formula.Exists _ | Formula.Forall _ | Formula.Exists_adom _
  | Formula.Forall_adom _ ->
      invalid_arg "Linformula.dnf_of_qf: quantifier"

let simplify_conjunction conj =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> (
        match Linconstr.is_trivial a with
        | Some true -> go acc rest
        | Some false -> None
        | None -> if List.exists (Linconstr.equal a) acc then go acc rest
                  else go (a :: acc) rest)
  in
  go [] conj

let dnf_of_qf f =
  let d = dnf_of_nnf (nnf f) in
  List.filter_map simplify_conjunction d

let of_dnf (d : dnf) : t =
  Formula.disj (List.map (fun conj -> Formula.conj (List.map (fun a -> Formula.Atom a) conj)) d)

let rec holds_qf f env =
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom a -> Linconstr.holds a env
  | Formula.Not g -> not (holds_qf g env)
  | Formula.And (g, h) -> holds_qf g env && holds_qf h env
  | Formula.Or (g, h) -> holds_qf g env || holds_qf h env
  | Formula.Rel _ -> invalid_arg "Linformula.holds_qf: schema atom"
  | Formula.Exists _ | Formula.Forall _ | Formula.Exists_adom _
  | Formula.Forall_adom _ ->
      invalid_arg "Linformula.holds_qf: quantifier"

let conj_holds conj env = List.for_all (fun a -> Linconstr.holds a env) conj
let dnf_holds d env = List.exists (fun conj -> conj_holds conj env) d

let conj_vars conj =
  List.fold_left
    (fun acc a -> List.fold_left (fun s v -> Var.Set.add v s) acc (Linconstr.vars a))
    Var.Set.empty conj

let dnf_vars d =
  List.fold_left (fun acc conj -> Var.Set.union acc (conj_vars conj)) Var.Set.empty d

let pp fmt f = Formula.pp Linconstr.pp fmt f

let pp_conjunction fmt conj =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " /\\ ") Linconstr.pp)
    conj

let pp_dnf fmt d =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " \\/@ ") pp_conjunction)
    d
