(** FO + LIN formulas: {!Cqa_logic.Formula} instantiated with linear
    constraint atoms, plus DNF conversion of the quantifier-free fragment. *)

open Cqa_arith
open Cqa_logic

type t = Linconstr.t Formula.t

type conjunction = Linconstr.t list
(** Implicit conjunction of atoms. *)

type dnf = conjunction list
(** Implicit disjunction; [[]] is false, [[[]]] is true. *)

val free_vars : t -> Var.Set.t
val nnf : t -> t
val rename : (Var.t -> Var.t) -> t -> t

val dnf_of_qf : t -> dnf
(** @raise Invalid_argument on quantifiers or schema atoms. *)

val of_dnf : dnf -> t

val simplify_conjunction : conjunction -> conjunction option
(** Drop trivially-true atoms and duplicates; [None] when some atom is
    trivially false. *)

val holds_qf : t -> Q.t Var.Map.t -> bool
(** Evaluate a quantifier-free, schema-free formula at a point.
    @raise Invalid_argument on quantifiers or schema atoms. *)

val conj_holds : conjunction -> Q.t Var.Map.t -> bool
val dnf_holds : dnf -> Q.t Var.Map.t -> bool
val conj_vars : conjunction -> Var.Set.t
val dnf_vars : dnf -> Var.Set.t

val pp : Format.formatter -> t -> unit
val pp_conjunction : Format.formatter -> conjunction -> unit
val pp_dnf : Format.formatter -> dnf -> unit
