(** Exact rational linear programming by the two-phase simplex method with
    Bland's anti-cycling rule.

    Variables range over all of R (they are internally split into
    differences of non-negative variables).  Strict inequalities are not
    LP-representable; [strictly_feasible] handles mixed systems by maximizing
    a uniform margin. *)

open Cqa_arith
open Cqa_logic

type result =
  | Optimal of Q.t * Q.t Var.Map.t
  | Unbounded
  | Infeasible

val maximize : objective:Linexpr.t -> constraints:Linconstr.t list -> result
(** @raise Invalid_argument on a strict ([Lt]) constraint. *)

val minimize : objective:Linexpr.t -> constraints:Linconstr.t list -> result

val feasible : Linconstr.t list -> Q.t Var.Map.t option
(** A solution of the non-strict system, if any.
    @raise Invalid_argument on a strict constraint. *)

val strictly_feasible : Linconstr.t list -> Q.t Var.Map.t option
(** A solution of a mixed strict/non-strict system over the reals, found by
    maximizing a margin variable.  Complete: returns [Some] iff the system
    has a real solution. *)

val feasible_strict : Linconstr.t list -> bool
(** Verdict-only strict feasibility with warm-basis reuse: repeated
    probes of the same constraint set (the filtered kernel's fallback
    re-solves, the rewriter's entailment sweeps) install the previous
    optimal basis instead of running phase 1.  The optimum of the margin
    LP is unique whatever the starting basis, so the verdict equals
    [strictly_feasible <> None]; only the (unreturned) witness point may
    differ.  Successful warm installs tick [simplex.basis.reuse]. *)

val range : Linexpr.t -> Linconstr.t list -> (Q.t option * Q.t option) option
(** [range e constrs] is [None] if the non-strict system is infeasible,
    otherwise [Some (lo, hi)] where [lo]/[hi] are the exact minimum/maximum
    of [e] over the solution set ([None] = unbounded on that side).

    Re-solves over the same constraint system (keyed on the interned
    constraint tags) warm-start from the previous solve's optimal basis,
    skipping phase 1; the [simplex.basis.hit]/[.miss] counters track the
    cache.  Optimum values are unique whatever the starting basis, so
    results are byte-identical to cold solves — which is why only this
    value-returning entry uses the cache ([maximize]'s witness points are
    pivot-path-dependent on degenerate systems and stay cold).
    @raise Invalid_argument on a strict constraint. *)

val clear_basis_cache : unit -> unit
(** Drop the warm-basis cache (cold-cache benchmarking and deterministic
    counter tests). *)

val implied : Linconstr.t list -> Linconstr.t -> bool
(** [implied context atom]: every real point satisfying [context] satisfies
    [atom] — i.e. each disjunct of [atom]'s negation is unsatisfiable
    together with [context].  Exact, hence usable as a redundancy oracle
    without changing QE results. *)
