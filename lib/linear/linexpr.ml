open Cqa_arith
open Cqa_logic

type t = { const : Q.t; coeffs : Q.t Var.Map.t }
(* Invariant: no zero entries in [coeffs]. *)

let zero = { const = Q.zero; coeffs = Var.Map.empty }
let const c = { const = c; coeffs = Var.Map.empty }
let of_int n = const (Q.of_int n)

let monomial c v =
  if Q.is_zero c then zero
  else { const = Q.zero; coeffs = Var.Map.singleton v c }

let var v = monomial Q.one v

let add a b =
  { const = Q.add a.const b.const;
    coeffs =
      Var.Map.union
        (fun _ x y ->
          let s = Q.add x y in
          if Q.is_zero s then None else Some s)
        a.coeffs b.coeffs }

let smul c a =
  if Q.is_zero c then zero
  else { const = Q.mul c a.const; coeffs = Var.Map.map (Q.mul c) a.coeffs }

let neg a = smul Q.minus_one a
let sub a b = add a (neg b)

let coeff a v = Option.value ~default:Q.zero (Var.Map.find_opt v a.coeffs)
let constant a = a.const
let coeffs a = Var.Map.bindings a.coeffs
let vars a = List.map fst (Var.Map.bindings a.coeffs)
let is_const a = Var.Map.is_empty a.coeffs

let eval a env =
  Var.Map.fold
    (fun v c acc ->
      match Var.Map.find_opt v env with
      | Some x -> Q.add acc (Q.mul c x)
      | None -> invalid_arg ("Linexpr.eval: unbound variable " ^ Var.name v))
    a.coeffs a.const

let eval_partial a env =
  Var.Map.fold
    (fun v c acc ->
      match Var.Map.find_opt v env with
      | Some x -> { acc with const = Q.add acc.const (Q.mul c x) }
      | None ->
          { acc with coeffs = Var.Map.add v c acc.coeffs })
    a.coeffs (const a.const)

let subst a x e =
  let c = coeff a x in
  if Q.is_zero c then a
  else begin
    let without = { a with coeffs = Var.Map.remove x a.coeffs } in
    add without (smul c e)
  end

let rename rn a =
  Var.Map.fold
    (fun v c acc -> add acc (monomial c (rn v)))
    a.coeffs (const a.const)

let solve_for a x =
  let c = coeff a x in
  if Q.is_zero c then None
  else begin
    let rest = { a with coeffs = Var.Map.remove x a.coeffs } in
    Some (smul (Q.neg (Q.inv c)) rest)
  end

let compare a b =
  let c = Q.compare a.const b.const in
  if c <> 0 then c else Var.Map.compare Q.compare a.coeffs b.coeffs

let equal a b = compare a b = 0

let pp fmt a =
  let items = Var.Map.bindings a.coeffs in
  if items = [] then Q.pp fmt a.const
  else begin
    let first = ref true in
    let put_sign neg_sign =
      if !first then begin
        if neg_sign then Format.pp_print_string fmt "-";
        first := false
      end
      else Format.pp_print_string fmt (if neg_sign then " - " else " + ")
    in
    List.iter
      (fun (v, c) ->
        put_sign (Q.sign c < 0);
        let c = Q.abs c in
        if Q.equal c Q.one then Var.pp fmt v
        else Format.fprintf fmt "%a*%a" Q.pp c Var.pp v)
      items;
    if not (Q.is_zero a.const) then begin
      put_sign (Q.sign a.const < 0);
      Q.pp fmt (Q.abs a.const)
    end
  end

let of_list c0 terms =
  List.fold_left (fun acc (c, v) -> add acc (monomial c v)) (const c0) terms
