open Cqa_arith
open Cqa_logic

(* Hash-consed linear expressions.  Every value is interned in a weak pool,
   so structurally equal expressions are physically equal while alive: the
   QE and volume layers compare, hash and dedup expressions constantly, and
   interning turns those from O(terms) walks into pointer operations.  The
   structural hash is computed once at construction and stored in [hkey];
   [tag] is a unique id of the interned node, usable as a memo key.

   Invariant: no zero entries in [coeffs]. *)
type t = { const : Q.t; coeffs : Q.t Var.Map.t; hkey : int; tag : int }

let compute_hash const coeffs =
  Var.Map.fold
    (fun v c acc -> ((acc * 65599) lxor Hashtbl.hash v) lxor Q.hash c)
    coeffs (Q.hash const)
  land max_int

module Node = struct
  type nonrec t = t

  let equal a b =
    a.hkey = b.hkey
    && Q.equal a.const b.const
    && Var.Map.equal Q.equal a.coeffs b.coeffs

  let hash a = a.hkey
end

module Pool = Weak.Make (Node)

(* The pool is shared across domains (the exact-volume engine evaluates
   disjuncts in parallel); all accesses are under [pool_lock].  A node's
   [tag] is only spent when the node is actually interned. *)
let pool = Pool.create 4096
let pool_lock = Mutex.create ()
let tag_counter = ref 0

let mk const coeffs =
  let hkey = compute_hash const coeffs in
  Mutex.lock pool_lock;
  let node = { const; coeffs; hkey; tag = !tag_counter + 1 } in
  let r = Pool.merge pool node in
  if r == node then incr tag_counter;
  Mutex.unlock pool_lock;
  r

let pool_size () =
  Mutex.lock pool_lock;
  let n = Pool.count pool in
  Mutex.unlock pool_lock;
  n

let hash a = a.hkey
let tag a = a.tag

let zero = mk Q.zero Var.Map.empty
let const c = if Q.is_zero c then zero else mk c Var.Map.empty
let of_int n = const (Q.of_int n)

let monomial c v =
  if Q.is_zero c then zero else mk Q.zero (Var.Map.singleton v c)

let var v = monomial Q.one v

let add a b =
  if a == zero then b
  else if b == zero then a
  else
    mk (Q.add a.const b.const)
      (Var.Map.union
         (fun _ x y ->
           let s = Q.add x y in
           if Q.is_zero s then None else Some s)
         a.coeffs b.coeffs)

let smul c a =
  if Q.is_zero c then zero
  else if Q.equal c Q.one then a
  else mk (Q.mul c a.const) (Var.Map.map (Q.mul c) a.coeffs)

let neg a = smul Q.minus_one a
let sub a b = add a (neg b)

let coeff a v = Option.value ~default:Q.zero (Var.Map.find_opt v a.coeffs)
let constant a = a.const
let coeffs a = Var.Map.bindings a.coeffs
let vars a = List.map fst (Var.Map.bindings a.coeffs)
let is_const a = Var.Map.is_empty a.coeffs

let eval a env =
  Var.Map.fold
    (fun v c acc ->
      match Var.Map.find_opt v env with
      | Some x -> Q.add acc (Q.mul c x)
      | None -> invalid_arg ("Linexpr.eval: unbound variable " ^ Var.name v))
    a.coeffs a.const

let eval_partial a env =
  let const', coeffs' =
    Var.Map.fold
      (fun v c (k, m) ->
        match Var.Map.find_opt v env with
        | Some x -> (Q.add k (Q.mul c x), m)
        | None -> (k, Var.Map.add v c m))
      a.coeffs (a.const, Var.Map.empty)
  in
  mk const' coeffs'

let subst a x e =
  let c = coeff a x in
  if Q.is_zero c then a
  else add (mk a.const (Var.Map.remove x a.coeffs)) (smul c e)

let rename rn a =
  Var.Map.fold
    (fun v c acc -> add acc (monomial c (rn v)))
    a.coeffs (const a.const)

let solve_for a x =
  let c = coeff a x in
  if Q.is_zero c then None
  else begin
    let rest = mk a.const (Var.Map.remove x a.coeffs) in
    Some (smul (Q.neg (Q.inv c)) rest)
  end

let compare a b =
  if a == b then 0
  else begin
    let c = Q.compare a.const b.const in
    if c <> 0 then c else Var.Map.compare Q.compare a.coeffs b.coeffs
  end

(* Interning makes structural equality coincide with physical equality for
   live nodes; the structural fallback (guarded by the precomputed hash)
   keeps [equal] correct even for values from distinct intern generations. *)
let equal a b =
  a == b
  || (a.hkey = b.hkey
     && Q.equal a.const b.const
     && Var.Map.equal Q.equal a.coeffs b.coeffs)

let pp fmt a =
  let items = Var.Map.bindings a.coeffs in
  if items = [] then Q.pp fmt a.const
  else begin
    let first = ref true in
    let put_sign neg_sign =
      if !first then begin
        if neg_sign then Format.pp_print_string fmt "-";
        first := false
      end
      else Format.pp_print_string fmt (if neg_sign then " - " else " + ")
    in
    List.iter
      (fun (v, c) ->
        put_sign (Q.sign c < 0);
        let c = Q.abs c in
        if Q.equal c Q.one then Var.pp fmt v
        else Format.fprintf fmt "%a*%a" Q.pp c Var.pp v)
      items;
    if not (Q.is_zero a.const) then begin
      put_sign (Q.sign a.const < 0);
      Q.pp fmt (Q.abs a.const)
    end
  end

let of_list c0 terms =
  List.fold_left (fun acc (c, v) -> add acc (monomial c v)) (const c0) terms
