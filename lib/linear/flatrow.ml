(* Flat, unboxed constraint rows and the float Fourier-Motzkin filter:
   the hot-loop side of the float-filtered kernel (DESIGN.md, "The
   float-filtered numeric kernel").

   A constraint's row is its primitive linear expression flattened into
   parallel [float array] enclosure pairs (one {!Fdyadic}-style [lo]/[hi]
   per coefficient, plus the constant), built once per interned
   {!Linconstr} and cached on its hash-cons tag.  {!sat_conj} then runs
   whole Fourier-Motzkin eliminations on an unboxed scratch tableau in
   domain-local arenas — no [Q.t] allocation at all — and answers
   [Sat]/[Unsat] only when every comparison on the way was sure, [Unknown]
   otherwise.  Callers treat [Unknown] as "run the exact path": the filter
   is a conservative abstraction of exact Fourier-Motzkin, so a sure
   verdict always equals the exact verdict (soundness argument in
   DESIGN.md).

   Because {!Linconstr.make} scales constraints to primitive integer
   coefficients, rows enter as width-zero points, and {!Fdyadic}'s
   exactness-detecting directed ops keep them points through combination
   in the common case — boundary cases (a combined constant of exactly
   zero) are decided, not punted. *)

open Cqa_arith
open Cqa_logic
module T = Cqa_telemetry.Telemetry
module Pool = Cqa_conc.Pool

(* ------------------------------------------------------------------ *)
(* Kernel toggle                                                       *)
(* ------------------------------------------------------------------ *)

(* CQA_KERNEL=exact turns the filter off process-wide (every consult
   degrades to the exact path); any other value, or none, leaves it on.
   A plain ref: the flag is read-mostly, toggled only by benchmarks and
   tests between runs, and a racy read merely routes one probe to the
   other (equally correct) path. *)
let filter_on =
  ref (match Sys.getenv_opt "CQA_KERNEL" with Some "exact" -> false | _ -> true)

let set_kernel b = filter_on := b
let enabled () = !filter_on
let kernel_name () = if !filter_on then "filtered" else "exact"

(* Sure verdicts vs. exact fallbacks: the filter's hit rate.  Both depend
   only on the probed conjunctions, but are ticked from cache-miss paths,
   so they sit with the other fm.* counters outside the cross-domain
   determinism contract. *)
let tm_sure = T.counter "fm.filter.sure"
let tm_fallback = T.counter "fm.filter.fallback"
let tm_arena_reuse = T.counter "arena.reuse"
let tm_arena_grow = T.counter "arena.grow"

(* ------------------------------------------------------------------ *)
(* Per-constraint cached rows                                          *)
(* ------------------------------------------------------------------ *)

type row = {
  rvars : Var.t array; (* nonzero-coefficient variables, coeffs order *)
  clo : float array; (* per-variable coefficient enclosures *)
  chi : float array;
  klo : float; (* constant-term enclosure *)
  khi : float;
}

module Row_tbl = Cqa_conc.Striped_tbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash t = t
end)

let row_cache : row Row_tbl.t =
  Row_tbl.create ~name:"fm.flatrow" ~cap:65536 ~evict:Cqa_conc.Striped_tbl.Reset
    ()

let row_of c =
  let tag = Linconstr.tag c in
  match Row_tbl.find_opt row_cache tag with
  | Some r -> r
  | None ->
      let e = Linconstr.expr c in
      let cs = Linexpr.coeffs e in
      let n = List.length cs in
      let rvars = Array.make n "" in
      let clo = Array.make n 0.0 and chi = Array.make n 0.0 in
      List.iteri
        (fun i (v, q) ->
          let enc = Fdyadic.of_q q in
          rvars.(i) <- v;
          clo.(i) <- enc.Fdyadic.lo;
          chi.(i) <- enc.Fdyadic.hi)
        cs;
      let k = Fdyadic.of_q (Linexpr.constant e) in
      let r = { rvars; clo; chi; klo = k.Fdyadic.lo; khi = k.Fdyadic.hi } in
      Row_tbl.replace row_cache tag r;
      r

(* Three-way constant comparison for tighten_parallel: the cached
   enclosures decide it whenever they are disjoint or equal points —
   always, for the sub-2^53 integer constants primitive scaling
   produces. *)
let compare_constants a b =
  let ra = row_of a and rb = row_of b in
  if ra.khi < rb.klo then Some (-1)
  else if rb.khi < ra.klo then Some 1
  else if ra.klo = ra.khi && rb.klo = rb.khi && ra.klo = rb.klo then Some 0
  else None

let cache_size () = Row_tbl.length row_cache
let clear_cache () = Row_tbl.reset row_cache

(* ------------------------------------------------------------------ *)
(* Domain-local scratch arenas                                         *)
(* ------------------------------------------------------------------ *)

(* The elimination tableau: two ping-pong buffers of interleaved rows.
   A row block is [2 * (nv + 1)] floats — [lo; hi] per column, the last
   column being the constant — plus one strictness byte per row.  Sized
   once for the caps below (~70 KB per buffer), so each domain allocates
   on first use and reuses forever after. *)

let max_vars = 16
let max_rows = 256
let floats_cap = max_rows * 2 * (max_vars + 1)

type arena = {
  mutable ta : float array;
  mutable tb : float array;
  mutable sa : Bytes.t;
  mutable sb : Bytes.t;
}

let arena_slot =
  Pool.dls_slot ~init:(fun () ->
      { ta = [||]; tb = [||]; sa = Bytes.empty; sb = Bytes.empty })

let get_arena () =
  let ar = arena_slot () in
  if Array.length ar.ta < floats_cap then begin
    T.incr tm_arena_grow;
    ar.ta <- Array.make floats_cap 0.0;
    ar.tb <- Array.make floats_cap 0.0;
    ar.sa <- Bytes.make max_rows '\000';
    ar.sb <- Bytes.make max_rows '\000'
  end
  else T.incr tm_arena_reuse;
  ar

(* ------------------------------------------------------------------ *)
(* The float Fourier-Motzkin satisfiability filter                     *)
(* ------------------------------------------------------------------ *)

type verdict = Sat | Unsat | Unknown

exception Bail (* some comparison was unsure, or a cap was hit *)
exception Sure_unsat (* a ground row is surely violated *)

(* [sat_conj conj] runs the whole elimination in floats.  Invariants:

   - every tableau entry [lo, hi] encloses the exact rational the exact
     elimination would compute at the same position;
   - rows are Le (strict byte 0) or Lt (strict byte 1); equalities are
     materialized as two opposite Le rows (float negation is exact);
   - ground rows never enter the tableau: at creation they are checked —
     surely violated terminates with Unsat, surely satisfied is dropped,
     undecidable sets [saw_unknown] (the final verdict can then still be
     Unsat, but never Sat).

   Soundness of the verdicts: Fourier-Motzkin is a complete decision
   procedure, and each step here either mirrors an exact step on
   enclosures (combination, one-sided drops) or bails to [Unknown];
   so a run that never bailed has decided exactly the questions the
   exact run would, with the same answers. *)
let sat_conj conj =
  let v =
    match conj with
    | [] -> Sat
    | _ -> (
        try
          (* -------- variable universe -------- *)
          let module VS = Var.Set in
          let vset =
            List.fold_left
              (fun s c -> List.fold_left (fun s v -> VS.add v s) s (Linconstr.vars c))
              VS.empty conj
          in
          let nv = VS.cardinal vset in
          if nv > max_vars then raise Bail;
          let vars = Array.make (max nv 1) "" in
          let _ = VS.fold (fun v i -> vars.(i) <- v; i + 1) vset 0 in
          let col_of v =
            let rec go i = if Var.equal vars.(i) v then i else go (i + 1) in
            go 0
          in
          let stride = 2 * (nv + 1) in
          let kcol = nv in
          let ar = get_arena () in
          let cur = ref ar.ta and nxt = ref ar.tb in
          let scur = ref ar.sa and snxt = ref ar.sb in
          let m = ref 0 in
          let saw_unknown = ref false in

          (* -------- ground-row triage -------- *)
          (* row [e <= 0] (or [< 0]) with constant enclosure [klo, khi] *)
          let ground_verdict ~strict klo khi =
            if (if strict then klo >= 0.0 else klo > 0.0) then raise Sure_unsat
            else if (if strict then khi < 0.0 else khi <= 0.0) then ()
            else saw_unknown := true
          in

          (* -------- materialization -------- *)
          let emit_row r ~negated ~strict =
            let n = Array.length r.rvars in
            if n = 0 then
              if negated then ground_verdict ~strict (-.r.khi) (-.r.klo)
              else ground_verdict ~strict r.klo r.khi
            else begin
              if !m >= max_rows then raise Bail;
              let buf = !cur in
              let off = !m * stride in
              Array.fill buf off stride 0.0;
              for i = 0 to n - 1 do
                let j = col_of r.rvars.(i) in
                if negated then begin
                  buf.(off + (2 * j)) <- -.r.chi.(i);
                  buf.(off + (2 * j) + 1) <- -.r.clo.(i)
                end
                else begin
                  buf.(off + (2 * j)) <- r.clo.(i);
                  buf.(off + (2 * j) + 1) <- r.chi.(i)
                end
              done;
              if negated then begin
                buf.(off + (2 * kcol)) <- -.r.khi;
                buf.(off + (2 * kcol) + 1) <- -.r.klo
              end
              else begin
                buf.(off + (2 * kcol)) <- r.klo;
                buf.(off + (2 * kcol) + 1) <- r.khi
              end;
              Bytes.set !scur !m (if strict then '\001' else '\000');
              incr m
            end
          in
          List.iter
            (fun c ->
              let r = row_of c in
              match Linconstr.op c with
              | Linconstr.Le -> emit_row r ~negated:false ~strict:false
              | Linconstr.Lt -> emit_row r ~negated:false ~strict:true
              | Linconstr.Eq ->
                  emit_row r ~negated:false ~strict:false;
                  emit_row r ~negated:true ~strict:false)
            conj;

          (* -------- elimination -------- *)
          (* Directed products with a surely-positive multiplier
             [plo, phi] (plo > 0). *)
          let pmul_down plo phi xlo =
            if xlo >= 0.0 then Fdyadic.mul_down plo xlo
            else Fdyadic.mul_down phi xlo
          and pmul_up plo phi xhi =
            if xhi <= 0.0 then Fdyadic.mul_up plo xhi
            else Fdyadic.mul_up phi xhi
          in

          (* Parallel-row tightening on point rows: among rows whose
             coefficient columns are identical width-zero points, only
             the largest constant (ties: strict beats non-strict)
             matters; merging mirrors exact tighten_parallel and is what
             keeps elimination from squaring away.  Only worth the scan
             once the tableau has grown. *)
          let tighten () =
            if !m > 24 then begin
              let buf = !cur and sb = !scur in
              let dead = Array.make !m false in
              let point_row i =
                let off = i * stride in
                let rec go j =
                  j >= nv
                  || (buf.(off + (2 * j)) = buf.(off + (2 * j) + 1) && go (j + 1))
                in
                go 0
              in
              let same_coeffs i i' =
                let o = i * stride and o' = i' * stride in
                let rec go j =
                  j >= nv
                  || (buf.(o + (2 * j)) = buf.(o' + (2 * j)) && go (j + 1))
                in
                go 0
              in
              for i = 0 to !m - 1 do
                if (not dead.(i)) && point_row i then
                  for i' = i + 1 to !m - 1 do
                    if (not dead.(i')) && point_row i' && same_coeffs i i' then begin
                      (* keep the tighter: larger constant, strict on ties *)
                      let ki = buf.((i * stride) + (2 * kcol))
                      and ki_hi = buf.((i * stride) + (2 * kcol) + 1)
                      and ki' = buf.((i' * stride) + (2 * kcol))
                      and ki'_hi = buf.((i' * stride) + (2 * kcol) + 1) in
                      if ki_hi < ki' then dead.(i) <- true
                      else if ki'_hi < ki then dead.(i') <- true
                      else if ki = ki_hi && ki' = ki'_hi && ki = ki' then
                        if Bytes.get sb i' = '\001' then dead.(i) <- true
                        else dead.(i') <- true
                      (* incomparable constants: keep both (sound) *)
                    end
                  done
              done;
              (* compact in place *)
              let w = ref 0 in
              for i = 0 to !m - 1 do
                if not dead.(i) then begin
                  if !w < i then begin
                    Array.blit buf (i * stride) buf (!w * stride) stride;
                    Bytes.set sb !w (Bytes.get sb i)
                  end;
                  incr w
                end
              done;
              m := !w
            end
          in

          let pos = Array.make (max nv 1) 0 and neg = Array.make (max nv 1) 0 in
          while !m > 0 do
            tighten ();
            if !m > 0 then begin
              (* classify every (row, var) coefficient; any unsure sign
                 bails the whole filter *)
              Array.fill pos 0 nv 0;
              Array.fill neg 0 nv 0;
              let buf = !cur in
              for i = 0 to !m - 1 do
                let off = i * stride in
                for j = 0 to nv - 1 do
                  let lo = buf.(off + (2 * j)) and hi = buf.(off + (2 * j) + 1) in
                  if lo > 0.0 then pos.(j) <- pos.(j) + 1
                  else if hi < 0.0 then neg.(j) <- neg.(j) + 1
                  else if not (lo = 0.0 && hi = 0.0) then raise Bail
                done
              done;
              (* pick the variable minimizing the pairing blow-up *)
              let best = ref (-1) and best_cost = ref max_int in
              for j = 0 to nv - 1 do
                if pos.(j) + neg.(j) > 0 then begin
                  let cost = pos.(j) * neg.(j) in
                  if cost < !best_cost then begin
                    best := j;
                    best_cost := cost
                  end
                end
              done;
              (* every remaining row mentions some variable (ground rows
                 never enter the tableau), so a pick always exists *)
              if !best < 0 then raise Bail;
              let j = !best in
              if !m - pos.(j) - neg.(j) + (pos.(j) * neg.(j)) > max_rows then
                raise Bail;
              let nb = !nxt and nsb = !snxt in
              let nm = ref 0 in
              let copy_kept i =
                Array.blit buf (i * stride) nb (!nm * stride) stride;
                Bytes.set nsb !nm (Bytes.get !scur i);
                incr nm
              in
              (* emit a combined row; returns without emitting when the
                 row is ground (after triage) *)
              let combine il iu =
                if !nm >= max_rows then raise Bail;
                let ol = il * stride and ou = iu * stride in
                (* multipliers: c_u (positive) and -c_l (positive) *)
                let pu_lo = buf.(ou + (2 * j)) and pu_hi = buf.(ou + (2 * j) + 1) in
                let nl_lo = -.buf.(ol + (2 * j) + 1)
                and nl_hi = -.buf.(ol + (2 * j)) in
                let strict =
                  Bytes.get !scur il = '\001' || Bytes.get !scur iu = '\001'
                in
                let on = !nm * stride in
                let ground = ref true in
                for k = 0 to nv - 1 do
                  if k = j then begin
                    nb.(on + (2 * k)) <- 0.0;
                    nb.(on + (2 * k) + 1) <- 0.0
                  end
                  else begin
                    let lo =
                      Fdyadic.add_down
                        (pmul_down pu_lo pu_hi buf.(ol + (2 * k)))
                        (pmul_down nl_lo nl_hi buf.(ou + (2 * k)))
                    and hi =
                      Fdyadic.add_up
                        (pmul_up pu_lo pu_hi buf.(ol + (2 * k) + 1))
                        (pmul_up nl_lo nl_hi buf.(ou + (2 * k) + 1))
                    in
                    nb.(on + (2 * k)) <- lo;
                    nb.(on + (2 * k) + 1) <- hi;
                    if not (lo = 0.0 && hi = 0.0) then ground := false
                  end
                done;
                let klo =
                  Fdyadic.add_down
                    (pmul_down pu_lo pu_hi buf.(ol + (2 * kcol)))
                    (pmul_down nl_lo nl_hi buf.(ou + (2 * kcol)))
                and khi =
                  Fdyadic.add_up
                    (pmul_up pu_lo pu_hi buf.(ol + (2 * kcol) + 1))
                    (pmul_up nl_lo nl_hi buf.(ou + (2 * kcol) + 1))
                in
                if !ground then ground_verdict ~strict klo khi
                else begin
                  nb.(on + (2 * kcol)) <- klo;
                  nb.(on + (2 * kcol) + 1) <- khi;
                  Bytes.set nsb !nm (if strict then '\001' else '\000');
                  incr nm
                end
              in
              if pos.(j) = 0 || neg.(j) = 0 then
                (* one-sided: rows mentioning j project away entirely *)
                for i = 0 to !m - 1 do
                  let off = i * stride in
                  if
                    buf.(off + (2 * j)) = 0.0 && buf.(off + (2 * j) + 1) = 0.0
                  then copy_kept i
                done
              else
                for i = 0 to !m - 1 do
                  let off = i * stride in
                  let lo = buf.(off + (2 * j)) and hi = buf.(off + (2 * j) + 1) in
                  if lo = 0.0 && hi = 0.0 then copy_kept i
                  else if lo > 0.0 then
                    (* upper bound on j: pair with every lower *)
                    for i' = 0 to !m - 1 do
                      if buf.((i' * stride) + (2 * j) + 1) < 0.0 then
                        combine i' i
                    done
                done;
              m := !nm;
              let t = !cur in
              cur := !nxt;
              nxt := t;
              let st = !scur in
              scur := !snxt;
              snxt := st
            end
          done;
          if !saw_unknown then Unknown else Sat
        with
        | Sure_unsat -> Unsat
        | Bail -> Unknown)
  in
  (match v with Unknown -> T.incr tm_fallback | Sat | Unsat -> T.incr tm_sure);
  v
