open Cqa_arith
open Cqa_logic
module T = Cqa_telemetry.Telemetry

(* Telemetry probes (zero-cost while disabled): every entry point funnels
   through [maximize], so [simplex.solves] counts LP instances and
   [simplex.pivots] the Bland-rule pivots across both phases.  Callers
   (Semilinear.bounding_box) memoize around the solver, so these count work
   actually performed: like the [.hit]/[.miss] splits, they depend on cache
   state and are exempt from the cross-domain determinism contract. *)
let tm_solves = T.counter "simplex.solves"
let tm_pivots = T.counter "simplex.pivots"
let tm_phase1 = T.counter "simplex.phase1_runs"
let tm_basis_hit = T.counter "simplex.basis.hit"
let tm_basis_miss = T.counter "simplex.basis.miss"

(* The float-filtered ratio test: ratio comparisons decided by outward-
   rounded enclosures vs. those that fell back to exact cross-multiplied
   Q comparison, and warm-basis installs on the filtered kernel's
   fallback re-solves ([feasible_strict]). *)
let tm_filter_sure = T.counter "simplex.filter.sure"
let tm_filter_fallback = T.counter "simplex.filter.fallback"
let tm_basis_reuse = T.counter "simplex.basis.reuse"

type result =
  | Optimal of Q.t * Q.t Var.Map.t
  | Unbounded
  | Infeasible

(* Internal standard-form problem: maximize c.x subject to A x <= b, x >= 0,
   in slack ("dictionary") form following CLRS chapter 29.

   For each basic row i:  x_{basic.(i)} = b.(i) - sum_j a.(i).(j) * x_j
   (the sum ranging over nonbasic j), and z = v + sum_j c.(j) * x_j. *)

type dict = {
  mutable nvars : int; (* total variable count, including slacks *)
  rows : int;
  basic : int array; (* basic variable of each row *)
  in_basis : bool array;
  row_of : int array; (* row index of each basic variable, -1 otherwise *)
  a : Q.t array array; (* rows x nvars *)
  b : Q.t array;
  mutable c : Q.t array;
  mutable v : Q.t;
}

let make_dict ~n ~rows_coeffs ~rows_rhs ~obj =
  let m = List.length rows_coeffs in
  let nvars = n + m in
  let a = Array.make_matrix m nvars Q.zero in
  let b = Array.of_list rows_rhs in
  List.iteri
    (fun i row -> List.iter (fun (j, q) -> a.(i).(j) <- Q.add a.(i).(j) q) row)
    rows_coeffs;
  let c = Array.make nvars Q.zero in
  List.iter (fun (j, q) -> c.(j) <- Q.add c.(j) q) obj;
  let basic = Array.init m (fun i -> n + i) in
  let in_basis = Array.make nvars false in
  let row_of = Array.make nvars (-1) in
  Array.iteri
    (fun i bv ->
      in_basis.(bv) <- true;
      row_of.(bv) <- i)
    basic;
  { nvars; rows = m; basic; in_basis; row_of; a; b; c; v = Q.zero }

(* Pivot: entering nonbasic variable e, leaving row l. *)
let pivot d l e =
  T.incr tm_pivots;
  let le = d.basic.(l) in
  let ale = d.a.(l).(e) in
  assert (not (Q.is_zero ale));
  let inv = Q.inv ale in
  (* new row for e *)
  d.b.(l) <- Q.mul d.b.(l) inv;
  for j = 0 to d.nvars - 1 do
    if j <> e then d.a.(l).(j) <- Q.mul d.a.(l).(j) inv
  done;
  d.a.(l).(le) <- inv;
  d.a.(l).(e) <- Q.zero;
  (* substitute into other rows *)
  for i = 0 to d.rows - 1 do
    if i <> l then begin
      let aie = d.a.(i).(e) in
      if not (Q.is_zero aie) then begin
        d.b.(i) <- Q.sub d.b.(i) (Q.mul aie d.b.(l));
        for j = 0 to d.nvars - 1 do
          if j <> e then d.a.(i).(j) <- Q.sub d.a.(i).(j) (Q.mul aie d.a.(l).(j))
        done;
        d.a.(i).(e) <- Q.zero
      end
    end
  done;
  (* substitute into the objective *)
  let ce = d.c.(e) in
  if not (Q.is_zero ce) then begin
    d.v <- Q.add d.v (Q.mul ce d.b.(l));
    for j = 0 to d.nvars - 1 do
      if j <> e then d.c.(j) <- Q.sub d.c.(j) (Q.mul ce d.a.(l).(j))
    done;
    d.c.(e) <- Q.zero
  end;
  (* swap basis membership *)
  d.basic.(l) <- e;
  d.in_basis.(le) <- false;
  d.row_of.(le) <- -1;
  d.in_basis.(e) <- true;
  d.row_of.(e) <- l

exception Unbounded_lp

(* Domain-local scratch for the filtered ratio test: lazy per-iteration
   float enclosures of b and of the entering column, NaN-sentineled.
   Grown to the row count on demand and reused across solves on the same
   domain (b and the column change on every pivot, so entries are
   invalidated per iteration). *)
type rt_scratch = { mutable fb : float array; mutable fa : float array }

let rt_slot =
  Cqa_conc.Pool.dls_slot ~init:(fun () -> { fb = [||]; fa = [||] })

(* Bland's rule main loop; raises Unbounded_lp.

   The leaving-row selection compares ratios by exact cross-multiplication
   (b_i * a_je vs b_j * a_ie — both pivot-column entries are positive, so
   the comparison is equivalent to b_i/a_ie vs b_j/a_je and needs no
   division), filtered through outward-rounded float enclosures first: a
   comparison the enclosures decide is certified equal to the exact one,
   so the selected pivot row — and hence every subsequent dictionary —
   is identical whether the filter is on or off. *)
let optimize d =
  let continue_loop = ref true in
  while !continue_loop do
    (* entering: smallest-index nonbasic with positive reduced cost *)
    let e = ref (-1) in
    (try
       for j = 0 to d.nvars - 1 do
         if (not d.in_basis.(j)) && Q.sign d.c.(j) > 0 then begin
           e := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !e < 0 then continue_loop := false
    else begin
      let e = !e in
      let sc =
        if Flatrow.enabled () then begin
          let s = rt_slot () in
          let need = 2 * d.rows in
          if Array.length s.fb < need then begin
            s.fb <- Array.make need nan;
            s.fa <- Array.make need nan
          end
          else
            for i = 0 to d.rows - 1 do
              s.fb.(2 * i) <- nan;
              s.fa.(2 * i) <- nan
            done;
          Some s
        end
        else None
      in
      let enc arr src i =
        if Float.is_nan arr.(2 * i) then begin
          let x = Fdyadic.of_q_fast src in
          arr.(2 * i) <- x.Fdyadic.lo;
          arr.((2 * i) + 1) <- x.Fdyadic.hi
        end
      in
      (* compare b_i/a_ie vs b_j/a_je as b_i * a_je vs b_j * a_ie *)
      let cmp_ratio i j =
        let exact () =
          Q.compare (Q.mul d.b.(i) d.a.(j).(e)) (Q.mul d.b.(j) d.a.(i).(e))
        in
        match sc with
        | None -> exact ()
        | Some s ->
            enc s.fb d.b.(i) i;
            enc s.fb d.b.(j) j;
            enc s.fa d.a.(i).(e) i;
            enc s.fa d.a.(j).(e) j;
            let l_lo =
              Fdyadic.mul_lo4 s.fb.(2 * i) s.fb.((2 * i) + 1) s.fa.(2 * j)
                s.fa.((2 * j) + 1)
            and l_hi =
              Fdyadic.mul_hi4 s.fb.(2 * i) s.fb.((2 * i) + 1) s.fa.(2 * j)
                s.fa.((2 * j) + 1)
            and r_lo =
              Fdyadic.mul_lo4 s.fb.(2 * j) s.fb.((2 * j) + 1) s.fa.(2 * i)
                s.fa.((2 * i) + 1)
            and r_hi =
              Fdyadic.mul_hi4 s.fb.(2 * j) s.fb.((2 * j) + 1) s.fa.(2 * i)
                s.fa.((2 * i) + 1)
            in
            if l_hi < r_lo then begin
              T.incr tm_filter_sure;
              -1
            end
            else if r_hi < l_lo then begin
              T.incr tm_filter_sure;
              1
            end
            else if l_lo = l_hi && r_lo = r_hi && l_lo = r_lo then begin
              T.incr tm_filter_sure;
              0
            end
            else begin
              T.incr tm_filter_fallback;
              exact ()
            end
      in
      (* leaving: min ratio b_i / a_ie over a_ie > 0; Bland tie-break on the
         basic variable index *)
      let best = ref (-1) in
      for i = 0 to d.rows - 1 do
        if Q.sign d.a.(i).(e) > 0 then
          if !best < 0 then best := i
          else begin
            let cmp = cmp_ratio i !best in
            if cmp < 0 || (cmp = 0 && d.basic.(i) < d.basic.(!best)) then
              best := i
          end
      done;
      if !best < 0 then raise Unbounded_lp else pivot d !best e
    end
  done

(* Phase 1: make the basis feasible.  Returns false if infeasible. *)
let initialize d =
  let min_i = ref 0 in
  for i = 1 to d.rows - 1 do
    if Q.lt d.b.(i) d.b.(!min_i) then min_i := i
  done;
  if d.rows = 0 || Q.geq d.b.(!min_i) Q.zero then true
  else begin
    T.incr tm_phase1;
    (* auxiliary variable x0, with coefficient -1 in every row *)
    let x0 = d.nvars in
    let grow arr = Array.init (d.nvars + 1) (fun j -> if j < d.nvars then arr.(j) else Q.zero) in
    for i = 0 to d.rows - 1 do
      d.a.(i) <- grow d.a.(i);
      d.a.(i).(x0) <- Q.minus_one
    done;
    let saved_c = d.c in
    let saved_v = d.v in
    d.c <- Array.make (d.nvars + 1) Q.zero;
    d.c.(x0) <- Q.minus_one;
    d.v <- Q.zero;
    let in_basis = Array.make (d.nvars + 1) false in
    Array.blit d.in_basis 0 in_basis 0 d.nvars;
    let row_of = Array.make (d.nvars + 1) (-1) in
    Array.blit d.row_of 0 row_of 0 d.nvars;
    (* mutate record fields that are arrays by replacement *)
    let d' =
      { d with nvars = d.nvars + 1; in_basis; row_of; c = d.c }
    in
    pivot d' !min_i x0;
    (try optimize d' with Unbounded_lp -> assert false);
    let feasible = Q.is_zero d'.v in
    if feasible then begin
      (* kick x0 out of the basis if it lingers there at value zero *)
      if d'.in_basis.(x0) then begin
        let l = d'.row_of.(x0) in
        let e = ref (-1) in
        (try
           for j = 0 to d'.nvars - 2 do
             if (not d'.in_basis.(j)) && not (Q.is_zero d'.a.(l).(j)) then begin
               e := j;
               raise Exit
             end
           done
         with Exit -> ());
        if !e >= 0 then pivot d' l !e
        (* if no pivot exists the row is all zeros: x0 = 0 trivially; leave
           it, its column is dropped below and the row becomes 0 = 0 *)
      end;
      (* drop x0's column and restore the original objective, substituting
         dictionary rows for basic variables *)
      d.nvars <- d'.nvars - 1;
      Array.blit d'.in_basis 0 d.in_basis 0 d.nvars;
      Array.blit d'.row_of 0 d.row_of 0 d.nvars;
      Array.blit d'.basic 0 d.basic 0 d.rows;
      for i = 0 to d.rows - 1 do
        d.a.(i) <- Array.sub d'.a.(i) 0 d.nvars;
        d.b.(i) <- d'.b.(i)
      done;
      d.c <- Array.make d.nvars Q.zero;
      d.v <- saved_v;
      for j = 0 to d.nvars - 1 do
        if not (Q.is_zero saved_c.(j)) then begin
          if d.in_basis.(j) then begin
            let r = d.row_of.(j) in
            d.v <- Q.add d.v (Q.mul saved_c.(j) d.b.(r));
            for k = 0 to d.nvars - 1 do
              if not d.in_basis.(k) then
                d.c.(k) <- Q.sub d.c.(k) (Q.mul saved_c.(j) d.a.(r).(k))
            done
          end
          else d.c.(j) <- Q.add d.c.(j) saved_c.(j)
        end
      done;
      true
    end
    else false
  end

let solution d n =
  Array.init n (fun j -> if d.in_basis.(j) then d.b.(d.row_of.(j)) else Q.zero)

(* Translate a system over free variables into standard form. *)
let translate constraints =
  let vars =
    List.fold_left
      (fun acc c -> Var.Set.union acc (Var.Set.of_list (Linconstr.vars c)))
      Var.Set.empty constraints
    |> Var.Set.elements
  in
  let index = List.mapi (fun i v -> (v, i)) vars in
  let pos v = 2 * List.assoc v index in
  let n = 2 * List.length vars in
  let row_of_expr e =
    let terms =
      List.concat_map
        (fun (v, q) -> [ (pos v, q); (pos v + 1, Q.neg q) ])
        (Linexpr.coeffs e)
    in
    (terms, Q.neg (Linexpr.constant e))
  in
  let rows =
    List.concat_map
      (fun c ->
        let e = Linconstr.expr c in
        match Linconstr.op c with
        | Linconstr.Le -> [ row_of_expr e ]
        | Linconstr.Eq -> [ row_of_expr e; row_of_expr (Linexpr.neg e) ]
        | Linconstr.Lt -> invalid_arg "Simplex: strict constraint")
      constraints
  in
  (vars, index, n, rows)

let extract vars index sol =
  List.fold_left
    (fun env v ->
      let i = 2 * List.assoc v index in
      Var.Map.add v (Q.sub sol.(i) sol.(i + 1)) env)
    Var.Map.empty vars

(* ------------------------------------------------------------------ *)
(* Warm-basis cache                                                    *)
(* ------------------------------------------------------------------ *)

(* Re-solving the same constraint system under a new objective — the
   bounding-box pattern (2n objectives over one system) and plan-cache
   re-execution — need not repeat phase 1: any optimal basis of a previous
   solve is a feasible basis for every objective over the same system.
   Keyed on the interned constraint tag list, so a hit guarantees the very
   same [translate] image (same variables, same row layout).  Only the
   value-returning [range] consults the cache: optimum *values* are unique
   whatever the pivot path, whereas optimal *points* of a degenerate LP are
   not, and [maximize]/[feasible] promise path-deterministic witnesses. *)
let basis_lock = Mutex.create ()
let basis_cache : (int list, int array) Hashtbl.t = Hashtbl.create 64
let basis_cache_cap = 1024

let clear_basis_cache () =
  Mutex.lock basis_lock;
  Hashtbl.reset basis_cache;
  Mutex.unlock basis_lock

let basis_find key =
  Mutex.lock basis_lock;
  let r = Option.map Array.copy (Hashtbl.find_opt basis_cache key) in
  Mutex.unlock basis_lock;
  r

let basis_store key basic =
  Mutex.lock basis_lock;
  if Hashtbl.length basis_cache >= basis_cache_cap then Hashtbl.reset basis_cache;
  Hashtbl.replace basis_cache key (Array.copy basic);
  Mutex.unlock basis_lock

(* Drive the dictionary to the stored basis by direct pivots.  Success
   criterion is set equality of basic variables (row labels are immaterial:
   a stuck row whose target is basic elsewhere already sits at the target
   basis modulo row order) plus feasibility of the resulting b.  On failure
   the dictionary has been mutated arbitrarily and must be rebuilt. *)
let install_basis d target =
  Array.length target = d.rows
  && (not (Array.exists (fun v -> v < 0 || v >= d.nvars) target))
  &&
  let progress = ref true in
  let done_ = Array.make d.rows false in
  while !progress do
    progress := false;
    for i = 0 to d.rows - 1 do
      if not done_.(i) then
        if d.basic.(i) = target.(i) then begin
          done_.(i) <- true;
          progress := true
        end
        else if
          (not d.in_basis.(target.(i)))
          && not (Q.is_zero d.a.(i).(target.(i)))
        then begin
          pivot d i target.(i);
          done_.(i) <- true;
          progress := true
        end
    done
  done;
  let set_eq =
    let a = Array.copy d.basic and b = Array.copy target in
    Array.sort compare a;
    Array.sort compare b;
    a = b
  in
  set_eq
  &&
  let feasible = ref true in
  for i = 0 to d.rows - 1 do
    if Q.sign d.b.(i) < 0 then feasible := false
  done;
  !feasible

(* Shared solver core.  With [warm_key], a cached basis is installed in
   place of phase 1 when possible, and the final basis of a successful
   solve is stored back under that key; [on_warm] fires on each
   successful install (the [simplex.basis.reuse] probe). *)
let solve_core ?warm_key ?on_warm ~objective ~constraints () =
  T.incr tm_solves;
  let vars, index, n, rows = translate constraints in
  (* objective may mention variables absent from the constraints; bind them *)
  let extra =
    List.filter (fun v -> not (List.mem_assoc v index)) (Linexpr.vars objective)
  in
  if extra <> [] then begin
    (* unconstrained objective variables make the LP unbounded unless their
       coefficient is zero, which Linexpr invariants exclude *)
    Unbounded
  end
  else begin
    let obj =
      List.concat_map
        (fun (v, q) ->
          let i = 2 * List.assoc v index in
          [ (i, q); (i + 1, Q.neg q) ])
        (Linexpr.coeffs objective)
    in
    let build () =
      make_dict ~n
        ~rows_coeffs:(List.map fst rows)
        ~rows_rhs:(List.map snd rows)
        ~obj
    in
    let warm_dict =
      match warm_key with
      | None -> None
      | Some key -> (
          match basis_find key with
          | None ->
              T.incr tm_basis_miss;
              None
          | Some basis ->
              let d = build () in
              if install_basis d basis then begin
                T.incr tm_basis_hit;
                (match on_warm with Some f -> f () | None -> ());
                Some d
              end
              else begin
                T.incr tm_basis_miss;
                None
              end)
    in
    let feasible_dict =
      match warm_dict with
      | Some d -> Some d
      | None ->
          let d = build () in
          if initialize d then Some d else None
    in
    match feasible_dict with
    | None -> Infeasible
    | Some d -> (
        match optimize d with
        | () ->
            Option.iter (fun key -> basis_store key d.basic) warm_key;
            let sol = solution d n in
            Optimal
              (Q.add d.v (Linexpr.constant objective), extract vars index sol)
        | exception Unbounded_lp -> Unbounded)
  end

let maximize ~objective ~constraints = solve_core ~objective ~constraints ()

let minimize ~objective ~constraints =
  match maximize ~objective:(Linexpr.neg objective) ~constraints with
  | Optimal (v, pt) -> Optimal (Q.neg v, pt)
  | (Unbounded | Infeasible) as r -> r

let feasible constraints =
  match maximize ~objective:Linexpr.zero ~constraints with
  | Optimal (_, pt) -> Some pt
  | Infeasible -> None
  | Unbounded -> assert false

let margin_var = Var.of_string "simplex#margin"

let strictly_feasible_gen ?warm_key ?on_warm constraints =
  let relaxed =
    List.map
      (fun c ->
        match Linconstr.op c with
        | Linconstr.Lt ->
            Linconstr.make
              (Linexpr.add (Linconstr.expr c) (Linexpr.var margin_var))
              Linconstr.Le
        | Linconstr.Le | Linconstr.Eq -> c)
      constraints
  in
  let cap =
    Linconstr.make (Linexpr.sub (Linexpr.var margin_var) (Linexpr.const Q.one)) Linconstr.Le
  in
  let floor0 =
    Linconstr.make (Linexpr.neg (Linexpr.var margin_var)) Linconstr.Le
  in
  match
    solve_core ?warm_key ?on_warm ~objective:(Linexpr.var margin_var)
      ~constraints:(cap :: floor0 :: relaxed) ()
  with
  | Infeasible -> None
  | Unbounded -> assert false
  | Optimal (t, pt) ->
      if Q.sign t > 0 then Some (Var.Map.remove margin_var pt) else None

let strictly_feasible constraints = strictly_feasible_gen constraints

(* Verdict-only strict feasibility with warm-basis reuse.  The optimum of
   the margin LP is unique whatever basis the solve starts from, so the
   verdict (its sign) is basis-independent and warm starts are safe here
   even though the witness point is not path-deterministic —
   [strictly_feasible] stays cold for exactly that reason.  The key is
   the sorted constraint-tag set prefixed with -1, so it can never
   collide with [range]'s raw tag-list keys over the same constraints
   (which describe a different LP). *)
let feasible_strict constraints =
  let warm_key =
    -1 :: List.sort_uniq Int.compare (List.map Linconstr.tag constraints)
  in
  strictly_feasible_gen ~warm_key
    ~on_warm:(fun () -> T.incr tm_basis_reuse)
    constraints
  <> None

let range e constraints =
  (* Both solves (and any later [range] over the same system — the
     bounding-box sweep, warm plan re-execution) share the warm-basis
     cache: the maximize step starts from the minimize step's final basis
     instead of running phase 1 again.  Values are unaffected: the optimum
     value of an LP is unique whatever the starting basis. *)
  let warm_key = List.map Linconstr.tag constraints in
  let solve objective =
    solve_core ~warm_key ~objective ~constraints ()
  in
  match solve (Linexpr.neg e) with
  | Infeasible -> None
  | Unbounded -> (
      match solve e with
      | Optimal (hi, _) -> Some (None, Some hi)
      | Unbounded -> Some (None, None)
      | Infeasible -> assert false)
  | Optimal (neg_lo, _) -> (
      let lo = Q.neg neg_lo in
      match solve e with
      | Optimal (hi, _) -> Some (Some lo, Some hi)
      | Unbounded -> Some (Some lo, None)
      | Infeasible -> assert false)

(* Entailment needs only verdicts, so it rides the warm-keyed variant:
   the rewriter and redundancy sweeps probe the same contexts with
   different negated atoms, and the shared basis survives across them. *)
let implied context atom =
  List.for_all
    (fun n -> not (feasible_strict (n :: context)))
    (Linconstr.negate atom)
