open Cqa_arith
open Cqa_logic
module T = Cqa_telemetry.Telemetry

type t = { vars : Var.t array; dnf : Linformula.dnf }

let dim t = Array.length t.vars
let vars t = t.vars
let dnf t = t.dnf

let check_vars vars =
  let s = Var.Set.of_list (Array.to_list vars) in
  if Var.Set.cardinal s <> Array.length vars then
    invalid_arg "Semilinear.make: duplicate coordinate variables";
  s

let make vars d =
  let allowed = check_vars vars in
  let used = Linformula.dnf_vars d in
  if not (Var.Set.subset used allowed) then
    invalid_arg "Semilinear.make: constraint mentions a foreign variable";
  { vars; dnf = List.filter Fourier_motzkin.satisfiable_conj d }

let default_vars n = Array.init n (fun i -> Var.of_string (Printf.sprintf "x%d" i))

let of_formula vars f =
  let allowed = check_vars vars in
  let free = Linformula.free_vars f in
  if not (Var.Set.subset free allowed) then
    invalid_arg "Semilinear.of_formula: free variable not a coordinate";
  { vars; dnf = Fourier_motzkin.qe f }

let empty n = { vars = default_vars n; dnf = [] }
let full n = { vars = default_vars n; dnf = [ [] ] }

let box ranges =
  let vars = default_vars (Array.length ranges) in
  let conj =
    List.concat
      (List.mapi
         (fun i (lo, hi) ->
           [ Linconstr.ge (Linexpr.var vars.(i)) (Linexpr.const lo);
             Linconstr.le (Linexpr.var vars.(i)) (Linexpr.const hi) ])
         (Array.to_list ranges))
  in
  { vars; dnf = [ conj ] }

let unit_cube n = box (Array.make n (Q.zero, Q.one))

let halfspace vars a =
  let _ = check_vars vars in
  make vars [ [ a ] ]

let of_conjunction vars conj = make vars [ conj ]

let env_of t pt =
  if Array.length pt <> dim t then invalid_arg "Semilinear: point dimension";
  let env = ref Var.Map.empty in
  Array.iteri (fun i v -> env := Var.Map.add v pt.(i) !env) t.vars;
  !env

let mem t pt = Linformula.dnf_holds t.dnf (env_of t pt)

(* Align [b] to the coordinates of [a]. *)
let align a b =
  if dim a <> dim b then invalid_arg "Semilinear: dimension mismatch";
  if a.vars = b.vars then b.dnf
  else begin
    let table = Hashtbl.create 8 in
    Array.iteri (fun i v -> Hashtbl.replace table v a.vars.(i)) b.vars;
    let rn v = match Hashtbl.find_opt table v with Some v' -> v' | None -> v in
    List.map (List.map (Linconstr.rename rn)) b.dnf
  end

let union a b = { a with dnf = a.dnf @ align a b }

let inter a b =
  let db = align a b in
  let prod =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Linformula.simplify_conjunction (ca @ cb)) db)
      a.dnf
  in
  { a with dnf = List.filter Fourier_motzkin.satisfiable_conj prod }

let compl a = { a with dnf = Fourier_motzkin.complement_dnf a.dnf }
let diff a b = inter a (compl { a with dnf = align a b })
let is_empty a = not (Fourier_motzkin.satisfiable_dnf a.dnf)
let subset a b = is_empty (diff a b)
let equal a b = subset a b && subset b a

let sample_point a =
  match Fourier_motzkin.sample_point_dnf a.dnf with
  | None -> None
  | Some env ->
      Some
        (Array.map
           (fun v -> Option.value ~default:Q.zero (Var.Map.find_opt v env))
           a.vars)

let relax conj =
  List.map
    (fun atom ->
      match Linconstr.op atom with
      | Linconstr.Lt -> Linconstr.make (Linconstr.expr atom) Linconstr.Le
      | Linconstr.Le | Linconstr.Eq -> atom)
    conj

let enumerate_finite a =
  let n = dim a in
  let point_of conj =
    if not (Fourier_motzkin.satisfiable_conj conj) then Some None
    else begin
      let relaxed = relax conj in
      let rec coords i acc =
        if i >= n then Some (Some (Array.of_list (List.rev acc)))
        else begin
          match Simplex.range (Linexpr.var a.vars.(i)) relaxed with
          | None -> Some None
          | Some (Some lo, Some hi) when Q.equal lo hi -> coords (i + 1) (lo :: acc)
          | Some _ -> None
        end
      in
      coords 0 []
    end
  in
  (* Lexicographic comparison through [Q.compare]: the polymorphic compare
     would order rationals by representation (two-tier integers), not by
     value. *)
  let cmp_pt (p : Q.t array) (q : Q.t array) =
    let rec go i =
      if i >= Array.length p then 0
      else
        let c = Q.compare p.(i) q.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let rec go acc = function
    | [] -> Some (List.sort_uniq cmp_pt (List.rev acc))
    | conj :: rest -> (
        match point_of conj with
        | None -> None
        | Some None -> go acc rest
        | Some (Some pt) -> go (pt :: acc) rest)
  in
  go [] a.dnf

let project_last a =
  let n = dim a in
  if n = 0 then invalid_arg "Semilinear.project_last: dimension 0";
  let last = a.vars.(n - 1) in
  { vars = Array.sub a.vars 0 (n - 1);
    dnf = Fourier_motzkin.eliminate_var_dnf last a.dnf }

let section_last a c =
  let n = dim a in
  if n = 0 then invalid_arg "Semilinear.section_last: dimension 0";
  let last = a.vars.(n - 1) in
  let sub conj =
    Linformula.simplify_conjunction
      (List.map (fun atom -> Linconstr.subst atom last (Linexpr.const c)) conj)
  in
  { vars = Array.sub a.vars 0 (n - 1); dnf = List.filter_map sub a.dnf }

let last_axis_cell a pt =
  let n = dim a in
  if n = 0 then invalid_arg "Semilinear.last_axis_cell: dimension 0";
  if Array.length pt <> n - 1 then
    invalid_arg "Semilinear.last_axis_cell: point dimension";
  let env = ref Var.Map.empty in
  for i = 0 to n - 2 do
    env := Var.Map.add a.vars.(i) pt.(i) !env
  done;
  let last = a.vars.(n - 1) in
  let restrict conj =
    Linformula.simplify_conjunction
      (List.map (fun atom -> Linconstr.eval_partial atom !env) conj)
  in
  List.fold_left
    (fun acc conj ->
      match restrict conj with
      | None -> acc
      | Some c -> Cell1.union acc (Cell1.of_constraints last c))
    Cell1.empty a.dnf

let bounding_box_raw a =
  if a.dnf = [] then None
  else begin
    let n = dim a in
    let ranges = Array.make n None in
    let ok = ref true in
    List.iter
      (fun conj ->
        if !ok then
          for i = 0 to n - 1 do
            if !ok then begin
              match Simplex.range (Linexpr.var a.vars.(i)) (relax conj) with
              | None -> () (* infeasible disjunct: contributes nothing *)
              | Some (Some lo, Some hi) ->
                  ranges.(i) <-
                    (match ranges.(i) with
                    | None -> Some (lo, hi)
                    | Some (l, h) -> Some (Q.min l lo, Q.max h hi))
              | Some _ -> ok := false
            end
          done)
      a.dnf;
    if not !ok then None
    else if Array.exists (fun r -> r = None) ranges then
      (* every satisfiable disjunct contributed; None remains only if all
         disjuncts were infeasible *)
      None
    else Some (Array.map (function Some r -> r | None -> assert false) ranges)
  end

(* Bounding boxes cost two LPs per (disjunct, dimension); the volume sweep
   recomputes them for the same sets at every level (breakpoints, then each
   recursive section).  Constraints are interned, and the box is invariant
   under both disjunct order and atom order (ranges merge by min/max), so
   the canonical tag key is sound.  Lock-striped for the domain-parallel
   volume engine (same structural key semantics as the polymorphic Hashtbl
   it replaces); a full stripe resets, as the whole table used to. *)
module Bbox_tbl = Cqa_conc.Striped_tbl.Make (struct
  type t = Var.t list * int list list

  let equal (a : t) (b : t) = a = b
  let hash (k : t) = Hashtbl.hash k
end)

let bbox_memo : (Q.t * Q.t) array option Bbox_tbl.t =
  Bbox_tbl.create ~name:"semilinear.bbox_memo" ~cap:16384
    ~evict:Cqa_conc.Striped_tbl.Reset ()

let clear_bbox_cache () = Bbox_tbl.reset bbox_memo

let bounding_box a =
  if a.dnf = [] then None
  else begin
    let key =
      ( Array.to_list a.vars,
        List.sort compare
          (List.map
             (fun conj -> List.sort_uniq Int.compare (List.map Linconstr.tag conj))
             a.dnf) )
    in
    match Bbox_tbl.find_opt bbox_memo key with
    | Some r -> r
    | None ->
        let r = bounding_box_raw a in
        Bbox_tbl.replace bbox_memo key r;
        r
  end

let is_bounded a = is_empty a || bounding_box a <> None

let clamp_unit a = inter a (unit_cube (dim a))

let rename_vars vars a =
  let _ = check_vars vars in
  if Array.length vars <> dim a then invalid_arg "Semilinear.rename_vars";
  { vars; dnf = align { vars; dnf = [] } a }

let disjunct_count a = List.length a.dnf
let atom_count a = List.fold_left (fun acc c -> acc + List.length c) 0 a.dnf

let pp fmt a =
  Format.fprintf fmt "@[<v>dim %d over (%a):@ %a@]" (dim a)
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Var.pp)
    (Array.to_list a.vars) Linformula.pp_dnf a.dnf

(* ------------------------------------------------------------------ *)
(* Coalescing exactly-adjacent DNF pieces                              *)
(* ------------------------------------------------------------------ *)

(* Removals are computed as [inter s (compl r)], which tiles what is left
   of each disjunct with one piece per atom of [r]; repeated updates made
   the disjunct list grow without bound (ROADMAP item 3's leftover).
   Pieces cut by the same hyperplane glue back together exactly:

     R /\ (e <= 0)  \/  R /\ (-e OP 0)  =  R

   whenever the two sides cover the whole line, i.e. unless both atoms
   are strict (Lt/Lt misses the boundary e = 0 itself; Eq atoms never
   cover).  Constraints are interned with primitive coefficients, so the
   complementary-atom test is a pointer comparison of [expr b] against
   the interned negation of [expr a] — no arithmetic. *)

let tm_coalesced = T.counter "db.update.coalesced"

let complementary a b =
  (match (Linconstr.op a, Linconstr.op b) with
  | Linconstr.Eq, _ | _, Linconstr.Eq -> false
  | Linconstr.Lt, Linconstr.Lt -> false
  | _ -> true)
  && Linexpr.equal (Linconstr.expr b) (Linexpr.neg (Linconstr.expr a))

let coalesce_dnf d =
  let canon = List.map (List.sort_uniq Linconstr.compare) d in
  (* merge two disjuncts when they agree on every atom but one
     complementary pair; both inputs are sorted, so a single merge walk
     finds the symmetric difference *)
  let try_merge c1 c2 =
    let rec walk shared o1 o2 l1 l2 =
      match (l1, l2) with
      | [], [] -> Some (shared, o1, o2)
      | x :: r1, [] -> walk shared (x :: o1) o2 r1 []
      | [], y :: r2 -> walk shared o1 (y :: o2) [] r2
      | x :: r1, y :: r2 ->
          let c = Linconstr.compare x y in
          if c = 0 then walk (x :: shared) o1 o2 r1 r2
          else if c < 0 then walk shared (x :: o1) o2 r1 l2
          else walk shared o1 (y :: o2) l1 r2
    in
    match walk [] [] [] c1 c2 with
    | Some (shared, [ a ], [ b ]) when complementary a b || complementary b a
      ->
        Some (List.rev shared)
    | _ -> None
  in
  let merged_any = ref false in
  let rec pass acc = function
    | [] -> List.rev acc
    | c :: rest -> (
        let rec find before = function
          | [] -> None
          | c' :: after -> (
              match try_merge c c' with
              | Some m -> Some (m, List.rev_append before after)
              | None -> find (c' :: before) after)
        in
        match find [] rest with
        | Some (m, rest') ->
            merged_any := true;
            T.incr tm_coalesced;
            (* the merged piece may glue onto yet another piece: keep it
               in play within the same pass *)
            pass acc (m :: rest')
        | None -> pass (c :: acc) rest)
  in
  let rec fix d =
    merged_any := false;
    let d' = pass [] d in
    if !merged_any then fix d' else d'
  in
  fix canon |> List.sort_uniq (List.compare Linconstr.compare)

(* ------------------------------------------------------------------ *)
(* Deltas: localized edits with a change summary                       *)
(* ------------------------------------------------------------------ *)

type delta = {
  inserted : bool;
  updated : t;
  delta_box : (Q.t * Q.t) array option;
  delta_empty : bool;
}

let delta_of ~inserted ~updated r =
  let delta_empty = is_empty r in
  {
    inserted;
    updated;
    delta_box = (if delta_empty then None else bounding_box r);
    delta_empty;
  }

let insert_region s r =
  if is_empty r then { inserted = true; updated = s; delta_box = None; delta_empty = true }
  else delta_of ~inserted:true ~updated:(union s r) r

let remove_region s r =
  if is_empty r then { inserted = false; updated = s; delta_box = None; delta_empty = true }
  else
    let base = diff s r in
    delta_of ~inserted:false ~updated:{ base with dnf = coalesce_dnf base.dnf } r

let insert_polytope s conj = insert_region s (of_conjunction s.vars conj)
let remove_polytope s conj = remove_region s (of_conjunction s.vars conj)
