open Cqa_arith
open Cqa_logic
module T = Cqa_telemetry.Telemetry

(* Telemetry probes (zero-cost while disabled): per-variable projections
   with atom counts before/after, the Fkey QE memo and the shared
   conjunction-satisfiability memo.  All fm.* counters measure work
   actually performed, and elimination runs outside the memo locks: under
   the domain-parallel volume engine two domains can both miss the same
   cold key and eliminate it twice, so these counts (not just the
   hit/miss splits) are scheduling-dependent; they are deterministic for
   any single-domain run. *)
let tm_qe_calls = T.counter "fm.qe.calls"
let tm_projections = T.counter "fm.qe.projections"
let tm_atoms_before = T.counter "fm.qe.atoms_before"
let tm_atoms_after = T.counter "fm.qe.atoms_after"
let tm_qe_memo_hit = T.counter "fm.qe_memo.hit"
let tm_qe_memo_miss = T.counter "fm.qe_memo.miss"
let tm_sat_queries = T.counter "fm.sat.queries"
let tm_sat_memo_hit = T.counter "fm.sat_memo.hit"
let tm_sat_memo_miss = T.counter "fm.sat_memo.miss"

(* Cheap syntactic strengthening: among atoms sharing the same linear part
   (coefficients are kept primitive, so parallel constraints have equal
   variable parts and differ by the constant), keep only the tightest.
   Removes the bulk of Fourier-Motzkin's redundant combinations without any
   satisfiability calls. *)
let tighten_parallel conj =
  let key a =
    let e = Linconstr.expr a in
    (Linconstr.op a = Linconstr.Eq, Linexpr.coeffs e)
  in
  let tighter a b =
    (* same linear part: larger constant means a stronger <=/< constraint.
       The cached float enclosures decide the comparison whenever they are
       disjoint or equal points (always, for sub-2^53 integer constants);
       exact Q.compare only on the residue. *)
    let c =
      match
        if Flatrow.enabled () then Flatrow.compare_constants a b else None
      with
      | Some c -> c
      | None ->
          let ca = Linexpr.constant (Linconstr.expr a) in
          let cb = Linexpr.constant (Linconstr.expr b) in
          Q.compare ca cb
    in
    if c > 0 then a
    else if c < 0 then b
    else if Linconstr.op a = Linconstr.Lt then a
    else b
  in
  let table = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let k = key a in
      match Hashtbl.find_opt table k with
      | None -> Hashtbl.replace table k a
      | Some b ->
          if fst k then () (* keep all equalities: conjunction may be unsat *)
          else Hashtbl.replace table k (tighter a b))
    conj;
  (* equalities may repeat in the table slot: collect all distinct *)
  let eqs =
    List.filter (fun a -> Linconstr.op a = Linconstr.Eq) conj
    |> List.sort_uniq Linconstr.compare
  in
  let ineqs =
    Hashtbl.fold (fun (is_eq, _) a acc -> if is_eq then acc else a :: acc) table []
  in
  eqs @ List.sort Linconstr.compare ineqs

(* Optimization toggles, exposed for the ablation benchmarks: each knob
   names one of the design choices DESIGN.md calls out.  The first three are
   on by default; turning them off restores textbook Fourier-Motzkin
   behaviour.  [simplex_redundancy] selects the pure-simplex per-atom
   redundancy oracle instead of the default hybrid (elimination for small
   conjunctions, simplex above the dispatch threshold): both are exact, so
   the toggle changes speed only, and on the small conjunctions that
   dominate the benchmark workloads the hybrid is faster -- it defaults to
   off. *)
type optimizations = {
  mutable tightening : bool; (* parallel-atom strengthening after each step *)
  mutable elim_pruning : bool; (* satisfiability-based pruning of large conjunctions *)
  mutable absorption : bool; (* drop disjuncts syntactically implied by another *)
  mutable simplex_redundancy : bool; (* simplex oracle for per-atom redundancy *)
}

let optimizations =
  { tightening = true; elim_pruning = true; absorption = true; simplex_redundancy = false }

(* Partition a conjunction by the sign of the coefficient of [x].  The
   accumulators are consed and the frees reversed once at the end, keeping
   the pass linear (the previous [frees @ [a]] made it quadratic on
   conjunctions dominated by atoms not mentioning [x]). *)
let partition_on x conj =
  let eqs, lowers, uppers, frees =
    List.fold_left
      (fun (eqs, lowers, uppers, frees) a ->
        let c = Linexpr.coeff (Linconstr.expr a) x in
        if Q.is_zero c then (eqs, lowers, uppers, a :: frees)
        else
          match Linconstr.op a with
          | Linconstr.Eq -> (a :: eqs, lowers, uppers, frees)
          | Linconstr.Le | Linconstr.Lt ->
              if Q.sign c < 0 then (eqs, a :: lowers, uppers, frees)
              else (eqs, lowers, a :: uppers, frees))
      ([], [], [], []) conj
  in
  (eqs, lowers, uppers, List.rev frees)

(* Positive combination eliminating x from a lower bound [l] (coeff < 0) and
   an upper bound [u] (coeff > 0): c_u * e_l - c_l * e_u. *)
let combine x l u =
  let el = Linconstr.expr l and eu = Linconstr.expr u in
  let cl = Linexpr.coeff el x and cu = Linexpr.coeff eu x in
  let e = Linexpr.add (Linexpr.smul cu el) (Linexpr.smul (Q.neg cl) eu) in
  let op =
    match (Linconstr.op l, Linconstr.op u) with
    | Linconstr.Le, Linconstr.Le -> Linconstr.Le
    | _ -> Linconstr.Lt
  in
  Linconstr.make e op

(* Strong (satisfiability-based) redundancy pruning is quadratic in FM
   calls; apply it only to conjunctions long enough for it to pay off. *)
let prune_threshold = 10
(* forward reference to the satisfiability-based pruner defined below *)
let prune_large : (Linformula.conjunction -> Linformula.conjunction) ref =
  ref (fun c -> c)

let eliminate_var x conj =
  if T.enabled () then begin
    T.incr tm_projections;
    T.add tm_atoms_before (List.length conj)
  end;
  let eqs, lowers, uppers, frees = partition_on x conj in
  let result =
    match eqs with
    | e :: _ -> (
        match Linexpr.solve_for (Linconstr.expr e) x with
        | None -> assert false
        | Some sol ->
            List.filter_map
              (fun a -> if Linconstr.equal a e then None else Some (Linconstr.subst a x sol))
              conj)
    | [] ->
        let combos =
          List.concat_map (fun l -> List.map (fun u -> combine x l u) uppers) lowers
        in
        frees @ combos
  in
  Option.map
    (fun c ->
      let c = if optimizations.tightening then tighten_parallel c else c in
      let c = if optimizations.elim_pruning then !prune_large c else c in
      if T.enabled () then T.add tm_atoms_after (List.length c);
      c)
    (Linformula.simplify_conjunction result)

let eliminate_var_dnf x d = List.filter_map (eliminate_var x) d

let pick_var conj candidates =
  (* prefer equality-substitutable variables, then the smallest
     lowers*uppers product *)
  let score v =
    let eqs, lowers, uppers, _ = partition_on v conj in
    if eqs <> [] then -1 else List.length lowers * List.length uppers
  in
  match candidates with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc v ->
            match acc with
            | None -> Some (v, score v)
            | Some (_, s) ->
                let s' = score v in
                if s' < s then Some (v, s') else acc)
          None candidates
      in
      Option.map fst best

(* [prefilter] gates the float kernel's early-unsat probe on each input
   disjunct.  A surely-unsatisfiable conjunction projects to an
   unsatisfiable conjunction (Fourier-Motzkin computes exact
   projections), which every downstream consumer — satisfiability,
   sample_point_dnf, the qe satisfiability sweep — treats exactly like an
   absent disjunct, so dropping it early changes no result, only the work
   done.  The satisfiability entry points pass [prefilter:false]: they
   have already consulted the filter on the same conjunction and got
   Unknown, so re-probing could only repeat that answer. *)
let eliminate_all_gen ~prefilter vs d =
  let target = Var.Set.of_list vs in
  let rec elim_conj conj =
    let present = Var.Set.inter target (Linformula.conj_vars conj) in
    match pick_var conj (Var.Set.elements present) with
    | None -> Linformula.simplify_conjunction conj
    | Some v -> (
        match eliminate_var v conj with
        | None -> None
        | Some conj' -> elim_conj conj')
  in
  let elim_conj conj =
    if prefilter && Flatrow.enabled () && Flatrow.sat_conj conj = Flatrow.Unsat
    then None
    else elim_conj conj
  in
  List.filter_map elim_conj d

let eliminate_all vs d = eliminate_all_gen ~prefilter:true vs d

let satisfiable_conj_fm conj =
  match Linformula.simplify_conjunction conj with
  | None -> false
  | Some conj -> (
      let vs = Var.Set.elements (Linformula.conj_vars conj) in
      match eliminate_all_gen ~prefilter:false vs [ conj ] with
      | [] -> false
      | _ -> true)

(* Conjunction feasibility by the exact simplex: polynomial, but with a
   higher constant than elimination on the small conjunctions that dominate
   here.  Exported as an independent oracle; [satisfiable_conj] below uses
   elimination.  The warm-keyed [feasible_strict] reuses the last optimal
   basis for a structurally identical system — the filtered kernel's
   fallback re-solves hit the same conjunctions repeatedly. *)
let satisfiable_conj_simplex conj =
  match Linformula.simplify_conjunction conj with
  | None -> false
  | Some conj -> Simplex.feasible_strict conj

(* Elimination-based satisfiability is fastest on the small conjunctions
   that dominate, but degrades combinatorially; large systems go to the
   polynomial simplex.  The float kernel is consulted first: a sure
   verdict is certified equal to the exact one, and only Unknown (filter
   off, caps exceeded, or genuinely borderline arithmetic) pays for the
   exact path. *)
let satisfiable_conj_raw conj =
  match if Flatrow.enabled () then Flatrow.sat_conj conj else Flatrow.Unknown with
  | Flatrow.Sat -> true
  | Flatrow.Unsat -> false
  | Flatrow.Unknown ->
      if List.length conj <= 12 then satisfiable_conj_fm conj
      else satisfiable_conj_simplex conj

(* Satisfiability memo, keyed on the sorted interned-constraint tags of the
   conjunction.  Tags are never reused (the intern counter only grows), so a
   stale entry for collected constraints can never be looked up again; and
   the answer is a property of the constraint set, independent of both atom
   order and the optimization toggles, so the table survives ablation runs.
   Lock-striped for the domain-parallel volume engine: parallel sweeps used
   to serialize on one global mutex here. *)
module Sat_tbl = Cqa_conc.Striped_tbl.Make (struct
  type t = int list

  let equal = List.equal Int.equal
  let hash (k : int list) = Hashtbl.hash k
end)

let sat_memo : bool Sat_tbl.t =
  Sat_tbl.create ~name:"fm.sat_memo" ~cap:65536
    ~evict:Cqa_conc.Striped_tbl.Reset ()

let sat_cache_size () = Sat_tbl.length sat_memo

(* The verdict is a property of the constraint set, not of the deciding
   oracle, so every oracle shares the one table. *)
let satisfiable_conj_memo oracle conj =
  match conj with
  | [] -> true
  | _ -> (
      let key = List.sort_uniq Int.compare (List.map Linconstr.tag conj) in
      T.incr tm_sat_queries;
      match Sat_tbl.find_opt sat_memo key with
      | Some b ->
          T.incr tm_sat_memo_hit;
          b
      | None ->
          T.incr tm_sat_memo_miss;
          let b = oracle conj in
          Sat_tbl.replace sat_memo key b;
          b)

let satisfiable_conj conj = satisfiable_conj_memo satisfiable_conj_raw conj

let satisfiable_dnf d = List.exists satisfiable_conj d

let entails_conj conj a =
  List.for_all
    (fun n -> not (satisfiable_conj (n :: conj)))
    (Linconstr.negate a)

let prune_redundant conj =
  let rec go kept = function
    | [] -> List.rev kept
    | a :: rest ->
        if entails_conj (List.rev_append kept rest) a then go kept rest
        else go (a :: kept) rest
  in
  go [] conj

(* The same per-atom sweep with the simplex as the entailment oracle: each
   check is one LP per negated disjunct instead of a full re-elimination of
   the context, so it scales polynomially with the conjunction size.  The
   satisfiability queries go through the shared verdict memo (the verdict
   does not depend on the oracle), so warm checks are table hits for either
   pruner.  Both oracles are exact and complete over the reals, so the two
   pruners make identical keep/drop decisions -- toggling
   [simplex_redundancy] changes speed, never results. *)
let entails_conj_simplex conj a =
  List.for_all
    (fun n -> not (satisfiable_conj_memo satisfiable_conj_simplex (n :: conj)))
    (Linconstr.negate a)

let prune_redundant_simplex conj =
  let rec go kept = function
    | [] -> List.rev kept
    | a :: rest ->
        if entails_conj_simplex (List.rev_append kept rest) a then go kept rest
        else go (a :: kept) rest
  in
  go [] conj

let prune_checked conj =
  if optimizations.simplex_redundancy then prune_redundant_simplex conj
  else prune_redundant conj

(* Keep Fourier-Motzkin's intermediate conjunctions irredundant: without
   this, each eliminated variable can square the constraint count, which is
   the method's classical failure mode. *)
let () =
  prune_large :=
    fun conj ->
      if List.length conj > prune_threshold then prune_checked conj else conj

(* Syntactic dedup of disjuncts (atoms sorted first), plus absorption:
   a disjunct whose atom set contains another disjunct's atom set is
   implied by it and can be dropped. *)
let dedup_dnf (d : Linformula.dnf) : Linformula.dnf =
  let canon conj = List.sort_uniq Linconstr.compare conj in
  let subset small big =
    (* both sorted *)
    let rec go s b =
      match (s, b) with
      | [], _ -> true
      | _, [] -> false
      | x :: s', y :: b' ->
          let c = Linconstr.compare x y in
          if c = 0 then go s' b' else if c > 0 then go s b' else false
    in
    go small big
  in
  let cs = List.map canon d in
  let rec uniq acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let dominated c' = if optimizations.absorption then subset c' c else c' = c in
        if List.exists dominated acc || List.exists dominated rest then
          uniq acc rest
        else uniq (c :: acc) rest
  in
  uniq [] cs


(* Complement of a DNF, as a DNF.  The product over the negated disjuncts is
   pruned eagerly: partial conjunctions that are already unsatisfiable are
   dropped before they multiply. *)
let complement_dnf (d : Linformula.dnf) : Linformula.dnf =
  let neg_disjunct conj : Linformula.dnf =
    List.concat_map (fun a -> List.map (fun n -> [ n ]) (Linconstr.negate a)) conj
  in
  match d with
  | [] -> [ [] ]
  | _ ->
      let parts = List.map neg_disjunct d in
      let product =
        List.fold_left
          (fun acc part ->
            let next =
              List.concat_map
                (fun c ->
                  List.filter_map
                    (fun c' ->
                      match Linformula.simplify_conjunction (c @ c') with
                      | None -> None
                      | Some merged ->
                          if satisfiable_conj merged then begin
                            let t = tighten_parallel merged in
                            Some
                              (if List.length t > prune_threshold then
                                 prune_checked t
                               else t)
                          end
                          else None)
                    part)
                acc
            in
            dedup_dnf next)
          [ [] ] parts
      in
      product

(* Memo key for formulas over hash-consed atoms: equality short-circuits on
   physical identity and bottoms out in O(1) [Linconstr.equal]; the hash
   mixes the precomputed atom hashes instead of walking coefficient maps
   with the depth-limited polymorphic hash (whose 10-node cutoff made deep
   QE keys collide systematically). *)
module Fkey = struct
  type t = Linformula.t

  let rec equal (f : t) (g : t) =
    f == g
    ||
    match (f, g) with
    | Formula.True, Formula.True | Formula.False, Formula.False -> true
    | Formula.Atom a, Formula.Atom b -> Linconstr.equal a b
    | Formula.Rel (r, vs), Formula.Rel (r', vs') ->
        String.equal r r' && List.equal Var.equal vs vs'
    | Formula.Not f', Formula.Not g' -> equal f' g'
    | Formula.And (f1, f2), Formula.And (g1, g2)
    | Formula.Or (f1, f2), Formula.Or (g1, g2) ->
        equal f1 g1 && equal f2 g2
    | Formula.Exists (v, f'), Formula.Exists (w, g')
    | Formula.Forall (v, f'), Formula.Forall (w, g')
    | Formula.Exists_adom (v, f'), Formula.Exists_adom (w, g')
    | Formula.Forall_adom (v, f'), Formula.Forall_adom (w, g') ->
        Var.equal v w && equal f' g'
    | _ -> false

  let mix a b = (((a * 65599) lxor b) * 65599) land max_int

  let rec hash (f : t) =
    match f with
    | Formula.True -> 1
    | Formula.False -> 2
    | Formula.Atom a -> mix 3 (Linconstr.hash a)
    | Formula.Rel (r, vs) ->
        List.fold_left (fun acc v -> mix acc (Hashtbl.hash v)) (mix 5 (Hashtbl.hash r)) vs
    | Formula.Not f' -> mix 7 (hash f')
    | Formula.And (f1, f2) -> mix (mix 11 (hash f1)) (hash f2)
    | Formula.Or (f1, f2) -> mix (mix 13 (hash f1)) (hash f2)
    | Formula.Exists (v, f') -> mix (mix 17 (Hashtbl.hash v)) (hash f')
    | Formula.Forall (v, f') -> mix (mix 19 (Hashtbl.hash v)) (hash f')
    | Formula.Exists_adom (v, f') -> mix (mix 23 (Hashtbl.hash v)) (hash f')
    | Formula.Forall_adom (v, f') -> mix (mix 29 (Hashtbl.hash v)) (hash f')
end

module Fmemo = Hashtbl.Make (Fkey)

(* Quantifier elimination is memoized on the structure of subformulas:
   callers (notably the FO + POLY + SUM evaluator) re-eliminate identical
   quantified subformulas under many different outer instantiations.

   The table is shared across domains (the sampling estimators evaluate
   membership in parallel) and lock-striped on the Fkey hash, so domains
   touching different subformulas no longer contend; the elimination itself
   runs outside any lock, at worst duplicating work for a formula two
   domains race on.  When a stripe outgrows its capacity it sheds half of
   its entries instead of resetting, keeping the warm half of the working
   set. *)
module Qe_tbl = Cqa_conc.Striped_tbl.Make (Fkey)

let qe_memo : Linformula.dnf Qe_tbl.t =
  Qe_tbl.create ~name:"fm.qe_memo" ~cap:65536
    ~evict:Cqa_conc.Striped_tbl.Half ()

let set_qe_cache_capacity n =
  if n < 2 then invalid_arg "Fourier_motzkin.set_qe_cache_capacity";
  Qe_tbl.set_capacity qe_memo n

let qe_cache_size () = Qe_tbl.length qe_memo
let memo_find f = Qe_tbl.find_opt qe_memo f
let memo_add f d = Qe_tbl.replace qe_memo f d

let rec qe_nnf (f : Linformula.t) : Linformula.dnf =
  match f with
  | Formula.True -> [ [] ]
  | Formula.False -> []
  | Formula.Atom a -> [ [ a ] ]
  | Formula.Not (Formula.Atom a) -> List.map (fun c -> [ c ]) (Linconstr.negate a)
  | _ -> (
      match memo_find f with
      | Some d ->
          T.incr tm_qe_memo_hit;
          d
      | None ->
          T.incr tm_qe_memo_miss;
          let d = qe_nnf_raw f in
          memo_add f d;
          d)

and qe_nnf_raw (f : Linformula.t) : Linformula.dnf =
  match f with
  | Formula.True | Formula.False | Formula.Atom _ -> assert false
  | Formula.Not (Formula.Atom _) -> assert false
  | Formula.Not _ -> invalid_arg "Fourier_motzkin.qe: not in NNF"
  | Formula.And (g, h) ->
      let dg = qe_nnf g and dh = qe_nnf h in
      dedup_dnf
        (List.concat_map
           (fun cg ->
             List.filter_map
               (fun ch ->
                 match Linformula.simplify_conjunction (cg @ ch) with
                 | None -> None
                 | Some merged ->
                     if satisfiable_conj merged then Some merged else None)
               dh)
           dg)
  | Formula.Or (g, h) -> dedup_dnf (qe_nnf g @ qe_nnf h)
  | Formula.Exists (v, g) ->
      (* eliminate the whole existential block at once, in a greedy order *)
      let rec peel acc = function
        | Formula.Exists (v', g') -> peel (v' :: acc) g'
        | body -> (List.rev acc, body)
      in
      let vs, body = peel [ v ] g in
      dedup_dnf
        (List.filter satisfiable_conj (eliminate_all vs (qe_nnf body)))
  | Formula.Forall (v, g) ->
      (* a universal block costs two complements total, not two per
         variable: forall x...z. phi = not exists x...z. not phi *)
      let rec peel acc = function
        | Formula.Forall (v', g') -> peel (v' :: acc) g'
        | body -> (List.rev acc, body)
      in
      let vs, body = peel [ v ] g in
      let neg = complement_dnf (qe_nnf body) in
      complement_dnf
        (dedup_dnf (List.filter satisfiable_conj (eliminate_all vs neg)))
  | Formula.Rel _ -> invalid_arg "Fourier_motzkin.qe: schema atom"
  | Formula.Exists_adom _ | Formula.Forall_adom _ ->
      invalid_arg "Fourier_motzkin.qe: active-domain quantifier"

let clear_qe_cache () =
  Qe_tbl.reset qe_memo;
  Sat_tbl.reset sat_memo

let qe f =
  T.incr tm_qe_calls;
  List.filter satisfiable_conj (qe_nnf (Linformula.nnf f))

let sat f =
  let d = qe f in
  let vs = Var.Set.elements (Linformula.dnf_vars d) in
  eliminate_all vs d <> []

let valid f = not (sat (Formula.Not f))

let equivalent f g = valid (Formula.iff f g)

(* Numeric bounds that a conjunction places on [x] once all other variables
   are fixed by [env]. *)
type bound = { value : Q.t; strict : bool }

let sample_point conj =
  match Linformula.simplify_conjunction conj with
  | None -> None
  | Some conj ->
      let rec eliminate stack conj =
        let vs = Var.Set.elements (Linformula.conj_vars conj) in
        match pick_var conj vs with
        | None ->
            (* ground conjunction: satisfiable iff simplification succeeds *)
            (match Linformula.simplify_conjunction conj with
            | Some [] -> Some stack
            | Some _ | None -> None)
        | Some v -> (
            let mentioning =
              List.filter (fun a -> not (Q.is_zero (Linexpr.coeff (Linconstr.expr a) v))) conj
            in
            match eliminate_var v conj with
            | None -> None
            | Some conj' -> eliminate ((v, mentioning) :: stack) conj')
      in
      (match eliminate [] conj with
      | None -> None
      | Some stack ->
          (* Variables can drop out of the conjunction before being picked
             (degenerate combinations); they are unconstrained by the
             remainder, so pin them to zero up front. *)
          let eliminated =
            List.fold_left (fun s (v, _) -> Var.Set.add v s) Var.Set.empty stack
          in
          let stray = Var.Set.diff (Linformula.conj_vars conj) eliminated in
          let initial =
            Var.Set.fold (fun v env -> Var.Map.add v Q.zero env) stray Var.Map.empty
          in
          (* stack has the last-eliminated variable first: assign in order *)
          let assign env (v, atoms) =
            let lower = ref None and upper = ref None and forced = ref None in
            List.iter
              (fun a ->
                let e = Linexpr.eval_partial (Linconstr.expr a) env in
                let c = Linexpr.coeff e v in
                let r = Linexpr.constant e in
                (* c*v + r op 0 *)
                let b = Q.neg (Q.div r c) in
                match Linconstr.op a with
                | Linconstr.Eq -> forced := Some b
                | Linconstr.Le | Linconstr.Lt ->
                    let strict = Linconstr.op a = Linconstr.Lt in
                    if Q.sign c > 0 then begin
                      (* v <= b: keep the tightest upper bound *)
                      match !upper with
                      | Some u when Q.lt u.value b -> ()
                      | Some u when Q.equal u.value b && (u.strict || not strict) -> ()
                      | _ -> upper := Some { value = b; strict }
                    end
                    else begin
                      match !lower with
                      | Some l when Q.gt l.value b -> ()
                      | Some l when Q.equal l.value b && (l.strict || not strict) -> ()
                      | _ -> lower := Some { value = b; strict }
                    end)
              atoms;
            let x =
              match !forced with
              | Some v -> v
              | None -> (
                  match (!lower, !upper) with
                  | None, None -> Q.zero
                  | Some l, None -> Q.add l.value Q.one
                  | None, Some u -> Q.sub u.value Q.one
                  | Some l, Some u ->
                      if Q.equal l.value u.value then l.value
                      else Q.mid l.value u.value)
            in
            Var.Map.add v x env
          in
          Some (List.fold_left assign initial stack))

let sample_point_dnf d =
  List.fold_left
    (fun acc conj -> match acc with Some _ -> acc | None -> sample_point conj)
    None d

(* ------------------------------------------------------------------ *)
(* Emptiness witnesses and semantic equivalence                        *)
(* ------------------------------------------------------------------ *)

let witness f =
  match sample_point_dnf (qe f) with
  | None -> None
  | Some pt ->
      (* a disjunct need not mention every free variable of [f]; the ones it
         leaves out are unconstrained there, so pin them to zero to return a
         total point *)
      Some
        (Var.Set.fold
           (fun v env ->
             if Var.Map.mem v env then env else Var.Map.add v Q.zero env)
           (Linformula.free_vars f) pt)

let difference_witness f g = witness (Formula.And (f, Formula.Not g))

let equivalence_witness f g =
  match difference_witness f g with
  | Some _ as w -> w
  | None -> difference_witness g f
