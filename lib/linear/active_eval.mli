(** Active-domain evaluation of FO + LIN over finite instances: the
    classical setting of the paper's Section 4 results (Theorem 1 is proved
    "even over finite instances", and the natural-active collapse of [6]
    connects the two semantics).

    Active quantifiers range over the instance's active domain; natural
    quantifiers over all of R are decided by reduction to Fourier-Motzkin
    elimination. *)

open Cqa_arith
open Cqa_logic

val holds : Instance.t -> Q.t Var.Map.t -> Linconstr.t Formula.t -> bool
(** Truth under the environment.  Schema atoms look up the instance;
    [Exists_adom]/[Forall_adom] enumerate the active domain;
    natural quantifiers are eliminated symbolically. *)

val output : Instance.t -> Var.t list -> Linconstr.t Formula.t -> Q.t array list
(** Active-semantics query output: tuples over the active domain satisfying
    the formula, sorted. *)

val avg : Instance.t -> Var.t -> Linconstr.t Formula.t -> Q.t option
(** The Section 4.1 aggregate: AVG over a unary active-semantics query
    output; [None] when empty. *)
