(** Semi-linear sets: finitely representable subsets of R^n defined by
    quantifier-free formulas over R_lin, kept in DNF over a fixed tuple of
    coordinate variables.  These are the paper's f.r. instances over
    [(R, +, -, 0, 1, <)]. *)

open Cqa_arith
open Cqa_logic

type t

val dim : t -> int
val vars : t -> Var.t array
val dnf : t -> Linformula.dnf

val make : Var.t array -> Linformula.dnf -> t
(** @raise Invalid_argument on duplicate coordinate variables or constraints
    mentioning foreign variables. *)

val default_vars : int -> Var.t array
(** The canonical coordinates [x0 .. x(n-1)]. *)

val of_formula : Var.t array -> Linformula.t -> t
(** From a schema-free FO + LIN formula; quantifiers are eliminated.  Free
    variables of the formula must be among the coordinates. *)

val empty : int -> t
val full : int -> t
val box : (Q.t * Q.t) array -> t
(** Closed axis-aligned box. *)

val unit_cube : int -> t

val halfspace : Var.t array -> Linconstr.t -> t
val of_conjunction : Var.t array -> Linformula.conjunction -> t

val mem : t -> Q.t array -> bool
val union : t -> t -> t
val inter : t -> t -> t
val compl : t -> t
val diff : t -> t -> t

val is_empty : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val sample_point : t -> Q.t array option

val enumerate_finite : t -> Q.t array list option
(** The elements of a finite set, sorted ([None] when infinite): each
    satisfiable disjunct must pin every coordinate to a single value. *)

val project_last : t -> t
(** Orthogonal projection forgetting the last coordinate ([exists x_{n-1}]).
    @raise Invalid_argument in dimension 0. *)

val section_last : t -> Q.t -> t
(** Fix the last coordinate to a constant; dimension drops by one. *)

val last_axis_cell : t -> Q.t array -> Cell1.t
(** [last_axis_cell s a] is the set [{ y | (a, y) in s }] for a point [a] of
    dimension [dim s - 1]: a one-dimensional section along the last axis. *)

val bounding_box : t -> (Q.t * Q.t) array option
(** Exact ranges per axis of the non-strict relaxation; [None] when the set
    is empty or unbounded in some direction.  Memoized on the interned
    constraint tags (the volume sweep recomputes boxes for the same
    sections at every level); the underlying LP work therefore only happens
    on a cache miss, so the [simplex.*] telemetry counters depend on cache
    state. *)

val clear_bbox_cache : unit -> unit
(** Drop the bounding-box memo (cold-cache benchmarking and deterministic
    counter tests). *)

val is_bounded : t -> bool

val clamp_unit : t -> t
(** Intersection with the unit cube [I^n] (the paper's bounded setting). *)

val rename_vars : Var.t array -> t -> t
val disjunct_count : t -> int
val atom_count : t -> int
val pp : Format.formatter -> t -> unit

val coalesce_dnf : Linformula.dnf -> Linformula.dnf
(** Glue exactly-adjacent disjuncts back together: two conjunctions equal
    up to one complementary atom pair ([e <= 0] against the interned
    [-e <= 0] or [-e < 0], at least one side non-strict) merge into their
    shared rest, to fixpoint.  Semantics-preserving; used by
    {!remove_region} so repeated removals stop growing the disjunct list
    (each merge ticks [db.update.coalesced]). *)

(** {1 Deltas}

    Localized edits for incremental aggregate maintenance: inserting or
    removing a region produces the updated set together with a change
    summary carrying the delta's bounding box, so downstream caches
    (volume sweeps, section polynomials, samplers) can invalidate only
    what the box touches.  The summary describes the {e edited region},
    not the symmetric difference: membership can only change at points
    where the region itself changes the constraint data, so any point
    outside [delta_box] keeps its membership verbatim for both insert and
    remove. *)

type delta = {
  inserted : bool;  (** [true] for insert, [false] for remove *)
  updated : t;  (** the set after the edit *)
  delta_box : (Q.t * Q.t) array option;
      (** {!bounding_box} of the edited region; [None] when the region is
          empty or unbounded — pair with [delta_empty] to tell which *)
  delta_empty : bool;  (** the edited region is empty: the edit is a no-op *)
}

val insert_region : t -> t -> delta
(** [insert_region s r] is the union [s ∪ r] with [r]'s change summary.
    @raise Invalid_argument on dimension mismatch. *)

val remove_region : t -> t -> delta
(** [remove_region s r] is the difference [s ∖ r] with [r]'s change
    summary.  @raise Invalid_argument on dimension mismatch. *)

val insert_polytope : t -> Linformula.conjunction -> delta
(** [insert_region] of the single polytope [conj] over the set's own
    coordinates.  @raise Invalid_argument on foreign variables. *)

val remove_polytope : t -> Linformula.conjunction -> delta
