(** Convex polyhedra in H-representation: finite conjunctions of non-strict
    halfspaces [a . x <= b] over exact rationals. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear

type halfspace = { normal : Q.t array; offset : Q.t }
(** [normal . x <= offset]. *)

type t

val dim : t -> int
val halfspaces : t -> halfspace list

val make : int -> halfspace list -> t
(** @raise Invalid_argument on a normal of the wrong length or the zero
    normal. *)

val of_constraints : Var.t array -> Linconstr.t list -> t
(** Strict constraints are relaxed to non-strict (closure); equalities
    become two halfspaces. *)

val to_constraints : Var.t array -> t -> Linconstr.t list

val box : (Q.t * Q.t) array -> t
val simplex_standard : int -> t
(** [x_i >= 0, sum x_i <= 1]. *)

val cube : int -> t

val contains : t -> Q.t array -> bool
val is_empty : t -> bool
val is_bounded : t -> bool
val feasible_point : t -> Q.t array option

val bounding_box : t -> (Q.t * Q.t) array option
(** [None] if empty or unbounded. *)

val intersect : t -> t -> t
val translate : Q.t array -> t -> t
val pp : Format.formatter -> t -> unit
