open Cqa_arith

type t = Q.t array list

let of_vertices vs =
  if List.length vs < 3 then invalid_arg "Polygon.of_vertices: need 3 vertices";
  List.iter
    (fun v -> if Array.length v <> 2 then invalid_arg "Polygon.of_vertices: not 2-D")
    vs;
  vs

let vertices t = t
let vertex_count = List.length

let edges t =
  match t with
  | [] -> []
  | first :: _ ->
      let rec go = function
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: go rest
        | [] -> []
      in
      go t

let signed_area t =
  let twice =
    List.fold_left
      (fun acc (a, b) ->
        Q.add acc (Q.sub (Q.mul a.(0) b.(1)) (Q.mul b.(0) a.(1))))
      Q.zero (edges t)
  in
  Q.mul twice Q.half

let area t = Q.abs (signed_area t)

let perimeter_sq_sum t =
  List.fold_left
    (fun acc (a, b) ->
      let dx = Q.sub b.(0) a.(0) and dy = Q.sub b.(1) a.(1) in
      Q.add acc (Q.add (Q.mul dx dx) (Q.mul dy dy)))
    Q.zero (edges t)

let is_convex t =
  let vs = Array.of_list t in
  let n = Array.length vs in
  let sign_seen = ref 0 in
  let ok = ref true in
  for i = 0 to n - 1 do
    let a = vs.(i) and b = vs.((i + 1) mod n) and c = vs.((i + 2) mod n) in
    let s = Q.sign (Hull2d.cross a b c) in
    if s <> 0 then begin
      if !sign_seen = 0 then sign_seen := s
      else if s <> !sign_seen then ok := false
    end
  done;
  !ok

let contains_convex t p =
  if not (is_convex t) then invalid_arg "Polygon.contains_convex: non-convex";
  let orientation = Q.sign (signed_area t) in
  List.for_all
    (fun (a, b) ->
      let s = Q.sign (Hull2d.cross a b p) in
      s = 0 || s = orientation)
    (edges t)

let centroid t =
  let n = Q.of_int (List.length t) in
  let sx = List.fold_left (fun acc v -> Q.add acc v.(0)) Q.zero t in
  let sy = List.fold_left (fun acc v -> Q.add acc v.(1)) Q.zero t in
  [| Q.div sx n; Q.div sy n |]

let triangle_area a b c =
  (* (a1*b2 - a2*b1 + a2*c1 - a1*c2 + b1*c2 - b2*c1) / 2 *)
  let open Q in
  let v =
    add
      (add
         (sub (mul a.(0) b.(1)) (mul a.(1) b.(0)))
         (sub (mul a.(1) c.(0)) (mul a.(0) c.(1))))
      (sub (mul b.(0) c.(1)) (mul b.(1) c.(0)))
  in
  Q.abs (Q.mul v Q.half)

let pp fmt t =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       (fun f v -> Format.fprintf f "(%a, %a)" Q.pp v.(0) Q.pp v.(1)))
    t
