open Cqa_arith
open Cqa_logic
open Cqa_linear

(* Canonical dedup of halfspaces through Linconstr's primitive-integer
   normal form: duplicated hyperplane terms would otherwise be counted
   twice in the recursion. *)
let dedup_halfspaces p =
  let vars = Array.init (Hpolytope.dim p) (fun i -> Var.of_string (Printf.sprintf "x%d" i)) in
  let cs = Hpolytope.to_constraints vars p in
  let rec uniq acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if List.exists (Linconstr.equal c) acc then uniq acc rest
        else uniq (c :: acc) rest
  in
  Hpolytope.of_constraints vars (uniq [] cs)

let rec volume_dedup p0 =
  (* re-deduplicate at every level: projection can merge distinct facet
     constraints into identical halfspaces, which would be double counted *)
  let p = dedup_halfspaces p0 in
  let n = Hpolytope.dim p in
  if Hpolytope.is_empty p then Q.zero
  else if n = 0 then Q.one
  else if n = 1 then begin
    match Hpolytope.bounding_box p with
    | Some [| (lo, hi) |] -> Q.sub hi lo
    | _ -> assert false
  end
  else begin
    let hs = Hpolytope.halfspaces p in
    let term (h : Hpolytope.halfspace) =
      let a = h.Hpolytope.normal and b = h.Hpolytope.offset in
      (* pivot coordinate *)
      let j = ref (-1) in
      Array.iteri (fun i c -> if !j < 0 && not (Q.is_zero c) then j := i) a;
      let j = !j in
      let aj = a.(j) in
      (* substitute x_j = (b - sum_{k<>j} a_k x_k) / a_j into the others *)
      let project (h' : Hpolytope.halfspace) =
        let a' = h'.Hpolytope.normal and b' = h'.Hpolytope.offset in
        let f = Q.div a'.(j) aj in
        let normal =
          Array.init (n - 1) (fun k ->
              let k' = if k < j then k else k + 1 in
              Q.sub a'.(k') (Q.mul f a.(k')))
        in
        let offset = Q.sub b' (Q.mul f b) in
        (normal, offset)
      in
      let rows = List.filter (fun h' -> h' != h) hs |> List.map project in
      (* all-zero rows are trivially true or make the facet empty *)
      let infeasible =
        List.exists
          (fun (nr, off) -> Array.for_all Q.is_zero nr && Q.lt off Q.zero)
          rows
      in
      if infeasible then Q.zero
      else begin
        let rows =
          List.filter (fun (nr, _) -> not (Array.for_all Q.is_zero nr)) rows
        in
        let facet =
          Hpolytope.make (n - 1)
            (List.map (fun (normal, offset) -> { Hpolytope.normal; offset }) rows)
        in
        Q.div (Q.mul b (volume_dedup facet)) (Q.abs aj)
      end
    in
    let total = List.fold_left (fun acc h -> Q.add acc (term h)) Q.zero hs in
    Q.div total (Q.of_int n)
  end

let volume p =
  if not (Hpolytope.is_bounded p) then
    invalid_arg "Lasserre.volume: unbounded polytope";
  volume_dedup p
