(** Exact vertex enumeration of bounded H-polytopes by basis enumeration:
    every vertex is the unique solution of [dim] linearly independent active
    constraints.  Exponential in the constraint count, intended for the
    modest dimensions of the paper's experiments. *)

open Cqa_arith

val vertices : Hpolytope.t -> Q.t array list
(** Duplicate-free, lexicographically sorted.
    @raise Invalid_argument on an unbounded polytope. *)

val lex_min : Q.t array list -> Q.t array option
(** Lexicographically minimal point, as used by the paper's Section 5
    triangulation example. *)
