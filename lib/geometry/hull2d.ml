open Cqa_arith

let cross a b c =
  Q.sub
    (Q.mul (Q.sub b.(0) a.(0)) (Q.sub c.(1) a.(1)))
    (Q.mul (Q.sub b.(1) a.(1)) (Q.sub c.(0) a.(0)))

let compare_pt a b =
  let c = Q.compare a.(0) b.(0) in
  if c <> 0 then c else Q.compare a.(1) b.(1)

(* One monotone chain: points must be sorted along the sweep direction; the
   result lists the chain in sweep order, turning strictly left. *)
let chain input =
  let stack =
    List.fold_left
      (fun acc p ->
        let rec pop = function
          | b :: a :: rest when Q.leq (cross a b p) Q.zero -> pop (a :: rest)
          | s -> s
        in
        p :: pop acc)
      [] input
  in
  List.rev stack

let drop_last l = match List.rev l with [] -> [] | _ :: t -> List.rev t

let hull pts =
  let pts = List.sort_uniq compare_pt pts in
  match pts with
  | [] | [ _ ] | [ _; _ ] -> pts
  | _ ->
      let lower = chain pts in
      let upper = chain (List.rev pts) in
      drop_last lower @ drop_last upper
