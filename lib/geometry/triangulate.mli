(** Fan triangulation of convex polygons from the lexicographically minimal
    vertex -- the construction of the paper's Section 5 example -- and exact
    simplex volumes in any dimension. *)

open Cqa_arith

val fan : Q.t array list -> (Q.t array * Q.t array * Q.t array) list
(** [fan hull_vertices] for a convex polygon's vertices in ccw order:
    triangles [(v0, vi, vi+1)] anchored at the lexicographic minimum.
    @raise Invalid_argument with fewer than 3 vertices. *)

val area_by_fan : Q.t array list -> Q.t
(** Sum of fan-triangle areas: the value of the paper's
    [sum_rho gamma] term. *)

val simplex_volume : Q.t array list -> Q.t
(** Exact volume of the simplex spanned by [n+1] points in dimension [n]:
    [|det (v1 - v0, ..., vn - v0)| / n!].
    @raise Invalid_argument on a wrong point count. *)
