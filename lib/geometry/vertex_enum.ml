open Cqa_arith

let compare_pt a b =
  let rec go i =
    if i >= Array.length a then 0
    else begin
      let c = Q.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let vertices p =
  if not (Hpolytope.is_bounded p) then
    invalid_arg "Vertex_enum.vertices: unbounded polytope";
  let n = Hpolytope.dim p in
  let hs = Array.of_list (Hpolytope.halfspaces p) in
  let m = Array.length hs in
  if n = 0 then (if Hpolytope.is_empty p then [] else [ [||] ])
  else begin
    let found = ref [] in
    (* iterate over all n-subsets of constraints *)
    let idx = Array.make n 0 in
    let rec choose k start =
      if k = n then begin
        let a =
          Array.init n (fun r -> Array.copy hs.(idx.(r)).Hpolytope.normal)
        in
        let b = Array.init n (fun r -> hs.(idx.(r)).Hpolytope.offset) in
        match Qmat.solve a b with
        | Some x when Hpolytope.contains p x ->
            if not (List.exists (fun y -> compare_pt x y = 0) !found) then
              found := x :: !found
        | Some _ | None -> ()
      end
      else
        for i = start to m - 1 do
          idx.(k) <- i;
          choose (k + 1) (i + 1)
        done
    in
    choose 0 0;
    List.sort compare_pt !found
  end

let lex_min = function
  | [] -> None
  | v :: rest ->
      Some (List.fold_left (fun acc w -> if compare_pt w acc < 0 then w else acc) v rest)
