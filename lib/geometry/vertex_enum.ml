open Cqa_arith
module T = Cqa_telemetry.Telemetry

(* Telemetry probes (zero-cost while disabled): basis subsets solved,
   duplicate vertices dropped, and the backtracking depth high-water mark. *)
let tm_calls = T.counter "geom.vertex_enum.calls"
let tm_bases = T.counter "geom.vertex_enum.bases"
let tm_dedup = T.counter "geom.vertex_enum.dedup_hits"
let tm_vertices = T.counter "geom.vertex_enum.vertices"
let tm_depth = T.counter "geom.vertex_enum.depth_max"

let compare_pt a b =
  let rec go i =
    if i >= Array.length a then 0
    else begin
      let c = Q.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
    end
  in
  go 0

let vertices p =
  T.incr tm_calls;
  if not (Hpolytope.is_bounded p) then
    invalid_arg "Vertex_enum.vertices: unbounded polytope";
  let n = Hpolytope.dim p in
  let hs = Array.of_list (Hpolytope.halfspaces p) in
  let m = Array.length hs in
  if n = 0 then (if Hpolytope.is_empty p then [] else [ [||] ])
  else begin
    let found = ref [] in
    (* iterate over all n-subsets of constraints *)
    let idx = Array.make n 0 in
    let rec choose k start =
      if k = n then begin
        T.incr tm_bases;
        let a =
          Array.init n (fun r -> Array.copy hs.(idx.(r)).Hpolytope.normal)
        in
        let b = Array.init n (fun r -> hs.(idx.(r)).Hpolytope.offset) in
        match Qmat.solve a b with
        | Some x when Hpolytope.contains p x ->
            if List.exists (fun y -> compare_pt x y = 0) !found then
              T.incr tm_dedup
            else begin
              T.incr tm_vertices;
              found := x :: !found
            end
        | Some _ | None -> ()
      end
      else begin
        T.set_max tm_depth (k + 1);
        for i = start to m - 1 do
          idx.(k) <- i;
          choose (k + 1) (i + 1)
        done
      end
    in
    choose 0 0;
    List.sort compare_pt !found
  end

let lex_min = function
  | [] -> None
  | v :: rest ->
      Some (List.fold_left (fun acc w -> if compare_pt w acc < 0 then w else acc) v rest)
