open Cqa_arith
open Cqa_logic
open Cqa_linear

type halfspace = { normal : Q.t array; offset : Q.t }

type t = { dim : int; hs : halfspace list }

let dim t = t.dim
let halfspaces t = t.hs

let make dim hs =
  List.iter
    (fun h ->
      if Array.length h.normal <> dim then
        invalid_arg "Hpolytope.make: normal dimension mismatch";
      if Array.for_all Q.is_zero h.normal then
        invalid_arg "Hpolytope.make: zero normal")
    hs;
  { dim; hs }

let vars_of n = Array.init n (fun i -> Var.of_string (Printf.sprintf "x%d" i))

let halfspace_of_constraint vars c =
  let e = Linconstr.expr c in
  let normal = Array.map (fun v -> Linexpr.coeff e v) vars in
  { normal; offset = Q.neg (Linexpr.constant e) }

let of_constraints vars cs =
  let n = Array.length vars in
  let expand c =
    match Linconstr.op c with
    | Linconstr.Le | Linconstr.Lt -> [ halfspace_of_constraint vars c ]
    | Linconstr.Eq ->
        [ halfspace_of_constraint vars c;
          halfspace_of_constraint vars
            (Linconstr.make (Linexpr.neg (Linconstr.expr c)) Linconstr.Le) ]
  in
  let hs =
    List.concat_map expand cs
    |> List.filter (fun h -> not (Array.for_all Q.is_zero h.normal))
  in
  { dim = n; hs }

let constraint_of_halfspace vars h =
  let e =
    Array.to_list (Array.mapi (fun i c -> (c, vars.(i))) h.normal)
    |> List.filter (fun (c, _) -> not (Q.is_zero c))
    |> Linexpr.of_list (Q.neg h.offset)
  in
  Linconstr.make e Linconstr.Le

let to_constraints vars t = List.map (constraint_of_halfspace vars) t.hs

let unit_vec n i s =
  Array.init n (fun j -> if j = i then s else Q.zero)

let box ranges =
  let n = Array.length ranges in
  let hs =
    List.concat
      (List.init n (fun i ->
           let lo, hi = ranges.(i) in
           [ { normal = unit_vec n i Q.one; offset = hi };
             { normal = unit_vec n i Q.minus_one; offset = Q.neg lo } ]))
  in
  { dim = n; hs }

let cube n = box (Array.make n (Q.zero, Q.one))

let simplex_standard n =
  let nonneg =
    List.init n (fun i -> { normal = unit_vec n i Q.minus_one; offset = Q.zero })
  in
  let sum = { normal = Array.make n Q.one; offset = Q.one } in
  { dim = n; hs = sum :: nonneg }

let contains t pt =
  Array.length pt = t.dim
  && List.for_all
       (fun h ->
         let dot = ref Q.zero in
         Array.iteri (fun i c -> dot := Q.add !dot (Q.mul c pt.(i))) h.normal;
         Q.leq !dot h.offset)
       t.hs

let constraints t = to_constraints (vars_of t.dim) t

let feasible_point t =
  let vars = vars_of t.dim in
  match Simplex.feasible (to_constraints vars t) with
  | None -> None
  | Some env ->
      Some
        (Array.map
           (fun v -> Option.value ~default:Q.zero (Var.Map.find_opt v env))
           vars)

let is_empty t = feasible_point t = None

let bounding_box t =
  let vars = vars_of t.dim in
  let cs = to_constraints vars t in
  let rec go i acc =
    if i >= t.dim then Some (Array.of_list (List.rev acc))
    else begin
      match Simplex.range (Linexpr.var vars.(i)) cs with
      | None -> None
      | Some (Some lo, Some hi) -> go (i + 1) ((lo, hi) :: acc)
      | Some _ -> None
    end
  in
  if t.dim = 0 then Some [||] else go 0 []

let is_bounded t = is_empty t || bounding_box t <> None

let intersect a b =
  if a.dim <> b.dim then invalid_arg "Hpolytope.intersect: dimension mismatch";
  { dim = a.dim; hs = a.hs @ b.hs }

let translate v t =
  if Array.length v <> t.dim then invalid_arg "Hpolytope.translate";
  { t with
    hs =
      List.map
        (fun h ->
          let dot = ref Q.zero in
          Array.iteri (fun i c -> dot := Q.add !dot (Q.mul c v.(i))) h.normal;
          { h with offset = Q.add h.offset !dot })
        t.hs }

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list Linconstr.pp)
    (constraints t)
