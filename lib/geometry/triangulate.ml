open Cqa_arith

let fan vs =
  if List.length vs < 3 then invalid_arg "Triangulate.fan: need 3 vertices";
  (* rotate the ccw vertex list so the lexicographic minimum is first,
     matching the paper's choice of anchor *)
  let arr = Array.of_list vs in
  let n = Array.length arr in
  let min_i = ref 0 in
  for i = 1 to n - 1 do
    if Hull2d.compare_pt arr.(i) arr.(!min_i) < 0 then min_i := i
  done;
  let v k = arr.((!min_i + k) mod n) in
  List.init (n - 2) (fun i -> (v 0, v (i + 1), v (i + 2)))

let area_by_fan vs =
  List.fold_left
    (fun acc (a, b, c) -> Q.add acc (Polygon.triangle_area a b c))
    Q.zero (fan vs)

let rec factorial n = if n <= 1 then Bigint.one else Bigint.mul (Bigint.of_int n) (factorial (n - 1))

let simplex_volume pts =
  match pts with
  | [] -> invalid_arg "Triangulate.simplex_volume: no points"
  | v0 :: rest ->
      let n = Array.length v0 in
      if List.length rest <> n then
        invalid_arg "Triangulate.simplex_volume: need n+1 points in R^n";
      let m =
        Array.of_list
          (List.map (fun v -> Array.init n (fun i -> Q.sub v.(i) v0.(i))) rest)
      in
      Q.div (Q.abs (Qmat.det m)) (Q.of_bigint (factorial n))
