(** Simple polygons in the plane with exact rational vertices, given as a
    counterclockwise vertex list.  The shoelace area here is the
    computational-geometry ground truth against which the paper's Section 5
    FO + POLY + SUM triangulation program is checked. *)

open Cqa_arith

type t

val of_vertices : Q.t array list -> t
(** @raise Invalid_argument with fewer than 3 vertices or non-planar
    points. *)

val vertices : t -> Q.t array list
val vertex_count : t -> int

val signed_area : t -> Q.t
(** Shoelace formula; positive for counterclockwise orientation. *)

val area : t -> Q.t
val perimeter_sq_sum : t -> Q.t
(** Sum of squared edge lengths (exact; euclidean perimeter itself is
    irrational in general). *)

val is_convex : t -> bool
val contains_convex : t -> Q.t array -> bool
(** Point location for convex polygons (boundary counts as inside).
    @raise Invalid_argument on non-convex input. *)

val centroid : t -> Q.t array
val triangle_area : Q.t array -> Q.t array -> Q.t array -> Q.t
(** Area of a triangle from its vertices: the paper's deterministic formula
    [(a1 b2 - a2 b1 + a2 c1 - a1 c2 + b1 c2 - b2 c1) / 2], absolute value. *)

val pp : Format.formatter -> t -> unit
