(** Exact volume of bounded convex H-polytopes by Lasserre's recursive
    identity

    [n * vol(P) = sum_i (b_i / ||a_i||) * vol_{n-1}(facet_i)],

    implemented rationally: the facet on [a_i . x = b_i] is projected along
    a coordinate [j] with [a_ij <> 0], which scales its measure by
    [|a_ij| / ||a_i||], so every term is [(b_i / |a_ij|) * vol(projection)]
    and no square roots appear.  Exact-volume computation is #P-hard in
    general (Dyer-Frieze, cited by the paper's introduction as the
    motivation for approximate volume operators); this is the exponential
    exact baseline the experiments time against the sampling approach. *)

open Cqa_arith

val volume : Hpolytope.t -> Q.t
(** Volume of a bounded polytope (0 if empty or degenerate).
    @raise Invalid_argument on an unbounded polytope. *)
