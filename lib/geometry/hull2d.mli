(** Exact 2-D convex hulls (Andrew's monotone chain). *)

open Cqa_arith

val cross : Q.t array -> Q.t array -> Q.t array -> Q.t
(** Cross product [(b - a) x (c - a)]; positive iff the turn a->b->c is
    counterclockwise. *)

val compare_pt : Q.t array -> Q.t array -> int
(** Lexicographic comparison of points. *)

val hull : Q.t array list -> Q.t array list
(** Convex hull vertices in counterclockwise order, starting from the
    lexicographically minimal point; collinear interior points removed.
    Degenerate inputs yield fewer than 3 vertices. *)
