(** Pipeline telemetry: monotonic counters, timers, nested spans and
    discrete events behind one global switch.

    Disabled (the default), every probe is a single load-and-branch — no
    allocation, no clock read, no lock — so instrumented hot paths stay
    within benchmark noise of their uninstrumented form.  Enabled, counters
    are lock-free atomics safe to bump from any domain, timers take a
    per-timer mutex on the record path only, and registries are guarded by
    a global lock.

    Counters must stay deterministic for a fixed workload whatever the
    domain count; scheduling-dependent quantities (durations, per-chunk
    work) belong in timers.  The deliberate exceptions are cache hit/miss
    splits — two domains can both miss the same cold key, so they are named
    with a [.hit]/[.miss] suffix so callers can filter them — and counters
    of work performed inside a memoized computation (the [fm.*] counters
    under the QE and satisfiability memos, the [simplex.*] LP-work counters
    under the memoized bounding boxes): concurrent cold misses duplicate
    exactly that work, so those counts inherit the same scheduling
    dependence. *)

val enable : unit -> unit
(** Turn every probe on.  Not synchronized: call from the main domain
    before spawning workers. *)

val disable : unit -> unit
val enabled : unit -> bool

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Register (or fetch, if already registered) the counter named [name].
    Call once at module initialization and keep the handle: registration
    takes the registry lock. *)

val incr : counter -> unit
val add : counter -> int -> unit

val set_max : counter -> int -> unit
(** Raise the counter to [n] if below: a high-water-mark gauge (stack
    depths, table sizes).  Lock-free compare-and-set. *)

(** {1 Timers} *)

val now_ns : unit -> float
(** The wall clock used by timers, in nanoseconds.  Always live (not gated
    on {!enabled}): clients that need a duration regardless of telemetry —
    e.g. a compiled plan recording its own compile time — read it directly
    and mirror the sample into a timer with {!record_ns}. *)

type timer

val timer : string -> timer
(** Register (or fetch) the timer named [name]. *)

val record_ns : timer -> float -> unit
(** Record one sample of [ns] nanoseconds. *)

val time : timer -> (unit -> 'a) -> 'a
(** Time [f ()] and record the duration; when disabled, exactly [f ()].
    A raising [f] records nothing. *)

(** {1 Spans and events} *)

val with_span : string -> (unit -> 'a) -> 'a
(** Run [f] under a named nested span: records the duration in the timer
    [span:name] and keeps the per-domain nesting high-water mark in the
    counter [span.depth:name].  Exception-safe; when disabled, exactly
    [f ()]. *)

val event : string -> string -> unit
(** [event name detail] appends a discrete event (e.g. a dispatch fallback
    decision) to the snapshot's chronological event list. *)

(** {1 Snapshots} *)

type timer_stat = {
  count : int;
  total_ns : float;
  min_ns : float;  (** 0 when [count = 0] *)
  max_ns : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  timers : (string * timer_stat) list;  (** sorted by name *)
  events : (string * string) list;  (** chronological (name, detail) *)
}

val snapshot : unit -> snapshot
(** Consistent view of every registered probe (zero-valued ones
    included). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter and timer-count/total deltas of [after] relative to [before]
    (a name unknown to [before] counts as zero); timer [min_ns]/[max_ns]
    are high-water marks since the last {!reset} and carry over from
    [after]; events are those recorded after [before] was taken. *)

val reset : unit -> unit
(** Zero every counter and timer and drop all events; registrations are
    kept. *)

val to_json : snapshot -> string
(** Stable schema:
    [{"counters":{name:int,...},"timers":{name:{"count":int,"total_ns":float,"min_ns":float,"max_ns":float},...},"events":[{"name":s,"detail":s},...]}]
    with counters and timers sorted by name. *)

val pp : Format.formatter -> snapshot -> unit
(** Human rendering (omits empty sections). *)
