type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at %d: %s" pos msg))

let parse_exn src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub src !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail !pos ("expected " ^ word)
  in
  (* UTF-8-encode a \uXXXX escape (surrogate pairs are not recombined:
     telemetry and bench payloads are ASCII) *)
  let add_uchar buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string";
      let c = src.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail !pos "unterminated escape";
          let e = src.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail !pos "truncated \\u escape";
              let hex = String.sub src !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail !pos "bad \\u escape"
              in
              add_uchar buf code
          | _ -> fail !pos "bad escape");
          go ())
      | c -> (
          Buffer.add_char buf c;
          go ())
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail start "expected a number";
    match float_of_string_opt (String.sub src start (!pos - start)) with
    | Some f -> Num f
    | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail !pos "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse src =
  match parse_exn src with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let keys = function Obj kvs -> List.map fst kvs | _ -> []
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src
