(* Pipeline telemetry: monotonic counters, timers, nested spans and
   discrete events behind one global on/off switch.

   Disabled (the default) every probe is a single load-and-branch on
   [enabled_flag]: no allocation, no clock read, no lock.  Enabled, counters
   are lock-free atomics (probes fire from the domain-parallel sweeps and
   samplers), timers take a per-timer mutex only on the record path, and the
   registries themselves are guarded by [registry_lock].

   Counter values must not depend on domain scheduling: anything that can
   race (wall-clock durations, per-chunk timings) belongs in a timer, whose
   count/total are understood to be scheduling-dependent; see the
   determinism test in test/test_telemetry.ml.  The one deliberate exception
   is cache hit/miss splits: two domains can both miss the same cold key, so
   hit/miss counters are exact only for sequential runs and are named with a
   [.hit]/[.miss] suffix so callers can filter them. *)

let enabled_flag = ref false
let enable () = enabled_flag := true
let disable () = enabled_flag := false
let enabled () = !enabled_flag

let now_ns () = Unix.gettimeofday () *. 1e9

(* ------------------------------------------------------------------ *)
(* Registries                                                          *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; cell : int Atomic.t }

type timer = {
  t_name : string;
  t_lock : Mutex.t;
  mutable t_count : int;
  mutable t_total_ns : float;
  mutable t_min_ns : float;
  mutable t_max_ns : float;
}

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 64

(* events accumulate in reverse; [event_count] avoids List.length on diff *)
let events_rev : (string * string) list ref = ref []
let event_count = ref 0

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

let counter name =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { c_name = name; cell = Atomic.make 0 } in
          Hashtbl.add counters name c;
          c)

let timer name =
  with_lock registry_lock (fun () ->
      match Hashtbl.find_opt timers name with
      | Some t -> t
      | None ->
          let t =
            {
              t_name = name;
              t_lock = Mutex.create ();
              t_count = 0;
              t_total_ns = 0.;
              t_min_ns = infinity;
              t_max_ns = 0.;
            }
          in
          Hashtbl.add timers name t;
          t)

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let incr c = if !enabled_flag then Atomic.incr c.cell

let add c n = if !enabled_flag then ignore (Atomic.fetch_and_add c.cell n)

let set_max c n =
  if !enabled_flag then begin
    let rec go () =
      let cur = Atomic.get c.cell in
      if n > cur && not (Atomic.compare_and_set c.cell cur n) then go ()
    in
    go ()
  end

let record_ns t ns =
  if !enabled_flag then
    with_lock t.t_lock (fun () ->
        t.t_count <- t.t_count + 1;
        t.t_total_ns <- t.t_total_ns +. ns;
        if ns < t.t_min_ns then t.t_min_ns <- ns;
        if ns > t.t_max_ns then t.t_max_ns <- ns)

let time t f =
  if !enabled_flag then begin
    let t0 = now_ns () in
    let r = f () in
    record_ns t (now_ns () -. t0);
    r
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* Per-domain nesting depth; spans on different domains nest independently.
   The depth high-water mark of span [s] is the counter [span.depth:s]. *)
let span_depth : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let depth = Domain.DLS.get span_depth in
    Stdlib.incr depth;
    let d = !depth in
    set_max (counter ("span.depth:" ^ name)) d;
    let t = timer ("span:" ^ name) in
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        record_ns t (now_ns () -. t0);
        Stdlib.decr depth)
      f
  end

let event name detail =
  if !enabled_flag then
    with_lock registry_lock (fun () ->
        events_rev := (name, detail) :: !events_rev;
        Stdlib.incr event_count)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type timer_stat = {
  count : int;
  total_ns : float;
  min_ns : float;
  max_ns : float;
}

type snapshot = {
  counters : (string * int) list;
  timers : (string * timer_stat) list;
  events : (string * string) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  with_lock registry_lock (fun () ->
      let cs =
        Hashtbl.fold
          (fun name c acc -> (name, Atomic.get c.cell) :: acc)
          counters []
        |> List.sort by_name
      in
      let ts =
        Hashtbl.fold
          (fun name t acc ->
            let stat =
              with_lock t.t_lock (fun () ->
                  {
                    count = t.t_count;
                    total_ns = t.t_total_ns;
                    min_ns = (if t.t_count = 0 then 0. else t.t_min_ns);
                    max_ns = t.t_max_ns;
                  })
            in
            (name, stat) :: acc)
          timers []
        |> List.sort by_name
      in
      { counters = cs; timers = ts; events = List.rev !events_rev })

(* [after] may know names [before] does not (registered in between): a
   missing name counts as zero.  min/max are high-water marks since the last
   [reset], not differences, so they are carried over from [after]. *)
let diff ~before ~after =
  let base = before.counters in
  let find name = Option.value ~default:0 (List.assoc_opt name base) in
  let cs = List.map (fun (n, v) -> (n, v - find n)) after.counters in
  let tfind name =
    match List.assoc_opt name before.timers with
    | Some s -> (s.count, s.total_ns)
    | None -> (0, 0.)
  in
  let ts =
    List.map
      (fun (n, s) ->
        let c0, tot0 = tfind n in
        (n, { s with count = s.count - c0; total_ns = s.total_ns -. tot0 }))
      after.timers
  in
  let skip = List.length before.events in
  let evs =
    List.filteri (fun i _ -> i >= skip) after.events
  in
  { counters = cs; timers = ts; events = evs }

let reset () =
  with_lock registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ t ->
          with_lock t.t_lock (fun () ->
              t.t_count <- 0;
              t.t_total_ns <- 0.;
              t.t_min_ns <- infinity;
              t.t_max_ns <- 0.))
        timers;
      events_rev := [];
      event_count := 0)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 1024 in
  let sep first = if !first then first := false else Buffer.add_char buf ',' in
  Buffer.add_string buf "{\"counters\":{";
  let first = ref true in
  List.iter
    (fun (n, v) ->
      sep first;
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape n) v))
    snap.counters;
  Buffer.add_string buf "},\"timers\":{";
  let first = ref true in
  List.iter
    (fun (n, s) ->
      sep first;
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"total_ns\":%.1f,\"min_ns\":%.1f,\"max_ns\":%.1f}"
           (json_escape n) s.count s.total_ns s.min_ns s.max_ns))
    snap.timers;
  Buffer.add_string buf "},\"events\":[";
  let first = ref true in
  List.iter
    (fun (n, d) ->
      sep first;
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"detail\":\"%s\"}" (json_escape n)
           (json_escape d)))
    snap.events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp fmt snap =
  Format.fprintf fmt "@[<v>";
  if snap.counters <> [] then begin
    Format.fprintf fmt "counters:@,";
    List.iter
      (fun (n, v) -> Format.fprintf fmt "  %-44s %d@," n v)
      snap.counters
  end;
  if snap.timers <> [] then begin
    Format.fprintf fmt "timers:@,";
    List.iter
      (fun (n, s) ->
        Format.fprintf fmt "  %-44s n=%-8d total=%.3fms@," n s.count
          (s.total_ns /. 1e6))
      snap.timers
  end;
  if snap.events <> [] then begin
    Format.fprintf fmt "events:@,";
    List.iter (fun (n, d) -> Format.fprintf fmt "  %s: %s@," n d) snap.events
  end;
  Format.fprintf fmt "@]"
