(** Minimal dependency-free JSON reader for the machine-readable outputs
    this repo produces itself: [--stats=json] snapshots, analyzer reports
    and the BENCH*.json benchmark files.  A strict recursive-descent parser
    over the full JSON grammar (numbers are [float]s; [\uXXXX] escapes are
    UTF-8 encoded, surrogate pairs left unrecombined). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
val parse_exn : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val of_file : string -> (t, string) result
(** Parse a whole file. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val keys : t -> string list
(** Object keys in document order; [[]] on non-objects. *)

val to_float : t -> float option
val to_string : t -> string option
