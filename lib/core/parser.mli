(** Concrete syntax for FO + POLY + SUM.

    Formulas:
    {v
      true | false
      t = t | t < t | t <= t | t > t | t >= t | t <> t
      R(x, y, ...)                      (schema atoms: capitalized names)
      not f | ~f
      f /\ f | f and f
      f \/ f | f or f
      f -> f
      exists x y . f | E x . f
      forall x y . f | A x . f
      ( f )
    v}

    Terms:
    {v
      numbers: 42, -7, 3/4, 0.25
      variables: lowercase identifiers
      t + t | t - t | t * t | -t | ( t )
      SUM { w1, w2 | guard | END(y . body) } (x . gamma)
    v}

    Quantifier bodies extend as far right as possible; [->] is
    right-associative and binds loosest; [\/] binds looser than [/\]. *)

exception Parse_error of string
(** Carries a message with the offending position. *)

val formula_of_string : string -> Ast.formula
(** @raise Parse_error on malformed input. *)

val term_of_string : string -> Ast.term

val formula_to_string : Ast.formula -> string
(** Emits the concrete syntax above; [formula_of_string] inverts it. *)

val term_to_string : Ast.term -> string
