(** Classical SQL-style aggregation over safe (semi-algebraic-to-finite)
    query outputs: the derived operators of Lemma 4.  A query is SAF here
    when its symbolic evaluation yields a finite set of points; COUNT, SUM,
    AVG, MIN and MAX are then definable in FO + POLY + SUM, and this module
    evaluates them. *)

open Cqa_arith
open Cqa_logic

val enumerate_finite : Cqa_linear.Semilinear.t -> Q.t array list option
(** The elements of a finite semi-linear set ([None] when infinite):
    each satisfiable disjunct must pin every coordinate. *)

val saf_output : Db.t -> Var.t array -> Ast.formula -> Q.t array list option
(** Evaluate the query and enumerate, when finite. *)

val count : Db.t -> Var.t array -> Ast.formula -> int option

val sum_gamma :
  Db.t -> Var.t array -> Ast.formula -> gamma_var:Var.t -> gamma:Ast.formula -> Q.t option
(** Sum of the deterministic formula's outputs over the query's output bag
    (the paper's [sum of the x values of chi over the output of phi]).
    Tuples where gamma is undefined contribute nothing. *)

val avg_gamma :
  Db.t -> Var.t array -> Ast.formula -> gamma_var:Var.t -> gamma:Ast.formula -> Q.t option
(** [None] on infinite or empty outputs. *)

val sum_coord : Db.t -> Var.t -> Ast.formula -> Q.t option
(** SUM over a unary query's output values. *)

val avg_coord : Db.t -> Var.t -> Ast.formula -> Q.t option
(** The AVG of Section 4.1: [sum / card]; [None] on infinite or empty
    output. *)

val min_coord : Db.t -> Var.t -> Ast.formula -> Q.t option
val max_coord : Db.t -> Var.t -> Ast.formula -> Q.t option

(** {2 Grouping}

    The paper's conclusion asks "how to add grouping constructs to the
    language"; over safe queries the natural semantics is to partition the
    finite output by a subset of its coordinates and aggregate each class. *)

val group_by :
  Db.t -> Var.t array -> Ast.formula -> key:int list -> (Q.t array * Q.t array list) list option
(** Partition the SAF output by the projections onto the [key] coordinate
    indices; groups are sorted by key.  [None] when the output is infinite.
    @raise Invalid_argument on out-of-range indices. *)

val group_count :
  Db.t -> Var.t array -> Ast.formula -> key:int list -> (Q.t array * int) list option

val group_sum :
  Db.t -> Var.t array -> Ast.formula -> key:int list -> value:int -> (Q.t array * Q.t) list option
(** Sum of coordinate [value] within each group. *)

val group_avg :
  Db.t -> Var.t array -> Ast.formula -> key:int list -> value:int -> (Q.t array * Q.t) list option
