(** The variable-independence baseline of Chomicki-Goldin-Kuper (reference
    [11] of the paper): when the constraint representation of a planar set
    never couples [x] and [y], exact volume is definable in FO + LIN.  The
    paper's criticism -- that the condition excludes most sets arising in
    practice -- is quantified by experiment E12. *)

open Cqa_arith
open Cqa_linear

val is_variable_independent : Semilinear.t -> bool
(** Syntactic check: every atom of the DNF mentions at most one coordinate.
    (Sound: every such set is a finite union of boxes; incomplete in
    general, which only strengthens the "too restrictive" conclusion.) *)

val grid_volume : Semilinear.t -> Q.t
(** Exact volume of a variable-independent bounded set via its breakpoint
    grid: the set is a union of grid cells, so the volume is the sum of the
    cell areas whose sample point belongs to the set.
    @raise Invalid_argument on non-variable-independent input.
    @raise Volume_exact.Unbounded on unbounded input. *)
