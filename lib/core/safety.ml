open Cqa_logic

type issue =
  | Unknown_relation of string
  | Arity_mismatch of { relation : string; expected : int; actual : int }
  | Empty_sum_tuple
  | Nondeterministic_gamma of Ast.formula
  | Undecided_gamma of Ast.formula

let pp_issue fmt = function
  | Unknown_relation r -> Format.fprintf fmt "unknown relation %s" r
  | Arity_mismatch { relation; expected; actual } ->
      Format.fprintf fmt "relation %s has arity %d, applied to %d arguments"
        relation expected actual
  | Empty_sum_tuple -> Format.fprintf fmt "summation with an empty tuple"
  | Nondeterministic_gamma g ->
      Format.fprintf fmt "gamma is not deterministic: %a" Ast.pp g
  | Undecided_gamma g ->
      Format.fprintf fmt
        "gamma not provably deterministic (enforced at runtime): %a" Ast.pp g

let rec check_formula db (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False -> []
  | Ast.Cmp (_, a, b) -> check_term db a @ check_term db b
  | Ast.Rel (r, args) -> (
      match Schema.arity (Db.schema db) r with
      | None -> [ Unknown_relation r ]
      | Some expected ->
          let actual = List.length args in
          if expected <> actual then
            [ Arity_mismatch { relation = r; expected; actual } ]
          else [])
  | Ast.Not g -> check_formula db g
  | Ast.And (g, h) | Ast.Or (g, h) -> check_formula db g @ check_formula db h
  | Ast.Exists (_, g) | Ast.Forall (_, g) -> check_formula db g

and check_term db (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> []
  | Ast.Add (a, b) | Ast.Mul (a, b) -> check_term db a @ check_term db b
  | Ast.Sum s ->
      let tuple = if s.Ast.w = [] then [ Empty_sum_tuple ] else [] in
      (* recurse into gamma first: its schema issues must be reported even
         when the determinism decision cannot run (and the decision is only
         meaningful on a schema-clean gamma) *)
      let gamma_issues = check_formula db s.Ast.gamma in
      let det =
        if gamma_issues <> [] then []
        else
          match
            Deterministic.check db ~gamma_var:s.Ast.gamma_var ~w:s.Ast.w
              s.Ast.gamma
          with
          | Deterministic.Deterministic -> []
          | Deterministic.Not_deterministic _ ->
              [ Nondeterministic_gamma s.Ast.gamma ]
          | Deterministic.Unknown -> [ Undecided_gamma s.Ast.gamma ]
      in
      tuple @ det @ gamma_issues
      @ check_formula db s.Ast.guard
      @ check_formula db s.Ast.end_body

let benign = function Undecided_gamma _ -> true | _ -> false
let is_safe db t = List.for_all benign (check_term db t)
let is_safe_formula db f = List.for_all benign (check_formula db f)
