(** Database instances for constraint queries: each schema relation is
    interpreted as either a finite set of tuples, a semi-linear set, or a
    semi-algebraic set (the paper's finite and finitely representable
    instances). *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly

type relation =
  | Finite of Q.t array list
  | Semilin of Semilinear.t
  | Semialgebraic of Semialg.t

type t

val empty : Schema.t -> t
val schema : t -> Schema.t

val add : string -> relation -> t -> t
(** @raise Invalid_argument on unknown relation or arity mismatch. *)

val of_list : Schema.t -> (string * relation) list -> t
val find : t -> string -> relation
(** @raise Not_found on uninterpreted names. *)

val of_instance : Instance.t -> t

val mem_tuple : t -> string -> Q.t array -> bool

val as_semilinear : t -> string -> Semilinear.t option
(** Finite relations are converted to point sets; semi-algebraic relations
    yield [None]. *)

val as_semialg : t -> string -> Semialg.t
(** Every relation kind embeds into the semi-algebraic model. *)

val is_linear : t -> bool
(** No semi-algebraic relation present. *)

val active_domain : t -> Q.t list
(** Constants of finite relations plus constraint constants of f.r.
    relations (the usual finite-representation active domain). *)

val pp : Format.formatter -> t -> unit
