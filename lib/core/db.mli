(** Database instances for constraint queries: each schema relation is
    interpreted as either a finite set of tuples, a semi-linear set, or a
    semi-algebraic set (the paper's finite and finitely representable
    instances). *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly

type relation =
  | Finite of Q.t array list
  | Semilin of Semilinear.t
  | Semialgebraic of Semialg.t

type t

val empty : Schema.t -> t
val schema : t -> Schema.t

val add : string -> relation -> t -> t
(** @raise Invalid_argument on unknown relation or arity mismatch. *)

val of_list : Schema.t -> (string * relation) list -> t
val find : t -> string -> relation
(** @raise Not_found on uninterpreted names. *)

val of_instance : Instance.t -> t

val mem_tuple : t -> string -> Q.t array -> bool
(** Schema relations with no interpretation are empty.
    @raise Not_found on names outside the schema. *)

val as_semilinear : t -> string -> Semilinear.t option
(** Finite relations are converted to point sets; semi-algebraic relations
    yield [None]; schema relations with no interpretation are empty.
    @raise Not_found on names outside the schema. *)

val as_semialg : t -> string -> Semialg.t
(** Every relation kind embeds into the semi-algebraic model; schema
    relations with no interpretation are empty.
    @raise Not_found on names outside the schema. *)

val is_linear : t -> bool
(** No semi-algebraic relation present. *)

val active_domain : t -> Q.t list
(** Constants of finite relations plus constraint constants of f.r.
    relations (the usual finite-representation active domain). *)

val pp : Format.formatter -> t -> unit

(** {1 Updates}

    Databases are mutable: {!apply_update} edits a relation {e in place}
    and bumps the database version, so caches keyed on the database
    value's physical identity (the plan executor's per-database states)
    survive the update and detect staleness by comparing versions.  Every
    update is logged with its delta bounding box; {!changes_since} replays
    the log so a stale cache can invalidate only what the deltas touch.
    The log is bounded ([log_cap] entries): a reader too far behind gets
    [None] and must rebuild from scratch.

    Counters: [db.update.insert], [db.update.remove], [db.update.noop]
    (empty-region edits), [db.update.log_truncated]. *)

type update =
  | Insert of string * Semilinear.t  (** union the region into the relation *)
  | Remove of string * Semilinear.t  (** subtract the region *)

type change = {
  version : int;  (** the database version {e after} this update *)
  rel : string;
  inserted : bool;
  region : Semilinear.t;
  delta_box : (Q.t * Q.t) array option;
      (** bounding box of the edited region; [None] = empty (see
          [delta_empty]) or unbounded (invalidate everything) *)
  delta_empty : bool;
}

val version : t -> int
(** Monotone update counter; [0] for a freshly built database.  Functional
    constructors ({!add}, {!of_list}) return fresh values at version 0. *)

val apply_update : t -> update -> change
(** Apply the update in place and return its change record.  Finite
    relations are promoted to their semi-linear point sets first; a name
    absent from the instance starts empty.
    @raise Invalid_argument on unknown relations, arity mismatches, or
    semi-algebraic relations. *)

val changes_since : t -> int -> change list option
(** The changes after version [v] in chronological order ([Some []] when
    up to date); [None] when [v] is ahead of the database or the bounded
    log no longer reaches back to it. *)

val log_cap : int
(** Maximum number of retained change records. *)
