open Cqa_arith
open Cqa_linear
open Cqa_poly

let clipped_volume s r =
  let n = Semilinear.dim s in
  let box = Semilinear.box (Array.make n (Q.neg r, r)) in
  Volume_exact.volume_sweep (Semilinear.inter s box)

let mu s =
  let n = Semilinear.dim s in
  if n = 0 then if Semilinear.is_empty s then Q.zero else Q.one
  else begin
    (* a radius beyond every vertex of the constraint arrangement; past it
       the clipped volume is a single polynomial in r *)
    let base =
      List.fold_left
        (fun acc v -> Array.fold_left (fun m c -> Q.max m (Q.abs c)) acc v)
        Q.one
        (Volume_exact.arrangement_vertices s)
    in
    let rec attempt r0 tries =
      if tries > 6 then invalid_arg "Mu.mu: interpolation did not stabilize"
      else begin
        let radii = List.init (n + 1) (fun i -> Q.add r0 (Q.of_int (i + 1))) in
        let pts = List.map (fun r -> (r, clipped_volume s r)) radii in
        let p = Upoly.interpolate pts in
        (* verify on one extra radius *)
        let extra = Q.add r0 (Q.of_int (n + 2)) in
        if Q.equal (Upoly.eval p extra) (clipped_volume s extra) then begin
          let top = Upoly.coeff p n in
          (* vol ~ top * r^n; density = top / 2^n *)
          Q.div top (Q.pow Q.two n)
        end
        else attempt (Q.mul r0 Q.two) (tries + 1)
      end
    in
    attempt base 0
  end
