open Cqa_arith
open Cqa_logic
open Cqa_linear

type verdict =
  | Deterministic
  | Not_deterministic of Q.t Var.Map.t
  | Unknown

let is_explicit_graph ~gamma_var f =
  let is_x = function Ast.TVar x -> Var.equal x gamma_var | _ -> false in
  let avoids_x t = not (Var.Set.mem gamma_var (Ast.term_free_vars t)) in
  match f with
  | Ast.Cmp (Ast.Ceq, a, b) ->
      (is_x a && avoids_x b) || (is_x b && avoids_x a)
  | _ -> false

let check db ~gamma_var ~w f =
  if is_explicit_graph ~gamma_var f then Deterministic
  else begin
    match Eval.reduce_linear db Var.Map.empty f with
    | exception Eval.Unsupported _ -> Unknown
    | lin ->
        (* two-output satisfiability: gamma(x, w) /\ gamma(x', w) /\ x < x' *)
        let x' = Var.fresh ~hint:(Var.name gamma_var) () in
        let rn v = if Var.equal v gamma_var then x' else v in
        let lin' = Linformula.rename rn lin in
        let twice =
          Formula.And
            ( Formula.And (lin, lin'),
              Formula.Atom
                (Linconstr.lt (Linexpr.var gamma_var) (Linexpr.var x')) )
        in
        let d = Fourier_motzkin.qe twice in
        let d =
          Fourier_motzkin.eliminate_all
            (Var.Set.elements (Linformula.dnf_vars d)
            |> List.filter (fun v ->
                   not (List.exists (Var.equal v) (gamma_var :: x' :: w))))
            d
        in
        (match Fourier_motzkin.sample_point_dnf d with
        | None -> Deterministic
        | Some witness -> Not_deterministic witness)
  end
