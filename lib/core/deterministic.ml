open Cqa_arith
open Cqa_logic
open Cqa_linear

type verdict =
  | Deterministic
  | Not_deterministic of Q.t Var.Map.t
  | Unknown

(* Equality spellings: [x = t], [t = x], either under an even number of
   negations, and the parser's [~(x <> t)] desugaring
   [Not (Or (x < t, t < x))] (in either atom order). *)
let rec is_explicit_graph ~gamma_var f =
  let is_x = function Ast.TVar x -> Var.equal x gamma_var | _ -> false in
  let avoids_x t = not (Var.Set.mem gamma_var (Ast.term_free_vars t)) in
  let graph_eq a b = (is_x a && avoids_x b) || (is_x b && avoids_x a) in
  match f with
  | Ast.Cmp (Ast.Ceq, a, b) -> graph_eq a b
  | Ast.Not (Ast.Not g) -> is_explicit_graph ~gamma_var g
  | Ast.Not (Ast.Or (Ast.Cmp (Ast.Clt, a, b), Ast.Cmp (Ast.Clt, b', a')))
    when a = a' && b = b' ->
      graph_eq a b
  | _ -> false

let check db ~gamma_var ~w f =
  if is_explicit_graph ~gamma_var f then Deterministic
  else begin
    match Eval.reduce_linear db Var.Map.empty f with
    (* [Not_found]: a schema relation without an interpretation in [db];
       [Invalid_argument]: an arity mismatch discovered while inlining.
       Both leave determinism statically undecided (Safety reports the
       schema problem separately; Eval enforces determinism at runtime). *)
    | exception (Eval.Unsupported _ | Not_found | Invalid_argument _) ->
        Unknown
    | lin ->
        (* two-output satisfiability: gamma(x, w) /\ gamma(x', w) /\ x < x' *)
        let x' = Var.fresh ~hint:(Var.name gamma_var) () in
        let rn v = if Var.equal v gamma_var then x' else v in
        let lin' = Linformula.rename rn lin in
        let twice =
          Formula.And
            ( Formula.And (lin, lin'),
              Formula.Atom
                (Linconstr.lt (Linexpr.var gamma_var) (Linexpr.var x')) )
        in
        let d = Fourier_motzkin.qe twice in
        let d =
          Fourier_motzkin.eliminate_all
            (Var.Set.elements (Linformula.dnf_vars d)
            |> List.filter (fun v ->
                   not (List.exists (Var.equal v) (gamma_var :: x' :: w))))
            d
        in
        (match Fourier_motzkin.sample_point_dnf d with
        | None -> Deterministic
        | Some witness -> Not_deterministic witness)
  end

let pp_verdict fmt = function
  | Deterministic -> Format.pp_print_string fmt "deterministic"
  | Unknown ->
      Format.pp_print_string fmt
        "unknown (not provably deterministic; enforced at runtime)"
  | Not_deterministic witness ->
      Format.fprintf fmt "not deterministic (two outputs at %a)"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.fprintf f ",@ ")
           (fun f (v, q) -> Format.fprintf f "%a = %a" Var.pp v Q.pp q))
        (Var.Map.bindings witness)
