(** Probabilistic approximation of volumes (Theorem 4): an FO + POLY + SUM +
    W query draws a single sample of [M = max (4/eps log 2/delta, C log|D| /
    eps log 13/eps)] points with the witness operator and reports, for every
    parameter tuple simultaneously, the fraction of the sample falling in
    the section -- within [eps] of the true volume with probability [1 -
    delta], uniformly in the parameters.

    Every estimator takes an optional [?domains] argument (default [1]):
    with more than one domain the sample is generated and scored in
    parallel chunks, each chunk's PRNG split deterministically from the
    caller's generator, so runs are reproducible for a fixed seed and
    domain count.  [domains = 1] is exactly the sequential path. *)

open Cqa_arith
open Cqa_logic
open Cqa_poly
open Cqa_vc

type result = {
  estimate : Q.t;
  sample_size : int;
}

val sample_size_for : eps:float -> delta:float -> vc_dim:int -> int
(** The BEHW bound used throughout. *)

val approx_semialg : ?domains:int -> prng:Prng.t -> m:int -> Semialg.t -> Q.t
(** Fraction of [m] uniform unit-cube points inside the set: estimates
    [VOL_I]. *)

val approx_semialg_eps :
  ?domains:int ->
  prng:Prng.t ->
  eps:float ->
  delta:float ->
  vc_dim:int ->
  Semialg.t ->
  result

val approx_query :
  ?domains:int ->
  prng:Prng.t ->
  m:int ->
  Db.t ->
  yvars:Var.t array ->
  Ast.formula ->
  Q.t
(** Estimate [VOL_I { y | phi (y) }] with [m] pointwise membership tests. *)

val approx_query_family :
  ?domains:int ->
  prng:Prng.t ->
  m:int ->
  Db.t ->
  xvars:Var.t array ->
  yvars:Var.t array ->
  Ast.formula ->
  params:Q.t array list ->
  (Q.t array * Q.t) list
(** The uniform-over-parameters shape of Theorem 4: one shared sample scored
    against [phi (a, .)] for every [a] in [params]. *)

val halton_approx_query :
  ?domains:int -> m:int -> Db.t -> yvars:Var.t array -> Ast.formula -> Q.t
(** Deterministic low-discrepancy variant (the derandomized stand-in); the
    exact result is independent of the domain count. *)

val member : Db.t -> Var.t array -> Ast.formula -> Q.t array -> bool
(** The pointwise membership oracle every estimator scores with:
    [Eval.holds] of the formula with [yvars] bound to the point. *)
