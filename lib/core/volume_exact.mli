(** Exact volume of semi-linear sets: the effective content of the paper's
    Theorem 3 (FO + POLY + SUM computes VOL of semi-linear databases).

    Two independent algorithms are provided and cross-checked in the tests:

    - [volume_sweep] follows the paper's inductive proof: the measure of the
      section at [x_n = t] is a piecewise-polynomial function of [t] of
      degree below the dimension; its breakpoints are among the last
      coordinates of the vertices of the hyperplane arrangement, the
      polynomial pieces are recovered by exact interpolation at rational
      sample points, and the pieces are integrated in closed form (the
      paper's "sum over quadruples (l, u, m, b)" in dimension 2 is the
      degree-1 case);
    - [volume_incl_excl] decomposes the DNF by inclusion-exclusion into
      intersections of convex polytopes and evaluates each with Lasserre's
      recursion. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear

exception Unbounded

val volume_sweep : ?domains:int -> Semilinear.t -> Q.t
(** [?domains] (default 1) spreads the top-level interpolation sections
    over that many OCaml domains; the result is byte-identical for every
    domain count (slot-order reassembly, exact arithmetic).
    @raise Unbounded when the set has infinite measure (strict/equality
    atoms are relaxed: measure is closure-invariant). *)

val volume_incl_excl : ?domains:int -> Semilinear.t -> Q.t
(** @raise Unbounded likewise.  Exponential in the number of disjuncts;
    [?domains] chunks the signed intersection terms. *)

val volume : ?domains:int -> Semilinear.t -> Q.t
(** The default algorithm ([volume_sweep]). *)

val volume_clamped : ?domains:int -> Semilinear.t -> Q.t
(** [VOL_I]: volume of the intersection with the unit cube; always finite. *)

exception Not_semilinear of string

val volume_of_query :
  ?domains:int -> ?hint:Dispatch.hint -> Db.t -> Var.t array -> Ast.formula -> Q.t
(** Exact volume of the set defined by a query over a semi-linear database:
    the Theorem 3 engine applied to [Eval.eval_set].

    Without [?hint], linear-reducibility is discovered by the runtime probe
    ([Eval.try_eval_set], observable through [Eval.runtime_probes]).  With
    [?hint:Dispatch.Exact_semilinear] — produced by the static analyzer's
    fragment pass — the probe is skipped and evaluation goes straight to the
    exact engine; a hint of [Pointwise_poly] or [Sum_eval] rejects the query
    immediately.
    @raise Not_semilinear when the query is outside the exact fragment.
    @raise Unbounded when the defined set has infinite measure. *)

(** {1 Cost-guarded dispatch} *)

type engine =
  | Exact_engine  (** Theorem 3 sweep, exact rational result *)
  | Approx_engine of { sample_size : int }
      (** Theorem 4 sampling estimate from a Blumer-sized sample *)

type guarded = {
  value : Q.t;  (** [VOL_I] of the defined set, exact or estimated *)
  engine : engine;
  projected : float;  (** [Dispatch.projected_qe_atoms] of the query *)
  budget : float;  (** the budget the projection was compared against *)
}

val pp_engine : Format.formatter -> engine -> unit

val sampler_estimate :
  ?domains:int ->
  eps:float ->
  delta:float ->
  seed:int ->
  Db.t ->
  Var.t array ->
  Ast.formula ->
  Q.t * int
(** The Theorem 4 sampling estimator behind every guarded fallback: a
    Blumer-sized sample (for VC dimension [dim + 2]) of the clamped section
    set, from a PRNG freshly seeded with [seed].  Returns the estimate and
    the sample size used.  Shared by {!volume_guarded} and the plan
    executor ({!Exec.volume_guarded}), so the two fallbacks are
    bit-identical for equal seeds. *)

val volume_guarded :
  ?domains:int ->
  ?hint:Dispatch.hint ->
  ?budget:float ->
  ?eps:float ->
  ?delta:float ->
  ?seed:int ->
  Db.t ->
  Var.t array ->
  Ast.formula ->
  guarded
(** [VOL_I] of the query's section set, with the engine chosen by
    {!Dispatch.decide}: within [budget] (default {!Dispatch.default_budget},
    i.e. unguarded) the Theorem 3 exact engine runs on the clamped set;
    when the projected quantifier-elimination cost exceeds the budget — or
    a [Pointwise_poly] / [Sum_eval] hint excludes the exact engine outright
    — evaluation degrades to the Theorem 4 sampling estimator with a
    Blumer-sized sample for [eps]/[delta] (defaults [0.1]/[0.1], seeded by
    [seed], default [1]).  Each fallback records a [dispatch.fallback]
    telemetry event (when telemetry is enabled) carrying the projected cost
    and budget; the [dispatch.guard.exact] / [dispatch.guard.fallback]
    counters record the decisions themselves.

    Both engines compute the same quantity ([VOL_I], the intersection with
    the unit cube), so exact results and estimates are directly comparable.
    @raise Not_semilinear when the exact engine was selected but the
    runtime probe finds the query not linear-reducible. *)

val arrangement_vertices : Semilinear.t -> Q.t array list
(** All 0-dimensional intersections of [dim]-subsets of the constraint
    hyperplanes (no feasibility filtering): a superset of the vertices of
    every disjunct.  Enumerated by backtracking incremental elimination,
    pruning every subset extending a linearly dependent prefix. *)

val set_max_arrangement_subsets : int -> unit
(** Advisory limit on the number of hyperplane subsets
    [arrangement_vertices] enumerates before warning on stderr (default
    2_000_000; the enumeration still proceeds).
    @raise Invalid_argument below 1. *)

val get_max_arrangement_subsets : unit -> int

val breakpoints : Semilinear.t -> Q.t list
(** The candidate breakpoints used by the sweep on the last coordinate:
    last coordinates of all vertices of the constraint-hyperplane
    arrangement, plus the bounding interval's endpoints. *)

val breakpoints_since :
  old_set:Semilinear.t -> old_bps:Q.t list -> Semilinear.t -> Q.t list
(** [breakpoints s], computed incrementally against a predecessor:
    [old_bps] must be [breakpoints old_set].  When [s]'s last-axis
    bounding interval matches [old_set]'s and every hyperplane of
    [old_set] survives into [s]'s pool, only arrangement subsets meeting
    a fresh hyperplane are enumerated and merged into [old_bps]; the
    result equals [breakpoints s] exactly.  Falls back to the full
    enumeration when a precondition fails.
    @raise Unbounded like [breakpoints]. *)
