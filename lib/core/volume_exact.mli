(** Exact volume of semi-linear sets: the effective content of the paper's
    Theorem 3 (FO + POLY + SUM computes VOL of semi-linear databases).

    Two independent algorithms are provided and cross-checked in the tests:

    - [volume_sweep] follows the paper's inductive proof: the measure of the
      section at [x_n = t] is a piecewise-polynomial function of [t] of
      degree below the dimension; its breakpoints are among the last
      coordinates of the vertices of the hyperplane arrangement, the
      polynomial pieces are recovered by exact interpolation at rational
      sample points, and the pieces are integrated in closed form (the
      paper's "sum over quadruples (l, u, m, b)" in dimension 2 is the
      degree-1 case);
    - [volume_incl_excl] decomposes the DNF by inclusion-exclusion into
      intersections of convex polytopes and evaluates each with Lasserre's
      recursion. *)

open Cqa_arith
open Cqa_linear

exception Unbounded

val volume_sweep : Semilinear.t -> Q.t
(** @raise Unbounded when the set has infinite measure (strict/equality
    atoms are relaxed: measure is closure-invariant). *)

val volume_incl_excl : Semilinear.t -> Q.t
(** @raise Unbounded likewise.  Exponential in the number of disjuncts. *)

val volume : Semilinear.t -> Q.t
(** The default algorithm ([volume_sweep]). *)

val volume_clamped : Semilinear.t -> Q.t
(** [VOL_I]: volume of the intersection with the unit cube; always finite. *)

val arrangement_vertices : Semilinear.t -> Q.t array list
(** All 0-dimensional intersections of [dim]-subsets of the constraint
    hyperplanes (no feasibility filtering): a superset of the vertices of
    every disjunct. *)

val breakpoints : Semilinear.t -> Q.t list
(** The candidate breakpoints used by the sweep on the last coordinate:
    last coordinates of all vertices of the constraint-hyperplane
    arrangement, plus the bounding interval's endpoints. *)
