(** Plan execution: run a compiled {!Plan.t} many times against databases
    and parameter bindings.

    Everything database-dependent that the engines would otherwise
    recompute per call — the evaluated semi-linear set, the Lemma 5
    piecewise-polynomial section-volume function, the (clamped) total
    volume — is memoized in per-database execution state attached to the
    plan ({!Plan.exec_state}, keyed by the database's physical identity,
    at most four databases per plan).  Memoized values are exact
    rationals, so a warm re-execution returns byte-identical results to a
    cold one; duplicate computes under concurrency are benign for the same
    reason.

    {b Incremental maintenance.}  The per-database state is stamped with
    the database version; every entry point first settles it against
    {!Db.changes_since}.  Updates whose delta bounding boxes cannot reach
    any [Rel] occurrence of the query are ignored outright; otherwise the
    deltas' last-axis slab drives {!Volume_param.refresh}, so only the
    Lemma 5 breakpoint intervals the slab touches are re-interpolated,
    and retained Theorem 4 samples ({!volume_guarded}'s fallback) only
    re-test the points inside the delta boxes.  Every value is an exact
    rational recomputed from reused facts that provably still hold, so
    after any update sequence the answers are byte-identical to a cold
    recompute on the updated database.  A reader that falls behind the
    database's bounded change log rebuilds from scratch.

    Traffic is visible on the [plan.state.hit]/[plan.state.miss],
    [plan.exec.exact]/[plan.exec.fallback] and
    [plan.param.fast]/[plan.param.slow] counters, and invalidation on
    [exec.invalidate.full], [exec.invalidate.cells]/[exec.reuse.cells]
    (piece intervals) and [exec.invalidate.samples]/[exec.reuse.samples]
    (retained sample points) -- all execution-history dependent, hence
    determinism-exempt. *)

open Cqa_arith

val volume : ?domains:int -> Plan.t -> Db.t -> Q.t
(** Exact volume of the plan's query over the database (the Theorem 3
    sweep), memoized per database.
    @raise Volume_exact.Not_semilinear outside the exact fragment.
    @raise Volume_exact.Unbounded on infinite measure.
    @raise Invalid_argument if the plan has parameter slots. *)

val volume_clamped : ?domains:int -> Plan.t -> Db.t -> Q.t
(** [VOL_I] (intersection with the unit cube), memoized per database.
    @raise Invalid_argument if the plan has parameter slots. *)

val volume_at : ?domains:int -> Plan.t -> Db.t -> Q.t array -> Q.t
(** Volume of the query with the plan's parameter slots bound to the given
    values (positionally).  With exactly one parameter the Lemma 5
    piecewise polynomial is compiled once per database and evaluated per
    binding when the value lies strictly inside a piece; otherwise (and
    for several parameters) the bound set is sectioned and swept directly.
    Both paths compute the same exact rational.
    @raise Invalid_argument when the binding arity differs from the
    plan's parameter count. *)

val batch : ?domains:int -> Plan.t -> Db.t -> Q.t array list -> Q.t list
(** [volume_at] over a list of bindings, sharing one warm state: the set
    is evaluated and the parametric function compiled at most once.
    [domains] parallelizes {e inside} each binding's evaluation. *)

val volume_batch : ?domains:int -> Plan.t -> Db.t -> Q.t array list -> Q.t list
(** Like {!batch} but parallel {e across} bindings: the shared per-database
    state is warmed once, then the bindings are dealt to the pool as one
    submission ([domains] chunks, each binding evaluated sequentially) with
    slot-order reassembly.  This is the shape a serving layer wants — many
    small same-plan requests coalesced into one pool batch — and it returns
    exactly {!batch}'s values (exact rationals, chunking-invariant).
    @raise Volume_exact.Not_semilinear outside the exact fragment.
    @raise Invalid_argument on a binding arity mismatch. *)

val volume_guarded :
  ?domains:int ->
  ?budget:float ->
  ?eps:float ->
  ?delta:float ->
  ?seed:int ->
  Plan.t ->
  Db.t ->
  Volume_exact.guarded
(** {!Volume_exact.volume_guarded} driven by the plan: the engine verdict
    is the one computed at plan time ([budget] overrides trigger a
    re-decision, nothing else is re-analyzed), the exact path returns the
    memoized clamped volume, and the fallback path is
    {!Volume_exact.sampler_estimate} (never memoized — it depends on
    [eps]/[delta]/[seed]).  Each fallback records a [plan.fallback]
    telemetry event.
    @raise Invalid_argument if the plan has parameter slots. *)

val volume_of_query :
  ?domains:int ->
  ?hint:Dispatch.hint ->
  Db.t ->
  Cqa_logic.Var.t array ->
  Ast.formula ->
  Q.t
(** Drop-in for {!Volume_exact.volume_of_query} routed through the plan
    cache: repeated shapes skip normalization, analysis and set
    evaluation entirely.  [hint] is consulted only when the shape misses
    the cache. *)
