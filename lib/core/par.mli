(** Deterministic fork/join for the exact-volume engine: contiguous index
    chunks, slot-order reassembly, exceptions re-raised in index order
    after all chunks complete.  With exact rational arithmetic the chunked
    reductions are value-identical to their sequential counterparts,
    whatever the domain count.

    Chunks execute on {!Pool}'s persistent workers — never a fresh
    [Domain.spawn] per call — and when the pool's adaptive cutoff would
    run the batch inline on the caller the chunked structure is skipped
    entirely: the batch runs as the plain sequential map/fold (same value,
    since these combinators are chunking-invariant; the surfaced exception
    is still the first in index order, though elements after it are not
    evaluated on the inline path).  Either way the value depends only on
    [~domains]. *)

val clamp_domains : n:int -> int -> int
(** Usable domain count: at least 1, at most [n] (and [n = 0] still gives
    1). *)

val chunk_sizes : n:int -> chunks:int -> int array
(** Split [n] into [chunks] contiguous sizes; the first [n mod chunks]
    chunks carry the extra element. *)

val chunk_starts : int array -> int array
(** Prefix sums of the chunk sizes: the starting offset of each chunk. *)

val map : ?label:string -> domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f arr]: [Array.map f arr] evaluated on up to [domains]
    pool workers.  [domains <= 1] is exactly [Array.map].  When telemetry
    is enabled, each chunk's wall-clock duration is recorded under the
    timer [par.chunk:<label>] (default label ["map"]); the label also keys
    the pool's per-label cutoff calibration. *)

val fold_ints :
  ?label:string ->
  domains:int -> combine:('a -> 'a -> 'a) -> init:'a -> (int -> 'a) -> int -> int -> 'a
(** [fold_ints ~domains ~combine ~init term lo hi] combines
    [term lo, ..., term hi]; [combine] must be associative and commutative
    with unit [init] for the result to be independent of [domains].  When
    telemetry is enabled, chunk durations are recorded under
    [par.chunk:<label>] (default label ["fold"]). *)
