(** FO + POLY + SUM programs compiled from the paper's worked constructions:
    these build genuine ASTs of the language (Section 5) which {!Eval}
    executes against constraint databases, demonstrating expressibility
    rather than computing the answers directly in OCaml.

    The polygon-area program is the paper's Section 5 example: vertices are
    the points of [P] that are not midpoints of two distinct points of [P];
    adjacency asks for the midpoint to lie on the boundary (non-interior
    point, with an infinity-norm box so all atoms stay linear); [psi1] picks
    the fan triangles anchored at the lexicographically minimal vertex;
    [psi2] collects vertex coordinates, whose END set ranges the summation;
    [gamma] computes the triangle's area from its corner coordinates.  A
    clause for the 3-vertex case (where every pair of vertices is adjacent)
    completes the paper's adjacency case split. *)

open Cqa_logic

val vertex_formula : rel:string -> Var.t -> Var.t -> Ast.formula
(** [vertex_formula ~rel v1 v2]: [(v1, v2)] is an extreme point of the
    convex set interpreting [rel]. *)

val interior_formula : rel:string -> Var.t -> Var.t -> Ast.formula
val adjacent_formula : rel:string -> Var.t * Var.t -> Var.t * Var.t -> Ast.formula

val boundary_point_formula : rel:string -> Var.t -> Ast.formula
(** The point is in the topological boundary of the unary relation. *)

val polygon_area_term : rel:string -> Ast.term
(** The closed FO + POLY + SUM term computing the area of the convex
    polygon interpreting the binary relation [rel]. *)

val interval_measure_term : rel:string -> Ast.term
(** Dimension-1 case of Theorem 3: the total length of the intervals
    composing the unary relation [rel], as
    [sum_{(l,u). "l,u consecutive endpoints with midpoint inside"} (u - l)]. *)
