(** Executable gadgets from the paper's inexpressibility proofs.

    Theorem 1 translates two finite unary relations [U1], [U2] into point
    sets inside [(0, Delta)] and [(1 - Delta, 1)] so that AVG of the union
    is a function of the cardinality ratio: an epsilon-approximation of AVG
    would yield a (c1, c2)-separating sentence, contradicting Proposition 1.

    Lemma 2 maps a good instance (A an initial fragment of the naturals,
    B a nonempty proper subset) onto an equally spaced subset of [0, 1] and
    forms the interval unions X (from B-elements to the next A-B element)
    and Y (roles swapped): epsilon-approximations of their volumes decide
    cardinality gaps, which AC0 circuits cannot (Lemma 3). *)

open Cqa_arith
open Cqa_linear

val translate_points : n1:int -> n2:int -> delta:Q.t -> Q.t list * Q.t list
(** Equally spaced images of [U1] in [(0, Delta)] and of [U2] in
    [(1 - Delta, 1)].  @raise Invalid_argument unless [0 < delta < 1/2]. *)

val avg_translated : n1:int -> n2:int -> delta:Q.t -> Q.t
(** Exact AVG of the union: [(n1 * Delta/2 + n2 * (1 - Delta/2)) /
    (n1 + n2)] -- a function of [n1/n2] only. *)

val ratio_from_avg : avg:Q.t -> delta:Q.t -> Q.t option
(** Invert [avg_translated]: recover [n1 / n2] ([None] at the boundary). *)

val separating_thresholds : eps:Q.t -> delta:Q.t -> Q.t * Q.t
(** Constants [(c1, c2)] such that an [eps]-approximation of AVG decides
    [card U1 > c1 card U2] versus [card U2 > c2 card U1], for [eps < 1/2].
    @raise Invalid_argument for [eps >= 1/2]. *)

type good_instance = { a_card : int; b : int list }
(** [A = {0 .. a_card-1}]; [b] a nonempty proper subset. *)

val good_instance : a_card:int -> b:int list -> good_instance
(** @raise Invalid_argument on malformed instances. *)

val lemma2_sets : good_instance -> Cell1.t * Cell1.t
(** The interval unions [X] and [Y] on the equally spaced embedding of
    [A] into [0, 1]. *)

val lemma2_volumes : good_instance -> Q.t * Q.t
(** Exact [VOL X] and [VOL Y]: [VOL X] grows with [card B / card A]. *)
