open Cqa_arith
open Cqa_linear

(* A convex conjunction has positive measure iff its strict version is
   satisfiable over the reals: equalities force measure zero; making the
   inequalities strict removes only the boundary. *)
let positive_measure_conj conj =
  let strictified =
    List.map
      (fun a ->
        match Linconstr.op a with
        | Linconstr.Le | Linconstr.Lt ->
            Some (Linconstr.make (Linconstr.expr a) Linconstr.Lt)
        | Linconstr.Eq -> None)
      conj
  in
  if List.exists (fun o -> o = None) strictified then false
  else begin
    let atoms = List.filter_map (fun o -> o) strictified in
    Simplex.strictly_feasible atoms <> None
  end

let open_cube_atoms vars =
  Array.to_list vars
  |> List.concat_map (fun v ->
         [ Linconstr.gt (Linexpr.var v) Linexpr.zero;
           Linconstr.lt (Linexpr.var v) (Linexpr.const Q.one) ])

let measure_zero_in_cube s =
  let cube = open_cube_atoms (Semilinear.vars s) in
  not
    (List.exists
       (fun conj -> positive_measure_conj (conj @ cube))
       (Semilinear.dnf s))

let measure_full_in_cube s = measure_zero_in_cube (Semilinear.compl s)

let trivial_approx s =
  if measure_zero_in_cube s then Q.zero
  else if measure_full_in_cube s then Q.one
  else Q.half
