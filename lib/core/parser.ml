open Cqa_arith
open Cqa_logic

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | TNum of Q.t
  | TIdent of string (* lowercase: variable *)
  | TRel of string (* capitalized: relation symbol *)
  | TKw of string (* keyword *)
  | TSym of string
  | TEof

let keywords = [ "true"; "false"; "not"; "and"; "or"; "exists"; "forall"; "SUM"; "END"; "E"; "A" ]

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !i)) in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      (* fraction a/b -- only when '/' is not the start of '/\' *)
      if !i + 1 < n && src.[!i] = '/' && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end
      else if !i + 1 < n && src.[!i] = '.' && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      toks := TNum (Q.of_string (String.sub src start (!i - start))) :: !toks
    end
    else if is_alpha c then begin
      let start = !i in
      while !i < n && is_alnum src.[!i] do incr i done;
      let word = String.sub src start (!i - start) in
      if List.mem word keywords then toks := TKw word :: !toks
      else if word.[0] >= 'A' && word.[0] <= 'Z' then toks := TRel word :: !toks
      else toks := TIdent word :: !toks
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "/\\" | "\\/" | "->" | "<=" | ">=" | "<>" ->
          toks := TSym two :: !toks;
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '{' | '}' | '[' | ']' | ',' | '.' | '|' | '+' | '-'
          | '*' | '=' | '<' | '>' | '~' ->
              toks := TSym (String.make 1 c) :: !toks;
              incr i
          | _ -> fail (Printf.sprintf "unexpected character %c" c))
    end
  done;
  Array.of_list (List.rev (TEof :: !toks))

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { toks : token array; mutable pos : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let describe = function
  | TNum q -> Q.to_string q
  | TIdent s | TRel s | TKw s | TSym s -> s
  | TEof -> "<eof>"

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s, found '%s' (token %d)" msg (describe (peek st)) st.pos))

let eat_sym st s =
  match peek st with
  | TSym s' when s' = s -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" s)

let eat_kw st s =
  match peek st with
  | TKw s' when s' = s -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" s)

let ident st =
  match peek st with
  | TIdent s ->
      advance st;
      Var.of_string s
  | _ -> fail st "expected a variable"

(* ------------------------------------------------------------------ *)
(* Terms                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_term st = parse_addsub st

and parse_addsub st =
  let lhs = parse_mul st in
  let rec go acc =
    match peek st with
    | TSym "+" ->
        advance st;
        go (Ast.Add (acc, parse_mul st))
    | TSym "-" ->
        advance st;
        go Ast.(acc -! parse_mul st)
    | _ -> acc
  in
  go lhs

and parse_mul st =
  let lhs = parse_unary_term st in
  let rec go acc =
    match peek st with
    | TSym "*" ->
        advance st;
        go (Ast.Mul (acc, parse_unary_term st))
    | _ -> acc
  in
  go lhs

and parse_unary_term st =
  match peek st with
  | TSym "-" -> (
      advance st;
      (* a negated literal is a negative constant, keeping printing and
         parsing mutually inverse *)
      match peek st with
      | TNum q ->
          advance st;
          Ast.Const (Q.neg q)
      | _ -> Ast.(int 0 -! parse_unary_term st))
  | _ -> parse_primary_term st

and parse_primary_term st =
  match peek st with
  | TNum q ->
      advance st;
      Ast.Const q
  | TIdent s ->
      advance st;
      Ast.TVar (Var.of_string s)
  | TSym "(" ->
      advance st;
      let t = parse_term st in
      eat_sym st ")";
      t
  | TKw "SUM" ->
      advance st;
      eat_sym st "{";
      let w = parse_vars_comma st in
      eat_sym st "|";
      let guard = parse_formula st in
      eat_sym st "|";
      eat_kw st "END";
      eat_sym st "(";
      let end_y = ident st in
      eat_sym st ".";
      let end_body = parse_formula st in
      eat_sym st ")";
      eat_sym st "}";
      eat_sym st "(";
      let gamma_var = ident st in
      eat_sym st ".";
      let gamma = parse_formula st in
      eat_sym st ")";
      Ast.sum ~gamma_var ~gamma ~w ~guard ~end_y ~end_body
  | _ -> fail st "expected a term"

and parse_vars_comma st =
  let first = ident st in
  let rec go acc =
    match peek st with
    | TSym "," ->
        advance st;
        go (ident st :: acc)
    | _ -> List.rev acc
  in
  go [ first ]

(* ------------------------------------------------------------------ *)
(* Formulas                                                            *)
(* ------------------------------------------------------------------ *)

and parse_formula st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | TSym "->" ->
      advance st;
      Ast.implies lhs (parse_implies st)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec go acc =
    match peek st with
    | TSym "\\/" | TKw "or" ->
        advance st;
        go (Ast.Or (acc, parse_and st))
    | _ -> acc
  in
  go lhs

and parse_and st =
  let lhs = parse_unary_formula st in
  let rec go acc =
    match peek st with
    | TSym "/\\" | TKw "and" ->
        advance st;
        go (Ast.And (acc, parse_unary_formula st))
    | _ -> acc
  in
  go lhs

and parse_unary_formula st =
  match peek st with
  | TSym "~" | TKw "not" ->
      advance st;
      Ast.Not (parse_unary_formula st)
  | TKw ("exists" | "E") ->
      advance st;
      let vars = parse_vars_space st in
      eat_sym st ".";
      Ast.exists_many vars (parse_formula st)
  | TKw ("forall" | "A") ->
      advance st;
      let vars = parse_vars_space st in
      eat_sym st ".";
      Ast.forall_many vars (parse_formula st)
  | _ -> parse_atom st

and parse_vars_space st =
  let rec go acc =
    match peek st with
    | TIdent s ->
        advance st;
        go (Var.of_string s :: acc)
    | _ ->
        if acc = [] then fail st "expected at least one bound variable"
        else List.rev acc
  in
  go []

and parse_atom st =
  match peek st with
  | TKw "true" ->
      advance st;
      Ast.True
  | TKw "false" ->
      advance st;
      Ast.False
  | TRel r ->
      advance st;
      eat_sym st "(";
      let vars = parse_vars_comma st in
      eat_sym st ")";
      Ast.Rel (r, vars)
  | TSym "(" -> (
      (* either a parenthesized formula or a parenthesized term followed by
         a comparison: try formula first, backtrack on failure *)
      let save = st.pos in
      match
        (try
           advance st;
           let f = parse_formula st in
           eat_sym st ")";
           (* a comparison operator after ')' means this was a term *)
           (match peek st with
           | TSym ("=" | "<" | "<=" | ">" | ">=" | "<>") -> None
           | _ -> Some f)
         with Parse_error _ -> None)
      with
      | Some f -> f
      | None ->
          st.pos <- save;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let lhs = parse_term st in
  let cmp =
    match peek st with
    | TSym ("=" | "<" | "<=" | ">" | ">=" | "<>" as s) ->
        advance st;
        s
    | _ -> fail st "expected a comparison operator"
  in
  let rhs = parse_term st in
  match cmp with
  | "=" -> Ast.(lhs =! rhs)
  | "<" -> Ast.(lhs <! rhs)
  | "<=" -> Ast.(lhs <=! rhs)
  | ">" -> Ast.(lhs >! rhs)
  | ">=" -> Ast.(lhs >=! rhs)
  | "<>" -> Ast.(Or (lhs <! rhs, rhs <! lhs))
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let formula_of_string s =
  let st = { toks = tokenize s; pos = 0 } in
  let f = parse_formula st in
  (match peek st with TEof -> () | _ -> fail st "trailing input");
  f

let term_of_string s =
  let st = { toks = tokenize s; pos = 0 } in
  let t = parse_term st in
  (match peek st with TEof -> () | _ -> fail st "trailing input");
  t

(* ------------------------------------------------------------------ *)
(* Printer (inverse of the parser)                                     *)
(* ------------------------------------------------------------------ *)

let rec term_to_string = function
  | Ast.Const c ->
      if Q.sign c < 0 then "-" ^ Q.to_string (Q.neg c) else Q.to_string c
  | Ast.TVar v -> Var.name v
  | Ast.Add (a, b) ->
      "(" ^ term_to_string a ^ " + " ^ term_to_string b ^ ")"
  | Ast.Mul (a, b) ->
      "(" ^ term_to_string a ^ " * " ^ term_to_string b ^ ")"
  | Ast.Sum s ->
      Printf.sprintf "SUM { %s | %s | END(%s . %s) } (%s . %s)"
        (String.concat ", " (List.map Var.name s.Ast.w))
        (formula_to_string s.Ast.guard)
        (Var.name s.Ast.end_y)
        (formula_to_string s.Ast.end_body)
        (Var.name s.Ast.gamma_var)
        (formula_to_string s.Ast.gamma)

and formula_to_string = function
  | Ast.True -> "true"
  | Ast.False -> "false"
  | Ast.Cmp (op, a, b) ->
      let s = match op with Ast.Ceq -> "=" | Ast.Clt -> "<" | Ast.Cle -> "<=" in
      term_to_string a ^ " " ^ s ^ " " ^ term_to_string b
  | Ast.Rel (r, vars) ->
      r ^ "(" ^ String.concat ", " (List.map Var.name vars) ^ ")"
  | Ast.Not f -> "~(" ^ formula_to_string f ^ ")"
  | Ast.And (f, g) ->
      "(" ^ formula_to_string f ^ " /\\ " ^ formula_to_string g ^ ")"
  | Ast.Or (f, g) ->
      "(" ^ formula_to_string f ^ " \\/ " ^ formula_to_string g ^ ")"
  | Ast.Exists (v, f) ->
      "(exists " ^ Var.name v ^ " . " ^ formula_to_string f ^ ")"
  | Ast.Forall (v, f) ->
      "(forall " ^ Var.name v ^ " . " ^ formula_to_string f ^ ")"
