type hint = Exact_semilinear | Pointwise_poly | Sum_eval

let to_string = function
  | Exact_semilinear -> "exact-semilinear"
  | Pointwise_poly -> "pointwise-poly"
  | Sum_eval -> "sum-eval"

let pp fmt h = Format.pp_print_string fmt (to_string h)

(* ------------------------------------------------------------------ *)
(* Cost profile and budget-guarded engine decision                     *)
(* ------------------------------------------------------------------ *)

type cost_profile = {
  atoms : int;
  quantifiers : int;
  sum_count : int;
  tuple_width : int;
}

let zero_profile = { atoms = 0; quantifiers = 0; sum_count = 0; tuple_width = 0 }

let add_profile a b =
  {
    atoms = a.atoms + b.atoms;
    quantifiers = a.quantifiers + b.quantifiers;
    sum_count = a.sum_count + b.sum_count;
    tuple_width = a.tuple_width + b.tuple_width;
  }

let rec profile_formula (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False -> zero_profile
  | Ast.Rel _ -> { zero_profile with atoms = 1 }
  | Ast.Cmp (_, a, b) ->
      add_profile
        { zero_profile with atoms = 1 }
        (add_profile (profile_term a) (profile_term b))
  | Ast.Not g -> profile_formula g
  | Ast.And (g, h) | Ast.Or (g, h) ->
      add_profile (profile_formula g) (profile_formula h)
  | Ast.Exists (_, g) | Ast.Forall (_, g) ->
      add_profile { zero_profile with quantifiers = 1 } (profile_formula g)

and profile_term (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> zero_profile
  | Ast.Add (a, b) | Ast.Mul (a, b) ->
      add_profile (profile_term a) (profile_term b)
  | Ast.Sum s ->
      add_profile
        { zero_profile with sum_count = 1; tuple_width = List.length s.Ast.w }
        (add_profile (profile_formula s.Ast.guard)
           (add_profile (profile_formula s.Ast.gamma)
              (profile_formula s.Ast.end_body)))

(* Fourier-Motzkin worst case: eliminating one variable from m constraints
   can leave floor(m/2)*ceil(m/2) <= m^2/4 of them (the Section 3 story:
   repeated squaring).  Saturates well below [infinity] so the projection
   stays comparable. *)
let projected_qe_atoms p =
  let m = ref (float_of_int (Stdlib.max 2 p.atoms)) in
  for _ = 1 to p.quantifiers do
    if !m < 1e150 then m := Float.max !m (!m *. !m /. 4.)
  done;
  !m

let projected_sum_points ~endpoints p =
  if p.sum_count = 0 then 0.
  else float_of_int endpoints ** float_of_int p.tuple_width

let default_budget = infinity

type decision =
  | Run_exact
  | Fallback_approx of { projected : float; budget : float }

let pp_decision fmt = function
  | Run_exact -> Format.pp_print_string fmt "run-exact"
  | Fallback_approx { projected; budget } ->
      Format.fprintf fmt "fallback-approx (projected %.3g > budget %.3g)"
        projected budget

let decide ?(endpoints = 8) ?(budget = default_budget) p =
  let projected =
    Float.max (projected_qe_atoms p) (projected_sum_points ~endpoints p)
  in
  if projected > budget then Fallback_approx { projected; budget }
  else Run_exact

(* The numeric-kernel label for stats lines and bench ablation rows.
   Deliberately label-only: the filtered kernel is certified to produce
   byte-identical results, so it must never influence [decide] — the
   same query takes the same engine under either kernel. *)
let kernel_name () = Cqa_linear.Flatrow.kernel_name ()
