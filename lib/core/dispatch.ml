type hint = Exact_semilinear | Pointwise_poly | Sum_eval

let to_string = function
  | Exact_semilinear -> "exact-semilinear"
  | Pointwise_poly -> "pointwise-poly"
  | Sum_eval -> "sum-eval"

let pp fmt h = Format.pp_print_string fmt (to_string h)
