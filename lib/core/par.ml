(* Deterministic fork/join helpers for the exact-volume engine (mirrors
   the conventions of Cqa_vc.Approx_volume): work is split into contiguous
   index chunks, results are reassembled in slot order, so the output never
   depends on domain scheduling.  Since the pool rewrite the chunks run on
   Cqa_conc.Pool's persistent workers — no Domain.spawn per call — and its
   adaptive cutoff may run them inline on the caller; both execute the
   identical decomposition, so the value is a function of [~domains]
   alone. *)

module Pool = Cqa_conc.Pool

let clamp_domains ~n domains =
  let d = Stdlib.max 1 domains in
  Stdlib.min d (Stdlib.max 1 n)

(* first (n mod k) chunks carry the extra element *)
let chunk_sizes ~n ~chunks =
  let q = n / chunks and r = n mod chunks in
  Array.init chunks (fun i -> if i < r then q + 1 else q)

let chunk_starts sizes =
  let k = Array.length sizes in
  let starts = Array.make k 0 in
  for i = 1 to k - 1 do
    starts.(i) <- starts.(i - 1) + sizes.(i - 1)
  done;
  starts

module T = Cqa_telemetry.Telemetry

(* Per-chunk wall-clock timings, recorded under [par.chunk:<label>].  The
   chunk count and durations depend on the domain count and scheduling, so
   this is a timer, never a counter (see the Telemetry determinism
   contract).  The timer is registered on the submitting domain; pool
   workers only record into it. *)
let chunk_timer label =
  if T.enabled () then Some (T.timer ("par.chunk:" ^ label)) else None

let timed tmr job =
  match tmr with None -> job () | Some t -> T.time t job

(* On the pool path exceptions are captured per element and re-raised in
   index order only after every chunk has completed: no chunk is ever
   abandoned, and the surfaced exception is the one the sequential run
   would have hit first.  When the pool's cutoff would run the batch
   inline anyway, the chunk structures are skipped and the map runs as the
   plain sequential map — same value (the map is elementwise), same
   surfaced exception (the first in index order) — still routed through
   [run_chunks] as one chunk so the label keeps being calibrated. *)
let map ?(label = "map") ~domains f arr =
  let n = Array.length arr in
  let k = clamp_domains ~n domains in
  if k <= 1 then Array.map f arr
  else if not (Pool.would_parallelize ~label ~items:n) then begin
    let res = ref [||] in
    Pool.run_chunks ~label ~items:n 1 (fun _ -> res := Array.map f arr);
    !res
  end
  else begin
    let sizes = chunk_sizes ~n ~chunks:k in
    let starts = chunk_starts sizes in
    let tmr = chunk_timer label in
    let chunks = Array.make k [||] in
    Pool.run_chunks ~label ~items:n k (fun d ->
        timed tmr (fun () ->
            chunks.(d) <-
              Array.init sizes.(d) (fun i ->
                  match f arr.(starts.(d) + i) with
                  | v -> Ok v
                  | exception e -> Error e)));
    let results = Array.concat (Array.to_list chunks) in
    Array.map (function Ok v -> v | Error e -> raise e) results
  end

(* Chunked reduction of [combine] over [term lo .. term hi]: each chunk
   folds a contiguous index range, partial results are combined in chunk
   order.  [combine] must be associative and commutative (exact rational
   addition here), so the re-association cannot change the value. *)
let fold_ints ?(label = "fold") ~domains ~combine ~init term lo hi =
  let n = hi - lo + 1 in
  if n <= 0 then init
  else begin
    let k = clamp_domains ~n domains in
    let seq a b =
      let acc = ref init in
      for i = a to b do
        acc := combine !acc (term i)
      done;
      !acc
    in
    if k <= 1 then seq lo hi
    else if not (Pool.would_parallelize ~label ~items:n) then begin
      let res = ref init in
      Pool.run_chunks ~label ~items:n 1 (fun _ -> res := seq lo hi);
      !res
    end
    else begin
      let sizes = chunk_sizes ~n ~chunks:k in
      let starts = chunk_starts sizes in
      let tmr = chunk_timer label in
      let parts = Array.make k (Ok init) in
      Pool.run_chunks ~label ~items:n k (fun d ->
          timed tmr (fun () ->
              let a = lo + starts.(d) in
              let b = a + sizes.(d) - 1 in
              parts.(d) <-
                (match seq a b with v -> Ok v | exception e -> Error e)));
      Array.fold_left
        (fun acc r -> match r with Ok v -> combine acc v | Error e -> raise e)
        init parts
    end
  end
