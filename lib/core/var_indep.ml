open Cqa_arith
open Cqa_linear

let is_variable_independent s =
  List.for_all
    (List.for_all (fun a -> List.length (Linconstr.vars a) <= 1))
    (Semilinear.dnf s)

(* Per-axis breakpoints of a variable-independent set: the constants
   [-c/a] of its univariate atoms. *)
let axis_breakpoints s axis =
  let v = (Semilinear.vars s).(axis) in
  List.concat_map
    (List.filter_map (fun atom ->
         let e = Linconstr.expr atom in
         let c = Linexpr.coeff e v in
         if Q.is_zero c then None
         else Some (Q.neg (Q.div (Linexpr.constant e) c))))
    (Semilinear.dnf s)
  |> List.sort_uniq Q.compare

let grid_volume s =
  if not (is_variable_independent s) then
    invalid_arg "Var_indep.grid_volume: not variable-independent";
  let n = Semilinear.dim s in
  match Semilinear.bounding_box s with
  | None ->
      if Semilinear.is_empty s then Q.zero else raise Volume_exact.Unbounded
  | Some _ ->
      (* For each axis: breakpoints partition the line; the set is a union
         of products of partition pieces.  Sum volumes of member cells. *)
      let axes =
        List.init n (fun i ->
            let bps = axis_breakpoints s i in
            (* pieces: open intervals between consecutive breakpoints (the
               isolated points have measure zero) *)
            let rec pieces = function
              | a :: (b :: _ as rest) ->
                  if Q.lt a b then (Q.mid a b, Q.sub b a) :: pieces rest
                  else pieces rest
              | _ -> []
            in
            pieces bps)
      in
      let rec walk prefix_sample prefix_width = function
        | [] ->
            if Semilinear.mem s (Array.of_list (List.rev prefix_sample)) then
              prefix_width
            else Q.zero
        | axis :: rest ->
            List.fold_left
              (fun acc (sample, width) ->
                Q.add acc
                  (walk (sample :: prefix_sample) (Q.mul prefix_width width) rest))
              Q.zero axis
      in
      walk [] Q.one axes
