open Cqa_arith
open Cqa_linear
module T = Cqa_telemetry.Telemetry

(* All plan.* counters depend on cache and per-database state, hence on
   execution history; they are exempt from the determinism contract. *)
let tm_state_hit = T.counter "plan.state.hit"
let tm_state_miss = T.counter "plan.state.miss"
let tm_exec_exact = T.counter "plan.exec.exact"
let tm_exec_fallback = T.counter "plan.exec.fallback"
let tm_param_fast = T.counter "plan.param.fast"
let tm_param_slow = T.counter "plan.param.slow"

(* ------------------------------------------------------------------ *)
(* Per-database execution state                                        *)
(* ------------------------------------------------------------------ *)

type set_state = S_unknown | S_ok of Semilinear.t | S_no of string
type fn_state = F_unknown | F_ok of Volume_param.t | F_no

type st = {
  mutable set : set_state;
      (* the query evaluated over coords ++ params (params trailing) *)
  mutable param_fn : fn_state;
      (* Lemma 5 piecewise polynomial in the single parameter *)
  mutable vol : Q.t option;
  mutable vol_clamped : Q.t option;
}

type Plan.exec_state += St of st

(* Memo discipline mirrors the striped memo tables: read the slot under
   the plan lock, compute outside it, write back under it keeping any
   value a concurrent domain installed first.  Duplicate computes are
   benign (exact arithmetic, equal results). *)
let state p db =
  match Plan.lookup_state p db with
  | Some (St st) ->
      T.incr tm_state_hit;
      st
  | _ ->
      T.incr tm_state_miss;
      let st =
        { set = S_unknown; param_fn = F_unknown; vol = None; vol_clamped = None }
      in
      Plan.store_state p db (St st);
      st

let layout p = Array.append (Plan.coords p) (Plan.params p)

let compute_set p db =
  match Plan.hint p with
  | Some Dispatch.Exact_semilinear -> S_ok (Eval.eval_set db (layout p) (Plan.normal p))
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) ->
      S_no
        "static dispatch hint excludes the exact engine (use the Theorem 4 \
         sampling estimators)"
  | None -> (
      match Eval.try_eval_set db (layout p) (Plan.normal p) with
      | Some s -> S_ok s
      | None -> S_no "query is not linear-reducible")

let get_set p db =
  let st = state p db in
  match Plan.with_lock p (fun () -> st.set) with
  | S_ok s -> Ok s
  | S_no m -> Error m
  | S_unknown -> (
      let r = compute_set p db in
      Plan.with_lock p (fun () ->
          (match st.set with S_unknown -> st.set <- r | _ -> ());
          match st.set with
          | S_ok s -> Ok s
          | S_no m -> Error m
          | S_unknown -> assert false))

let set_exn p db =
  match get_set p db with
  | Ok s -> s
  | Error m -> raise (Volume_exact.Not_semilinear m)

(* ------------------------------------------------------------------ *)
(* Unparameterized volumes                                             *)
(* ------------------------------------------------------------------ *)

let no_params name p =
  if Array.length (Plan.params p) > 0 then
    invalid_arg
      (Printf.sprintf "%s: plan has parameter slots (use volume_at)" name)

let memo_q p slot_get slot_set compute =
  match Plan.with_lock p slot_get with
  | Some v -> v
  | None ->
      let v = compute () in
      Plan.with_lock p (fun () ->
          match slot_get () with
          | Some v' -> v'
          | None ->
              slot_set v;
              v)

let volume ?(domains = 1) p db =
  no_params "Exec.volume" p;
  let st = state p db in
  let s = set_exn p db in
  memo_q p
    (fun () -> st.vol)
    (fun v -> st.vol <- Some v)
    (fun () -> Volume_exact.volume ~domains s)

let volume_clamped ?(domains = 1) p db =
  no_params "Exec.volume_clamped" p;
  let st = state p db in
  let s = set_exn p db in
  memo_q p
    (fun () -> st.vol_clamped)
    (fun v -> st.vol_clamped <- Some v)
    (fun () -> Volume_exact.volume_clamped ~domains s)

(* ------------------------------------------------------------------ *)
(* Parameterized execution                                             *)
(* ------------------------------------------------------------------ *)

(* Parameters occupy the trailing coordinates of the layout, so binding
   them is repeated sectioning on the last axis, innermost (last
   parameter) first. *)
let section_at s qs =
  let s = ref s in
  for i = Array.length qs - 1 downto 0 do
    s := Semilinear.section_last !s qs.(i)
  done;
  !s

let get_param_fn ~domains p db s =
  let st = state p db in
  match Plan.with_lock p (fun () -> st.param_fn) with
  | F_ok fn -> Some fn
  | F_no -> None
  | F_unknown -> (
      let r =
        if Semilinear.dim s < 2 then F_no
        else
          match Volume_param.section_volume_function ~domains s with
          | fn -> F_ok fn
          | exception (Volume_exact.Unbounded | Invalid_argument _) -> F_no
      in
      Plan.with_lock p (fun () ->
          (match st.param_fn with F_unknown -> st.param_fn <- r | _ -> ());
          match st.param_fn with F_ok fn -> Some fn | _ -> None))

(* The Lemma 5 fast path is only taken strictly inside a polynomial
   piece, where [Volume_param.eval] provably equals the section's sweep
   volume; at breakpoints (where eval's adjacent-piece convention is a
   measure-zero choice) and outside the pieces, fall through to the
   direct sweep so batched and one-shot execution agree everywhere. *)
let eval_interior fn t =
  if
    List.exists
      (fun (pc : Volume_param.piece) -> Q.lt pc.lo t && Q.lt t pc.hi)
      fn
  then Some (Volume_param.eval fn t)
  else None

let volume_at ?(domains = 1) p db qs =
  let np = Array.length (Plan.params p) in
  if Array.length qs <> np then
    invalid_arg
      (Printf.sprintf "Exec.volume_at: expected %d parameter values, got %d" np
         (Array.length qs));
  if np = 0 then volume ~domains p db
  else begin
    let s = set_exn p db in
    let fast =
      if np = 1 then
        match get_param_fn ~domains p db s with
        | Some fn -> eval_interior fn qs.(0)
        | None -> None
      else None
    in
    match fast with
    | Some v ->
        T.incr tm_param_fast;
        v
    | None ->
        T.incr tm_param_slow;
        Volume_exact.volume ~domains (section_at s qs)
  end

let batch ?domains p db bindings = List.map (volume_at ?domains p db) bindings

(* Batched execution with the parallelism turned sideways: one binding per
   work item across the pool, each evaluated sequentially, instead of one
   binding at a time with parallel internals.  The shared state (set,
   Lemma 5 polynomial) is warmed once before the fan-out so the workers
   only read it; values are the same exact rationals [volume_at] computes,
   and the chunk decomposition derives from [~domains] alone, so results
   are byte-identical to the sequential [batch] whatever the pool does. *)
let volume_batch ?(domains = 1) p db bindings =
  match bindings with
  | [] -> []
  | _ :: _ ->
      let np = Array.length (Plan.params p) in
      List.iter
        (fun qs ->
          if Array.length qs <> np then
            invalid_arg
              (Printf.sprintf
                 "Exec.volume_batch: expected %d parameter values, got %d" np
                 (Array.length qs)))
        bindings;
      let s = set_exn p db in
      if np = 1 then ignore (get_param_fn ~domains:1 p db s);
      let arr = Array.of_list bindings in
      Par.map ~label:"exec.volume_batch" ~domains
        (fun qs -> volume_at ~domains:1 p db qs)
        arr
      |> Array.to_list

(* ------------------------------------------------------------------ *)
(* Guarded execution and the cached query entry point                  *)
(* ------------------------------------------------------------------ *)

let volume_guarded ?(domains = 1) ?budget ?(eps = 0.1) ?(delta = 0.1)
    ?(seed = 1) p db =
  no_params "Exec.volume_guarded" p;
  let budget = Option.value budget ~default:(Plan.budget p) in
  (* the verdict was computed at plan time; re-decide only when the caller
     overrides the budget the plan was compiled against *)
  let decision =
    if budget = Plan.budget p then Plan.decision p
    else Dispatch.decide ~budget (Plan.profile p)
  in
  let projected = Plan.projected p in
  let fallback reason =
    T.incr tm_exec_fallback;
    if T.enabled () then
      T.event "plan.fallback"
        (Printf.sprintf "plan #%d: %s; projected=%.3g budget=%.3g eps=%g \
                         delta=%g"
           (Plan.id p) reason projected budget eps delta);
    let value, m =
      Volume_exact.sampler_estimate ~domains ~eps ~delta ~seed db
        (Plan.coords p) (Plan.normal p)
    in
    {
      Volume_exact.value;
      engine = Volume_exact.Approx_engine { sample_size = m };
      projected;
      budget;
    }
  in
  match Plan.hint p with
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) ->
      fallback "static hint excludes the exact engine"
  | Some Dispatch.Exact_semilinear | None -> (
      match decision with
      | Dispatch.Fallback_approx _ -> fallback "projected cost exceeds budget"
      | Dispatch.Run_exact ->
          T.incr tm_exec_exact;
          let value = volume_clamped ~domains p db in
          { Volume_exact.value; engine = Volume_exact.Exact_engine; projected;
            budget })

let volume_of_query ?domains ?hint db coords f =
  let p = Plan.cached ~hint_of:(fun _ -> hint) ~coords f in
  volume ?domains p db
