open Cqa_arith
open Cqa_logic
open Cqa_linear
module T = Cqa_telemetry.Telemetry

(* All plan.* and exec.* counters depend on cache and per-database state,
   hence on execution history; they are exempt from the determinism
   contract. *)
let tm_state_hit = T.counter "plan.state.hit"
let tm_state_miss = T.counter "plan.state.miss"
let tm_exec_exact = T.counter "plan.exec.exact"
let tm_exec_fallback = T.counter "plan.exec.fallback"
let tm_param_fast = T.counter "plan.param.fast"
let tm_param_slow = T.counter "plan.param.slow"

(* Incremental-maintenance traffic: cells are breakpoint intervals of the
   Lemma 5 piece lists, samples are retained Theorem 4 sample points. *)
let tm_inv_full = T.counter "exec.invalidate.full"
let tm_inv_cells = T.counter "exec.invalidate.cells"
let tm_reuse_cells = T.counter "exec.reuse.cells"
let tm_inv_samples = T.counter "exec.invalidate.samples"
let tm_reuse_samples = T.counter "exec.reuse.samples"

(* ------------------------------------------------------------------ *)
(* Per-database execution state                                        *)
(* ------------------------------------------------------------------ *)

type set_state = S_unknown | S_ok of Semilinear.t | S_no of string
type fn_state = F_unknown | F_ok of Volume_param.t | F_no

(* A retained Theorem 4 sample: the drawn points plus their membership
   bitmap.  [fraction_of_bits sm_bits] is exactly the estimate the
   one-shot [Volume_exact.sampler_estimate] computes for the same
   (eps, delta, seed, domains); after an update only the points inside
   the delta boxes are re-tested. *)
type sampler = {
  sm_eps : float;
  sm_delta : float;
  sm_seed : int;
  sm_domains : int;
  sm_m : int;
  sm_pts : Q.t array array;
  mutable sm_bits : Bytes.t;
}

let sampler_cap = 4

type st = {
  mutable version : int;
      (* the database version the cached fields below reflect *)
  mutable set : set_state;
      (* the query evaluated over coords ++ params (params trailing) *)
  mutable fn : fn_state;
      (* Lemma 5 piece list of the set along its last layout axis: with a
         single parameter it is the parametric fast path, without
         parameters its integral is the exact volume *)
  mutable fn_clamped : fn_state;
      (* same pieces for the unit-cube clamp (VOL_I) *)
  mutable vol : Q.t option;
  mutable vol_clamped : Q.t option;
  mutable samplers : sampler list;  (* MRU order, at most [sampler_cap] *)
}

type Plan.exec_state += St of st

(* Memo discipline mirrors the striped memo tables: read the slot under
   the plan lock, compute outside it, write back under it keeping any
   value a concurrent domain installed first.  Duplicate computes are
   benign (exact arithmetic, equal results). *)
let state p db =
  match Plan.lookup_state p db with
  | Some (St st) ->
      T.incr tm_state_hit;
      st
  | _ ->
      T.incr tm_state_miss;
      let st =
        {
          version = Db.version db;
          set = S_unknown;
          fn = F_unknown;
          fn_clamped = F_unknown;
          vol = None;
          vol_clamped = None;
          samplers = [];
        }
      in
      Plan.store_state p db (St st);
      st

let layout p = Array.append (Plan.coords p) (Plan.params p)

let compute_set p db =
  match Plan.hint p with
  | Some Dispatch.Exact_semilinear -> S_ok (Eval.eval_set db (layout p) (Plan.normal p))
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) ->
      S_no
        "static dispatch hint excludes the exact engine (use the Theorem 4 \
         sampling estimators)"
  | None -> (
      match Eval.try_eval_set db (layout p) (Plan.normal p) with
      | Some s -> S_ok s
      | None -> S_no "query is not linear-reducible")

(* ------------------------------------------------------------------ *)
(* Delta analysis: which cached facts can an update actually touch?    *)
(* ------------------------------------------------------------------ *)

(* Rel occurrences of the normalized query, with binder shadowing made
   explicit: each occurrence is the relation name plus, per argument
   position, the layout index of the free variable there ([None] for a
   bound variable or a variable outside the layout -- an unconstrained
   position).  Plan binders are alpha-renamed apart from the layout, so
   shadowing never fires in practice; tracking it keeps the analysis
   conservative regardless. *)
let occurrences layout f =
  let n = Array.length layout in
  let idx v =
    let rec go i =
      if i >= n then None else if Var.equal layout.(i) v then Some i else go (i + 1)
    in
    go 0
  in
  let occs = ref [] in
  let rec go bound = function
    | Ast.True | Ast.False | Ast.Cmp _ -> ()
    | Ast.Rel (r, args) ->
        let poss =
          List.map
            (fun v -> if List.exists (Var.equal v) bound then None else idx v)
            args
        in
        occs := (r, poss) :: !occs
    | Ast.Not g -> go bound g
    | Ast.And (a, b) | Ast.Or (a, b) ->
        go bound a;
        go bound b
    | Ast.Exists (v, g) | Ast.Forall (v, g) -> go (v :: bound) g
  in
  go [] f;
  !occs

(* Membership at a point can only change if some consulted tuple of the
   edited relation lies in the edited region, hence inside its bounding
   box.  An occurrence consults tuples whose coordinates at layout-bound
   positions equal the point's; every other position is free. *)
let point_dirty occs (ch : Db.change) pt =
  if ch.Db.delta_empty then false
  else
    match ch.Db.delta_box with
    | None -> List.exists (fun (r, _) -> r = ch.Db.rel) occs
    | Some bb ->
        List.exists
          (fun (r, poss) ->
            r = ch.Db.rel
            &&
            let ok = ref true in
            List.iteri
              (fun j p ->
                match p with
                | Some k when j < Array.length bb ->
                    let lo, hi = bb.(j) in
                    if not (Q.leq lo pt.(k) && Q.leq pt.(k) hi) then ok := false
                | _ -> ())
              poss;
            !ok)
          occs

(* Dirty extent of the last layout axis: sections at [t] outside the slab
   cannot consult an edited tuple, so their membership -- and hence their
   measure -- is unchanged. *)
type slab = All | Ints of (Q.t * Q.t) list

let slab_union a b =
  match (a, b) with All, _ | _, All -> All | Ints x, Ints y -> Ints (x @ y)

let slab_of_change occs ~last (ch : Db.change) =
  if ch.Db.delta_empty then Ints []
  else
    match ch.Db.delta_box with
    | None -> if List.exists (fun (r, _) -> r = ch.Db.rel) occs then All else Ints []
    | Some bb ->
        List.fold_left
          (fun acc (r, poss) ->
            if r <> ch.Db.rel then acc
            else begin
              (* intersect the box ranges at every position naming the
                 last layout variable; no such position = the occurrence
                 is unconstrained in [t] *)
              let iv = ref None and constrained = ref false in
              List.iteri
                (fun j p ->
                  if p = Some last && j < Array.length bb then begin
                    constrained := true;
                    let lo, hi = bb.(j) in
                    iv :=
                      Some
                        (match !iv with
                        | None -> (lo, hi)
                        | Some (a, b) -> (Q.max a lo, Q.min b hi))
                  end)
                poss;
              if not !constrained then All
              else
                match !iv with
                | Some (a, b) when Q.leq a b -> slab_union acc (Ints [ (a, b) ])
                | _ -> acc
            end)
          (Ints []) occs

let slab_hits slab a b =
  match slab with
  | All -> true
  | Ints l -> List.exists (fun (lo, hi) -> Q.lt lo b && Q.lt a hi) l

(* ------------------------------------------------------------------ *)
(* Settling a stale state against the database's change log            *)
(* ------------------------------------------------------------------ *)

let count_pieces = function F_ok pcs -> List.length pcs | _ -> 0

let invalidate_full st =
  T.incr tm_inv_full;
  if T.enabled () then begin
    T.add tm_inv_cells (count_pieces st.fn + count_pieces st.fn_clamped);
    T.add tm_inv_samples
      (List.fold_left (fun n sm -> n + Array.length sm.sm_pts) 0 st.samplers)
  end;
  st.set <- S_unknown;
  st.fn <- F_unknown;
  st.fn_clamped <- F_unknown;
  st.vol <- None;
  st.vol_clamped <- None;
  st.samplers <- []

let refresh_slot ~domains ~dirty ~old_set s = function
  | F_unknown | F_no -> F_unknown
  | F_ok old -> (
      match Volume_param.refresh ~domains ~old_set ~old ~dirty s with
      | pieces, recomputed, reused ->
          if T.enabled () then begin
            T.add tm_inv_cells recomputed;
            T.add tm_reuse_cells reused
          end;
          F_ok pieces
      | exception (Volume_exact.Unbounded | Invalid_argument _) -> F_no)

let rescore_samplers ~occs ~relevant p db st =
  match st.samplers with
  | [] -> ()
  | samplers ->
      let mem = Volume_approx.member db (layout p) (Plan.normal p) in
      List.iter
        (fun sm ->
          let n = Array.length sm.sm_pts in
          let bits = Bytes.copy sm.sm_bits in
          let dirty_n = ref 0 in
          for i = 0 to n - 1 do
            let pt = sm.sm_pts.(i) in
            if List.exists (fun ch -> point_dirty occs ch pt) relevant then begin
              incr dirty_n;
              Bytes.set bits i (if mem pt then '\001' else '\000')
            end
          done;
          if T.enabled () then begin
            T.add tm_inv_samples !dirty_n;
            T.add tm_reuse_samples (n - !dirty_n)
          end;
          sm.sm_bits <- bits)
        samplers

(* Apply a batch of logged changes to the cached state, invalidating only
   what the deltas can touch.  Runs under the plan lock; [Eval] and the
   volume engines never take plan locks, so recomputing here is safe. *)
let settle ~domains p db st chs =
  let chs = List.filter (fun (c : Db.change) -> not c.Db.delta_empty) chs in
  if chs = [] then () (* pure no-ops: every cached fact still holds *)
  else begin
    let f = Plan.normal p in
    let lay = layout p in
    let dim = Array.length lay in
    if dim = 0 || Ast.has_sum f then
      (* SUM terms consult relations through their own binders; give up on
         locality rather than reason about them *)
      invalidate_full st
    else begin
      let occs = occurrences lay f in
      let relevant =
        List.filter
          (fun (c : Db.change) -> List.exists (fun (r, _) -> r = c.Db.rel) occs)
          chs
      in
      if relevant = [] then () (* the query never consults the edited relations *)
      else begin
        let last = dim - 1 in
        let slab =
          List.fold_left
            (fun acc c -> slab_union acc (slab_of_change occs ~last c))
            (Ints []) relevant
        in
        (match slab with
        | Ints [] ->
            (* every consult the deltas could supply is impossible:
               membership is unchanged everywhere *)
            ()
        | _ ->
            let dirty a b = slab_hits slab a b in
            st.vol <- None;
            st.vol_clamped <- None;
            (match st.set with
            | S_unknown ->
                st.fn <- F_unknown;
                st.fn_clamped <- F_unknown
            | S_no _ ->
                st.set <- S_unknown;
                st.fn <- F_unknown;
                st.fn_clamped <- F_unknown
            | S_ok s_old -> (
                match compute_set p db with
                | S_ok s' ->
                    st.set <- S_ok s';
                    st.fn <- refresh_slot ~domains ~dirty ~old_set:s_old s' st.fn;
                    st.fn_clamped <-
                      refresh_slot ~domains ~dirty
                        ~old_set:(Semilinear.clamp_unit s_old)
                        (Semilinear.clamp_unit s')
                        st.fn_clamped
                | r ->
                    st.set <- r;
                    st.fn <- F_unknown;
                    st.fn_clamped <- F_unknown)));
        rescore_samplers ~occs ~relevant p db st
      end
    end
  end

(* Bring the per-database state up to the database's current version.
   Every public entry point calls this first; the version compare is the
   whole cost on the (usual) no-update path. *)
let sync ~domains p db =
  let st = state p db in
  if st.version <> Db.version db then
    Plan.with_lock p (fun () ->
        let v = Db.version db in
        if st.version <> v then begin
          (match Db.changes_since db st.version with
          | None -> invalidate_full st
          | Some chs -> settle ~domains p db st chs);
          st.version <- v
        end);
  st

let get_set p db =
  let st = state p db in
  match Plan.with_lock p (fun () -> st.set) with
  | S_ok s -> Ok s
  | S_no m -> Error m
  | S_unknown -> (
      let r = compute_set p db in
      Plan.with_lock p (fun () ->
          (match st.set with S_unknown -> st.set <- r | _ -> ());
          match st.set with
          | S_ok s -> Ok s
          | S_no m -> Error m
          | S_unknown -> assert false))

let set_exn p db =
  match get_set p db with
  | Ok s -> s
  | Error m -> raise (Volume_exact.Not_semilinear m)

(* ------------------------------------------------------------------ *)
(* Lemma 5 piece lists                                                 *)
(* ------------------------------------------------------------------ *)

let get_fn ~domains ~clamped p db s =
  let st = state p db in
  let read () = if clamped then st.fn_clamped else st.fn in
  let write r = if clamped then st.fn_clamped <- r else st.fn <- r in
  match Plan.with_lock p read with
  | F_ok fn -> Some fn
  | F_no -> None
  | F_unknown -> (
      let r =
        if Semilinear.dim s < 2 then F_no
        else
          let s = if clamped then Semilinear.clamp_unit s else s in
          match Volume_param.section_volume_function ~domains s with
          | fn -> F_ok fn
          | exception (Volume_exact.Unbounded | Invalid_argument _) -> F_no
      in
      Plan.with_lock p (fun () ->
          (match read () with F_unknown -> write r | _ -> ());
          match read () with F_ok fn -> Some fn | _ -> None))

(* ------------------------------------------------------------------ *)
(* Unparameterized volumes                                             *)
(* ------------------------------------------------------------------ *)

let no_params name p =
  if Array.length (Plan.params p) > 0 then
    invalid_arg
      (Printf.sprintf "%s: plan has parameter slots (use volume_at)" name)

let memo_q p slot_get slot_set compute =
  match Plan.with_lock p slot_get with
  | Some v -> v
  | None ->
      let v = compute () in
      Plan.with_lock p (fun () ->
          match slot_get () with
          | Some v' -> v'
          | None ->
              slot_set v;
              v)

(* In dimension >= 2 the volume is the integral of the Lemma 5 piece
   list, which is built by the very sweep [Volume_exact.volume] runs
   (same breakpoints, same interpolation samples, same exact
   integration), so the value is byte-identical to the direct sweep --
   and the pieces stay behind for incremental refresh after updates. *)
let volume ?(domains = 1) p db =
  no_params "Exec.volume" p;
  let st = sync ~domains p db in
  let s = set_exn p db in
  memo_q p
    (fun () -> st.vol)
    (fun v -> st.vol <- Some v)
    (fun () ->
      match get_fn ~domains ~clamped:false p db s with
      | Some fn -> Volume_param.integrate fn
      | None -> Volume_exact.volume ~domains s)

let volume_clamped ?(domains = 1) p db =
  no_params "Exec.volume_clamped" p;
  let st = sync ~domains p db in
  let s = set_exn p db in
  memo_q p
    (fun () -> st.vol_clamped)
    (fun v -> st.vol_clamped <- Some v)
    (fun () ->
      match get_fn ~domains ~clamped:true p db s with
      | Some fn -> Volume_param.integrate fn
      | None -> Volume_exact.volume_clamped ~domains s)

(* ------------------------------------------------------------------ *)
(* Parameterized execution                                             *)
(* ------------------------------------------------------------------ *)

(* Parameters occupy the trailing coordinates of the layout, so binding
   them is repeated sectioning on the last axis, innermost (last
   parameter) first. *)
let section_at s qs =
  let s = ref s in
  for i = Array.length qs - 1 downto 0 do
    s := Semilinear.section_last !s qs.(i)
  done;
  !s

(* The Lemma 5 fast path is only taken strictly inside a polynomial
   piece, where [Volume_param.eval] provably equals the section's sweep
   volume; at breakpoints (where eval's adjacent-piece convention is a
   measure-zero choice) and outside the pieces, fall through to the
   direct sweep so batched and one-shot execution agree everywhere. *)
let eval_interior fn t =
  if
    List.exists
      (fun (pc : Volume_param.piece) -> Q.lt pc.lo t && Q.lt t pc.hi)
      fn
  then Some (Volume_param.eval fn t)
  else None

let volume_at ?(domains = 1) p db qs =
  let np = Array.length (Plan.params p) in
  if Array.length qs <> np then
    invalid_arg
      (Printf.sprintf "Exec.volume_at: expected %d parameter values, got %d" np
         (Array.length qs));
  if np = 0 then volume ~domains p db
  else begin
    ignore (sync ~domains p db);
    let s = set_exn p db in
    let fast =
      if np = 1 then
        match get_fn ~domains ~clamped:false p db s with
        | Some fn -> eval_interior fn qs.(0)
        | None -> None
      else None
    in
    match fast with
    | Some v ->
        T.incr tm_param_fast;
        v
    | None ->
        T.incr tm_param_slow;
        Volume_exact.volume ~domains (section_at s qs)
  end

let batch ?domains p db bindings = List.map (volume_at ?domains p db) bindings

(* Batched execution with the parallelism turned sideways: one binding per
   work item across the pool, each evaluated sequentially, instead of one
   binding at a time with parallel internals.  The shared state (set,
   Lemma 5 polynomial) is warmed once before the fan-out so the workers
   only read it; values are the same exact rationals [volume_at] computes,
   and the chunk decomposition derives from [~domains] alone, so results
   are byte-identical to the sequential [batch] whatever the pool does. *)
let volume_batch ?(domains = 1) p db bindings =
  match bindings with
  | [] -> []
  | _ :: _ ->
      let np = Array.length (Plan.params p) in
      List.iter
        (fun qs ->
          if Array.length qs <> np then
            invalid_arg
              (Printf.sprintf
                 "Exec.volume_batch: expected %d parameter values, got %d" np
                 (Array.length qs)))
        bindings;
      ignore (sync ~domains p db);
      let s = set_exn p db in
      if np = 1 then ignore (get_fn ~domains:1 ~clamped:false p db s);
      let arr = Array.of_list bindings in
      Par.map ~label:"exec.volume_batch" ~domains
        (fun qs -> volume_at ~domains:1 p db qs)
        arr
      |> Array.to_list

(* ------------------------------------------------------------------ *)
(* Guarded execution and the cached query entry point                  *)
(* ------------------------------------------------------------------ *)

(* The Theorem 4 estimate for the plan's query, drawn from a retained
   sample: points and membership bitmap are cached per database keyed on
   (eps, delta, seed, domains), so a warm call is a bitmap popcount and
   an updated database only re-tests the points its deltas touch.  The
   drawn points are exactly [Volume_exact.sampler_estimate]'s for the
   same key, so the value matches the one-shot estimator bit for bit. *)
let sampled_estimate ~domains ~eps ~delta ~seed p db =
  let st = state p db in
  let coords = Plan.coords p in
  let vc_dim = Array.length coords + 2 in
  let m = Cqa_vc.Bounds.blumer_sample_size ~eps ~delta ~vc_dim in
  let key_eq sm =
    sm.sm_eps = eps && sm.sm_delta = delta && sm.sm_seed = seed
    && sm.sm_domains = domains
  in
  let promote sm =
    st.samplers <- sm :: List.filter (fun x -> not (x == sm)) st.samplers
  in
  let cached =
    Plan.with_lock p (fun () ->
        match List.find_opt key_eq st.samplers with
        | Some sm ->
            promote sm;
            Some sm
        | None -> None)
  in
  let bits =
    match cached with
    | Some sm -> sm.sm_bits
    | None ->
        let dim = Array.length coords in
        let prng = Cqa_vc.Prng.create seed in
        let pts = Cqa_vc.Approx_volume.sample_points ~domains ~prng ~dim m in
        let bits =
          Cqa_vc.Approx_volume.score_sample
            (Volume_approx.member db coords (Plan.normal p))
            pts
        in
        let sm =
          {
            sm_eps = eps;
            sm_delta = delta;
            sm_seed = seed;
            sm_domains = domains;
            sm_m = m;
            sm_pts = pts;
            sm_bits = bits;
          }
        in
        Plan.with_lock p (fun () ->
            match List.find_opt key_eq st.samplers with
            | Some sm' ->
                promote sm';
                sm'.sm_bits
            | None ->
                st.samplers <- sm :: st.samplers;
                (if List.length st.samplers > sampler_cap then
                   st.samplers <-
                     List.filteri (fun i _ -> i < sampler_cap) st.samplers);
                bits)
  in
  (Cqa_vc.Approx_volume.fraction_of_bits bits, m)

let volume_guarded ?(domains = 1) ?budget ?(eps = 0.1) ?(delta = 0.1)
    ?(seed = 1) p db =
  no_params "Exec.volume_guarded" p;
  ignore (sync ~domains p db);
  let budget = Option.value budget ~default:(Plan.budget p) in
  (* the verdict was computed at plan time; re-decide only when the caller
     overrides the budget the plan was compiled against *)
  let decision =
    if budget = Plan.budget p then Plan.decision p
    else Dispatch.decide ~budget (Plan.profile p)
  in
  let projected = Plan.projected p in
  let fallback reason =
    T.incr tm_exec_fallback;
    if T.enabled () then
      T.event "plan.fallback"
        (Printf.sprintf "plan #%d: %s; projected=%.3g budget=%.3g eps=%g \
                         delta=%g"
           (Plan.id p) reason projected budget eps delta);
    let value, m = sampled_estimate ~domains ~eps ~delta ~seed p db in
    {
      Volume_exact.value;
      engine = Volume_exact.Approx_engine { sample_size = m };
      projected;
      budget;
    }
  in
  match Plan.hint p with
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) ->
      fallback "static hint excludes the exact engine"
  | Some Dispatch.Exact_semilinear | None -> (
      match decision with
      | Dispatch.Fallback_approx _ -> fallback "projected cost exceeds budget"
      | Dispatch.Run_exact ->
          T.incr tm_exec_exact;
          let value = volume_clamped ~domains p db in
          { Volume_exact.value; engine = Volume_exact.Exact_engine; projected;
            budget })

let volume_of_query ?domains ?hint db coords f =
  let p = Plan.cached ~hint_of:(fun _ -> hint) ~coords f in
  volume ?domains p db
