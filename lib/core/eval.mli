(** Evaluation of FO + POLY + SUM queries over constraint databases.

    Two evaluation paths are implemented, mirroring how the paper uses the
    language:

    - a complete symbolic path for the linear-reducible fragment (semi-linear
      databases and atoms linear in the live variables), powered by
      Fourier-Motzkin elimination.  This covers everything Theorem 3 needs:
      quantifiers, END, range-restricted summation and hence exact volumes of
      semi-linear databases;
    - a pointwise path for arbitrary polynomial atoms and semi-algebraic
      databases: quantifier-free truth at a rational point, one-dimensional
      sections via 1-D CAD (with exact algebraic endpoints), and membership
      oracles for the Theorem 4 sampling operators.

    Anything outside both fragments (e.g. real quantification over
    semi-algebraic relations, or summation over algebraic endpoints) raises
    [Unsupported]; DESIGN.md discusses why the paper's results do not need
    it. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly

exception Unsupported of string

val eval_term : Db.t -> Q.t Var.Map.t -> Ast.term -> Q.t
(** Value of a term whose free variables are all bound by the environment.
    Summation terms enumerate the END endpoints, filter by the guard, and
    total the deterministic formula's outputs.
    @raise Unsupported outside the evaluable fragment.
    @raise Invalid_argument on unbound variables or a non-deterministic
    gamma detected at runtime. *)

val holds : Db.t -> Q.t Var.Map.t -> Ast.formula -> bool
(** Truth of a formula under an environment binding all its free variables. *)

val reduce_linear : Db.t -> Q.t Var.Map.t -> Ast.formula -> Linformula.t
(** Inline schema atoms from the (semi-linear) database, evaluate closed
    summation terms, substitute the environment: an equivalent pure FO + LIN
    formula over the remaining free variables.
    @raise Unsupported when atoms are not linear in the live variables or a
    relation is semi-algebraic. *)

val section : Db.t -> Q.t Var.Map.t -> Var.t -> Ast.formula -> Cell1.t
(** The one-dimensional set [{ y | phi (y) }] under the environment (linear
    path). *)

val end_points : Db.t -> Q.t Var.Map.t -> Var.t -> Ast.formula -> Q.t list
(** The END operator: endpoints of the intervals composing the section;
    finite by o-minimality. *)

val section_alg :
  Db.t -> Q.t Var.Map.t -> Var.t -> Ast.formula -> Semialg.Section.t
(** Semi-algebraic one-dimensional section with exact algebraic endpoints
    (quantifier-free bodies). *)

val eval_set : Db.t -> Var.t array -> Ast.formula -> Semilinear.t
(** Full symbolic evaluation of a linear-reducible query: the closure
    property of Lemma 4 made effective.  Free variables of the formula must
    be among the given coordinates. *)

val try_eval_set : Db.t -> Var.t array -> Ast.formula -> Semilinear.t option
(** The runtime linearity probe: [eval_set] with [Unsupported] mapped to
    [None].  Each call increments the {!runtime_probes} counter; queries
    carrying a static {!Dispatch.Exact_semilinear} hint skip the probe
    entirely (see [Volume_exact.volume_of_query]). *)

val runtime_probes : unit -> int
(** Number of runtime linearity probes performed so far (monotonic;
    observability hook for the static-dispatch contract). *)

val range_restricted_tuples :
  Db.t -> Q.t Var.Map.t -> Ast.sum_spec -> Q.t array list
(** The finite set [rho (D, z)] a summation ranges over: tuples of END
    endpoints satisfying the guard. *)

val gamma_value : Db.t -> Q.t Var.Map.t -> Ast.sum_spec -> Q.t array -> Q.t option
(** [f_gamma] applied to one tuple: the unique output of the deterministic
    formula, [None] when the formula has no output there (partial
    function). *)
