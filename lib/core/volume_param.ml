open Cqa_arith
open Cqa_linear
open Cqa_poly

type piece = { lo : Q.t; hi : Q.t; poly : Upoly.t }

type t = piece list

let section_volume_function ?(domains = 1) s =
  let n = Semilinear.dim s in
  if n < 2 then invalid_arg "Volume_param.section_volume_function: dim < 2";
  let bps = Volume_exact.breakpoints s in
  let h t = Volume_exact.volume_sweep (Semilinear.section_last s t) in
  (* collect every piece's interpolation samples, evaluate the sections in
     one deterministic parallel batch, then rebuild the pieces in order *)
  let rec collect acc = function
    | a :: (b :: _ as rest) ->
        if Q.geq a b then collect acc rest
        else begin
          let width = Q.sub b a in
          let samples =
            List.init n (fun j ->
                Q.add a (Q.mul width (Q.of_ints (j + 1) (n + 1))))
          in
          collect ((a, b, samples) :: acc) rest
        end
    | _ -> List.rev acc
  in
  let pieces = collect [] bps in
  let all_samples =
    Array.of_list (List.concat_map (fun (_, _, samples) -> samples) pieces)
  in
  let values = Par.map ~label:"volume.param" ~domains h all_samples in
  let pos = ref 0 in
  List.map
    (fun (a, b, samples) ->
      let pts =
        List.map
          (fun t ->
            let v = values.(!pos) in
            incr pos;
            (t, v))
          samples
      in
      { lo = a; hi = b; poly = Upoly.interpolate pts })
    pieces

let eval t x =
  let rec go = function
    | [] -> Q.zero
    | p :: rest ->
        if Q.leq p.lo x && Q.leq x p.hi then Upoly.eval p.poly x else go rest
  in
  go t

let integrate t =
  List.fold_left (fun acc p -> Q.add acc (Upoly.integrate p.poly p.lo p.hi)) Q.zero t

let degree t = List.fold_left (fun acc p -> max acc (Upoly.degree p.poly)) 0 t

let is_piecewise_linear t = degree t <= 1

let to_semialgebraic_graph t =
  let coords = Semialg.vars (Semialg.empty 2) in
  let tv = Mpoly.var coords.(0) and vv = Mpoly.var coords.(1) in
  let poly_in_t p =
    List.fold_left
      (fun acc (i, c) -> Mpoly.add acc (Mpoly.scale c (Mpoly.pow tv i)))
      Mpoly.zero
      (List.mapi (fun i c -> (i, c)) (Upoly.coeffs p))
  in
  let piece_dnf p =
    [ { Semialg.poly = Mpoly.sub (Mpoly.constant p.lo) tv; op = Semialg.Le };
      { Semialg.poly = Mpoly.sub tv (Mpoly.constant p.hi); op = Semialg.Le };
      { Semialg.poly = Mpoly.sub vv (poly_in_t p.poly); op = Semialg.Eq } ]
  in
  Semialg.make coords (List.map piece_dnf t)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list (fun f p ->
         Format.fprintf f "on (%a, %a): %a" Q.pp p.lo Q.pp p.hi Upoly.pp p.poly))
    t
