open Cqa_arith
open Cqa_linear
open Cqa_poly

type piece = { lo : Q.t; hi : Q.t; poly : Upoly.t }

type t = piece list

let section_volume_function ?(domains = 1) s =
  let n = Semilinear.dim s in
  if n < 2 then invalid_arg "Volume_param.section_volume_function: dim < 2";
  let bps = Volume_exact.breakpoints s in
  let h t = Volume_exact.volume_sweep (Semilinear.section_last s t) in
  (* collect every piece's interpolation samples, evaluate the sections in
     one deterministic parallel batch, then rebuild the pieces in order *)
  let rec collect acc = function
    | a :: (b :: _ as rest) ->
        if Q.geq a b then collect acc rest
        else begin
          let width = Q.sub b a in
          let samples =
            List.init n (fun j ->
                Q.add a (Q.mul width (Q.of_ints (j + 1) (n + 1))))
          in
          collect ((a, b, samples) :: acc) rest
        end
    | _ -> List.rev acc
  in
  let pieces = collect [] bps in
  let all_samples =
    Array.of_list (List.concat_map (fun (_, _, samples) -> samples) pieces)
  in
  let values = Par.map ~label:"volume.param" ~domains h all_samples in
  let pos = ref 0 in
  List.map
    (fun (a, b, samples) ->
      let pts =
        List.map
          (fun t ->
            let v = values.(!pos) in
            incr pos;
            (t, v))
          samples
      in
      { lo = a; hi = b; poly = Upoly.interpolate pts })
    pieces

(* Incremental rebuild after a database update.  When the predecessor set
   is known the breakpoint partition is maintained incrementally
   ({!Volume_exact.breakpoints_since}); a new piece's polynomial is then
   only re-interpolated when the
   piece is [dirty] (its interval meets the delta slab) or falls outside
   the old pieces' coverage; everywhere else the sections — and hence the
   measure function — are unchanged, so any old piece overlapping the new
   interval carries the {e same} polynomial (two polynomials of degree
   below [n] agreeing on an interval of positive length are equal, and
   interpolation is canonical), making the reused piece byte-identical to
   a cold recomputation. *)
let refresh ?(domains = 1) ?old_set ~old ~dirty s =
  let n = Semilinear.dim s in
  if n < 2 then invalid_arg "Volume_param.refresh: dim < 2";
  let bps =
    match (old_set, old) with
    | Some os, _ :: _ ->
        (* the old pieces are contiguous, so their boundaries are exactly
           the predecessor's breakpoint list *)
        let old_bps =
          (List.hd old).lo :: List.map (fun p -> p.hi) old
        in
        Volume_exact.breakpoints_since ~old_set:os ~old_bps s
    | _ -> Volume_exact.breakpoints s
  in
  let h t = Volume_exact.volume_sweep (Semilinear.section_last s t) in
  let coverage =
    match old with
    | [] -> None
    | first :: _ ->
        let rec last = function [ p ] -> p | _ :: r -> last r | [] -> first in
        Some (first.lo, (last old).hi)
  in
  let reuse_poly a b =
    if dirty a b then None
    else
      match coverage with
      | Some (clo, chi) when Q.leq clo a && Q.leq b chi ->
          (* old pieces are consecutive: any piece with positive-length
             overlap determines the polynomial on (a, b) *)
          List.find_opt (fun p -> Q.lt p.lo b && Q.lt a p.hi) old
          |> Option.map (fun p -> p.poly)
      | _ -> None
  in
  let rec collect acc = function
    | a :: (b :: _ as rest) ->
        if Q.geq a b then collect acc rest
        else begin
          match reuse_poly a b with
          | Some poly -> collect (`Old (a, b, poly) :: acc) rest
          | None ->
              let width = Q.sub b a in
              let samples =
                List.init n (fun j ->
                    Q.add a (Q.mul width (Q.of_ints (j + 1) (n + 1))))
              in
              collect (`New (a, b, samples) :: acc) rest
        end
    | _ -> List.rev acc
  in
  let pieces = collect [] bps in
  let all_samples =
    pieces
    |> List.concat_map (function `New (_, _, s) -> s | `Old _ -> [])
    |> Array.of_list
  in
  let values = Par.map ~label:"volume.refresh" ~domains h all_samples in
  let pos = ref 0 in
  let recomputed = ref 0 and reused = ref 0 in
  let out =
    List.map
      (function
        | `Old (a, b, poly) ->
            incr reused;
            { lo = a; hi = b; poly }
        | `New (a, b, samples) ->
            incr recomputed;
            let pts =
              List.map
                (fun t ->
                  let v = values.(!pos) in
                  incr pos;
                  (t, v))
                samples
            in
            { lo = a; hi = b; poly = Upoly.interpolate pts })
      pieces
  in
  (out, !recomputed, !reused)

let eval t x =
  let rec go = function
    | [] -> Q.zero
    | p :: rest ->
        if Q.leq p.lo x && Q.leq x p.hi then Upoly.eval p.poly x else go rest
  in
  go t

let integrate t =
  List.fold_left (fun acc p -> Q.add acc (Upoly.integrate p.poly p.lo p.hi)) Q.zero t

let degree t = List.fold_left (fun acc p -> max acc (Upoly.degree p.poly)) 0 t

let is_piecewise_linear t = degree t <= 1

let to_semialgebraic_graph t =
  let coords = Semialg.vars (Semialg.empty 2) in
  let tv = Mpoly.var coords.(0) and vv = Mpoly.var coords.(1) in
  let poly_in_t p =
    List.fold_left
      (fun acc (i, c) -> Mpoly.add acc (Mpoly.scale c (Mpoly.pow tv i)))
      Mpoly.zero
      (List.mapi (fun i c -> (i, c)) (Upoly.coeffs p))
  in
  let piece_dnf p =
    [ { Semialg.poly = Mpoly.sub (Mpoly.constant p.lo) tv; op = Semialg.Le };
      { Semialg.poly = Mpoly.sub tv (Mpoly.constant p.hi); op = Semialg.Le };
      { Semialg.poly = Mpoly.sub vv (poly_in_t p.poly); op = Semialg.Eq } ]
  in
  Semialg.make coords (List.map piece_dnf t)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list (fun f p ->
         Format.fprintf f "on (%a, %a): %a" Q.pp p.lo Q.pp p.hi Upoly.pp p.poly))
    t
