open Cqa_arith
open Cqa_linear

let translate_points ~n1 ~n2 ~delta =
  if Q.leq delta Q.zero || Q.geq delta Q.half then
    invalid_arg "Separating.translate_points: need 0 < delta < 1/2";
  let spread n base width =
    List.init n (fun i ->
        Q.add base (Q.mul width (Q.of_ints (i + 1) (n + 1))))
  in
  let u1' = spread n1 Q.zero delta in
  let u2' = spread n2 (Q.sub Q.one delta) delta in
  (u1', u2')

let avg_translated ~n1 ~n2 ~delta =
  if n1 + n2 = 0 then invalid_arg "Separating.avg_translated: empty union";
  let half_d = Q.mul delta Q.half in
  Q.div
    (Q.add
       (Q.mul_int half_d n1)
       (Q.mul_int (Q.sub Q.one half_d) n2))
    (Q.of_int (n1 + n2))

let ratio_from_avg ~avg ~delta =
  let half_d = Q.mul delta Q.half in
  let den = Q.sub avg half_d in
  if Q.sign den <= 0 then None
  else begin
    let num = Q.sub (Q.sub Q.one half_d) avg in
    if Q.sign num < 0 then None else Some (Q.div num den)
  end

let separating_thresholds ~eps ~delta =
  if Q.geq eps Q.half then
    invalid_arg "Separating.separating_thresholds: eps >= 1/2";
  let half_d = Q.mul delta Q.half in
  let den = Q.sub (Q.sub Q.half eps) half_d in
  if Q.sign den <= 0 then
    invalid_arg "Separating.separating_thresholds: need delta < 1 - 2 eps";
  let num = Q.sub (Q.add Q.half eps) half_d in
  let c = Q.div num den in
  (c, c)

type good_instance = { a_card : int; b : int list }

let good_instance ~a_card ~b =
  if a_card < 2 then invalid_arg "Separating.good_instance: need |A| >= 2";
  let b = List.sort_uniq compare b in
  if b = [] then invalid_arg "Separating.good_instance: B empty";
  if List.length b >= a_card then
    invalid_arg "Separating.good_instance: B must be a proper subset";
  List.iter
    (fun i ->
      if i < 0 || i >= a_card then
        invalid_arg "Separating.good_instance: B not a subset of A")
    b;
  { a_card; b }

let lemma2_sets gi =
  let n = gi.a_card in
  let t i = Q.of_ints i (n - 1) in
  let in_b i = List.mem i gi.b in
  let next_from pred_holds start =
    let rec go i = if i >= n then None else if pred_holds i then Some i else go (i + 1) in
    go start
  in
  let spans member =
    List.filter_map
      (fun i ->
        if member i then begin
          let stop =
            match next_from (fun j -> not (member j)) (i + 1) with
            | Some j -> t j
            | None -> Q.one
          in
          Some (Cell1.closed_interval (t i) stop)
        end
        else None)
      (List.init n (fun i -> i))
  in
  let x = List.fold_left Cell1.union Cell1.empty (spans in_b) in
  let y =
    List.fold_left Cell1.union Cell1.empty (spans (fun i -> not (in_b i)))
  in
  (x, y)

let lemma2_volumes gi =
  let x, y = lemma2_sets gi in
  let m c = match Cell1.measure c with Some v -> v | None -> assert false in
  (m x, m y)
