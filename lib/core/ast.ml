open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly

type cmp = Ceq | Clt | Cle

type term =
  | Const of Q.t
  | TVar of Var.t
  | Add of term * term
  | Mul of term * term
  | Sum of sum_spec

and sum_spec = {
  gamma_var : Var.t;
  gamma : formula;
  w : Var.t list;
  guard : formula;
  end_y : Var.t;
  end_body : formula;
}

and formula =
  | True
  | False
  | Cmp of cmp * term * term
  | Rel of string * Var.t list
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Exists of Var.t * formula
  | Forall of Var.t * formula

let q c = Const c
let int n = Const (Q.of_int n)
let v name = TVar (Var.of_string name)
let ( +! ) a b = Add (a, b)
let ( *! ) a b = Mul (a, b)
let ( -! ) a b = Add (a, Mul (Const Q.minus_one, b))
let ( =! ) a b = Cmp (Ceq, a, b)
let ( <! ) a b = Cmp (Clt, a, b)
let ( <=! ) a b = Cmp (Cle, a, b)
let ( >! ) a b = Cmp (Clt, b, a)
let ( >=! ) a b = Cmp (Cle, b, a)

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let implies a b = Or (Not a, b)
let exists_many vs f = List.fold_right (fun x g -> Exists (x, g)) vs f
let forall_many vs f = List.fold_right (fun x g -> Forall (x, g)) vs f

let sum ~gamma_var ~gamma ~w ~guard ~end_y ~end_body =
  Sum { gamma_var; gamma; w; guard; end_y; end_body }

let of_mpoly p =
  let of_mono (m, c) =
    List.fold_left
      (fun acc (var, e) ->
        let rec power k = if k = 0 then Const Q.one else Mul (TVar var, power (k - 1)) in
        Mul (acc, power e))
      (Const c) m
  in
  match Mpoly.terms p with
  | [] -> Const Q.zero
  | t :: ts -> List.fold_left (fun acc t' -> Add (acc, of_mono t')) (of_mono t) ts

let of_linexpr e = of_mpoly (Mpoly.of_linexpr e)

let rec to_mpoly = function
  | Const c -> Some (Mpoly.constant c)
  | TVar x -> Some (Mpoly.var x)
  | Add (a, b) -> (
      match (to_mpoly a, to_mpoly b) with
      | Some pa, Some pb -> Some (Mpoly.add pa pb)
      | _ -> None)
  | Mul (a, b) -> (
      match (to_mpoly a, to_mpoly b) with
      | Some pa, Some pb -> Some (Mpoly.mul pa pb)
      | _ -> None)
  | Sum _ -> None

let rec of_linformula (f : Linformula.t) : formula =
  match f with
  | Formula.True -> True
  | Formula.False -> False
  | Formula.Atom a ->
      let t = of_linexpr (Linconstr.expr a) in
      let op =
        match Linconstr.op a with
        | Linconstr.Le -> Cle
        | Linconstr.Lt -> Clt
        | Linconstr.Eq -> Ceq
      in
      Cmp (op, t, Const Q.zero)
  | Formula.Rel (r, vs) -> Rel (r, vs)
  | Formula.Not g -> Not (of_linformula g)
  | Formula.And (g, h) -> And (of_linformula g, of_linformula h)
  | Formula.Or (g, h) -> Or (of_linformula g, of_linformula h)
  | Formula.Exists (x, g) -> Exists (x, of_linformula g)
  | Formula.Forall (x, g) -> Forall (x, of_linformula g)
  | Formula.Exists_adom _ | Formula.Forall_adom _ ->
      invalid_arg "Ast.of_linformula: active-domain quantifier"

let rec of_semialg_formula (f : Semialg.formula) : formula =
  match f with
  | Formula.True -> True
  | Formula.False -> False
  | Formula.Atom a ->
      let t = of_mpoly a.Semialg.poly in
      let op =
        match a.Semialg.op with
        | Semialg.Le -> Cle
        | Semialg.Lt -> Clt
        | Semialg.Eq -> Ceq
      in
      Cmp (op, t, Const Q.zero)
  | Formula.Rel (r, vs) -> Rel (r, vs)
  | Formula.Not g -> Not (of_semialg_formula g)
  | Formula.And (g, h) -> And (of_semialg_formula g, of_semialg_formula h)
  | Formula.Or (g, h) -> Or (of_semialg_formula g, of_semialg_formula h)
  | Formula.Exists (x, g) -> Exists (x, of_semialg_formula g)
  | Formula.Forall (x, g) -> Forall (x, of_semialg_formula g)
  | Formula.Exists_adom _ | Formula.Forall_adom _ ->
      invalid_arg "Ast.of_semialg_formula: active-domain quantifier"

let rec term_free_vars = function
  | Const _ -> Var.Set.empty
  | TVar x -> Var.Set.singleton x
  | Add (a, b) | Mul (a, b) -> Var.Set.union (term_free_vars a) (term_free_vars b)
  | Sum s ->
      let bound_guard = Var.Set.of_list s.w in
      let guard_free = Var.Set.diff (free_vars s.guard) bound_guard in
      let gamma_free =
        Var.Set.diff (free_vars s.gamma)
          (Var.Set.add s.gamma_var bound_guard)
      in
      let end_free = Var.Set.remove s.end_y (free_vars s.end_body) in
      Var.Set.union guard_free (Var.Set.union gamma_free end_free)

and free_vars = function
  | True | False -> Var.Set.empty
  | Cmp (_, a, b) -> Var.Set.union (term_free_vars a) (term_free_vars b)
  | Rel (_, vs) -> Var.Set.of_list vs
  | Not f -> free_vars f
  | And (f, g) | Or (f, g) -> Var.Set.union (free_vars f) (free_vars g)
  | Exists (x, f) | Forall (x, f) -> Var.Set.remove x (free_vars f)

let rec subst_term env = function
  | Const _ as t -> t
  | TVar x as t -> (
      match Var.Map.find_opt x env with Some c -> Const c | None -> t)
  | Add (a, b) -> Add (subst_term env a, subst_term env b)
  | Mul (a, b) -> Mul (subst_term env a, subst_term env b)
  | Sum s ->
      let env_guard = List.fold_left (fun e x -> Var.Map.remove x e) env s.w in
      let env_gamma = Var.Map.remove s.gamma_var env_guard in
      let env_end = Var.Map.remove s.end_y env in
      Sum
        { s with
          guard = subst env_guard s.guard;
          gamma = subst env_gamma s.gamma;
          end_body = subst env_end s.end_body }

and subst env = function
  | (True | False) as f -> f
  | Cmp (op, a, b) -> Cmp (op, subst_term env a, subst_term env b)
  | Rel (r, vs) as f ->
      (* schema atoms hold variables only; a substituted variable must be
         re-expressed through an equality, handled by the evaluator *)
      if List.exists (fun x -> Var.Map.mem x env) vs then
        invalid_arg ("Ast.subst: constant into schema atom " ^ r)
      else f
  | Not f -> Not (subst env f)
  | And (f, g) -> And (subst env f, subst env g)
  | Or (f, g) -> Or (subst env f, subst env g)
  | Exists (x, f) -> Exists (x, subst (Var.Map.remove x env) f)
  | Forall (x, f) -> Forall (x, subst (Var.Map.remove x env) f)

let rec term_size = function
  | Const _ | TVar _ -> 1
  | Add (a, b) | Mul (a, b) -> 1 + term_size a + term_size b
  | Sum s -> 1 + size s.gamma + size s.guard + size s.end_body

and size = function
  | True | False | Rel _ -> 1
  | Cmp (_, a, b) -> 1 + term_size a + term_size b
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) -> 1 + size f

let rec term_sum_depth = function
  | Const _ | TVar _ -> 0
  | Add (a, b) | Mul (a, b) -> max (term_sum_depth a) (term_sum_depth b)
  | Sum s ->
      1
      + List.fold_left max 0
          [ formula_sum_depth s.gamma;
            formula_sum_depth s.guard;
            formula_sum_depth s.end_body ]

and formula_sum_depth = function
  | True | False | Rel _ -> 0
  | Cmp (_, a, b) -> max (term_sum_depth a) (term_sum_depth b)
  | Not f -> formula_sum_depth f
  | And (f, g) | Or (f, g) -> max (formula_sum_depth f) (formula_sum_depth g)
  | Exists (_, f) | Forall (_, f) -> formula_sum_depth f

let sum_depth = term_sum_depth
let has_sum f = formula_sum_depth f > 0

let relations f =
  let rec go_t acc = function
    | Const _ | TVar _ -> acc
    | Add (a, b) | Mul (a, b) -> go_t (go_t acc a) b
    | Sum s -> go (go (go acc s.gamma) s.guard) s.end_body
  and go acc = function
    | True | False -> acc
    | Cmp (_, a, b) -> go_t (go_t acc a) b
    | Rel (r, _) -> if List.mem r acc then acc else r :: acc
    | Not f -> go acc f
    | And (f, g) | Or (f, g) -> go (go acc f) g
    | Exists (_, f) | Forall (_, f) -> go acc f
  in
  List.rev (go [] f)

let rec pp_term fmt = function
  | Const c -> Q.pp fmt c
  | TVar x -> Var.pp fmt x
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp_term a pp_term b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp_term a pp_term b
  | Sum s ->
      Format.fprintf fmt "SUM_{(%a).%a | END[%a. %a]} %a.%a"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",") Var.pp)
        s.w pp s.guard Var.pp s.end_y pp s.end_body Var.pp s.gamma_var pp
        s.gamma

and pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Cmp (op, a, b) ->
      let s = match op with Ceq -> "=" | Clt -> "<" | Cle -> "<=" in
      Format.fprintf fmt "%a %s %a" pp_term a s pp_term b
  | Rel (r, vs) ->
      Format.fprintf fmt "%s(%a)" r
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Var.pp)
        vs
  | Not f -> Format.fprintf fmt "~(%a)" pp f
  | And (f, g) -> Format.fprintf fmt "(%a /\\ %a)" pp f pp g
  | Or (f, g) -> Format.fprintf fmt "(%a \\/ %a)" pp f pp g
  | Exists (x, f) -> Format.fprintf fmt "(E %a. %a)" Var.pp x pp f
  | Forall (x, f) -> Format.fprintf fmt "(A %a. %a)" Var.pp x pp f
