(** Parametric volumes: Lemma 5 of the paper made effective.

    For a semi-linear set [S] in R^n viewed as a family over its last
    coordinate [t], the function [t -> vol (section of S at t)] is piecewise
    polynomial of degree below [n] with finitely many rational breakpoints
    -- this is why [{(a, v) | v = VOL (phi (a, D))}] is semi-algebraic
    (Lemma 5), and why it generally leaves the semi-linear world (the
    pieces are genuinely nonlinear), the paper's non-closure phenomenon.

    The representation here is exact: breakpoints come from the vertices of
    the constraint arrangement and each polynomial piece is recovered by
    interpolation at rational sample points, as in {!Volume_exact}. *)

open Cqa_arith
open Cqa_linear
open Cqa_poly

type piece = {
  lo : Q.t;
  hi : Q.t;
  poly : Upoly.t;  (** the section volume on the open interval (lo, hi) *)
}

type t = piece list
(** Consecutive, non-overlapping pieces covering the parameter range of the
    bounded set. *)

val section_volume_function : ?domains:int -> Semilinear.t -> t
(** [vol (section_last S t)] as an explicit piecewise polynomial in [t].
    [?domains] (default 1) evaluates the interpolation sections on that
    many OCaml domains; the result is identical for every domain count.
    @raise Volume_exact.Unbounded on unbounded sets.
    @raise Invalid_argument in dimension < 2. *)

val refresh :
  ?domains:int ->
  ?old_set:Semilinear.t ->
  old:t ->
  dirty:(Q.t -> Q.t -> bool) ->
  Semilinear.t ->
  t * int * int
(** Rebuild the piece list for the {e updated} set [s], re-interpolating
    only pieces whose open interval [(a, b)] satisfies [dirty a b] (the
    delta slab test) or lies outside the coverage of [old].  When
    [old_set] (the set [old] was computed from) is supplied, the
    breakpoint list itself is maintained incrementally through
    {!Volume_exact.breakpoints_since}.  Every other
    piece reuses the old polynomial overlapping its interval.  Returns
    [(pieces, recomputed, reused)].  Because the section volumes outside
    the delta slab are unchanged and polynomials of degree below [n]
    agreeing on an interval are equal, the result is byte-identical to a
    cold {!section_volume_function} on [s].
    @raise Volume_exact.Unbounded on unbounded sets.
    @raise Invalid_argument in dimension < 2. *)

val eval : t -> Q.t -> Q.t
(** Evaluate the function (0 outside all pieces; breakpoints take the value
    of an adjacent piece -- a measure-zero convention). *)

val integrate : t -> Q.t
(** Total integral: equals {!Volume_exact.volume} of the set. *)

val degree : t -> int
(** Maximal piece degree; at most [dim - 1], and at least 2 forces the
    conclusion of Lemma 5: volume leaves the linear world. *)

val is_piecewise_linear : t -> bool

val to_semialgebraic_graph : t -> Semialg.t
(** The Lemma 5 statement itself: the graph [{ (t, v) | v = vol (section at
    t) }] (restricted to the pieces' closure) as an explicit semi-algebraic
    set in coordinates [(t, v)]. *)

val pp : Format.formatter -> t -> unit
