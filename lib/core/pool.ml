include Cqa_conc.Pool
