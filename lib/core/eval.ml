open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly
module T = Cqa_telemetry.Telemetry

(* Telemetry probes (zero-cost while disabled): runtime linearity probes,
   the quantified-subformula truth memo, section/QE entries, and
   formula-size stats per set-valued evaluation. *)
let tm_runtime_probes = T.counter "eval.runtime_probes"
let tm_holds_memo_hit = T.counter "eval.holds_memo.hit"
let tm_holds_memo_miss = T.counter "eval.holds_memo.miss"
let tm_sections = T.counter "eval.sections"
let tm_eval_set = T.counter "eval.eval_set.calls"
let tm_nodes_total = T.counter "eval.formula_nodes_total"
let tm_nodes_max = T.counter "eval.formula_nodes_max"

let rec formula_nodes (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> 1
  | Ast.Cmp (_, a, b) -> 1 + term_nodes a + term_nodes b
  | Ast.Not g -> 1 + formula_nodes g
  | Ast.And (g, h) | Ast.Or (g, h) -> 1 + formula_nodes g + formula_nodes h
  | Ast.Exists (_, g) | Ast.Forall (_, g) -> 1 + formula_nodes g

and term_nodes (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> 1
  | Ast.Add (a, b) | Ast.Mul (a, b) -> 1 + term_nodes a + term_nodes b
  | Ast.Sum s ->
      1 + formula_nodes s.Ast.guard + formula_nodes s.Ast.gamma
      + formula_nodes s.Ast.end_body

exception Unsupported of string

let unsupported msg = raise (Unsupported msg)

(* Memoization of quantified-subformula truth.  Keys pair a formula with the
   values of its free variables; formulas are identified *physically* (the
   same AST node re-tested at many bindings is the hot case, and structural
   hashing of large shared formula prefixes degenerates).  The table is
   reset whenever the database changes. *)
module Holds_key = struct
  type t = int * (Var.t * Q.t) list

  let equal (i1, b1) (i2, b2) =
    i1 = i2
    && List.equal (fun (v1, q1) (v2, q2) -> Var.equal v1 v2 && Q.equal q1 q2) b1 b2

  let hash (i, b) =
    List.fold_left
      (fun acc (v, q) -> (acc * 65599) lxor Hashtbl.hash v lxor Q.hash q)
      i b
end

module Holds_tbl = Cqa_conc.Striped_tbl.Make (Holds_key)

(* The memo is shared across domains (the Theorem-4 sampling estimators
   test membership in parallel) and lock-striped on the binding hash:
   samplers evaluating the same formula at different points land on
   different stripes instead of one global mutex.  The formula-id registry
   and database witness below stay behind [memo_lock] — they are touched
   once per [holds] call and once per evaluation, not per sample. *)
let holds_memo : bool Holds_tbl.t =
  Holds_tbl.create ~name:"eval.holds_memo" ~cap:100_000
    ~evict:Cqa_conc.Striped_tbl.Reset ()

let memo_lock = Mutex.create ()

(* Physical-identity registry of memoized formula nodes.  A hashtable over
   [( == )] replaces the former association list, whose linear scan sat on
   the hot path of every memoized [holds] call; ids come from a monotonic
   counter so a registry reset can never reissue an id that is still keying
   entries in [holds_memo]. *)
module Fid_key = struct
  type t = Ast.formula

  let equal = ( == )
  let hash = Hashtbl.hash
end

module Fid_tbl = Hashtbl.Make (Fid_key)

let formula_ids : int Fid_tbl.t = Fid_tbl.create 256
let formula_id_next = ref 0

let formula_id f =
  Mutex.lock memo_lock;
  let i =
    match Fid_tbl.find_opt formula_ids f with
    | Some i -> i
    | None ->
        (* runaway distinct formulas: shed the registry, keep ids fresh *)
        if Fid_tbl.length formula_ids > 4096 then Fid_tbl.reset formula_ids;
        let i = !formula_id_next in
        incr formula_id_next;
        Fid_tbl.add formula_ids f i;
        i
  in
  Mutex.unlock memo_lock;
  i

let memo_db : Obj.t ref = ref (Obj.repr ())

let refresh_memo db =
  let r = Obj.repr db in
  Mutex.lock memo_lock;
  if not (!memo_db == r) then begin
    Holds_tbl.reset holds_memo;
    Fid_tbl.reset formula_ids;
    formula_id_next := 0;
    memo_db := r
  end;
  Mutex.unlock memo_lock

let holds_memo_find key = Holds_tbl.find_opt holds_memo key
let holds_memo_add key b = Holds_tbl.replace holds_memo key b

(* ------------------------------------------------------------------ *)
(* Term evaluation and reduction of terms to polynomials               *)
(* ------------------------------------------------------------------ *)

(* Reduce a term under an environment to a multivariate polynomial in the
   remaining variables, evaluating closed summation sub-terms to
   constants. *)
let rec term_to_poly db env t =
  match t with
  | Ast.Const c -> Mpoly.constant c
  | Ast.TVar x -> (
      match Var.Map.find_opt x env with
      | Some c -> Mpoly.constant c
      | None -> Mpoly.var x)
  | Ast.Add (a, b) -> Mpoly.add (term_to_poly db env a) (term_to_poly db env b)
  | Ast.Mul (a, b) -> Mpoly.mul (term_to_poly db env a) (term_to_poly db env b)
  | Ast.Sum _ ->
      let frees = Ast.term_free_vars t in
      if Var.Set.for_all (fun x -> Var.Map.mem x env) frees then
        Mpoly.constant (eval_term db env t)
      else
        unsupported
          "summation term with parameters not bound by the environment"

and eval_term db env t =
  match t with
  | Ast.Const c -> c
  | Ast.TVar x -> (
      match Var.Map.find_opt x env with
      | Some c -> c
      | None -> invalid_arg ("Eval.eval_term: unbound variable " ^ Var.name x))
  | Ast.Add (a, b) -> Q.add (eval_term db env a) (eval_term db env b)
  | Ast.Mul (a, b) -> Q.mul (eval_term db env a) (eval_term db env b)
  | Ast.Sum s ->
      let tuples = range_restricted_tuples db env s in
      List.fold_left
        (fun acc tup ->
          match gamma_value db env s tup with
          | Some x -> Q.add acc x
          | None -> acc)
        Q.zero tuples

(* ------------------------------------------------------------------ *)
(* Reduction to FO + LIN                                               *)
(* ------------------------------------------------------------------ *)

(* Inline a semi-linear relation applied to argument variables/constants as
   a quantifier-free linear formula. *)
and inline_relation db env r args =
  match Db.as_semilinear db r with
  | None -> unsupported ("semi-algebraic relation " ^ r ^ " in linear reduction")
  | Some s ->
      let coords = Semilinear.vars s in
      if Array.length coords <> List.length args then
        invalid_arg ("Eval: arity mismatch for " ^ r);
      let subst_atom atom =
        let e = Linconstr.expr atom in
        let e' =
          Array.to_list coords
          |> List.mapi (fun i cv -> (i, cv))
          |> List.fold_left
               (fun acc (i, cv) ->
                 let arg = List.nth args i in
                 let replacement =
                   match Var.Map.find_opt arg env with
                   | Some c -> Linexpr.const c
                   | None -> Linexpr.var arg
                 in
                 Linexpr.subst acc cv replacement)
               e
        in
        Linconstr.make e' (Linconstr.op atom)
      in
      Linformula.of_dnf
        (List.map (List.map subst_atom) (Semilinear.dnf s))

and reduce_linear db env (f : Ast.formula) : Linformula.t =
  match f with
  | Ast.True -> Formula.True
  | Ast.False -> Formula.False
  | Ast.Cmp (op, a, b) -> (
      let p = Mpoly.sub (term_to_poly db env a) (term_to_poly db env b) in
      match Mpoly.to_linexpr p with
      | None -> unsupported "nonlinear atom in linear reduction"
      | Some e ->
          let op' =
            match op with
            | Ast.Ceq -> Linconstr.Eq
            | Ast.Clt -> Linconstr.Lt
            | Ast.Cle -> Linconstr.Le
          in
          Formula.Atom (Linconstr.make e op'))
  | Ast.Rel (r, args) ->
      (* coordinate variables of the stored relation must not leak: the
         inlined formula is over the argument variables only *)
      inline_relation db env r args
  | Ast.Not g -> Formula.Not (reduce_linear db env g)
  | Ast.And (g, h) -> Formula.And (reduce_linear db env g, reduce_linear db env h)
  | Ast.Or (g, h) -> Formula.Or (reduce_linear db env g, reduce_linear db env h)
  | Ast.Exists (x, g) ->
      Formula.Exists (x, reduce_linear db (Var.Map.remove x env) g)
  | Ast.Forall (x, g) ->
      Formula.Forall (x, reduce_linear db (Var.Map.remove x env) g)

(* ------------------------------------------------------------------ *)
(* Pointwise truth                                                     *)
(* ------------------------------------------------------------------ *)

and holds db env (f : Ast.formula) : bool =
  refresh_memo db;
  match f with
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Cmp (op, a, b) -> (
      let va = eval_term db env a and vb = eval_term db env b in
      match op with
      | Ast.Ceq -> Q.equal va vb
      | Ast.Clt -> Q.lt va vb
      | Ast.Cle -> Q.leq va vb)
  | Ast.Rel (r, args) ->
      let tup =
        Array.of_list
          (List.map
             (fun x ->
               match Var.Map.find_opt x env with
               | Some c -> c
               | None -> invalid_arg ("Eval.holds: unbound variable " ^ Var.name x))
             args)
      in
      Db.mem_tuple db r tup
  | Ast.Not g -> not (holds db env g)
  | Ast.And (g, h) -> holds db env g && holds db env h
  | Ast.Or (g, h) -> holds db env g || holds db env h
  | Ast.Exists _ | Ast.Forall _ ->
      (* quantifiers require the symbolic path; results are memoized per
         (formula, relevant environment) because guards like the polygon
         triangulation formula re-test the same quantified subformulas at
         the same bindings many times *)
      let frees = Ast.free_vars f in
      let key =
        ( formula_id f,
          Var.Set.fold
            (fun v acc ->
              match Var.Map.find_opt v env with
              | Some c -> (v, c) :: acc
              | None -> acc)
            frees [] )
      in
      (match holds_memo_find key with
      | Some b ->
          T.incr tm_holds_memo_hit;
          b
      | None ->
          T.incr tm_holds_memo_miss;
          let b = Fourier_motzkin.sat (reduce_linear db env f) in
          holds_memo_add key b;
          b)

(* ------------------------------------------------------------------ *)
(* Sections and END                                                    *)
(* ------------------------------------------------------------------ *)

and section db env y (f : Ast.formula) : Cell1.t =
  T.incr tm_sections;
  let env = Var.Map.remove y env in
  let lin = reduce_linear db env f in
  let d = Fourier_motzkin.qe lin in
  (* the result must involve only y *)
  let used = Linformula.dnf_vars d in
  if not (Var.Set.subset used (Var.Set.singleton y)) then
    invalid_arg "Eval.section: free variables beyond the section variable";
  Cell1.of_dnf y d

and end_points db env y f = Cell1.endpoints (section db env y f)

(* ------------------------------------------------------------------ *)
(* Range-restricted summation                                          *)
(* ------------------------------------------------------------------ *)

and range_restricted_tuples db env (s : Ast.sum_spec) =
  let endpoints = end_points db env s.Ast.end_y s.Ast.end_body in
  if s.Ast.w = [] then invalid_arg "Eval: empty summation tuple";
  (* Split the guard into conjuncts and check each one as soon as all its
     summation variables are bound: turns the naive |END|^k enumeration
     into a pruned search (essential for guards like the paper's polygon
     triangulation formula). *)
  let rec conjuncts = function
    | Ast.And (f, g) -> conjuncts f @ conjuncts g
    | f -> [ f ]
  in
  let wset = Var.Set.of_list s.Ast.w in
  let tagged =
    List.map
      (fun c -> (c, Var.Set.inter (Ast.free_vars c) wset))
      (conjuncts s.Ast.guard)
  in
  let static = List.filter (fun (_, ws) -> Var.Set.is_empty ws) tagged in
  if not (List.for_all (fun (c, _) -> holds db env c) static) then []
  else begin
    let rec search bound env' = function
      | [] -> [ Array.of_list (List.map (fun x -> Var.Map.find x env') s.Ast.w) ]
      | x :: rest ->
          List.concat_map
            (fun c ->
              let env'' = Var.Map.add x c env' in
              let bound' = Var.Set.add x bound in
              let ok =
                List.for_all
                  (fun (conjunct, ws) ->
                    Var.Set.is_empty ws
                    || (not (Var.Set.subset ws bound'))
                    || Var.Set.subset ws bound
                    || holds db env'' conjunct)
                  tagged
              in
              if ok then search bound' env'' rest else [])
            endpoints
    in
    search Var.Set.empty env s.Ast.w
  end

and gamma_value db env (s : Ast.sum_spec) tup =
  let env' =
    List.fold_left2
      (fun e x c -> Var.Map.add x c e)
      env s.Ast.w (Array.to_list tup)
  in
  let cell = section db env' s.Ast.gamma_var s.Ast.gamma in
  match Cell1.components cell with
  | [] -> None
  | [ c ] -> (
      match (c.Cell1.lo, c.Cell1.hi) with
      | Cell1.Incl a, Cell1.Incl b when Q.equal a b -> Some a
      | _ ->
          invalid_arg
            "Eval: gamma is not deterministic (non-singleton output)")
  | _ -> invalid_arg "Eval: gamma is not deterministic (multiple outputs)"

(* ------------------------------------------------------------------ *)
(* Set-valued evaluation (Lemma 4 closure)                             *)
(* ------------------------------------------------------------------ *)

let eval_set db coords (f : Ast.formula) =
  if T.enabled () then begin
    T.incr tm_eval_set;
    let n = formula_nodes f in
    T.add tm_nodes_total n;
    T.set_max tm_nodes_max n
  end;
  let lin = reduce_linear db Var.Map.empty f in
  Semilinear.of_formula coords lin

(* The runtime linearity probe: discover whether a query is linear-reducible
   by attempting the reduction and catching [Unsupported].  The static
   analyzer's fragment pass makes this discovery ahead of time
   (Dispatch.Exact_semilinear); the counter lets callers and tests observe
   which path ran. *)
let runtime_probe_count = ref 0
let runtime_probes () = !runtime_probe_count

let try_eval_set db coords (f : Ast.formula) =
  incr runtime_probe_count;
  T.incr tm_runtime_probes;
  match eval_set db coords f with
  | s -> Some s
  | exception Unsupported _ -> None

(* ------------------------------------------------------------------ *)
(* Semi-algebraic sections                                             *)
(* ------------------------------------------------------------------ *)

let rec to_semialg_formula db env (f : Ast.formula) : Semialg.formula =
  match f with
  | Ast.True -> Formula.True
  | Ast.False -> Formula.False
  | Ast.Cmp (op, a, b) ->
      let p = Mpoly.sub (term_to_poly db env a) (term_to_poly db env b) in
      let p = Mpoly.eval_partial p env in
      let op' =
        match op with Ast.Ceq -> Semialg.Eq | Ast.Clt -> Semialg.Lt | Ast.Cle -> Semialg.Le
      in
      Formula.Atom { Semialg.poly = p; op = op' }
  | Ast.Rel (r, args) ->
      let s = Db.as_semialg db r in
      let coords = Semialg.vars s in
      if Array.length coords <> List.length args then
        invalid_arg ("Eval: arity mismatch for " ^ r);
      let subst_poly p =
        Array.to_list coords
        |> List.mapi (fun i cv -> (i, cv))
        |> List.fold_left
             (fun acc (i, cv) ->
               let arg = List.nth args i in
               let repl =
                 match Var.Map.find_opt arg env with
                 | Some c -> Mpoly.constant c
                 | None -> Mpoly.var arg
               in
               Mpoly.subst acc cv repl)
             p
      in
      Formula.disj
        (List.map
           (fun conj ->
             Formula.conj
               (List.map
                  (fun (a : Semialg.atom) ->
                    Formula.Atom { a with Semialg.poly = subst_poly a.Semialg.poly })
                  conj))
           (Semialg.dnf s))
  | Ast.Not g -> Formula.Not (to_semialg_formula db env g)
  | Ast.And (g, h) ->
      Formula.And (to_semialg_formula db env g, to_semialg_formula db env h)
  | Ast.Or (g, h) ->
      Formula.Or (to_semialg_formula db env g, to_semialg_formula db env h)
  | Ast.Exists _ | Ast.Forall _ ->
      unsupported "quantifier in semi-algebraic section (no full real QE)"

let section_alg db env y f =
  let env = Var.Map.remove y env in
  let saf = to_semialg_formula db env f in
  let sa = Semialg.of_qf_formula [| y |] saf in
  Semialg.last_axis_section sa [||]
