(** The persistent work-stealing domain pool, re-exported from the
    bottom-layer [Cqa_conc] library (where [Cqa_vc] and [Cqa_linear] can
    also reach it) under the name the rest of the engine uses.  See
    {!Cqa_conc.Pool} for the full contract. *)

include module type of struct
  include Cqa_conc.Pool
end
