open Cqa_arith
open Cqa_logic
module T = Cqa_telemetry.Telemetry

(* Telemetry: cache traffic and compile cost.  All plan.* counters depend
   on cache state (what was compiled before, what has been evicted) and on
   the wall clock, so they are exempt from the cross-domain determinism
   contract, like the other memo-cache splits. *)
let tm_cache_hit = T.counter "plan.cache.hit"
let tm_cache_miss = T.counter "plan.cache.miss"
let tm_compile_ns = T.counter "plan.compile_ns"
let tm_compile = T.timer "plan.compile"

(* ------------------------------------------------------------------ *)
(* Alpha-normalization                                                 *)
(* ------------------------------------------------------------------ *)

(* Canonical binder names contain '#', which the parser rejects in
   identifiers (the [Var.fresh] convention), so they can never collide
   with a query's own variables.  Binders are renumbered in traversal
   order; free variables are left untouched.  Two alpha-equivalent
   spellings therefore normalize to structurally identical trees, and the
   renaming is semantics-preserving. *)
let canon_binder i = Var.of_string (Printf.sprintf "plan#%d" i)

let alpha_normalize f =
  let n = ref 0 in
  let fresh () =
    let v = canon_binder !n in
    incr n;
    v
  in
  let ren env x =
    match Var.Map.find_opt x env with Some y -> y | None -> x
  in
  let rec gof env (f : Ast.formula) : Ast.formula =
    match f with
    | Ast.True | Ast.False -> f
    | Ast.Cmp (op, a, b) -> Ast.Cmp (op, got env a, got env b)
    | Ast.Rel (r, args) -> Ast.Rel (r, List.map (ren env) args)
    | Ast.Not g -> Ast.Not (gof env g)
    | Ast.And (g, h) -> Ast.And (gof env g, gof env h)
    | Ast.Or (g, h) -> Ast.Or (gof env g, gof env h)
    | Ast.Exists (x, g) ->
        let x' = fresh () in
        Ast.Exists (x', gof (Var.Map.add x x' env) g)
    | Ast.Forall (x, g) ->
        let x' = fresh () in
        Ast.Forall (x', gof (Var.Map.add x x' env) g)
  and got env (t : Ast.term) : Ast.term =
    match t with
    | Ast.Const _ -> t
    | Ast.TVar x -> Ast.TVar (ren env x)
    | Ast.Add (a, b) -> Ast.Add (got env a, got env b)
    | Ast.Mul (a, b) -> Ast.Mul (got env a, got env b)
    | Ast.Sum s ->
        let w' = List.map (fun _ -> fresh ()) s.Ast.w in
        let envw =
          List.fold_left2
            (fun e x x' -> Var.Map.add x x' e)
            env s.Ast.w w'
        in
        let guard = gof envw s.Ast.guard in
        let gv' = fresh () in
        let gamma = gof (Var.Map.add s.Ast.gamma_var gv' envw) s.Ast.gamma in
        let ey' = fresh () in
        let end_body = gof (Var.Map.add s.Ast.end_y ey' envw) s.Ast.end_body in
        Ast.Sum
          { Ast.gamma_var = gv'; gamma; w = w'; guard; end_y = ey'; end_body }
  in
  gof Var.Map.empty f

(* ------------------------------------------------------------------ *)
(* Structural hash and equality over the AST                           *)
(* ------------------------------------------------------------------ *)

(* Hand-written: [Hashtbl.hash] is depth-limited (deep formulas would all
   collide or, worse for equality, the polymorphic [=] would descend into
   abstract [Q.t] representations).  Same multiplier idiom as the Linexpr
   interning hash. *)
let hc h x = (h * 131) + x

let var_h x = Hashtbl.hash (Var.name x)

let rec term_hash h (t : Ast.term) =
  match t with
  | Ast.Const q -> hc (hc h 1) (Q.hash q)
  | Ast.TVar x -> hc (hc h 2) (var_h x)
  | Ast.Add (a, b) -> term_hash (term_hash (hc h 3) a) b
  | Ast.Mul (a, b) -> term_hash (term_hash (hc h 4) a) b
  | Ast.Sum s ->
      let h = hc (hc h 5) (var_h s.Ast.gamma_var) in
      let h = formula_hash h s.Ast.gamma in
      let h = List.fold_left (fun h x -> hc h (var_h x)) h s.Ast.w in
      let h = formula_hash h s.Ast.guard in
      let h = hc h (var_h s.Ast.end_y) in
      formula_hash h s.Ast.end_body

and formula_hash h (f : Ast.formula) =
  match f with
  | Ast.True -> hc h 6
  | Ast.False -> hc h 7
  | Ast.Cmp (op, a, b) ->
      let oc = match op with Ast.Ceq -> 8 | Ast.Clt -> 9 | Ast.Cle -> 10 in
      term_hash (term_hash (hc h oc) a) b
  | Ast.Rel (r, args) ->
      let h = hc (hc h 11) (Hashtbl.hash r) in
      List.fold_left (fun h x -> hc h (var_h x)) h args
  | Ast.Not g -> formula_hash (hc h 12) g
  | Ast.And (g, k) -> formula_hash (formula_hash (hc h 13) g) k
  | Ast.Or (g, k) -> formula_hash (formula_hash (hc h 14) g) k
  | Ast.Exists (x, g) -> formula_hash (hc (hc h 15) (var_h x)) g
  | Ast.Forall (x, g) -> formula_hash (hc (hc h 16) (var_h x)) g

let hash_formula f = formula_hash 0 f land max_int

let rec term_equal (a : Ast.term) (b : Ast.term) =
  match (a, b) with
  | Ast.Const p, Ast.Const q -> Q.equal p q
  | Ast.TVar x, Ast.TVar y -> Var.equal x y
  | Ast.Add (a1, a2), Ast.Add (b1, b2) | Ast.Mul (a1, a2), Ast.Mul (b1, b2) ->
      term_equal a1 b1 && term_equal a2 b2
  | Ast.Sum s, Ast.Sum t ->
      Var.equal s.Ast.gamma_var t.Ast.gamma_var
      && Var.equal s.Ast.end_y t.Ast.end_y
      && List.compare_lengths s.Ast.w t.Ast.w = 0
      && List.for_all2 Var.equal s.Ast.w t.Ast.w
      && formula_equal s.Ast.gamma t.Ast.gamma
      && formula_equal s.Ast.guard t.Ast.guard
      && formula_equal s.Ast.end_body t.Ast.end_body
  | _ -> false

and formula_equal (f : Ast.formula) (g : Ast.formula) =
  match (f, g) with
  | Ast.True, Ast.True | Ast.False, Ast.False -> true
  | Ast.Cmp (o1, a1, b1), Ast.Cmp (o2, a2, b2) ->
      o1 = o2 && term_equal a1 a2 && term_equal b1 b2
  | Ast.Rel (r1, v1), Ast.Rel (r2, v2) ->
      String.equal r1 r2
      && List.compare_lengths v1 v2 = 0
      && List.for_all2 Var.equal v1 v2
  | Ast.Not a, Ast.Not b -> formula_equal a b
  | Ast.And (a1, a2), Ast.And (b1, b2) | Ast.Or (a1, a2), Ast.Or (b1, b2) ->
      formula_equal a1 b1 && formula_equal a2 b2
  | Ast.Exists (x, a), Ast.Exists (y, b) | Ast.Forall (x, a), Ast.Forall (y, b)
    ->
      Var.equal x y && formula_equal a b
  | _ -> false

let equal_formula = formula_equal

(* ------------------------------------------------------------------ *)
(* The plan record                                                     *)
(* ------------------------------------------------------------------ *)

type exec_state = ..

type t = {
  id : int;
  source : Ast.formula;
  normal : Ast.formula;
  coords : Var.t array;
  params : Var.t array;
  shape_hash : int;
  profile : Dispatch.cost_profile;
  projected : float;
  hint : Dispatch.hint option;
  budget : float;
  decision : Dispatch.decision;
  compile_ns : float;
  mutable cache_hits : int;  (* under [lock] *)
  lock : Mutex.t;
  mutable states : (Obj.t * exec_state) list;  (* MRU, under [lock] *)
}

let id p = p.id
let source p = p.source
let normal p = p.normal
let coords p = p.coords
let params p = p.params
let shape_hash p = p.shape_hash
let profile p = p.profile
let projected p = p.projected
let hint p = p.hint
let budget p = p.budget
let decision p = p.decision
let compile_ns p = p.compile_ns

let hit_count p =
  Mutex.lock p.lock;
  let n = p.cache_hits in
  Mutex.unlock p.lock;
  n

let equal_shape a b =
  a.shape_hash = b.shape_hash && equal_formula a.normal b.normal

(* ------------------------------------------------------------------ *)
(* Shape keys and the striped plan cache                               *)
(* ------------------------------------------------------------------ *)

module Shape = struct
  type nonrec t = {
    normal : Ast.formula;
    coords : Var.t array;
    params : Var.t array;
    h : int;
  }

  let vars_eq a b =
    Array.length a = Array.length b && Array.for_all2 Var.equal a b

  let equal a b =
    a.h = b.h && vars_eq a.coords b.coords && vars_eq a.params b.params
    && formula_equal a.normal b.normal

  let hash a = a.h
end

module Cache = Cqa_conc.Striped_tbl.Make (Shape)

let default_cache_cap =
  match Sys.getenv_opt "CQA_PLAN_CACHE_CAP" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 2 -> n
      | _ -> 512)
  | None -> 512

(* Fewer stripes than the memo tables: plans are few and large, and a
   small capacity split 16 ways would leave most stripes unable to cache
   at all. *)
let cache : t Cache.t =
  Cache.create ~shards:8 ~name:"plan.cache" ~cap:default_cache_cap
    ~evict:Cqa_conc.Striped_tbl.Half ()

let next_id = Atomic.make 0

(* [normalized] is the semantically-equal spelling (the analysis layer's
   rewrite normal form) the key is actually hashed on; the coordinate and
   parameter contract is validated against [f] as written, because
   rewriting may shrink the free-variable set (a dead branch can carry the
   only occurrence of a coordinate) and the plan's geometry must stay that
   of the source query. *)
let shape_key ?(params = [||]) ?coords ?normalized f =
  let normal = alpha_normalize (Option.value normalized ~default:f) in
  let frees = Ast.free_vars f in
  Array.iter
    (fun p ->
      if not (Var.Set.mem p frees) then
        invalid_arg
          (Printf.sprintf "Plan: parameter %s is not a free variable"
             (Var.name p)))
    params;
  let coords =
    match coords with
    | Some c -> c
    | None ->
        Var.Set.elements frees
        |> List.filter (fun v -> not (Array.exists (Var.equal v) params))
        |> Array.of_list
  in
  Array.iter
    (fun c ->
      if Array.exists (Var.equal c) params then
        invalid_arg
          (Printf.sprintf "Plan: %s is both a coordinate and a parameter"
             (Var.name c)))
    coords;
  let covered =
    Array.fold_left
      (fun s v -> Var.Set.add v s)
      (Array.fold_left (fun s v -> Var.Set.add v s) Var.Set.empty coords)
      params
  in
  if not (Var.Set.subset frees covered) then
    invalid_arg "Plan: coordinates do not cover the query's free variables";
  let h =
    let h = formula_hash 0 normal in
    let h = Array.fold_left (fun h v -> hc h (var_h v)) (hc h 17) coords in
    let h = Array.fold_left (fun h v -> hc h (var_h v)) (hc h 18) params in
    h land max_int
  in
  { Shape.normal; coords; params; h }

let build ~source ~hint ~budget (key : Shape.t) ~t0 =
  let profile = Dispatch.profile_formula key.Shape.normal in
  let projected = Dispatch.projected_qe_atoms profile in
  let decision = Dispatch.decide ~budget profile in
  let compile_ns = T.now_ns () -. t0 in
  T.record_ns tm_compile compile_ns;
  if T.enabled () then T.add tm_compile_ns (int_of_float compile_ns);
  {
    id = Atomic.fetch_and_add next_id 1;
    source;
    normal = key.Shape.normal;
    coords = key.Shape.coords;
    params = key.Shape.params;
    shape_hash = key.Shape.h;
    profile;
    projected;
    hint;
    budget;
    decision;
    compile_ns;
    cache_hits = 0;
    lock = Mutex.create ();
    states = [];
  }

let compile ?normalize ?hint ?(budget = Dispatch.default_budget) ?params
    ?coords f =
  let t0 = T.now_ns () in
  let normalized = Option.map (fun n -> n f) normalize in
  build ~source:f ~hint ~budget (shape_key ?params ?coords ?normalized f) ~t0

(* [normalize] runs on every lookup, hit or miss — the cache is keyed on
   the rewritten normal form, so the rewrite has to happen before the
   probe (unlike [hint_of], which only pays on a miss).  The closure must
   therefore be cheap relative to compilation; the analysis layer's
   rewriter is a static fixpoint pass with no QE in it. *)
let cached ?normalize ?(hint_of = fun _ -> None)
    ?(budget = Dispatch.default_budget) ?params ?coords f =
  let t0 = T.now_ns () in
  let normalized = Option.map (fun n -> n f) normalize in
  let key = shape_key ?params ?coords ?normalized f in
  match Cache.find_opt cache key with
  | Some p ->
      T.incr tm_cache_hit;
      Mutex.lock p.lock;
      p.cache_hits <- p.cache_hits + 1;
      Mutex.unlock p.lock;
      p
  | None ->
      T.incr tm_cache_miss;
      (* the analyzer sees the rewritten spelling: its fragment verdict —
         and hence the engine hint — should reflect what will actually be
         executed (a nonlinear dead branch may just have been cut away) *)
      let hint = hint_of (Option.value normalized ~default:f) in
      let p = build ~source:f ~hint ~budget key ~t0 in
      Cache.replace cache key p;
      p

(* Bumped on every [clear_cache] so outer cache levels (the planner's
   whole-plan memo) can invalidate without a dependency cycle: an entry
   stamped with an older generation is dead, whatever table it sits in. *)
let generation = Atomic.make 0

let clear_cache () =
  Atomic.incr generation;
  Cache.reset cache

let cache_generation () = Atomic.get generation
let cache_length () = Cache.length cache
let cache_capacity () = Cache.capacity cache
let set_cache_capacity n = Cache.set_capacity cache n
let cache_stats () = Cache.stats cache

let pp_cache_stats fmt () =
  let stats = cache_stats () in
  Format.fprintf fmt "@[<v>plan cache: %d/%d entries, %d stripes@,"
    (cache_length ()) (cache_capacity ()) (Array.length stats);
  Format.fprintf fmt "%-8s %6s %8s %8s %8s %10s@," "stripe" "size" "hits"
    "misses" "evicted" "contention";
  Array.iteri
    (fun i (s : Cqa_conc.Striped_tbl.stat) ->
      if s.size > 0 || s.hits > 0 || s.misses > 0 || s.evicted > 0 then
        Format.fprintf fmt "%-8d %6d %8d %8d %8d %10d@," i s.size s.hits
          s.misses s.evicted s.contention)
    stats;
  let tot =
    Array.fold_left Cqa_conc.Striped_tbl.add_stat
      Cqa_conc.Striped_tbl.zero_stat stats
  in
  Format.fprintf fmt "%-8s %6d %8d %8d %8d %10d@]" "total" tot.size tot.hits
    tot.misses tot.evicted tot.contention

(* ------------------------------------------------------------------ *)
(* Per-database execution state (owned by Exec)                        *)
(* ------------------------------------------------------------------ *)

(* Keyed on the database's physical identity, like Eval's memo refresh:
   value equality of databases is expensive and pointless here, while the
   common case — the same database value re-executed many times — is
   physical.  A small MRU cap bounds the liveness we impose on old
   databases. *)
let states_cap = 4

let lookup_state p db =
  let k = Obj.repr db in
  Mutex.lock p.lock;
  let r = List.assq_opt k p.states in
  (match r with
  | Some st when not (match p.states with (k0, _) :: _ -> k0 == k | [] -> false)
    ->
      (* move to front *)
      p.states <-
        (k, st) :: List.filter (fun (k', _) -> not (k' == k)) p.states
  | _ -> ());
  Mutex.unlock p.lock;
  r

let store_state p db st =
  let k = Obj.repr db in
  Mutex.lock p.lock;
  let others = List.filter (fun (k', _) -> not (k' == k)) p.states in
  let others = List.filteri (fun i _ -> i < states_cap - 1) others in
  p.states <- (k, st) :: others;
  Mutex.unlock p.lock

let reset_states p =
  Mutex.lock p.lock;
  p.states <- [];
  Mutex.unlock p.lock

let with_lock p f =
  Mutex.lock p.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock p.lock) f

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_vars fmt vs =
  if Array.length vs = 0 then Format.pp_print_string fmt "(none)"
  else
    Array.iteri
      (fun i v ->
        if i > 0 then Format.pp_print_char fmt ' ';
        Var.pp fmt v)
      vs

let pp fmt p =
  Format.fprintf fmt
    "@[<v>plan #%d (shape %08x)@,coords: %a@,params: %a@,hint: %s@,\
     atoms=%d quantifiers=%d sums=%d width=%d@,projected QE atoms: %.3g@,\
     decision: %a@,compile: %.0f ns@]"
    p.id
    (p.shape_hash land 0xffffffff)
    pp_vars p.coords pp_vars p.params
    (match p.hint with
    | Some h -> Dispatch.to_string h
    | None -> "(runtime probe)")
    p.profile.Dispatch.atoms p.profile.Dispatch.quantifiers
    p.profile.Dispatch.sum_count p.profile.Dispatch.tuple_width p.projected
    Dispatch.pp_decision p.decision p.compile_ns
