(** The witness (choice) operator W of Abiteboul-Vianu, used by the paper's
    FO + POLY + SUM + W extension (Theorem 4): select one tuple from a query
    output.  Finite outputs are sampled uniformly at random; infinite
    semi-linear outputs yield a deterministic representative point. *)

open Cqa_arith
open Cqa_logic
open Cqa_vc

val witness :
  prng:Prng.t -> Db.t -> Var.t array -> Ast.formula -> Q.t array option
(** [None] when the output is empty. *)

val random_unit_point : prng:Prng.t -> dim:int -> Q.t array
(** The W-call pattern of Theorem 4: a uniform random rational point of the
    unit cube. *)
