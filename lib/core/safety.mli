(** Static well-formedness checks for FO + POLY + SUM queries: the side
    conditions that make the language safe (Section 5).

    A summation term is well formed when its tuple is nonempty, its
    deterministic formula really is deterministic (checked with
    {!Deterministic}, or flagged for runtime enforcement when undecided),
    and every schema atom matches the database schema.  [Lemma 4]'s closure
    then guarantees the range-restricted set is finite, so evaluation
    cannot diverge. *)



type issue =
  | Unknown_relation of string
  | Arity_mismatch of { relation : string; expected : int; actual : int }
  | Empty_sum_tuple
  | Nondeterministic_gamma of Ast.formula
  | Undecided_gamma of Ast.formula
      (** Not provably deterministic; {!Eval} enforces at runtime. *)

val pp_issue : Format.formatter -> issue -> unit

val check_formula : Db.t -> Ast.formula -> issue list
val check_term : Db.t -> Ast.term -> issue list
(** Both traversals are total: they descend into [Sum] terms nested under
    [Cmp] atoms anywhere (including inside a [sum_spec]'s [guard], [gamma]
    and [end_body]), never raise, and report schema issues inside a gamma
    even when they prevent the determinism decision from running.

    These are the dependency-light well-formedness kernel; the full static
    analyzer ([Cqa_analysis.Analyzer] in [lib/analysis]) runs these checks
    as its safety pass and layers scope, fragment, range-restriction and
    cost diagnostics on top. *)

val is_safe : Db.t -> Ast.term -> bool
(** No issues other than [Undecided_gamma]. *)

val is_safe_formula : Db.t -> Ast.formula -> bool
(** [is_safe] for formulas: no issues other than [Undecided_gamma] anywhere,
    including inside summation terms under comparison atoms. *)
