(** Static well-formedness checks for FO + POLY + SUM queries: the side
    conditions that make the language safe (Section 5).

    A summation term is well formed when its tuple is nonempty, its
    deterministic formula really is deterministic (checked with
    {!Deterministic}, or flagged for runtime enforcement when undecided),
    and every schema atom matches the database schema.  [Lemma 4]'s closure
    then guarantees the range-restricted set is finite, so evaluation
    cannot diverge. *)



type issue =
  | Unknown_relation of string
  | Arity_mismatch of { relation : string; expected : int; actual : int }
  | Empty_sum_tuple
  | Nondeterministic_gamma of Ast.formula
  | Undecided_gamma of Ast.formula
      (** Not provably deterministic; {!Eval} enforces at runtime. *)

val pp_issue : Format.formatter -> issue -> unit

val check_formula : Db.t -> Ast.formula -> issue list
val check_term : Db.t -> Ast.term -> issue list

val is_safe : Db.t -> Ast.term -> bool
(** No issues other than [Undecided_gamma]. *)
