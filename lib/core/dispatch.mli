(** Static dispatch hints: the contract between the static analyzer
    ({!Cqa_analysis.Fragment} in [lib/analysis]) and the evaluation engines.

    The analyzer classifies a query's fragment once, before any evaluation;
    the resulting hint tells {!Eval} and {!Volume_exact} which engine is
    guaranteed to apply, so provably semi-linear queries go straight to the
    Theorem 3 exact engine instead of discovering linear-reducibility by a
    runtime probe (attempting the reduction and catching
    [Eval.Unsupported]). *)

type hint =
  | Exact_semilinear
      (** Provably linear-reducible after polynomial normalization: every
          atom is FO + LIN modulo [Mpoly] normalization, every summation
          sub-term is closed, and (when classified against a database) no
          relation is semi-algebraic.  [Eval.eval_set] cannot raise
          [Unsupported] and the Theorem 3 engine applies. *)
  | Pointwise_poly
      (** Genuinely polynomial atoms (or a semi-algebraic relation):
          pointwise truth and the Theorem 4 sampling estimators apply, the
          symbolic linear path does not. *)
  | Sum_eval
      (** Open summation terms: only the summation-aware term evaluator
          applies. *)

val to_string : hint -> string
(** ["exact-semilinear"], ["pointwise-poly"], ["sum-eval"]. *)

val pp : Format.formatter -> hint -> unit

(** {1 Cost profile and budget-guarded engine decision}

    The second half of the contract: a syntactic cost profile of the query
    and the worst-case projections derived from it (the Section 3 model of
    quantifier-elimination blowup), used by {!Volume_exact.volume_guarded}
    to degrade from the Theorem 3 exact engine to the Theorem 4 sampling
    estimator when exact evaluation is about to explode.  The analysis
    layer's cost pass ([Cqa_analysis.Cost]) reports the same numbers, so
    the static diagnostics and the runtime guard can never disagree. *)

type cost_profile = {
  atoms : int;  (** atomic subformulae, [Rel] and [Cmp] *)
  quantifiers : int;  (** [Exists] / [Forall] nodes *)
  sum_count : int;  (** [Sum] nodes, nested included *)
  tuple_width : int;  (** total summation tuple width over all sums *)
}

val zero_profile : cost_profile

val add_profile : cost_profile -> cost_profile -> cost_profile
(** Componentwise sum. *)

val profile_formula : Ast.formula -> cost_profile

val profile_term : Ast.term -> cost_profile

val projected_qe_atoms : cost_profile -> float
(** Worst-case constraint count after eliminating every quantifier by
    Fourier-Motzkin: [m -> m^2/4] per eliminated variable, starting from
    [max 2 atoms], saturating near [1e150]. *)

val projected_sum_points : endpoints:int -> cost_profile -> float
(** Naive summation enumerates the END endpoint grid:
    [endpoints ^ tuple_width] index points ([0.] when the query has no
    summation). *)

val default_budget : float
(** [infinity]: by default nothing is guarded and every query runs on the
    engine its hint (or runtime probe) selects. *)

type decision =
  | Run_exact
  | Fallback_approx of { projected : float; budget : float }
      (** the projected cost that tripped the guard, and the budget it was
          compared against *)

val pp_decision : Format.formatter -> decision -> unit
(** ["run-exact"], or ["fallback-approx (projected P > budget B)"]. *)

val decide : ?endpoints:int -> ?budget:float -> cost_profile -> decision
(** Compare [max (projected_qe_atoms p) (projected_sum_points p)] against
    [budget] (default {!default_budget}; [endpoints] defaults to [8],
    matching the cost pass).  Strictly over budget means fall back. *)

val kernel_name : unit -> string
(** ["filtered"] or ["exact"] — the active numeric kernel
    ({!Cqa_linear.Flatrow}), for stats lines and bench ablation labels.
    Label-only by design: the filtered kernel produces byte-identical
    results, so it never influences {!decide}. *)
