(** Static dispatch hints: the contract between the static analyzer
    ({!Cqa_analysis.Fragment} in [lib/analysis]) and the evaluation engines.

    The analyzer classifies a query's fragment once, before any evaluation;
    the resulting hint tells {!Eval} and {!Volume_exact} which engine is
    guaranteed to apply, so provably semi-linear queries go straight to the
    Theorem 3 exact engine instead of discovering linear-reducibility by a
    runtime probe (attempting the reduction and catching
    [Eval.Unsupported]). *)

type hint =
  | Exact_semilinear
      (** Provably linear-reducible after polynomial normalization: every
          atom is FO + LIN modulo [Mpoly] normalization, every summation
          sub-term is closed, and (when classified against a database) no
          relation is semi-algebraic.  [Eval.eval_set] cannot raise
          [Unsupported] and the Theorem 3 engine applies. *)
  | Pointwise_poly
      (** Genuinely polynomial atoms (or a semi-algebraic relation):
          pointwise truth and the Theorem 4 sampling estimators apply, the
          symbolic linear path does not. *)
  | Sum_eval
      (** Open summation terms: only the summation-aware term evaluator
          applies. *)

val to_string : hint -> string
(** ["exact-semilinear"], ["pointwise-poly"], ["sum-eval"]. *)

val pp : Format.formatter -> hint -> unit
