(** Abstract syntax of FO + POLY + SUM (Section 5 of the paper).

    Terms are built from rational constants, variables, [+], [*], and the
    summation term former

    [Sum { gamma; rho }] for [ [sum_{rho(w, z)} gamma](z) ],

    where the range-restricted expression [rho(w, z) = (phi1(w, z) |
    END[y, phi2(y, z)])] confines every summation variable to the finite set
    of interval endpoints of a one-dimensional definable set, and [gamma(x,
    w)] is a deterministic formula assigning at most one value [x] to each
    tuple [w].  Formulas are first-order over comparison atoms between terms
    and schema atoms. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly

type cmp = Ceq | Clt | Cle

type term =
  | Const of Q.t
  | TVar of Var.t
  | Add of term * term
  | Mul of term * term
  | Sum of sum_spec

and sum_spec = {
  gamma_var : Var.t;  (** the output variable [x] of [gamma (x, w)] *)
  gamma : formula;  (** must be deterministic; see {!Deterministic} *)
  w : Var.t list;  (** the summation tuple, bound in [guard] and [gamma] *)
  guard : formula;  (** [phi1 (w, z)] *)
  end_y : Var.t;  (** the END variable, bound in [end_body] *)
  end_body : formula;  (** [phi2 (y, z)] *)
}

and formula =
  | True
  | False
  | Cmp of cmp * term * term
  | Rel of string * Var.t list
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Exists of Var.t * formula
  | Forall of Var.t * formula

(* Constructors and sugar *)

val q : Q.t -> term
val int : int -> term
val v : string -> term
val ( +! ) : term -> term -> term
val ( -! ) : term -> term -> term
val ( *! ) : term -> term -> term
val ( =! ) : term -> term -> formula
val ( <! ) : term -> term -> formula
val ( <=! ) : term -> term -> formula
val ( >! ) : term -> term -> formula
val ( >=! ) : term -> term -> formula
val conj : formula list -> formula
val disj : formula list -> formula
val implies : formula -> formula -> formula
val exists_many : Var.t list -> formula -> formula
val forall_many : Var.t list -> formula -> formula

val sum :
  gamma_var:Var.t ->
  gamma:formula ->
  w:Var.t list ->
  guard:formula ->
  end_y:Var.t ->
  end_body:formula ->
  term

val of_mpoly : Mpoly.t -> term
val of_linexpr : Linexpr.t -> term

val to_mpoly : term -> Mpoly.t option
(** [Some] when the term is summation-free. *)

val of_linformula : Linformula.t -> formula
(** Embed an FO + LIN formula (active-domain quantifiers are rejected). *)

val of_semialg_formula : Semialg.formula -> formula

val term_free_vars : term -> Var.Set.t
val free_vars : formula -> Var.Set.t

val subst_term : Q.t Var.Map.t -> term -> term
(** Substitute constants for free variables (binders shadow). *)

val subst : Q.t Var.Map.t -> formula -> formula

val term_size : term -> int
val size : formula -> int
val sum_depth : term -> int
(** Nesting depth of summation operators. *)

val has_sum : formula -> bool
val relations : formula -> string list

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> formula -> unit
