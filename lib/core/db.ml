open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly

type relation =
  | Finite of Q.t array list
  | Semilin of Semilinear.t
  | Semialgebraic of Semialg.t

module M = Map.Make (String)

type t = { schema : Schema.t; rels : relation M.t }

let empty schema = { schema; rels = M.empty }
let schema t = t.schema

let relation_arity = function
  | Finite [] -> None
  | Finite (tup :: _) -> Some (Array.length tup)
  | Semilin s -> Some (Semilinear.dim s)
  | Semialgebraic s -> Some (Semialg.dim s)

let add name rel t =
  match Schema.arity t.schema name with
  | None -> invalid_arg ("Db.add: unknown relation " ^ name)
  | Some a -> (
      (match rel with
      | Finite tuples ->
          List.iter
            (fun tup ->
              if Array.length tup <> a then
                invalid_arg ("Db.add: arity mismatch in " ^ name))
            tuples
      | Semilin _ | Semialgebraic _ -> (
          match relation_arity rel with
          | Some a' when a' <> a -> invalid_arg ("Db.add: arity mismatch in " ^ name)
          | _ -> ()));
      { t with rels = M.add name rel t.rels })

let of_list schema l = List.fold_left (fun t (n, r) -> add n r t) (empty schema) l

let find t name =
  match M.find_opt name t.rels with
  | Some r -> r
  | None -> raise Not_found

let of_instance inst =
  let schema = Instance.schema inst in
  List.fold_left
    (fun t name -> add name (Finite (Instance.tuples inst name)) t)
    (empty schema) (Schema.names schema)

let points_to_semilinear arity tuples =
  let vars = Semilinear.default_vars arity in
  let dnf =
    List.map
      (fun tup ->
        List.mapi
          (fun i c -> Linconstr.eq (Linexpr.var vars.(i)) (Linexpr.const c))
          (Array.to_list tup))
      tuples
  in
  Semilinear.make vars dnf

let as_semilinear t name =
  match M.find_opt name t.rels with
  | None -> raise Not_found
  | Some (Semilin s) -> Some s
  | Some (Finite tuples) ->
      let arity = Schema.arity_exn t.schema name in
      Some (points_to_semilinear arity tuples)
  | Some (Semialgebraic _) -> None

let as_semialg t name =
  match M.find_opt name t.rels with
  | None -> raise Not_found
  | Some (Semialgebraic s) -> s
  | Some (Semilin s) -> Semialg.of_semilinear s
  | Some (Finite tuples) ->
      let arity = Schema.arity_exn t.schema name in
      Semialg.of_semilinear (points_to_semilinear arity tuples)

let mem_tuple t name tup =
  match find t name with
  | Finite tuples -> List.exists (fun x -> x = tup) tuples
  | Semilin s -> Semilinear.mem s tup
  | Semialgebraic s -> Semialg.mem s tup

let is_linear t =
  M.for_all (fun _ r -> match r with Semialgebraic _ -> false | _ -> true) t.rels

module Qset = Set.Make (struct
  type t = Q.t

  let compare = Q.compare
end)

let active_domain t =
  let add_lin acc s =
    List.fold_left
      (fun acc conj ->
        List.fold_left
          (fun acc c ->
            let e = Linconstr.expr c in
            let acc = Qset.add (Linexpr.constant e) acc in
            List.fold_left (fun acc (_, q) -> Qset.add q acc) acc (Linexpr.coeffs e))
          acc conj)
      acc (Semilinear.dnf s)
  in
  let add_alg acc s =
    List.fold_left
      (fun acc conj ->
        List.fold_left
          (fun acc (a : Semialg.atom) ->
            List.fold_left
              (fun acc (_, q) -> Qset.add q acc)
              acc (Mpoly.terms a.Semialg.poly))
          acc conj)
      acc (Semialg.dnf s)
  in
  let set =
    M.fold
      (fun _ rel acc ->
        match rel with
        | Finite tuples ->
            List.fold_left
              (fun acc tup -> Array.fold_left (fun a q -> Qset.add q a) acc tup)
              acc tuples
        | Semilin s -> add_lin acc s
        | Semialgebraic s -> add_alg acc s)
      t.rels Qset.empty
  in
  Qset.elements set

let pp fmt t =
  M.iter
    (fun name rel ->
      match rel with
      | Finite tuples ->
          Format.fprintf fmt "@[<h>%s = {%d tuples}@]@ " name (List.length tuples)
      | Semilin s -> Format.fprintf fmt "@[%s = %a@]@ " name Semilinear.pp s
      | Semialgebraic s -> Format.fprintf fmt "@[%s = %a@]@ " name Semialg.pp s)
    t.rels
