open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly
module T = Cqa_telemetry.Telemetry

(* db.update.* counters depend on the caller's update traffic, hence are
   exempt from the cross-domain determinism contract like plan.*. *)
let tm_upd_insert = T.counter "db.update.insert"
let tm_upd_remove = T.counter "db.update.remove"
let tm_upd_noop = T.counter "db.update.noop"
let tm_upd_truncated = T.counter "db.update.log_truncated"

type relation =
  | Finite of Q.t array list
  | Semilin of Semilinear.t
  | Semialgebraic of Semialg.t

module M = Map.Make (String)

type change = {
  version : int;
  rel : string;
  inserted : bool;
  region : Semilinear.t;
  delta_box : (Q.t * Q.t) array option;
  delta_empty : bool;
}

(* Mutable in place: [apply_update] bumps [version] and prepends to [log],
   so per-database caches keyed on the value's physical identity (the plan
   executor's MRU states) survive updates and detect staleness by version.
   The log is capped; [log_floor] is the oldest version the retained
   suffix can replay from. *)
type t = {
  schema : Schema.t;
  mutable rels : relation M.t;
  mutable version : int;
  mutable log : change list;  (* newest first *)
  mutable log_floor : int;
  lock : Mutex.t;
}

let log_cap = 64

let empty schema =
  { schema; rels = M.empty; version = 0; log = []; log_floor = 0;
    lock = Mutex.create () }

let schema t = t.schema
let version t = t.version

let relation_arity = function
  | Finite [] -> None
  | Finite (tup :: _) -> Some (Array.length tup)
  | Semilin s -> Some (Semilinear.dim s)
  | Semialgebraic s -> Some (Semialg.dim s)

let add name rel t =
  match Schema.arity t.schema name with
  | None -> invalid_arg ("Db.add: unknown relation " ^ name)
  | Some a -> (
      (match rel with
      | Finite tuples ->
          List.iter
            (fun tup ->
              if Array.length tup <> a then
                invalid_arg ("Db.add: arity mismatch in " ^ name))
            tuples
      | Semilin _ | Semialgebraic _ -> (
          match relation_arity rel with
          | Some a' when a' <> a -> invalid_arg ("Db.add: arity mismatch in " ^ name)
          | _ -> ()));
      (* functional: a fresh database value with its own version history *)
      { schema = t.schema; rels = M.add name rel t.rels; version = 0;
        log = []; log_floor = 0; lock = Mutex.create () })

let of_list schema l = List.fold_left (fun t (n, r) -> add n r t) (empty schema) l

let find t name =
  match M.find_opt name t.rels with
  | Some r -> r
  | None -> raise Not_found

let of_instance inst =
  let schema = Instance.schema inst in
  List.fold_left
    (fun t name -> add name (Finite (Instance.tuples inst name)) t)
    (empty schema) (Schema.names schema)

let points_to_semilinear arity tuples =
  let vars = Semilinear.default_vars arity in
  let dnf =
    List.map
      (fun tup ->
        List.mapi
          (fun i c -> Linconstr.eq (Linexpr.var vars.(i)) (Linexpr.const c))
          (Array.to_list tup))
      tuples
  in
  Semilinear.make vars dnf

(* A schema relation with no interpretation is the empty relation: this is
   what lets an update sequence start from [Db.empty] (inserting into a
   declared-but-absent name grows it from nothing). *)
let declared_empty t name =
  match Schema.arity t.schema name with
  | Some a -> Semilinear.empty a
  | None -> raise Not_found

let as_semilinear t name =
  match M.find_opt name t.rels with
  | None -> Some (declared_empty t name)
  | Some (Semilin s) -> Some s
  | Some (Finite tuples) ->
      let arity = Schema.arity_exn t.schema name in
      Some (points_to_semilinear arity tuples)
  | Some (Semialgebraic _) -> None

let as_semialg t name =
  match M.find_opt name t.rels with
  | None -> Semialg.of_semilinear (declared_empty t name)
  | Some (Semialgebraic s) -> s
  | Some (Semilin s) -> Semialg.of_semilinear s
  | Some (Finite tuples) ->
      let arity = Schema.arity_exn t.schema name in
      Semialg.of_semilinear (points_to_semilinear arity tuples)

let mem_tuple t name tup =
  match M.find_opt name t.rels with
  | None -> ignore (declared_empty t name); false
  | Some (Finite tuples) -> List.exists (fun x -> x = tup) tuples
  | Some (Semilin s) -> Semilinear.mem s tup
  | Some (Semialgebraic s) -> Semialg.mem s tup

let is_linear t =
  M.for_all (fun _ r -> match r with Semialgebraic _ -> false | _ -> true) t.rels

module Qset = Set.Make (struct
  type t = Q.t

  let compare = Q.compare
end)

let active_domain t =
  let add_lin acc s =
    List.fold_left
      (fun acc conj ->
        List.fold_left
          (fun acc c ->
            let e = Linconstr.expr c in
            let acc = Qset.add (Linexpr.constant e) acc in
            List.fold_left (fun acc (_, q) -> Qset.add q acc) acc (Linexpr.coeffs e))
          acc conj)
      acc (Semilinear.dnf s)
  in
  let add_alg acc s =
    List.fold_left
      (fun acc conj ->
        List.fold_left
          (fun acc (a : Semialg.atom) ->
            List.fold_left
              (fun acc (_, q) -> Qset.add q acc)
              acc (Mpoly.terms a.Semialg.poly))
          acc conj)
      acc (Semialg.dnf s)
  in
  let set =
    M.fold
      (fun _ rel acc ->
        match rel with
        | Finite tuples ->
            List.fold_left
              (fun acc tup -> Array.fold_left (fun a q -> Qset.add q a) acc tup)
              acc tuples
        | Semilin s -> add_lin acc s
        | Semialgebraic s -> add_alg acc s)
      t.rels Qset.empty
  in
  Qset.elements set

let pp fmt t =
  M.iter
    (fun name rel ->
      match rel with
      | Finite tuples ->
          Format.fprintf fmt "@[<h>%s = {%d tuples}@]@ " name (List.length tuples)
      | Semilin s -> Format.fprintf fmt "@[%s = %a@]@ " name Semilinear.pp s
      | Semialgebraic s -> Format.fprintf fmt "@[%s = %a@]@ " name Semialg.pp s)
    t.rels

(* ------------------------------------------------------------------ *)
(* Updates: in-place mutation with a version and a bounded change log  *)
(* ------------------------------------------------------------------ *)

type update = Insert of string * Semilinear.t | Remove of string * Semilinear.t

let apply_update t u =
  let name, region, inserted =
    match u with
    | Insert (n, r) -> (n, r, true)
    | Remove (n, r) -> (n, r, false)
  in
  let arity =
    match Schema.arity t.schema name with
    | None -> invalid_arg ("Db.apply_update: unknown relation " ^ name)
    | Some a -> a
  in
  if Semilinear.dim region <> arity then
    invalid_arg ("Db.apply_update: arity mismatch in " ^ name);
  let current =
    match M.find_opt name t.rels with
    | None | Some (Finite []) -> Semilinear.empty arity
    | Some (Semilin s) -> s
    | Some (Finite tuples) -> points_to_semilinear arity tuples
    | Some (Semialgebraic _) ->
        invalid_arg ("Db.apply_update: " ^ name ^ " is semi-algebraic")
  in
  let d =
    if inserted then Semilinear.insert_region current region
    else Semilinear.remove_region current region
  in
  T.incr (if inserted then tm_upd_insert else tm_upd_remove);
  if d.Semilinear.delta_empty then T.incr tm_upd_noop;
  Mutex.lock t.lock;
  let ch =
    {
      version = t.version + 1;
      rel = name;
      inserted;
      region;
      delta_box = d.Semilinear.delta_box;
      delta_empty = d.Semilinear.delta_empty;
    }
  in
  t.rels <- M.add name (Semilin d.Semilinear.updated) t.rels;
  t.version <- ch.version;
  t.log <- ch :: t.log;
  (* cap the log: drop the oldest entries and raise the replay floor *)
  if t.version - t.log_floor > log_cap then begin
    let keep = ref [] and n = ref 0 in
    List.iter
      (fun c ->
        if !n < log_cap then begin
          keep := c :: !keep;
          incr n
        end)
      t.log;
    t.log <- List.rev !keep;
    t.log_floor <- t.version - !n;
    T.incr tm_upd_truncated
  end;
  Mutex.unlock t.lock;
  ch

let changes_since t v =
  Mutex.lock t.lock;
  let r =
    if v > t.version then None
    else if v < t.log_floor then None
    else
      Some
        (List.rev (List.filter (fun (c : change) -> c.version > v) t.log))
  in
  Mutex.unlock t.lock;
  r
