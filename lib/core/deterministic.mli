(** Deciding whether a formula [gamma (x, w)] is deterministic, i.e. admits
    at most one output [x] for each parameter tuple [w] (Section 5: "it is
    decidable if a formula is deterministic").

    For the linear-reducible fragment the decision is complete: uniqueness
    reduces to unsatisfiability of [gamma(x, w) /\ gamma(x', w) /\ x <> x'],
    settled by Fourier-Motzkin.  For nonlinear formulas the syntactic
    explicit-graph shape [x = t(w)] is recognized (the paper's deterministic
    formulas all have it); anything else is [Unknown] and is enforced at
    evaluation time instead (full real QE is outside scope, see
    DESIGN.md). *)

open Cqa_arith
open Cqa_logic

type verdict =
  | Deterministic
  | Not_deterministic of Q.t Var.Map.t
      (** A parameter/output witness exhibiting two outputs. *)
  | Unknown

val check : Db.t -> gamma_var:Var.t -> w:Var.t list -> Ast.formula -> verdict
(** Never raises: a gamma referencing an uninterpreted relation or an
    ill-arity atom yields [Unknown] (the schema problem is {!Safety}'s to
    report). *)

val is_explicit_graph : gamma_var:Var.t -> Ast.formula -> bool
(** Is the formula syntactically [x = t] (or [t = x]) with [x] not in [t]?
    Also recognizes the spellings under an even number of negations and the
    parser's [~(x <> t)] desugaring [Not (Or (x < t, t < x))]. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Human rendering; [Not_deterministic] prints its two-output witness. *)
