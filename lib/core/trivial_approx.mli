(** The trivial 1/2-approximation of Proposition 4: FO + LIN defines
    [VOL_I^eps] for [eps >= 1/2] by answering 1/2 unless the volume is 0 or
    1, and those two cases are first-order (a semi-linear set has null
    measure in the cube iff it contains no open box, which Fourier-Motzkin
    decides).  Theorem 2 shows this is the best any such language can do. *)

open Cqa_arith
open Cqa_linear

val measure_zero_in_cube : Semilinear.t -> bool
(** Is [vol (S inter I^n) = 0]?  Decided exactly: some disjunct intersected
    with the open cube must be strictly feasible for positive measure. *)

val measure_full_in_cube : Semilinear.t -> bool
(** Is [vol (S inter I^n) = 1]? *)

val trivial_approx : Semilinear.t -> Q.t
(** 0, 1 or 1/2: always within 1/2 of [vol (S inter I^n)]. *)
