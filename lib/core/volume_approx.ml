open Cqa_arith
open Cqa_logic
open Cqa_poly
open Cqa_vc

type result = {
  estimate : Q.t;
  sample_size : int;
}

let sample_size_for ~eps ~delta ~vc_dim =
  Bounds.blumer_sample_size ~eps ~delta ~vc_dim

let approx_semialg ?(domains = 1) ~prng ~m s =
  let dim = Semialg.dim s in
  Approx_volume.estimate_random ~domains ~prng ~dim ~n:m (Semialg.mem s)

let approx_semialg_eps ?(domains = 1) ~prng ~eps ~delta ~vc_dim s =
  let m = sample_size_for ~eps ~delta ~vc_dim in
  { estimate = approx_semialg ~domains ~prng ~m s; sample_size = m }

let env_of vars pt =
  let env = ref Var.Map.empty in
  Array.iteri (fun i v -> env := Var.Map.add v pt.(i) !env) vars;
  !env

let member db yvars f pt =
  Eval.holds db (env_of yvars pt) f

let approx_query ?(domains = 1) ~prng ~m db ~yvars f =
  let dim = Array.length yvars in
  Approx_volume.estimate_random ~domains ~prng ~dim ~n:m (member db yvars f)

let approx_query_family ?(domains = 1) ~prng ~m db ~xvars ~yvars f ~params =
  let dim = Array.length yvars in
  (* staged so the parameter environment is built once per parameter, not
     once per membership test *)
  let mem a =
    let base = env_of xvars a in
    fun pt ->
      let env =
        Array.to_list yvars
        |> List.mapi (fun i v -> (v, pt.(i)))
        |> List.fold_left (fun e (v, c) -> Var.Map.add v c e) base
      in
      Eval.holds db env f
  in
  Approx_volume.estimate_family_random ~domains ~prng ~dim ~n:m ~mem params

let halton_approx_query ?(domains = 1) ~m db ~yvars f =
  let dim = Array.length yvars in
  Approx_volume.estimate_halton ~domains ~dim ~n:m (member db yvars f)
