open Cqa_arith
open Cqa_logic
open Cqa_poly
open Cqa_vc

type result = {
  estimate : Q.t;
  sample_size : int;
}

let sample_size_for ~eps ~delta ~vc_dim =
  Bounds.blumer_sample_size ~eps ~delta ~vc_dim

let approx_semialg ~prng ~m s =
  let dim = Semialg.dim s in
  let sample = Approx_volume.random_sample ~prng ~dim ~n:m in
  Approx_volume.fraction_in sample (Semialg.mem s)

let approx_semialg_eps ~prng ~eps ~delta ~vc_dim s =
  let m = sample_size_for ~eps ~delta ~vc_dim in
  { estimate = approx_semialg ~prng ~m s; sample_size = m }

let env_of vars pt =
  let env = ref Var.Map.empty in
  Array.iteri (fun i v -> env := Var.Map.add v pt.(i) !env) vars;
  !env

let member db yvars f pt =
  Eval.holds db (env_of yvars pt) f

let approx_query ~prng ~m db ~yvars f =
  let dim = Array.length yvars in
  let sample = Approx_volume.random_sample ~prng ~dim ~n:m in
  Approx_volume.fraction_in sample (member db yvars f)

let approx_query_family ~prng ~m db ~xvars ~yvars f ~params =
  let dim = Array.length yvars in
  let sample = Approx_volume.random_sample ~prng ~dim ~n:m in
  List.map
    (fun a ->
      let base = env_of xvars a in
      let mem pt =
        let env =
          Array.to_list yvars
          |> List.mapi (fun i v -> (v, pt.(i)))
          |> List.fold_left (fun e (v, c) -> Var.Map.add v c e) base
        in
        Eval.holds db env f
      in
      (a, Approx_volume.fraction_in sample mem))
    params

let halton_approx_query ~m db ~yvars f =
  let dim = Array.length yvars in
  let sample = Approx_volume.halton_sample ~dim ~n:m in
  Approx_volume.fraction_in sample (member db yvars f)
