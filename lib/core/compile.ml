open Cqa_logic

let vv = Var.of_string
let tv x = Ast.TVar x

let neq2 (a1, a2) (b1, b2) =
  Ast.(disj [ tv a1 <! tv b1; tv b1 <! tv a1; tv a2 <! tv b2; tv b2 <! tv a2 ])

let midpoint_eqs (m1, m2) (a1, a2) (b1, b2) =
  Ast.(And (tv m1 +! tv m1 =! (tv a1 +! tv b1), tv m2 +! tv m2 =! (tv a2 +! tv b2)))

let vertex_formula ~rel v1 v2 =
  let a1 = vv "cmp#a1" and a2 = vv "cmp#a2" in
  let b1 = vv "cmp#b1" and b2 = vv "cmp#b2" in
  Ast.(
    And
      ( Rel (rel, [ v1; v2 ]),
        Not
          (exists_many [ a1; a2; b1; b2 ]
             (conj
                [ Rel (rel, [ a1; a2 ]);
                  Rel (rel, [ b1; b2 ]);
                  neq2 (a1, a2) (b1, b2);
                  midpoint_eqs (v1, v2) (a1, a2) (b1, b2) ])) ))

let interior_formula ~rel m1 m2 =
  let e = vv "cmp#e" and u1 = vv "cmp#u1" and u2 = vv "cmp#u2" in
  Ast.(
    Exists
      ( e,
        And
          ( int 0 <! tv e,
            forall_many [ u1; u2 ]
              (implies
                 (conj
                    [ tv m1 -! tv e <! tv u1;
                      tv u1 <! tv m1 +! tv e;
                      tv m2 -! tv e <! tv u2;
                      tv u2 <! tv m2 +! tv e ])
                 (Rel (rel, [ u1; u2 ]))) ) ))

let adjacent_formula ~rel (x1, x2) (y1, y2) =
  let m1 = vv "cmp#m1" and m2 = vv "cmp#m2" in
  Ast.(
    conj
      [ vertex_formula ~rel x1 x2;
        vertex_formula ~rel y1 y2;
        neq2 (x1, x2) (y1, y2);
        exists_many [ m1; m2 ]
          (conj
             [ midpoint_eqs (m1, m2) (x1, x2) (y1, y2);
               Rel (rel, [ m1; m2 ]);
               Not (interior_formula ~rel m1 m2) ]) ])

let lex_lt (a1, a2) (b1, b2) =
  Ast.(Or (tv a1 <! tv b1, And (tv a1 =! tv b1, tv a2 <! tv b2)))

let polygon_area_term ~rel =
  let x1 = vv "t#x1" and x2 = vv "t#x2" in
  let y1 = vv "t#y1" and y2 = vv "t#y2" in
  let z1 = vv "t#z1" and z2 = vv "t#z2" in
  let u = vv "t#u" and vvar = vv "t#v" in
  let nu a b = adjacent_formula ~rel a b in
  let xp = (x1, x2) and yp = (y1, y2) and zp = (z1, z2) in
  let lexmin =
    let w1 = vv "cmp#w1" and w2 = vv "cmp#w2" in
    Ast.(
      Not
        (exists_many [ w1; w2 ]
           (And (vertex_formula ~rel w1 w2, lex_lt (w1, w2) (x1, x2)))))
  in
  let case_split =
    Ast.disj
      [ (* interior fan triangle: an edge not touching the anchor *)
        Ast.conj
          [ nu yp zp; lex_lt yp zp; Ast.Not (nu xp yp); Ast.Not (nu xp zp) ];
        (* boundary fan triangle: path x - y - z along the polygon *)
        Ast.conj
          [ nu xp yp; nu yp zp; Ast.Not (nu xp zp); neq2 xp zp ];
        (* the 3-vertex polygon: all pairs adjacent *)
        Ast.conj [ nu xp yp; nu yp zp; nu xp zp; lex_lt yp zp ] ]
  in
  let psi1 =
    Ast.conj
      [ vertex_formula ~rel x1 x2;
        lexmin;
        vertex_formula ~rel y1 y2;
        vertex_formula ~rel z1 z2;
        case_split ]
  in
  let psi2 =
    let w1 = vv "cmp#p1" and w2 = vv "cmp#p2" in
    Ast.(
      exists_many [ w1; w2 ]
        (And
           ( vertex_formula ~rel w1 w2,
             Or (tv u =! tv w1, tv u =! tv w2) )))
  in
  (* signed doubled area of the triangle (x, y, z) *)
  let det =
    Ast.(
      (tv x1 *! tv y2) -! (tv x2 *! tv y1)
      +! ((tv y1 *! tv z2) -! (tv y2 *! tv z1))
      +! ((tv z1 *! tv x2) -! (tv z2 *! tv x1)))
  in
  let gamma =
    Ast.(
      And
        ( Or (tv vvar +! tv vvar =! det, tv vvar +! tv vvar =! (int 0 -! det)),
          int 0 <=! tv vvar ))
  in
  Ast.sum ~gamma_var:vvar ~gamma
    ~w:[ x1; x2; y1; y2; z1; z2 ]
    ~guard:psi1 ~end_y:u ~end_body:psi2

let boundary_point_formula ~rel m =
  let e = vv "cmp#e" and p = vv "cmp#p" in
  (* every neighborhood of m meets both rel and its complement *)
  Ast.(
    Forall
      ( e,
        implies (int 0 <! tv e)
          (And
             ( Exists
                 ( p,
                   conj
                     [ tv m -! tv e <! tv p; tv p <! tv m +! tv e; Rel (rel, [ p ]) ] ),
               Exists
                 ( p,
                   conj
                     [ tv m -! tv e <! tv p;
                       tv p <! tv m +! tv e;
                       Not (Rel (rel, [ p ])) ] ) )) ))

let interval_measure_term ~rel =
  let l = vv "t#l" and u = vv "t#u" and y = vv "t#y" in
  let m = vv "cmp#m" and vvar = vv "t#len" in
  let guard =
    Ast.(
      conj
        [ tv l <! tv u;
          (* the midpoint belongs to the set *)
          Exists
            (m, And (tv m +! tv m =! (tv l +! tv u), Rel (rel, [ m ])));
          (* no boundary point strictly between l and u *)
          Not
            (Exists
               ( m,
                 conj
                   [ tv l <! tv m; tv m <! tv u; boundary_point_formula ~rel m ]
               )) ])
  in
  let gamma = Ast.(tv vvar =! (tv u -! tv l)) in
  Ast.sum ~gamma_var:vvar ~gamma ~w:[ l; u ] ~guard ~end_y:y
    ~end_body:(Ast.Rel (rel, [ y ]))
