open Cqa_arith
open Cqa_linear
open Cqa_poly
open Cqa_geom

exception Unbounded

(* Keep only genuinely satisfiable disjuncts: for a satisfiable conjunction,
   relaxing strict atoms cannot introduce recession directions, so
   boundedness checks on the relaxation are then faithful. *)
let prune s =
  Semilinear.make (Semilinear.vars s)
    (List.filter Fourier_motzkin.satisfiable_conj (Semilinear.dnf s))

let hyperplane_exprs s =
  let all =
    List.concat_map
      (fun conj -> List.map (fun a -> Linconstr.make (Linconstr.expr a) Linconstr.Eq) conj)
      (Semilinear.dnf s)
  in
  let rec uniq acc = function
    | [] -> List.rev acc
    | c :: rest ->
        if List.exists (Linconstr.equal c) acc then uniq acc rest
        else uniq (c :: acc) rest
  in
  List.map Linconstr.expr (uniq [] all)

let arrangement_vertices s =
  let n = Semilinear.dim s in
  let vars = Semilinear.vars s in
  let exprs = Array.of_list (hyperplane_exprs s) in
  let m = Array.length exprs in
  let verts = ref [] in
  if n >= 1 && m >= n then begin
    let idx = Array.make n 0 in
    let rec choose k start =
      if k = n then begin
        let a =
          Array.init n (fun r ->
              Array.map (fun v -> Linexpr.coeff exprs.(idx.(r)) v) vars)
        in
        let b = Array.init n (fun r -> Q.neg (Linexpr.constant exprs.(idx.(r)))) in
        match Qmat.solve a b with
        | Some x -> verts := x :: !verts
        | None -> ()
      end
      else
        for i = start to m - 1 do
          idx.(k) <- i;
          choose (k + 1) (i + 1)
        done
    in
    choose 0 0
  end;
  !verts

let breakpoints_pruned s =
  let n = Semilinear.dim s in
  match Semilinear.bounding_box s with
  | None -> raise Unbounded
  | Some bb ->
      let lo, hi = bb.(n - 1) in
      let vertex_ts =
        List.map (fun v -> v.(n - 1)) (arrangement_vertices s)
        |> List.filter (fun t -> Q.leq lo t && Q.leq t hi)
      in
      List.sort_uniq Q.compare (lo :: hi :: vertex_ts)

let breakpoints s =
  let s = prune s in
  if Semilinear.dnf s = [] then []
  else breakpoints_pruned s

let rec volume_sweep_pruned s =
  let n = Semilinear.dim s in
  if Semilinear.dnf s = [] then Q.zero
  else if n = 0 then Q.one
  else if n = 1 then begin
    let cell = Semilinear.last_axis_cell s [||] in
    match Cell1.measure cell with
    | Some m -> m
    | None -> raise Unbounded
  end
  else begin
    let bps = breakpoints_pruned s in
    let h t = volume_sweep_pruned (prune (Semilinear.section_last s t)) in
    let rec pieces acc = function
      | a :: (b :: _ as rest) ->
          let width = Q.sub b a in
          if Q.sign width <= 0 then pieces acc rest
          else begin
            (* the section measure is a polynomial of degree < n on (a, b):
               recover it by interpolation at n interior points *)
            let samples =
              List.init n (fun j ->
                  let frac = Q.of_ints (j + 1) (n + 1) in
                  Q.add a (Q.mul width frac))
            in
            let pts = List.map (fun t -> (t, h t)) samples in
            let p = Upoly.interpolate pts in
            pieces (Q.add acc (Upoly.integrate p a b)) rest
          end
      | _ -> acc
    in
    pieces Q.zero bps
  end

let volume_sweep s = volume_sweep_pruned (prune s)

let volume_incl_excl s =
  let s = prune s in
  let disjuncts = Semilinear.dnf s in
  if disjuncts = [] then Q.zero
  else begin
    if Semilinear.bounding_box s = None then raise Unbounded;
    let vars = Semilinear.vars s in
    let polys =
      Array.of_list
        (List.map (fun conj -> Hpolytope.of_constraints vars conj) disjuncts)
    in
    let d = Array.length polys in
    if d > 20 then invalid_arg "Volume_exact.volume_incl_excl: too many disjuncts";
    let total = ref Q.zero in
    for mask = 1 to (1 lsl d) - 1 do
      let inter = ref None in
      let count = ref 0 in
      for i = 0 to d - 1 do
        if (mask lsr i) land 1 = 1 then begin
          incr count;
          inter :=
            Some
              (match !inter with
              | None -> polys.(i)
              | Some p -> Hpolytope.intersect p polys.(i))
        end
      done;
      match !inter with
      | None -> assert false
      | Some p ->
          let v = Lasserre.volume p in
          if !count mod 2 = 1 then total := Q.add !total v
          else total := Q.sub !total v
    done;
    !total
  end

let volume = volume_sweep

let volume_clamped s = volume_sweep (Semilinear.clamp_unit s)
