open Cqa_arith
open Cqa_linear
open Cqa_poly
open Cqa_geom
module T = Cqa_telemetry.Telemetry

(* Telemetry probes (zero-cost while disabled).  Counters are bumped from
   worker domains during parallel sweeps; they are atomic, and their totals
   for a fixed input are independent of the domain count (per-chunk wall
   time lives in the [par.chunk:volume.*] timers instead). *)
let tm_sweep_calls = T.counter "volume.sweep.calls"
let tm_sweep_cells = T.counter "volume.sweep.cells"
let tm_sweep_sections = T.counter "volume.sweep.sections"
let tm_breakpoints = T.counter "volume.sweep.breakpoints"
let tm_ie_calls = T.counter "volume.incl_excl.calls"
let tm_ie_terms = T.counter "volume.incl_excl.terms"
let tm_arr_pushes = T.counter "volume.arrangement.pushes"
let tm_arr_vertices = T.counter "volume.arrangement.vertices"
let tm_arena_reuse = T.counter "arena.reuse"
let tm_arena_grow = T.counter "arena.grow"

(* Per-domain reuse of the Qmat elimination state: vertex enumeration
   allocates an n-row rational tableau per call, and parallel sweeps make
   that call per cell.  One reset-and-reused [elim] per dimension per
   domain removes the churn.  Sound because [Qmat.elim_push] overwrites
   its row storage completely (a reset state is indistinguishable from a
   fresh one) and each enumeration finishes before its caller returns —
   the arrangement walks never nest.  [arena.reuse]/[arena.grow] depend
   on which domain work lands on and are exempt from the cross-domain
   determinism contract. *)
let elim_slot : unit -> (int, Qmat.elim) Hashtbl.t =
  Cqa_conc.Pool.dls_slot ~init:(fun () -> Hashtbl.create 4)

let borrow_elim n =
  let tbl = elim_slot () in
  match Hashtbl.find_opt tbl n with
  | Some e ->
      T.incr tm_arena_reuse;
      Qmat.elim_reset e;
      e
  | None ->
      T.incr tm_arena_grow;
      let e = Qmat.elim_create n in
      Hashtbl.replace tbl n e;
      e

exception Unbounded

(* Keep only genuinely satisfiable disjuncts: for a satisfiable conjunction,
   relaxing strict atoms cannot introduce recession directions, so
   boundedness checks on the relaxation are then faithful. *)
let prune s =
  Semilinear.make (Semilinear.vars s)
    (List.filter Fourier_motzkin.satisfiable_conj (Semilinear.dnf s))

(* Constraints are hash-consed, so first-occurrence dedup is a tag-set
   membership test instead of the former quadratic scan over accumulated
   atoms. *)
let hyperplane_constrs s =
  let all =
    List.concat_map
      (fun conj -> List.map (fun a -> Linconstr.make (Linconstr.expr a) Linconstr.Eq) conj)
      (Semilinear.dnf s)
  in
  let seen = Hashtbl.create 64 in
  let rec uniq acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let tg = Linconstr.tag c in
        if Hashtbl.mem seen tg then uniq acc rest
        else begin
          Hashtbl.add seen tg ();
          uniq (c :: acc) rest
        end
  in
  uniq [] all

let hyperplane_exprs s = List.map Linconstr.expr (hyperplane_constrs s)

(* Guard for the combinatorial core below: warn (once per call) before
   enumerating an unreasonable number of n-subsets, but still proceed --
   the enumeration is exact and the caller asked for it. *)
let max_arrangement_subsets = ref 2_000_000

let set_max_arrangement_subsets n =
  if n < 1 then invalid_arg "Volume_exact.set_max_arrangement_subsets";
  max_arrangement_subsets := n

let get_max_arrangement_subsets () = !max_arrangement_subsets

(* binomial(m, n), saturating at [max_int] *)
let subset_count m n =
  let n = Stdlib.min n (m - n) in
  if n < 0 then 0
  else begin
    let rec go acc i =
      if i >= n then acc
      else if acc > max_int / (m - i) then max_int
      else go (acc * (m - i) / (i + 1)) (i + 1)
    in
    go 1 0
  end

(* Enumerate the n-subsets of the constraint hyperplanes with a
   backtracking incremental elimination: a hyperplane whose normal is
   linearly dependent on the current prefix is rejected immediately
   ([Qmat.elim_push] returns false), pruning every subset extending that
   prefix, where the former code built and solved a fresh n-by-n system per
   subset.  Nonsingular systems have unique solutions, so the vertices (and
   their order) are identical to the naive enumeration's. *)
let arrangement_vertices s =
  let n = Semilinear.dim s in
  let vars = Semilinear.vars s in
  let exprs = Array.of_list (hyperplane_exprs s) in
  let m = Array.length exprs in
  let verts = ref [] in
  if n >= 1 && m >= n then begin
    let subsets = subset_count m n in
    if subsets > !max_arrangement_subsets then
      Format.eprintf
        "Volume_exact.arrangement_vertices: %d hyperplanes in dimension %d: %d subsets \
         exceeds the advisory limit %d; proceeding (exact but slow)@."
        m n subsets !max_arrangement_subsets;
    let rows =
      Array.map
        (fun e ->
          (Array.map (fun v -> Linexpr.coeff e v) vars, Q.neg (Linexpr.constant e)))
        exprs
    in
    let elim = borrow_elim n in
    let rec choose k start =
      if k = n then begin
        T.incr tm_arr_vertices;
        verts := Qmat.elim_solution elim :: !verts
      end
      else
        for i = start to m - 1 do
          let row, rhs = rows.(i) in
          if Qmat.elim_push elim row rhs then begin
            T.incr tm_arr_pushes;
            choose (k + 1) (i + 1);
            Qmat.elim_pop elim
          end
        done
    in
    choose 0 0
  end;
  !verts

let breakpoints_pruned s =
  let n = Semilinear.dim s in
  match Semilinear.bounding_box s with
  | None -> raise Unbounded
  | Some bb ->
      let lo, hi = bb.(n - 1) in
      let vertex_ts =
        List.map (fun v -> v.(n - 1)) (arrangement_vertices s)
        |> List.filter (fun t -> Q.leq lo t && Q.leq t hi)
      in
      List.sort_uniq Q.compare (lo :: hi :: vertex_ts)

let breakpoints s =
  let s = prune s in
  if Semilinear.dnf s = [] then []
  else breakpoints_pruned s

(* Vertices of exactly the n-subsets whose least index is below [n_fresh].
   With the fresh hyperplanes placed first, a subset contains a fresh
   hyperplane iff its least index is fresh, so the enumeration is complete
   and duplicate-free over "subsets meeting a fresh hyperplane". *)
let vertices_meeting_fresh ~n ~vars ~n_fresh exprs =
  let m = Array.length exprs in
  let verts = ref [] in
  if n >= 1 && m >= n then begin
    let rows =
      Array.map
        (fun e ->
          (Array.map (fun v -> Linexpr.coeff e v) vars, Q.neg (Linexpr.constant e)))
        exprs
    in
    let elim = borrow_elim n in
    let rec choose k start =
      if k = n then begin
        T.incr tm_arr_vertices;
        verts := Qmat.elim_solution elim :: !verts
      end
      else
        for i = start to m - 1 do
          let row, rhs = rows.(i) in
          if Qmat.elim_push elim row rhs then begin
            T.incr tm_arr_pushes;
            choose (k + 1) (i + 1);
            Qmat.elim_pop elim
          end
        done
    in
    for i = 0 to Stdlib.min n_fresh m - 1 do
      let row, rhs = rows.(i) in
      if Qmat.elim_push elim row rhs then begin
        T.incr tm_arr_pushes;
        choose 1 (i + 1);
        Qmat.elim_pop elim
      end
    done
  end;
  !verts

(* [breakpoints s] computed against a predecessor set: when the last-axis
   bounding interval is unchanged and every hyperplane of [old_set]
   survives into [s]'s pool, the subsets drawn solely from old hyperplanes
   already contributed their vertices to [old_bps], so only subsets
   meeting a fresh hyperplane are enumerated and their filtered last
   coordinates merged into [old_bps].  [sort_uniq] of the merge equals the
   full recomputation's value exactly, so downstream interpolation stays
   byte-identical.  Any failed precondition falls back to the full
   enumeration. *)
let breakpoints_since ~old_set ~old_bps s =
  let s = prune s in
  if Semilinear.dnf s = [] then []
  else
    let full () = breakpoints_pruned s in

    let os = prune old_set in
    if Semilinear.dnf os = [] || old_bps = [] then full () 
    else
      match (Semilinear.bounding_box s, Semilinear.bounding_box os) with
      | None, _ -> raise Unbounded
      | _, None -> full () 
      | Some bb, Some obb ->
          let n = Semilinear.dim s in
          let lo, hi = bb.(n - 1) and olo, ohi = obb.(n - 1) in
          if not (Q.equal lo olo && Q.equal hi ohi) then full ()
          else begin
            let old_tags = Hashtbl.create 64 in
            List.iter
              (fun c -> Hashtbl.replace old_tags (Linconstr.tag c) ())
              (hyperplane_constrs os);
            let pool = hyperplane_constrs s in
            let fresh, kept =
              List.partition
                (fun c -> not (Hashtbl.mem old_tags (Linconstr.tag c)))
                pool
            in
            if List.length kept <> Hashtbl.length old_tags then full ()
            else if fresh = [] then old_bps
            else begin
              let exprs =
                Array.of_list (List.map Linconstr.expr (fresh @ kept))
              in
              let vertex_ts =
                vertices_meeting_fresh ~n ~vars:(Semilinear.vars s)
                  ~n_fresh:(List.length fresh) exprs
                |> List.map (fun v -> v.(n - 1))
                |> List.filter (fun t -> Q.leq lo t && Q.leq t hi)
              in
              List.sort_uniq Q.compare (old_bps @ vertex_ts)
            end
          end

(* The sweep of the paper's Theorem 3 proof.  [?domains] parallelizes the
   interpolation-sample sections of the top-level sweep only (recursive
   sections run sequentially inside their domain); the sample values are
   reassembled in slot order and combined by exact rational arithmetic, so
   the result is byte-identical for every domain count. *)
let rec volume_sweep_pruned ?(domains = 1) s =
  let n = Semilinear.dim s in
  if Semilinear.dnf s = [] then Q.zero
  else if n = 0 then Q.one
  else if n = 1 then begin
    let cell = Semilinear.last_axis_cell s [||] in
    match Cell1.measure cell with
    | Some m -> m
    | None -> raise Unbounded
  end
  else begin
    T.incr tm_sweep_calls;
    let bps = breakpoints_pruned s in
    if T.enabled () then T.add tm_breakpoints (List.length bps);
    (* the section measure is a polynomial of degree < n on each open piece
       (a, b): recover it by interpolation at n interior points *)
    let rec collect acc = function
      | a :: (b :: _ as rest) ->
          let width = Q.sub b a in
          if Q.sign width <= 0 then collect acc rest
          else begin
            let samples =
              List.init n (fun j ->
                  let frac = Q.of_ints (j + 1) (n + 1) in
                  Q.add a (Q.mul width frac))
            in
            collect ((a, b, samples) :: acc) rest
          end
      | _ -> List.rev acc
    in
    let pieces = collect [] bps in
    let all_samples =
      Array.of_list (List.concat_map (fun (_, _, samples) -> samples) pieces)
    in
    if T.enabled () then begin
      T.add tm_sweep_cells (List.length pieces);
      T.add tm_sweep_sections (Array.length all_samples)
    end;
    let h t = volume_sweep_pruned (prune (Semilinear.section_last s t)) in
    let values = Par.map ~label:"volume.sweep" ~domains h all_samples in
    let pos = ref 0 in
    List.fold_left
      (fun acc (a, b, samples) ->
        let pts =
          List.map
            (fun t ->
              let v = values.(!pos) in
              incr pos;
              (t, v))
            samples
        in
        let p = Upoly.interpolate pts in
        Q.add acc (Upoly.integrate p a b))
      Q.zero pieces
  end

let volume_sweep ?domains s = volume_sweep_pruned ?domains (prune s)

let volume_incl_excl ?(domains = 1) s =
  let s = prune s in
  let disjuncts = Semilinear.dnf s in
  if disjuncts = [] then Q.zero
  else begin
    if Semilinear.bounding_box s = None then raise Unbounded;
    let vars = Semilinear.vars s in
    let polys =
      Array.of_list
        (List.map (fun conj -> Hpolytope.of_constraints vars conj) disjuncts)
    in
    let d = Array.length polys in
    if d > 20 then invalid_arg "Volume_exact.volume_incl_excl: too many disjuncts";
    let term mask =
      let inter = ref None in
      let count = ref 0 in
      for i = 0 to d - 1 do
        if (mask lsr i) land 1 = 1 then begin
          incr count;
          inter :=
            Some
              (match !inter with
              | None -> polys.(i)
              | Some p -> Hpolytope.intersect p polys.(i))
        end
      done;
      match !inter with
      | None -> assert false
      | Some p ->
          T.incr tm_ie_terms;
          let v = Lasserre.volume p in
          if !count mod 2 = 1 then v else Q.neg v
    in
    T.incr tm_ie_calls;
    (* the signed terms are chunked over domains; exact rational addition is
       associative and commutative, so the re-association is value-exact *)
    Par.fold_ints ~label:"volume.incl_excl" ~domains ~combine:Q.add ~init:Q.zero
      term 1
      ((1 lsl d) - 1)
  end

let volume ?domains s = volume_sweep ?domains s

let volume_clamped ?domains s = volume_sweep ?domains (Semilinear.clamp_unit s)

(* ------------------------------------------------------------------ *)
(* Query-level entry with static dispatch                              *)
(* ------------------------------------------------------------------ *)

exception Not_semilinear of string

let volume_of_query ?domains ?hint db coords f =
  match (hint : Dispatch.hint option) with
  | Some Dispatch.Exact_semilinear ->
      (* the analyzer already proved linear-reducibility: evaluate directly,
         without the runtime probe *)
      volume_sweep ?domains (Eval.eval_set db coords f)
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) ->
      raise
        (Not_semilinear
           "static dispatch hint excludes the exact engine (use the \
            Theorem 4 sampling estimators)")
  | None -> (
      match Eval.try_eval_set db coords f with
      | Some s -> volume_sweep ?domains s
      | None ->
          raise (Not_semilinear "query is not linear-reducible"))

(* ------------------------------------------------------------------ *)
(* Cost-guarded entry: exact within budget, Theorem 4 beyond it        *)
(* ------------------------------------------------------------------ *)

let tm_guard_exact = T.counter "dispatch.guard.exact"
let tm_guard_fallback = T.counter "dispatch.guard.fallback"

type engine = Exact_engine | Approx_engine of { sample_size : int }

type guarded = {
  value : Q.t;
  engine : engine;
  projected : float;
  budget : float;
}

let pp_engine fmt = function
  | Exact_engine -> Format.pp_print_string fmt "exact (Theorem 3 sweep)"
  | Approx_engine { sample_size } ->
      Format.fprintf fmt "approx (Theorem 4 sampling, M = %d)" sample_size

(* The Theorem 4 estimator as used by every guarded fallback path (here
   and in [Exec]): a Blumer-sized sample for the section family's VC
   dimension, drawn from a fresh seeded PRNG so a given seed always yields
   the same estimate. *)
let sampler_estimate ?(domains = 1) ~eps ~delta ~seed db coords f =
  let vc_dim = Array.length coords + 2 in
  let m = Cqa_vc.Bounds.blumer_sample_size ~eps ~delta ~vc_dim in
  let prng = Cqa_vc.Prng.create seed in
  let value = Volume_approx.approx_query ~domains ~prng ~m db ~yvars:coords f in
  (value, m)

let volume_guarded ?(domains = 1) ?hint ?(budget = Dispatch.default_budget)
    ?(eps = 0.1) ?(delta = 0.1) ?(seed = 1) db coords f =
  let profile = Dispatch.profile_formula f in
  let projected = Dispatch.projected_qe_atoms profile in
  let fallback reason =
    T.incr tm_guard_fallback;
    if T.enabled () then
      T.event "dispatch.fallback"
        (Printf.sprintf "%s; projected=%.3g budget=%.3g eps=%g delta=%g"
           reason projected budget eps delta);
    let value, m = sampler_estimate ~domains ~eps ~delta ~seed db coords f in
    { value; engine = Approx_engine { sample_size = m }; projected; budget }
  in
  match (hint : Dispatch.hint option) with
  | Some (Dispatch.Pointwise_poly | Dispatch.Sum_eval) ->
      (* outside the exact fragment: sampling is the only engine left, so
         degrade rather than reject as [volume_of_query] would *)
      fallback "static hint excludes the exact engine"
  | (Some Dispatch.Exact_semilinear | None) as hint -> (
      match Dispatch.decide ~budget profile with
      | Dispatch.Fallback_approx _ -> fallback "projected cost exceeds budget"
      | Dispatch.Run_exact ->
          T.incr tm_guard_exact;
          let s =
            match hint with
            | Some Dispatch.Exact_semilinear -> Eval.eval_set db coords f
            | _ -> (
                match Eval.try_eval_set db coords f with
                | Some s -> s
                | None -> raise (Not_semilinear "query is not linear-reducible"))
          in
          {
            value = volume_sweep ~domains (Semilinear.clamp_unit s);
            engine = Exact_engine;
            projected;
            budget;
          })
