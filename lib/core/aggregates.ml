open Cqa_arith
open Cqa_logic
open Cqa_linear

let enumerate_finite = Semilinear.enumerate_finite

let saf_output db coords f =
  let s = Eval.eval_set db coords f in
  enumerate_finite s

let count db coords f = Option.map List.length (saf_output db coords f)

let env_of coords pt =
  let env = ref Var.Map.empty in
  Array.iteri (fun i v -> env := Var.Map.add v pt.(i) !env) coords;
  !env

let sum_gamma db coords f ~gamma_var ~gamma =
  match saf_output db coords f with
  | None -> None
  | Some pts ->
      Some
        (List.fold_left
           (fun acc pt ->
             let env = env_of coords pt in
             let cell = Eval.section db env gamma_var gamma in
             match Cell1.components cell with
             | [] -> acc
             | [ c ] -> (
                 match (c.Cell1.lo, c.Cell1.hi) with
                 | Cell1.Incl a, Cell1.Incl b when Q.equal a b -> Q.add acc a
                 | _ -> invalid_arg "Aggregates: gamma not deterministic")
             | _ -> invalid_arg "Aggregates: gamma not deterministic")
           Q.zero pts)

let avg_gamma db coords f ~gamma_var ~gamma =
  match (sum_gamma db coords f ~gamma_var ~gamma, count db coords f) with
  | Some s, Some n when n > 0 -> Some (Q.div s (Q.of_int n))
  | _ -> None

let sum_coord db var f =
  match saf_output db [| var |] f with
  | None -> None
  | Some pts -> Some (List.fold_left (fun acc pt -> Q.add acc pt.(0)) Q.zero pts)

let avg_coord db var f =
  match saf_output db [| var |] f with
  | None | Some [] -> None
  | Some pts ->
      let s = List.fold_left (fun acc pt -> Q.add acc pt.(0)) Q.zero pts in
      Some (Q.div s (Q.of_int (List.length pts)))

let min_coord db var f =
  match saf_output db [| var |] f with
  | None | Some [] -> None
  | Some (pt :: pts) ->
      Some (List.fold_left (fun acc p -> Q.min acc p.(0)) pt.(0) pts)

let max_coord db var f =
  match saf_output db [| var |] f with
  | None | Some [] -> None
  | Some (pt :: pts) ->
      Some (List.fold_left (fun acc p -> Q.max acc p.(0)) pt.(0) pts)

let group_by db coords f ~key =
  let n = Array.length coords in
  List.iter
    (fun i -> if i < 0 || i >= n then invalid_arg "Aggregates.group_by: bad index")
    key;
  match saf_output db coords f with
  | None -> None
  | Some pts ->
      let proj pt = Array.of_list (List.map (fun i -> pt.(i)) key) in
      let table = Hashtbl.create 16 in
      List.iter
        (fun pt ->
          let k = proj pt in
          let cur = Option.value ~default:[] (Hashtbl.find_opt table k) in
          Hashtbl.replace table k (pt :: cur))
        pts;
      Some
        (Hashtbl.fold (fun k group acc -> (k, List.rev group) :: acc) table []
        |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b))

let group_count db coords f ~key =
  Option.map
    (List.map (fun (k, group) -> (k, List.length group)))
    (group_by db coords f ~key)

let group_sum db coords f ~key ~value =
  if value < 0 || value >= Array.length coords then
    invalid_arg "Aggregates.group_sum: bad value index";
  Option.map
    (List.map (fun (k, group) ->
         (k, List.fold_left (fun acc pt -> Q.add acc pt.(value)) Q.zero group)))
    (group_by db coords f ~key)

let group_avg db coords f ~key ~value =
  if value < 0 || value >= Array.length coords then
    invalid_arg "Aggregates.group_avg: bad value index";
  Option.map
    (List.map (fun (k, group) ->
         let s = List.fold_left (fun acc pt -> Q.add acc pt.(value)) Q.zero group in
         (k, Q.div s (Q.of_int (List.length group)))))
    (group_by db coords f ~key)
