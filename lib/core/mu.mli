(** The Chomicki-Kuper measure operator [mu] of "Measuring infinite
    relations" (reference [12] of the paper): the density of a semi-linear
    set at infinity,

    [mu (X) = lim_{r -> inf} vol (X inter [-r, r]^n) / (2r)^n].

    FO + LIN is closed under [mu], but [mu (X) = 0] for every bounded [X] --
    the paper's point that this operator cannot express volume.  For a
    semi-linear [X] the limit exists and is rational: beyond the vertices of
    the constraint arrangement, [vol (X inter [-r, r]^n)] is a polynomial in
    [r] of degree at most [n], and [mu] reads off its top coefficient. *)

open Cqa_arith
open Cqa_linear

val clipped_volume : Semilinear.t -> Q.t -> Q.t
(** [vol (X inter [-r, r]^n)]. *)

val mu : Semilinear.t -> Q.t
(** The density at infinity.  Computed by interpolating the clipped volume
    at [n+1] radii beyond the arrangement's vertices and verifying the fit
    on an extra radius. *)
