open Cqa_vc

let witness ~prng db coords f =
  let s = Eval.eval_set db coords f in
  match Aggregates.enumerate_finite s with
  | Some [] -> None
  | Some pts -> Some (List.nth pts (Prng.int prng (List.length pts)))
  | None -> Cqa_linear.Semilinear.sample_point s

let random_unit_point ~prng ~dim = Array.init dim (fun _ -> Prng.q_unit prng)
