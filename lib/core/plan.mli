(** Compiled query plans: the explicit plan IR behind the volume engines.

    A plan is a query compiled {e once} — alpha-normalized, structurally
    hashed, its cost profile and engine decision precomputed — and then
    executed many times by {!Exec} against different databases and
    parameter bindings.  Compilation is purely static (it never touches a
    database); everything database-dependent lives in per-plan execution
    state owned by {!Exec}.

    Plans are cached in a lock-striped table keyed on {e shape}: the
    alpha-normal form of the formula together with the coordinate and
    parameter orders.  Two alpha-equivalent spellings of a query share one
    plan; distinct shapes get distinct plans.  The cache is capacity-
    bounded ([CQA_PLAN_CACHE_CAP], default 512, [Half] eviction) and
    reports traffic on the [plan.cache.hit] / [plan.cache.miss] /
    [plan.cache.evict] counters and compile cost on the [plan.compile]
    timer and [plan.compile_ns] counter.  All [plan.*] counters are
    cache-state- and clock-dependent and exempt from the counter
    determinism contract. *)

open Cqa_logic

type t
(** A compiled plan.  Immutable apart from its cache-hit tally and the
    execution-state slots, both of which are lock-protected. *)

type exec_state = ..
(** Extension point for per-database execution state.  {!Exec} attaches
    its own constructor; keeping the type open here avoids a dependency
    cycle while letting the plan own the slots. *)

(** {1 Compilation} *)

val compile :
  ?normalize:(Ast.formula -> Ast.formula) ->
  ?hint:Dispatch.hint ->
  ?budget:float ->
  ?params:Var.t array ->
  ?coords:Var.t array ->
  Ast.formula ->
  t
(** Compile [f] unconditionally (no cache).  [normalize] (identity by
    default) is a semantics-preserving rewriter applied before
    normalization: the plan's shape, cost profile and engine decision are
    those of the {e rewritten} formula, while [source], the coordinate
    defaults and the free-variable contract stay those of [f] as written.
    [coords] defaults to the sorted free variables of [f] minus [params];
    [params] defaults to none; [budget] to {!Dispatch.default_budget}.
    @raise Invalid_argument if a parameter is not free in [f], a variable
    is both coordinate and parameter, or the coordinates and parameters
    together do not cover the free variables. *)

val cached :
  ?normalize:(Ast.formula -> Ast.formula) ->
  ?hint_of:(Ast.formula -> Dispatch.hint option) ->
  ?budget:float ->
  ?params:Var.t array ->
  ?coords:Var.t array ->
  Ast.formula ->
  t
(** Like {!compile} but through the striped plan cache: a query whose
    shape was compiled before returns the existing plan without any
    analysis or normalization beyond computing the shape key.  [normalize]
    runs on {e every} lookup (the cache is keyed on the rewritten normal
    form, so semantically-equal spellings hit one plan) and must be cheap;
    [hint_of] is consulted {e only on a cache miss}, on the rewritten
    spelling — this is how the analysis layer's rewriter and fragment
    classifier are threaded in without a dependency from [cqa_core] on
    [cqa_analysis] (see [Cqa_analysis.Planner]). *)

(** {1 Accessors} *)

val id : t -> int
(** Unique per compiled plan (cache hits share the id). *)

val source : t -> Ast.formula
(** The formula as compiled (first spelling to reach the cache). *)

val normal : t -> Ast.formula
(** Alpha-normal form: binders renamed to [plan#<i>] in traversal order. *)

val coords : t -> Var.t array
val params : t -> Var.t array
val shape_hash : t -> int
val profile : t -> Dispatch.cost_profile
val projected : t -> float
(** {!Dispatch.projected_qe_atoms} of the profile. *)

val hint : t -> Dispatch.hint option
val budget : t -> float
val decision : t -> Dispatch.decision
(** {!Dispatch.decide} at plan time, against {!budget}. *)

val compile_ns : t -> float
(** Wall-clock compile time, recorded whether or not telemetry is on. *)

val hit_count : t -> int
(** Times this plan was returned by a {!cached} hit. *)

val equal_shape : t -> t -> bool

(** {1 Normalization helpers} (exposed for tests) *)

val alpha_normalize : Ast.formula -> Ast.formula
val hash_formula : Ast.formula -> int
val equal_formula : Ast.formula -> Ast.formula -> bool

(** {1 Cache control} *)

val clear_cache : unit -> unit

val cache_generation : unit -> int
(** Bumped by every {!clear_cache}.  Outer cache levels (the planner's
    whole-plan memo) stamp entries with the generation they were filled
    under and treat a stamp mismatch as invalid, so one [clear_cache]
    empties every level at once. *)

val cache_length : unit -> int
val cache_capacity : unit -> int
val set_cache_capacity : int -> unit
val cache_stats : unit -> Cqa_conc.Striped_tbl.stat array
(** Per-stripe accounting of the plan cache ({!Cqa_conc.Striped_tbl.stats}). *)

val pp_cache_stats : Format.formatter -> unit -> unit
(** Render {!cache_stats} as the table behind [cqa plan --stats]. *)

(** {1 Execution state} (for {!Exec}) *)

val lookup_state : t -> 'db -> exec_state option
(** State for this database, by physical identity; most-recently-used
    first, at most four databases retained per plan. *)

val store_state : t -> 'db -> exec_state -> unit
val reset_states : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Run under the plan's mutex — {!Exec} serializes state mutation with
    this; do not call {!lookup_state}/{!store_state} inside. *)

val pp : Format.formatter -> t -> unit
(** Human rendering of the static plan (the [cqa plan] output body). *)
