open Cqa_arith
open Cqa_logic
open Cqa_linear
open Cqa_poly
open Cqa_core

let section3_schema = Schema.of_list [ ("U", 1) ]

let section3_query () =
  let x1 = Var.of_string "x1" and x2 = Var.of_string "x2" in
  let y1 = Var.of_string "y1" and y2 = Var.of_string "y2" in
  let tv = Ast.(fun v -> TVar v) in
  let f =
    Ast.(
      conj
        [ Rel ("U", [ x1 ]);
          Rel ("U", [ x2 ]);
          tv x1 <! tv y1;
          tv y1 <! tv x2;
          int 0 <=! tv y2;
          tv y2 <=! tv y1 ])
  in
  (f, [ x1; x2 ], [ y1; y2 ])

let section3_db points =
  Db.of_list section3_schema
    [ ("U", Db.Finite (List.map (fun q -> [| q |]) points)) ]

let section3_exact_volume a b =
  if Q.gt a b then Q.zero
  else Q.mul (Q.sub (Q.mul b b) (Q.mul a a)) Q.half

let arctan_epigraph x =
  let coords = Semialg.vars (Semialg.empty 2) in
  let y = Mpoly.var coords.(0) and z = Mpoly.var coords.(1) in
  Semialg.make coords
    [ [ { Semialg.poly = Mpoly.neg y; op = Semialg.Le };
        { Semialg.poly = Mpoly.(sub y (constant x)); op = Semialg.Le };
        { Semialg.poly = Mpoly.neg z; op = Semialg.Le };
        (* z * (y^2 + 1) <= 1 *)
        { Semialg.poly = Mpoly.(sub (mul z (add (mul y y) one)) one);
          op = Semialg.Le } ] ]

let arctan_volume_float x = atan (Q.to_float x)

let polygon_schema = Schema.of_list [ ("P", 2) ]

let q = Q.of_int

let conj_db cs =
  let vars = Semilinear.default_vars 2 in
  Db.of_list polygon_schema
    [ ("P", Db.Semilin (Semilinear.of_conjunction vars cs)) ]

let xy () =
  let vars = Semilinear.default_vars 2 in
  (Linexpr.var vars.(0), Linexpr.var vars.(1))

let triangle_db () =
  let x, y = xy () in
  conj_db
    [ Linconstr.ge x Linexpr.zero;
      Linconstr.ge y Linexpr.zero;
      Linconstr.le (Linexpr.add x y) (Linexpr.const (q 2)) ]

let rectangle_db () =
  let x, y = xy () in
  conj_db
    [ Linconstr.ge x Linexpr.zero;
      Linconstr.le x (Linexpr.const (q 3));
      Linconstr.ge y Linexpr.zero;
      Linconstr.le y (Linexpr.const (q 2)) ]

let pentagon_db () =
  let x, y = xy () in
  conj_db
    [ Linconstr.ge x Linexpr.zero;
      Linconstr.le x (Linexpr.const (q 3));
      Linconstr.ge y Linexpr.zero;
      Linconstr.le y (Linexpr.const (q 2));
      Linconstr.le (Linexpr.add x y) (Linexpr.const (q 4)) ]

let prop5_instance ~bits =
  if bits < 1 || bits > 16 then invalid_arg "Paper_examples.prop5_instance";
  let schema = Schema.of_list [ ("R", 2) ] in
  (* R (a, i) holds when bit i of a is set: the sets R (a, .) over
     a in [0, 2^bits) trace out every subset of the bit positions *)
  let inst = ref (Instance.empty schema) in
  for a = 0 to (1 lsl bits) - 1 do
    for i = 0 to bits - 1 do
      if (a lsr i) land 1 = 1 then
        inst := Instance.add "R" [| q a; q i |] !inst
    done
  done;
  (!inst, "R")

let analysis_corpus () =
  let s3, _, _ = section3_query () in
  let u_points = [ Q.of_ints 1 4; Q.of_ints 3 4 ] in
  [
    ("section3", `F s3, Some (section3_db u_points));
    ( "triangle-area",
      `T (Compile.polygon_area_term ~rel:"P"),
      Some (triangle_db ()) );
    ( "interval-measure",
      `T (Compile.interval_measure_term ~rel:"U"),
      Some (section3_db u_points) );
    ("arctan-guard", `F (Compile.boundary_point_formula ~rel:"U"
                           (Var.of_string "x")),
     Some (section3_db u_points));
  ]
