open Cqa_arith
open Cqa_linear
open Cqa_geom
open Cqa_poly
open Cqa_vc

let rational prng ~den ~lo ~hi =
  let span = (hi - lo) * den in
  Q.of_ints ((lo * den) + Prng.int prng (span + 1)) den

let finite_set prng ~size ~lo ~hi =
  let rec go acc n guard =
    if n = 0 || guard = 0 then acc
    else begin
      let den = 1 + Prng.int prng 8 in
      let v = rational prng ~den ~lo ~hi in
      if List.exists (Q.equal v) acc then go acc n (guard - 1)
      else go (v :: acc) (n - 1) guard
    end
  in
  List.sort Q.compare (go [] size (size * 50))

let box_conjunction prng ~vars ~lo ~hi =
  Array.to_list vars
  |> List.concat_map (fun v ->
         let a = rational prng ~den:2 ~lo ~hi:(hi - 1) in
         let w = rational prng ~den:2 ~lo:1 ~hi:(max 2 ((hi - lo) / 2)) in
         [ Linconstr.ge (Linexpr.var v) (Linexpr.const a);
           Linconstr.le (Linexpr.var v) (Linexpr.const (Q.add a w)) ])

let polytope_conjunction prng ~vars ~extra ~lo ~hi =
  let base = box_conjunction prng ~vars ~lo ~hi in
  let halfspaces =
    List.init extra (fun _ ->
        let e =
          Linexpr.of_list
            (Q.of_int (Prng.int prng (2 * (hi - lo)) - (hi - lo)))
            (Array.to_list vars
            |> List.filter_map (fun v ->
                   let c = Prng.int prng 5 - 2 in
                   if c = 0 then None else Some (Q.of_int c, v)))
        in
        Linconstr.make e
          (if Prng.int prng 2 = 0 then Linconstr.Le else Linconstr.Lt))
  in
  base @ halfspaces

let semilinear prng ~dim ~disjuncts =
  let vars = Semilinear.default_vars dim in
  Semilinear.make vars
    (List.init disjuncts (fun _ ->
         polytope_conjunction prng ~vars ~extra:(Prng.int prng 3) ~lo:(-5) ~hi:5))

let convex_polygon prng ~points =
  let pts =
    List.init points (fun _ ->
        [| rational prng ~den:2 ~lo:(-8) ~hi:8; rational prng ~den:2 ~lo:(-8) ~hi:8 |])
  in
  let h = Hull2d.hull pts in
  if List.length h >= 3 then Some (Polygon.of_vertices h) else None

let polygon_to_semilinear poly =
  let vars = Semilinear.default_vars 2 in
  let vs = Array.of_list (Polygon.vertices poly) in
  let n = Array.length vs in
  let conj =
    List.init n (fun i ->
        let a = vs.(i) and b = vs.((i + 1) mod n) in
        (* inward halfplane of the ccw edge (a, b) *)
        let nx = Q.sub b.(1) a.(1) and ny = Q.sub a.(0) b.(0) in
        let e =
          Linexpr.of_list
            (Q.neg (Q.add (Q.mul nx a.(0)) (Q.mul ny a.(1))))
            [ (nx, vars.(0)); (ny, vars.(1)) ]
        in
        Linconstr.make e Linconstr.Le)
  in
  Semilinear.of_conjunction vars conj

let random_disk prng =
  let r = rational prng ~den:8 ~lo:1 ~hi:3 in
  let r = Q.div r (Q.of_int 8) in
  (* radius in [1/8, 3/8]; center keeps the disk inside the unit square *)
  let c () =
    Q.add r (Q.mul (Prng.q_unit prng) (Q.sub Q.one (Q.mul r Q.two)))
  in
  Semialg.ball ~center:[| c (); c () |] ~radius:r

let parabolic_region x =
  let coords = Semialg.vars (Semialg.empty 2) in
  let y = Mpoly.var coords.(0) and z = Mpoly.var coords.(1) in
  let inside =
    (* z * (y^2 + 1) - 1 <= 0 *)
    { Semialg.poly = Mpoly.(sub (mul z (add (mul y y) one)) one);
      op = Semialg.Le }
  in
  let y_le_x =
    { Semialg.poly = Mpoly.(sub y (constant x)); op = Semialg.Le }
  in
  Semialg.clamp_unit (Semialg.make coords [ [ inside; y_le_x ] ])
