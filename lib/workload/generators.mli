(** Seeded random workload generators for tests, experiments and benchmarks.
    Everything draws from an explicit {!Cqa_vc.Prng.t}, so runs are
    reproducible. *)

open Cqa_arith
open Cqa_linear
open Cqa_geom
open Cqa_poly
open Cqa_vc

val rational : Prng.t -> den:int -> lo:int -> hi:int -> Q.t
(** Uniform on the grid [{ k/den | lo*den <= k <= hi*den }]. *)

val finite_set : Prng.t -> size:int -> lo:int -> hi:int -> Q.t list
(** Distinct rationals with denominator up to 8. *)

val box_conjunction :
  Prng.t -> vars:Cqa_logic.Var.t array -> lo:int -> hi:int -> Linformula.conjunction

val polytope_conjunction :
  Prng.t -> vars:Cqa_logic.Var.t array -> extra:int -> lo:int -> hi:int -> Linformula.conjunction
(** A random box plus [extra] random halfspaces (possibly strict): a bounded
    convex region. *)

val semilinear : Prng.t -> dim:int -> disjuncts:int -> Semilinear.t
(** A bounded union of random convex pieces within [[-5, 5]^dim]. *)

val convex_polygon : Prng.t -> points:int -> Polygon.t option
(** The hull of random grid points; [None] when degenerate. *)

val polygon_to_semilinear : Polygon.t -> Semilinear.t
(** Convex polygon as a conjunction of edge halfplanes (2-D). *)

val random_disk : Prng.t -> Semialg.t
(** A random disk inside the unit square. *)

val parabolic_region : Q.t -> Semialg.t
(** The region [{ (y, z) in I^2 | z * (y^2 + 1) <= 1, y <= x }] of the
    paper's arctan example, for the parameter [x]. *)
