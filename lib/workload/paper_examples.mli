(** The worked examples named in the paper, as data and queries. *)

open Cqa_arith
open Cqa_logic
open Cqa_core

val section3_schema : Schema.t
(** One unary predicate [U] over [0, 1]. *)

val section3_query : unit -> Ast.formula * Var.t list * Var.t list
(** The Section 3 example [phi (x1, x2; y1, y2) = U(x1) /\ U(x2) /\ x1 < y1
    /\ y1 < x2 /\ 0 <= y2 /\ y2 <= y1]; returns (formula, parameters
    [x1; x2], section variables [y1; y2]). *)

val section3_db : Q.t list -> Db.t
(** A finite interpretation of [U]. *)

val section3_exact_volume : Q.t -> Q.t -> Q.t
(** [VOL_I (phi (a, b, U)) = (b^2 - a^2) / 2] for [0 <= a <= b <= 1] with
    [U(a)], [U(b)] (the paper's closed form). *)

val arctan_epigraph : Q.t -> Cqa_poly.Semialg.t
(** The set [{ (y, z) | 0 <= y <= x /\ 0 <= z <= 1/(y^2+1) }] of Section 2:
    its volume is [arctan x], witnessing that FO + LIN and FO + POLY are not
    closed under [VOL_I]. *)

val arctan_volume_float : Q.t -> float
(** The transcendental ground truth [arctan x]. *)

val triangle_db : unit -> Db.t
val rectangle_db : unit -> Db.t
val pentagon_db : unit -> Db.t
(** Convex-polygon databases (schema [P/2]) for the Section 5 area
    program, with areas 2, 6 and 11/2. *)

val polygon_schema : Schema.t

val prop5_instance : bits:int -> Cqa_logic.Instance.t * string
(** The Proposition 5 witness: a quantifier-free binary query [R (x, y)]
    over a database of size about [2^bits] whose definable family shatters
    [bits] points, so [VCdim (F_phi (D)) >= log2 |D|].  Returns the instance
    and the relation name. *)

val analysis_corpus :
  unit ->
  (string * [ `F of Ast.formula | `T of Ast.term ] * Db.t option) list
(** The named queries the lint gate ([cqa analyze --corpus], [make lint])
    keeps clean: every entry must analyze without error diagnostics. *)
