open Cqa_arith

(* Dense little-endian coefficient array without trailing zeros. *)
type t = Q.t array

let normalize a =
  let n = Array.length a in
  let rec top i = if i >= 0 && Q.is_zero a.(i) then top (i - 1) else i in
  let t = top (n - 1) in
  if t < 0 then [||] else if t = n - 1 then a else Array.sub a 0 (t + 1)

let zero = [||]
let one = [| Q.one |]
let x = [| Q.zero; Q.one |]
let constant c = normalize [| c |]
let of_coeffs l = normalize (Array.of_list l)
let of_int_coeffs l = of_coeffs (List.map Q.of_int l)
let coeffs p = Array.to_list p
let degree p = Array.length p - 1
let coeff p i = if i < Array.length p then p.(i) else Q.zero
let leading p = if Array.length p = 0 then Q.zero else p.(Array.length p - 1)
let is_zero p = Array.length p = 0

let add a b =
  let n = max (Array.length a) (Array.length b) in
  normalize (Array.init n (fun i -> Q.add (coeff a i) (coeff b i)))

let neg a = Array.map Q.neg a
let sub a b = add a (neg b)

let scale c a = if Q.is_zero c then zero else Array.map (Q.mul c) a

let mul a b =
  if is_zero a || is_zero b then zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb - 1) Q.zero in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        r.(i + j) <- Q.add r.(i + j) (Q.mul a.(i) b.(j))
      done
    done;
    normalize r
  end

let pow p k =
  let rec go acc b k =
    if k = 0 then acc
    else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1)
  in
  if k < 0 then invalid_arg "Upoly.pow" else go one p k

let monic p = if is_zero p then p else scale (Q.inv (leading p)) p

let divmod a b =
  if is_zero b then raise Division_by_zero;
  let db = degree b in
  let lb = leading b in
  let rem = Array.copy a in
  let da = degree a in
  if da < db then (zero, normalize rem)
  else begin
    let q = Array.make (da - db + 1) Q.zero in
    for i = da downto db do
      let c = rem.(i) in
      if not (Q.is_zero c) then begin
        let f = Q.div c lb in
        q.(i - db) <- f;
        for j = 0 to db do
          rem.(i - db + j) <- Q.sub rem.(i - db + j) (Q.mul f (coeff b j))
        done
      end
    done;
    (normalize q, normalize rem)
  end

let rec gcd a b = if is_zero b then monic a else gcd b (snd (divmod a b))

let derivative p =
  if Array.length p <= 1 then zero
  else normalize (Array.init (Array.length p - 1) (fun i -> Q.mul_int p.(i + 1) (i + 1)))

let square_free p =
  if is_zero p then p
  else begin
    let g = gcd p (derivative p) in
    if degree g <= 0 then monic p else monic (fst (divmod p g))
  end

let compose p q =
  Array.fold_right (fun c acc -> add (mul acc q) (constant c)) p zero

let eval p v =
  Array.fold_right (fun c acc -> Q.add (Q.mul acc v) c) p Q.zero

let sign_at p v = Q.sign (eval p v)

let sturm_chain p =
  if is_zero p then []
  else begin
    let p0 = p and p1 = derivative p in
    if is_zero p1 then [ p0 ]
    else begin
      let rec go acc a b =
        if is_zero b then List.rev acc
        else begin
          let r = snd (divmod a b) in
          go (b :: acc) b (neg r)
        end
      in
      go [ p0 ] p0 p1
    end
  end

let variations signs =
  let rec go acc last = function
    | [] -> acc
    | 0 :: rest -> go acc last rest
    | s :: rest ->
        if last <> 0 && s <> last then go (acc + 1) s rest else go acc s rest
  in
  go 0 0 signs

let sign_variations_at chain v = variations (List.map (fun p -> sign_at p v) chain)

let sign_at_pinf p = Q.sign (leading p)

let sign_at_ninf p =
  let s = Q.sign (leading p) in
  if degree p mod 2 = 0 then s else -s

let sign_variations_at_pinf chain = variations (List.map sign_at_pinf chain)
let sign_variations_at_ninf chain = variations (List.map sign_at_ninf chain)

let count_real_roots p =
  if is_zero p then invalid_arg "Upoly.count_real_roots: zero polynomial"
  else if degree p = 0 then 0
  else begin
    let chain = sturm_chain (square_free p) in
    sign_variations_at_ninf chain - sign_variations_at_pinf chain
  end

let count_roots_in p a b =
  if Q.gt a b then invalid_arg "Upoly.count_roots_in: a > b";
  if is_zero p then invalid_arg "Upoly.count_roots_in: zero polynomial"
  else if degree p = 0 then 0
  else begin
    let chain = sturm_chain (square_free p) in
    sign_variations_at chain a - sign_variations_at chain b
  end

let cauchy_bound p =
  if is_zero p then invalid_arg "Upoly.cauchy_bound: zero polynomial";
  let lc = Q.abs (leading p) in
  let m =
    Array.fold_left (fun acc c -> Q.max acc (Q.abs c)) Q.zero
      (Array.sub p 0 (Array.length p - 1))
  in
  Q.add Q.one (Q.div m lc)

let isolate_roots p =
  if is_zero p then invalid_arg "Upoly.isolate_roots: zero polynomial";
  if degree p = 0 then []
  else begin
    let sf = square_free p in
    let chain = sturm_chain sf in
    let var_at = sign_variations_at chain in
    (* count of distinct roots in (a, b], both endpoints non-roots of sf
       except possibly b *)
    let count a b = var_at a - var_at b in
    let bound = cauchy_bound sf in
    let lo0 = Q.neg bound and hi0 = bound in
    (* invariant: sf(lo) <> 0 and sf(hi) <> 0 *)
    let result = ref [] in
    let rec walk lo hi =
      let n = count lo hi in
      if n = 1 then result := Interval.make lo hi :: !result
      else if n > 1 then begin
        let mid = Q.mid lo hi in
        if sign_at sf mid = 0 then begin
          (* rational root: emit a point, then carve out a root-free margin *)
          result := Interval.point mid :: !result;
          let rec margin d =
            let l = Q.sub mid d and r = Q.add mid d in
            if sign_at sf l <> 0 && sign_at sf r <> 0 && count l r = 1 then (l, r)
            else margin (Q.mul d Q.half)
          in
          let l, r = margin (Q.mul (Q.sub hi lo) (Q.of_ints 1 4)) in
          walk lo l;
          walk r hi
        end
        else begin
          walk lo mid;
          walk mid hi
        end
      end
    in
    walk lo0 hi0;
    List.sort (fun i j -> Q.compare (Interval.lo i) (Interval.lo j)) !result
  end

let interpolate pts =
  if pts = [] then invalid_arg "Upoly.interpolate: no points";
  let rec check = function
    | [] -> ()
    | (x1, _) :: rest ->
        if List.exists (fun (x, _) -> Q.equal x x1) rest then
          invalid_arg "Upoly.interpolate: duplicate abscissa"
        else check rest
  in
  check pts;
  (* Lagrange basis *)
  List.fold_left
    (fun acc (xi, yi) ->
      let basis =
        List.fold_left
          (fun b (xj, _) ->
            if Q.equal xi xj then b
            else begin
              let factor = of_coeffs [ Q.neg xj; Q.one ] in
              scale (Q.inv (Q.sub xi xj)) (mul b factor)
            end)
          one pts
      in
      add acc (scale yi basis))
    zero pts

let antiderivative p =
  if is_zero p then zero
  else
    normalize
      (Array.init
         (Array.length p + 1)
         (fun i -> if i = 0 then Q.zero else Q.div p.(i - 1) (Q.of_int i)))

let integrate p a b =
  let prim = antiderivative p in
  Q.sub (eval prim b) (eval prim a)

let equal a b =
  Array.length a = Array.length b
  && begin
       let rec go i = i >= Array.length a || (Q.equal a.(i) b.(i) && go (i + 1)) in
       go 0
     end

let compare a b =
  let c = Stdlib.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else begin
    let rec go i =
      if i < 0 then 0
      else begin
        let c = Q.compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
      end
    in
    go (Array.length a - 1)
  end

let pp fmt p =
  if is_zero p then Format.pp_print_string fmt "0"
  else begin
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      let c = p.(i) in
      if not (Q.is_zero c) then begin
        if !first then begin
          if Q.sign c < 0 then Format.pp_print_string fmt "-";
          first := false
        end
        else Format.pp_print_string fmt (if Q.sign c < 0 then " - " else " + ");
        let a = Q.abs c in
        if i = 0 then Q.pp fmt a
        else begin
          if not (Q.equal a Q.one) then Format.fprintf fmt "%a*" Q.pp a;
          if i = 1 then Format.pp_print_string fmt "x"
          else Format.fprintf fmt "x^%d" i
        end
      end
    done
  end
