(** Multivariate polynomials over the rationals: the terms of the real-field
    signature R = (R, +, *, 0, 1, <) used by FO + POLY. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear

type monomial = (Var.t * int) list
(** Sorted by variable, positive exponents. *)

type t

val zero : t
val one : t
val constant : Q.t -> t
val of_int : int -> t
val var : Var.t -> t
val monomial : Q.t -> (Var.t * int) list -> t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Q.t -> t -> t
val pow : t -> int -> t

val terms : t -> (monomial * Q.t) list
val is_zero : t -> bool
val is_constant : t -> bool
val constant_value : t -> Q.t option
val vars : t -> Var.t list
val total_degree : t -> int
val degree_in : t -> Var.t -> int

val eval : t -> Q.t Var.Map.t -> Q.t
(** @raise Invalid_argument on unbound variables. *)

val eval_partial : t -> Q.t Var.Map.t -> t
val subst : t -> Var.t -> t -> t
val rename : (Var.t -> Var.t) -> t -> t
val derivative : t -> Var.t -> t

val of_linexpr : Linexpr.t -> t
val to_linexpr : t -> Linexpr.t option
(** [Some] when total degree is at most 1. *)

val to_upoly : t -> Var.t -> Upoly.t option
(** [Some] when the polynomial is univariate in the given variable (or
    constant). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
