open Cqa_arith

type t =
  | Rat of Q.t
  | Root of { poly : Upoly.t; iv : Interval.t }
    (* poly is square-free; iv has non-root endpoints and contains exactly
       one root of poly *)

let of_q q = Rat q
let of_int n = Rat (Q.of_int n)

let of_root p iv =
  let sf = Upoly.square_free p in
  if Upoly.is_zero sf || Upoly.degree sf = 0 then
    invalid_arg "Algnum.of_root: constant polynomial";
  let lo = Interval.lo iv and hi = Interval.hi iv in
  if Interval.is_point iv then begin
    if Upoly.sign_at sf lo = 0 then Rat lo
    else invalid_arg "Algnum.of_root: point interval is not a root"
  end
  else if Upoly.sign_at sf lo = 0 || Upoly.sign_at sf hi = 0 then
    invalid_arg "Algnum.of_root: root at interval endpoint"
  else if Upoly.count_roots_in sf lo hi <> 1 then
    invalid_arg "Algnum.of_root: interval does not isolate one root"
  else Root { poly = sf; iv }

let roots_of p =
  if Upoly.is_zero p then invalid_arg "Algnum.roots_of: zero polynomial"
  else if Upoly.degree p = 0 then []
  else List.map (of_root p) (Upoly.isolate_roots p)

let to_q_opt = function Rat q -> Some q | Root _ -> None

let enclosure = function
  | Rat q -> Interval.point q
  | Root r -> r.iv

let refine = function
  | Rat _ as a -> a
  | Root r ->
      let mid = Interval.mid r.iv in
      let s = Upoly.sign_at r.poly mid in
      if s = 0 then Rat mid
      else begin
        let slo = Upoly.sign_at r.poly (Interval.lo r.iv) in
        (* the root is simple, so the sign changes across it *)
        if slo <> s then
          Root { r with iv = Interval.make (Interval.lo r.iv) mid }
        else Root { r with iv = Interval.make mid (Interval.hi r.iv) }
      end

let rec approx a eps =
  if Q.sign eps <= 0 then invalid_arg "Algnum.approx: eps <= 0";
  match a with
  | Rat q -> q
  | Root r ->
      if Q.lt (Interval.width r.iv) eps then Interval.mid r.iv
      else approx (refine a) eps

let to_float a = Q.to_float (approx a (Q.of_ints 1 1_000_000_000))

(* Interval Horner evaluation: a rigorous enclosure of p([lo, hi]). *)
let eval_on_interval p iv =
  let lo = Interval.lo iv and hi = Interval.hi iv in
  let mul_iv (a, b) (c, d) =
    let p1 = Q.mul a c and p2 = Q.mul a d and p3 = Q.mul b c and p4 = Q.mul b d in
    (Q.min (Q.min p1 p2) (Q.min p3 p4), Q.max (Q.max p1 p2) (Q.max p3 p4))
  in
  let acc =
    List.fold_right
      (fun c (l, h) ->
        let l', h' = mul_iv (l, h) (lo, hi) in
        (Q.add l' c, Q.add h' c))
      (Upoly.coeffs p) (Q.zero, Q.zero)
  in
  Interval.make (fst acc) (snd acc)

(* Exact sign of q at the algebraic number a. *)
let sign_of_upoly_at q a =
  match a with
  | Rat x -> Upoly.sign_at q x
  | Root r ->
      if Upoly.is_zero q then 0
      else begin
        let g = Upoly.gcd r.poly q in
        let lo = Interval.lo r.iv and hi = Interval.hi r.iv in
        if Upoly.degree g >= 1 && Upoly.count_roots_in g lo hi >= 1 then 0
        else begin
          (* q(a) <> 0: refine until the interval enclosure excludes zero *)
          let rec go a =
            match a with
            | Rat x -> Upoly.sign_at q x
            | Root r ->
                let enc = eval_on_interval q r.iv in
                if Q.sign (Interval.lo enc) > 0 then 1
                else if Q.sign (Interval.hi enc) < 0 then -1
                else go (refine a)
          in
          go a
        end
      end

let compare_q a x =
  match a with
  | Rat q -> Q.compare q x
  | Root r ->
      let lo = Interval.lo r.iv and hi = Interval.hi r.iv in
      if Q.leq x lo then 1 (* a > lo >= x; lo is a non-root so a > lo *)
      else if Q.geq x hi then -1
      else if Upoly.sign_at r.poly x = 0 then 0
      else if Upoly.count_roots_in r.poly lo x >= 1 then -1
      else 1

let compare a b =
  match (a, b) with
  | Rat x, Rat y -> Q.compare x y
  | Rat x, b' -> -compare_q b' x
  | a', Rat y -> compare_q a' y
  | Root ra, Root rb ->
      let g = Upoly.gcd ra.poly rb.poly in
      let common_root_between l h =
        Upoly.degree g >= 1
        && Q.lt l h
        && Upoly.sign_at g l <> 0
        && Upoly.sign_at g h <> 0
        && Upoly.count_roots_in g l h >= 1
      in
      let rec go a b =
        match (a, b) with
        | Rat _, _ | _, Rat _ ->
            (match (a, b) with
            | Rat x, _ -> -compare_q b x
            | _, Rat y -> compare_q a y
            | _ -> assert false)
        | Root ra, Root rb ->
            let la = Interval.lo ra.iv and ha = Interval.hi ra.iv in
            let lb = Interval.lo rb.iv and hb = Interval.hi rb.iv in
            if Q.leq ha lb then -1
            else if Q.leq hb la then 1
            else begin
              let l = Q.max la lb and h = Q.min ha hb in
              if common_root_between l h then 0
              else go (refine a) (refine b)
            end
      in
      go (Root ra) (Root rb)

let equal a b = compare a b = 0
let sign a = compare_q a Q.zero

let defining_poly = function
  | Rat q -> Upoly.of_coeffs [ Q.neg q; Q.one ]
  | Root r -> r.poly

(* ------------------------------------------------------------------ *)
(* Field arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

(* A Root whose unique root happens to be rational zero collapses to Rat,
   protecting the product construction (which assumes nonzero operands). *)
let normalize_zero a =
  match a with
  | Rat _ -> a
  | Root _ -> if compare_q a Q.zero = 0 then Rat Q.zero else a

let neg = function
  | Rat x -> Rat (Q.neg x)
  | Root r ->
      let p' =
        Upoly.of_coeffs
          (List.mapi
             (fun i c -> if i mod 2 = 1 then Q.neg c else c)
             (Upoly.coeffs r.poly))
      in
      let iv =
        Interval.make (Q.neg (Interval.hi r.iv)) (Q.neg (Interval.lo r.iv))
      in
      of_root p' iv

(* translate by a rational: alpha + c is a root of p (x - c) *)
let shift_rat poly iv c =
  let p' = Upoly.compose poly (Upoly.of_coeffs [ Q.neg c; Q.one ]) in
  of_root p' (Interval.translate iv c)

(* scale by a nonzero rational: c * alpha is a root of p (x / c) *)
let scale_rat poly iv c =
  let p' =
    Upoly.of_coeffs (List.mapi (fun i k -> Q.div k (Q.pow c i)) (Upoly.coeffs poly))
  in
  let lo = Q.mul c (Interval.lo iv) and hi = Q.mul c (Interval.hi iv) in
  of_root p' (Interval.make (Q.min lo hi) (Q.max lo hi))

let enclosure_of = function Rat q -> Interval.point q | Root r -> r.iv

(* Isolate the value of a binary operation: [res] is a polynomial vanishing
   at the result, [enclosure] maps the current operand enclosures to an
   interval containing it.  Refine until exactly one isolating interval of
   [res] overlaps the enclosure. *)
let isolate_binary res enclosure a b =
  let sf = Upoly.square_free res in
  let isolating = Upoly.isolate_roots sf in
  let overlaps enc iv =
    not
      (Q.lt (Interval.hi iv) (Interval.lo enc)
      || Q.gt (Interval.lo iv) (Interval.hi enc))
  in
  let rec go a b fuel =
    if fuel = 0 then invalid_arg "Algnum: binary isolation did not converge";
    let enc = enclosure (enclosure_of a) (enclosure_of b) in
    match List.filter (overlaps enc) isolating with
    | [ iv ] -> if Interval.is_point iv then Rat (Interval.lo iv) else of_root sf iv
    | _ -> go (refine a) (refine b) (fuel - 1)
  in
  go a b 256

let binomial j i =
  (* C(j, i) as a rational; small arguments only *)
  let rec c j i =
    if i = 0 || i = j then Bigint.one
    else Bigint.add (c (j - 1) (i - 1)) (c (j - 1) i)
  in
  Q.of_bigint (c j i)

let add a b =
  match (normalize_zero a, normalize_zero b) with
  | Rat x, Rat y -> Rat (Q.add x y)
  | Rat x, Root r | Root r, Rat x ->
      if Q.is_zero x then Root r else shift_rat r.poly r.iv x
  | (Root ra as a'), (Root rb as b') ->
      (* Res_y (p(y), q(x - y)) vanishes at alpha + beta *)
      let p_coeffs = List.map Upoly.constant (Upoly.coeffs ra.poly) in
      let qc = Array.of_list (Upoly.coeffs rb.poly) in
      let m = Array.length qc - 1 in
      (* coefficient of y^i in q (x - y): (-1)^i sum_{j >= i} q_j C(j,i) x^(j-i) *)
      let q_coeffs =
        List.init (m + 1) (fun i ->
            let poly =
              let arr = Array.make (m - i + 1) Q.zero in
              for j = i to m do
                arr.(j - i) <- Q.mul qc.(j) (binomial j i)
              done;
              Upoly.of_coeffs (Array.to_list arr)
            in
            if i mod 2 = 1 then Upoly.neg poly else poly)
      in
      let res = Resultant.resultant_y p_coeffs q_coeffs in
      let enclosure ia ib =
        Interval.make
          (Q.add (Interval.lo ia) (Interval.lo ib))
          (Q.add (Interval.hi ia) (Interval.hi ib))
      in
      isolate_binary res enclosure a' b'

let sub a b = add a (neg b)

let mul a b =
  match (normalize_zero a, normalize_zero b) with
  | Rat x, Rat y -> Rat (Q.mul x y)
  | Rat x, Root r | Root r, Rat x ->
      if Q.is_zero x then Rat Q.zero else scale_rat r.poly r.iv x
  | (Root ra as a'), (Root rb as b') ->
      (* Res_y (p(y), y^m q(x/y)) vanishes at alpha * beta (both nonzero) *)
      let p_coeffs = List.map Upoly.constant (Upoly.coeffs ra.poly) in
      let qc = Array.of_list (Upoly.coeffs rb.poly) in
      let m = Array.length qc - 1 in
      (* y^m q(x/y) = sum_j q_j x^j y^(m-j): coefficient of y^i is
         q_(m-i) x^(m-i) *)
      let q_coeffs =
        List.init (m + 1) (fun i ->
            let j = m - i in
            Upoly.scale qc.(j) (Upoly.pow Upoly.x j))
      in
      let res = Resultant.resultant_y p_coeffs q_coeffs in
      let enclosure ia ib =
        let products =
          [ Q.mul (Interval.lo ia) (Interval.lo ib);
            Q.mul (Interval.lo ia) (Interval.hi ib);
            Q.mul (Interval.hi ia) (Interval.lo ib);
            Q.mul (Interval.hi ia) (Interval.hi ib) ]
        in
        Interval.make
          (List.fold_left Q.min (List.hd products) products)
          (List.fold_left Q.max (List.hd products) products)
      in
      isolate_binary res enclosure a' b'

let inv a =
  match normalize_zero a with
  | Rat x -> Rat (Q.inv x)
  | Root _ as a' ->
      (* refine until the enclosure excludes zero, then reverse the
         coefficients: 1/alpha is a root of x^n p(1/x) *)
      let rec away a =
        match a with
        | Rat x -> Rat (Q.inv x)
        | Root r' ->
            let lo = Interval.lo r'.iv and hi = Interval.hi r'.iv in
            if Q.sign lo > 0 || Q.sign hi < 0 then begin
              let p' = Upoly.of_coeffs (List.rev (Upoly.coeffs r'.poly)) in
              let a1 = Q.inv lo and b1 = Q.inv hi in
              of_root p' (Interval.make (Q.min a1 b1) (Q.max a1 b1))
            end
            else away (refine a)
      in
      away a'

let pp fmt = function
  | Rat q -> Q.pp fmt q
  | Root r ->
      Format.fprintf fmt "root(%a) in %a" Upoly.pp r.poly Interval.pp r.iv
