open Cqa_arith
open Cqa_logic
open Cqa_linear

type monomial = (Var.t * int) list

module Mono = struct
  type t = monomial

  let compare (a : t) (b : t) = Stdlib.compare a b
end

module M = Map.Make (Mono)

type t = Q.t M.t
(* Invariant: no zero coefficients; monomials sorted with positive
   exponents. *)

let zero = M.empty
let constant c = if Q.is_zero c then zero else M.singleton [] c
let one = constant Q.one
let of_int n = constant (Q.of_int n)
let var v = M.singleton [ (v, 1) ] Q.one

let monomial c m =
  if Q.is_zero c then zero
  else begin
    let m = List.filter (fun (_, e) -> e <> 0) m in
    List.iter (fun (_, e) -> if e < 0 then invalid_arg "Mpoly.monomial") m;
    let m = List.sort (fun (a, _) (b, _) -> Var.compare a b) m in
    (* merge duplicate variables *)
    let rec merge = function
      | (v1, e1) :: (v2, e2) :: rest when Var.equal v1 v2 ->
          merge ((v1, e1 + e2) :: rest)
      | x :: rest -> x :: merge rest
      | [] -> []
    in
    M.singleton (merge m) c
  end

let add a b =
  M.union
    (fun _ x y ->
      let s = Q.add x y in
      if Q.is_zero s then None else Some s)
    a b

let neg a = M.map Q.neg a
let sub a b = add a (neg b)
let scale c a = if Q.is_zero c then zero else M.map (Q.mul c) a

let mul_mono (m1 : monomial) (m2 : monomial) : monomial =
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (v1, e1) :: r1, (v2, e2) :: r2 ->
        let c = Var.compare v1 v2 in
        if c = 0 then (v1, e1 + e2) :: go r1 r2
        else if c < 0 then (v1, e1) :: go r1 b
        else (v2, e2) :: go a r2
  in
  go m1 m2

let mul a b =
  M.fold
    (fun ma ca acc ->
      M.fold
        (fun mb cb acc ->
          add acc (M.singleton (mul_mono ma mb) (Q.mul ca cb)))
        b acc)
    a zero

let pow p k =
  if k < 0 then invalid_arg "Mpoly.pow";
  let rec go acc b k =
    if k = 0 then acc
    else go (if k land 1 = 1 then mul acc b else acc) (mul b b) (k lsr 1)
  in
  go one p k

let terms p = M.bindings p
let is_zero p = M.is_empty p
let is_constant p = M.is_empty p || (M.cardinal p = 1 && M.mem [] p)

let constant_value p =
  if M.is_empty p then Some Q.zero
  else if M.cardinal p = 1 then M.find_opt [] p
  else None

let vars p =
  M.fold
    (fun m _ acc -> List.fold_left (fun s (v, _) -> Var.Set.add v s) acc m)
    p Var.Set.empty
  |> Var.Set.elements

let total_degree p =
  M.fold
    (fun m _ acc -> max acc (List.fold_left (fun d (_, e) -> d + e) 0 m))
    p 0

let degree_in p v =
  M.fold
    (fun m _ acc ->
      max acc (Option.value ~default:0 (List.assoc_opt v m)))
    p 0

let eval p env =
  M.fold
    (fun m c acc ->
      let t =
        List.fold_left
          (fun t (v, e) ->
            match Var.Map.find_opt v env with
            | Some x -> Q.mul t (Q.pow x e)
            | None -> invalid_arg ("Mpoly.eval: unbound variable " ^ Var.name v))
          c m
      in
      Q.add acc t)
    p Q.zero

let eval_partial p env =
  M.fold
    (fun m c acc ->
      let coeff, rest =
        List.fold_left
          (fun (coeff, rest) (v, e) ->
            match Var.Map.find_opt v env with
            | Some x -> (Q.mul coeff (Q.pow x e), rest)
            | None -> (coeff, (v, e) :: rest))
          (c, []) m
      in
      add acc (monomial coeff (List.rev rest)))
    p zero

let subst p v q =
  M.fold
    (fun m c acc ->
      let e = Option.value ~default:0 (List.assoc_opt v m) in
      let rest = List.filter (fun (v', _) -> not (Var.equal v v')) m in
      add acc (mul (monomial c rest) (pow q e)))
    p zero

let rename rn p =
  M.fold
    (fun m c acc -> add acc (monomial c (List.map (fun (v, e) -> (rn v, e)) m)))
    p zero

let derivative p v =
  M.fold
    (fun m c acc ->
      match List.assoc_opt v m with
      | None | Some 0 -> acc
      | Some e ->
          let rest =
            List.filter_map
              (fun (v', e') ->
                if Var.equal v v' then if e = 1 then None else Some (v', e - 1)
                else Some (v', e'))
              m
          in
          add acc (monomial (Q.mul_int c e) rest))
    p zero

let of_linexpr e =
  List.fold_left
    (fun acc (v, c) -> add acc (monomial c [ (v, 1) ]))
    (constant (Linexpr.constant e))
    (Linexpr.coeffs e)

let to_linexpr p =
  if total_degree p > 1 then None
  else
    Some
      (M.fold
         (fun m c acc ->
           match m with
           | [] -> Linexpr.add acc (Linexpr.const c)
           | [ (v, 1) ] -> Linexpr.add acc (Linexpr.monomial c v)
           | _ -> assert false)
         p Linexpr.zero)

let to_upoly p v =
  match vars p with
  | [] -> (
      match constant_value p with
      | Some c -> Some (Upoly.constant c)
      | None -> None)
  | [ v' ] when Var.equal v v' ->
      let d = degree_in p v in
      let arr = Array.make (d + 1) Q.zero in
      M.iter
        (fun m c ->
          let e = match m with [] -> 0 | [ (_, e) ] -> e | _ -> assert false in
          arr.(e) <- Q.add arr.(e) c)
        p;
      Some (Upoly.of_coeffs (Array.to_list arr))
  | _ -> None

let equal = M.equal Q.equal
let compare = M.compare Q.compare

let pp fmt p =
  if is_zero p then Format.pp_print_string fmt "0"
  else begin
    let pp_mono fmt m =
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.pp_print_string f "*")
        (fun f (v, e) ->
          if e = 1 then Var.pp f v else Format.fprintf f "%a^%d" Var.pp v e)
        fmt m
    in
    let first = ref true in
    List.iter
      (fun (m, c) ->
        if !first then begin
          if Q.sign c < 0 then Format.pp_print_string fmt "-";
          first := false
        end
        else Format.pp_print_string fmt (if Q.sign c < 0 then " - " else " + ");
        let a = Q.abs c in
        if m = [] then Q.pp fmt a
        else begin
          if not (Q.equal a Q.one) then Format.fprintf fmt "%a*" Q.pp a;
          pp_mono fmt m
        end)
      (terms p)
  end
