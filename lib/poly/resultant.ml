open Cqa_arith

let sylvester p q =
  let n = Upoly.degree p and m = Upoly.degree q in
  if n < 0 || m < 0 then invalid_arg "Resultant.sylvester: zero polynomial";
  if n = 0 && m = 0 then invalid_arg "Resultant.sylvester: two constants";
  let size = n + m in
  let mat = Array.make_matrix size size Q.zero in
  (* m rows of p's coefficients, shifted *)
  for i = 0 to m - 1 do
    for j = 0 to n do
      mat.(i).(i + j) <- Upoly.coeff p (n - j)
    done
  done;
  (* n rows of q's coefficients, shifted *)
  for i = 0 to n - 1 do
    for j = 0 to m do
      mat.(m + i).(i + j) <- Upoly.coeff q (m - j)
    done
  done;
  mat

let resultant p q =
  let n = Upoly.degree p and m = Upoly.degree q in
  if n < 0 || m < 0 then Q.zero
  else if n = 0 && m = 0 then Q.one
  else if n = 0 then Q.pow (Upoly.leading p) m
  else if m = 0 then Q.pow (Upoly.leading q) n
  else Qmat.det (sylvester p q)

let discriminant p =
  let n = Upoly.degree p in
  if n < 1 then invalid_arg "Resultant.discriminant: degree < 1";
  if n = 1 then Q.one
  else begin
    let r = resultant p (Upoly.derivative p) in
    let sign = if n * (n - 1) / 2 mod 2 = 0 then Q.one else Q.minus_one in
    Q.mul sign (Q.div r (Upoly.leading p))
  end

(* Fraction-free Bareiss determinant over the polynomial ring Q[x]: every
   division is exact by construction. *)
let det_poly m =
  let n = Array.length m in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Resultant.det_poly")
    m;
  if n = 0 then Upoly.one
  else begin
    let a = Array.map Array.copy m in
    let sign = ref 1 in
    let prev = ref Upoly.one in
    let result = ref None in
    (try
       for k = 0 to n - 2 do
         (* pivot selection: any nonzero entry in column k at row >= k *)
         if Upoly.is_zero a.(k).(k) then begin
           let p = ref (-1) in
           for i = k + 1 to n - 1 do
             if !p < 0 && not (Upoly.is_zero a.(i).(k)) then p := i
           done;
           if !p < 0 then begin
             result := Some Upoly.zero;
             raise Exit
           end;
           let t = a.(!p) in
           a.(!p) <- a.(k);
           a.(k) <- t;
           sign := - !sign
         end;
         for i = k + 1 to n - 1 do
           for j = k + 1 to n - 1 do
             let num =
               Upoly.sub
                 (Upoly.mul a.(k).(k) a.(i).(j))
                 (Upoly.mul a.(i).(k) a.(k).(j))
             in
             let d, r = Upoly.divmod num !prev in
             assert (Upoly.is_zero r);
             a.(i).(j) <- d
           done;
           a.(i).(k) <- Upoly.zero
         done;
         prev := a.(k).(k)
       done
     with Exit -> ());
    match !result with
    | Some z -> z
    | None ->
        let d = a.(n - 1).(n - 1) in
        if !sign < 0 then Upoly.neg d else d
  end

let resultant_y p q =
  let trim l =
    (* drop zero leading coefficients (highest y-degree) *)
    let rec cut = function
      | c :: rest when Upoly.is_zero c -> cut rest
      | l -> l
    in
    List.rev (cut (List.rev l))
  in
  let p = trim p and q = trim q in
  let n = List.length p - 1 and m = List.length q - 1 in
  if n < 0 || m < 0 then invalid_arg "Resultant.resultant_y: zero polynomial";
  if n = 0 && m = 0 then invalid_arg "Resultant.resultant_y: two y-constants";
  if n = 0 then Upoly.pow (List.hd p) m
  else if m = 0 then Upoly.pow (List.hd q) n
  else begin
    let size = n + m in
    let mat = Array.make_matrix size size Upoly.zero in
    let pa = Array.of_list p and qa = Array.of_list q in
    for i = 0 to m - 1 do
      for j = 0 to n do
        mat.(i).(i + j) <- pa.(n - j)
      done
    done;
    for i = 0 to n - 1 do
      for j = 0 to m do
        mat.(m + i).(i + j) <- qa.(m - j)
      done
    done;
    det_poly mat
  end

let have_common_root p q = Q.is_zero (resultant p q)

let is_square_free p =
  if Upoly.degree p < 1 then not (Upoly.is_zero p)
  else not (Q.is_zero (discriminant p))
