(** One-dimensional cylindrical algebraic decomposition: partition the real
    line into finitely many sign-invariant cells for a family of univariate
    polynomials.  This is the [n = 1] base of CAD, and all the paper's exact
    algorithms need no more: semi-algebraic sets only ever get sectioned to
    one dimension (END) or sampled at rational points (Theorem 4). *)

open Cqa_arith

type cell =
  | Point of Algnum.t  (** A root of one of the polynomials. *)
  | Gap of { left : Algnum.t option; right : Algnum.t option; sample : Q.t }
      (** An open interval between consecutive roots ([None] = infinite),
          with a rational sample point inside. *)

val decompose : Upoly.t list -> cell list
(** Alternating [Gap], [Point], [Gap], ..., [Point], [Gap] covering R in
    order.  Constant and zero polynomials are ignored; with no nonconstant
    polynomial the result is the single full-line [Gap]. *)

val sign_on : cell -> Upoly.t -> int
(** Sign of the polynomial on the cell (constant there if the polynomial
    belongs to the family used for the decomposition). *)

val cell_count : cell list -> int
val pp_cell : Format.formatter -> cell -> unit
