open Cqa_arith
open Cqa_logic
open Cqa_linear

type op = Le | Lt | Eq

type atom = { poly : Mpoly.t; op : op }

let atom_holds a env =
  let v = Mpoly.eval a.poly env in
  match a.op with
  | Le -> Q.leq v Q.zero
  | Lt -> Q.lt v Q.zero
  | Eq -> Q.is_zero v

let negate_atom a =
  match a.op with
  | Le -> [ { poly = Mpoly.neg a.poly; op = Lt } ]
  | Lt -> [ { poly = Mpoly.neg a.poly; op = Le } ]
  | Eq -> [ { poly = a.poly; op = Lt }; { poly = Mpoly.neg a.poly; op = Lt } ]

let pp_atom fmt a =
  let s = match a.op with Le -> "<=" | Lt -> "<" | Eq -> "=" in
  Format.fprintf fmt "%a %s 0" Mpoly.pp a.poly s

type formula = atom Formula.t

type t = { vars : Var.t array; dnf : atom list list }

let dim t = Array.length t.vars
let vars t = t.vars
let dnf t = t.dnf

let atom_vars a = Mpoly.vars a.poly

let check_vars vars =
  let s = Var.Set.of_list (Array.to_list vars) in
  if Var.Set.cardinal s <> Array.length vars then
    invalid_arg "Semialg.make: duplicate coordinate variables";
  s

let atom_trivial a =
  match Mpoly.constant_value a.poly with
  | None -> None
  | Some c ->
      Some
        (match a.op with
        | Le -> Q.leq c Q.zero
        | Lt -> Q.lt c Q.zero
        | Eq -> Q.is_zero c)

let simplify_conj conj =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | a :: rest -> (
        match atom_trivial a with
        | Some true -> go acc rest
        | Some false -> None
        | None -> go (a :: acc) rest)
  in
  go [] conj

let make vars d =
  let allowed = check_vars vars in
  List.iter
    (fun conj ->
      List.iter
        (fun a ->
          if not (List.for_all (fun v -> Var.Set.mem v allowed) (atom_vars a))
          then invalid_arg "Semialg.make: foreign variable")
        conj)
    d;
  { vars; dnf = List.filter_map simplify_conj d }

let of_qf_formula vars f =
  let allowed = check_vars vars in
  let free = Formula.free_vars ~atom_vars f in
  if not (Var.Set.subset free allowed) then
    invalid_arg "Semialg.of_qf_formula: free variable not a coordinate";
  let nnf = Formula.nnf ~negate_atom:(fun a ->
      Formula.disj (List.map (fun n -> Formula.Atom n) (negate_atom a))) f
  in
  let rec to_dnf = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Atom a -> [ [ a ] ]
    | Formula.And (g, h) ->
        let dg = to_dnf g and dh = to_dnf h in
        List.concat_map (fun cg -> List.map (fun ch -> cg @ ch) dh) dg
    | Formula.Or (g, h) -> to_dnf g @ to_dnf h
    | Formula.Not _ -> invalid_arg "Semialg.of_qf_formula: not in NNF"
    | Formula.Rel _ -> invalid_arg "Semialg.of_qf_formula: schema atom"
    | Formula.Exists _ | Formula.Forall _ | Formula.Exists_adom _
    | Formula.Forall_adom _ ->
        invalid_arg "Semialg.of_qf_formula: quantifier"
  in
  make vars (to_dnf nnf)

let lin_op : Linconstr.op -> op = function
  | Linconstr.Le -> Le
  | Linconstr.Lt -> Lt
  | Linconstr.Eq -> Eq

let of_semilinear s =
  { vars = Semilinear.vars s;
    dnf =
      List.map
        (List.map (fun c ->
             { poly = Mpoly.of_linexpr (Linconstr.expr c); op = lin_op (Linconstr.op c) }))
        (Semilinear.dnf s) }

let default_vars n = Array.init n (fun i -> Var.of_string (Printf.sprintf "x%d" i))

let empty n = { vars = default_vars n; dnf = [] }
let full n = { vars = default_vars n; dnf = [ [] ] }

let ball ~center ~radius =
  let n = Array.length center in
  let vars = default_vars n in
  let sq =
    Array.to_list
      (Array.mapi
         (fun i c ->
           let d = Mpoly.sub (Mpoly.var vars.(i)) (Mpoly.constant c) in
           Mpoly.mul d d)
         center)
  in
  let lhs =
    Mpoly.sub
      (List.fold_left Mpoly.add Mpoly.zero sq)
      (Mpoly.constant (Q.mul radius radius))
  in
  { vars; dnf = [ [ { poly = lhs; op = Le } ] ] }

let env_of t pt =
  if Array.length pt <> dim t then invalid_arg "Semialg: point dimension";
  let env = ref Var.Map.empty in
  Array.iteri (fun i v -> env := Var.Map.add v pt.(i) !env) t.vars;
  !env

let mem t pt =
  let env = env_of t pt in
  List.exists (List.for_all (fun a -> atom_holds a env)) t.dnf

let align a b =
  if dim a <> dim b then invalid_arg "Semialg: dimension mismatch";
  if a.vars = b.vars then b.dnf
  else begin
    let table = Hashtbl.create 8 in
    Array.iteri (fun i v -> Hashtbl.replace table v a.vars.(i)) b.vars;
    let rn v = match Hashtbl.find_opt table v with Some v' -> v' | None -> v in
    List.map
      (List.map (fun at -> { at with poly = Mpoly.rename rn at.poly }))
      b.dnf
  end

let union a b = { a with dnf = a.dnf @ align a b }

let inter a b =
  let db = align a b in
  { a with
    dnf =
      List.concat_map
        (fun ca -> List.filter_map (fun cb -> simplify_conj (ca @ cb)) db)
        a.dnf }

let compl a =
  let parts = List.map (fun conj -> List.concat_map negate_atom conj) a.dnf in
  (* complement of a DNF: conjunction of disjunctions; expand *)
  match a.dnf with
  | [] -> { a with dnf = [ [] ] }
  | _ ->
      let product =
        List.fold_left
          (fun acc part ->
            List.concat_map (fun c -> List.map (fun atom -> atom :: c) part) acc)
          [ [] ] parts
      in
      { a with dnf = List.filter_map simplify_conj product }

let diff a b = inter a (compl { a with dnf = align a b })

let clamp_unit a =
  let cube_conj =
    Array.to_list a.vars
    |> List.concat_map (fun v ->
           [ { poly = Mpoly.neg (Mpoly.var v); op = Le };
             { poly = Mpoly.sub (Mpoly.var v) Mpoly.one; op = Le } ])
  in
  inter a { a with dnf = [ cube_conj ] }

let atom_count a = List.fold_left (fun acc c -> acc + List.length c) 0 a.dnf

module Section = struct
  type bound =
    | Ninf
    | Pinf
    | Incl of Algnum.t
    | Excl of Algnum.t

  type component = { lo : bound; hi : bound }

  type t = component list

  let endpoints t =
    List.concat_map
      (fun c ->
        let f = function Incl a | Excl a -> [ a ] | Ninf | Pinf -> [] in
        f c.lo @ f c.hi)
      t
    |> List.sort_uniq Algnum.compare

  let mem t x =
    List.exists
      (fun c ->
        (match c.lo with
        | Ninf -> true
        | Pinf -> false
        | Incl a -> Algnum.compare_q a x <= 0
        | Excl a -> Algnum.compare_q a x < 0)
        &&
        match c.hi with
        | Pinf -> true
        | Ninf -> false
        | Incl a -> Algnum.compare_q a x >= 0
        | Excl a -> Algnum.compare_q a x > 0)
      t

  let is_empty t = t = []
  let component_count = List.length

  let measure_approx ~eps t =
    if Q.sign eps <= 0 then invalid_arg "Section.measure_approx: eps <= 0";
    let bounded =
      List.for_all
        (fun c ->
          (match c.lo with Ninf -> false | _ -> true)
          && match c.hi with Pinf -> false | _ -> true)
        t
    in
    if not bounded then None
    else begin
      let k = max 1 (2 * List.length t) in
      let step = Q.div eps (Q.of_int k) in
      let value = function
        | Incl a | Excl a -> Algnum.approx a step
        | Ninf | Pinf -> assert false
      in
      Some
        (List.fold_left
           (fun acc c -> Q.add acc (Q.max Q.zero (Q.sub (value c.hi) (value c.lo))))
           Q.zero t)
    end

  let measure_exact t =
    let bounded =
      List.for_all
        (fun c ->
          (match c.lo with Ninf -> false | _ -> true)
          && match c.hi with Pinf -> false | _ -> true)
        t
    in
    if not bounded then None
    else
      Some
        (List.fold_left
           (fun acc c ->
             match (c.lo, c.hi) with
             | (Incl a | Excl a), (Incl b | Excl b) ->
                 Algnum.add acc (Algnum.sub b a)
             | _ -> assert false)
           (Algnum.of_int 0) t)

  let clamp lo hi t =
    let qlo = Algnum.of_q lo and qhi = Algnum.of_q hi in
    let max_lo b =
      match b with
      | Ninf -> Incl qlo
      | Pinf -> Pinf
      | Incl a -> if Algnum.compare_q a lo < 0 then Incl qlo else b
      | Excl a -> if Algnum.compare_q a lo < 0 then Incl qlo else b
    in
    let min_hi b =
      match b with
      | Pinf -> Incl qhi
      | Ninf -> Ninf
      | Incl a -> if Algnum.compare_q a hi > 0 then Incl qhi else b
      | Excl a -> if Algnum.compare_q a hi > 0 then Incl qhi else b
    in
    let nonempty c =
      match (c.lo, c.hi) with
      | Ninf, _ | _, Pinf -> true
      | Pinf, _ | _, Ninf -> false
      | (Incl a | Excl a), (Incl b | Excl b) -> (
          match (c.lo, c.hi) with
          | Incl _, Incl _ -> Algnum.compare a b <= 0
          | _ -> Algnum.compare a b < 0)
    in
    List.filter nonempty
      (List.map (fun c -> { lo = max_lo c.lo; hi = min_hi c.hi }) t)

  let pp fmt t =
    if t = [] then Format.pp_print_string fmt "{}"
    else begin
      let pl fmt = function
        | Ninf -> Format.pp_print_string fmt "(-inf"
        | Incl a -> Format.fprintf fmt "[%a" Algnum.pp a
        | Excl a -> Format.fprintf fmt "(%a" Algnum.pp a
        | Pinf -> Format.pp_print_string fmt "(+inf"
      in
      let ph fmt = function
        | Pinf -> Format.pp_print_string fmt "+inf)"
        | Incl a -> Format.fprintf fmt "%a]" Algnum.pp a
        | Excl a -> Format.fprintf fmt "%a)" Algnum.pp a
        | Ninf -> Format.pp_print_string fmt "-inf)"
      in
      Format.pp_print_list
        ~pp_sep:(fun f () -> Format.pp_print_string f " u ")
        (fun f c -> Format.fprintf f "%a, %a" pl c.lo ph c.hi)
        fmt t
    end
end

let last_axis_section t pt =
  let n = dim t in
  if n = 0 then invalid_arg "Semialg.last_axis_section: dimension 0";
  if Array.length pt <> n - 1 then
    invalid_arg "Semialg.last_axis_section: point dimension";
  let env = ref Var.Map.empty in
  for i = 0 to n - 2 do
    env := Var.Map.add t.vars.(i) pt.(i) !env
  done;
  let last = t.vars.(n - 1) in
  (* substitute: each atom becomes univariate in the last variable *)
  let sub_dnf =
    List.filter_map
      (fun conj ->
        simplify_conj
          (List.map (fun a -> { a with poly = Mpoly.eval_partial a.poly !env }) conj))
      t.dnf
  in
  let upoly_of a =
    match Mpoly.to_upoly a.poly last with
    | Some p -> p
    | None -> invalid_arg "Semialg.last_axis_section: non-univariate residue"
  in
  let polys =
    List.concat_map (fun conj -> List.map upoly_of conj) sub_dnf
    |> List.filter (fun p -> Upoly.degree p >= 1)
  in
  let cells = Cad1.decompose polys in
  let cell_holds cell =
    List.exists
      (fun conj ->
        List.for_all
          (fun a ->
            let s = Cad1.sign_on cell (upoly_of a) in
            match a.op with Le -> s <= 0 | Lt -> s < 0 | Eq -> s = 0)
          conj)
      sub_dnf
  in
  let flagged = List.map (fun c -> (c, cell_holds c)) cells in
  (* merge consecutive kept cells into maximal components *)
  let close_at cell prev_open =
    ignore prev_open;
    match cell with
    | Cad1.Point a -> Section.Excl a
    | Cad1.Gap g -> (
        match g.left with
        | Some a -> Section.Incl a
        | None -> assert false)
  in
  let rec build acc current = function
    | [] -> (
        match current with
        | None -> List.rev acc
        | Some lo -> List.rev ({ Section.lo; hi = Section.Pinf } :: acc))
    | (cell, kept) :: rest -> (
        match (current, kept) with
        | None, false -> build acc None rest
        | None, true ->
            let lo =
              match cell with
              | Cad1.Point a -> Section.Incl a
              | Cad1.Gap g -> (
                  match g.left with
                  | None -> Section.Ninf
                  | Some a -> Section.Excl a)
            in
            build acc (Some lo) rest
        | Some _, true -> build acc current rest
        | Some lo, false ->
            build ({ Section.lo; hi = close_at cell true } :: acc) None rest)
  in
  build [] None flagged

let pp fmt t =
  Format.fprintf fmt "@[<v>dim %d:@ %a@]" (dim t)
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f " \\/@ ")
       (fun f conj ->
         Format.fprintf f "{%a}"
           (Format.pp_print_list
              ~pp_sep:(fun f () -> Format.fprintf f " /\\ ")
              pp_atom)
           conj))
    t.dnf
