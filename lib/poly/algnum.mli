(** Real algebraic numbers, represented exactly as a square-free defining
    polynomial together with an isolating rational interval.

    One-dimensional sections of semi-algebraic sets have finitely many
    interval components whose endpoints are algebraic (o-minimality of the
    real field); this module gives those endpoints an exact representation
    with comparison, sign determination, and arbitrarily precise rational
    approximation. *)

open Cqa_arith

type t

val of_q : Q.t -> t
val of_int : int -> t

val of_root : Upoly.t -> Interval.t -> t
(** [of_root p iv]: the unique root of [p] inside [iv].  [p] is replaced by
    its square-free part.  @raise Invalid_argument if the interval does not
    isolate exactly one root. *)

val roots_of : Upoly.t -> t list
(** All distinct real roots, ascending. *)

val to_q_opt : t -> Q.t option
(** Exact rational value when the number is rational and this has been
    discovered; guaranteed [Some] for values built by [of_q] or isolated to
    a point. *)

val approx : t -> Q.t -> Q.t
(** [approx a eps] is a rational within [eps > 0] of [a]. *)

val enclosure : t -> Interval.t
val refine : t -> t
(** Halve the isolating interval. *)

val to_float : t -> float
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int

val compare_q : t -> Q.t -> int

(** {2 Field arithmetic}

    Sums and products of real algebraic numbers are algebraic; defining
    polynomials are computed by bivariate resultants
    ([Res_y (p(y), q(x - y))] for sums, [Res_y (p(y), y^m q(x/y))] for
    products) and the result is isolated by refining the operands'
    enclosures.  Rational operands take direct polynomial-transformation
    shortcuts. *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** @raise Division_by_zero on zero. *)

val sign_of_upoly_at : Upoly.t -> t -> int
(** Exact sign of [q(a)]. *)

val defining_poly : t -> Upoly.t
val pp : Format.formatter -> t -> unit
