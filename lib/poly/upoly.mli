(** Univariate polynomials over the rationals: the computational backbone of
    the semi-algebraic (R = (R, +, *, 0, 1, <)) side of the paper.  Sturm
    sequences and exact root isolation provide sign determination and the
    one-dimensional cell decompositions used by [Cad1] and [Semialg]. *)

open Cqa_arith

type t

val zero : t
val one : t
val x : t
val constant : Q.t -> t
val of_coeffs : Q.t list -> t
(** Low-to-high degree. *)

val of_int_coeffs : int list -> t
val coeffs : t -> Q.t list
val degree : t -> int
(** [-1] for the zero polynomial. *)

val coeff : t -> int -> Q.t
val leading : t -> Q.t
val is_zero : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Q.t -> t -> t
val pow : t -> int -> t
val monic : t -> t

val divmod : t -> t -> t * t
(** Euclidean division. @raise Division_by_zero on zero divisor. *)

val gcd : t -> t -> t
(** Monic gcd; [gcd 0 0 = 0]. *)

val derivative : t -> t
val square_free : t -> t
(** The radical [p / gcd (p, p')]: same roots, all simple. *)

val compose : t -> t -> t
(** [compose p q] is [p(q(x))]. *)

val eval : t -> Q.t -> Q.t
val sign_at : t -> Q.t -> int

val sturm_chain : t -> t list
val sign_variations_at : t list -> Q.t -> int
val sign_variations_at_ninf : t list -> int
val sign_variations_at_pinf : t list -> int

val count_real_roots : t -> int
(** Number of distinct real roots. *)

val count_roots_in : t -> Q.t -> Q.t -> int
(** Distinct roots in the half-open interval [(a, b]]; requires [a <= b]. *)

val cauchy_bound : t -> Q.t
(** All real roots lie strictly within [(-B, B)].
    @raise Invalid_argument on the zero polynomial. *)

val isolate_roots : t -> Interval.t list
(** Disjoint isolating intervals for the distinct real roots, sorted left to
    right.  Each interval contains exactly one root of the square-free part
    and has non-root rational endpoints, except that rational roots hit
    during bisection come back as point intervals.  Empty list for
    constants; @raise Invalid_argument on the zero polynomial. *)

val interpolate : (Q.t * Q.t) list -> t
(** Lagrange interpolation through the given (distinct-abscissa) points; the
    result has degree below the point count.
    @raise Invalid_argument on duplicate abscissae or no points. *)

val antiderivative : t -> t
(** The primitive with zero constant term. *)

val integrate : t -> Q.t -> Q.t -> Q.t
(** Exact definite integral over [a, b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
