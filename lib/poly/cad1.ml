open Cqa_arith

type cell =
  | Point of Algnum.t
  | Gap of { left : Algnum.t option; right : Algnum.t option; sample : Q.t }

(* Refine the root enclosures until consecutive enclosures are strictly
   separated, so rational samples can be placed between them. *)
let separate roots =
  let arr = Array.of_list roots in
  let n = Array.length arr in
  let rec fix i =
    if i >= n - 1 then ()
    else begin
      let hi_i = Interval.hi (Algnum.enclosure arr.(i)) in
      let lo_j = Interval.lo (Algnum.enclosure arr.(i + 1)) in
      if Q.lt hi_i lo_j then fix (i + 1)
      else begin
        arr.(i) <- Algnum.refine arr.(i);
        arr.(i + 1) <- Algnum.refine arr.(i + 1);
        fix i
      end
    end
  in
  fix 0;
  Array.to_list arr

let decompose polys =
  let polys = List.filter (fun p -> Upoly.degree p >= 1) polys in
  let roots =
    List.concat_map Algnum.roots_of polys
    |> List.sort_uniq Algnum.compare
    |> separate
  in
  match roots with
  | [] -> [ Gap { left = None; right = None; sample = Q.zero } ]
  | first :: _ ->
      let sample_left =
        Q.sub (Interval.lo (Algnum.enclosure first)) Q.one
      in
      let rec walk = function
        | [ last ] ->
            [ Point last;
              Gap
                { left = Some last;
                  right = None;
                  sample = Q.add (Interval.hi (Algnum.enclosure last)) Q.one } ]
        | a :: (b :: _ as rest) ->
            let sample =
              Q.mid (Interval.hi (Algnum.enclosure a)) (Interval.lo (Algnum.enclosure b))
            in
            Point a :: Gap { left = Some a; right = Some b; sample } :: walk rest
        | [] -> []
      in
      Gap { left = None; right = Some first; sample = sample_left } :: walk roots

let sign_on cell p =
  match cell with
  | Point a -> Algnum.sign_of_upoly_at p a
  | Gap g -> Upoly.sign_at p g.sample

let cell_count = List.length

let pp_cell fmt = function
  | Point a -> Format.fprintf fmt "{%a}" Algnum.pp a
  | Gap { left; right; sample } ->
      let pb fmt = function
        | None -> Format.pp_print_string fmt "inf"
        | Some a -> Algnum.pp fmt a
      in
      Format.fprintf fmt "(%a, %a)@@%a" pb left pb right Q.pp sample
