(** Semi-algebraic sets: finitely representable subsets of R^n given by
    quantifier-free formulas over the real field R = (R, +, *, 0, 1, <),
    kept in DNF of polynomial sign conditions.

    No general quantifier elimination is attempted (see DESIGN.md): the
    paper's exact algorithms only need one-dimensional sections, which the
    1-D CAD provides with exact algebraic endpoints, and its approximation
    algorithms (Theorem 4) only need membership tests at rational points. *)

open Cqa_arith
open Cqa_logic
open Cqa_linear

type op = Le | Lt | Eq

type atom = { poly : Mpoly.t; op : op }
(** The sign condition [poly op 0]. *)

val atom_holds : atom -> Q.t Var.Map.t -> bool
val negate_atom : atom -> atom list
val pp_atom : Format.formatter -> atom -> unit

type formula = atom Formula.t

type t

val dim : t -> int
val vars : t -> Var.t array
val dnf : t -> atom list list

val make : Var.t array -> atom list list -> t
val of_qf_formula : Var.t array -> formula -> t
(** @raise Invalid_argument on quantifiers, schema atoms, or free variables
    outside the coordinates. *)

val of_semilinear : Semilinear.t -> t
val empty : int -> t
val full : int -> t
val ball : center:Q.t array -> radius:Q.t -> t
(** Closed euclidean ball [|x - c|^2 <= r^2]. *)

val mem : t -> Q.t array -> bool
val union : t -> t -> t
val inter : t -> t -> t
val compl : t -> t
val diff : t -> t -> t
val clamp_unit : t -> t
val atom_count : t -> int

(** One-dimensional sections with exact algebraic endpoints. *)
module Section : sig
  type bound =
    | Ninf
    | Pinf
    | Incl of Algnum.t
    | Excl of Algnum.t

  type component = { lo : bound; hi : bound }

  type t = component list
  (** Sorted, disjoint, maximal components. *)

  val endpoints : t -> Algnum.t list
  val mem : t -> Q.t -> bool
  val is_empty : t -> bool
  val component_count : t -> int

  val measure_approx : eps:Q.t -> t -> Q.t option
  (** Within [eps] of the true measure; [None] when infinite. *)

  val measure_exact : t -> Algnum.t option
  (** The measure as an exact real algebraic number (sums of the components'
      algebraic endpoint differences); [None] when infinite. *)

  val clamp : Q.t -> Q.t -> t -> t
  val pp : Format.formatter -> t -> unit
end

val last_axis_section : t -> Q.t array -> Section.t
(** [{ y | (a, y) in s }] for a rational point [a] of dimension [dim - 1]:
    the semi-algebraic analogue of {!Semilinear.last_axis_cell}, computed by
    1-D CAD on the substituted polynomials. *)

val pp : Format.formatter -> t -> unit
