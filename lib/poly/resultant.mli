(** Resultants and discriminants of univariate polynomials over the
    rationals, via the Sylvester matrix.

    [resultant p q = 0] iff [p] and [q] share a root (over the complex
    numbers); the discriminant detects multiple roots.  These power fast
    common-root tests on real algebraic numbers and the square-freeness
    checks of the 1-D CAD. *)

open Cqa_arith

val sylvester : Upoly.t -> Upoly.t -> Q.t array array
(** The [(m+n) x (m+n)] Sylvester matrix of two nonzero polynomials of
    degrees [n] and [m].  @raise Invalid_argument on a zero polynomial or
    two constants. *)

val resultant : Upoly.t -> Upoly.t -> Q.t
(** [Res (p, q)].  Conventions: if either polynomial is zero the resultant
    is 0; if both are (nonzero) constants it is 1; if exactly one is a
    constant [c] with the other of degree [n], it is [c^n]. *)

val discriminant : Upoly.t -> Q.t
(** [disc p = (-1)^(n (n-1) / 2) Res (p, p') / lc (p)].
    Zero iff [p] has a multiple (complex) root.
    @raise Invalid_argument on polynomials of degree < 1. *)

val det_poly : Upoly.t array array -> Upoly.t
(** Determinant of a square matrix with polynomial entries, by the
    fraction-free Bareiss elimination (exact division in Q[x]). *)

val resultant_y : Upoly.t list -> Upoly.t list -> Upoly.t
(** [resultant_y p q] eliminates [y] from two polynomials in [y] whose
    coefficients (low to high degree in [y]) are polynomials in [x]: the
    result is a polynomial in [x] vanishing exactly on the [x] for which
    they share a [y]-root.  This is the engine behind arithmetic on real
    algebraic numbers ({!Algnum.add}, {!Algnum.mul}).
    @raise Invalid_argument when either list is empty or has a zero leading
    coefficient, or both have [y]-degree 0. *)

val have_common_root : Upoly.t -> Upoly.t -> bool
(** Shared complex root test ([resultant = 0]). *)

val is_square_free : Upoly.t -> bool
(** No multiple complex roots (degree >= 1); constants are square-free. *)
