type 'a t =
  | True
  | False
  | Atom of 'a
  | Rel of string * Var.t list
  | Not of 'a t
  | And of 'a t * 'a t
  | Or of 'a t * 'a t
  | Exists of Var.t * 'a t
  | Forall of Var.t * 'a t
  | Exists_adom of Var.t * 'a t
  | Forall_adom of Var.t * 'a t

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc g -> And (acc, g)) f fs

let disj = function
  | [] -> False
  | f :: fs -> List.fold_left (fun acc g -> Or (acc, g)) f fs

let implies a b = Or (Not a, b)
let iff a b = And (implies a b, implies b a)
let exists_many vs f = List.fold_right (fun v g -> Exists (v, g)) vs f
let forall_many vs f = List.fold_right (fun v g -> Forall (v, g)) vs f

let rec map_atoms fn = function
  | True -> True
  | False -> False
  | Atom a -> fn a
  | Rel (r, vs) -> Rel (r, vs)
  | Not f -> Not (map_atoms fn f)
  | And (f, g) -> And (map_atoms fn f, map_atoms fn g)
  | Or (f, g) -> Or (map_atoms fn f, map_atoms fn g)
  | Exists (v, f) -> Exists (v, map_atoms fn f)
  | Forall (v, f) -> Forall (v, map_atoms fn f)
  | Exists_adom (v, f) -> Exists_adom (v, map_atoms fn f)
  | Forall_adom (v, f) -> Forall_adom (v, map_atoms fn f)

let rec fold_atoms fn acc = function
  | True | False | Rel _ -> acc
  | Atom a -> fn acc a
  | Not f -> fold_atoms fn acc f
  | And (f, g) | Or (f, g) -> fold_atoms fn (fold_atoms fn acc f) g
  | Exists (_, f) | Forall (_, f) | Exists_adom (_, f) | Forall_adom (_, f) ->
      fold_atoms fn acc f

let atoms f = List.rev (fold_atoms (fun acc a -> a :: acc) [] f)

let relations f =
  let rec go acc = function
    | True | False | Atom _ -> acc
    | Rel (r, _) -> if List.mem r acc then acc else r :: acc
    | Not g -> go acc g
    | And (g, h) | Or (g, h) -> go (go acc g) h
    | Exists (_, g) | Forall (_, g) | Exists_adom (_, g) | Forall_adom (_, g) ->
        go acc g
  in
  List.rev (go [] f)

let free_vars ~atom_vars f =
  let rec go bound acc = function
    | True | False -> acc
    | Atom a ->
        List.fold_left
          (fun acc v -> if Var.Set.mem v bound then acc else Var.Set.add v acc)
          acc (atom_vars a)
    | Rel (_, vs) ->
        List.fold_left
          (fun acc v -> if Var.Set.mem v bound then acc else Var.Set.add v acc)
          acc vs
    | Not g -> go bound acc g
    | And (g, h) | Or (g, h) -> go bound (go bound acc g) h
    | Exists (v, g) | Forall (v, g) | Exists_adom (v, g) | Forall_adom (v, g) ->
        go (Var.Set.add v bound) acc g
  in
  go Var.Set.empty Var.Set.empty f

let rec rename rn ~rename_atom = function
  | True -> True
  | False -> False
  | Atom a -> Atom (rename_atom rn a)
  | Rel (r, vs) -> Rel (r, List.map rn vs)
  | Not f -> Not (rename rn ~rename_atom f)
  | And (f, g) -> And (rename rn ~rename_atom f, rename rn ~rename_atom g)
  | Or (f, g) -> Or (rename rn ~rename_atom f, rename rn ~rename_atom g)
  | Exists (v, f) -> Exists (rn v, rename rn ~rename_atom f)
  | Forall (v, f) -> Forall (rn v, rename rn ~rename_atom f)
  | Exists_adom (v, f) -> Exists_adom (rn v, rename rn ~rename_atom f)
  | Forall_adom (v, f) -> Forall_adom (rn v, rename rn ~rename_atom f)

let nnf ~negate_atom f =
  let rec pos = function
    | True -> True
    | False -> False
    | Atom a -> Atom a
    | Rel _ as r -> r
    | Not g -> neg g
    | And (g, h) -> And (pos g, pos h)
    | Or (g, h) -> Or (pos g, pos h)
    | Exists (v, g) -> Exists (v, pos g)
    | Forall (v, g) -> Forall (v, pos g)
    | Exists_adom (v, g) -> Exists_adom (v, pos g)
    | Forall_adom (v, g) -> Forall_adom (v, pos g)
  and neg = function
    | True -> False
    | False -> True
    | Atom a -> negate_atom a
    | Rel _ as r -> Not r
    | Not g -> pos g
    | And (g, h) -> Or (neg g, neg h)
    | Or (g, h) -> And (neg g, neg h)
    | Exists (v, g) -> Forall (v, neg g)
    | Forall (v, g) -> Exists (v, neg g)
    | Exists_adom (v, g) -> Forall_adom (v, neg g)
    | Forall_adom (v, g) -> Exists_adom (v, neg g)
  in
  pos f

let rec size = function
  | True | False | Atom _ | Rel _ -> 1
  | Not f -> 1 + size f
  | And (f, g) | Or (f, g) -> 1 + size f + size g
  | Exists (_, f) | Forall (_, f) | Exists_adom (_, f) | Forall_adom (_, f) ->
      1 + size f

let rec atom_count = function
  | True | False -> 0
  | Atom _ | Rel _ -> 1
  | Not f -> atom_count f
  | And (f, g) | Or (f, g) -> atom_count f + atom_count g
  | Exists (_, f) | Forall (_, f) | Exists_adom (_, f) | Forall_adom (_, f) ->
      atom_count f

let rec quantifier_count = function
  | True | False | Atom _ | Rel _ -> 0
  | Not f -> quantifier_count f
  | And (f, g) | Or (f, g) -> quantifier_count f + quantifier_count g
  | Exists (_, f) | Forall (_, f) | Exists_adom (_, f) | Forall_adom (_, f) ->
      1 + quantifier_count f

let rec quantifier_rank = function
  | True | False | Atom _ | Rel _ -> 0
  | Not f -> quantifier_rank f
  | And (f, g) | Or (f, g) -> Stdlib.max (quantifier_rank f) (quantifier_rank g)
  | Exists (_, f) | Forall (_, f) | Exists_adom (_, f) | Forall_adom (_, f) ->
      1 + quantifier_rank f

let is_quantifier_free f = quantifier_count f = 0

let rec active_only = function
  | True | False | Atom _ | Rel _ -> true
  | Not f -> active_only f
  | And (f, g) | Or (f, g) -> active_only f && active_only g
  | Exists (_, _) | Forall (_, _) -> false
  | Exists_adom (_, f) | Forall_adom (_, f) -> active_only f

let pp pp_atom fmt f =
  let rec go fmt = function
    | True -> Format.pp_print_string fmt "true"
    | False -> Format.pp_print_string fmt "false"
    | Atom a -> pp_atom fmt a
    | Rel (r, vs) ->
        Format.fprintf fmt "%s(%a)" r
          (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Var.pp)
          vs
    | Not g -> Format.fprintf fmt "~(%a)" go g
    | And (g, h) -> Format.fprintf fmt "(%a /\\ %a)" go g go h
    | Or (g, h) -> Format.fprintf fmt "(%a \\/ %a)" go g go h
    | Exists (v, g) -> Format.fprintf fmt "(E %a. %a)" Var.pp v go g
    | Forall (v, g) -> Format.fprintf fmt "(A %a. %a)" Var.pp v go g
    | Exists_adom (v, g) -> Format.fprintf fmt "(E %a in adom. %a)" Var.pp v go g
    | Forall_adom (v, g) -> Format.fprintf fmt "(A %a in adom. %a)" Var.pp v go g
  in
  go fmt f
