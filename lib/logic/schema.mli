(** Relational database schemas: named relation symbols with arities. *)

type t

val empty : t
val add : string -> int -> t -> t
(** @raise Invalid_argument on duplicate name or non-positive arity. *)

val of_list : (string * int) list -> t
val arity : t -> string -> int option
val arity_exn : t -> string -> int
val mem : t -> string -> bool
val names : t -> string list
val pp : Format.formatter -> t -> unit
