(** First-order variables: interned names with a fresh-name supply. *)

type t = string

val of_string : string -> t
val name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

val fresh : ?hint:string -> unit -> t
(** A globally fresh variable; fresh names contain ['#'] so they can never
    collide with parsed user variables. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
