open Cqa_arith

type gate =
  | Input of int
  | Const of bool
  | And of int list
  | Or of int list
  | Not of int

type t = { gates : gate array; output : int; inputs : int }

let input_count c = c.inputs

let gate_count c =
  Array.fold_left
    (fun acc g -> match g with Input _ | Const _ -> acc | _ -> acc + 1)
    0 c.gates

let depth c =
  let memo = Array.make (Array.length c.gates) (-1) in
  let rec d i =
    if memo.(i) >= 0 then memo.(i)
    else begin
      let v =
        match c.gates.(i) with
        | Input _ | Const _ -> 0
        | Not j -> 1 + d j
        | And js | Or js -> 1 + List.fold_left (fun m j -> max m (d j)) 0 js
      in
      memo.(i) <- v;
      v
    end
  in
  d c.output

let eval c input =
  if Array.length input <> c.inputs then invalid_arg "Circuit.eval: bad input size";
  let memo = Array.make (Array.length c.gates) None in
  let rec v i =
    match memo.(i) with
    | Some b -> b
    | None ->
        let b =
          match c.gates.(i) with
          | Input k -> input.(k)
          | Const b -> b
          | Not j -> not (v j)
          | And js -> List.for_all v js
          | Or js -> List.exists v js
        in
        memo.(i) <- Some b;
        b
  in
  v c.output

type atom =
  | Lt of Var.t * Var.t
  | Eq of Var.t * Var.t
  | Pred of int * Var.t

let atom_vars = function
  | Lt (x, y) | Eq (x, y) -> [ x; y ]
  | Pred (_, x) -> [ x ]

(* Builder accumulating gates in a growable buffer. *)
type builder = { mutable buf : gate list; mutable len : int }

let emit b g =
  b.buf <- g :: b.buf;
  b.len <- b.len + 1;
  b.len - 1

let of_sentence ~preds ~n f =
  (match Var.Set.elements (Formula.free_vars ~atom_vars f) with
  | [] -> ()
  | v :: _ ->
      invalid_arg ("Circuit.of_sentence: free variable " ^ Var.name v));
  let b = { buf = []; len = 0 } in
  (* pre-emit inputs so Input k is gate k *)
  for k = 0 to (preds * n) - 1 do
    ignore (emit b (Input k))
  done;
  let lookup env v =
    match Var.Map.find_opt v env with
    | Some i -> i
    | None -> invalid_arg "Circuit.of_sentence: unbound variable"
  in
  let rec go env = function
    | Formula.True -> emit b (Const true)
    | Formula.False -> emit b (Const false)
    | Formula.Atom (Lt (x, y)) -> emit b (Const (lookup env x < lookup env y))
    | Formula.Atom (Eq (x, y)) -> emit b (Const (lookup env x = lookup env y))
    | Formula.Atom (Pred (p, x)) ->
        let pos = lookup env x in
        if p < 0 || p >= preds then invalid_arg "Circuit.of_sentence: bad predicate";
        (p * n) + pos
    | Formula.Rel _ -> invalid_arg "Circuit.of_sentence: schema atom"
    | Formula.Not g -> emit b (Not (go env g))
    | Formula.And (g, h) ->
        let ig = go env g in
        let ih = go env h in
        emit b (And [ ig; ih ])
    | Formula.Or (g, h) ->
        let ig = go env g in
        let ih = go env h in
        emit b (Or [ ig; ih ])
    | Formula.Exists (v, g) | Formula.Exists_adom (v, g) ->
        let children =
          List.init n (fun i -> go (Var.Map.add v i env) g)
        in
        emit b (Or children)
    | Formula.Forall (v, g) | Formula.Forall_adom (v, g) ->
        let children =
          List.init n (fun i -> go (Var.Map.add v i env) g)
        in
        emit b (And children)
  in
  let output = go Var.Map.empty f in
  let gates = Array.of_list (List.rev b.buf) in
  { gates; output; inputs = preds * n }

let separates_cardinalities ~c1 ~c2 ~n circuit =
  if circuit.inputs <> n then invalid_arg "Circuit.separates_cardinalities";
  let lo = Q.mul c1 (Q.of_int n) and hi = Q.mul c2 (Q.of_int n) in
  let input = Array.make n false in
  let ok = ref true in
  let total = 1 lsl n in
  let mask = ref 0 in
  while !ok && !mask < total do
    let card = ref 0 in
    for i = 0 to n - 1 do
      let bit = (!mask lsr i) land 1 = 1 in
      input.(i) <- bit;
      if bit then incr card
    done;
    let c = Q.of_int !card in
    if Q.lt c lo && eval circuit input then ok := false
    else if Q.gt c hi && not (eval circuit input) then ok := false;
    incr mask
  done;
  !ok
