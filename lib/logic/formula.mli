(** First-order formulas over an abstract constraint-atom type ['a] and a
    relational schema.

    The constraint atoms (linear inequalities, polynomial sign conditions,
    ...) are supplied by the instantiating library; schema atoms apply a
    relation symbol to variables.  Both natural ([Exists]/[Forall], ranging
    over all of R) and active-domain ([Exists_adom]/[Forall_adom])
    quantification are provided, matching FO and FO_act of the paper. *)

type 'a t =
  | True
  | False
  | Atom of 'a
  | Rel of string * Var.t list
  | Not of 'a t
  | And of 'a t * 'a t
  | Or of 'a t * 'a t
  | Exists of Var.t * 'a t
  | Forall of Var.t * 'a t
  | Exists_adom of Var.t * 'a t
  | Forall_adom of Var.t * 'a t

val conj : 'a t list -> 'a t
val disj : 'a t list -> 'a t
val implies : 'a t -> 'a t -> 'a t
val iff : 'a t -> 'a t -> 'a t
val exists_many : Var.t list -> 'a t -> 'a t
val forall_many : Var.t list -> 'a t -> 'a t

val map_atoms : ('a -> 'b t) -> 'a t -> 'b t
(** Replace every constraint atom by a formula (e.g. for normalization). *)

val atoms : 'a t -> 'a list
val fold_atoms : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val relations : 'a t -> string list
(** Relation symbols used, duplicate-free. *)

val free_vars : atom_vars:('a -> Var.t list) -> 'a t -> Var.Set.t

val rename : (Var.t -> Var.t) -> rename_atom:((Var.t -> Var.t) -> 'a -> 'a) -> 'a t -> 'a t
(** Simultaneous variable renaming.  Not capture-avoiding: callers must
    supply a renaming injective on the free and bound variables involved (the
    evaluators always use globally fresh names). *)

val nnf : negate_atom:('a -> 'a t) -> 'a t -> 'a t
(** Negation normal form; [negate_atom] expresses the complement of an atom
    (atomically or as a small formula). *)

val size : 'a t -> int
(** Connective + atom count. *)

val atom_count : 'a t -> int
val quantifier_count : 'a t -> int
val quantifier_rank : 'a t -> int
val is_quantifier_free : 'a t -> bool
val active_only : 'a t -> bool
(** True when all quantifiers are active-domain (the FO_act fragment). *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
