(** Unbounded fan-in boolean circuits (the AC0 model) and the translation
    from active-domain FO sentences over finite ordered structures into
    circuit families.

    Lemma 3 of the paper converts a hypothetical [(c1,c2)]-good sentence into
    a family of non-uniform AC0 circuits separating cardinalities, which is
    impossible.  Here the conversion is executable: a sentence over the
    signature [(<, =, U_1 .. U_p)] becomes, for each universe size [n], a
    circuit whose inputs are the characteristic vectors of the [U_i]. *)

open Cqa_arith

type gate =
  | Input of int
  | Const of bool
  | And of int list
  | Or of int list
  | Not of int

type t

val input_count : t -> int
val gate_count : t -> int
(** Non-input, non-constant gate count (the usual size measure). *)

val depth : t -> int
(** Alternation-free depth: longest path counting And/Or/Not gates. *)

val eval : t -> bool array -> bool
(** @raise Invalid_argument on input vector of the wrong length. *)

(** Atoms of FO over finite ordered structures with unary predicates. *)
type atom =
  | Lt of Var.t * Var.t
  | Eq of Var.t * Var.t
  | Pred of int * Var.t  (** [Pred (p, x)]: position [x] is in predicate [p]. *)

val atom_vars : atom -> Var.t list

val of_sentence : preds:int -> n:int -> atom Formula.t -> t
(** Translate a sentence (no free variables) into a circuit on [preds * n]
    inputs laid out predicate-major.  Quantifiers of either kind range over
    the [n]-element universe.  @raise Invalid_argument on free variables or
    schema atoms. *)

val separates_cardinalities :
  c1:Q.t -> c2:Q.t -> n:int -> t -> bool
(** Exhaustive check over all [2^n] subsets [B] (single-predicate circuits):
    does the circuit accept whenever [|B| > c2*n] and reject whenever
    [|B| < c1*n]?  This is the [(c1,c2)]-good sentence condition of
    Theorem 2 at universe size [n]. *)
