open Cqa_arith

type tuple = Q.t array

module Qset = Set.Make (struct
  type t = Q.t

  let compare = Q.compare
end)

let compare_tuple a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i >= la then 0
      else begin
        let c = Q.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
      end
    in
    go 0
  end

module Tset = Set.Make (struct
  type t = tuple

  let compare = compare_tuple
end)

module M = Map.Make (String)

type t = { schema : Schema.t; rels : Tset.t M.t }

let empty schema = { schema; rels = M.empty }
let schema t = t.schema

let add name tup t =
  match Schema.arity t.schema name with
  | None -> invalid_arg ("Instance.add: unknown relation " ^ name)
  | Some a when a <> Array.length tup ->
      invalid_arg ("Instance.add: arity mismatch for " ^ name)
  | Some _ ->
      let cur = Option.value ~default:Tset.empty (M.find_opt name t.rels) in
      { t with rels = M.add name (Tset.add tup cur) t.rels }

let of_list schema l =
  List.fold_left
    (fun t (name, tuples) -> List.fold_left (fun t tup -> add name tup t) t tuples)
    (empty schema) l

let tuples t name =
  match M.find_opt name t.rels with
  | None -> []
  | Some s -> Tset.elements s

let mem t name tup =
  match M.find_opt name t.rels with
  | None -> false
  | Some s -> Tset.mem tup s

let cardinality t name =
  match M.find_opt name t.rels with None -> 0 | Some s -> Tset.cardinal s

let active_domain_set t =
  M.fold
    (fun _ s acc ->
      Tset.fold (fun tup acc -> Array.fold_left (fun a q -> Qset.add q a) acc tup) s acc)
    t.rels Qset.empty

let active_domain t = Qset.elements (active_domain_set t)
let size t = Qset.cardinal (active_domain_set t)

let map_constants f t =
  { t with
    rels = M.map (fun s -> Tset.map (fun tup -> Array.map f tup) s) t.rels }

let pp fmt t =
  let pp_tuple f tup =
    Format.fprintf f "(%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") Q.pp)
      (Array.to_list tup)
  in
  M.iter
    (fun name s ->
      Format.fprintf fmt "@[<hov 2>%s = {%a}@]@ " name
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ", ") pp_tuple)
        (Tset.elements s))
    t.rels
