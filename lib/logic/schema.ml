module M = Map.Make (String)

type t = int M.t

let empty = M.empty

let add name arity t =
  if arity <= 0 then invalid_arg "Schema.add: non-positive arity";
  if M.mem name t then invalid_arg ("Schema.add: duplicate relation " ^ name);
  M.add name arity t

let of_list l = List.fold_left (fun t (n, a) -> add n a t) empty l
let arity t name = M.find_opt name t

let arity_exn t name =
  match M.find_opt name t with
  | Some a -> a
  | None -> invalid_arg ("Schema.arity_exn: unknown relation " ^ name)

let mem t name = M.mem name t
let names t = List.map fst (M.bindings t)

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f "; ")
       (fun f (n, a) -> Format.fprintf f "%s/%d" n a))
    (M.bindings t)
