(** Finite database instances: each schema relation is a finite set of
    rational tuples.  This is the "classical" side of the paper's setting;
    finitely representable (constraint) instances live in [cqa_linear] and
    [cqa_poly]. *)

open Cqa_arith

type tuple = Q.t array

and t

val empty : Schema.t -> t
val schema : t -> Schema.t

val add : string -> tuple -> t -> t
(** @raise Invalid_argument on unknown relation or arity mismatch. *)

val of_list : Schema.t -> (string * tuple list) list -> t
val tuples : t -> string -> tuple list
(** Sorted, duplicate-free. Empty list for relations with no tuples. *)

val mem : t -> string -> tuple -> bool
val cardinality : t -> string -> int

val active_domain : t -> Q.t list
(** All constants occurring in any relation, sorted ascending,
    duplicate-free. *)

val size : t -> int
(** [card (adom D)], the paper's measure |D|. *)

val map_constants : (Q.t -> Q.t) -> t -> t
val pp : Format.formatter -> t -> unit

module Qset : Set.S with type elt = Q.t
