(** Ehrenfeucht-Fraisse games on finite colored linear orders.

    Proposition 1 of the paper (no [(c1,c2)]-separating sentence over an
    o-minimal structure) reduces separation to FO over [(U1, U2, <)] on an
    infinite subset and kills it with EF games.  This module makes the game
    argument executable on finite structures: a brute-force game solver, the
    classical threshold theorem for pure linear orders, and the block
    construction used to defeat would-be separating sentences. *)

open Cqa_arith

type structure = { size : int; colors : bool array array }
(** A linear order [0 .. size-1]; [colors.(c).(i)] says position [i] has
    color [c].  All structures in one game must agree on the color count. *)

val make : int -> bool array array -> structure
(** @raise Invalid_argument on color rows of the wrong length. *)

val uncolored : int -> structure
val of_color_sets : int -> int list list -> structure
(** [of_color_sets n sets] builds colors from position lists. *)

val duplicator_wins : int -> structure -> structure -> bool
(** [duplicator_wins k a b]: does the duplicator win the [k]-round EF game?
    Exhaustive search; exponential, intended for small structures. *)

val linear_orders_equivalent : int -> int -> int -> bool
(** Classical theorem: duplicator wins the [k]-round game on pure linear
    orders of sizes [m], [n] iff [m = n] or both are >= [2^k - 1]. *)

val separating_counterexample :
  rounds:int -> c1:Q.t -> c2:Q.t -> (structure * structure) option
(** Search (over block constructions) for two 1-color structures [a], [b]
    such that in [a] the colored set is more than [c1] times larger than its
    complement, in [b] the complement is more than [c2] times larger, yet the
    duplicator wins the [rounds]-round game -- witnessing that no rank-[rounds]
    FO(<) sentence is [(c1,c2)]-separating. *)
