type t = string

let of_string s = s
let name v = v
let compare = String.compare
let equal = String.equal

let counter = ref 0

let fresh ?(hint = "v") () =
  incr counter;
  Printf.sprintf "%s#%d" hint !counter

let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)
