open Cqa_arith

type structure = { size : int; colors : bool array array }

let make size colors =
  Array.iter
    (fun row ->
      if Array.length row <> size then
        invalid_arg "Ef_game.make: color row length mismatch")
    colors;
  { size; colors }

let uncolored size = { size; colors = [||] }

let of_color_sets size sets =
  let colors =
    List.map
      (fun positions ->
        let row = Array.make size false in
        List.iter
          (fun i ->
            if i < 0 || i >= size then invalid_arg "Ef_game.of_color_sets";
            row.(i) <- true)
          positions;
        row)
      sets
  in
  make size (Array.of_list colors)

let colors_agree a b i j =
  let ca = Array.length a.colors in
  ca = Array.length b.colors
  && begin
       let rec go c = c >= ca || (a.colors.(c).(i) = b.colors.(c).(j) && go (c + 1)) in
       go 0
     end

let consistent a b pairs i j =
  colors_agree a b i j
  && List.for_all (fun (i', j') -> compare i i' = compare j j') pairs

let duplicator_wins k a b =
  let rec wins k pairs =
    k = 0
    || begin
         let respond_b i =
           let rec try_j j =
             j < b.size
             && ((consistent a b pairs i j && wins (k - 1) ((i, j) :: pairs))
                || try_j (j + 1))
           in
           try_j 0
         in
         let respond_a j =
           let rec try_i i =
             i < a.size
             && ((consistent a b pairs i j && wins (k - 1) ((i, j) :: pairs))
                || try_i (i + 1))
           in
           try_i 0
         in
         let rec all_a i = i >= a.size || (respond_b i && all_a (i + 1)) in
         let rec all_b j = j >= b.size || (respond_a j && all_b (j + 1)) in
         all_a 0 && all_b 0
       end
  in
  Array.length a.colors = Array.length b.colors && wins k []

let linear_orders_equivalent k m n =
  let t = (1 lsl k) - 1 in
  m = n || (m >= t && n >= t)

(* Two one-color structures, each a U-block followed by a non-U block, with
   every block of length >= 2^k - 1, are k-round equivalent (game
   composition).  Pick block sizes realizing the cardinality gaps. *)
let separating_counterexample ~rounds ~c1 ~c2 =
  if Q.leq c1 Q.one || Q.leq c2 Q.one then None
  else begin
    let t = (1 lsl rounds) - 1 in
    let t = max t 1 in
    let bump c =
      (* smallest integer > c * t *)
      let v = Q.mul c (Q.of_int t) in
      let f = Q.floor v in
      match Bigint.to_int_opt (Bigint.succ f) with
      | Some n -> max n (t + 1)
      | None -> invalid_arg "Ef_game.separating_counterexample: huge constant"
    in
    let block u_len rest_len =
      let size = u_len + rest_len in
      let row = Array.init size (fun i -> i < u_len) in
      { size; colors = [| row |] }
    in
    let a = block (bump c1) t in
    let b = block t (bump c2) in
    Some (a, b)
  end
