open Cqa_core

type target = Formula of Ast.formula | Term of Ast.term

type options = { endpoints : int; threshold : float }

let default_options = { endpoints = 8; threshold = 1e6 }

type result = {
  target : target;
  diagnostics : Diagnostic.t list;
  scope : Scope.report;
  classification : Fragment.classification;
  hint : Dispatch.hint;
  cost : Cost.estimate;
}

let safety_code = function
  | Safety.Unknown_relation _ -> ("unknown-relation", Diagnostic.Error)
  | Safety.Arity_mismatch _ -> ("arity-mismatch", Diagnostic.Error)
  | Safety.Empty_sum_tuple -> ("empty-sum-tuple", Diagnostic.Error)
  | Safety.Nondeterministic_gamma _ ->
      ("nondeterministic-gamma", Diagnostic.Error)
  | Safety.Undecided_gamma _ -> ("undecided-gamma", Diagnostic.Info)

let safety_pass db target =
  let issues =
    match target with
    | Formula f -> Safety.check_formula db f
    | Term t -> Safety.check_term db t
  in
  List.map
    (fun issue ->
      let code, severity = safety_code issue in
      {
        Diagnostic.severity;
        code;
        path = [];
        message = Format.asprintf "%a" Safety.pp_issue issue;
      })
    issues

let analyze ?db ?(options = default_options) target =
  let scope, scope_diags =
    match target with
    | Formula f -> (Scope.report_formula f, Scope.check_formula f)
    | Term t -> (Scope.report_term t, Scope.check_term t)
  in
  let classification, frag_diags =
    match target with
    | Formula f -> Fragment.classify_formula ?db f
    | Term t -> Fragment.classify_term ?db t
  in
  let range_diags =
    match target with
    | Formula f -> Range.check_formula ?db f
    | Term t -> Range.check_term ?db t
  in
  let cost =
    match target with
    | Formula f -> Cost.estimate_formula ~endpoints:options.endpoints f
    | Term t -> Cost.estimate_term ~endpoints:options.endpoints t
  in
  let cost_diags = Cost.check ~threshold:options.threshold cost in
  let safety_diags =
    match db with None -> [] | Some db -> safety_pass db target
  in
  {
    target;
    diagnostics =
      Diagnostic.sort
        (safety_diags @ scope_diags @ frag_diags @ range_diags @ cost_diags);
    scope;
    classification;
    hint = classification.Fragment.hint;
    cost;
  }

let analyze_formula ?db ?options f = analyze ?db ?options (Formula f)
let analyze_term ?db ?options t = analyze ?db ?options (Term t)
let error_count r = Diagnostic.count Diagnostic.Error r.diagnostics
let warning_count r = Diagnostic.count Diagnostic.Warning r.diagnostics

let ok ?(deny_warnings = false) r =
  error_count r = 0 && ((not deny_warnings) || warning_count r = 0)

let pp_target fmt = function
  | Formula f -> Ast.pp fmt f
  | Term t -> Ast.pp_term fmt t

(* compiled programs render to pages; keep the human header skimmable *)
let truncated_target r =
  let s = Format.asprintf "%a" pp_target r.target in
  if String.length s <= 160 then s else String.sub s 0 157 ^ "..."

let pp_result ?(show_info = false) fmt r =
  Format.fprintf fmt "@[<v>query: %s@," (truncated_target r);
  Format.fprintf fmt "fragment: %a@," Fragment.pp_classification
    r.classification;
  Format.fprintf fmt "scope: %a@," Scope.pp_report r.scope;
  Format.fprintf fmt "cost: %a@," Cost.pp_estimate r.cost;
  let shown =
    if show_info then r.diagnostics
    else
      List.filter
        (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
        r.diagnostics
  in
  Format.fprintf fmt "diagnostics: %d error(s), %d warning(s)%s"
    (error_count r) (warning_count r)
    (if shown = [] then "" else ":");
  List.iter (fun d -> Format.fprintf fmt "@,  %a" Diagnostic.pp d) shown;
  Format.fprintf fmt "@]"

let result_to_json r =
  Printf.sprintf
    {|{"query":"%s","hint":"%s","classification":%s,"scope":%s,"cost":%s,"errors":%d,"warnings":%d,"diagnostics":%s}|}
    (Diagnostic.json_escape (Format.asprintf "%a" pp_target r.target))
    (Dispatch.to_string r.hint)
    (Fragment.classification_to_json r.classification)
    (Scope.report_to_json r.scope)
    (Cost.estimate_to_json r.cost)
    (error_count r) (warning_count r)
    (Diagnostic.list_to_json r.diagnostics)
