(** Pass 2: fragment classification.

    Labels a query inside the FO+LIN ⊆ FO+POLY ⊆ FO+POLY+SUM hierarchy, both
    {e syntactically} (as spelled) and {e normalized} (after multiplying out
    polynomial atoms and constant-folding closed summations), and derives a
    static {!Cqa_core.Dispatch.hint} so provably semi-linear queries can be
    routed to the Theorem 3 exact-volume engine without the runtime
    linearity probe. *)

open Cqa_core

type frag = Lin | Poly | Sum

val fragment_name : frag -> string
(** ["FO+LIN"], ["FO+POLY"], ["FO+POLY+SUM"]. *)

val join : frag -> frag -> frag

type classification = {
  syntactic : frag;
  normalized : frag;
  atoms : int;  (** comparison + relation atoms, including inside sums *)
  nonlinear_spelled : int;  (** atoms spelled with variable products *)
  nonlinear_normalized : int;  (** atoms still nonlinear after normalizing *)
  sum_terms : int;
  open_sums : int;  (** summations with free variables: never foldable *)
  reducible_sums : int;
      (** closed summations whose sections the linear reducer handles *)
  semialg_relations : int;
  hint : Dispatch.hint;
}

val classify_formula : ?db:Db.t -> Ast.formula -> classification * Diagnostic.t list
val classify_term : ?db:Db.t -> Ast.term -> classification * Diagnostic.t list
(** The hint is [Exact_semilinear] iff the normalized query is FO+LIN (every
    atom normalizes to a linear comparison, every summation is closed and
    linear-reducible) and, when [db] is given, every interpreted relation is
    semi-linear.  Diagnostic codes (all [Info]): [poly-spelled-linear],
    [nonlinear-atom], [closed-sum], [open-sum], [semialgebraic-relation]. *)

val pp_classification : Format.formatter -> classification -> unit
val classification_to_json : classification -> string
