open Cqa_logic
open Cqa_core

type report = {
  quantifier_rank : int;
  quantifier_count : int;
  sum_depth : int;
  sum_count : int;
  binder_count : int;
}

let rec f_rank (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> 0
  | Ast.Cmp (_, a, b) -> max (t_rank a) (t_rank b)
  | Ast.Not g -> f_rank g
  | Ast.And (g, h) | Ast.Or (g, h) -> max (f_rank g) (f_rank h)
  | Ast.Exists (_, g) | Ast.Forall (_, g) -> 1 + f_rank g

and t_rank (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> 0
  | Ast.Add (a, b) | Ast.Mul (a, b) -> max (t_rank a) (t_rank b)
  | Ast.Sum s ->
      max (f_rank s.Ast.guard) (max (f_rank s.Ast.gamma) (f_rank s.Ast.end_body))

let rec f_sum_depth (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> 0
  | Ast.Cmp (_, a, b) -> max (Ast.sum_depth a) (Ast.sum_depth b)
  | Ast.Not g -> f_sum_depth g
  | Ast.And (g, h) | Ast.Or (g, h) -> max (f_sum_depth g) (f_sum_depth h)
  | Ast.Exists (_, g) | Ast.Forall (_, g) -> f_sum_depth g

(* (quantifiers, sums, binders) *)
let rec f_counts (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> (0, 0, 0)
  | Ast.Cmp (_, a, b) -> add3 (t_counts a) (t_counts b)
  | Ast.Not g -> f_counts g
  | Ast.And (g, h) | Ast.Or (g, h) -> add3 (f_counts g) (f_counts h)
  | Ast.Exists (_, g) | Ast.Forall (_, g) ->
      let q, s, b = f_counts g in
      (q + 1, s, b + 1)

and t_counts (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> (0, 0, 0)
  | Ast.Add (a, b) | Ast.Mul (a, b) -> add3 (t_counts a) (t_counts b)
  | Ast.Sum s ->
      let q, n, b =
        add3 (f_counts s.Ast.guard)
          (add3 (f_counts s.Ast.gamma) (f_counts s.Ast.end_body))
      in
      (q, n + 1, b + List.length s.Ast.w + 2)

and add3 (a, b, c) (a', b', c') = (a + a', b + b', c + c')

let report_formula f =
  let quantifier_count, sum_count, binder_count = f_counts f in
  {
    quantifier_rank = f_rank f;
    quantifier_count;
    sum_depth = f_sum_depth f;
    sum_count;
    binder_count;
  }

let report_term t =
  let quantifier_count, sum_count, binder_count = t_counts t in
  {
    quantifier_rank = t_rank t;
    quantifier_count;
    sum_depth = Ast.sum_depth t;
    sum_count;
    binder_count;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "quantifier rank %d (%d quantifiers), sum depth %d (%d summations), %d \
     binders"
    r.quantifier_rank r.quantifier_count r.sum_depth r.sum_count r.binder_count

let report_to_json r =
  Printf.sprintf
    {|{"quantifier_rank":%d,"quantifier_count":%d,"sum_depth":%d,"sum_count":%d,"binder_count":%d}|}
    r.quantifier_rank r.quantifier_count r.sum_depth r.sum_count r.binder_count

let vname v = Format.asprintf "%a" Var.pp v

let shadow diags path v where =
  diags :=
    Diagnostic.warning ~code:"shadowed-binder" ~path
      "%s binder %s shadows an enclosing binding of %s" where (vname v)
      (vname v)
    :: !diags

let rec walk_f diags bound path (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> ()
  | Ast.Cmp (_, a, b) ->
      walk_t diags bound (path @ [ "cmp.l" ]) a;
      walk_t diags bound (path @ [ "cmp.r" ]) b
  | Ast.Not g -> walk_f diags bound (path @ [ "not" ]) g
  | Ast.And (g, h) ->
      walk_f diags bound (path @ [ "and.l" ]) g;
      walk_f diags bound (path @ [ "and.r" ]) h
  | Ast.Or (g, h) ->
      walk_f diags bound (path @ [ "or.l" ]) g;
      walk_f diags bound (path @ [ "or.r" ]) h
  | Ast.Exists (x, g) | Ast.Forall (x, g) ->
      let q = match f with Ast.Exists _ -> "exists" | _ -> "forall" in
      let seg = Printf.sprintf "%s:%s" q (vname x) in
      if Var.Set.mem x bound then shadow diags path x "quantifier";
      if not (Var.Set.mem x (Ast.free_vars g)) then
        diags :=
          Diagnostic.warning ~code:"unused-binder" ~path
            "quantified variable %s does not occur in its body" (vname x)
          :: !diags;
      walk_f diags (Var.Set.add x bound) (path @ [ seg ]) g

and walk_t diags bound path (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> ()
  | Ast.Add (a, b) ->
      walk_t diags bound (path @ [ "add.l" ]) a;
      walk_t diags bound (path @ [ "add.r" ]) b
  | Ast.Mul (a, b) ->
      walk_t diags bound (path @ [ "mul.l" ]) a;
      walk_t diags bound (path @ [ "mul.r" ]) b
  | Ast.Sum s -> walk_sum diags bound (path @ [ "sum" ]) s

and walk_sum diags bound path (s : Ast.sum_spec) =
  let err code fmt = Format.kasprintf (fun m ->
      diags := { Diagnostic.severity = Error; code; path; message = m } :: !diags)
      fmt
  and warn code fmt = Format.kasprintf (fun m ->
      diags :=
        { Diagnostic.severity = Warning; code; path; message = m } :: !diags)
      fmt
  in
  (* tuple hygiene *)
  let rec dups = function
    | [] -> []
    | v :: rest -> (if List.mem v rest then [ v ] else []) @ dups rest
  in
  List.iter
    (fun v ->
      err "duplicate-tuple-var" "tuple variable %s repeats in the SUM tuple"
        (vname v))
    (dups s.Ast.w);
  List.iter
    (fun v -> if Var.Set.mem v bound then shadow diags path v "tuple")
    s.Ast.w;
  if Var.Set.mem s.Ast.gamma_var bound || List.mem s.Ast.gamma_var s.Ast.w then
    shadow diags path s.Ast.gamma_var "output";
  if Var.Set.mem s.Ast.end_y bound then shadow diags path s.Ast.end_y "END";
  let guard_free = Ast.free_vars s.Ast.guard in
  let gamma_free = Ast.free_vars s.Ast.gamma in
  let end_free = Ast.free_vars s.Ast.end_body in
  let outer v = Var.Set.mem v bound in
  (* section leaks: guard/gamma see the tuple only; end_body sees end_y only *)
  if
    Var.Set.mem s.Ast.gamma_var guard_free
    && (not (outer s.Ast.gamma_var))
    && not (List.mem s.Ast.gamma_var s.Ast.w)
  then
    err "gamma-var-leak"
      "output variable %s occurs free in the guard; it is only bound inside \
       gamma"
      (vname s.Ast.gamma_var);
  if
    Var.Set.mem s.Ast.end_y guard_free
    && (not (outer s.Ast.end_y))
    && not (List.mem s.Ast.end_y s.Ast.w)
  then
    warn "end-var-leak"
      "END variable %s occurs free in the guard; the END binder does not \
       scope over the guard"
      (vname s.Ast.end_y);
  if
    Var.Set.mem s.Ast.end_y gamma_free
    && (not (outer s.Ast.end_y))
    && (not (List.mem s.Ast.end_y s.Ast.w))
    && not (Var.equal s.Ast.end_y s.Ast.gamma_var)
  then
    warn "end-var-leak"
      "END variable %s occurs free in gamma; the END binder does not scope \
       over gamma"
      (vname s.Ast.end_y);
  List.iter
    (fun v ->
      if Var.Set.mem v end_free && (not (outer v)) && not (Var.equal v s.Ast.end_y)
      then
        err "tuple-var-in-end"
          "tuple variable %s occurs free in the END body, but END is \
           evaluated before the tuple is bound"
          (vname v))
    s.Ast.w;
  (* unused binders *)
  List.iter
    (fun v ->
      if not (Var.Set.mem v guard_free || Var.Set.mem v gamma_free) then
        warn "unused-binder"
          "tuple variable %s is used in neither the guard nor gamma" (vname v))
    s.Ast.w;
  if not (Var.Set.mem s.Ast.gamma_var gamma_free) then
    warn "unused-binder"
      "output variable %s is not constrained by gamma (gamma cannot be \
       deterministic)"
      (vname s.Ast.gamma_var);
  if not (Var.Set.mem s.Ast.end_y end_free) then
    warn "unused-binder"
      "END variable %s does not occur in the END body; the range restriction \
       is vacuous"
      (vname s.Ast.end_y);
  let bound_w = List.fold_left (fun acc v -> Var.Set.add v acc) bound s.Ast.w in
  walk_f diags bound_w (path @ [ "guard" ]) s.Ast.guard;
  walk_f diags
    (Var.Set.add s.Ast.gamma_var bound_w)
    (path @ [ "gamma" ])
    s.Ast.gamma;
  walk_f diags
    (Var.Set.add s.Ast.end_y bound)
    (path @ [ "end" ])
    s.Ast.end_body

let check_formula f =
  let diags = ref [] in
  walk_f diags Var.Set.empty [] f;
  List.rev !diags

let check_term t =
  let diags = ref [] in
  walk_t diags Var.Set.empty [] t;
  List.rev !diags
