open Cqa_logic
open Cqa_core
open Cqa_vc

type estimate = {
  atoms : int;
  quantifiers : int;
  free_var_count : int;
  sum_count : int;
  tuple_width : int;
  endpoints_assumed : int;
  projected_qe_atoms : float;
  projected_sum_points : float;
  km : Bounds.km_size option;
}

(* (atoms, quantifiers, sums, tuple width) *)
let rec f_stats (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False -> (0, 0, 0, 0)
  | Ast.Rel _ -> (1, 0, 0, 0)
  | Ast.Cmp (_, a, b) ->
      let x = add4 (t_stats a) (t_stats b) in
      add4 (1, 0, 0, 0) x
  | Ast.Not g -> f_stats g
  | Ast.And (g, h) | Ast.Or (g, h) -> add4 (f_stats g) (f_stats h)
  | Ast.Exists (_, g) | Ast.Forall (_, g) -> add4 (0, 1, 0, 0) (f_stats g)

and t_stats (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> (0, 0, 0, 0)
  | Ast.Add (a, b) | Ast.Mul (a, b) -> add4 (t_stats a) (t_stats b)
  | Ast.Sum s ->
      add4
        (0, 0, 1, List.length s.Ast.w)
        (add4 (f_stats s.Ast.guard)
           (add4 (f_stats s.Ast.gamma) (f_stats s.Ast.end_body)))

and add4 (a, b, c, d) (a', b', c', d') = (a + a', b + b', c + c', d + d')

(* Fourier-Motzkin worst case: eliminating one variable from m constraints
   can leave floor(m/2)*ceil(m/2) <= m^2/4 of them. *)
let qe_projection ~atoms ~quantifiers =
  let m = ref (float_of_int (max 2 atoms)) in
  for _ = 1 to quantifiers do
    if !m < 1e150 then m := Float.max !m (!m *. !m /. 4.)
  done;
  !m

let build ~endpoints ~free_var_count (atoms, quantifiers, sum_count, tuple_width)
    =
  let projected_qe_atoms = qe_projection ~atoms ~quantifiers in
  let projected_sum_points =
    if sum_count = 0 then 0.
    else float_of_int endpoints ** float_of_int tuple_width
  in
  let km =
    if free_var_count = 0 then None
    else
      Some
        (Bounds.km_formula_size ~eps:0.1 ~delta:0.25
           ~vc_dim:(free_var_count + 2) ~m:free_var_count
           ~atoms_in_phi:(max 1 atoms))
  in
  {
    atoms;
    quantifiers;
    free_var_count;
    sum_count;
    tuple_width;
    endpoints_assumed = endpoints;
    projected_qe_atoms;
    projected_sum_points;
    km;
  }

let estimate_formula ?(endpoints = 8) f =
  build ~endpoints
    ~free_var_count:(Var.Set.cardinal (Ast.free_vars f))
    (f_stats f)

let estimate_term ?(endpoints = 8) t =
  build ~endpoints
    ~free_var_count:(Var.Set.cardinal (Ast.term_free_vars t))
    (t_stats t)

let check ?(threshold = 1e6) e =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if e.projected_qe_atoms > threshold then
    add
      (Diagnostic.warning ~code:"qe-blowup" ~path:[]
         "projected quantifier-elimination blowup: eliminating %d quantifiers \
          from %d atoms can reach ~%.2g constraints (threshold %.2g); \
          consider the Theorem 4 sampling estimator"
         e.quantifiers e.atoms e.projected_qe_atoms threshold);
  if e.projected_sum_points > threshold then
    add
      (Diagnostic.warning ~code:"sum-blowup" ~path:[]
         "projected summation enumeration: %d tuple variables over ~%d \
          endpoints each is ~%.2g index points (threshold %.2g)"
         e.tuple_width e.endpoints_assumed e.projected_sum_points threshold);
  (match e.km with
  | Some km ->
      add
        (Diagnostic.info ~code:"cost" ~path:[]
           "%d atoms, %d quantifiers; projected QE atoms %.2g; a \
            derandomized eps=1/10 approximation would need ~%.2g atoms and \
            ~%.2g quantified reals (Section 3 model)"
           e.atoms e.quantifiers e.projected_qe_atoms km.Bounds.atoms
           km.Bounds.quantifiers)
  | None ->
      add
        (Diagnostic.info ~code:"cost" ~path:[]
           "%d atoms, %d quantifiers; projected QE atoms %.2g"
           e.atoms e.quantifiers e.projected_qe_atoms));
  List.rev !diags

let pp_estimate fmt e =
  Format.fprintf fmt
    "%d atoms, %d quantifiers, %d free vars; projected QE atoms %.3g" e.atoms
    e.quantifiers e.free_var_count e.projected_qe_atoms;
  if e.sum_count > 0 then
    Format.fprintf fmt
      "; %d summations (tuple width %d, ~%.3g index points at %d endpoints)"
      e.sum_count e.tuple_width e.projected_sum_points e.endpoints_assumed;
  match e.km with
  | Some km ->
      Format.fprintf fmt
        "; KM approximation ~%.3g atoms / ~%.3g quantified reals"
        km.Bounds.atoms km.Bounds.quantifiers
  | None -> ()

let estimate_to_json e =
  let km_json =
    match e.km with
    | None -> "null"
    | Some km ->
        Printf.sprintf
          {|{"sample_size":%d,"sample_vars":%d,"translates":%d,"quantifiers":%g,"atoms":%g}|}
          km.Bounds.sample_size km.Bounds.sample_vars km.Bounds.translates
          km.Bounds.quantifiers km.Bounds.atoms
  in
  Printf.sprintf
    {|{"atoms":%d,"quantifiers":%d,"free_vars":%d,"sum_count":%d,"tuple_width":%d,"endpoints_assumed":%d,"projected_qe_atoms":%g,"projected_sum_points":%g,"km":%s}|}
    e.atoms e.quantifiers e.free_var_count e.sum_count e.tuple_width
    e.endpoints_assumed e.projected_qe_atoms e.projected_sum_points km_json
