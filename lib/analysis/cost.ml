open Cqa_logic
open Cqa_core
open Cqa_vc

type estimate = {
  atoms : int;
  quantifiers : int;
  free_var_count : int;
  sum_count : int;
  tuple_width : int;
  endpoints_assumed : int;
  projected_qe_atoms : float;
  projected_sum_points : float;
  km : Bounds.km_size option;
}

(* The syntactic walk and the worst-case projections are shared with the
   runtime guard (Volume_exact.volume_guarded) through Dispatch, so the
   static diagnostics and the budget-guarded dispatch can never disagree on
   a query's projected cost. *)
let build ~endpoints ~free_var_count (p : Dispatch.cost_profile) =
  let projected_qe_atoms = Dispatch.projected_qe_atoms p in
  let projected_sum_points = Dispatch.projected_sum_points ~endpoints p in
  let km =
    if free_var_count = 0 then None
    else
      Some
        (Bounds.km_formula_size ~eps:0.1 ~delta:0.25
           ~vc_dim:(free_var_count + 2) ~m:free_var_count
           ~atoms_in_phi:(max 1 p.Dispatch.atoms))
  in
  {
    atoms = p.Dispatch.atoms;
    quantifiers = p.Dispatch.quantifiers;
    free_var_count;
    sum_count = p.Dispatch.sum_count;
    tuple_width = p.Dispatch.tuple_width;
    endpoints_assumed = endpoints;
    projected_qe_atoms;
    projected_sum_points;
    km;
  }

let estimate_formula ?(endpoints = 8) f =
  build ~endpoints
    ~free_var_count:(Var.Set.cardinal (Ast.free_vars f))
    (Dispatch.profile_formula f)

let estimate_term ?(endpoints = 8) t =
  build ~endpoints
    ~free_var_count:(Var.Set.cardinal (Ast.term_free_vars t))
    (Dispatch.profile_term t)

let check ?(threshold = 1e6) e =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  if e.projected_qe_atoms > threshold then
    add
      (Diagnostic.warning ~code:"qe-blowup" ~path:[]
         "projected quantifier-elimination blowup: eliminating %d quantifiers \
          from %d atoms can reach ~%.2g constraints (threshold %.2g); \
          consider the Theorem 4 sampling estimator"
         e.quantifiers e.atoms e.projected_qe_atoms threshold);
  if e.projected_sum_points > threshold then
    add
      (Diagnostic.warning ~code:"sum-blowup" ~path:[]
         "projected summation enumeration: %d tuple variables over ~%d \
          endpoints each is ~%.2g index points (threshold %.2g)"
         e.tuple_width e.endpoints_assumed e.projected_sum_points threshold);
  (match e.km with
  | Some km ->
      add
        (Diagnostic.info ~code:"cost" ~path:[]
           "%d atoms, %d quantifiers; projected QE atoms %.2g; a \
            derandomized eps=1/10 approximation would need ~%.2g atoms and \
            ~%.2g quantified reals (Section 3 model)"
           e.atoms e.quantifiers e.projected_qe_atoms km.Bounds.atoms
           km.Bounds.quantifiers)
  | None ->
      add
        (Diagnostic.info ~code:"cost" ~path:[]
           "%d atoms, %d quantifiers; projected QE atoms %.2g"
           e.atoms e.quantifiers e.projected_qe_atoms));
  List.rev !diags

let pp_estimate fmt e =
  Format.fprintf fmt
    "%d atoms, %d quantifiers, %d free vars; projected QE atoms %.3g" e.atoms
    e.quantifiers e.free_var_count e.projected_qe_atoms;
  if e.sum_count > 0 then
    Format.fprintf fmt
      "; %d summations (tuple width %d, ~%.3g index points at %d endpoints)"
      e.sum_count e.tuple_width e.projected_sum_points e.endpoints_assumed;
  match e.km with
  | Some km ->
      Format.fprintf fmt
        "; KM approximation ~%.3g atoms / ~%.3g quantified reals"
        km.Bounds.atoms km.Bounds.quantifiers
  | None -> ()

let estimate_to_json e =
  let km_json =
    match e.km with
    | None -> "null"
    | Some km ->
        Printf.sprintf
          {|{"sample_size":%d,"sample_vars":%d,"translates":%d,"quantifiers":%g,"atoms":%g}|}
          km.Bounds.sample_size km.Bounds.sample_vars km.Bounds.translates
          km.Bounds.quantifiers km.Bounds.atoms
  in
  Printf.sprintf
    {|{"atoms":%d,"quantifiers":%d,"free_vars":%d,"sum_count":%d,"tuple_width":%d,"endpoints_assumed":%d,"projected_qe_atoms":%g,"projected_sum_points":%g,"km":%s}|}
    e.atoms e.quantifiers e.free_var_count e.sum_count e.tuple_width
    e.endpoints_assumed e.projected_qe_atoms e.projected_sum_points km_json
