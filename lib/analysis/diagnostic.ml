type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2
let compare_severity a b = compare (severity_rank a) (severity_rank b)

type t = {
  severity : severity;
  code : string;
  path : string list;
  message : string;
}

let make severity ~code ~path fmt =
  Format.kasprintf (fun message -> { severity; code; path; message }) fmt

let info ~code ~path fmt = make Info ~code ~path fmt
let warning ~code ~path fmt = make Warning ~code ~path fmt
let error ~code ~path fmt = make Error ~code ~path fmt
let path_to_string = function [] -> "/" | p -> "/" ^ String.concat "/" p

let sort ds =
  List.stable_sort
    (fun a b ->
      match compare_severity b.severity a.severity with
      | 0 -> (
          match compare a.path b.path with
          | 0 -> compare a.code b.code
          | c -> c)
      | c -> c)
    ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let pp fmt d =
  Format.fprintf fmt "%s[%s] at %s: %s"
    (severity_to_string d.severity)
    d.code
    (path_to_string d.path)
    d.message

let pp_list fmt ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp fmt ds

(* minimal JSON string escaping; messages may quote query text *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"severity":"%s","code":"%s","path":"%s","message":"%s"}|}
    (severity_to_string d.severity)
    (json_escape d.code)
    (json_escape (path_to_string d.path))
    (json_escape d.message)

let list_to_json ds = "[" ^ String.concat "," (List.map to_json ds) ^ "]"

let to_sexp d =
  Printf.sprintf "(diagnostic (severity %s) (code %s) (path %S) (message %S))"
    (severity_to_string d.severity)
    d.code
    (path_to_string d.path)
    d.message
