(** Cache-first plan compilation with the static analyzer in the loop.

    {!Cqa_core.Plan.cached} takes the dispatch hint and the rewriter as
    callbacks so the core library never depends on this one; this module
    closes the loop: every lookup first runs the certified {!Rewrite} pass
    (the cache is keyed on the rewritten normal form, so semantically
    equal spellings share one plan, and the cost profile the dispatch
    decision is made on is the post-rewrite one), then on a plan-cache
    miss the full analyzer runs once ([Fragment] gives the engine hint;
    the cost pass is subsumed by the plan's own profile), and on a hit the
    query goes straight to the compiled plan.  This is the entry point the
    CLI, the query service and the benchmarks use. *)

open Cqa_core

val compile :
  ?db:Db.t ->
  ?options:Analyzer.options ->
  ?budget:float ->
  ?params:Cqa_logic.Var.t array ->
  ?coords:Cqa_logic.Var.t array ->
  Ast.formula ->
  Plan.t
(** Fetch or compile the plan for this query shape.  [db]/[options] feed
    the analyzer (classification against a database can differ — e.g.
    semi-algebraic relations force the sampling engines) and are only
    consulted on a cache miss; the other arguments are
    {!Cqa_core.Plan.cached}'s.

    A bounded front-line memo maps the raw question — (formula, database
    identity, params, coords, budget) — straight to the compiled plan, so
    replaying one spelling costs a hash and a structural compare instead
    of rewrite + alpha + shape hash.  Entries are stamped with
    {!Cqa_core.Plan.cache_generation} and invalidated wholesale by
    {!Cqa_core.Plan.clear_cache}; a memo hit ticks [plan.cache.hit]. *)

val clear_memo : unit -> unit
(** Drop the front-line plan memo (benchmarks; {!Cqa_core.Plan.clear_cache}
    already invalidates it logically via the generation stamp). *)
