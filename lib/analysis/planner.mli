(** Cache-first plan compilation with the static analyzer in the loop.

    {!Cqa_core.Plan.cached} takes the dispatch hint as a callback so the
    core library never depends on this one; this module closes the loop:
    on a plan-cache miss the full analyzer runs once ([Fragment] gives the
    engine hint; the cost pass is subsumed by the plan's own profile), and
    on a hit the query goes straight to the compiled plan — no analysis,
    no normalization beyond the shape key.  This is the entry point the
    CLI and benchmarks use. *)

open Cqa_core

val compile :
  ?db:Db.t ->
  ?options:Analyzer.options ->
  ?budget:float ->
  ?params:Cqa_logic.Var.t array ->
  ?coords:Cqa_logic.Var.t array ->
  Ast.formula ->
  Plan.t
(** Fetch or compile the plan for this query shape.  [db]/[options] feed
    the analyzer (classification against a database can differ — e.g.
    semi-algebraic relations force the sampling engines) and are only
    consulted on a cache miss; the other arguments are
    {!Cqa_core.Plan.cached}'s. *)
