(** Pass 1: scope and binding analysis.

    Reports quantifier rank / count, summation depth / count and binder
    count, and diagnoses binder hygiene: shadowed and unused binders,
    duplicate summation tuples, and free-variable leaks between the three
    sections of a [sum_spec] (the END binder does not scope over [guard] or
    [gamma], the tuple does not scope over [end_body], and the output
    variable is only bound inside [gamma]). *)

open Cqa_core

type report = {
  quantifier_rank : int;
  quantifier_count : int;
  sum_depth : int;
  sum_count : int;
  binder_count : int;  (** quantifiers plus sum binders (tuple, output, END) *)
}

val report_formula : Ast.formula -> report
val report_term : Ast.term -> report
val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> string

val check_formula : Ast.formula -> Diagnostic.t list
val check_term : Ast.term -> Diagnostic.t list
(** Codes: [shadowed-binder], [unused-binder], [duplicate-tuple-var]
    (warnings); [gamma-var-leak], [tuple-var-in-end] (errors);
    [end-var-leak] (warning). *)
