(** The analyzer driver: runs the scope, fragment, range-restriction and
    cost passes (plus {!Cqa_core.Safety} as the safety pass when a database
    is supplied) over a formula or term and aggregates their diagnostics
    into one report.

    {!Cqa_core.Safety} stays the dependency-light well-formedness kernel;
    this module is the full static analyzer layered on top of it (the
    dependency arrow points from analyzer to kernel, so [Eval] keeps
    depending only on [Safety]). *)

open Cqa_core

type target = Formula of Ast.formula | Term of Ast.term

type options = {
  endpoints : int;  (** assumed END endpoint-set size for cost projection *)
  threshold : float;  (** blowup warning threshold *)
}

val default_options : options

type result = {
  target : target;
  diagnostics : Diagnostic.t list;  (** all passes, sorted by severity *)
  scope : Scope.report;
  classification : Fragment.classification;
  hint : Dispatch.hint;  (** routing decision, = [classification.hint] *)
  cost : Cost.estimate;
}

val analyze : ?db:Db.t -> ?options:options -> target -> result
(** Never raises on any well-typed AST. *)

val analyze_formula : ?db:Db.t -> ?options:options -> Ast.formula -> result
val analyze_term : ?db:Db.t -> ?options:options -> Ast.term -> result

val error_count : result -> int
val warning_count : result -> int

val ok : ?deny_warnings:bool -> result -> bool
(** No errors (and, with [deny_warnings], no warnings either). *)

val pp_result : ?show_info:bool -> Format.formatter -> result -> unit
(** Human rendering: summary header then diagnostics ([Info] entries only
    with [show_info]). *)

val result_to_json : result -> string
