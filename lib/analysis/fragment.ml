open Cqa_logic
open Cqa_poly
open Cqa_core

type frag = Lin | Poly | Sum

let fragment_name = function
  | Lin -> "FO+LIN"
  | Poly -> "FO+POLY"
  | Sum -> "FO+POLY+SUM"

let rank = function Lin -> 0 | Poly -> 1 | Sum -> 2
let join a b = if rank a >= rank b then a else b

type classification = {
  syntactic : frag;
  normalized : frag;
  atoms : int;
  nonlinear_spelled : int;
  nonlinear_normalized : int;
  sum_terms : int;
  open_sums : int;
  reducible_sums : int;
  semialg_relations : int;
  hint : Dispatch.hint;
}

type acc = {
  mutable a_atoms : int;
  mutable a_nl_spelled : int;
  mutable a_nl_normalized : int;
  mutable a_sums : int;
  mutable a_open : int;
  mutable a_reducible : int;
  mutable a_semialg : int;
  mutable a_diags : Diagnostic.t list;
}

let emit acc d = acc.a_diags <- d :: acc.a_diags

(* A term is FO+LIN as spelled when every Mul has a variable-free factor. *)
let rec spelled_linear (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> true
  | Ast.Add (a, b) -> spelled_linear a && spelled_linear b
  | Ast.Mul (a, b) ->
      spelled_linear a && spelled_linear b
      && (Var.Set.is_empty (Ast.term_free_vars a)
         || Var.Set.is_empty (Ast.term_free_vars b))
  | Ast.Sum _ -> false

let rec term_has_sum (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> false
  | Ast.Add (a, b) | Ast.Mul (a, b) -> term_has_sum a || term_has_sum b
  | Ast.Sum _ -> true

(* Would Eval's linear reducer accept this formula once its sum binders are
   instantiated?  Conservative check: every atom normalizes to a polynomial
   that is linear in the [live] variables (the ones the reducer must keep
   symbolic: quantified variables plus the section's own binder; the
   summation tuple is substituted with constants before reduction, so any
   degree in tuple-only variables is fine). *)
let rec reducer_friendly ~live (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Rel _ -> true
  | Ast.Cmp (_, a, b) -> (
      if term_has_sum a || term_has_sum b then false
      else
        match Ast.to_mpoly Ast.(a -! b) with
        | None -> false
        | Some p ->
            List.for_all
              (fun (mono, _) ->
                let live_deg =
                  List.fold_left
                    (fun d (v, e) -> if Var.Set.mem v live then d + e else d)
                    0 mono
                in
                live_deg <= 1)
              (Mpoly.terms p))
  | Ast.Not g -> reducer_friendly ~live g
  | Ast.And (g, h) | Ast.Or (g, h) ->
      reducer_friendly ~live g && reducer_friendly ~live h
  | Ast.Exists (x, g) | Ast.Forall (x, g) ->
      reducer_friendly ~live:(Var.Set.add x live) g

(* Classification of one comparison atom: spelled fragment and normalized
   fragment (ignoring sums, which the caller handles). *)
let atom_frags acc path (a : Ast.term) (b : Ast.term) =
  let spelled =
    if spelled_linear a && spelled_linear b then Lin
    else if term_has_sum a || term_has_sum b then Sum
    else Poly
  in
  let normalized =
    if term_has_sum a || term_has_sum b then Sum
    else
      match Ast.to_mpoly Ast.(a -! b) with
      | None -> Sum
      | Some p -> (
          match Mpoly.to_linexpr p with Some _ -> Lin | None -> Poly)
  in
  acc.a_atoms <- acc.a_atoms + 1;
  (match spelled with
  | Poly -> acc.a_nl_spelled <- acc.a_nl_spelled + 1
  | _ -> ());
  (match normalized with
  | Poly ->
      acc.a_nl_normalized <- acc.a_nl_normalized + 1;
      emit acc
        (Diagnostic.info ~code:"nonlinear-atom" ~path
           "atom stays nonlinear after normalization (FO+POLY)")
  | _ -> ());
  if spelled = Poly && normalized = Lin then
    emit acc
      (Diagnostic.info ~code:"poly-spelled-linear" ~path
         "atom is FO+POLY-spelled but normalizes to a linear comparison");
  (spelled, normalized)

let rec walk_f acc ?db path (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False -> (Lin, Lin)
  | Ast.Rel (r, _) -> (
      acc.a_atoms <- acc.a_atoms + 1;
      match db with
      | None -> (Lin, Lin)
      | Some db -> (
          match Db.find db r with
          | Db.Semialgebraic _ ->
              acc.a_semialg <- acc.a_semialg + 1;
              emit acc
                (Diagnostic.info ~code:"semialgebraic-relation" ~path
                   "relation %s is interpreted by a semi-algebraic set" r);
              (Poly, Poly)
          | Db.Finite _ | Db.Semilin _ -> (Lin, Lin)
          | exception Not_found -> (Lin, Lin)))
  | Ast.Cmp (_, a, b) ->
      let spelled, normalized = atom_frags acc path a b in
      let sub_spelled, sub_normalized =
        join2
          (walk_t acc ?db (path @ [ "cmp.l" ]) a)
          (walk_t acc ?db (path @ [ "cmp.r" ]) b)
      in
      (* when the atom mentions a sum, the sum's own classification decides
         the normalized label; the atom itself is Sum only syntactically *)
      if spelled = Sum then (Sum, join normalized sub_normalized)
      else (join spelled sub_spelled, join normalized sub_normalized)
  | Ast.Not g -> walk_f acc ?db (path @ [ "not" ]) g
  | Ast.And (g, h) ->
      join2
        (walk_f acc ?db (path @ [ "and.l" ]) g)
        (walk_f acc ?db (path @ [ "and.r" ]) h)
  | Ast.Or (g, h) ->
      join2
        (walk_f acc ?db (path @ [ "or.l" ]) g)
        (walk_f acc ?db (path @ [ "or.r" ]) h)
  | Ast.Exists (x, g) ->
      walk_f acc ?db (path @ [ Printf.sprintf "exists:%s" (Var.name x) ]) g
  | Ast.Forall (x, g) ->
      walk_f acc ?db (path @ [ Printf.sprintf "forall:%s" (Var.name x) ]) g

and walk_t acc ?db path (t : Ast.term) =
  match t with
  | Ast.Const _ | Ast.TVar _ -> (Lin, Lin)
  | Ast.Add (a, b) ->
      join2
        (walk_t acc ?db (path @ [ "add.l" ]) a)
        (walk_t acc ?db (path @ [ "add.r" ]) b)
  | Ast.Mul (a, b) ->
      join2
        (walk_t acc ?db (path @ [ "mul.l" ]) a)
        (walk_t acc ?db (path @ [ "mul.r" ]) b)
  | Ast.Sum s ->
      let spath = path @ [ "sum" ] in
      acc.a_sums <- acc.a_sums + 1;
      let closed = Var.Set.is_empty (Ast.term_free_vars t) in
      ignore (walk_f acc ?db (spath @ [ "guard" ]) s.Ast.guard);
      ignore (walk_f acc ?db (spath @ [ "gamma" ]) s.Ast.gamma);
      ignore (walk_f acc ?db (spath @ [ "end" ]) s.Ast.end_body);
      let reducible =
        closed
        && reducer_friendly ~live:Var.Set.empty s.Ast.guard
        && reducer_friendly
             ~live:(Var.Set.singleton s.Ast.gamma_var)
             s.Ast.gamma
        && reducer_friendly
             ~live:(Var.Set.singleton s.Ast.end_y)
             s.Ast.end_body
      in
      if not closed then (
        acc.a_open <- acc.a_open + 1;
        emit acc
          (Diagnostic.info ~code:"open-sum" ~path:spath
             "summation has free variables (%s); it cannot be folded to a \
              constant"
             (String.concat ", "
                (List.map Var.name (Var.Set.elements (Ast.term_free_vars t))))));
      if reducible then (
        acc.a_reducible <- acc.a_reducible + 1;
        emit acc
          (Diagnostic.info ~code:"closed-sum" ~path:spath
             "closed summation is linear-reducible; the evaluator folds it \
              to a constant"));
      ((Sum : frag), if reducible then Lin else Sum)

and join2 (a, b) (a', b') = (join a a', join b b')

let finish ?db acc (syntactic, normalized) =
  let db_linear = match db with None -> true | Some db -> Db.is_linear db in
  let hint =
    if normalized = Lin && db_linear then Dispatch.Exact_semilinear
    else if acc.a_open > 0 || normalized = Sum then Dispatch.Sum_eval
    else Dispatch.Pointwise_poly
  in
  ( {
      syntactic;
      normalized;
      atoms = acc.a_atoms;
      nonlinear_spelled = acc.a_nl_spelled;
      nonlinear_normalized = acc.a_nl_normalized;
      sum_terms = acc.a_sums;
      open_sums = acc.a_open;
      reducible_sums = acc.a_reducible;
      semialg_relations = acc.a_semialg;
      hint;
    },
    List.rev acc.a_diags )

let fresh_acc () =
  {
    a_atoms = 0;
    a_nl_spelled = 0;
    a_nl_normalized = 0;
    a_sums = 0;
    a_open = 0;
    a_reducible = 0;
    a_semialg = 0;
    a_diags = [];
  }

let classify_formula ?db f =
  let acc = fresh_acc () in
  finish ?db acc (walk_f acc ?db [] f)

let classify_term ?db t =
  let acc = fresh_acc () in
  finish ?db acc (walk_t acc ?db [] t)

let pp_classification fmt c =
  Format.fprintf fmt "%s as spelled, %s normalized; dispatch hint %a"
    (fragment_name c.syntactic)
    (fragment_name c.normalized)
    Dispatch.pp c.hint;
  if c.nonlinear_spelled > c.nonlinear_normalized then
    Format.fprintf fmt
      " (%d of %d nonlinear-spelled atoms normalize to linear)"
      (c.nonlinear_spelled - c.nonlinear_normalized)
      c.nonlinear_spelled

let classification_to_json c =
  Printf.sprintf
    {|{"syntactic":"%s","normalized":"%s","atoms":%d,"nonlinear_spelled":%d,"nonlinear_normalized":%d,"sum_terms":%d,"open_sums":%d,"reducible_sums":%d,"semialg_relations":%d,"hint":"%s"}|}
    (fragment_name c.syntactic)
    (fragment_name c.normalized)
    c.atoms c.nonlinear_spelled c.nonlinear_normalized c.sum_terms c.open_sums
    c.reducible_sums c.semialg_relations
    (Dispatch.to_string c.hint)
