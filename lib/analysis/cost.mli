(** Pass 4: cost estimation.

    Projects the quantifier-elimination blowup in the spirit of Section 3:
    Fourier-Motzkin can square the constraint count at every eliminated
    variable (m -> m^2/4), and naive summation enumerates the END endpoint
    grid, |endpoints|^|tuple| points.  Both projections are crude upper
    bounds meant to flag queries whose exact evaluation is about to explode;
    the Kearns-Mansour style sampling size from {!Cqa_vc.Bounds} is reported
    alongside as the Theorem 4 alternative. *)

open Cqa_core
open Cqa_vc

type estimate = {
  atoms : int;
  quantifiers : int;
  free_var_count : int;
  sum_count : int;
  tuple_width : int;  (** total summation tuple width, nested sums included *)
  endpoints_assumed : int;
  projected_qe_atoms : float;
  projected_sum_points : float;
  km : Bounds.km_size option;
      (** sampling alternative, present when the query has free variables *)
}

val estimate_formula : ?endpoints:int -> Ast.formula -> estimate
val estimate_term : ?endpoints:int -> Ast.term -> estimate
(** [endpoints] is the assumed size of each END endpoint set (default 8). *)

val check : ?threshold:float -> estimate -> Diagnostic.t list
(** [qe-blowup] / [sum-blowup] warnings when a projection exceeds
    [threshold] (default [1e6]); always an [Info] with the numbers. *)

val pp_estimate : Format.formatter -> estimate -> unit
val estimate_to_json : estimate -> string
